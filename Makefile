GO ?= go

.PHONY: all build test vet race check bench clean fuzz faults

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The stress tests take several minutes each under the race detector,
# so raise Go's default 10m per-package timeout.
race:
	$(GO) test -race -timeout 30m ./...

# Fuzz smoke: a bounded run of the .mcl parser fuzzer (the committed
# seed corpus always runs as part of plain `go test`).
fuzz:
	$(GO) test -run FuzzRead -fuzz FuzzRead -fuzztime 30s ./internal/bmark/

# The fault-injection recovery suites under the race detector, as a
# focused target: every injection point x every recovery policy must
# end legal or faithfully-reported partial. `race` (and therefore
# `check`) already covers these as part of the whole suite.
faults:
	$(GO) test -race -run 'Gate|Recovery|Fallback|BestEffort|Strict|Panic|Inject|Fault' \
		./internal/stage/ ./internal/flow/ ./internal/mgl/ ./internal/faults/

# The full gate: vet + build + the whole suite under the race detector
# (includes the worker-count determinism, cancellation and
# fault-injection tests), plus the fuzz smoke run.
check: vet build race fuzz

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	$(GO) clean ./...
