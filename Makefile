GO ?= go

.PHONY: all build test vet lint vet-json vet-concurrency vet-effects race check bench bench-smoke bench-json clean fuzz faults chaos

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis gate: go vet, staticcheck when installed (offline
# sandboxes have no module proxy, so it is only mandatory in CI where
# the lint job installs it), and the in-tree mclegal-vet analyzer suite
# enforcing the determinism/aliasing/numeric/allocation/exhaustiveness,
# concurrency (goleak, lockguard, sharedwrite) and write-effect
# (writeset, snapshotsafe, aliasleak) invariants
# (docs/STATIC_ANALYSIS.md). Any diagnostic fails the target. The
# second mclegal-vet run is the self-check: the analysis machinery is
# held to its own rules.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI installs and enforces it)"; \
	fi
	$(GO) run ./cmd/mclegal-vet ./...
	$(GO) run ./cmd/mclegal-vet ./internal/analysis/...

# Machine-readable diagnostics: the same analyzer suite as lint, as a
# stable position-sorted JSON array (file/line/column/analyzer/message)
# for editor and CI-annotation tooling. Exit codes match the text mode.
vet-json:
	$(GO) run ./cmd/mclegal-vet -json ./...

# The concurrency analyzers alone, as JSON, over the packages that
# spawn or synchronize (scope.ConcurrencyScope mirrored here): the
# focused gate the CI vet-concurrency job runs and archives. A clean
# run writes [] to vet-concurrency.json; any finding fails the target
# after the file is written.
vet-concurrency:
	$(GO) run ./cmd/mclegal-vet -run goleak,lockguard,sharedwrite -json \
		./internal/mgl ./internal/stage ./internal/shard \
		./internal/serve ./internal/faults ./cmd/mclegald \
		> vet-concurrency.json; \
	status=$$?; cat vet-concurrency.json; exit $$status

# The write-effect analyzers alone, as JSON, over the whole module (the
# analyzers scope themselves: writeset to the deterministic core,
# snapshotsafe to the gated stages, aliasleak to the serve layer, each
# pulling in its closure). The CI vet-effects job runs this and
# archives the report, so the rollback-completeness and resident-state
# isolation proofs of every push are inspectable. A clean run writes []
# to vet-effects.json; any finding fails the target after the file is
# written.
vet-effects:
	$(GO) run ./cmd/mclegal-vet -run writeset,snapshotsafe,aliasleak -json \
		./... > vet-effects.json; \
	status=$$?; cat vet-effects.json; exit $$status

test:
	$(GO) test ./...

# The stress tests take several minutes each under the race detector,
# so raise Go's default 10m per-package timeout.
race:
	$(GO) test -race -timeout 30m ./...

# Fuzz smoke: bounded runs of the .mcl parser fuzzer and its
# input-limits variant (the committed seed corpora always run as part
# of plain `go test`).
fuzz:
	$(GO) test -run 'FuzzRead$$' -fuzz 'FuzzRead$$' -fuzztime 20s ./internal/bmark/
	$(GO) test -run FuzzReadLimited -fuzz FuzzReadLimited -fuzztime 10s ./internal/bmark/

# The fault-injection recovery suites under the race detector, as a
# focused target: every injection point x every recovery policy must
# end legal or faithfully-reported partial. `race` (and therefore
# `check`) already covers these as part of the whole suite.
faults:
	$(GO) test -race -run 'Gate|Recovery|Fallback|BestEffort|Strict|Panic|Inject|Fault' \
		./internal/stage/ ./internal/flow/ ./internal/mgl/ ./internal/faults/

# The server chaos suite under the race detector: seeded storms of
# injected faults, deadline expiries, mid-request cancels and drains
# against mclegald's serving layer, plus the endpoint and daemon
# lifecycle tests. `race` (and therefore `check`) already covers these
# as part of the whole suite; this is the focused loop for iterating
# on the server.
chaos:
	$(GO) test -race -run 'Chaos|Drain|Overload|Panic|Deadline|Cancel|Shutdown' \
		./internal/serve/ ./cmd/mclegald/
	$(GO) test -race ./internal/serve/

# The full gate: lint (vet + staticcheck + mclegal-vet) + build + the
# whole suite under the race detector (includes the worker-count
# determinism, cancellation and fault-injection tests), plus the fuzz
# smoke run.
check: lint build race fuzz

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# One-iteration run of the MGL throughput bench plus the mcf solver
# sweep in smoke mode (tiny instances, one iteration per config, full
# cross-solver validation): catches bit-rot in the bench harnesses
# themselves without paying for a real measurement. CI runs this on
# every push.
bench-smoke:
	$(GO) test -bench MGLThroughput -benchtime 1x -run '^$$' .
	$(GO) run ./cmd/benchjson -mode mcf -smoke -out /dev/null

# The benchmark-trajectory harness: sweeps MGL worker counts into
# BENCH_mgl.json (ns/op, allocs/op, cells/sec, speedup vs workers=1),
# shard concurrencies into BENCH_shard.json (ns/op, per-region
# wall-clock breakdown, speedup vs shards=1), server latencies into
# BENCH_serve.json, and the min-cost-flow solver layer (pivot rules,
# solver reuse, warm-start resolves, cross-solver validation) into
# BENCH_mcf.json, and the mclegal-vet analyzer suite itself (one shared
# program load plus each analyzer's incremental cost) into
# BENCH_vet.json. Compare the committed baselines against a fresh run
# to judge a perf change; see docs/PERFORMANCE.md.
bench-json:
	$(GO) run ./cmd/benchjson -mode mgl -out BENCH_mgl.json
	$(GO) run ./cmd/benchjson -mode shard -out BENCH_shard.json
	$(GO) run ./cmd/benchjson -mode serve -out BENCH_serve.json
	$(GO) run ./cmd/benchjson -mode mcf -out BENCH_mcf.json
	$(GO) run ./cmd/benchjson -mode vet -out BENCH_vet.json

clean:
	$(GO) clean ./...
