GO ?= go

.PHONY: all build test vet race check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The stress tests take several minutes each under the race detector,
# so raise Go's default 10m per-package timeout.
race:
	$(GO) test -race -timeout 30m ./...

# The full gate: vet + build + the whole suite under the race detector
# (includes the worker-count determinism and cancellation tests).
check: vet build race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	$(GO) clean ./...
