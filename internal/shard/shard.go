// Package shard partitions a design into spatially disjoint
// legalization subproblems: one region per drawn fence, plus the
// default (fenceless) region optionally split into vertical slabs of
// the die. The paper's fence-aware flow (Section 3) legalizes fence
// regions independently — a cell of fence F may only occupy fence-F
// segments, so the subproblems share no sites — and the slab split
// extends the same disjointness to the default region by confining
// each slab's cells behind complement blockages.
//
// A plan is a pure function of the design and the plan options: it
// never depends on worker counts, timing or iteration order of any
// map, so the sharded pipeline stays deterministic by construction
// (the flow's Shards knob only sets how many plan regions legalize
// concurrently, never what the regions are).
package shard

import (
	"fmt"

	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// Options tunes the plan geometry. The zero value picks defaults.
type Options struct {
	// SlabTargetCells is the aimed-for movable-cell count per
	// default-region slab: the planner starts from
	// ceil(defaultCells/SlabTargetCells) slabs and shrinks the count
	// until every slab passes the width and utilization guards.
	// 0 picks the default (250000); negative disables slabbing
	// (the default region stays one piece).
	SlabTargetCells int
	// MaxSlabUtil caps the assigned-cell area of a slab as a fraction
	// of its usable default-region area; cuts that would pack a slab
	// tighter reduce the slab count. 0 picks the default (0.8).
	MaxSlabUtil float64
}

func (o Options) withDefaults() Options {
	if o.SlabTargetCells == 0 {
		o.SlabTargetCells = 250000
	}
	if o.MaxSlabUtil == 0 {
		o.MaxSlabUtil = 0.8
	}
	return o
}

// Region is one independent subproblem of a plan.
type Region struct {
	// Name identifies the region in shard names, gate reports and
	// observer events.
	Name string
	// Fence is the fence the region legalizes; DefaultFence for slabs.
	Fence model.FenceID
	// Span is the x-interval of the die the region may use. Drawn
	// fences span the whole core (their rectangles already confine
	// them); slabs carry their cut interval.
	Span geom.Interval
	// Cells lists the movable cells assigned to the region, in
	// ascending CellID order.
	Cells []model.CellID
	// Blockages are the extra blockage rectangles confining the
	// region's subdesign (the complement of Span for slabs, padded at
	// interior seams by the maximum edge-spacing rule; nil for fences
	// and single-slab plans).
	Blockages []geom.Rect
}

// Plan is an ordered list of disjoint regions covering every movable
// cell exactly once: drawn fences by ascending FenceID, then the
// default-region slabs by ascending x.
type Plan struct {
	Regions []Region
	// Slabs is the number of default-region slabs the plan settled on
	// (0 when the design has no default-region movables).
	Slabs int
}

// BuildPlan computes the shard plan of d over its segmentation grid.
// The result depends only on (d, opt): regions, their order and their
// cell lists are reproducible across runs and machines.
func BuildPlan(d *model.Design, grid *seg.Grid, opt Options) Plan {
	opt = opt.withDefaults()

	// Partition movables by fence, ascending CellID within each.
	byFence := make([][]model.CellID, len(d.Fences)+1)
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		byFence[c.Fence] = append(byFence[c.Fence], model.CellID(i))
	}

	var plan Plan
	core := d.Tech.CoreRect()
	for f := 1; f <= len(d.Fences); f++ {
		if len(byFence[f]) == 0 {
			continue
		}
		plan.Regions = append(plan.Regions, Region{
			Name:  fmt.Sprintf("fence%d-%s", f, d.Fences[f-1].Name),
			Fence: model.FenceID(f),
			Span:  core.XIv(),
			Cells: byFence[f],
		})
	}

	def := byFence[model.DefaultFence]
	if len(def) == 0 {
		return plan
	}
	slabs := planSlabs(d, grid, def, opt)
	plan.Slabs = len(slabs)
	plan.Regions = append(plan.Regions, slabs...)
	return plan
}

// planSlabs cuts the default region into vertical slabs. It starts
// from the cell-count target and reduces the slab count until every
// slab passes the width and utilization guards; one slab (no cut, no
// blockage) is always valid.
func planSlabs(d *model.Design, grid *seg.Grid, def []model.CellID, opt Options) []Region {
	nSites := d.Tech.NumSites
	k0 := 1
	if opt.SlabTargetCells > 0 {
		k0 = (len(def) + opt.SlabTargetCells - 1) / opt.SlabTargetCells
	}
	if k0 > nSites {
		k0 = nSites
	}

	// Per-column assigned area (site·rows) of default movables, keyed
	// by the GP center column; its prefix sum drives balanced cuts.
	colArea := make([]int64, nSites)
	maxW := 0
	for _, id := range def {
		c := &d.Cells[id]
		ct := &d.Types[c.Type]
		col := c.GX + ct.Width/2
		if col < 0 {
			col = 0
		}
		if col >= nSites {
			col = nSites - 1
		}
		colArea[col] += int64(ct.Width) * int64(ct.Height)
		if ct.Width > maxW {
			maxW = ct.Width
		}
	}
	var total int64
	for _, a := range colArea {
		total += a
	}

	// Usable default-region width per column (rows of default-fence
	// segments covering it), for the utilization guard.
	colCap := make([]int64, nSites)
	for _, s := range grid.Segs {
		if s.Fence != model.DefaultFence {
			continue
		}
		for x := s.X.Lo; x < s.X.Hi; x++ {
			colCap[x]++
		}
	}

	pad := d.Tech.MaxEdgeSpacing()
	for k := k0; k > 1; k-- {
		cuts, ok := cutColumns(colArea, total, k, maxW+2+pad)
		if !ok {
			continue
		}
		regions := assembleSlabs(d, def, cuts, pad)
		if slabsFeasible(regions, colArea, colCap, pad, opt.MaxSlabUtil) {
			return regions
		}
	}
	return assembleSlabs(d, def, []int{0, nSites}, pad)
}

// cutColumns returns K+1 cut columns (including 0 and nSites) placing
// roughly total/K assigned area in each slab, or ok=false when the
// cuts cannot keep every slab at least minWidth wide.
func cutColumns(colArea []int64, total int64, k, minWidth int) ([]int, bool) {
	nSites := len(colArea)
	cuts := make([]int, 0, k+1)
	cuts = append(cuts, 0)
	var acc int64
	col := 0
	for s := 1; s < k; s++ {
		want := total * int64(s) / int64(k)
		for col < nSites && acc < want {
			acc += colArea[col]
			col++
		}
		cuts = append(cuts, col)
	}
	cuts = append(cuts, nSites)
	for i := 1; i < len(cuts); i++ {
		if cuts[i]-cuts[i-1] < minWidth {
			return nil, false
		}
	}
	return cuts, true
}

// assembleSlabs builds the slab regions for the given cut columns:
// cells are assigned by GP center column, spans and complement
// blockages derive from the cuts. Cells inherit ascending-ID order
// from def.
func assembleSlabs(d *model.Design, def []model.CellID, cuts []int, pad int) []Region {
	nSites, nRows := d.Tech.NumSites, d.Tech.NumRows
	k := len(cuts) - 1
	regions := make([]Region, k)
	for s := 0; s < k; s++ {
		regions[s] = Region{
			Name:  fmt.Sprintf("slab%d", s),
			Fence: model.DefaultFence,
			Span:  geom.Interval{Lo: cuts[s], Hi: cuts[s+1]},
		}
		if k == 1 {
			continue
		}
		// Complement blockages confine the slab's subdesign; interior
		// left seams are padded by the maximum edge-spacing rule so
		// cells of adjacent slabs can never violate spacing across a
		// cut.
		lo := cuts[s]
		if s > 0 {
			lo += pad
		}
		var bl []geom.Rect
		if lo > 0 {
			bl = append(bl, geom.Rect{XLo: 0, YLo: 0, XHi: lo, YHi: nRows})
		}
		if cuts[s+1] < nSites {
			bl = append(bl, geom.Rect{XLo: cuts[s+1], YLo: 0, XHi: nSites, YHi: nRows})
		}
		regions[s].Blockages = bl
	}
	for _, id := range def {
		c := &d.Cells[id]
		col := c.GX + d.Types[c.Type].Width/2
		if col < 0 {
			col = 0
		}
		if col >= nSites {
			col = nSites - 1
		}
		s := 0
		for s+1 < k && col >= cuts[s+1] {
			s++
		}
		regions[s].Cells = append(regions[s].Cells, id)
	}
	return regions
}

// slabsFeasible checks the utilization guard: every slab's assigned
// area must fit under maxUtil of its usable (default-segment, pad-
// reduced) area, and every slab must hold at least one cell span.
func slabsFeasible(regions []Region, colArea, colCap []int64, pad int, maxUtil float64) bool {
	for i := range regions {
		r := &regions[i]
		lo := r.Span.Lo
		if i > 0 {
			lo += pad
		}
		var assigned, capacity int64
		for x := lo; x < r.Span.Hi; x++ {
			capacity += colCap[x]
		}
		for x := r.Span.Lo; x < r.Span.Hi; x++ {
			assigned += colArea[x]
		}
		if capacity == 0 && len(r.Cells) > 0 {
			return false
		}
		if float64(assigned) > maxUtil*float64(capacity) {
			return false
		}
	}
	return true
}
