package shard

import (
	"reflect"
	"testing"

	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

func planDesign(nSites, nRows int) *model.Design {
	return &model.Design{
		Name: "plan",
		Tech: model.Tech{SiteW: 10, RowH: 80, NumSites: nSites, NumRows: nRows},
		Types: []model.CellType{
			{Name: "S1", Width: 2, Height: 1},
			{Name: "D2", Width: 3, Height: 2},
		},
	}
}

func addMovable(d *model.Design, ti model.CellTypeID, gx, gy int, f model.FenceID) model.CellID {
	d.Cells = append(d.Cells, model.Cell{
		Name: "c", Type: ti, Fence: f, GX: gx, GY: gy, X: gx, Y: gy,
	})
	return model.CellID(len(d.Cells) - 1)
}

func buildGrid(t *testing.T, d *model.Design) *seg.Grid {
	t.Helper()
	g, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPlanCoversEveryMovableOnce(t *testing.T) {
	d := planDesign(100, 10)
	d.Fences = []model.Fence{
		{Name: "fa", Rects: []geom.Rect{geom.RectWH(0, 0, 20, 4)}},
		{Name: "fb", Rects: []geom.Rect{geom.RectWH(60, 6, 20, 4)}},
	}
	for i := 0; i < 10; i++ {
		addMovable(d, 0, 2*i, 1, 1)
		addMovable(d, 0, 60+2*(i%5), 7, 2)
		addMovable(d, 0, 30+2*i, 5, 0)
	}
	d.Cells = append(d.Cells, model.Cell{Name: "m", Type: 1, GX: 50, GY: 0, X: 50, Y: 0, Fixed: true})

	plan := BuildPlan(d, buildGrid(t, d), Options{})
	seen := make(map[model.CellID]int)
	for _, r := range plan.Regions {
		for _, id := range r.Cells {
			seen[id]++
			if d.Cells[id].Fixed {
				t.Errorf("region %s contains fixed cell %d", r.Name, id)
			}
			if d.Cells[id].Fence != r.Fence {
				t.Errorf("region %s (fence %d) contains cell of fence %d", r.Name, r.Fence, d.Cells[id].Fence)
			}
		}
	}
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			continue
		}
		if seen[model.CellID(i)] != 1 {
			t.Errorf("cell %d appears %d times in the plan", i, seen[model.CellID(i)])
		}
	}
	// Regions: fence1, fence2, then the single default slab.
	if len(plan.Regions) != 3 || plan.Slabs != 1 {
		t.Fatalf("regions = %d slabs = %d", len(plan.Regions), plan.Slabs)
	}
	if plan.Regions[0].Name != "fence1-fa" || plan.Regions[1].Name != "fence2-fb" || plan.Regions[2].Name != "slab0" {
		t.Errorf("region order/names wrong: %q %q %q",
			plan.Regions[0].Name, plan.Regions[1].Name, plan.Regions[2].Name)
	}
}

func TestPlanSkipsEmptyFences(t *testing.T) {
	d := planDesign(100, 10)
	d.Fences = []model.Fence{{Name: "empty", Rects: []geom.Rect{geom.RectWH(0, 0, 10, 2)}}}
	addMovable(d, 0, 50, 5, 0)
	plan := BuildPlan(d, buildGrid(t, d), Options{})
	if len(plan.Regions) != 1 || plan.Regions[0].Fence != model.DefaultFence {
		t.Fatalf("empty fence should produce no region: %+v", plan.Regions)
	}
}

func TestPlanIsDeterministic(t *testing.T) {
	d := planDesign(400, 20)
	for i := 0; i < 200; i++ {
		addMovable(d, model.CellTypeID(i%2), (i*7)%390, (i*3)%18, 0)
	}
	grid := buildGrid(t, d)
	opt := Options{SlabTargetCells: 50}
	a := BuildPlan(d, grid, opt)
	b := BuildPlan(d, grid, opt)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two plans of the same design differ")
	}
}

func TestSlabSplitGeometry(t *testing.T) {
	d := planDesign(400, 20)
	for i := 0; i < 200; i++ {
		addMovable(d, 0, (i*2)%396, i%20, 0)
	}
	grid := buildGrid(t, d)
	plan := BuildPlan(d, grid, Options{SlabTargetCells: 50, MaxSlabUtil: 0.9})
	if plan.Slabs < 2 {
		t.Fatalf("expected a multi-slab plan, got %d slabs", plan.Slabs)
	}
	prevHi := 0
	for i, r := range plan.Regions {
		if r.Fence != model.DefaultFence {
			t.Fatalf("unexpected fence region %q", r.Name)
		}
		if r.Span.Lo != prevHi {
			t.Errorf("slab %d starts at %d, want %d (contiguous cover)", i, r.Span.Lo, prevHi)
		}
		prevHi = r.Span.Hi
		// Complement blockages must cover exactly the outside of the span
		// (plus the interior seam pad on the left).
		for _, b := range r.Blockages {
			if b.XLo < r.Span.Hi && b.XHi > r.Span.Lo {
				overlap := geom.Interval{Lo: max(b.XLo, r.Span.Lo), Hi: min(b.XHi, r.Span.Hi)}
				if i > 0 && b.XLo == 0 {
					// Left complement: may eat the seam pad only.
					if overlap.Hi-overlap.Lo > d.Tech.MaxEdgeSpacing() {
						t.Errorf("slab %d left blockage intrudes %d sites", i, overlap.Hi-overlap.Lo)
					}
				} else if overlap.Hi > overlap.Lo {
					t.Errorf("slab %d blockage %v overlaps span %v", i, b, r.Span)
				}
			}
		}
		// Cells are assigned by GP center column within the span.
		for _, id := range r.Cells {
			c := &d.Cells[id]
			col := c.GX + d.Types[c.Type].Width/2
			if col < r.Span.Lo || col >= r.Span.Hi {
				t.Errorf("slab %d holds cell %d whose center col %d is outside %v", i, id, col, r.Span)
			}
		}
	}
	if prevHi != d.Tech.NumSites {
		t.Errorf("slabs end at %d, want %d", prevHi, d.Tech.NumSites)
	}
}

func TestSlabFallsBackToOnePiece(t *testing.T) {
	// Everything crammed into a few columns: balanced cuts cannot keep
	// the minimum slab width, so the planner settles on one slab.
	d := planDesign(40, 4)
	for i := 0; i < 40; i++ {
		addMovable(d, 0, 10, i%4, 0)
	}
	plan := BuildPlan(d, buildGrid(t, d), Options{SlabTargetCells: 5})
	if plan.Slabs != 1 {
		t.Fatalf("want single-slab fallback, got %d slabs", plan.Slabs)
	}
	if plan.Regions[0].Blockages != nil {
		t.Errorf("single slab must not carry blockages")
	}
	if got := len(plan.Regions[0].Cells); got != 40 {
		t.Errorf("single slab holds %d of 40 cells", got)
	}
}

func TestSlabbingDisabled(t *testing.T) {
	d := planDesign(400, 20)
	for i := 0; i < 100; i++ {
		addMovable(d, 0, (i*4)%396, i%20, 0)
	}
	plan := BuildPlan(d, buildGrid(t, d), Options{SlabTargetCells: -1})
	if plan.Slabs != 1 {
		t.Fatalf("negative SlabTargetCells should disable slabbing, got %d slabs", plan.Slabs)
	}
}
