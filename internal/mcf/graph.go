// Package mcf implements an exact integer minimum-cost-flow solver: a
// primal network simplex with the first-eligible pivot rule (the
// configuration the paper uses through LEMON [20]), plus a slow
// successive-shortest-path reference solver used for cross-checking.
//
// The solver handles arbitrary (also negative) arc costs, zero lower
// bounds, finite capacities, and node supplies summing to zero. On
// success it returns both the optimal arc flows and optimal node
// potentials; the legalizer's fixed-row-and-order refinement reads the
// legal x-coordinates directly off the potentials (paper Section 3.3).
package mcf

import (
	"fmt"
	"math"
)

// Unbounded is a convenience capacity for arcs without a meaningful
// bound. Callers that may route large flow should pass an explicit
// problem-specific bound instead.
const Unbounded = int64(math.MaxInt64) / 4

// Arc is one directed arc of the flow network.
type Arc struct {
	From, To int
	Cap      int64
	Cost     int64
}

// Graph is a min-cost-flow problem under construction. The zero value
// is an empty graph; add nodes before arcs.
//
// Malformed construction (out-of-range endpoints, negative capacity)
// does not panic: the first such mistake is recorded as a typed
// *BuildError and returned by BuildErr and by every solver, so a bad
// network surfaces as a stage error instead of a process crash.
type Graph struct {
	supply []int64
	arcs   []Arc
	err    error
}

// BuildError reports a malformed AddArc call: an endpoint outside the
// node range or a negative capacity.
type BuildError struct {
	Arc      int // index the arc would have had
	From, To int
	Nodes    int
	Cap      int64
	Reason   string
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("mcf: arc %d (%d->%d, cap %d): %s (graph has %d nodes)",
		e.Arc, e.From, e.To, e.Cap, e.Reason, e.Nodes)
}

// NewGraph returns a graph with n nodes (numbered 0..n-1) and zero
// supplies.
func NewGraph(n int) *Graph {
	return &Graph{supply: make([]int64, n)}
}

// AddNode appends a node and returns its index.
func (g *Graph) AddNode() int {
	g.supply = append(g.supply, 0)
	return len(g.supply) - 1
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.supply) }

// NumArcs returns the arc count.
func (g *Graph) NumArcs() int { return len(g.arcs) }

// SetSupply sets node v's supply (positive) or demand (negative).
func (g *Graph) SetSupply(v int, b int64) { g.supply[v] = b }

// AddSupply adds to node v's supply.
func (g *Graph) AddSupply(v int, b int64) { g.supply[v] += b }

// AddArc appends an arc and returns its index. Capacity must be
// non-negative; cost may have any sign. An invalid arc (endpoint out
// of range, negative capacity) is not appended: it records a
// *BuildError — the first one wins — and returns -1; the error is
// reported by BuildErr and by every solver.
func (g *Graph) AddArc(from, to int, cap, cost int64) int {
	if from < 0 || from >= len(g.supply) || to < 0 || to >= len(g.supply) {
		g.setErr(&BuildError{
			Arc: len(g.arcs), From: from, To: to, Nodes: len(g.supply), Cap: cap,
			Reason: "endpoint out of range",
		})
		return -1
	}
	if cap < 0 {
		g.setErr(&BuildError{
			Arc: len(g.arcs), From: from, To: to, Nodes: len(g.supply), Cap: cap,
			Reason: "negative capacity",
		})
		return -1
	}
	g.arcs = append(g.arcs, Arc{From: from, To: to, Cap: cap, Cost: cost})
	return len(g.arcs) - 1
}

func (g *Graph) setErr(err error) {
	if g.err == nil {
		g.err = err
	}
}

// BuildErr returns the first construction error recorded by AddArc,
// or nil for a well-formed graph.
func (g *Graph) BuildErr() error { return g.err }

// Arc returns arc a.
func (g *Graph) Arc(a int) Arc { return g.arcs[a] }

// Result is an optimal solution of a min-cost-flow problem.
type Result struct {
	// Flow[a] is the optimal flow on arc a.
	Flow []int64
	// Pi[v] is an optimal node potential. For every arc a:
	//   flow 0       => Cost(a) - Pi[From] + Pi[To] >= 0
	//   0<flow<cap   => Cost(a) - Pi[From] + Pi[To] == 0
	//   flow == cap  => Cost(a) - Pi[From] + Pi[To] <= 0
	Pi []int64
	// Cost is the total flow cost.
	Cost int64
	// Pivots counts simplex pivots (0 for the SSP solver).
	Pivots int
}

// ReducedCost returns Cost(a) - Pi[From] + Pi[To] for result r on graph g.
func (g *Graph) ReducedCost(r *Result, a int) int64 {
	arc := g.arcs[a]
	return arc.Cost - r.Pi[arc.From] + r.Pi[arc.To]
}

// VerifyOptimal checks primal feasibility and complementary slackness of
// r against g, returning the first violation found. Intended for tests
// and debug assertions.
func (g *Graph) VerifyOptimal(r *Result) error {
	if len(r.Flow) != len(g.arcs) || len(r.Pi) != len(g.supply) {
		return fmt.Errorf("mcf: result shape mismatch")
	}
	excess := make([]int64, len(g.supply))
	copy(excess, g.supply)
	var cost int64
	for a, arc := range g.arcs {
		f := r.Flow[a]
		if f < 0 || f > arc.Cap {
			return fmt.Errorf("mcf: arc %d flow %d outside [0,%d]", a, f, arc.Cap)
		}
		excess[arc.From] -= f
		excess[arc.To] += f
		cost += f * arc.Cost
		if arc.Cap == 0 {
			continue // flow is forced; complementary slackness is vacuous
		}
		rc := g.ReducedCost(r, a)
		switch {
		case f == 0 && rc < 0:
			return fmt.Errorf("mcf: arc %d at lower bound with rc %d", a, rc)
		case f == arc.Cap && rc > 0:
			return fmt.Errorf("mcf: arc %d at capacity with rc %d", a, rc)
		case f > 0 && f < arc.Cap && rc != 0:
			return fmt.Errorf("mcf: arc %d interior with rc %d", a, rc)
		}
	}
	for v, e := range excess {
		if e != 0 {
			return fmt.Errorf("mcf: node %d conservation violated by %d", v, e)
		}
	}
	if cost != r.Cost {
		return fmt.Errorf("mcf: reported cost %d, recomputed %d", r.Cost, cost)
	}
	return nil
}
