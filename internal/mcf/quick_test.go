package mcf

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// Property: simplex and SSP agree on feasibility and optimal cost, and
// both solutions verify, for arbitrary random instances.
func TestQuickSimplexEqualsSSP(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		m := int(mRaw%20) + 1
		g := randomGraph(rng, n, m, seed%2 == 0)
		rs, errS := g.Solve()
		rp, errP := g.SolveSSP()
		if (errS == nil) != (errP == nil) {
			return false
		}
		if errS != nil {
			return true
		}
		if rs.Cost != rp.Cost {
			return false
		}
		return g.VerifyOptimal(rs) == nil && g.VerifyOptimal(rp) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all costs by a positive constant scales the optimal
// cost by the same constant (flows may differ among ties).
func TestQuickCostScaling(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int64(kRaw%7) + 1
		g := randomGraph(rng, 6, 14, true)
		r1, err1 := g.Solve()
		g2 := NewGraph(g.NumNodes())
		for v := 0; v < g.NumNodes(); v++ {
			g2.SetSupply(v, g.supply[v])
		}
		for a := 0; a < g.NumArcs(); a++ {
			arc := g.Arc(a)
			g2.AddArc(arc.From, arc.To, arc.Cap, arc.Cost*k)
		}
		r2, err2 := g2.Solve()
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return r2.Cost == r1.Cost*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: reversing every arc and negating supplies mirrors the
// problem; the optimal cost is unchanged.
func TestQuickMirrorSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 6, 12, true)
		r1, err1 := g.Solve()
		g2 := NewGraph(g.NumNodes())
		for v := 0; v < g.NumNodes(); v++ {
			g2.SetSupply(v, -g.supply[v])
		}
		for a := 0; a < g.NumArcs(); a++ {
			arc := g.Arc(a)
			g2.AddArc(arc.To, arc.From, arc.Cap, arc.Cost)
		}
		r2, err2 := g2.Solve()
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return r1.Cost == r2.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the cost-scaling solver agrees with the network simplex on
// feasibility, optimal cost, and produces a verifiable solution.
func TestQuickCostScalingEqualsSimplex(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		m := int(mRaw%22) + 1
		g := randomGraph(rng, n, m, seed%2 == 1)
		rs, errS := g.Solve()
		rc, errC := g.SolveCostScaling()
		if (errS == nil) != (errC == nil) {
			return false
		}
		if errS != nil {
			return true
		}
		if rs.Cost != rc.Cost {
			return false
		}
		return g.VerifyOptimal(rc) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property (a): all three pivot rules and all three solvers agree on
// feasibility and optimal cost for arbitrary random instances, and
// every simplex solution verifies.
func TestQuickAllRulesAllSolversAgree(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		m := int(mRaw%24) + 1
		g := randomGraph(rng, n, m, seed%2 == 0)
		rs, errS := g.SolveWith(FirstEligible)
		for _, rule := range []PivotRule{BlockSearch, CandidateList} {
			r, err := g.SolveWith(rule)
			if (errS == nil) != (err == nil) {
				return false
			}
			if errS != nil {
				continue
			}
			if r.Cost != rs.Cost || g.VerifyOptimal(r) != nil {
				return false
			}
		}
		rp, errP := g.SolveSSP()
		rc, errC := g.SolveCostScaling()
		if (errS == nil) != (errP == nil) || (errS == nil) != (errC == nil) {
			return false
		}
		if errS != nil {
			return true
		}
		return rp.Cost == rs.Cost && rc.Cost == rs.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property (b): Resolve after arbitrary random cost/capacity
// perturbations equals a cold Solve on the perturbed graph exactly
// (optimal cost and a verified certificate).
func TestQuickResolveEqualsCold(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		m := int(mRaw%24) + 1
		g := randomGraph(rng, n, m, true)
		sv := NewSolver()
		if _, err := sv.SolveWith(g, FirstEligible); err != nil {
			return true // infeasible base: nothing to resolve from
		}
		var ups []ArcUpdate
		for a := 0; a < g.NumArcs(); a++ {
			if rng.Intn(2) == 0 {
				continue
			}
			arc := g.Arc(a)
			ncap := arc.Cap + int64(rng.Intn(9)-4)
			if ncap < 0 {
				ncap = 0
			}
			ups = append(ups, ArcUpdate{Arc: a, Cost: arc.Cost + int64(rng.Intn(13)-6), Cap: ncap})
		}
		pg := ApplyUpdates(g, ups)
		warm, werr := sv.Resolve(ups)
		cold, cerr := pg.Solve()
		if (werr == nil) != (cerr == nil) {
			return false
		}
		if werr != nil {
			return true
		}
		return warm.Cost == cold.Cost && pg.VerifyOptimal(warm) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property (c): a Solver reused across a randomized instance sequence
// matches fresh-solver results byte-for-byte at every step.
func TestQuickSolverReuseByteIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reused := NewSolver()
		for it := 0; it < 6; it++ {
			n := 2 + rng.Intn(12)
			m := 1 + rng.Intn(30)
			g := randomGraph(rng, n, m, it%2 == 0)
			rule := allRules[it%len(allRules)]
			var fresh Solver
			fr, ferr := fresh.SolveWith(g, rule)
			rr, rerr := reused.SolveWith(g, rule)
			if (ferr == nil) != (rerr == nil) {
				return false
			}
			if ferr != nil {
				continue
			}
			if fr.Cost != rr.Cost || fr.Pivots != rr.Pivots ||
				!slices.Equal(fr.Flow, rr.Flow) || !slices.Equal(fr.Pi, rr.Pi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
