package mcf

// SolveCostScaling solves the problem with the Goldberg-Tarjan
// successive-approximation (cost-scaling push-relabel) algorithm, an
// independent exact method used to cross-validate the network simplex
// (LEMON ships the same pair of solvers [20]).
//
// Costs are scaled by (n+1) so that an ε < 1 final phase guarantees an
// optimal integer flow. Node prices are refined per phase; push and
// relabel operate on admissible residual arcs (reduced cost < 0).
func (g *Graph) SolveCostScaling() (*Result, error) {
	n := len(g.supply)
	m := len(g.arcs)
	var sum int64
	for _, b := range g.supply {
		sum += b
	}
	if sum != 0 {
		return nil, ErrInfeasible
	}
	if n == 0 {
		return &Result{}, nil
	}

	// Residual arc representation: forward and backward twins.
	// Arc 2i is g.arcs[i], arc 2i+1 its reverse.
	ra := make([]rarc, 2*m)
	resid := make([]int64, 2*m)
	head := make([][]int32, n)
	alpha := int64(n + 1)
	for i, a := range g.arcs {
		ra[2*i] = rarc{to: int32(a.To), rev: int32(2*i + 1), cost: a.Cost * alpha}
		ra[2*i+1] = rarc{to: int32(a.From), rev: int32(2 * i), cost: -a.Cost * alpha}
		resid[2*i] = a.Cap
		resid[2*i+1] = 0
		head[a.From] = append(head[a.From], int32(2*i))
		head[a.To] = append(head[a.To], int32(2*i+1))
	}

	// Feasibility first: max-flow from supplies to demands over the
	// residual graph ignoring costs (simple BFS augmentation;
	// instances here are moderate). Infeasibility must be detected
	// before price refinement, which assumes a feasible circulation.
	excess := make([]int64, n)
	copy(excess, g.supply)
	if err := saturateSupplies(n, ra, resid, head, excess); err != nil {
		return nil, err
	}

	// Cost scaling on the now-feasible flow.
	price := make([]int64, n)
	var maxC int64 = 1
	for _, a := range g.arcs {
		c := a.Cost * alpha
		if c < 0 {
			c = -c
		}
		if c > maxC {
			maxC = c
		}
	}
	eps := maxC
	buf := make([]int32, 0, n)
	for eps > 1 {
		eps /= 4
		if eps < 1 {
			eps = 1
		}
		// Saturate all admissible arcs (reduced cost < 0).
		for u := 0; u < n; u++ {
			for _, ai := range head[u] {
				if resid[ai] > 0 && ra[ai].cost+price[u]-price[ra[ai].to] < 0 {
					v := ra[ai].to
					excess[u] -= resid[ai]
					excess[v] += resid[ai]
					resid[ra[ai].rev] += resid[ai]
					resid[ai] = 0
				}
			}
		}
		// Active node processing (FIFO push-relabel).
		queue := buf[:0]
		inQ := make([]bool, n)
		for v := 0; v < n; v++ {
			if excess[v] > 0 {
				queue = append(queue, int32(v))
				inQ[v] = true
			}
		}
		for qi := 0; qi < len(queue); qi++ {
			u := int(queue[qi])
			inQ[u] = false
			for excess[u] > 0 {
				pushed := false
				for _, ai := range head[u] {
					if resid[ai] <= 0 {
						continue
					}
					v := int(ra[ai].to)
					if ra[ai].cost+price[u]-price[v] >= 0 {
						continue
					}
					amt := excess[u]
					if resid[ai] < amt {
						amt = resid[ai]
					}
					resid[ai] -= amt
					resid[ra[ai].rev] += amt
					excess[u] -= amt
					excess[v] += amt
					pushed = true
					if excess[v] > 0 && !inQ[v] {
						queue = append(queue, int32(v))
						inQ[v] = true
					}
					if excess[u] == 0 {
						break
					}
				}
				if !pushed {
					// Relabel: lower u's price just enough to create
					// an admissible arc.
					var best int64 = 1 << 62
					for _, ai := range head[u] {
						if resid[ai] <= 0 {
							continue
						}
						rc := ra[ai].cost + price[u] - price[int(ra[ai].to)]
						if rc < best {
							best = rc
						}
					}
					if best >= 1<<61 {
						return nil, ErrInfeasible
					}
					price[u] -= best + eps
				}
			}
		}
		buf = queue
	}

	res := &Result{Flow: make([]int64, m), Pi: make([]int64, n)}
	for i, a := range g.arcs {
		res.Flow[i] = a.Cap - resid[2*i]
		res.Cost += res.Flow[i] * a.Cost
	}
	// Prices are in scaled units; ε < 1 (scaled) guarantees the flow is
	// optimal. Exact integer potentials for the original costs come from
	// a Bellman-Ford pass on the final residual graph (as in SolveSSP).
	dist := make([]int64, n)
	for iter := 0; iter < n; iter++ {
		changed := false
		for i, a := range g.arcs {
			if res.Flow[i] < a.Cap && dist[a.From]+a.Cost < dist[a.To] {
				dist[a.To] = dist[a.From] + a.Cost
				changed = true
			}
			if res.Flow[i] > 0 && dist[a.To]-a.Cost < dist[a.From] {
				dist[a.From] = dist[a.To] - a.Cost
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for v := 0; v < n; v++ {
		res.Pi[v] = -dist[v]
	}
	return res, nil
}

// rarc is one direction of a residual arc pair.
type rarc struct {
	to   int32
	rev  int32 // index of the twin
	cost int64 // scaled cost
}

// saturateSupplies routes all excess to deficits ignoring costs, via
// BFS augmenting paths on the residual graph. It mutates resid/excess
// and fails if the supplies cannot be routed.
func saturateSupplies(n int, ra []rarc, resid []int64, head [][]int32, excess []int64) error {
	prev := make([]int32, n)
	for {
		src := -1
		for v := 0; v < n; v++ {
			if excess[v] > 0 {
				src = v
				break
			}
		}
		if src < 0 {
			return nil
		}
		// BFS to any deficit node.
		for i := range prev {
			prev[i] = -1
		}
		prev[src] = -2
		q := []int32{int32(src)}
		snk := -1
		for qi := 0; qi < len(q) && snk < 0; qi++ {
			u := int(q[qi])
			for _, ai := range head[u] {
				if resid[ai] <= 0 {
					continue
				}
				v := int(ra[ai].to)
				if prev[v] != -1 {
					continue
				}
				prev[v] = ai
				if excess[v] < 0 {
					snk = v
					break
				}
				q = append(q, int32(v))
			}
		}
		if snk < 0 {
			return ErrInfeasible
		}
		// Bottleneck and augment.
		amt := excess[src]
		if -excess[snk] < amt {
			amt = -excess[snk]
		}
		for v := snk; v != src; {
			ai := prev[v]
			if resid[ai] < amt {
				amt = resid[ai]
			}
			v = int(ra[ra[ai].rev].to)
		}
		for v := snk; v != src; {
			ai := prev[v]
			resid[ai] -= amt
			resid[ra[ai].rev] += amt
			v = int(ra[ra[ai].rev].to)
		}
		excess[src] -= amt
		excess[snk] += amt
	}
}
