package mcf

// SolveSSP solves the problem with a successive-shortest-path algorithm
// using Bellman-Ford searches. It is exponentially simpler than the
// network simplex and serves as the reference oracle in tests; it is
// far too slow for production graphs.
func (g *Graph) SolveSSP() (*Result, error) {
	if g.err != nil {
		return nil, g.err
	}
	n := len(g.supply)
	m := len(g.arcs)
	flow := make([]int64, m)
	excess := make([]int64, n)
	copy(excess, g.supply)

	// Saturate negative arcs so every remaining residual arc on an
	// empty flow has non-negative cost pattern handled by Bellman-Ford
	// anyway; saturation keeps the invariant that the zero-potential
	// start is consistent and bounds the work.
	for a, arc := range g.arcs {
		if arc.Cost < 0 && arc.Cap > 0 {
			flow[a] = arc.Cap
			excess[arc.From] -= arc.Cap
			excess[arc.To] += arc.Cap
		}
	}

	const inf = int64(1) << 62
	dist := make([]int64, n)
	prevArc := make([]int, n)
	prevFwd := make([]bool, n)

	bellman := func(src int) {
		for i := range dist {
			dist[i] = inf
			prevArc[i] = -1
		}
		dist[src] = 0
		for iter := 0; iter < n; iter++ {
			changed := false
			for a, arc := range g.arcs {
				if flow[a] < arc.Cap && dist[arc.From] < inf &&
					dist[arc.From]+arc.Cost < dist[arc.To] {
					dist[arc.To] = dist[arc.From] + arc.Cost
					prevArc[arc.To] = a
					prevFwd[arc.To] = true
					changed = true
				}
				if flow[a] > 0 && dist[arc.To] < inf &&
					dist[arc.To]-arc.Cost < dist[arc.From] {
					dist[arc.From] = dist[arc.To] - arc.Cost
					prevArc[arc.From] = a
					prevFwd[arc.From] = false
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}

	for {
		src := -1
		for v := 0; v < n; v++ {
			if excess[v] > 0 {
				src = v
				break
			}
		}
		if src < 0 {
			break
		}
		bellman(src)
		// Nearest deficit node.
		snk := -1
		for v := 0; v < n; v++ {
			if excess[v] < 0 && dist[v] < inf && (snk < 0 || dist[v] < dist[snk]) {
				snk = v
			}
		}
		if snk < 0 {
			return nil, ErrInfeasible
		}
		// Bottleneck along the path.
		amt := excess[src]
		if -excess[snk] < amt {
			amt = -excess[snk]
		}
		for v := snk; v != src; {
			a := prevArc[v]
			if prevFwd[v] {
				if r := g.arcs[a].Cap - flow[a]; r < amt {
					amt = r
				}
				v = g.arcs[a].From
			} else {
				if flow[a] < amt {
					amt = flow[a]
				}
				v = g.arcs[a].To
			}
		}
		for v := snk; v != src; {
			a := prevArc[v]
			if prevFwd[v] {
				flow[a] += amt
				v = g.arcs[a].From
			} else {
				flow[a] -= amt
				v = g.arcs[a].To
			}
		}
		excess[src] -= amt
		excess[snk] += amt
	}

	// Optimal potentials: Bellman-Ford from a virtual zero-cost source
	// to every node over the final residual graph.
	for i := range dist {
		dist[i] = 0
	}
	for iter := 0; iter < n; iter++ {
		changed := false
		for a, arc := range g.arcs {
			if flow[a] < arc.Cap && dist[arc.From]+arc.Cost < dist[arc.To] {
				dist[arc.To] = dist[arc.From] + arc.Cost
				changed = true
			}
			if flow[a] > 0 && dist[arc.To]-arc.Cost < dist[arc.From] {
				dist[arc.From] = dist[arc.To] - arc.Cost
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	res := &Result{Flow: flow, Pi: make([]int64, n)}
	for v := 0; v < n; v++ {
		res.Pi[v] = -dist[v]
	}
	for a := range g.arcs {
		res.Cost += flow[a] * g.arcs[a].Cost
	}
	return res, nil
}
