// Solver-owned state and warm starts. A Solver owns every scratch
// array of the network simplex and is reused across solves: repeated
// solves of same-shape instances (the per-row refinement LPs, the ECO
// re-legalization loop) pay no per-call allocation after the first
// solve, and Resolve continues from the previous optimal basis instead
// of the all-artificial tree.
package mcf

import (
	"context"
	"errors"
	"fmt"
)

// ErrNoBasis is returned by Resolve when the Solver has no stored
// basis to warm-start from (no prior successful Solve).
var ErrNoBasis = errors.New("mcf: Resolve without a stored basis (call Solve first)")

// ArcUpdate changes the cost and capacity of one real arc between a
// Solve and a Resolve. Both fields are absolute new values, not
// deltas; endpoints and the node set cannot change.
type ArcUpdate struct {
	Arc  int   // arc index, in AddArc order
	Cost int64 // new cost
	Cap  int64 // new capacity (must be >= 0)
}

// Solver is a reusable network-simplex instance. The zero value is
// ready to use. A Solver is not safe for concurrent use.
//
// Results returned by a Solver alias its internal arrays: Flow and Pi
// are valid until the next call on the same Solver. Callers that need
// the values past that must copy them.
type Solver struct {
	sx       simplex
	res      Result
	hasBasis bool
	updBuf   []ArcUpdate // SolveGraphContext diff scratch
	stats    SolverStats
}

// SolverStats counts a Solver's activity since creation.
type SolverStats struct {
	ColdSolves int // full solves from the all-artificial basis
	WarmSolves int // Resolve calls continuing from a stored basis
	// LastRule is the concrete rule of the most recent solve (Auto
	// already resolved); LastPivots its pivot count.
	LastRule    PivotRule
	LastPivots  int
	TotalPivots int64
}

// NewSolver returns an empty Solver. Equivalent to new(Solver).
func NewSolver() *Solver { return &Solver{} }

// Stats returns the solve counters.
func (sv *Solver) Stats() SolverStats { return sv.stats }

// Solve solves g cold with the Auto pivot rule, storing the optimal
// basis for later Resolve calls.
func (sv *Solver) Solve(g *Graph) (*Result, error) { return sv.solveGraph(nil, g, Auto) }

// SolveContext is Solve with cancellation (see Graph.SolveContext).
func (sv *Solver) SolveContext(ctx context.Context, g *Graph) (*Result, error) {
	return sv.solveGraph(ctx, g, Auto)
}

// SolveWith is Solve with an explicit pivot rule.
func (sv *Solver) SolveWith(g *Graph, rule PivotRule) (*Result, error) {
	return sv.solveGraph(nil, g, rule)
}

// SolveWithContext is SolveWith with cancellation.
func (sv *Solver) SolveWithContext(ctx context.Context, g *Graph, rule PivotRule) (*Result, error) {
	return sv.solveGraph(ctx, g, rule)
}

// Resolve re-optimizes after the given arc updates, warm-starting from
// the basis stored by the previous solve, with the Auto pivot rule.
// The node set, arc endpoints and supplies are those of the previous
// instance; only costs and capacities may change. The result is
// exactly optimal for the updated instance — the warm start changes
// the path to the optimum, never the optimum.
func (sv *Solver) Resolve(updates []ArcUpdate) (*Result, error) {
	return sv.resolveChecked(nil, updates, Auto)
}

// ResolveContext is Resolve with cancellation.
func (sv *Solver) ResolveContext(ctx context.Context, updates []ArcUpdate) (*Result, error) {
	return sv.resolveChecked(ctx, updates, Auto)
}

// ResolveWith is Resolve with an explicit pivot rule.
func (sv *Solver) ResolveWith(updates []ArcUpdate, rule PivotRule) (*Result, error) {
	return sv.resolveChecked(nil, updates, rule)
}

// ResolveWithContext is ResolveWith with cancellation.
func (sv *Solver) ResolveWithContext(ctx context.Context, updates []ArcUpdate, rule PivotRule) (*Result, error) {
	return sv.resolveChecked(ctx, updates, rule)
}

// SolveGraphContext solves g, warm-starting when g has the same shape
// as the previously solved instance (same node count, supplies, arc
// count and endpoints): the cost/capacity differences become an update
// set for the warm path. Otherwise it solves cold. The returned bool
// reports whether the solve was warm-started. This is the entry point
// for callers like refine that rebuild a Graph per iteration but whose
// consecutive graphs usually share a shape.
func (sv *Solver) SolveGraphContext(ctx context.Context, g *Graph, rule PivotRule) (*Result, bool, error) {
	if g.err != nil {
		return nil, false, g.err
	}
	if sv.sameShape(g) {
		sv.updBuf = sv.updBuf[:0]
		for a, arc := range g.arcs {
			if sv.sx.cost[a] != arc.Cost || sv.sx.cap[a] != arc.Cap {
				sv.updBuf = append(sv.updBuf, ArcUpdate{Arc: a, Cost: arc.Cost, Cap: arc.Cap})
			}
		}
		res, err := sv.resolveChecked(ctx, sv.updBuf, rule)
		return res, true, err
	}
	res, err := sv.solveGraph(ctx, g, rule)
	return res, false, err
}

// sameShape reports whether g matches the stored instance in all the
// ways Resolve cannot repair: node count, supplies, arc count and
// endpoints.
func (sv *Solver) sameShape(g *Graph) bool {
	if !sv.hasBasis || len(g.supply) != sv.sx.n || len(g.arcs) != sv.sx.m {
		return false
	}
	for v, b := range g.supply {
		if sv.sx.supply[v] != b {
			return false
		}
	}
	for a, arc := range g.arcs {
		if int(sv.sx.from[a]) != arc.From || int(sv.sx.to[a]) != arc.To {
			return false
		}
	}
	return true
}

func (sv *Solver) solveGraph(ctx context.Context, g *Graph, rule PivotRule) (*Result, error) {
	if g.err != nil {
		return nil, g.err
	}
	var sum int64
	for _, b := range g.supply {
		sum += b
	}
	if sum != 0 {
		return nil, fmt.Errorf("mcf: supplies sum to %d, want 0: %w", sum, ErrInfeasible)
	}
	rule, err := resolveRule(rule, len(g.arcs)+len(g.supply))
	if err != nil {
		return nil, err
	}
	sv.hasBasis = false
	sv.sx.init(g)
	sv.sx.ctx = ctx
	if err := sv.sx.runPivots(rule, 0); err != nil {
		return nil, err
	}
	sv.stats.ColdSolves++
	return sv.finish(rule)
}

// resolveChecked validates the updates and rule, then enters the
// allocation-free warm path.
func (sv *Solver) resolveChecked(ctx context.Context, updates []ArcUpdate, rule PivotRule) (*Result, error) {
	if !sv.hasBasis {
		return nil, ErrNoBasis
	}
	for _, u := range updates {
		if u.Arc < 0 || u.Arc >= sv.sx.m {
			return nil, fmt.Errorf("mcf: Resolve: arc %d out of range [0,%d)", u.Arc, sv.sx.m)
		}
		if u.Cap < 0 {
			return nil, fmt.Errorf("mcf: Resolve: arc %d: negative capacity %d", u.Arc, u.Cap)
		}
	}
	rule, err := resolveRule(rule, sv.sx.m+sv.sx.n)
	if err != nil {
		return nil, err
	}
	return sv.resolve(ctx, updates, rule)
}

// warmPivotBudget bounds a warm-started run: the repaired basis is not
// strongly feasible, so Cunningham's anti-cycling argument does not
// apply and the solver hedges with a generous pivot budget before
// rebuilding the cold basis (which is strongly feasible and cannot
// cycle). The budget is far above observed warm pivot counts — hitting
// it costs one cold solve, never correctness.
func warmPivotBudget(total int) int { return 64*total + 4096 }

// resolve is the warm-start path: apply the updates to the stored
// instance, repair and re-price the basis, then pivot to optimality.
//
//mclegal:hotpath warm-start resolve path; TestResolveZeroAlloc pins reused Solvers to 0 allocs/op
func (sv *Solver) resolve(ctx context.Context, updates []ArcUpdate, rule PivotRule) (*Result, error) {
	s := &sv.sx
	s.ctx = ctx
	for _, u := range updates {
		s.cost[u.Arc] = u.Cost
		s.cap[u.Arc] = u.Cap
	}
	s.repairBasis()
	err := s.runPivots(rule, warmPivotBudget(s.m+s.n))
	if err == errPivotLimit {
		// Degenerate warm start: rebuild the strongly feasible cold
		// basis from the stored instance and finish without a budget.
		s.buildInitialBasis()
		err = s.runPivots(rule, 0)
	}
	if err != nil {
		return nil, err
	}
	sv.stats.WarmSolves++
	return sv.finish(rule)
}

// finish records stats, checks feasibility and assembles the reused
// Result. It is on the warm hot path: no allocation.
func (sv *Solver) finish(rule PivotRule) (*Result, error) {
	s := &sv.sx
	sv.stats.LastRule = rule
	sv.stats.LastPivots = s.pivots
	sv.stats.TotalPivots += int64(s.pivots)
	sv.hasBasis = true // the tree is a valid basis even when infeasible
	for a := s.m; a < s.m+s.n; a++ {
		if s.flow[a] != 0 {
			return nil, ErrInfeasible
		}
	}
	var cost int64
	for a := 0; a < s.m; a++ {
		cost += s.flow[a] * s.cost[a]
	}
	sv.res = Result{
		Flow:   s.flow[:s.m:s.m],
		Pi:     s.pi[:s.n:s.n],
		Cost:   cost,
		Pivots: s.pivots,
	}
	return &sv.res, nil
}
