package mcf

import (
	"errors"
	"math/rand"
	"testing"
)

func solveBoth(t *testing.T, g *Graph) (*Result, *Result) {
	t.Helper()
	rs, err := g.Solve()
	if err != nil {
		t.Fatalf("simplex: %v", err)
	}
	rp, err := g.SolveSSP()
	if err != nil {
		t.Fatalf("ssp: %v", err)
	}
	if err := g.VerifyOptimal(rs); err != nil {
		t.Fatalf("simplex solution invalid: %v", err)
	}
	if err := g.VerifyOptimal(rp); err != nil {
		t.Fatalf("ssp solution invalid: %v", err)
	}
	if rs.Cost != rp.Cost {
		t.Fatalf("simplex cost %d != ssp cost %d", rs.Cost, rp.Cost)
	}
	return rs, rp
}

func TestSimpleTransport(t *testing.T) {
	// 2 suppliers, 2 consumers; classic transportation optimum.
	g := NewGraph(4)
	g.SetSupply(0, 10)
	g.SetSupply(1, 5)
	g.SetSupply(2, -8)
	g.SetSupply(3, -7)
	g.AddArc(0, 2, 10, 3)
	g.AddArc(0, 3, 10, 1)
	g.AddArc(1, 2, 10, 2)
	g.AddArc(1, 3, 10, 4)
	rs, _ := solveBoth(t, g)
	// Optimal: 0->3: 7 (cost 7), 0->2: 3 (9), 1->2: 5 (10) = 26.
	if rs.Cost != 26 {
		t.Errorf("cost = %d, want 26", rs.Cost)
	}
}

func TestSingleArcPath(t *testing.T) {
	g := NewGraph(2)
	g.SetSupply(0, 4)
	g.SetSupply(1, -4)
	g.AddArc(0, 1, 10, 7)
	rs, _ := solveBoth(t, g)
	if rs.Cost != 28 || rs.Flow[0] != 4 {
		t.Errorf("cost=%d flow=%v", rs.Cost, rs.Flow)
	}
}

func TestNegativeCycleCirculation(t *testing.T) {
	// A pure circulation (all supplies zero) with a profitable cycle:
	// the optimum saturates the cycle.
	g := NewGraph(3)
	g.AddArc(0, 1, 5, -4)
	g.AddArc(1, 2, 3, 1)
	g.AddArc(2, 0, 7, 1)
	rs, _ := solveBoth(t, g)
	// Cycle cost -2 per unit, bottleneck 3 => cost -6.
	if rs.Cost != -6 {
		t.Errorf("cost = %d, want -6", rs.Cost)
	}
	if rs.Flow[1] != 3 {
		t.Errorf("cycle not saturated: %v", rs.Flow)
	}
}

func TestNoProfitableCirculation(t *testing.T) {
	g := NewGraph(3)
	g.AddArc(0, 1, 5, 2)
	g.AddArc(1, 2, 5, 2)
	g.AddArc(2, 0, 5, -3) // cycle cost +1: not profitable
	rs, _ := solveBoth(t, g)
	if rs.Cost != 0 {
		t.Errorf("cost = %d, want 0", rs.Cost)
	}
}

func TestInfeasibleDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.SetSupply(0, 5)
	g.SetSupply(2, -5)
	g.AddArc(0, 1, 10, 1) // node 2 unreachable
	if _, err := g.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("simplex err = %v, want infeasible", err)
	}
	if _, err := g.SolveSSP(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("ssp err = %v, want infeasible", err)
	}
}

func TestInfeasibleCapacity(t *testing.T) {
	g := NewGraph(2)
	g.SetSupply(0, 5)
	g.SetSupply(1, -5)
	g.AddArc(0, 1, 3, 1)
	if _, err := g.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want infeasible", err)
	}
}

func TestUnbalancedSupplies(t *testing.T) {
	g := NewGraph(2)
	g.SetSupply(0, 5)
	if _, err := g.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want infeasible", err)
	}
}

func TestSelfLoopNegative(t *testing.T) {
	g := NewGraph(1)
	g.AddArc(0, 0, 4, -2)
	rs, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cost != -8 || rs.Flow[0] != 4 {
		t.Errorf("self loop: cost=%d flow=%v", rs.Cost, rs.Flow)
	}
	if err := g.VerifyOptimal(rs); err != nil {
		t.Error(err)
	}
}

func TestZeroCapacityArc(t *testing.T) {
	g := NewGraph(2)
	g.SetSupply(0, 1)
	g.SetSupply(1, -1)
	g.AddArc(0, 1, 0, -10)
	g.AddArc(0, 1, 5, 2)
	rs, _ := solveBoth(t, g)
	if rs.Cost != 2 || rs.Flow[0] != 0 {
		t.Errorf("zero-cap arc carried flow: %+v", rs)
	}
}

func TestParallelArcs(t *testing.T) {
	g := NewGraph(2)
	g.SetSupply(0, 10)
	g.SetSupply(1, -10)
	g.AddArc(0, 1, 4, 1)
	g.AddArc(0, 1, 4, 3)
	g.AddArc(0, 1, 4, 2)
	rs, _ := solveBoth(t, g)
	// 4@1 + 4@2 + 2@3 = 18.
	if rs.Cost != 18 {
		t.Errorf("cost = %d, want 18", rs.Cost)
	}
}

func TestBothPivotRulesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 8, 20, true)
		r1, err1 := g.SolveWith(FirstEligible)
		r2, err2 := g.SolveWith(BlockSearch)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: feasibility disagreement %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if r1.Cost != r2.Cost {
			t.Fatalf("trial %d: cost %d vs %d", trial, r1.Cost, r2.Cost)
		}
		if err := g.VerifyOptimal(r1); err != nil {
			t.Fatal(err)
		}
		if err := g.VerifyOptimal(r2); err != nil {
			t.Fatal(err)
		}
	}
}

// randomGraph builds a random instance; when balanced is true a random
// transshipment supply vector summing to zero is added.
func randomGraph(rng *rand.Rand, n, m int, balanced bool) *Graph {
	g := NewGraph(n)
	for a := 0; a < m; a++ {
		u, v := rng.Intn(n), rng.Intn(n)
		g.AddArc(u, v, int64(rng.Intn(10)), int64(rng.Intn(21)-10))
	}
	if balanced {
		for k := 0; k < n/2; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			b := int64(rng.Intn(5))
			g.AddSupply(u, b)
			g.AddSupply(v, -b)
		}
	}
	return g
}

func TestRandomizedAgainstSSP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	feasible, infeasible := 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(9)
		m := 1 + rng.Intn(25)
		g := randomGraph(rng, n, m, trial%2 == 0)
		rs, errS := g.Solve()
		rp, errP := g.SolveSSP()
		if (errS == nil) != (errP == nil) {
			t.Fatalf("trial %d: simplex err %v, ssp err %v", trial, errS, errP)
		}
		if errS != nil {
			infeasible++
			continue
		}
		feasible++
		if rs.Cost != rp.Cost {
			t.Fatalf("trial %d: simplex %d != ssp %d", trial, rs.Cost, rp.Cost)
		}
		if err := g.VerifyOptimal(rs); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := g.VerifyOptimal(rp); err != nil {
			t.Fatalf("trial %d ssp: %v", trial, err)
		}
	}
	if feasible < 50 || infeasible < 10 {
		t.Logf("coverage: feasible=%d infeasible=%d", feasible, infeasible)
	}
}

func TestLargeChainPerformance(t *testing.T) {
	// A long path with supplies at both ends: exercises deep trees and
	// the re-rooting code.
	const n = 3000
	g := NewGraph(n)
	g.SetSupply(0, 100)
	g.SetSupply(n-1, -100)
	for v := 0; v+1 < n; v++ {
		g.AddArc(v, v+1, 200, int64(v%7)+1)
	}
	rs, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyOptimal(rs); err != nil {
		t.Fatal(err)
	}
	var want int64
	for v := 0; v+1 < n; v++ {
		want += 100 * (int64(v%7) + 1)
	}
	if rs.Cost != want {
		t.Errorf("chain cost = %d, want %d", rs.Cost, want)
	}
}

func TestVerifyOptimalCatchesBadResults(t *testing.T) {
	g := NewGraph(2)
	g.SetSupply(0, 1)
	g.SetSupply(1, -1)
	g.AddArc(0, 1, 5, 3)
	rs, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	bad := &Result{Flow: []int64{2}, Pi: rs.Pi, Cost: 6}
	if err := g.VerifyOptimal(bad); err == nil {
		t.Errorf("conservation violation not caught")
	}
	bad = &Result{Flow: rs.Flow, Pi: []int64{0, 100}, Cost: rs.Cost}
	if err := g.VerifyOptimal(bad); err == nil {
		t.Errorf("complementary slackness violation not caught")
	}
	bad = &Result{Flow: rs.Flow, Pi: rs.Pi, Cost: rs.Cost + 1}
	if err := g.VerifyOptimal(bad); err == nil {
		t.Errorf("cost mismatch not caught")
	}
}

func TestAddArcRecordsBuildError(t *testing.T) {
	g := NewGraph(1)
	if a := g.AddArc(0, 5, 1, 1); a != -1 {
		t.Errorf("out-of-range arc got index %d, want -1", a)
	}
	var be *BuildError
	if !errors.As(g.BuildErr(), &be) {
		t.Fatalf("BuildErr = %v, want *BuildError", g.BuildErr())
	}
	if be.From != 0 || be.To != 5 || be.Nodes != 1 {
		t.Errorf("build error fields = %+v", be)
	}
	// The first error wins; later mistakes don't overwrite it.
	if a := g.AddArc(0, 0, -1, 1); a != -1 {
		t.Errorf("negative-cap arc got index %d, want -1", a)
	}
	if got := g.BuildErr(); got != error(be) {
		t.Errorf("first error overwritten: %v", got)
	}
	// The invalid arcs were not appended.
	if g.NumArcs() != 0 {
		t.Errorf("invalid arcs appended: %d", g.NumArcs())
	}
	// Every solver refuses a malformed graph with the recorded error.
	if _, err := g.Solve(); !errors.As(err, &be) {
		t.Errorf("Solve err = %v, want *BuildError", err)
	}
	if _, err := g.SolveSSP(); !errors.As(err, &be) {
		t.Errorf("SolveSSP err = %v, want *BuildError", err)
	}
}

func TestNegativeCapacityBuildError(t *testing.T) {
	g := NewGraph(2)
	g.AddArc(0, 1, -1, 0)
	var be *BuildError
	if !errors.As(g.BuildErr(), &be) || be.Reason != "negative capacity" {
		t.Fatalf("BuildErr = %v", g.BuildErr())
	}
}

func TestAddNodeAndAccessors(t *testing.T) {
	g := NewGraph(0)
	a := g.AddNode()
	b := g.AddNode()
	if a != 0 || b != 1 || g.NumNodes() != 2 {
		t.Fatalf("node ids wrong")
	}
	id := g.AddArc(a, b, 3, -2)
	if g.NumArcs() != 1 || g.Arc(id) != (Arc{From: 0, To: 1, Cap: 3, Cost: -2}) {
		t.Errorf("arc accessor wrong: %+v", g.Arc(id))
	}
}
