// Benchmark graph families. These are the instance shapes BENCH_mcf.json
// measures and the cross-solver validation covers: the refinement
// network of Section 3.3, dense assignment networks (the min-cost-flow
// form of the Section 3.2 matchings), and random circulations. They
// live in the package (not a _test file) so cmd/benchjson and the
// property tests build the same instances the committed numbers
// describe.
package mcf

import "math/rand"

// RefinementGraph builds a graph with the shape of the fixed-order
// refinement network (Section 3.3): n cell nodes all connected to a
// hub, plus chain arcs for neighbor constraints.
func RefinementGraph(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n + 1)
	hub := n
	for i := 0; i < n; i++ {
		gx := int64(rng.Intn(1 << 16))
		g.AddArc(i, hub, 4, gx)
		g.AddArc(hub, i, 4, -gx)
		g.AddArc(hub, i, 1<<20, -int64(rng.Intn(64)))
		g.AddArc(i, hub, 1<<20, int64(rng.Intn(1<<16)))
		if i > 0 && rng.Intn(4) != 0 {
			g.AddArc(i-1, i, 1<<20, -int64(2+rng.Intn(6)))
		}
	}
	return g
}

// AssignmentGraph builds a dense n×n transportation instance: n unit
// sources, n unit sinks, every pair connected — the min-cost-flow form
// of the Section 3.2 assignment problems.
func AssignmentGraph(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(2 * n)
	for s := 0; s < n; s++ {
		g.SetSupply(s, 1)
		g.SetSupply(n+s, -1)
	}
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			g.AddArc(s, n+t, 1, int64(rng.Intn(10000)))
		}
	}
	return g
}

// CirculationGraph builds a zero-supply instance with m random arcs of
// mixed-sign cost over n nodes: negative-cost cycles force real pivot
// work without any supply to route.
func CirculationGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	for a := 0; a < m; a++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		if to == from {
			to = (to + 1) % n
		}
		g.AddArc(from, to, int64(1+rng.Intn(16)), int64(rng.Intn(201)-100))
	}
	return g
}

// PerturbCosts returns an update set changing about frac of g's arc
// costs by a small multiplicative nudge (capacities unchanged) — the
// "small perturbation" of the warm-start benchmark, shaped like the
// cost drift between consecutive ECO iterations. Applying the updates
// to a clone of g via ApplyUpdates reproduces the perturbed instance
// for a cold cross-check.
func PerturbCosts(g *Graph, frac float64, seed int64) []ArcUpdate {
	rng := rand.New(rand.NewSource(seed))
	var ups []ArcUpdate
	for a, arc := range g.arcs {
		if rng.Float64() >= frac {
			continue
		}
		c := arc.Cost + int64(rng.Intn(7)-3)
		ups = append(ups, ArcUpdate{Arc: a, Cost: c, Cap: arc.Cap})
	}
	return ups
}

// ApplyUpdates returns a copy of g with the updates applied — the
// cold-solve twin of a Resolve call, for validation.
func ApplyUpdates(g *Graph, ups []ArcUpdate) *Graph {
	ng := &Graph{
		supply: append([]int64(nil), g.supply...),
		arcs:   append([]Arc(nil), g.arcs...),
		err:    g.err,
	}
	for _, u := range ups {
		ng.arcs[u.Arc].Cost = u.Cost
		ng.arcs[u.Arc].Cap = u.Cap
	}
	return ng
}
