package mcf

import (
	"math/rand"
	"testing"
)

func BenchmarkSimplexRefinementShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := RefinementGraph(5000, 7)
		res, err := g.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Pivots), "pivots")
		}
	}
}

func BenchmarkSimplexTransport(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const src, dst = 60, 60
	g := NewGraph(src + dst)
	for s := 0; s < src; s++ {
		g.SetSupply(s, 50)
		for t := 0; t < dst; t++ {
			g.AddArc(s, src+t, 60, int64(rng.Intn(1000)))
		}
	}
	for t := 0; t < dst; t++ {
		g.SetSupply(src+t, -50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
