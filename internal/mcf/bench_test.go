package mcf

import (
	"math/rand"
	"testing"
)

// refinementLike builds a graph with the shape of the fixed-order
// refinement network: n cell nodes all connected to a hub, plus chain
// arcs.
func refinementLike(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n + 1)
	hub := n
	for i := 0; i < n; i++ {
		gx := int64(rng.Intn(1 << 16))
		g.AddArc(i, hub, 4, gx)
		g.AddArc(hub, i, 4, -gx)
		g.AddArc(hub, i, 1<<20, -int64(rng.Intn(64)))
		g.AddArc(i, hub, 1<<20, int64(rng.Intn(1<<16)))
		if i > 0 && rng.Intn(4) != 0 {
			g.AddArc(i-1, i, 1<<20, -int64(2+rng.Intn(6)))
		}
	}
	return g
}

func BenchmarkSimplexRefinementShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := refinementLike(5000, 7)
		res, err := g.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Pivots), "pivots")
		}
	}
}

func BenchmarkSimplexTransport(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const src, dst = 60, 60
	g := NewGraph(src + dst)
	for s := 0; s < src; s++ {
		g.SetSupply(s, 50)
		for t := 0; t < dst; t++ {
			g.AddArc(s, src+t, 60, int64(rng.Intn(1000)))
		}
	}
	for t := 0; t < dst; t++ {
		g.SetSupply(src+t, -50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
