package mcf

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"testing"
)

var allRules = []PivotRule{FirstEligible, BlockSearch, CandidateList}

// sameResult asserts byte-for-byte equality of two results.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Cost != b.Cost || a.Pivots != b.Pivots ||
		!slices.Equal(a.Flow, b.Flow) || !slices.Equal(a.Pi, b.Pi) {
		t.Fatalf("%s: results differ: cost %d vs %d, pivots %d vs %d", label, a.Cost, b.Cost, a.Pivots, b.Pivots)
	}
}

// A reused Solver must match a fresh Solver byte-for-byte on every
// instance of a randomized sequence, for every pivot rule (satellite
// property (c)).
func TestSolverReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, rule := range allRules {
		reused := NewSolver()
		for it := 0; it < 40; it++ {
			n := 2 + rng.Intn(30)
			m := 1 + rng.Intn(80)
			g := randomGraph(rng, n, m, true)
			var fresh Solver
			fr, ferr := fresh.SolveWith(g, rule)
			rr, rerr := reused.SolveWith(g, rule)
			if (ferr == nil) != (rerr == nil) {
				t.Fatalf("rule %v it %d: fresh err %v, reused err %v", rule, it, ferr, rerr)
			}
			if ferr != nil {
				continue
			}
			sameResult(t, rule.String(), fr, rr)
			if err := g.VerifyOptimal(rr); err != nil {
				t.Fatalf("rule %v it %d: %v", rule, it, err)
			}
		}
	}
}

// Resolve after random cost/capacity perturbations must equal a cold
// solve on the perturbed graph exactly — same optimal cost, and an
// optimality certificate against the perturbed instance (satellite
// property (b)). Capacity shrinks below the current flow exercise the
// basis-repair clamp path.
func TestResolveEqualsColdSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for it := 0; it < 60; it++ {
		n := 3 + rng.Intn(20)
		m := 2 + rng.Intn(60)
		g := randomGraph(rng, n, m, true)
		sv := NewSolver()
		base, err := sv.SolveWith(g, FirstEligible)
		if err != nil {
			continue // infeasible base instance: nothing to warm-start
		}
		_ = base
		var ups []ArcUpdate
		for a, arc := range g.arcs {
			if rng.Intn(3) != 0 {
				continue
			}
			nc := arc.Cost + int64(rng.Intn(11)-5)
			ncap := arc.Cap + int64(rng.Intn(7)-3)
			if ncap < 0 {
				ncap = 0
			}
			ups = append(ups, ArcUpdate{Arc: a, Cost: nc, Cap: ncap})
		}
		pg := ApplyUpdates(g, ups)
		warm, werr := sv.ResolveWith(ups, FirstEligible)
		cold, cerr := pg.SolveWith(FirstEligible)
		if (werr == nil) != (cerr == nil) {
			t.Fatalf("it %d: warm err %v, cold err %v", it, werr, cerr)
		}
		if werr != nil {
			if !errors.Is(werr, ErrInfeasible) {
				t.Fatalf("it %d: unexpected warm error %v", it, werr)
			}
			continue
		}
		if warm.Cost != cold.Cost {
			t.Fatalf("it %d: warm cost %d != cold cost %d", it, warm.Cost, cold.Cost)
		}
		if err := pg.VerifyOptimal(warm); err != nil {
			t.Fatalf("it %d: warm result not optimal on perturbed graph: %v", it, err)
		}
	}
}

// A Resolve chain (many perturbations without intervening cold solves)
// must stay exact: each step is checked against a cold solve.
func TestResolveChainStaysExact(t *testing.T) {
	g := RefinementGraph(120, 5)
	sv := NewSolver()
	if _, err := sv.Solve(g); err != nil {
		t.Fatal(err)
	}
	cur := g
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 20; step++ {
		ups := PerturbCosts(cur, 0.2, rng.Int63())
		cur = ApplyUpdates(cur, ups)
		warm, err := sv.Resolve(ups)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		cold, err := cur.Solve()
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		if warm.Cost != cold.Cost {
			t.Fatalf("step %d: warm cost %d != cold %d", step, warm.Cost, cold.Cost)
		}
		if err := cur.VerifyOptimal(warm); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	st := sv.Stats()
	if st.ColdSolves != 1 || st.WarmSolves != 20 {
		t.Errorf("stats = %+v, want 1 cold / 20 warm", st)
	}
}

// All three pivot rules and all three solvers (simplex, cost scaling,
// SSP) agree on the optimal cost of the benchmark graph families
// (satellite property (a) at family shapes; the quick-check variant in
// quick_test.go covers arbitrary random graphs).
func TestAllRulesAndSolversAgreeOnFamilies(t *testing.T) {
	graphs := map[string]*Graph{
		"refinement":  RefinementGraph(120, 3),
		"assignment":  AssignmentGraph(24, 4),
		"circulation": CirculationGraph(60, 240, 5),
	}
	for name, g := range graphs {
		var want int64
		for i, rule := range allRules {
			res, err := g.SolveWith(rule)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, rule, err)
			}
			if err := g.VerifyOptimal(res); err != nil {
				t.Fatalf("%s/%v: %v", name, rule, err)
			}
			if i == 0 {
				want = res.Cost
			} else if res.Cost != want {
				t.Fatalf("%s/%v: cost %d, want %d", name, rule, res.Cost, want)
			}
		}
		if res, err := g.SolveSSP(); err != nil || res.Cost != want {
			t.Fatalf("%s/ssp: cost %v err %v, want %d", name, res, err, want)
		}
		if res, err := g.SolveCostScaling(); err != nil || res.Cost != want {
			t.Fatalf("%s/costscaling: cost %v err %v, want %d", name, res, err, want)
		}
	}
}

// SolveGraphContext warm-starts on a same-shape graph and solves cold
// otherwise, reporting which path it took.
func TestSolveGraphContextWarmDetection(t *testing.T) {
	g := RefinementGraph(60, 9)
	sv := NewSolver()
	res, warm, err := sv.SolveGraphContext(context.Background(), g, Auto)
	if err != nil || warm {
		t.Fatalf("first solve: warm=%v err=%v, want cold success", warm, err)
	}
	first := res.Cost
	// Same shape, nudged costs: must warm-start and match a cold solve.
	pg := ApplyUpdates(g, PerturbCosts(g, 0.3, 2))
	res, warm, err = sv.SolveGraphContext(context.Background(), pg, Auto)
	if err != nil || !warm {
		t.Fatalf("perturbed solve: warm=%v err=%v, want warm success", warm, err)
	}
	cold, err := pg.Solve()
	if err != nil || cold.Cost != res.Cost {
		t.Fatalf("warm cost %d, cold cost %v (err %v)", res.Cost, cold, err)
	}
	// Identical graph again: zero updates, zero pivots, same cost.
	res, warm, err = sv.SolveGraphContext(context.Background(), pg, Auto)
	if err != nil || !warm || res.Pivots != 0 || res.Cost != cold.Cost {
		t.Fatalf("identical re-solve: warm=%v pivots=%d cost=%d err=%v", warm, res.Pivots, res.Cost, err)
	}
	// Different shape: cold again.
	g2 := RefinementGraph(61, 9)
	if _, warm, err = sv.SolveGraphContext(context.Background(), g2, Auto); err != nil || warm {
		t.Fatalf("different shape: warm=%v err=%v, want cold", warm, err)
	}
	if first == 0 {
		t.Fatal("degenerate instance: zero optimal cost")
	}
	st := sv.Stats()
	if st.ColdSolves != 2 || st.WarmSolves != 2 {
		t.Errorf("stats = %+v, want 2 cold / 2 warm", st)
	}
}

func TestResolveErrors(t *testing.T) {
	var sv Solver
	if _, err := sv.Resolve(nil); !errors.Is(err, ErrNoBasis) {
		t.Fatalf("Resolve without basis: %v, want ErrNoBasis", err)
	}
	g := RefinementGraph(10, 1)
	if _, err := sv.Solve(g); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Resolve([]ArcUpdate{{Arc: g.NumArcs(), Cost: 1, Cap: 1}}); err == nil {
		t.Fatal("out-of-range arc accepted")
	}
	if _, err := sv.Resolve([]ArcUpdate{{Arc: 0, Cost: 1, Cap: -1}}); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := sv.ResolveWith(nil, PivotRule(99)); err == nil {
		t.Fatal("unknown pivot rule accepted")
	}
	// The stored basis must survive rejected updates.
	if _, err := sv.Resolve(nil); err != nil {
		t.Fatalf("no-op Resolve after rejected updates: %v", err)
	}
}

// Resolve on a cancelled context returns the context error.
func TestResolveHonorsContext(t *testing.T) {
	g := RefinementGraph(200, 3)
	sv := NewSolver()
	if _, err := sv.Solve(g); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ups := PerturbCosts(g, 0.9, 8)
	if _, err := sv.ResolveContext(ctx, ups); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Resolve: %v, want context.Canceled", err)
	}
}

// Auto resolves by instance size; the rule actually used is reported
// through Stats.
func TestAutoRuleResolution(t *testing.T) {
	small := RefinementGraph(100, 1) // well under autoArcThreshold
	sv := NewSolver()
	if _, err := sv.Solve(small); err != nil {
		t.Fatal(err)
	}
	if r := sv.Stats().LastRule; r != FirstEligible {
		t.Errorf("small instance rule = %v, want FirstEligible", r)
	}
	big := RefinementGraph(2000, 1) // ~9000 arcs: over the threshold
	if _, err := sv.Solve(big); err != nil {
		t.Fatal(err)
	}
	if r := sv.Stats().LastRule; r != CandidateList {
		t.Errorf("large instance rule = %v, want CandidateList", r)
	}
}

func TestPivotRuleString(t *testing.T) {
	want := map[PivotRule]string{
		Auto: "auto", FirstEligible: "first-eligible",
		BlockSearch: "block-search", CandidateList: "candidate-list",
		PivotRule(42): "PivotRule(42)",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), s)
		}
	}
}

// The warm Resolve path of a reused Solver performs zero heap
// allocations per solve once warmed up. This is the dynamic witness the
// static noalloc proof (root: (*Solver).resolve) is pinned to by
// analysis.TestHotPathRootsMatchDynamicProof.
func TestResolveZeroAlloc(t *testing.T) {
	g := RefinementGraph(400, 11)
	var sv Solver
	if _, err := sv.SolveWith(g, FirstEligible); err != nil {
		t.Fatal(err)
	}
	upsA := PerturbCosts(g, 0.05, 1)
	if len(upsA) == 0 {
		t.Fatal("empty perturbation")
	}
	upsB := make([]ArcUpdate, len(upsA))
	for i, u := range upsA {
		upsB[i] = ArcUpdate{Arc: u.Arc, Cost: g.Arc(u.Arc).Cost, Cap: u.Cap}
	}
	// Warm up until the scratch capacities (children lists, candidate
	// queue, repair buffers) stop growing across the A/B cycle.
	flip := false
	next := func() []ArcUpdate {
		ups := upsA
		if flip {
			ups = upsB
		}
		flip = !flip
		return ups
	}
	for i := 0; i < 16; i++ {
		if _, err := sv.ResolveWith(next(), FirstEligible); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sv.ResolveWith(next(), FirstEligible); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Resolve allocates %.1f times per op, want 0", allocs)
	}
}

// A reused Solver's cold solves also stop allocating once its arrays
// fit the instance shape (the ≥10× allocs/op criterion of
// BENCH_mcf.json is rooted in this behaviour).
func TestReusedColdSolveZeroAlloc(t *testing.T) {
	g := RefinementGraph(300, 13)
	var sv Solver
	for i := 0; i < 4; i++ {
		if _, err := sv.SolveWith(g, FirstEligible); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := sv.SolveWith(g, FirstEligible); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("reused cold solve allocates %.1f times per op, want 0", allocs)
	}
}
