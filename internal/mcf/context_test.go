package mcf

import (
	"context"
	"errors"
	"testing"
)

func transportGraph() *Graph {
	g := NewGraph(4)
	g.SetSupply(0, 10)
	g.SetSupply(1, 5)
	g.SetSupply(2, -8)
	g.SetSupply(3, -7)
	g.AddArc(0, 2, 10, 3)
	g.AddArc(0, 3, 10, 1)
	g.AddArc(1, 2, 10, 2)
	g.AddArc(1, 3, 10, 4)
	return g
}

func TestSolveContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := transportGraph().SolveContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestSolveContextClean(t *testing.T) {
	res, err := transportGraph().SolveContext(context.Background())
	if err != nil {
		t.Fatalf("SolveContext: %v", err)
	}
	if res.Cost != 26 {
		t.Errorf("cost = %d, want 26", res.Cost)
	}
	// The ctx-less facade must agree: nil ctx only disables polling.
	plain, err := transportGraph().Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if plain.Cost != res.Cost {
		t.Errorf("Solve cost %d != SolveContext cost %d", plain.Cost, res.Cost)
	}
}
