package mcf

import (
	"context"
	"errors"
	"fmt"
)

// PivotRule selects the entering-arc strategy of the network simplex.
type PivotRule int

const (
	// FirstEligible scans arcs cyclically from the previous stop and
	// enters the first arc that violates its optimality condition.
	// This is the rule named by the paper (Section 3.3.1).
	FirstEligible PivotRule = iota
	// BlockSearch scans a block of arcs and enters the most violating
	// arc of the block; usually faster on large instances.
	BlockSearch
)

// ErrInfeasible is returned when the supplies cannot be routed.
var ErrInfeasible = errors.New("mcf: infeasible problem")

const (
	stateLower int8 = 1
	stateTree  int8 = 0
	stateUpper int8 = -1
)

// ctxCheckInterval is how many pivots the solver performs between
// cancellation checks: rare enough to stay off the pivot loop's
// profile, frequent enough that a cancelled refinement run stops
// within a bounded amount of work.
const ctxCheckInterval = 1024

// Solve runs the network simplex with the FirstEligible pivot rule.
func (g *Graph) Solve() (*Result, error) { return g.SolveWith(FirstEligible) }

// SolveContext is Solve with cancellation: the pivot loop polls ctx
// every ctxCheckInterval pivots and returns ctx.Err() once it is
// cancelled or past its deadline.
func (g *Graph) SolveContext(ctx context.Context) (*Result, error) {
	return g.SolveWithContext(ctx, FirstEligible)
}

// SolveWith runs the network simplex with the given pivot rule and
// returns optimal flows, potentials and cost.
func (g *Graph) SolveWith(rule PivotRule) (*Result, error) { return g.solve(nil, rule) }

// SolveWithContext is SolveWith with the cancellation behaviour of
// SolveContext.
func (g *Graph) SolveWithContext(ctx context.Context, rule PivotRule) (*Result, error) {
	return g.solve(ctx, rule)
}

func (g *Graph) solve(ctx context.Context, rule PivotRule) (*Result, error) {
	if g.err != nil {
		return nil, g.err
	}
	n := len(g.supply)
	m := len(g.arcs)
	var sum int64
	for _, b := range g.supply {
		sum += b
	}
	if sum != 0 {
		return nil, fmt.Errorf("mcf: supplies sum to %d, want 0: %w", sum, ErrInfeasible)
	}

	s := &simplex{
		n:    n,
		m:    m,
		root: n,
		ctx:  ctx,
	}
	total := m + n // real arcs then one artificial arc per node
	s.from = make([]int32, total)
	s.to = make([]int32, total)
	s.cap = make([]int64, total)
	s.cost = make([]int64, total)
	s.flow = make([]int64, total)
	s.state = make([]int8, total)

	var artCost int64 = 1
	for a, arc := range g.arcs {
		s.from[a] = int32(arc.From)
		s.to[a] = int32(arc.To)
		s.cap[a] = arc.Cap
		s.cost[a] = arc.Cost
		s.state[a] = stateLower
		c := arc.Cost
		if c < 0 {
			c = -c
		}
		artCost += c
	}

	nn := n + 1
	s.parent = make([]int32, nn)
	s.parentArc = make([]int32, nn)
	s.childIdx = make([]int32, nn)
	s.children = make([][]int32, nn)
	s.pi = make([]int64, nn)
	s.visited = make([]int32, nn)

	// Initial tree: every node hangs off the artificial root through an
	// artificial arc oriented by its supply sign. This tree is strongly
	// feasible.
	for v := 0; v < n; v++ {
		a := m + v
		b := g.supply[v]
		if b >= 0 {
			s.from[a] = int32(v)
			s.to[a] = int32(s.root)
			s.flow[a] = b
			s.pi[v] = artCost
		} else {
			s.from[a] = int32(s.root)
			s.to[a] = int32(v)
			s.flow[a] = -b
			s.pi[v] = -artCost
		}
		s.cap[a] = Unbounded
		s.cost[a] = artCost
		s.state[a] = stateTree
		s.parent[v] = int32(s.root)
		s.parentArc[v] = int32(a)
		s.childIdx[v] = int32(len(s.children[s.root]))
		s.children[s.root] = append(s.children[s.root], int32(v))
	}
	s.parent[s.root] = -1
	s.parentArc[s.root] = -1

	if err := s.run(rule); err != nil {
		return nil, err
	}

	// Feasibility: all artificial arcs must be drained.
	for a := m; a < total; a++ {
		if s.flow[a] != 0 {
			return nil, ErrInfeasible
		}
	}
	res := &Result{
		Flow:   s.flow[:m:m],
		Pi:     s.pi[:n:n],
		Pivots: s.pivots,
	}
	for a := 0; a < m; a++ {
		res.Cost += res.Flow[a] * g.arcs[a].Cost
	}
	return res, nil
}

type simplex struct {
	n, m, root int
	ctx        context.Context // nil: cancellation disabled

	from, to   []int32
	cap, cost  []int64
	flow       []int64
	state      []int8
	parent     []int32
	parentArc  []int32
	children   [][]int32
	childIdx   []int32
	pi         []int64
	visited    []int32 // join-search stamps
	stamp      int32
	pivots     int
	scanPos    int // next arc to examine (first-eligible / block start)
	path1Buf   []int32
	subtreeBuf []int32
}

// reducedCost of arc a under current potentials.
func (s *simplex) reducedCost(a int) int64 {
	return s.cost[a] + s.pi[s.to[a]] - s.pi[s.from[a]]
}

// eligible reports whether non-tree arc a violates its optimality
// condition.
func (s *simplex) eligible(a int) bool {
	switch s.state[a] {
	case stateLower:
		return s.reducedCost(a) < 0
	case stateUpper:
		return s.reducedCost(a) > 0
	case stateTree:
		return false // basic (tree) arcs never pivot in
	}
	return false
}

func (s *simplex) run(rule PivotRule) error {
	total := s.m + s.n
	if total == 0 {
		return nil
	}
	blockSize := 64
	for bs := blockSize; bs*bs < total; {
		bs *= 2
		blockSize = bs
	}
	for {
		if s.ctx != nil && s.pivots%ctxCheckInterval == 0 {
			if err := s.ctx.Err(); err != nil {
				return err
			}
		}
		in := -1
		switch rule {
		case FirstEligible:
			for cnt := 0; cnt < total; cnt++ {
				a := s.scanPos
				s.scanPos++
				if s.scanPos == total {
					s.scanPos = 0
				}
				if s.eligible(a) {
					in = a
					break
				}
			}
		case BlockSearch:
			remaining := total
			for remaining > 0 {
				end := s.scanPos + blockSize
				var best int64
				for a := s.scanPos; a < end && a < total; a++ {
					if !s.eligible(a) {
						continue
					}
					v := s.reducedCost(a)
					if v < 0 {
						v = -v
					}
					if v > best {
						best = v
						in = a
					}
				}
				remaining -= end - s.scanPos
				s.scanPos = end
				if s.scanPos >= total {
					s.scanPos = 0
				}
				if in >= 0 {
					break
				}
			}
		default:
			return fmt.Errorf("mcf: unknown pivot rule %d", rule)
		}
		if in < 0 {
			return nil // optimal
		}
		s.pivot(in)
		s.pivots++
	}
}

// dirUp is +1 if the tree arc of node v points from v to its parent.
func (s *simplex) dirUp(v int32) int64 {
	if s.from[s.parentArc[v]] == v {
		return 1
	}
	return -1
}

func (s *simplex) pivot(in int) {
	// Effective push direction of the entering arc.
	var first, second int32
	if s.state[in] == stateLower {
		first, second = s.from[in], s.to[in]
	} else {
		first, second = s.to[in], s.from[in]
	}

	// Join node: mark ancestors of first, walk up from second.
	s.stamp++
	for v := first; v >= 0; v = s.parent[v] {
		s.visited[v] = s.stamp
	}
	join := second
	for s.visited[join] != s.stamp {
		join = s.parent[join]
	}

	// Entering arc residual.
	var delta int64
	if s.state[in] == stateLower {
		delta = s.cap[in] - s.flow[in]
	} else {
		delta = s.flow[in]
	}
	leaveNode := int32(-1) // node whose parent arc leaves; -1: entering leaves
	leaveSide := 0

	// The cycle runs join -> first -> (entering) -> second -> join.
	// Choosing the last blocking arc in that order keeps the tree
	// strongly feasible (anti-cycling): strict < on the first path,
	// <= on the second.
	for v := first; v != join; v = s.parent[v] {
		a := s.parentArc[v]
		var res int64
		if s.dirUp(v) > 0 { // cycle pushes against arc direction
			res = s.flow[a]
		} else {
			res = s.cap[a] - s.flow[a]
		}
		if res < delta {
			delta = res
			leaveNode = v
			leaveSide = 1
		}
	}
	for v := second; v != join; v = s.parent[v] {
		a := s.parentArc[v]
		var res int64
		if s.dirUp(v) > 0 { // cycle pushes along arc direction
			res = s.cap[a] - s.flow[a]
		} else {
			res = s.flow[a]
		}
		if res <= delta {
			delta = res
			leaveNode = v
			leaveSide = 2
		}
	}

	// Augment.
	if delta != 0 {
		if s.state[in] == stateLower {
			s.flow[in] += delta
		} else {
			s.flow[in] -= delta
		}
		for v := first; v != join; v = s.parent[v] {
			s.flow[s.parentArc[v]] -= s.dirUp(v) * delta
		}
		for v := second; v != join; v = s.parent[v] {
			s.flow[s.parentArc[v]] += s.dirUp(v) * delta
		}
	}

	if leaveNode < 0 {
		// Entering arc saturates: no basis change.
		s.state[in] = -s.state[in]
		return
	}

	out := s.parentArc[leaveNode]
	// Reduced cost of the entering arc before potentials change.
	rc := s.reducedCost(in)
	// q is the entering-arc endpoint inside the detached subtree.
	var q, attach int32
	var delPi int64
	if leaveSide == 1 {
		q, attach = first, second
	} else {
		q, attach = second, first
	}
	// After the pivot the entering arc is in the tree with rc 0; the
	// whole subtree's potential shifts by +rc or -rc depending on
	// which endpoint moved.
	if q == s.to[in] {
		delPi = -rc
	} else {
		delPi = rc
	}

	// Leaving arc state by its (post-augment) flow.
	if s.flow[out] == 0 {
		s.state[out] = stateLower
	} else {
		s.state[out] = stateUpper
	}
	s.state[in] = stateTree

	// Re-root the detached subtree at q: reverse parent pointers along
	// the path q .. leaveNode. Each path node is unlinked from its old
	// parent just before it is re-linked; when q == leaveNode this
	// single unlink already removes the leaving arc from the tree.
	cur := q
	p := s.parent[cur]
	pa := s.parentArc[cur]
	s.removeChild(q)
	s.parent[q] = attach
	s.parentArc[q] = int32(in)
	s.childIdx[q] = int32(len(s.children[attach]))
	s.children[attach] = append(s.children[attach], q)
	for cur != leaveNode {
		next := p
		p = s.parent[next]
		npa := s.parentArc[next]
		// next becomes a child of cur.
		s.removeChild(next)
		s.parent[next] = cur
		s.parentArc[next] = pa
		s.childIdx[next] = int32(len(s.children[cur]))
		s.children[cur] = append(s.children[cur], next)
		pa = npa
		cur = next
	}

	// Shift potentials of the re-rooted subtree.
	if delPi != 0 {
		stack := s.subtreeBuf[:0]
		stack = append(stack, q)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			s.pi[v] += delPi
			stack = append(stack, s.children[v]...)
		}
		s.subtreeBuf = stack[:0]
	}
}

// removeChild unlinks v from its parent's child list in O(1).
func (s *simplex) removeChild(v int32) {
	p := s.parent[v]
	if p < 0 {
		return
	}
	cs := s.children[p]
	i := s.childIdx[v]
	last := int32(len(cs) - 1)
	if i != last {
		moved := cs[last]
		cs[i] = moved
		s.childIdx[moved] = i
	}
	s.children[p] = cs[:last]
}
