package mcf

import (
	"context"
	"errors"
	"fmt"
)

// PivotRule selects the entering-arc strategy of the network simplex.
type PivotRule int

const (
	// Auto picks a concrete rule from the instance size: FirstEligible
	// below autoArcThreshold arcs, CandidateList above it. It is the
	// zero value, so a zero-valued options struct gets the heuristic.
	Auto PivotRule = iota
	// FirstEligible scans arcs cyclically from the previous stop and
	// enters the first arc that violates its optimality condition.
	// This is the rule named by the paper (Section 3.3.1).
	FirstEligible
	// BlockSearch scans a block of arcs and enters the most violating
	// arc of the block; usually faster on large instances.
	BlockSearch
	// CandidateList keeps a queue of eligible arcs found by a major
	// scan and serves minor pivots from it (most violating first),
	// dropping entries that have gone stale; LEMON's default rule.
	CandidateList
)

// autoArcThreshold is the instance size (arcs + artificial arcs) at
// which Auto switches from FirstEligible to CandidateList. Tuned from
// BENCH_mcf.json: the candidate list only pays for its major scans on
// instances with enough arcs to amortize them.
const autoArcThreshold = 4096

// String returns the rule name as spelled in BENCH_mcf.json.
func (r PivotRule) String() string {
	switch r {
	case Auto:
		return "auto"
	case FirstEligible:
		return "first-eligible"
	case BlockSearch:
		return "block-search"
	case CandidateList:
		return "candidate-list"
	default:
		return fmt.Sprintf("PivotRule(%d)", int(r))
	}
}

// resolveRule maps Auto to a concrete rule for an instance with size
// total arcs (real + artificial) and rejects unknown values.
func resolveRule(rule PivotRule, total int) (PivotRule, error) {
	switch rule {
	case Auto:
		if total <= autoArcThreshold {
			return FirstEligible, nil
		}
		return CandidateList, nil
	case FirstEligible, BlockSearch, CandidateList:
		return rule, nil
	default:
		return rule, fmt.Errorf("mcf: unknown pivot rule %d", rule)
	}
}

// ErrInfeasible is returned when the supplies cannot be routed.
var ErrInfeasible = errors.New("mcf: infeasible problem")

// errUnknownRule is the allocation-free twin of resolveRule's error for
// the pivot loop's default case; unreachable because every caller
// validates the rule first.
var errUnknownRule = errors.New("mcf: unknown pivot rule")

// errPivotLimit is an internal signal: a warm-started run exceeded its
// pivot budget (the repaired basis is not strongly feasible, so the
// anti-cycling guarantee of the cold start does not apply) and the
// solver should rebuild the all-artificial basis and solve cold.
var errPivotLimit = errors.New("mcf: pivot limit exceeded")

const (
	stateLower int8 = 1
	stateTree  int8 = 0
	stateUpper int8 = -1
)

// ctxCheckInterval is how many pivots the solver performs between
// cancellation checks: rare enough to stay off the pivot loop's
// profile, frequent enough that a cancelled refinement run stops
// within a bounded amount of work.
const ctxCheckInterval = 1024

// Solve runs the network simplex with the FirstEligible pivot rule.
func (g *Graph) Solve() (*Result, error) { return g.SolveWith(FirstEligible) }

// SolveContext is Solve with cancellation: the pivot loop polls ctx
// every ctxCheckInterval pivots and returns ctx.Err() once it is
// cancelled or past its deadline.
func (g *Graph) SolveContext(ctx context.Context) (*Result, error) {
	return g.SolveWithContext(ctx, FirstEligible)
}

// SolveWith runs the network simplex with the given pivot rule and
// returns optimal flows, potentials and cost.
func (g *Graph) SolveWith(rule PivotRule) (*Result, error) { return g.solve(nil, rule) }

// SolveWithContext is SolveWith with the cancellation behaviour of
// SolveContext.
func (g *Graph) SolveWithContext(ctx context.Context, rule PivotRule) (*Result, error) {
	return g.solve(ctx, rule)
}

func (g *Graph) solve(ctx context.Context, rule PivotRule) (*Result, error) {
	var sv Solver
	return sv.solveGraph(ctx, g, rule)
}

// simplex is the solver state: one spanning tree over the n real nodes
// plus an artificial root, with one artificial big-M arc per node
// (arcs m..m+n-1) so any basis can be repaired back to feasibility.
// All arrays are sized once per instance shape and reused across
// solves by the owning Solver.
type simplex struct {
	n, m, root int
	ctx        context.Context // nil: cancellation disabled

	from, to   []int32
	cap, cost  []int64
	flow       []int64
	state      []int8
	supply     []int64 // copy of the instance supplies (Resolve needs them)
	parent     []int32
	parentArc  []int32
	children   [][]int32
	childIdx   []int32
	pi         []int64
	visited    []int32 // join-search stamps
	stamp      int32
	pivots     int
	scanPos    int     // next arc to examine (first-eligible / block start)
	cand       []int32 // candidate-list queue (most recent major scan)
	subtreeBuf []int32
	excess     []int64 // basis-repair scratch: per-node imbalance
	orderBuf   []int32 // basis-repair scratch: tree preorder
}

// init sizes the state for g and copies its arcs and supplies, growing
// the scratch arrays only when the shape outgrows their capacity, then
// builds the initial all-artificial basis.
func (s *simplex) init(g *Graph) {
	n := len(g.supply)
	m := len(g.arcs)
	s.n, s.m, s.root = n, m, n
	total := m + n // real arcs then one artificial arc per node
	if cap(s.from) < total {
		s.from = make([]int32, total)
		s.to = make([]int32, total)
		s.cap = make([]int64, total)
		s.cost = make([]int64, total)
		s.flow = make([]int64, total)
		s.state = make([]int8, total)
	} else {
		s.from = s.from[:total]
		s.to = s.to[:total]
		s.cap = s.cap[:total]
		s.cost = s.cost[:total]
		s.flow = s.flow[:total]
		s.state = s.state[:total]
	}
	for a, arc := range g.arcs {
		s.from[a] = int32(arc.From)
		s.to[a] = int32(arc.To)
		s.cap[a] = arc.Cap
		s.cost[a] = arc.Cost
	}
	s.supply = append(s.supply[:0], g.supply...)

	nn := n + 1
	if cap(s.parent) < nn {
		s.parent = make([]int32, nn)
		s.parentArc = make([]int32, nn)
		s.childIdx = make([]int32, nn)
		s.pi = make([]int64, nn)
		s.visited = make([]int32, nn)
		s.stamp = 0
	} else {
		s.parent = s.parent[:nn]
		s.parentArc = s.parentArc[:nn]
		s.childIdx = s.childIdx[:nn]
		s.pi = s.pi[:nn]
		s.visited = s.visited[:nn]
	}
	if cap(s.children) < nn {
		s.children = make([][]int32, nn)
	} else {
		s.children = s.children[:nn]
	}
	s.buildInitialBasis()
}

// buildInitialBasis resets flows and states to the all-artificial
// strongly feasible tree: every node hangs off the artificial root
// through an artificial arc oriented by its supply sign. It reads only
// s.from/to/cost for the real arcs and s.supply, so a warm start that
// went off the rails can rebuild the cold basis without the Graph.
func (s *simplex) buildInitialBasis() {
	n, m := s.n, s.m
	var artCost int64 = 1
	for a := 0; a < m; a++ {
		s.flow[a] = 0
		s.state[a] = stateLower
		c := s.cost[a]
		if c < 0 {
			c = -c
		}
		artCost += c
	}
	for v := 0; v <= n; v++ {
		s.children[v] = s.children[v][:0]
	}
	for v := 0; v < n; v++ {
		a := m + v
		b := s.supply[v]
		if b >= 0 {
			s.from[a] = int32(v)
			s.to[a] = int32(s.root)
			s.flow[a] = b
			s.pi[v] = artCost
		} else {
			s.from[a] = int32(s.root)
			s.to[a] = int32(v)
			s.flow[a] = -b
			s.pi[v] = -artCost
		}
		s.cap[a] = Unbounded
		s.cost[a] = artCost
		s.state[a] = stateTree
		s.parent[v] = int32(s.root)
		s.parentArc[v] = int32(a)
		s.childIdx[v] = int32(len(s.children[s.root]))
		s.children[s.root] = append(s.children[s.root], int32(v))
	}
	s.parent[s.root] = -1
	s.parentArc[s.root] = -1
	s.childIdx[s.root] = 0
	s.pi[s.root] = 0
	s.pivots = 0
	s.scanPos = 0
	s.cand = s.cand[:0]
}

// reducedCost of arc a under current potentials.
func (s *simplex) reducedCost(a int) int64 {
	return s.cost[a] + s.pi[s.to[a]] - s.pi[s.from[a]]
}

// eligible reports whether non-tree arc a violates its optimality
// condition.
func (s *simplex) eligible(a int) bool {
	switch s.state[a] {
	case stateLower:
		return s.reducedCost(a) < 0
	case stateUpper:
		return s.reducedCost(a) > 0
	case stateTree:
		return false // basic (tree) arcs never pivot in
	}
	return false
}

// runPivots drives the simplex to optimality under rule. limit > 0
// bounds the number of pivots (warm starts lose the strong-feasibility
// anti-cycling guarantee, so the caller imposes a budget and falls
// back to a cold basis on errPivotLimit); limit == 0 is unbounded.
func (s *simplex) runPivots(rule PivotRule, limit int) error {
	total := s.m + s.n
	if total == 0 {
		return nil
	}
	blockSize := 64
	for bs := blockSize; bs*bs < total; {
		bs *= 2
		blockSize = bs
	}
	// Candidate-list sizing (LEMON's proportions): list length about
	// sqrt(total)/4 with a floor, minor iterations about a tenth of it.
	// The sqrt is approximated by doubling to stay off math.Sqrt.
	sq := 1
	for sq*sq < total {
		sq *= 2
	}
	listLen := sq / 4
	if listLen < 10 {
		listLen = 10
	}
	minorLimit := listLen / 10
	if minorLimit < 3 {
		minorLimit = 3
	}
	minorLeft := 0
	s.cand = s.cand[:0]
	for {
		if s.ctx != nil && s.pivots%ctxCheckInterval == 0 {
			//mclegal:alloc ctx.Err is an interface call on the cancellation path only
			if err := s.ctx.Err(); err != nil {
				return err
			}
		}
		if limit > 0 && s.pivots >= limit {
			return errPivotLimit
		}
		in := -1
		switch rule {
		case FirstEligible:
			for cnt := 0; cnt < total; cnt++ {
				a := s.scanPos
				s.scanPos++
				if s.scanPos == total {
					s.scanPos = 0
				}
				if s.eligible(a) {
					in = a
					break
				}
			}
		case BlockSearch:
			remaining := total
			for remaining > 0 {
				end := s.scanPos + blockSize
				var best int64
				for a := s.scanPos; a < end && a < total; a++ {
					if !s.eligible(a) {
						continue
					}
					v := s.reducedCost(a)
					if v < 0 {
						v = -v
					}
					if v > best {
						best = v
						in = a
					}
				}
				remaining -= end - s.scanPos
				s.scanPos = end
				if s.scanPos >= total {
					s.scanPos = 0
				}
				if in >= 0 {
					break
				}
			}
		case CandidateList:
			for {
				// Minor iteration: serve the most violating surviving
				// candidate, compacting stale entries in place.
				if minorLeft > 0 && len(s.cand) > 0 {
					minorLeft--
					var best int64
					w := 0
					for _, ca := range s.cand {
						a := int(ca)
						if !s.eligible(a) {
							continue
						}
						s.cand[w] = ca
						w++
						v := s.reducedCost(a)
						if v < 0 {
							v = -v
						}
						if v > best {
							best = v
							in = a
						}
					}
					s.cand = s.cand[:w]
					if in >= 0 {
						break
					}
				}
				// Major iteration: rebuild the list with a cyclic scan.
				// An empty list after a full scan proves optimality.
				s.cand = s.cand[:0]
				for cnt := 0; cnt < total && len(s.cand) < listLen; cnt++ {
					a := s.scanPos
					s.scanPos++
					if s.scanPos == total {
						s.scanPos = 0
					}
					if s.eligible(a) {
						s.cand = append(s.cand, int32(a))
					}
				}
				if len(s.cand) == 0 {
					break
				}
				minorLeft = minorLimit
			}
		default:
			return errUnknownRule // unreachable: rules validated by resolveRule
		}
		if in < 0 {
			return nil // optimal
		}
		s.pivot(in)
		s.pivots++
	}
}

// dirUp is +1 if the tree arc of node v points from v to its parent.
func (s *simplex) dirUp(v int32) int64 {
	if s.from[s.parentArc[v]] == v {
		return 1
	}
	return -1
}

func (s *simplex) pivot(in int) {
	// Effective push direction of the entering arc.
	var first, second int32
	if s.state[in] == stateLower {
		first, second = s.from[in], s.to[in]
	} else {
		first, second = s.to[in], s.from[in]
	}

	// Join node: mark ancestors of first, walk up from second.
	s.stamp++
	for v := first; v >= 0; v = s.parent[v] {
		s.visited[v] = s.stamp
	}
	join := second
	for s.visited[join] != s.stamp {
		join = s.parent[join]
	}

	// Entering arc residual.
	var delta int64
	if s.state[in] == stateLower {
		delta = s.cap[in] - s.flow[in]
	} else {
		delta = s.flow[in]
	}
	leaveNode := int32(-1) // node whose parent arc leaves; -1: entering leaves
	leaveSide := 0

	// The cycle runs join -> first -> (entering) -> second -> join.
	// Choosing the last blocking arc in that order keeps the tree
	// strongly feasible (anti-cycling): strict < on the first path,
	// <= on the second.
	for v := first; v != join; v = s.parent[v] {
		a := s.parentArc[v]
		var res int64
		if s.dirUp(v) > 0 { // cycle pushes against arc direction
			res = s.flow[a]
		} else {
			res = s.cap[a] - s.flow[a]
		}
		if res < delta {
			delta = res
			leaveNode = v
			leaveSide = 1
		}
	}
	for v := second; v != join; v = s.parent[v] {
		a := s.parentArc[v]
		var res int64
		if s.dirUp(v) > 0 { // cycle pushes along arc direction
			res = s.cap[a] - s.flow[a]
		} else {
			res = s.flow[a]
		}
		if res <= delta {
			delta = res
			leaveNode = v
			leaveSide = 2
		}
	}

	// Augment.
	if delta != 0 {
		if s.state[in] == stateLower {
			s.flow[in] += delta
		} else {
			s.flow[in] -= delta
		}
		for v := first; v != join; v = s.parent[v] {
			s.flow[s.parentArc[v]] -= s.dirUp(v) * delta
		}
		for v := second; v != join; v = s.parent[v] {
			s.flow[s.parentArc[v]] += s.dirUp(v) * delta
		}
	}

	if leaveNode < 0 {
		// Entering arc saturates: no basis change.
		s.state[in] = -s.state[in]
		return
	}

	out := s.parentArc[leaveNode]
	// Reduced cost of the entering arc before potentials change.
	rc := s.reducedCost(in)
	// q is the entering-arc endpoint inside the detached subtree.
	var q, attach int32
	var delPi int64
	if leaveSide == 1 {
		q, attach = first, second
	} else {
		q, attach = second, first
	}
	// After the pivot the entering arc is in the tree with rc 0; the
	// whole subtree's potential shifts by +rc or -rc depending on
	// which endpoint moved.
	if q == s.to[in] {
		delPi = -rc
	} else {
		delPi = rc
	}

	// Leaving arc state by its (post-augment) flow.
	if s.flow[out] == 0 {
		s.state[out] = stateLower
	} else {
		s.state[out] = stateUpper
	}
	s.state[in] = stateTree

	// Re-root the detached subtree at q: reverse parent pointers along
	// the path q .. leaveNode. Each path node is unlinked from its old
	// parent just before it is re-linked; when q == leaveNode this
	// single unlink already removes the leaving arc from the tree.
	cur := q
	p := s.parent[cur]
	pa := s.parentArc[cur]
	s.removeChild(q)
	s.parent[q] = attach
	s.parentArc[q] = int32(in)
	s.childIdx[q] = int32(len(s.children[attach]))
	s.children[attach] = append(s.children[attach], q)
	for cur != leaveNode {
		next := p
		p = s.parent[next]
		npa := s.parentArc[next]
		// next becomes a child of cur.
		s.removeChild(next)
		s.parent[next] = cur
		s.parentArc[next] = pa
		s.childIdx[next] = int32(len(s.children[cur]))
		s.children[cur] = append(s.children[cur], next)
		pa = npa
		cur = next
	}

	// Shift potentials of the re-rooted subtree.
	if delPi != 0 {
		stack := s.subtreeBuf[:0]
		stack = append(stack, q)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			s.pi[v] += delPi
			stack = append(stack, s.children[v]...)
		}
		s.subtreeBuf = stack[:0]
	}
}

// removeChild unlinks v from its parent's child list in O(1).
func (s *simplex) removeChild(v int32) {
	p := s.parent[v]
	if p < 0 {
		return
	}
	cs := s.children[p]
	i := s.childIdx[v]
	last := int32(len(cs) - 1)
	if i != last {
		moved := cs[last]
		cs[i] = moved
		s.childIdx[moved] = i
	}
	s.children[p] = cs[:last]
}

// repairBasis makes the stored spanning tree primal feasible again
// after arc cost/capacity updates. Non-tree arcs snap to their bound
// under the new capacities; tree-arc flows are recomputed bottom-up
// from conservation; a tree arc pushed outside [0, cap] is clamped to
// its nearer bound and demoted to non-tree, with its node re-attached
// to the root through the node's artificial arc, which carries the
// residual imbalance. Potentials are then re-priced over the repaired
// tree so every tree arc has reduced cost zero.
func (s *simplex) repairBasis() {
	n, m := s.n, s.m
	total := m + n

	// Costs changed, so the big-M of the artificial arcs must again
	// dominate every real cost.
	var artCost int64 = 1
	for a := 0; a < m; a++ {
		c := s.cost[a]
		if c < 0 {
			c = -c
		}
		artCost += c
	}
	for a := m; a < total; a++ {
		s.cost[a] = artCost
	}

	// Non-tree arcs sit at a bound under the new capacities.
	for a := 0; a < total; a++ {
		switch s.state[a] {
		case stateLower:
			s.flow[a] = 0
		case stateUpper:
			s.flow[a] = s.cap[a]
		case stateTree:
			// recomputed below
		}
	}

	// Per-node imbalance from supplies and non-tree flows; tree-arc
	// flows must drain it toward the root.
	nn := n + 1
	if cap(s.excess) < nn {
		s.excess = make([]int64, nn)
	} else {
		s.excess = s.excess[:nn]
	}
	for v := 0; v < n; v++ {
		s.excess[v] = s.supply[v]
	}
	s.excess[s.root] = 0
	for a := 0; a < total; a++ {
		if s.state[a] == stateTree {
			continue
		}
		s.excess[s.from[a]] -= s.flow[a]
		s.excess[s.to[a]] += s.flow[a]
	}

	// Tree preorder, then process leaves-first so every node sees its
	// children's carried flow before its own parent arc is set.
	s.orderBuf = s.orderBuf[:0]
	stack := s.subtreeBuf[:0]
	stack = append(stack, int32(s.root))
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s.orderBuf = append(s.orderBuf, v)
		stack = append(stack, s.children[v]...)
	}
	s.subtreeBuf = stack[:0]
	for i := len(s.orderBuf) - 1; i >= 0; i-- {
		v := s.orderBuf[i]
		if int(v) == s.root {
			continue
		}
		a := int(s.parentArc[v])
		e := s.excess[v]
		oldParent := s.parent[v]
		var f int64
		if s.from[a] == v {
			f = e
		} else {
			f = -e
		}
		if a >= m {
			// Artificial arc: solver-owned, re-orientable, unbounded.
			if f < 0 {
				s.from[a], s.to[a] = s.to[a], s.from[a]
				f = -f
			}
			s.flow[a] = f
			s.excess[oldParent] += e
			continue
		}
		if f >= 0 && f <= s.cap[a] {
			s.flow[a] = f
			s.excess[oldParent] += e
			continue
		}
		// Infeasible tree arc: clamp to the nearer bound, demote to
		// non-tree, and re-attach v under the root via its artificial
		// arc, which carries the residual imbalance.
		var bound int64
		if f > s.cap[a] {
			bound = s.cap[a]
			s.state[a] = stateUpper
		} else {
			s.state[a] = stateLower
		}
		s.flow[a] = bound
		var carried int64
		if s.from[a] == v {
			carried = bound
		} else {
			carried = -bound
		}
		s.excess[oldParent] += carried
		rem := e - carried
		art := m + int(v)
		s.removeChild(v)
		s.parent[v] = int32(s.root)
		s.parentArc[v] = int32(art)
		s.childIdx[v] = int32(len(s.children[s.root]))
		s.children[s.root] = append(s.children[s.root], v)
		s.from[art] = v
		s.to[art] = int32(s.root)
		if rem < 0 {
			s.from[art], s.to[art] = s.to[art], s.from[art]
			rem = -rem
		}
		s.flow[art] = rem
		s.state[art] = stateTree
	}

	// Re-price: every tree arc must have reduced cost zero under the
	// (possibly repaired) tree and new costs.
	s.pi[s.root] = 0
	stack = s.subtreeBuf[:0]
	stack = append(stack, int32(s.root))
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range s.children[v] {
			a := s.parentArc[c]
			if s.from[a] == c {
				s.pi[c] = s.pi[v] + s.cost[a]
			} else {
				s.pi[c] = s.pi[v] - s.cost[a]
			}
			stack = append(stack, c)
		}
	}
	s.subtreeBuf = stack[:0]
	s.pivots = 0
	s.scanPos = 0
	s.cand = s.cand[:0]
}
