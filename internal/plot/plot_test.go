package plot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"mclegal/internal/bmark"
	"mclegal/internal/model"
)

func render(t *testing.T, d *model.Design, opt Options) string {
	t.Helper()
	var buf bytes.Buffer
	if err := SVG(&buf, d, opt); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// svgCount parses the SVG as XML and counts elements by name.
func svgCount(t *testing.T, svg string) map[string]int {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	counts := map[string]int{}
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if se, ok := tok.(xml.StartElement); ok {
			counts[se.Name.Local]++
		}
	}
	return counts
}

func TestSVGWellFormed(t *testing.T) {
	d := bmark.Generate(bmark.Params{
		Name: "p", Seed: 2, Counts: [4]int{40, 6, 2, 1},
		Density: 0.5, NumFences: 1, FenceFrac: 0.9, Routability: true, Macros: 1,
	})
	svg := render(t, d, Options{Displacement: true, Rails: true, HighlightType: 0})
	var doc struct {
		XMLName xml.Name `xml:"svg"`
	}
	if err := xml.Unmarshal([]byte(svg), &doc); err != nil {
		t.Fatalf("SVG not well-formed: %v", err)
	}
	counts := svgCount(t, svg)
	// background + fence + macros/cells >= cells.
	if counts["rect"] < len(d.Cells) {
		t.Errorf("only %d rects for %d cells", counts["rect"], len(d.Cells))
	}
	if counts["svg"] != 1 {
		t.Errorf("svg count = %d", counts["svg"])
	}
}

func TestSVGDisplacementVectors(t *testing.T) {
	d := bmark.Generate(bmark.Params{
		Name: "v", Seed: 3, Counts: [4]int{10, 0, 0, 0}, Density: 0.3,
	})
	// Displace three cells.
	for i := 0; i < 3; i++ {
		d.Cells[i].X = d.Cells[i].GX + 2 + i
	}
	withVec := svgCount(t, render(t, d, Options{Displacement: true}))
	noVec := svgCount(t, render(t, d, Options{}))
	if withVec["line"]-noVec["line"] != 3 {
		t.Errorf("expected 3 extra displacement lines, got %d", withVec["line"]-noVec["line"])
	}
}

func TestSVGHighlight(t *testing.T) {
	d := bmark.Generate(bmark.Params{
		Name: "h", Seed: 4, Counts: [4]int{20, 0, 0, 0}, Density: 0.3,
	})
	svg := render(t, d, Options{HighlightType: 0})
	if !strings.Contains(svg, "#e31a1c") {
		t.Errorf("highlight color missing")
	}
	svg = render(t, d, Options{HighlightType: -1})
	if strings.Contains(svg, `fill="#e31a1c"`) {
		t.Errorf("highlight applied with -1")
	}
}

func TestSVGRails(t *testing.T) {
	d := bmark.Generate(bmark.Params{
		Name: "r", Seed: 5, Counts: [4]int{10, 0, 0, 0}, Density: 0.3, Routability: true,
	})
	with := svgCount(t, render(t, d, Options{Rails: true}))
	without := svgCount(t, render(t, d, Options{}))
	if with["line"] <= without["line"] && with["rect"] <= without["rect"] {
		t.Errorf("rails drew nothing")
	}
}
