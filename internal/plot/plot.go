// Package plot renders placements as SVG: rows, fences, macros, rails,
// cells colored by height, and optional GP-displacement vectors — the
// kind of picture the paper's Figure 6 shows.
package plot

import (
	"bufio"
	"fmt"
	"io"

	"mclegal/internal/model"
)

// Options configures the rendering.
type Options struct {
	// SitePx is the width of one site in pixels (default 4).
	SitePx float64
	// Displacement draws a line from each cell to its GP position.
	Displacement bool
	// HighlightType draws cells of this type in red (like the paper's
	// Figure 6); -1 highlights nothing.
	HighlightType model.CellTypeID
	// Rails draws the P/G rail geometry.
	Rails bool
}

func (o Options) withDefaults() Options {
	if o.SitePx <= 0 {
		o.SitePx = 4
	}
	return o
}

var heightFill = map[int]string{
	1: "#9ecae1",
	2: "#74c476",
	3: "#fdae6b",
	4: "#bcbddc",
}

// SVG writes the design's current placement as an SVG document.
func SVG(w io.Writer, d *model.Design, opt Options) error {
	opt = opt.withDefaults()
	bw := bufio.NewWriter(w)
	t := &d.Tech
	aspect := float64(t.RowH) / float64(t.SiteW)
	sx := opt.SitePx
	sy := opt.SitePx * aspect
	width := float64(t.NumSites) * sx
	height := float64(t.NumRows) * sy
	// SVG y grows downward; flip so row 0 is at the bottom.
	X := func(site float64) float64 { return site * sx }
	Y := func(rowTop float64) float64 { return height - rowTop*sy }

	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(bw, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="#ffffff" stroke="#333333"/>`+"\n",
		width, height)

	// Row boundaries.
	for r := 1; r < t.NumRows; r++ {
		fmt.Fprintf(bw, `<line x1="0" y1="%.1f" x2="%.0f" y2="%.1f" stroke="#eeeeee" stroke-width="0.5"/>`+"\n",
			Y(float64(r)), width, Y(float64(r)))
	}

	// Fences.
	for i := range d.Fences {
		for _, fr := range d.Fences[i].Rects {
			fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#fff7bc" stroke="#d95f0e" stroke-dasharray="4 2"/>`+"\n",
				X(float64(fr.XLo)), Y(float64(fr.YHi)),
				float64(fr.W())*sx, float64(fr.H())*sy)
		}
	}
	// Blockages.
	for _, b := range d.Blockages {
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#cccccc"/>`+"\n",
			X(float64(b.XLo)), Y(float64(b.YHi)), float64(b.W())*sx, float64(b.H())*sy)
	}

	// Rails.
	if opt.Rails && t.HRailPeriod > 0 {
		for r := 0; r <= t.NumRows; r += t.HRailPeriod {
			fmt.Fprintf(bw, `<line x1="0" y1="%.1f" x2="%.0f" y2="%.1f" stroke="#e31a1c" stroke-width="1" opacity="0.5"/>`+"\n",
				Y(float64(r)), width, Y(float64(r)))
		}
	}
	if opt.Rails {
		for _, iv := range t.VRailXs() {
			x := float64(iv.Lo) / float64(t.SiteW)
			w2 := float64(iv.Len()) / float64(t.SiteW)
			fmt.Fprintf(bw, `<rect x="%.1f" y="0" width="%.1f" height="%.0f" fill="#e31a1c" opacity="0.25"/>`+"\n",
				X(x), w2*sx, height)
		}
	}

	// Cells.
	for i := range d.Cells {
		c := &d.Cells[i]
		ct := &d.Types[c.Type]
		fill := heightFill[ct.Height]
		if fill == "" {
			fill = "#dddddd"
		}
		if c.Fixed {
			fill = "#636363"
		}
		if opt.HighlightType >= 0 && c.Type == opt.HighlightType && !c.Fixed {
			fill = "#e31a1c"
		}
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#555555" stroke-width="0.4"/>`+"\n",
			X(float64(c.X)), Y(float64(c.Y+ct.Height)),
			float64(ct.Width)*sx, float64(ct.Height)*sy, fill)
	}

	// Displacement vectors.
	if opt.Displacement {
		for i := range d.Cells {
			c := &d.Cells[i]
			if c.Fixed || (c.X == c.GX && c.Y == c.GY) {
				continue
			}
			ct := &d.Types[c.Type]
			cx := float64(c.X) + float64(ct.Width)/2
			cy := float64(c.Y) + float64(ct.Height)/2
			gx := float64(c.GX) + float64(ct.Width)/2
			gy := float64(c.GY) + float64(ct.Height)/2
			fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#e31a1c" stroke-width="0.6" opacity="0.7"/>`+"\n",
				X(cx), Y(cy), X(gx), Y(gy))
		}
	}

	fmt.Fprint(bw, "</svg>\n")
	return bw.Flush()
}
