package bmark

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func limitsBench(t testing.TB) []byte {
	t.Helper()
	d := Generate(Params{
		Name: "limits", Seed: 7, Counts: [4]int{20, 4, 1, 1}, Density: 0.5,
		NumFences: 1, FenceFrac: 0.5, NetFrac: 0.5, IOPins: 2, Routability: true,
	})
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// An input of exactly MaxBytes still parses; one byte less fails with a
// typed *LimitError. The boundary matters for servers that size the cap
// to their request-body limit.
func TestReadMaxBytesBoundary(t *testing.T) {
	data := limitsBench(t)
	if _, err := ReadWithMode(bytes.NewReader(data), ModeStrict,
		WithLimits(Limits{MaxBytes: int64(len(data))})); err != nil {
		t.Fatalf("input exactly at the byte cap rejected: %v", err)
	}
	_, err := ReadWithMode(bytes.NewReader(data), ModeStrict,
		WithLimits(Limits{MaxBytes: int64(len(data)) - 1}))
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %T %v, want *LimitError", err, err)
	}
	if le.What != "bytes" || le.Limit != int64(len(data))-1 {
		t.Errorf("LimitError = %+v, want bytes/%d", le, len(data)-1)
	}
	if !strings.HasPrefix(err.Error(), "bmark:") {
		t.Errorf("limit error lacks bmark prefix: %v", err)
	}
}

// A section header declaring more items than MaxCount fails typed
// before any of the declared items are consumed.
func TestReadMaxCountRejectsOversizedSection(t *testing.T) {
	data := limitsBench(t)
	_, err := ReadWithMode(bytes.NewReader(data), ModeStrict,
		WithLimits(Limits{MaxCount: 3}))
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %T %v, want *LimitError", err, err)
	}
	if le.What == "bytes" || le.What == "" {
		t.Errorf("What = %q, want a section keyword", le.What)
	}
	if le.Limit != 3 || le.Actual <= 3 {
		t.Errorf("LimitError = %+v, want limit 3 and actual > 3", le)
	}
	if !strings.HasPrefix(err.Error(), "bmark:") {
		t.Errorf("limit error lacks bmark prefix: %v", err)
	}
}

// The zero Limits value (and plain ReadWithMode with no options) is the
// historical unlimited behavior.
func TestReadZeroLimitsUnlimited(t *testing.T) {
	data := limitsBench(t)
	if _, err := ReadWithMode(bytes.NewReader(data), ModeStrict,
		WithLimits(Limits{})); err != nil {
		t.Fatalf("zero limits rejected a valid design: %v", err)
	}
	// A count cap generous enough for every section is inert too.
	if _, err := ReadWithMode(bytes.NewReader(data), ModeStrict,
		WithLimits(Limits{MaxBytes: 1 << 20, MaxCount: 1 << 20})); err != nil {
		t.Fatalf("generous limits rejected a valid design: %v", err)
	}
}

// FuzzReadLimited drives the limited read path. Invariants: never
// panics, every failure keeps the "bmark:" prefix, and limits only
// restrict — anything a limited read accepts, an unlimited read accepts
// identically.
func FuzzReadLimited(f *testing.F) {
	valid := limitsBench(f)
	f.Add(valid, int64(0), 0)
	f.Add(valid, int64(len(valid)), 1<<20)
	f.Add(valid, int64(10), 0)           // byte cap mid-header
	f.Add(valid, int64(len(valid)-1), 0) // byte cap one short
	f.Add(valid, int64(0), 3)            // count cap under the cell count
	f.Add([]byte("MCLEGAL 1\nname x\n"), int64(5), 2)
	f.Add([]byte("cells 99999999999999999999"), int64(64), 4)

	f.Fuzz(func(t *testing.T, data []byte, maxBytes int64, maxCount int) {
		lim := Limits{MaxBytes: maxBytes, MaxCount: maxCount}
		d, err := ReadWithMode(bytes.NewReader(data), ModeLenient, WithLimits(lim))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "bmark:") {
				t.Fatalf("error without bmark prefix: %v", err)
			}
			return
		}
		if d == nil {
			t.Fatal("nil design without error")
		}
		if _, uerr := ReadWithMode(bytes.NewReader(data), ModeLenient); uerr != nil {
			t.Fatalf("unlimited read rejected a limited-accepted input: %v", uerr)
		}
	})
}
