package bmark

import "mclegal/internal/model"

// Bench names one suite instance with its published statistics.
type Bench struct {
	Name    string
	Counts  [4]int // cells of heights 1..4
	Density float64
	Fences  int
}

// ContestBenches lists the 16 ICCAD 2017 instances of Table 1 with
// their published cell counts (multi-height columns approximated from
// the table) and design densities.
func ContestBenches() []Bench {
	return []Bench{
		{"des_perf_1", [4]int{99516, 11313, 1815, 0}, 0.906, 4},
		{"des_perf_a_md1", [4]int{98890, 4699, 0, 0}, 0.551, 4},
		{"des_perf_a_md2", [4]int{101772, 1086, 1086, 1086}, 0.559, 4},
		{"des_perf_b_md1", [4]int{100920, 5862, 0, 0}, 0.550, 4},
		{"des_perf_b_md2", [4]int{91172, 6781, 2260, 1695}, 0.647, 4},
		{"edit_dist_1_md1", [4]int{105349, 7994, 2664, 1998}, 0.674, 4},
		{"edit_dist_a_md2", [4]int{105318, 7799, 1949, 0}, 0.594, 4},
		{"edit_dist_a_md3", [4]int{111819, 2599, 2599, 2599}, 0.572, 4},
		{"fft_2_md2", [4]int{25579, 2117, 705, 529}, 0.827, 2},
		{"fft_a_md2", [4]int{24237, 2018, 672, 504}, 0.323, 2},
		{"fft_a_md3", [4]int{26593, 672, 672, 672}, 0.312, 2},
		{"pci_bridge32_a_md1", [4]int{23843, 1792, 597, 448}, 0.495, 2},
		{"pci_bridge32_a_md2", [4]int{20961, 2090, 1194, 994}, 0.577, 2},
		{"pci_bridge32_b_md1", [4]int{25110, 585, 439, 0}, 0.266, 2},
		{"pci_bridge32_b_md2", [4]int{27162, 292, 292, 292}, 0.183, 2},
		{"pci_bridge32_b_md3", [4]int{25990, 292, 585, 585}, 0.222, 2},
	}
}

// ISPDBenches lists the 20 ISPD 2015-derived instances of Table 2
// (10% of cells converted to double height, half width) with their
// published cell counts and densities.
func ISPDBenches() []Bench {
	mix := func(total int) [4]int {
		dbl := total / 10
		return [4]int{total - dbl, dbl, 0, 0}
	}
	return []Bench{
		{"des_perf_1", mix(112644), 0.9058, 0},
		{"des_perf_a", mix(108292), 0.4290, 0},
		{"des_perf_b", mix(112644), 0.4971, 0},
		{"edit_dist_a", mix(127419), 0.4554, 0},
		{"fft_1", mix(32281), 0.8355, 0},
		{"fft_2", mix(32281), 0.4997, 0},
		{"fft_a", mix(30631), 0.2509, 0},
		{"fft_b", mix(30631), 0.2819, 0},
		{"matrix_mult_1", mix(155325), 0.8024, 0},
		{"matrix_mult_2", mix(155325), 0.7903, 0},
		{"matrix_mult_a", mix(149655), 0.4195, 0},
		{"matrix_mult_b", mix(146442), 0.3090, 0},
		{"matrix_mult_c", mix(146442), 0.3083, 0},
		{"pci_bridge32_a", mix(29521), 0.3839, 0},
		{"pci_bridge32_b", mix(28920), 0.1430, 0},
		{"superblue11_a", mix(927074), 0.4292, 0},
		{"superblue12", mix(1287037), 0.4472, 0},
		{"superblue14", mix(612583), 0.5578, 0},
		{"superblue16_a", mix(680869), 0.4785, 0},
		{"superblue19", mix(506383), 0.5233, 0},
	}
}

// ShardBenches lists the sharding suite: multi-fence synthetics sized
// for the shard-scaling sweep, from a hundred thousand cells up to a
// million (shard_xl), each with enough drawn fences and default-region
// area that the shard planner produces a real multi-region plan.
func ShardBenches() []Bench {
	return []Bench{
		{"shard_s", [4]int{90000, 7000, 2000, 1000}, 0.55, 4},
		{"shard_m", [4]int{360000, 28000, 8000, 4000}, 0.55, 6},
		{"shard_xl", [4]int{900000, 70000, 20000, 10000}, 0.55, 8},
	}
}

// ShardDesign generates one shard-suite instance at the given scale
// (1.0 = full size): fences, macros the slabs must dodge, and nets for
// HPWL accounting.
func ShardDesign(b Bench, scale float64) *model.Design {
	return Generate(Params{
		Name:      b.Name,
		Seed:      seedOf(b.Name) ^ 0x5ad5,
		Counts:    scaleCounts(b.Counts, scale),
		Density:   b.Density,
		NumFences: b.Fences,
		FenceFrac: 0.5,
		NetFrac:   0.3,
		IOPins:    32,
		Macros:    b.Fences / 2,
	})
}

// scaleCounts shrinks the published cell counts by scale, keeping the
// height mix and a floor so instances stay meaningful.
func scaleCounts(c [4]int, scale float64) [4]int {
	var out [4]int
	for i := range c {
		out[i] = int(float64(c[i]) * scale)
	}
	if out[0] < 400 && c[0] > 0 {
		out[0] = 400
	}
	for i := 1; i < 4; i++ {
		if c[i] > 0 && out[i] < 24 {
			out[i] = 24
		}
	}
	return out
}

// ContestDesign generates one Table 1 instance at the given scale
// (1.0 = published size), with fences, rails and IO pins.
func ContestDesign(b Bench, scale float64) *model.Design {
	return Generate(Params{
		Name:        b.Name,
		Seed:        seedOf(b.Name),
		Counts:      scaleCounts(b.Counts, scale),
		Density:     b.Density,
		NumFences:   b.Fences,
		FenceFrac:   0.6,
		NetFrac:     0.5,
		IOPins:      32,
		Routability: true,
	})
}

// ISPDDesign generates one Table 2 instance at the given scale: no
// fences, no rails (the second experiment ignores routability).
func ISPDDesign(b Bench, scale float64) *model.Design {
	return Generate(Params{
		Name:    b.Name,
		Seed:    seedOf(b.Name) ^ 0x5f5f,
		Counts:  scaleCounts(b.Counts, scale),
		Density: b.Density,
		NetFrac: 0.5,
	})
}

// seedOf derives a stable seed from a benchmark name.
func seedOf(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}
