package bmark

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mclegal/internal/eval"
	"mclegal/internal/flow"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Name: "x", Seed: 7, Counts: [4]int{500, 40, 10, 5},
		Density: 0.6, NumFences: 2, FenceFrac: 0.5, NetFrac: 0.5, IOPins: 8, Routability: true}
	d1 := Generate(p)
	d2 := Generate(p)
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("generator is not deterministic")
	}
	if err := d1.Validate(); err != nil {
		t.Fatalf("generated design invalid: %v", err)
	}
}

func TestGenerateStatistics(t *testing.T) {
	p := Params{Name: "x", Seed: 3, Counts: [4]int{1000, 100, 20, 10},
		Density: 0.55, NumFences: 3, FenceFrac: 0.7, NetFrac: 0.5, IOPins: 10, Routability: true}
	d := Generate(p)
	byH := map[int]int{}
	var area int64
	fenceCells := 0
	for i := range d.Cells {
		ct := d.Types[d.Cells[i].Type]
		byH[ct.Height]++
		area += int64(ct.Width * ct.Height)
		if d.Cells[i].Fence != 0 {
			fenceCells++
		}
	}
	if byH[1] != 1000 || byH[2] != 100 || byH[3] != 20 || byH[4] != 10 {
		t.Errorf("height mix = %v", byH)
	}
	coreArea := int64(d.Tech.NumSites) * int64(d.Tech.NumRows)
	util := float64(area) / float64(coreArea)
	if util < 0.40 || util > 0.60 {
		t.Errorf("utilization = %.3f, want near 0.55", util)
	}
	if len(d.Fences) != 3 {
		t.Errorf("fences = %d", len(d.Fences))
	}
	if fenceCells == 0 {
		t.Errorf("no cells assigned to fences")
	}
	if len(d.Nets) == 0 || len(d.IOPins) != 10 {
		t.Errorf("nets=%d iopins=%d", len(d.Nets), len(d.IOPins))
	}
	if _, err := seg.Build(d); err != nil {
		t.Fatalf("segmentation failed: %v", err)
	}
}

func TestGeneratedInstanceLegalizes(t *testing.T) {
	p := Params{Name: "small", Seed: 11, Counts: [4]int{600, 60, 15, 8},
		Density: 0.7, NumFences: 2, FenceFrac: 0.5, NetFrac: 0.5, IOPins: 8, Routability: true}
	d := Generate(p)
	res, err := flow.Run(d, flow.Options{Routability: true, Workers: 2})
	if err != nil {
		t.Fatalf("flow: %v", err)
	}
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("illegal after flow: %v", v[0])
	}
	if res.Metrics.AvgDisp <= 0 {
		t.Errorf("no displacement measured: %+v", res.Metrics)
	}
	if res.Violations.EdgeSpacing != 0 {
		t.Errorf("edge-spacing violations with routability on: %d", res.Violations.EdgeSpacing)
	}
}

func TestHighDensityInstanceLegalizes(t *testing.T) {
	// des_perf_1-like: ~90% utilization, single height dominant.
	p := Params{Name: "dense", Seed: 5, Counts: [4]int{1500, 120, 20, 0},
		Density: 0.9, NetFrac: 0.3, Routability: false}
	d := Generate(p)
	if _, err := flow.Run(d, flow.Options{Workers: 2, TotalDisplacement: true}); err != nil {
		t.Fatalf("dense instance failed: %v", err)
	}
}

func TestSuitesEnumerate(t *testing.T) {
	cb := ContestBenches()
	if len(cb) != 16 {
		t.Errorf("contest suite has %d benches", len(cb))
	}
	ib := ISPDBenches()
	if len(ib) != 20 {
		t.Errorf("ISPD suite has %d benches", len(ib))
	}
	for _, b := range cb {
		if b.Density <= 0 || b.Density > 1 || b.Counts[0] == 0 {
			t.Errorf("bad contest bench %+v", b)
		}
	}
	// Scaled generation sanity for one from each suite.
	d := ContestDesign(cb[9], 0.02) // fft_a_md2, low density
	if err := d.Validate(); err != nil {
		t.Errorf("contest design: %v", err)
	}
	if len(d.Fences) == 0 || d.Tech.HRailPeriod == 0 {
		t.Errorf("contest design missing fences or rails")
	}
	d = ISPDDesign(ib[6], 0.02) // fft_a
	if err := d.Validate(); err != nil {
		t.Errorf("ispd design: %v", err)
	}
	if len(d.Fences) != 0 || d.Tech.HRailPeriod != 0 {
		t.Errorf("ispd design should have no fences or rails")
	}
}

func TestScaleCounts(t *testing.T) {
	c := scaleCounts([4]int{100000, 10000, 1000, 0}, 0.01)
	if c[0] != 1000 || c[1] != 100 || c[2] != 24 || c[3] != 0 {
		t.Errorf("scaleCounts = %v", c)
	}
	c = scaleCounts([4]int{1000, 0, 0, 0}, 0.001)
	if c[0] != 400 {
		t.Errorf("floor not applied: %v", c)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p := Params{Name: "rt", Seed: 9, Counts: [4]int{120, 20, 6, 3},
		Density: 0.6, NumFences: 1, FenceFrac: 0.8, NetFrac: 0.6, IOPins: 4, Routability: true}
	d := Generate(p)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("round trip mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"BOGUS 9",
		"MCLEGAL 1\nname x\ntech 10 80\n",
		"MCLEGAL 1\nname x\ntech 10 80 100 10 0\nrails 0 0 0 0 0 0 0\nspacing 0\ntypes 1\ntype T 0 0 0 0 0\nfences 0\nblockages 0\niopins 0\ncells 0\nnets 0\n",
	}
	for i, s := range cases {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadIgnoresCommentsAndBlanks(t *testing.T) {
	d := Generate(Params{Name: "c", Seed: 1, Counts: [4]int{10, 0, 0, 0}, Density: 0.3})
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	noisy := "# header comment\n\n" + strings.Replace(buf.String(), "cells", "# about to list cells\ncells", 1)
	got, err := Read(strings.NewReader(noisy))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "c" || len(got.Cells) != 10 {
		t.Errorf("noisy parse wrong: %s %d", got.Name, len(got.Cells))
	}
}

func TestMacrosGeneratedAndAvoided(t *testing.T) {
	p := Params{Name: "mac", Seed: 15, Counts: [4]int{700, 60, 15, 6},
		Density: 0.62, Macros: 4, NetFrac: 0.3, Routability: true}
	d := Generate(p)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	macros := 0
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			macros++
		}
	}
	if macros != 4 {
		t.Fatalf("want 4 macros, got %d", macros)
	}
	res, err := flow.Run(d, flow.Options{Routability: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("audit: %v", v[0])
	}
	// No movable cell overlaps a macro.
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			continue
		}
		ri := d.CellRect(model.CellID(i))
		for j := range d.Cells {
			if !d.Cells[j].Fixed {
				continue
			}
			if ri.Overlaps(d.CellRect(model.CellID(j))) {
				t.Fatalf("cell %d overlaps macro %d", i, j)
			}
		}
	}
	if res.MGLStats.Placed != d.MovableCount() {
		t.Errorf("placed %d of %d", res.MGLStats.Placed, d.MovableCount())
	}
}

func TestShardSuiteEnumerates(t *testing.T) {
	sb := ShardBenches()
	if len(sb) != 3 {
		t.Fatalf("shard suite has %d benches", len(sb))
	}
	var xl int
	for _, c := range sb[2].Counts {
		xl += c
	}
	if xl != 1000000 {
		t.Errorf("shard_xl totals %d cells, want a million", xl)
	}
	d := ShardDesign(sb[0], 0.02)
	if err := d.Validate(); err != nil {
		t.Fatalf("shard design: %v", err)
	}
	if len(d.Fences) != sb[0].Fences {
		t.Errorf("shard design has %d fences, want %d", len(d.Fences), sb[0].Fences)
	}
	fixed := 0
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			fixed++
		}
	}
	if fixed != sb[0].Fences/2 {
		t.Errorf("shard design has %d macros, want %d", fixed, sb[0].Fences/2)
	}
}
