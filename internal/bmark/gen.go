// Package bmark generates synthetic legalization benchmarks with the
// published statistics of the ICCAD 2017 contest [16] and ISPD 2015
// [17] suites (the originals are proprietary LEF/DEF; DESIGN.md records
// the substitution), and provides a plain-text design format for the
// command-line tools.
//
// Instances are fully deterministic in their seed: clustered
// quasi-global-placement positions with controlled hotspot overlap,
// a mixed-height library with pins that are sensitive to horizontal
// rails (row choice), vertical stripes (x choice), or neither, fence
// regions for the *_md variants, locality-aware nets for HPWL, and IO
// pins along the core edges.
package bmark

import (
	"math"
	"math/rand"

	"mclegal/internal/geom"
	"mclegal/internal/model"
)

// Params controls one generated instance.
type Params struct {
	Name string
	Seed int64
	// Counts[h] is the number of cells of height h+1 (h in 0..3).
	Counts [4]int
	// Density is total cell area over core area (utilization).
	Density float64
	// NumFences drawn fence regions; 0 for the ISPD-style instances.
	NumFences int
	// FenceFrac is the probability that an eligible cell with its GP
	// inside a fence is assigned to it.
	FenceFrac float64
	// NetFrac scales the net count (nets ≈ NetFrac * cells). Zero
	// disables net generation.
	NetFrac float64
	// IOPins is the number of IO pin shapes along the core edges.
	IOPins int
	// Routability adds P/G rail geometry and rail-sensitive pins to
	// the library.
	Routability bool
	// Clusters is the number of GP hotspots (0 = automatic).
	Clusters int
	// Macros places this many pre-placed fixed blocks (hard macros);
	// the legalizer must route cells around them.
	Macros int
}

// Generate builds the design for p.
func Generate(p Params) *model.Design {
	rng := rand.New(rand.NewSource(p.Seed))
	if p.Density <= 0 || p.Density > 0.92 {
		if p.Density > 0.92 {
			p.Density = 0.92
		} else {
			p.Density = 0.5
		}
	}

	d := &model.Design{Name: p.Name}
	var railSensitive []bool
	d.Types, railSensitive = buildLibrary(p.Routability)

	// Core sizing: rows are 8x taller than sites are wide, so a
	// physically square core has numSites = 8 * numRows.
	var totalArea int64
	typesByH := map[int][]model.CellTypeID{}
	for i := range d.Types {
		typesByH[d.Types[i].Height] = append(typesByH[d.Types[i].Height], model.CellTypeID(i))
	}
	avgW := map[int]float64{1: 3.5, 2: 4.0, 3: 6.0, 4: 7.0}
	for h := 1; h <= 4; h++ {
		totalArea += int64(float64(p.Counts[h-1]) * avgW[h] * float64(h))
	}
	coreArea := float64(totalArea) / p.Density
	numRows := int(math.Ceil(math.Sqrt(coreArea/8))) + 2
	if numRows < 12 {
		numRows = 12
	}
	numRows += numRows % 2 // even, so P/G parity rows exist everywhere
	numSites := int(math.Ceil(coreArea/float64(numRows))) + 8

	d.Tech = model.Tech{
		SiteW: 10, RowH: 80,
		NumSites: numSites, NumRows: numRows,
		EvenBottomParity: 0,
	}
	if p.Routability {
		d.Tech.HRailLayer = model.LayerM2
		d.Tech.HRailHalfW = 4
		d.Tech.HRailPeriod = 2
		d.Tech.VRailLayer = model.LayerM3
		d.Tech.VRailPitch = 30
		d.Tech.VRailW = 12
		d.Tech.VRailOffset = 15
		d.Tech.EdgeSpacing = [][]int{{0, 0}, {0, 1}}
	}

	// Fences.
	var fenceRects []geom.Rect
	for f := 0; f < p.NumFences; f++ {
		for try := 0; try < 50; try++ {
			fw := numSites/8 + rng.Intn(numSites/8+1)
			fh := 4 + rng.Intn(numRows/4+1)
			fx := rng.Intn(maxi(1, numSites-fw))
			fy := rng.Intn(maxi(1, numRows-fh))
			r := geom.RectWH(fx, fy, fw, fh)
			ok := true
			for _, o := range fenceRects {
				if r.Expand(2).Overlaps(o) {
					ok = false
					break
				}
			}
			if ok {
				fenceRects = append(fenceRects, r)
				d.Fences = append(d.Fences, model.Fence{Name: "fence", Rects: []geom.Rect{r}})
				break
			}
		}
	}

	// Hard macros: fixed cells on legal positions, clear of fences and
	// of each other. Their types are appended to the library.
	var macroRects []geom.Rect
	if p.Macros > 0 {
		sizes := [][2]int{{numSites / 10, 3}, {numSites / 14, 4}, {numSites / 8, 2}}
		for m := 0; m < p.Macros; m++ {
			sz := sizes[m%len(sizes)]
			mw, mh := maxi(4, sz[0]), sz[1]
			ti := len(d.Types)
			d.Types = append(d.Types, model.CellType{
				Name: "MACRO" + cellName(m)[1:], Width: mw, Height: mh,
			})
			railSensitive = append(railSensitive, false)
			for try := 0; try < 80; try++ {
				mx := rng.Intn(maxi(1, numSites-mw))
				my := rng.Intn(maxi(1, numRows-mh))
				r := geom.RectWH(mx, my, mw, mh)
				bad := false
				for _, fr := range fenceRects {
					if r.Expand(1).Overlaps(fr) {
						bad = true
						break
					}
				}
				for _, or := range macroRects {
					if r.Expand(2).Overlaps(or) {
						bad = true
						break
					}
				}
				if bad {
					continue
				}
				macroRects = append(macroRects, r)
				d.Cells = append(d.Cells, model.Cell{
					Name: "macro" + cellName(m)[1:], Type: model.CellTypeID(ti),
					GX: mx, GY: my, X: mx, Y: my, Fixed: true,
				})
				break
			}
		}
	}

	// GP clusters.
	nc := p.Clusters
	total := p.Counts[0] + p.Counts[1] + p.Counts[2] + p.Counts[3]
	if nc <= 0 {
		nc = maxi(4, total/2500)
	}
	type cluster struct{ cx, cy, sx, sy float64 }
	clusters := make([]cluster, nc)
	for i := range clusters {
		clusters[i] = cluster{
			cx: rng.Float64() * float64(numSites),
			cy: rng.Float64() * float64(numRows),
			sx: float64(numSites) * (0.04 + rng.Float64()*0.10),
			sy: float64(numRows) * (0.04 + rng.Float64()*0.10),
		}
	}

	// Cells.
	fenceUsed := make([]int64, len(fenceRects))
	for h := 1; h <= 4; h++ {
		for k := 0; k < p.Counts[h-1]; k++ {
			ti := typesByH[h][rng.Intn(len(typesByH[h]))]
			ct := &d.Types[ti]
			var gx, gy int
			if rng.Float64() < 0.3 {
				gx = rng.Intn(maxi(1, numSites-ct.Width))
				gy = rng.Intn(maxi(1, numRows-ct.Height))
			} else {
				c := clusters[rng.Intn(nc)]
				gx = clampi(int(c.cx+rng.NormFloat64()*c.sx), 0, numSites-ct.Width)
				gy = clampi(int(c.cy+rng.NormFloat64()*c.sy), 0, numRows-ct.Height)
			}
			fence := model.DefaultFence
			for fi, fr := range fenceRects {
				if !fr.ContainsPt(geom.Pt{X: gx, Y: gy}) {
					continue
				}
				// Rail-sensitive types lose candidate rows or x ranges;
				// inside a small fence that can starve capacity, so only
				// clean types join fences.
				capArea := int64(fr.Area()) * 55 / 100
				if !railSensitive[ti] && ct.Height < fr.H() && rng.Float64() < p.FenceFrac &&
					fenceUsed[fi]+int64(ct.Width*ct.Height) <= capArea {
					fence = model.FenceID(fi + 1)
					fenceUsed[fi] += int64(ct.Width * ct.Height)
				}
				break
			}
			d.Cells = append(d.Cells, model.Cell{
				Name: cellName(len(d.Cells)), Type: ti, Fence: fence,
				GX: gx, GY: gy, X: gx, Y: gy,
			})
		}
	}

	// Locality-aware nets: order cells along a coarse space-filling
	// curve and connect consecutive runs.
	if p.NetFrac > 0 && len(d.Cells) >= 2 {
		order := make([]int, len(d.Cells))
		for i := range order {
			order[i] = i
		}
		band := maxi(2, numRows/16)
		sortByCurve(d, order, band)
		nNets := int(p.NetFrac * float64(len(d.Cells)))
		pos := 0
		for n := 0; n < nNets && pos+1 < len(order); n++ {
			k := 2 + rng.Intn(4)
			if pos+k > len(order) {
				k = len(order) - pos
			}
			net := model.Net{Name: netName(n)}
			for j := 0; j < k; j++ {
				ci := order[pos+j]
				ct := &d.Types[d.Cells[ci].Type]
				net.Pins = append(net.Pins, model.NetPin{
					Cell: model.CellID(ci),
					DX:   ct.Width * d.Tech.SiteW / 2,
					DY:   ct.Height * d.Tech.RowH / 2,
				})
			}
			d.Nets = append(d.Nets, net)
			pos += k - 1 // share one cell between consecutive nets
		}
	}

	// Fences are filled below the global density (cells are assigned
	// only when their GP falls inside), which squeezes the default
	// region. Widen the core so the default region's utilization stays
	// at the target; widening to the right keeps every placed fence and
	// GP coordinate valid.
	var fenceArea, macroArea, fenceCellArea, totalCellArea int64
	for _, fr := range fenceRects {
		fenceArea += fr.Area()
	}
	for _, mr := range macroRects {
		macroArea += mr.Area()
	}
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			continue
		}
		ct := &d.Types[d.Cells[i].Type]
		a := int64(ct.Width * ct.Height)
		totalCellArea += a
		if d.Cells[i].Fence != model.DefaultFence {
			fenceCellArea += a
		}
	}
	defaultCellArea := totalCellArea - fenceCellArea
	defaultCap := int64(d.Tech.NumSites)*int64(d.Tech.NumRows) - fenceArea - macroArea
	if need := int64(float64(defaultCellArea) / p.Density); need > defaultCap {
		extra := (need - defaultCap + int64(d.Tech.NumRows) - 1) / int64(d.Tech.NumRows)
		d.Tech.NumSites += int(extra)
		numSites = d.Tech.NumSites
	}

	// IO pins on the bottom and top core edges (M2).
	for i := 0; i < p.IOPins; i++ {
		x := rng.Intn(maxi(1, numSites-2)) * d.Tech.SiteW
		y := 0
		if i%2 == 1 {
			y = (numRows-1)*d.Tech.RowH + d.Tech.RowH/2
		}
		d.IOPins = append(d.IOPins, model.IOPin{
			Name:  ioName(i),
			Layer: model.LayerM2,
			Box:   geom.RectWH(x, y, 2*d.Tech.SiteW, d.Tech.RowH/2),
		})
	}
	return d
}

// buildLibrary returns the mixed-height cell library. With routability
// enabled, some types carry rail-sensitive pins:
//
//   - a low M2 pin (shorts against horizontal rails on rail rows),
//   - a low M1 pin (access conflict under horizontal rails),
//   - a wide mid M2 pin (access conflict under vertical stripes).
//
// The second return marks types whose pins are rail-sensitive.
func buildLibrary(routability bool) ([]model.CellType, []bool) {
	mk := func(name string, w, h int, el, er uint8, pins ...model.PinShape) model.CellType {
		return model.CellType{Name: name, Width: w, Height: h, EdgeL: el, EdgeR: er, Pins: pins}
	}
	mid := func(w, h int) model.PinShape {
		// Centered pin, nudged off the mid row boundary for even
		// heights so the "clean" types never collide with a horizontal
		// rail (h*RowH/2 is a rail position when h is even).
		y := h*80/2 - 6
		if h%2 == 0 {
			y -= 20
		}
		return model.PinShape{Name: "A", Layer: model.LayerM1,
			Box: geom.RectWH(w*10/2-4, y, 8, 12)}
	}
	lowM2 := func() model.PinShape {
		return model.PinShape{Name: "B", Layer: model.LayerM2, Box: geom.RectWH(4, 0, 8, 6)}
	}
	lowM1 := func() model.PinShape {
		return model.PinShape{Name: "C", Layer: model.LayerM1, Box: geom.RectWH(4, 0, 8, 6)}
	}
	wideM2 := func(w int) model.PinShape {
		return model.PinShape{Name: "D", Layer: model.LayerM2,
			Box: geom.RectWH(2, 30, w*10-4, 10)}
	}
	lib := []model.CellType{
		mk("INV_X1", 2, 1, 0, 0, mid(2, 1)),
		mk("BUF_X2", 3, 1, 0, 0, mid(3, 1)),
		mk("NAND2", 3, 1, 0, 1, mid(3, 1)),
		mk("AOI22", 4, 1, 1, 0, mid(4, 1)),
		mk("OAI21", 4, 1, 0, 0, mid(4, 1)),
		mk("XOR2", 6, 1, 0, 0, mid(6, 1)),
		mk("DFF2", 3, 2, 0, 0, mid(3, 2)),
		mk("DFFR2", 4, 2, 0, 0, mid(4, 2)),
		mk("MUX4_2", 5, 2, 1, 1, mid(5, 2)),
		mk("MBFF3", 5, 3, 0, 0, mid(5, 3)),
		mk("CLKBUF3", 7, 3, 0, 0, mid(7, 3)),
		mk("MBFF4", 6, 4, 0, 0, mid(6, 4)),
		mk("PLL4", 8, 4, 0, 0, mid(8, 4)),
	}
	sensitive := make([]bool, len(lib))
	if routability {
		// Sensitize a minority of the library so routability matters
		// without starving placement capacity (a row-sensitive type
		// loses half of all rows).
		lib[2].Pins = append(lib[2].Pins, lowM1())   // NAND2: row-sensitive access
		lib[4].Pins = append(lib[4].Pins, wideM2(4)) // OAI21: x-sensitive access
		lib[5].Pins = append(lib[5].Pins, lowM2())   // XOR2: row-sensitive short
		lib[8].Pins = append(lib[8].Pins, wideM2(5)) // MUX4_2: x-sensitive
		lib[9].Pins = append(lib[9].Pins, lowM2())   // MBFF3: row-sensitive short
		for _, i := range []int{2, 4, 5, 8, 9} {
			sensitive[i] = true
		}
	}
	return lib, sensitive
}

// sortByCurve orders cell indices along horizontal bands (a coarse
// boustrophedon space-filling curve) for net locality.
func sortByCurve(d *model.Design, order []int, band int) {
	cells := d.Cells
	lessKey := func(i int) (int, int) {
		b := cells[i].GY / band
		x := cells[i].GX
		if b%2 == 1 {
			x = -x
		}
		return b, x
	}
	sortSlice(order, func(a, b int) bool {
		ba, xa := lessKey(a)
		bb, xb := lessKey(b)
		if ba != bb {
			return ba < bb
		}
		if xa != xb {
			return xa < xb
		}
		return a < b
	})
}
