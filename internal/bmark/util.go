package bmark

import (
	"sort"
	"strconv"
)

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampi(x, lo, hi int) int {
	if hi < lo {
		return lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func cellName(i int) string { return "c" + strconv.Itoa(i) }
func netName(i int) string  { return "n" + strconv.Itoa(i) }
func ioName(i int) string   { return "io" + strconv.Itoa(i) }

func sortSlice(xs []int, less func(a, b int) bool) {
	sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
}
