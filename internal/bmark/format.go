package bmark

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"mclegal/internal/geom"
	"mclegal/internal/model"
)

// The .mcl plain-text design format. Line-oriented, whitespace
// separated, deterministic ordering, version-tagged.

const formatMagic = "MCLEGAL 1"

// Write serializes d to w in .mcl format.
func Write(w io.Writer, d *model.Design) error {
	bw := bufio.NewWriter(w)
	p := func(format string, args ...any) { fmt.Fprintf(bw, format, args...) }
	t := &d.Tech
	p("%s\n", formatMagic)
	p("name %s\n", d.Name)
	flip := 0
	if t.FlipOddRows {
		flip = 1
	}
	p("tech %d %d %d %d %d %d\n", t.SiteW, t.RowH, t.NumSites, t.NumRows, t.EvenBottomParity, flip)
	p("rails %d %d %d %d %d %d %d\n", t.HRailLayer, t.HRailHalfW, t.HRailPeriod,
		t.VRailLayer, t.VRailPitch, t.VRailW, t.VRailOffset)
	p("spacing %d\n", len(t.EdgeSpacing))
	for _, row := range t.EdgeSpacing {
		for i, v := range row {
			if i > 0 {
				p(" ")
			}
			p("%d", v)
		}
		p("\n")
	}
	p("types %d\n", len(d.Types))
	for i := range d.Types {
		ct := &d.Types[i]
		p("type %s %d %d %d %d %d\n", ct.Name, ct.Width, ct.Height, ct.EdgeL, ct.EdgeR, len(ct.Pins))
		for _, pin := range ct.Pins {
			p("pin %s %d %d %d %d %d\n", pin.Name, pin.Layer,
				pin.Box.XLo, pin.Box.YLo, pin.Box.XHi, pin.Box.YHi)
		}
	}
	p("fences %d\n", len(d.Fences))
	for i := range d.Fences {
		f := &d.Fences[i]
		p("fence %s %d\n", f.Name, len(f.Rects))
		for _, r := range f.Rects {
			p("rect %d %d %d %d\n", r.XLo, r.YLo, r.XHi, r.YHi)
		}
	}
	p("blockages %d\n", len(d.Blockages))
	for _, r := range d.Blockages {
		p("rect %d %d %d %d\n", r.XLo, r.YLo, r.XHi, r.YHi)
	}
	p("iopins %d\n", len(d.IOPins))
	for i := range d.IOPins {
		io := &d.IOPins[i]
		p("io %s %d %d %d %d %d\n", io.Name, io.Layer,
			io.Box.XLo, io.Box.YLo, io.Box.XHi, io.Box.YHi)
	}
	p("cells %d\n", len(d.Cells))
	for i := range d.Cells {
		c := &d.Cells[i]
		fx := 0
		if c.Fixed {
			fx = 1
		}
		p("cell %s %d %d %d %d %d %d %d\n", c.Name, c.Type, c.Fence, c.GX, c.GY, c.X, c.Y, fx)
	}
	p("nets %d\n", len(d.Nets))
	for i := range d.Nets {
		n := &d.Nets[i]
		p("net %s %d\n", n.Name, len(n.Pins))
		for _, pin := range n.Pins {
			p("pinref %d %d %d\n", pin.Cell, pin.DX, pin.DY)
		}
	}
	return bw.Flush()
}

type parser struct {
	sc   *bufio.Scanner
	line int
}

func (p *parser) next() ([]string, error) {
	for p.sc.Scan() {
		p.line++
		s := strings.TrimSpace(p.sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		return strings.Fields(s), nil
	}
	if err := p.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("bmark: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// expect reads a line, checks the keyword, and scans the remaining
// fields into dst (pointers to int or *string).
func (p *parser) expect(keyword string, dst ...any) error {
	f, err := p.next()
	if err != nil {
		return err
	}
	if f[0] != keyword {
		return p.errf("want %q, got %q", keyword, f[0])
	}
	if len(f)-1 != len(dst) {
		return p.errf("%s: want %d fields, got %d", keyword, len(dst), len(f)-1)
	}
	for i, d := range dst {
		switch v := d.(type) {
		case *string:
			*v = f[i+1]
		case *int:
			if _, err := fmt.Sscanf(f[i+1], "%d", v); err != nil {
				return p.errf("%s: bad int %q", keyword, f[i+1])
			}
		default:
			panic("bmark: bad expect target")
		}
	}
	return nil
}

// Read parses a .mcl design.
func Read(r io.Reader) (*model.Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	p := &parser{sc: sc}

	f, err := p.next()
	if err != nil {
		return nil, err
	}
	if strings.Join(f, " ") != formatMagic {
		return nil, p.errf("bad magic %q", strings.Join(f, " "))
	}
	d := &model.Design{}
	if err := p.expect("name", &d.Name); err != nil {
		return nil, err
	}
	t := &d.Tech
	var flip int
	if err := p.expect("tech", &t.SiteW, &t.RowH, &t.NumSites, &t.NumRows, &t.EvenBottomParity, &flip); err != nil {
		return nil, err
	}
	t.FlipOddRows = flip != 0
	if err := p.expect("rails", &t.HRailLayer, &t.HRailHalfW, &t.HRailPeriod,
		&t.VRailLayer, &t.VRailPitch, &t.VRailW, &t.VRailOffset); err != nil {
		return nil, err
	}
	var n int
	if err := p.expect("spacing", &n); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		f, err := p.next()
		if err != nil {
			return nil, err
		}
		if len(f) != n {
			return nil, p.errf("spacing row %d: want %d entries, got %d", i, n, len(f))
		}
		row := make([]int, n)
		for j, s := range f {
			if _, err := fmt.Sscanf(s, "%d", &row[j]); err != nil {
				return nil, p.errf("bad spacing %q", s)
			}
		}
		t.EdgeSpacing = append(t.EdgeSpacing, row)
	}
	if err := p.expect("types", &n); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var ct model.CellType
		var el, er, np int
		if err := p.expect("type", &ct.Name, &ct.Width, &ct.Height, &el, &er, &np); err != nil {
			return nil, err
		}
		ct.EdgeL, ct.EdgeR = uint8(el), uint8(er)
		for j := 0; j < np; j++ {
			var pin model.PinShape
			if err := p.expect("pin", &pin.Name, &pin.Layer,
				&pin.Box.XLo, &pin.Box.YLo, &pin.Box.XHi, &pin.Box.YHi); err != nil {
				return nil, err
			}
			ct.Pins = append(ct.Pins, pin)
		}
		d.Types = append(d.Types, ct)
	}
	if err := p.expect("fences", &n); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var fe model.Fence
		var nr int
		if err := p.expect("fence", &fe.Name, &nr); err != nil {
			return nil, err
		}
		for j := 0; j < nr; j++ {
			var r geom.Rect
			if err := p.expect("rect", &r.XLo, &r.YLo, &r.XHi, &r.YHi); err != nil {
				return nil, err
			}
			fe.Rects = append(fe.Rects, r)
		}
		d.Fences = append(d.Fences, fe)
	}
	if err := p.expect("blockages", &n); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var r geom.Rect
		if err := p.expect("rect", &r.XLo, &r.YLo, &r.XHi, &r.YHi); err != nil {
			return nil, err
		}
		d.Blockages = append(d.Blockages, r)
	}
	if err := p.expect("iopins", &n); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var io model.IOPin
		if err := p.expect("io", &io.Name, &io.Layer,
			&io.Box.XLo, &io.Box.YLo, &io.Box.XHi, &io.Box.YHi); err != nil {
			return nil, err
		}
		d.IOPins = append(d.IOPins, io)
	}
	if err := p.expect("cells", &n); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var c model.Cell
		var ti, fi, fx int
		if err := p.expect("cell", &c.Name, &ti, &fi, &c.GX, &c.GY, &c.X, &c.Y, &fx); err != nil {
			return nil, err
		}
		c.Type = model.CellTypeID(ti)
		c.Fence = model.FenceID(fi)
		c.Fixed = fx != 0
		d.Cells = append(d.Cells, c)
	}
	if err := p.expect("nets", &n); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var net model.Net
		var np int
		if err := p.expect("net", &net.Name, &np); err != nil {
			return nil, err
		}
		for j := 0; j < np; j++ {
			var pin model.NetPin
			var ci int
			if err := p.expect("pinref", &ci, &pin.DX, &pin.DY); err != nil {
				return nil, err
			}
			pin.Cell = model.CellID(ci)
			net.Pins = append(net.Pins, pin)
		}
		d.Nets = append(d.Nets, net)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("bmark: parsed design invalid: %w", err)
	}
	return d, nil
}
