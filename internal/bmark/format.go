package bmark

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mclegal/internal/geom"
	"mclegal/internal/model"
)

// The .mcl plain-text design format. Line-oriented, whitespace
// separated, deterministic ordering, version-tagged.

const formatMagic = "MCLEGAL 1"

// writableName rejects names the line-oriented format cannot round-trip:
// embedded whitespace splits the field, an empty name drops it, and a
// leading '#' would not survive a hand edit that moves it to the front
// of a line.
func writableName(kind, s string) error {
	if s == "" || strings.ContainsAny(s, " \t\n\r") || strings.HasPrefix(s, "#") {
		return fmt.Errorf("bmark: %s name %q is not serializable", kind, s)
	}
	return nil
}

// checkWritable validates every name Write would emit, so a Write/Read
// round trip can never silently corrupt the design.
func checkWritable(d *model.Design) error {
	if err := writableName("design", d.Name); err != nil {
		return err
	}
	for i := range d.Types {
		if err := writableName("type", d.Types[i].Name); err != nil {
			return err
		}
		for _, pin := range d.Types[i].Pins {
			if err := writableName("pin", pin.Name); err != nil {
				return err
			}
		}
	}
	for i := range d.Fences {
		if err := writableName("fence", d.Fences[i].Name); err != nil {
			return err
		}
	}
	for i := range d.IOPins {
		if err := writableName("io pin", d.IOPins[i].Name); err != nil {
			return err
		}
	}
	for i := range d.Cells {
		if err := writableName("cell", d.Cells[i].Name); err != nil {
			return err
		}
	}
	for i := range d.Nets {
		if err := writableName("net", d.Nets[i].Name); err != nil {
			return err
		}
	}
	return nil
}

// Write serializes d to w in .mcl format.
func Write(w io.Writer, d *model.Design) error {
	if err := checkWritable(d); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	p := func(format string, args ...any) { fmt.Fprintf(bw, format, args...) }
	t := &d.Tech
	p("%s\n", formatMagic)
	p("name %s\n", d.Name)
	flip := 0
	if t.FlipOddRows {
		flip = 1
	}
	p("tech %d %d %d %d %d %d\n", t.SiteW, t.RowH, t.NumSites, t.NumRows, t.EvenBottomParity, flip)
	p("rails %d %d %d %d %d %d %d\n", t.HRailLayer, t.HRailHalfW, t.HRailPeriod,
		t.VRailLayer, t.VRailPitch, t.VRailW, t.VRailOffset)
	p("spacing %d\n", len(t.EdgeSpacing))
	for _, row := range t.EdgeSpacing {
		for i, v := range row {
			if i > 0 {
				p(" ")
			}
			p("%d", v)
		}
		p("\n")
	}
	p("types %d\n", len(d.Types))
	for i := range d.Types {
		ct := &d.Types[i]
		p("type %s %d %d %d %d %d\n", ct.Name, ct.Width, ct.Height, ct.EdgeL, ct.EdgeR, len(ct.Pins))
		for _, pin := range ct.Pins {
			p("pin %s %d %d %d %d %d\n", pin.Name, pin.Layer,
				pin.Box.XLo, pin.Box.YLo, pin.Box.XHi, pin.Box.YHi)
		}
	}
	p("fences %d\n", len(d.Fences))
	for i := range d.Fences {
		f := &d.Fences[i]
		p("fence %s %d\n", f.Name, len(f.Rects))
		for _, r := range f.Rects {
			p("rect %d %d %d %d\n", r.XLo, r.YLo, r.XHi, r.YHi)
		}
	}
	p("blockages %d\n", len(d.Blockages))
	for _, r := range d.Blockages {
		p("rect %d %d %d %d\n", r.XLo, r.YLo, r.XHi, r.YHi)
	}
	p("iopins %d\n", len(d.IOPins))
	for i := range d.IOPins {
		io := &d.IOPins[i]
		p("io %s %d %d %d %d %d\n", io.Name, io.Layer,
			io.Box.XLo, io.Box.YLo, io.Box.XHi, io.Box.YHi)
	}
	p("cells %d\n", len(d.Cells))
	for i := range d.Cells {
		c := &d.Cells[i]
		fx := 0
		if c.Fixed {
			fx = 1
		}
		p("cell %s %d %d %d %d %d %d %d\n", c.Name, c.Type, c.Fence, c.GX, c.GY, c.X, c.Y, fx)
	}
	p("nets %d\n", len(d.Nets))
	for i := range d.Nets {
		n := &d.Nets[i]
		p("net %s %d\n", n.Name, len(n.Pins))
		for _, pin := range n.Pins {
			p("pinref %d %d %d\n", pin.Cell, pin.DX, pin.DY)
		}
	}
	return bw.Flush()
}

// ReadMode selects how tolerant Read is of deviations from the
// canonical form Write produces. Comments and blank lines are part of
// the format and accepted in both modes.
type ReadMode int

const (
	// ModeStrict (the default) rejects every deviation: exact field
	// counts, clean integers, non-negative section counts, and nothing
	// but comments or blanks after the final section.
	ModeStrict ReadMode = iota
	// ModeLenient ignores extra fields at the end of a line and any
	// trailing content after the nets section, easing hand-edited or
	// future-extended files. Integers and counts stay strict: silently
	// mis-read geometry is worse than a rejected file.
	ModeLenient
)

// Limits bounds what a Read consumes from an untrusted reader — a
// network request body, say — so an oversized input fails with a typed
// *LimitError instead of exhausting memory. The zero value imposes no
// limits (the historical behavior for trusted local files).
type Limits struct {
	// MaxBytes caps the total bytes read from the input (0 = no cap).
	// An input of exactly MaxBytes still parses; the first byte beyond
	// it fails the read.
	MaxBytes int64
	// MaxCount caps every section count header (cells, nets, types,
	// fences, blockages, iopins, spacing; 0 = no cap). A header
	// declaring more items than MaxCount fails before any of the items
	// are consumed.
	MaxCount int
}

// LimitError is the typed error Read fails with when an input exceeds
// a configured limit.
type LimitError struct {
	// What names the exceeded limit: "bytes" or the section keyword
	// whose count was over the cap.
	What string
	// Limit is the configured bound; Actual is the observed value (for
	// "bytes" it is the byte position at which the cap was hit).
	Limit  int64
	Actual int64
}

func (e *LimitError) Error() string {
	if e.What == "bytes" {
		return fmt.Sprintf("bmark: input exceeds %d-byte limit", e.Limit)
	}
	return fmt.Sprintf("bmark: %s count %d exceeds limit %d", e.What, e.Actual, e.Limit)
}

// ReadOption customizes ReadWithMode; see WithLimits.
type ReadOption func(*parser)

// WithLimits applies input-size limits to a read.
func WithLimits(l Limits) ReadOption {
	return func(p *parser) { p.limits = l }
}

// cappedReader yields at most limit bytes, then fails with a typed
// *LimitError on the first byte beyond the cap — but still reports a
// clean EOF for inputs of exactly limit bytes.
type cappedReader struct {
	r     io.Reader
	n     int64
	limit int64
	// hit records that excess data was seen, so Read's caller can
	// prefer the limit error over whatever parse error the truncation
	// provoked first.
	hit bool
}

func (cr *cappedReader) Read(p []byte) (int, error) {
	if rem := cr.limit - cr.n; rem <= 0 {
		// Probe: only actual excess data is an error; EOF exactly at
		// the cap is a legal input.
		var b [1]byte
		n, err := cr.r.Read(b[:])
		if n > 0 {
			cr.hit = true
			return 0, &LimitError{What: "bytes", Limit: cr.limit, Actual: cr.limit + 1}
		}
		return 0, err
	} else if int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

type parser struct {
	sc     *bufio.Scanner
	line   int
	mode   ReadMode
	limits Limits
}

func (p *parser) next() ([]string, error) {
	for p.sc.Scan() {
		p.line++
		s := strings.TrimSpace(p.sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		return strings.Fields(s), nil
	}
	if err := p.sc.Err(); err != nil {
		var le *LimitError
		if errors.As(err, &le) {
			return nil, le // already carries the "bmark:" prefix
		}
		return nil, fmt.Errorf("bmark: line %d: %w", p.line, err)
	}
	return nil, fmt.Errorf("bmark: line %d: %w", p.line, io.ErrUnexpectedEOF)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("bmark: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// expect reads a line, checks the keyword, and scans the remaining
// fields into dst (pointers to int or string).
func (p *parser) expect(keyword string, dst ...any) error {
	f, err := p.next()
	if err != nil {
		return err
	}
	if f[0] != keyword {
		return p.errf("want %q, got %q", keyword, f[0])
	}
	switch {
	case len(f)-1 < len(dst):
		return p.errf("%s: want %d fields, got %d", keyword, len(dst), len(f)-1)
	case len(f)-1 > len(dst) && p.mode == ModeStrict:
		return p.errf("%s: want %d fields, got %d", keyword, len(dst), len(f)-1)
	}
	for i, d := range dst {
		switch v := d.(type) {
		case *string:
			// Keep the accepted-implies-writable invariant: a '#'-led
			// name would turn into a comment on the next hand edit.
			if strings.HasPrefix(f[i+1], "#") {
				return p.errf("%s: unserializable name %q", keyword, f[i+1])
			}
			*v = f[i+1]
		case *int:
			n, err := strconv.Atoi(f[i+1])
			if err != nil {
				return p.errf("%s: bad int %q", keyword, f[i+1])
			}
			*v = n
		default:
			return p.errf("%s: internal: unsupported field target %T", keyword, d)
		}
	}
	return nil
}

// count reads a "<keyword> <n>" section header and rejects negative
// counts, which would silently skip the section and misalign everything
// after it.
func (p *parser) count(keyword string) (int, error) {
	var n int
	if err := p.expect(keyword, &n); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, p.errf("%s: negative count %d", keyword, n)
	}
	if p.limits.MaxCount > 0 && n > p.limits.MaxCount {
		return 0, &LimitError{What: keyword, Limit: int64(p.limits.MaxCount), Actual: int64(n)}
	}
	return n, nil
}

// Read parses a .mcl design in ModeStrict.
func Read(r io.Reader) (*model.Design, error) {
	return ReadWithMode(r, ModeStrict)
}

// ReadWithMode parses a .mcl design with the given tolerance mode and
// optional input limits (WithLimits). Errors carry the 1-based line
// number they were detected on; limit violations are typed
// *LimitError values (wrapped, so use errors.As).
func ReadWithMode(r io.Reader, mode ReadMode, opts ...ReadOption) (*model.Design, error) {
	p := &parser{mode: mode}
	for _, o := range opts {
		o(p)
	}
	var cr *cappedReader
	if p.limits.MaxBytes > 0 {
		cr = &cappedReader{r: r, limit: p.limits.MaxBytes}
		r = cr
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<24)
	p.sc = sc

	d, err := p.readDesign()
	if err != nil && cr != nil && cr.hit {
		// A byte-capped input is cut at an arbitrary point, so the
		// parser usually trips over the truncated tail before it sees
		// the reader's error. The limit is the root cause; it wins over
		// the incidental parse error.
		var le *LimitError
		if !errors.As(err, &le) {
			err = &LimitError{What: "bytes", Limit: cr.limit, Actual: cr.limit + 1}
		}
	}
	if err != nil {
		return nil, err
	}
	return d, nil
}

// readDesign is the parse proper, over the parser's configured scanner.
func (p *parser) readDesign() (*model.Design, error) {
	f, err := p.next()
	if err != nil {
		return nil, err
	}
	if strings.Join(f, " ") != formatMagic {
		return nil, p.errf("bad magic %q", strings.Join(f, " "))
	}
	d := &model.Design{}
	if err := p.expect("name", &d.Name); err != nil {
		return nil, err
	}
	t := &d.Tech
	var flip int
	if err := p.expect("tech", &t.SiteW, &t.RowH, &t.NumSites, &t.NumRows, &t.EvenBottomParity, &flip); err != nil {
		return nil, err
	}
	t.FlipOddRows = flip != 0
	if err := p.expect("rails", &t.HRailLayer, &t.HRailHalfW, &t.HRailPeriod,
		&t.VRailLayer, &t.VRailPitch, &t.VRailW, &t.VRailOffset); err != nil {
		return nil, err
	}
	n, err := p.count("spacing")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		f, err := p.next()
		if err != nil {
			return nil, err
		}
		if len(f) != n {
			return nil, p.errf("spacing row %d: want %d entries, got %d", i, n, len(f))
		}
		row := make([]int, n)
		for j, s := range f {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, p.errf("bad spacing %q", s)
			}
			row[j] = v
		}
		t.EdgeSpacing = append(t.EdgeSpacing, row)
	}
	if n, err = p.count("types"); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var ct model.CellType
		var el, er, np int
		if err := p.expect("type", &ct.Name, &ct.Width, &ct.Height, &el, &er, &np); err != nil {
			return nil, err
		}
		ct.EdgeL, ct.EdgeR = uint8(el), uint8(er)
		if np < 0 {
			return nil, p.errf("type %s: negative pin count %d", ct.Name, np)
		}
		for j := 0; j < np; j++ {
			var pin model.PinShape
			if err := p.expect("pin", &pin.Name, &pin.Layer,
				&pin.Box.XLo, &pin.Box.YLo, &pin.Box.XHi, &pin.Box.YHi); err != nil {
				return nil, err
			}
			ct.Pins = append(ct.Pins, pin)
		}
		d.Types = append(d.Types, ct)
	}
	if n, err = p.count("fences"); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var fe model.Fence
		var nr int
		if err := p.expect("fence", &fe.Name, &nr); err != nil {
			return nil, err
		}
		if nr < 0 {
			return nil, p.errf("fence %s: negative rect count %d", fe.Name, nr)
		}
		for j := 0; j < nr; j++ {
			var r geom.Rect
			if err := p.expect("rect", &r.XLo, &r.YLo, &r.XHi, &r.YHi); err != nil {
				return nil, err
			}
			fe.Rects = append(fe.Rects, r)
		}
		d.Fences = append(d.Fences, fe)
	}
	if n, err = p.count("blockages"); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var r geom.Rect
		if err := p.expect("rect", &r.XLo, &r.YLo, &r.XHi, &r.YHi); err != nil {
			return nil, err
		}
		d.Blockages = append(d.Blockages, r)
	}
	if n, err = p.count("iopins"); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var io model.IOPin
		if err := p.expect("io", &io.Name, &io.Layer,
			&io.Box.XLo, &io.Box.YLo, &io.Box.XHi, &io.Box.YHi); err != nil {
			return nil, err
		}
		d.IOPins = append(d.IOPins, io)
	}
	if n, err = p.count("cells"); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var c model.Cell
		var ti, fi, fx int
		if err := p.expect("cell", &c.Name, &ti, &fi, &c.GX, &c.GY, &c.X, &c.Y, &fx); err != nil {
			return nil, err
		}
		c.Type = model.CellTypeID(ti)
		c.Fence = model.FenceID(fi)
		c.Fixed = fx != 0
		d.Cells = append(d.Cells, c)
	}
	if n, err = p.count("nets"); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var net model.Net
		var np int
		if err := p.expect("net", &net.Name, &np); err != nil {
			return nil, err
		}
		if np < 0 {
			return nil, p.errf("net %s: negative pin count %d", net.Name, np)
		}
		for j := 0; j < np; j++ {
			var pin model.NetPin
			var ci int
			if err := p.expect("pinref", &ci, &pin.DX, &pin.DY); err != nil {
				return nil, err
			}
			pin.Cell = model.CellID(ci)
			net.Pins = append(net.Pins, pin)
		}
		d.Nets = append(d.Nets, net)
	}
	if p.mode == ModeStrict {
		// Only comments and blanks may follow the final section.
		if f, err := p.next(); err == nil {
			return nil, p.errf("trailing content %q after nets section", strings.Join(f, " "))
		} else if !errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, err
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("bmark: parsed design invalid: %w", err)
	}
	return d, nil
}
