package bmark

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"mclegal/internal/model"
)

func canonical(t *testing.T) string {
	t.Helper()
	d := Generate(Params{Name: "m", Seed: 3, Counts: [4]int{10, 2, 0, 0}, Density: 0.4})
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// Strict rejects extra fields on a line; lenient ignores them.
func TestModeExtraFields(t *testing.T) {
	s := strings.Replace(canonical(t), "name m", "name m future-flag", 1)
	if _, err := ReadWithMode(strings.NewReader(s), ModeStrict); err == nil {
		t.Error("strict accepted extra field")
	}
	if _, err := ReadWithMode(strings.NewReader(s), ModeLenient); err != nil {
		t.Errorf("lenient rejected extra field: %v", err)
	}
}

// Strict rejects trailing content after the nets section; lenient
// ignores it. Trailing comments are fine in both.
func TestModeTrailingContent(t *testing.T) {
	s := canonical(t)
	if _, err := Read(strings.NewReader(s + "# trailing comment\n\n")); err != nil {
		t.Errorf("strict rejected trailing comment: %v", err)
	}
	s += "futuresection 0\n"
	if _, err := ReadWithMode(strings.NewReader(s), ModeStrict); err == nil {
		t.Error("strict accepted trailing section")
	}
	if _, err := ReadWithMode(strings.NewReader(s), ModeLenient); err != nil {
		t.Errorf("lenient rejected trailing section: %v", err)
	}
}

// Integers with trailing junk were silently truncated by the old
// Sscanf-based parser; both modes must reject them now.
func TestBadIntRejectedInBothModes(t *testing.T) {
	s := strings.Replace(canonical(t), "tech 10", "tech 10x", 1)
	for _, m := range []ReadMode{ModeStrict, ModeLenient} {
		if _, err := ReadWithMode(strings.NewReader(s), m); err == nil {
			t.Errorf("mode %d accepted trailing junk in int", m)
		}
	}
}

// Negative counts would silently skip a section and misalign the rest.
func TestNegativeCountsRejected(t *testing.T) {
	head := "MCLEGAL 1\nname x\ntech 10 80 40 4 0 0\nrails 0 0 0 0 0 0 0\n"
	cases := []string{
		head + "spacing -1\n",
		head + "spacing 0\ntypes -2\n",
		head + "spacing 0\ntypes 1\ntype T 2 1 0 0 -1\n",
		head + "spacing 0\ntypes 1\ntype T 2 1 0 0 0\nfences 1\nfence f -3\n",
	}
	for i, s := range cases {
		_, err := Read(strings.NewReader(s))
		if err == nil || !strings.Contains(err.Error(), "negative") {
			t.Errorf("case %d: err = %v, want negative-count rejection", i, err)
		}
	}
}

// Parse errors carry the 1-based line number they were detected on.
func TestErrorsCarryLineNumbers(t *testing.T) {
	s := "MCLEGAL 1\nname x\ntech 10 80 40 4 0 bogus\n"
	_, err := Read(strings.NewReader(s))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want line 3", err)
	}
	// A truncated file reports the line it ended on, wrapping
	// io.ErrUnexpectedEOF for errors.Is callers.
	_, err = Read(strings.NewReader("MCLEGAL 1\nname x\n"))
	if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-numbered unexpected EOF", err)
	}
}

// Write refuses names the format cannot round-trip.
func TestWriteRejectsUnserializableNames(t *testing.T) {
	mk := func(name string) *model.Design {
		d := Generate(Params{Name: "w", Seed: 4, Counts: [4]int{4, 0, 0, 0}, Density: 0.3})
		d.Cells[0].Name = name
		return d
	}
	for _, name := range []string{"", "a b", "#c0", "tab\tbed"} {
		var buf bytes.Buffer
		if err := Write(&buf, mk(name)); err == nil {
			t.Errorf("Write accepted cell name %q", name)
		}
	}
}

// A '#'-led name parsed mid-line would be accepted but unwritable;
// Read rejects it to keep accepted-implies-writable.
func TestReadRejectsHashNames(t *testing.T) {
	s := strings.Replace(canonical(t), "name m", "name #m", 1)
	_, err := Read(strings.NewReader(s))
	if err == nil || !strings.Contains(err.Error(), "unserializable") {
		t.Errorf("err = %v, want unserializable-name rejection", err)
	}
}
