package bmark

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead drives the .mcl parser with arbitrary bytes. Invariants:
// Read never panics or hangs; every error is prefixed "bmark:"; any
// input strict Read accepts is writable, re-readable, and write-stable;
// and lenient mode accepts everything strict mode accepts.
func FuzzRead(f *testing.F) {
	for _, p := range []Params{
		{Name: "seed1", Seed: 1, Counts: [4]int{20, 4, 1, 1}, Density: 0.5,
			NumFences: 1, FenceFrac: 0.5, NetFrac: 0.5, IOPins: 2, Routability: true},
		{Name: "seed2", Seed: 2, Counts: [4]int{5, 0, 0, 0}, Density: 0.3},
	} {
		var buf bytes.Buffer
		if err := Write(&buf, Generate(p)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(""))
	f.Add([]byte("MCLEGAL 1\nname x\n"))
	f.Add([]byte("MCLEGAL 1\nname x\ntech 10 80 40 4 0 0\nrails 0 0 0 0 0 0 0\nspacing -1\n"))
	f.Add([]byte("MCLEGAL 1\nname x\ntech 10 80 40 4 0 0\nrails 0 0 0 0 0 0 0\nspacing 0\ntypes 1\ntype #t 2 1 0 0 0\n"))
	f.Add([]byte("cells 99999999999999999999"))
	f.Add([]byte("# only a comment\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadWithMode(bytes.NewReader(data), ModeStrict)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "bmark:") {
				t.Fatalf("error without bmark prefix: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("accepted design not writable: %v", err)
		}
		d2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("rewritten design rejected: %v", err)
		}
		var buf2 bytes.Buffer
		if err := Write(&buf2, d2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("write/read/write is not a fixed point")
		}
		if _, lerr := ReadWithMode(bytes.NewReader(data), ModeLenient); lerr != nil {
			t.Fatalf("lenient rejected strict-accepted input: %v", lerr)
		}
	})
}
