// Package scratchescape enforces the pooled scratch-buffer ownership
// rule of internal/mgl/scratch.go: slices handed out by the scratch
// pool (reps, chain, moves, ...) are valid only until the evaluation
// returns its scratch to the pool, so they must never be aliased past
// the evaluation boundary. The legal hand-off is the three-stage copy
// chain sc.moves -> sc.bestMoves -> caller storage, each step an
// append(dst[:0], src...) copy.
//
// A "scratch type" is any struct type named scratch, or any type whose
// doc comment contains the marker mclegal:scratch. Within functions of
// a package declaring such a type, the analyzer taints values derived
// from scratch slice fields and reports when a tainted value
//
//   - is stored through a pointer, into a package-level variable, or
//     into a field/element reachable outside the function (storing back
//     into the scratch itself, or into a function-local value struct,
//     is fine);
//   - is sent on a channel;
//   - is returned from an exported function or method (unexported
//     helpers returning scratch-owned slices are the intra-boundary
//     idiom: "the returned slice is owned by sc");
//   - is appended as an element into another container.
//
// Spread copies (append(dst[:0], buf...)) never alias and are always
// accepted. Suppress deliberate violations with //mclegal:escape <why>.
package scratchescape

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mclegal/internal/analysis/framework"
)

// Analyzer is the scratchescape check.
var Analyzer = &framework.Analyzer{
	Name:      "scratchescape",
	Doc:       "flag pooled scratch-buffer slices escaping the evaluation boundary (suppress with //mclegal:escape)",
	Run:       run,
	Directive: "escape",
	Example:   "//mclegal:escape the slice is copied before the pool reclaims it; see the append below",
}

func run(pass *framework.Pass) error {
	scratchTypes := findScratchTypes(pass)
	if len(scratchTypes) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd, scratchTypes)
			}
		}
	}
	return nil
}

// findScratchTypes collects the pooled scratch type objects of the
// package: structs named "scratch" or marked with mclegal:scratch in
// their doc comment.
func findScratchTypes(pass *framework.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
					continue
				}
				marked := ts.Name.Name == "scratch" ||
					(ts.Doc != nil && strings.Contains(ts.Doc.Text(), "mclegal:scratch")) ||
					(gd.Doc != nil && strings.Contains(gd.Doc.Text(), "mclegal:scratch"))
				if !marked {
					continue
				}
				if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

type checker struct {
	pass    *framework.Pass
	scratch map[types.Object]bool
	fn      *ast.FuncDecl
	taint   map[types.Object]bool
	funcLit [][2]token.Pos
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, scratchTypes map[types.Object]bool) {
	c := &checker{pass: pass, scratch: scratchTypes, fn: fd, taint: make(map[types.Object]bool)}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.funcLit = append(c.funcLit, [2]token.Pos{fl.Body.Pos(), fl.Body.End()})
		}
		return true
	})
	c.propagate()
	c.report()
}

// propagate computes the tainted local variables to a fixed point:
// anything assigned (directly or through slicing) from a scratch slice
// field or an already-tainted variable.
func (c *checker) propagate() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(c.fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if !c.tainted(rhs) {
						continue
					}
					if id, ok := unparen(n.Lhs[i]).(*ast.Ident); ok {
						if obj := c.identObj(id); obj != nil && !c.taint[obj] {
							c.taint[obj] = true
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) && c.tainted(n.Values[i]) {
						if obj := c.pass.TypesInfo.Defs[name]; obj != nil && !c.taint[obj] {
							c.taint[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
}

// report walks the function flagging every escape of a tainted value.
func (c *checker) report() {
	pass := c.pass
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if c.tainted(rhs) && c.escapingLHS(n.Lhs[i]) && !pass.Suppressed("escape", n.Pos()) {
					pass.Reportf(n.Pos(),
						"scratch buffer %s is aliased past the evaluation boundary by this store; copy it with append(dst[:0], src...) (three-stage ownership rule, internal/mgl/scratch.go)",
						types.ExprString(rhs))
				}
			}
		case *ast.SendStmt:
			if c.tainted(n.Value) && !pass.Suppressed("escape", n.Pos()) {
				pass.Reportf(n.Pos(),
					"scratch buffer %s sent on a channel escapes the evaluation boundary; send a copy instead",
					types.ExprString(n.Value))
			}
		case *ast.ReturnStmt:
			if !c.fn.Name.IsExported() || c.insideFuncLit(n.Pos()) {
				return true
			}
			for _, res := range n.Results {
				if c.tainted(res) && !pass.Suppressed("escape", n.Pos()) {
					pass.Reportf(n.Pos(),
						"scratch buffer %s returned from exported %s escapes the evaluation boundary; return a copy",
						types.ExprString(res), c.fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			id, ok := unparen(n.Fun).(*ast.Ident)
			if !ok || n.Ellipsis != token.NoPos {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "append" {
				return true
			}
			for _, arg := range n.Args[1:] {
				if c.tainted(arg) && !pass.Suppressed("escape", n.Pos()) {
					pass.Reportf(n.Pos(),
						"scratch buffer %s appended as an element aliases it into another container; append a copy or spread with ...",
						types.ExprString(arg))
				}
			}
		}
		return true
	})
}

// tainted reports whether e aliases a scratch slice buffer: a scratch
// slice field selector, a tainted identifier, or a slice expression
// over either.
func (c *checker) tainted(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		return obj != nil && c.taint[obj]
	case *ast.SliceExpr:
		return c.tainted(e.X)
	case *ast.SelectorExpr:
		return c.isScratchSliceField(e)
	}
	return false
}

// isScratchSliceField reports whether sel reads a slice-typed field of
// a scratch struct.
func (c *checker) isScratchSliceField(sel *ast.SelectorExpr) bool {
	tv, ok := c.pass.TypesInfo.Types[sel]
	if !ok {
		return false
	}
	if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
		return false
	}
	return c.isScratchType(c.pass.TypesInfo.Types[sel.X].Type)
}

func (c *checker) isScratchType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && c.scratch[named.Obj()]
}

// escapingLHS reports whether storing into lhs publishes the value
// outside the current function.
func (c *checker) escapingLHS(lhs ast.Expr) bool {
	lhs = unparen(lhs)
	// Storing back into the scratch itself is the idiom (sc.chain =
	// chain after growth), never an escape.
	if c.scratchRooted(lhs) {
		return false
	}
	switch l := lhs.(type) {
	case *ast.Ident:
		obj := c.identObj(l)
		return isPackageLevel(obj)
	case *ast.StarExpr:
		return true
	case *ast.SelectorExpr, *ast.IndexExpr:
		root := rootIdent(lhs)
		if root == nil {
			return true
		}
		obj := c.identObj(root)
		if obj == nil || isPackageLevel(obj) {
			return true
		}
		// A store through a pointer-typed root reaches memory the
		// caller can see; a field of a function-local value struct
		// cannot outlive the frame without a further (checked) store.
		if v, ok := obj.(*types.Var); ok {
			if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
				return true
			}
			return false
		}
		return true
	}
	return true
}

// scratchRooted reports whether the selector/index chain of e passes
// through a scratch-typed base.
func (c *checker) scratchRooted(e ast.Expr) bool {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			if c.isScratchType(c.pass.TypesInfo.Types[x.X].Type) {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

func (c *checker) identObj(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Defs[id]
}

func (c *checker) insideFuncLit(pos token.Pos) bool {
	for _, r := range c.funcLit {
		if pos >= r[0] && pos < r[1] {
			return true
		}
	}
	return false
}

func isPackageLevel(obj types.Object) bool {
	return obj != nil && obj.Parent() != nil && obj.Parent().Parent() == types.Universe
}

// rootIdent walks a selector/index/slice/deref chain to its base
// identifier (nil if the base is not an identifier).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
