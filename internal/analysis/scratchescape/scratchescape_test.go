package scratchescape_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/scratchescape"
)

func TestScratchEscape(t *testing.T) {
	analysistest.Run(t, "../testdata", scratchescape.Analyzer,
		"scratchescape/internal/mgl", "scratchescape/internal/other")
}
