// Package typederr requires errors constructed in the gate-boundary
// package (internal/stage) to be the typed kinds callers can dispatch
// on with errors.As — GateError, PanicError, AuditError,
// MetricRegressionError, PolicyError — rather than bare fmt.Errorf or
// errors.New values. Bare errors erase the machine-readable failure
// taxonomy the recovery policies and the CLI exit codes are built on
// (docs/ROBUSTNESS.md).
//
// fmt.Errorf with a %w verb is accepted: wrapping preserves the typed
// cause for errors.As. Anything else needs a //mclegal:typederr <why>
// directive.
package typederr

import (
	"go/ast"
	"go/types"
	"strings"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// Analyzer is the typederr check.
var Analyzer = &framework.Analyzer{
	Name:      "typederr",
	Doc:       "require typed errors (or %w wrapping) at the stage gate boundary (suppress with //mclegal:typederr)",
	Run:       run,
	Scope:     scope.GateBoundary,
	Directive: "typederr",
	Example:   "//mclegal:typederr this error never crosses the gate; it is consumed by the retry loop above",
}

func run(pass *framework.Pass) error {
	if !framework.PathMatchesAny(pass.Pkg.Path(), scope.GateBoundary) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "errors" && fn.Name() == "New":
				if !pass.Suppressed("typederr", call.Pos()) {
					pass.Reportf(call.Pos(),
						"errors.New crosses the stage gate boundary untyped: return a typed error (GateError, PanicError, AuditError, MetricRegressionError, PolicyError) or justify with //mclegal:typederr <why>")
				}
			case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
				if wrapsCause(call) || pass.Suppressed("typederr", call.Pos()) {
					return true
				}
				pass.Reportf(call.Pos(),
					"bare fmt.Errorf crosses the stage gate boundary: return a typed error (GateError, PanicError, AuditError, MetricRegressionError, PolicyError) or wrap a typed cause with %%w")
			}
			return true
		})
	}
	return nil
}

// wrapsCause reports whether the fmt.Errorf format literal contains a
// %w verb (a dynamic format cannot be proven to wrap and is flagged).
func wrapsCause(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	return ok && strings.Contains(lit.Value, "%w")
}
