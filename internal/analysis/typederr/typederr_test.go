package typederr_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/typederr"
)

func TestTypedErr(t *testing.T) {
	analysistest.Run(t, "../testdata", typederr.Analyzer,
		"typederr/internal/stage", "typederr/internal/other")
}
