package aliasleak_test

import (
	"testing"

	"mclegal/internal/analysis/aliasleak"
	"mclegal/internal/analysis/analysistest"
)

// One program: the clone boundary shapes live in the serve fixture,
// the tracked Design (with its Clone/Count methods) in the model
// fixture so callee write sets are provable.
func TestAliasleak(t *testing.T) {
	analysistest.RunGroup(t, "../testdata", aliasleak.Analyzer,
		"aliasleak/internal/model", "aliasleak/internal/serve")
}
