// Package aliasleak enforces the serving layer's clone boundary
// statically: a store-resident design (internal/serve holds parsed
// designs immutable and shared across concurrent requests) may be read
// freely, but no interior pointer of one may escape the boundary. The
// analyzer taints every value read out of a store — an index or range
// over a field-held (or package-level) map whose element type can
// reach resident state under the internal/analysis/writeloc vocabulary
// — propagates the taint through selectors, indexing, reslicing,
// address-of and derived calls, launders it through Clone() calls, and
// reports four escape channels:
//
//   - returning a tainted value (an interior pointer crosses the
//     function boundary un-cloned);
//   - storing a tainted value into a struct field or package-level
//     variable (the pointer outlives the request);
//   - capturing a tainted value in a go statement (the goroutine may
//     outlive the request's read window);
//   - passing a tainted value to a callee that mutates it (a
//     parameter- or receiver-rooted write effect in the callee's
//     summary), to one whose write set is unprovable, or through a
//     dynamic call.
//
// The last channel is why the module's scoped program loads
// internal/bmark: proving writeDesignBody harmless requires
// bmark.Write's summary, not trust. A justified exception takes
// //mclegal:aliasleak <why> on the flagged line.
package aliasleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
	"mclegal/internal/analysis/writeloc"
)

// ServeScope lists the packages holding store-resident designs behind
// a clone boundary.
var ServeScope = []string{"internal/serve"}

// Analyzer proves resident-design isolation in the serving layer.
var Analyzer = &framework.Analyzer{
	Name:      "aliasleak",
	Doc:       "forbid interior pointers of store-resident designs from escaping the serve clone boundary via return, field/global store, goroutine capture, or a mutating callee",
	Scope:     ServeScope,
	Directive: "aliasleak",
	Example:   "//mclegal:aliasleak the callee is the store's own eviction hook and holds the lock",
	Run:       run,
}

// Keep scope referenced for -explain consumers building on the shared
// lists; aliasleak's own scope is the serve layer only.
var _ = scope.DeterministicCore

type finding struct {
	pkg *types.Package
	pos token.Pos
	msg string
}

type alState struct {
	findings []finding
}

func state(prog *framework.Program) (*alState, error) {
	v, err := prog.CacheLoad("aliasleak", func() (any, error) { return computeState(prog) })
	if err != nil {
		return nil, err
	}
	return v.(*alState), nil
}

func computeState(prog *framework.Program) (*alState, error) {
	effects, vocab, err := writeloc.Effects(prog)
	if err != nil {
		return nil, err
	}
	cg, err := prog.CallGraph()
	if err != nil {
		return nil, err
	}
	st := &alState{}
	for _, pkg := range prog.Pkgs {
		if !framework.PathMatchesAny(pkg.Path, ServeScope) {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ft := &funcTaint{
					st: st, pkg: pkg, cg: cg, effects: effects, vocab: vocab,
					tainted: make(map[*types.Var]bool),
				}
				ft.analyze(fd)
			}
		}
	}
	sort.Slice(st.findings, func(i, j int) bool { return st.findings[i].pos < st.findings[j].pos })
	return st, nil
}

type funcTaint struct {
	st      *alState
	pkg     *framework.Package
	cg      *framework.CallGraph
	effects map[*framework.Node]*framework.WriteEffects
	vocab   *writeloc.Vocab
	tainted map[*types.Var]bool
}

func (ft *funcTaint) report(pos token.Pos, format string, args ...any) {
	ft.st.findings = append(ft.st.findings, finding{
		pkg: ft.pkg.Types, pos: pos, msg: fmt.Sprintf(format, args...),
	})
}

func (ft *funcTaint) analyze(fd *ast.FuncDecl) {
	// Taint fixpoint over bindings, then one sink pass.
	for i := 0; i < 32; i++ {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					rhs := pairedRhs(s, i)
					if rhs == nil {
						continue
					}
					if v := ft.localOf(lhs); v != nil && !ft.tainted[v] && ft.taintedExpr(rhs) {
						ft.tainted[v] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if s.X != nil && (ft.taintedExpr(s.X) || ft.isStoreMap(s.X)) {
					for _, e := range []ast.Expr{s.Key, s.Value} {
						if v := ft.localOf(e); v != nil && !ft.tainted[v] && ft.vocab.Reaches(v.Type()) {
							ft.tainted[v] = true
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	ft.sinks(fd)
}

// pairedRhs matches one lhs of an assignment with its rhs: 1:1 for
// parallel assignment, the single rhs for multi-value binds (a call or
// map index; the taint of the whole rhs flows to each non-blank lhs).
func pairedRhs(s *ast.AssignStmt, i int) ast.Expr {
	if len(s.Rhs) == len(s.Lhs) {
		return s.Rhs[i]
	}
	if len(s.Rhs) == 1 {
		return s.Rhs[0]
	}
	return nil
}

func (ft *funcTaint) localOf(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	var obj types.Object
	if def, ok := ft.pkg.Info.Defs[id]; ok {
		obj = def
	} else {
		obj = ft.pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || isPkgLevel(v) {
		return nil
	}
	return v
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// taintedExpr reports whether e denotes (or derives from) a
// store-resident value. Values whose type cannot reach resident state
// are never tainted (len(d.Cells) is just an int).
func (ft *funcTaint) taintedExpr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if t := ft.pkg.Info.TypeOf(e); t != nil && !ft.vocab.Reaches(t) {
		return false
	}
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := ft.pkg.Info.Uses[x].(*types.Var)
		return ok && ft.tainted[v]
	case *ast.IndexExpr:
		return ft.isStoreRead(x) || ft.taintedExpr(x.X)
	case *ast.SelectorExpr:
		return ft.taintedExpr(x.X)
	case *ast.StarExpr:
		return ft.taintedExpr(x.X)
	case *ast.ParenExpr:
		return ft.taintedExpr(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// Taking an address re-enters pointer land: the operand's
			// own value type (a bare Cell) no longer gates the taint.
			return ft.taintedPath(x.X)
		}
		return ft.taintedExpr(x.X)
	case *ast.SliceExpr:
		return ft.taintedExpr(x.X)
	case *ast.TypeAssertExpr:
		return ft.taintedExpr(x.X)
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Clone" {
			return false // the clone boundary launders the value
		}
		if recv, args := callOperands(x); ft.taintedExpr(recv) {
			return true
		} else {
			for _, a := range args {
				if ft.taintedExpr(a) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// taintedPath reports whether the addressable path e is rooted in a
// tainted or store-resident value, ignoring the value types the path
// passes through (&d.Cells[0] is an interior pointer into the store
// even though a bare Cell value could not mutate it).
func (ft *funcTaint) taintedPath(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := ft.pkg.Info.Uses[x].(*types.Var)
		return ok && ft.tainted[v]
	case *ast.SelectorExpr:
		return ft.taintedPath(x.X)
	case *ast.IndexExpr:
		return ft.isStoreRead(x) || ft.taintedPath(x.X)
	case *ast.StarExpr:
		return ft.taintedPath(x.X)
	case *ast.ParenExpr:
		return ft.taintedPath(x.X)
	case *ast.SliceExpr:
		return ft.taintedPath(x.X)
	}
	return false
}

// isStoreRead recognizes the taint source: indexing a field-held or
// package-level map whose elements reach resident state.
func (ft *funcTaint) isStoreRead(idx *ast.IndexExpr) bool {
	return ft.isStoreMap(idx.X)
}

// isStoreMap recognizes the store itself: a field-held or
// package-level map whose elements reach resident state.
func (ft *funcTaint) isStoreMap(e ast.Expr) bool {
	t := ft.pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	mt, ok := t.Underlying().(*types.Map)
	if !ok || !ft.vocab.Reaches(mt.Elem()) {
		return false
	}
	switch base := e.(type) {
	case *ast.SelectorExpr:
		v, ok := ft.pkg.Info.Uses[base.Sel].(*types.Var)
		return ok && v.IsField()
	case *ast.Ident:
		v, ok := ft.pkg.Info.Uses[base].(*types.Var)
		return ok && isPkgLevel(v)
	}
	return false
}

func callOperands(call *ast.CallExpr) (recv ast.Expr, args []ast.Expr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.X, call.Args
	}
	return nil, call.Args
}

// sinks walks the function once with the converged taint set and
// reports every escape channel.
func (ft *funcTaint) sinks(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if ft.taintedExpr(r) {
					ft.report(r.Pos(), "returns an interior pointer of a store-resident design across the clone boundary; return a Clone() or justify with //mclegal:aliasleak <why>")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				rhs := pairedRhs(s, i)
				if rhs == nil || !ft.taintedExpr(rhs) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					if v, ok := ft.pkg.Info.Uses[l.Sel].(*types.Var); ok && v.IsField() {
						ft.report(l.Pos(), "stores a resident design pointer into field %s, where it outlives the request; store a Clone() or justify with //mclegal:aliasleak <why>", v.Name())
					}
				case *ast.Ident:
					if v, ok := ft.pkg.Info.Uses[l].(*types.Var); ok && isPkgLevel(v) {
						ft.report(l.Pos(), "stores a resident design pointer into package-level %s, where it outlives the request; store a Clone() or justify with //mclegal:aliasleak <why>", v.Name())
					}
				}
			}
		case *ast.GoStmt:
			ft.goSink(s)
			return false // goSink walks the spawned call itself
		case *ast.CallExpr:
			ft.callSink(s)
		}
		return true
	})
}

// goSink reports tainted values crossing into a spawned goroutine:
// tainted call arguments, and tainted locals captured by a function
// literal body.
func (ft *funcTaint) goSink(g *ast.GoStmt) {
	for _, a := range g.Call.Args {
		if ft.taintedExpr(a) {
			ft.report(a.Pos(), "passes a resident design pointer to a goroutine, which may outlive the request's read window; pass a Clone() or justify with //mclegal:aliasleak <why>")
		}
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := ft.pkg.Info.Uses[id].(*types.Var); ok && ft.tainted[v] {
				ft.report(id.Pos(), "goroutine captures resident design pointer %s, which may outlive the request's read window; capture a Clone() or justify with //mclegal:aliasleak <why>", id.Name)
			}
			return true
		})
	}
}

// callSink screens calls that receive a tainted value: the callee must
// be static, in-program or known-safe external, with a provable write
// set that has no effect rooted at the tainted operand.
func (ft *funcTaint) callSink(call *ast.CallExpr) {
	if tv, ok := ft.pkg.Info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		// Conversions pass the value through (taintedExpr tracks that);
		// builtins read or write only what their spelled-out operands
		// already show.
		return
	}
	recv, args := callOperands(call)
	recvTainted := ft.taintedExpr(recv)
	var taintedIdx []int
	for i, a := range args {
		if ft.taintedExpr(a) {
			taintedIdx = append(taintedIdx, i)
		}
	}
	if !recvTainted && len(taintedIdx) == 0 {
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Clone" {
		return
	}
	fn := ft.callee(call)
	if fn == nil {
		if _, isLit := call.Fun.(*ast.FuncLit); isLit {
			return // the literal's body is screened by this same walk
		}
		ft.report(call.Pos(), "passes a resident design through a dynamic call, which cannot be proven read-only; clone first or justify with //mclegal:aliasleak <why>")
		return
	}
	node := ft.cg.Node(fn)
	if node == nil || node.Decl == nil {
		// External or body-less callee: only the known-safe externals
		// may see resident state.
		if muts, known := ft.vocab.External(fn); known {
			for _, m := range muts {
				for _, ti := range taintedIdx {
					if m == ti {
						ft.report(call.Args[ti].Pos(), "passes a resident design to %s, which mutates its argument; resident designs are immutable — clone first", fn.Name())
					}
				}
			}
			return
		}
		ft.report(call.Pos(), "passes a resident design to %s, whose effects are unknown; clone first or justify with //mclegal:aliasleak <why>", calleeName(fn))
		return
	}
	we := ft.effects[node]
	if we == nil {
		return
	}
	if len(we.Unknown) > 0 {
		ft.report(call.Pos(), "passes a resident design to %s, whose write set is unprovable (%s); clone first or justify with //mclegal:aliasleak <why>", calleeName(fn), we.Unknown[0].What)
		return
	}
	for _, e := range we.Effects {
		switch e.Root {
		case framework.WriteRecv:
			if recvTainted {
				ft.report(call.Pos(), "passes a resident design to %s, which writes %s through its receiver; resident designs are immutable — clone first", calleeName(fn), e.Obj.Name())
				return
			}
		case framework.WriteParam:
			for _, ti := range taintedIdx {
				if e.Param == ti {
					ft.report(call.Args[ti].Pos(), "passes a resident design to %s, which writes %s through parameter %d; resident designs are immutable — clone first", calleeName(fn), e.Obj.Name(), ti)
					return
				}
			}
		default:
			// WriteFresh is the callee's own storage and WriteShared is
			// package-level/escaped state — neither reaches the callee
			// through the tainted argument being screened here.
		}
	}
}

func (ft *funcTaint) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := ft.pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := ft.pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func calleeName(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func run(pass *framework.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	st, err := state(pass.Prog)
	if err != nil {
		return err
	}
	for _, f := range st.findings {
		if f.pkg != pass.Pkg {
			continue
		}
		if pass.Suppressed("aliasleak", f.pos) {
			continue
		}
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}
