// Package writeloc is the resident-state location vocabulary of the
// write-effect analyzers (writeset, snapshotsafe, aliasleak): which
// struct fields and types of this module hold state that outlives a
// single pipeline stage, and what abstract location name each maps to.
// The framework's write-effect engine stays domain-free; everything
// mclegal-specific about "what counts as resident state" lives here.
//
// Locations (see docs/STATIC_ANALYSIS.md):
//
//	design.xy  — cell coordinates: model.Cell.X/Y
//	design.meta — cell and design metadata: every other model.Design /
//	              model.Cell field (replacing a whole Cell or the
//	              Cells slice touches design.xy too)
//	hotcells   — the model.HotCells SoA coordinate mirror
//	grid       — the seg.Grid/seg.Segment row segmentation
//	occupancy  — the MGL legalizer's per-run occupancy index
//	routememo  — route.Rules/route.Checker memo and rail state
//	stagectx   — stage.PipelineContext fields (stats, reports,
//	              artifacts)
//
// Package paths are matched by suffix (framework.PathMatchesAny), so
// the same vocabulary resolves over the real module and over
// analysistest fixtures whose import paths merely end in
// internal/model, internal/stage, ...
package writeloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mclegal/internal/analysis/framework"
)

// locSpec maps one named type's fields onto location names. The ""
// field key is the default for fields not listed explicitly.
type locSpec struct {
	pkg    string // package path suffix
	typ    string
	fields map[string][]string
}

var specs = []locSpec{
	{"internal/model", "Cell", map[string][]string{
		"X": {"design.xy"}, "Y": {"design.xy"},
		"": {"design.meta"},
	}},
	{"internal/model", "Design", map[string][]string{
		// Replacing the Cells slice header adds/removes cells:
		// structurally that is both metadata and coordinates.
		"Cells": {"design.meta", "design.xy"},
		"":      {"design.meta"},
	}},
	{"internal/model", "HotCells", map[string][]string{"": {"hotcells"}}},
	{"internal/seg", "Grid", map[string][]string{"": {"grid"}}},
	{"internal/seg", "Segment", map[string][]string{"": {"grid"}}},
	{"internal/mgl", "occupancy", map[string][]string{"": {"occupancy"}}},
	{"internal/route", "Rules", map[string][]string{"": {"routememo"}}},
	{"internal/route", "Checker", map[string][]string{"": {"routememo"}}},
	{"internal/stage", "PipelineContext", map[string][]string{"": {"stagectx"}}},
}

// knownExternals classifies the stdlib callees the deterministic core
// uses. Sorters mutate (element-level) exactly their first argument;
// the safe set is read-only with respect to anything passed in and
// retains nothing.
var externalSorters = map[string]bool{
	"sort.Slice":            true,
	"sort.SliceStable":      true,
	"sort.Sort":             true,
	"sort.Stable":           true,
	"sort.Ints":             true,
	"sort.Strings":          true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.SortStableFunc": true,
	"slices.Reverse":        true,
}

var externalSafePkgs = map[string]bool{
	"sort": true, "slices": true, "cmp": true, "math": true, "math/bits": true,
	"strconv": true, "strings": true, "errors": true, "fmt": true,
	"unicode/utf8": true, "bytes": true, "bufio": true, "io": true,
	"encoding/json": true, "encoding/binary": true, "os": true,
	"sync": true, "sync/atomic": true, "context": true, "time": true,
	"log": true, "net/http": true, "net": true, "flag": true,
	"os/signal": true, "runtime": true, "path/filepath": true, "hash/fnv": true,
}

// Vocab is the resolved vocabulary for one loaded program.
type Vocab struct {
	prog *framework.Program

	fieldLocs map[*types.Var][]string      // tracked field/var -> location names
	typeSpec  map[*types.TypeName]*locSpec // tracked named type -> its spec
	typeDecl  map[*types.TypeName]*ast.GenDecl
	fieldDoc  map[*types.Var]*ast.Field

	reachMemo   map[types.Type]int8
	containMemo map[types.Type]int8
}

const (
	memoBusy = iota + 1
	memoTrue
	memoFalse
)

// For returns the program's vocabulary, building it on first use (it
// is shared by all three write-effect analyzers via the program
// cache).
func For(prog *framework.Program) (*Vocab, error) {
	v, err := prog.CacheLoad("writeloc.vocab", func() (any, error) {
		return build(prog), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Vocab), nil
}

func build(prog *framework.Program) *Vocab {
	v := &Vocab{
		prog:        prog,
		fieldLocs:   make(map[*types.Var][]string),
		typeSpec:    make(map[*types.TypeName]*locSpec),
		typeDecl:    make(map[*types.TypeName]*ast.GenDecl),
		fieldDoc:    make(map[*types.Var]*ast.Field),
		reachMemo:   make(map[types.Type]int8),
		containMemo: make(map[types.Type]int8),
	}
	for _, pkg := range prog.Pkgs {
		for si := range specs {
			spec := &specs[si]
			if !framework.PathMatchesAny(pkg.Path, []string{spec.pkg}) {
				continue
			}
			tn, _ := pkg.Types.Scope().Lookup(spec.typ).(*types.TypeName)
			if tn == nil {
				continue
			}
			st, _ := tn.Type().Underlying().(*types.Struct)
			if st == nil {
				continue
			}
			v.typeSpec[tn] = spec
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				locs, ok := spec.fields[f.Name()]
				if !ok {
					locs = spec.fields[""]
				}
				if len(locs) > 0 {
					v.fieldLocs[f] = locs
				}
			}
			v.indexDecls(pkg, tn, st)
		}
	}
	return v
}

// indexDecls records the AST declaration of a tracked type and its
// fields, so the ephemeral registry can read their doc directives.
func (v *Vocab) indexDecls(pkg *framework.Package, tn *types.TypeName, st *types.Struct) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, sp := range gd.Specs {
				ts, ok := sp.(*ast.TypeSpec)
				if !ok || pkg.Info.Defs[ts.Name] != tn {
					continue
				}
				v.typeDecl[tn] = gd
				stl, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range stl.Fields.List {
					for _, name := range fld.Names {
						if fv, ok := pkg.Info.Defs[name].(*types.Var); ok {
							v.fieldDoc[fv] = fld
						}
					}
				}
			}
		}
	}
}

// Tracked reports whether obj is a resident-state location.
func (v *Vocab) Tracked(obj *types.Var) bool {
	_, ok := v.fieldLocs[obj]
	return ok
}

// LocsOf returns the location names of a tracked object (nil for
// untracked).
func (v *Vocab) LocsOf(obj *types.Var) []string { return v.fieldLocs[obj] }

// LocNames returns every location name the vocabulary defines, sorted.
func (v *Vocab) LocNames() []string {
	seen := make(map[string]bool)
	var out []string
	for _, spec := range specs {
		for _, locs := range spec.fields {
			for _, l := range locs {
				if !seen[l] {
					seen[l] = true
					out = append(out, l)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// EffectLocs maps a transitive effect list onto its sorted,
// deduplicated location names.
func (v *Vocab) EffectLocs(effs []framework.WriteEffect) []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range effs {
		for _, l := range v.fieldLocs[e.Obj] {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Witness returns the first effect whose object maps to loc (the
// concrete store the diagnostics point at).
func Witness(v *Vocab, effs []framework.WriteEffect, loc string) (framework.WriteEffect, bool) {
	for _, e := range effs {
		for _, l := range v.fieldLocs[e.Obj] {
			if l == loc {
				return e, true
			}
		}
	}
	return framework.WriteEffect{}, false
}

// ValueWrites returns the tracked fields written when a whole value of
// t is stored (a Cell element assignment writes both coordinates and
// metadata). Pointer types answer nil: storing a *Design into a map
// writes the map slot, not the design behind the pointer.
func (v *Vocab) ValueWrites(t types.Type) []*types.Var {
	if t == nil {
		return nil
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return nil
	}
	named := namedOf(t)
	if named == nil {
		return nil
	}
	tn := named.Obj()
	if _, ok := v.typeSpec[tn]; !ok {
		return nil
	}
	st, _ := named.Underlying().(*types.Struct)
	if st == nil {
		return nil
	}
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); v.Tracked(f) {
			out = append(out, f)
		}
	}
	return out
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// Reaches reports whether a VALUE of t can be used to mutate tracked
// storage: only through reference types (a copied Cell cannot, a
// []Cell or *Design can). Interface and function types answer false —
// the vocabulary's types are module-internal, so an external callee
// cannot name them behind an interface; function values are screened
// separately by the engine.
func (v *Vocab) Reaches(t types.Type) bool {
	if t == nil {
		return false
	}
	switch m := v.reachMemo[t]; m {
	case memoBusy, memoFalse:
		return false
	case memoTrue:
		return true
	}
	v.reachMemo[t] = memoBusy
	res := false
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		res = v.contains(u.Elem())
	case *types.Slice:
		res = v.contains(u.Elem())
	case *types.Map:
		res = v.contains(u.Key()) || v.contains(u.Elem())
	case *types.Chan:
		res = v.contains(u.Elem())
	case *types.Array:
		res = v.Reaches(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if v.Reaches(u.Field(i).Type()) {
				res = true
				break
			}
		}
	}
	if res {
		v.reachMemo[t] = memoTrue
	} else {
		v.reachMemo[t] = memoFalse
	}
	return res
}

// contains reports whether storage of type t is (or transitively
// holds) a tracked type.
func (v *Vocab) contains(t types.Type) bool {
	if t == nil {
		return false
	}
	switch m := v.containMemo[t]; m {
	case memoBusy, memoFalse:
		return false
	case memoTrue:
		return true
	}
	v.containMemo[t] = memoBusy
	res := false
	if n := namedOf(t); n != nil {
		if _, ok := v.typeSpec[n.Obj()]; ok {
			res = true
		}
	}
	if !res {
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			res = v.contains(u.Elem())
		case *types.Slice:
			res = v.contains(u.Elem())
		case *types.Array:
			res = v.contains(u.Elem())
		case *types.Map:
			res = v.contains(u.Key()) || v.contains(u.Elem())
		case *types.Chan:
			res = v.contains(u.Elem())
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if v.contains(u.Field(i).Type()) {
					res = true
					break
				}
			}
		}
	}
	if res {
		v.containMemo[t] = memoTrue
	} else {
		v.containMemo[t] = memoFalse
	}
	return res
}

// External classifies stdlib callees: sorters mutate their first
// argument element-wise, the safe packages mutate and retain nothing
// that is passed to them. Everything else is screened conservatively.
func (v *Vocab) External(fn *types.Func) (mutatesArgs []int, known bool) {
	if fn.Pkg() == nil {
		return nil, true // universe scope (error.Error)
	}
	if externalSorters[fn.FullName()] {
		return []int{0}, true
	}
	if externalSafePkgs[fn.Pkg().Path()] {
		return nil, true
	}
	return nil, false
}

// Framework adapts the vocabulary to the engine's injection points.
func (v *Vocab) Framework() *framework.WriteVocabulary {
	return &framework.WriteVocabulary{
		Tracked:     v.Tracked,
		Reaches:     v.Reaches,
		ValueWrites: v.ValueWrites,
		External:    v.External,
	}
}

// Effects computes (once per program) the transitive write summaries
// of every function under this vocabulary; the three write-effect
// analyzers share the result through the program cache.
func Effects(prog *framework.Program) (map[*framework.Node]*framework.WriteEffects, *Vocab, error) {
	v, err := For(prog)
	if err != nil {
		return nil, nil, err
	}
	res, err := prog.CacheLoad("writeloc.effects", func() (any, error) {
		cg, err := prog.CallGraph()
		if err != nil {
			return nil, err
		}
		return cg.WriteEffects(v.Framework()), nil
	})
	if err != nil {
		return nil, nil, err
	}
	return res.(map[*framework.Node]*framework.WriteEffects), v, nil
}

// An Ephemeral is one //mclegal:ephemeral declaration on a tracked
// type or field: per-run scratch whose mutations provably do not
// outlive the stage that makes them, so snapshotsafe excuses its
// locations from the rollback proof.
type Ephemeral struct {
	Locs   []string
	Pos    token.Pos
	Reason string
	What   string // "type mgl.occupancy" / "field route.Rules.rowMemo"
}

// Ephemerals scans the tracked types' declarations (and their fields)
// for //mclegal:ephemeral doc directives. Bare directives (no
// justification) are returned with Reason == "" for the analyzer to
// report.
func (v *Vocab) Ephemerals() []Ephemeral {
	var out []Ephemeral
	for tn, spec := range v.typeSpec {
		if gd := v.typeDecl[tn]; gd != nil {
			if reason, ok := framework.DocDirective(gd.Doc, "ephemeral"); ok {
				out = append(out, Ephemeral{
					Locs:   locsOfSpec(spec),
					Pos:    gd.Pos(),
					Reason: reason,
					What:   "type " + tn.Pkg().Name() + "." + tn.Name(),
				})
			}
		}
	}
	for fv, fld := range v.fieldDoc {
		if reason, ok := framework.DocDirective(fld.Doc, "ephemeral"); ok {
			out = append(out, Ephemeral{
				Locs:   v.fieldLocs[fv],
				Pos:    fld.Pos(),
				Reason: reason,
				What:   "field " + fv.Pkg().Name() + "." + fv.Name(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

func locsOfSpec(spec *locSpec) []string {
	seen := make(map[string]bool)
	var out []string
	for _, locs := range spec.fields {
		for _, l := range locs {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	sort.Strings(out)
	return out
}
