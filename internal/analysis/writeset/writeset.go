// Package writeset makes the deterministic core's mutation surface a
// declared, machine-checked contract: every exported entrypoint of the
// scope.DeterministicCore packages must have a provable write set over
// the resident-state vocabulary of internal/analysis/writeloc
// (design.xy, design.meta, hotcells, grid, occupancy, routememo,
// stagectx), and must declare it in its doc comment:
//
//	//mclegal:writes design.xy,hotcells why the function moves cells
//
// The analyzer computes each entrypoint's transitive write set with the
// framework's write-effect engine (pointer receivers, parameter
// aliasing, reslices and method values are tracked; dynamic and
// unknown external calls fail closed) and reports three ways the
// contract can rot:
//
//   - a mutating entrypoint with no //mclegal:writes declaration;
//   - a stale declaration whose locations no longer match the provable
//     write set (including declarations left behind on functions that
//     no longer mutate anything);
//   - an unprovable write set: a dynamic or unknown external call
//     inside the entrypoint's tree, reported at the call site, where a
//     //mclegal:writeset <why> line directive can justify it once a
//     human has checked the callee cannot touch resident state.
//
// Entrypoints that provably write nothing need no declaration. The
// snapshotsafe analyzer consumes the same summaries; it relies on this
// analyzer's screen for provability and does not re-report unknown
// call sites.
package writeset

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
	"mclegal/internal/analysis/writeloc"
)

// Analyzer enforces declared, provable write sets on the deterministic
// core's exported entrypoints.
var Analyzer = &framework.Analyzer{
	Name:      "writeset",
	Doc:       "require exported deterministic-core entrypoints to declare their provable resident-state write set (//mclegal:writes <locs> <why>)",
	Scope:     scope.DeterministicCore,
	Directive: "writeset",
	Example:   "//mclegal:writeset the debug hook is wired only by tests and receives value copies",
	Run:       run,
}

type finding struct {
	pkg  *types.Package
	pos  token.Pos
	msg  string
	supp bool // eligible for //mclegal:writeset suppression
}

type wsState struct {
	findings []finding
}

func state(prog *framework.Program) (*wsState, error) {
	v, err := prog.CacheLoad("writeset", func() (any, error) { return computeState(prog) })
	if err != nil {
		return nil, err
	}
	return v.(*wsState), nil
}

func computeState(prog *framework.Program) (*wsState, error) {
	effects, vocab, err := writeloc.Effects(prog)
	if err != nil {
		return nil, err
	}
	cg, err := prog.CallGraph()
	if err != nil {
		return nil, err
	}
	st := &wsState{}
	fset := prog.Fset()
	// Unknown call sites are shared by every entrypoint whose tree
	// reaches them; report each site once.
	unknownSeen := make(map[token.Pos]bool)
	for _, n := range cg.Nodes() {
		if n.External() || n.Pkg == nil || n.Decl == nil {
			continue
		}
		if !framework.PathMatchesAny(n.Pkg.Path, scope.DeterministicCore) {
			continue
		}
		if !isEntrypoint(n.Func) {
			continue
		}
		we := effects[n]
		if we == nil {
			continue
		}
		for _, u := range we.Unknown {
			if unknownSeen[u.Pos] {
				continue
			}
			unknownSeen[u.Pos] = true
			pkg := n.Pkg.Types
			if u.Owner != nil && u.Owner.Pkg() != nil {
				pkg = u.Owner.Pkg()
			}
			st.findings = append(st.findings, finding{
				pkg: pkg, pos: u.Pos, supp: true,
				msg: fmt.Sprintf("write set of exported entrypoint %s is unprovable: %s; make the call static or justify with //mclegal:writeset <why>",
					n.Func.Name(), u.What),
			})
		}
		st.checkDecl(vocab, fset, n, we)
	}
	sort.Slice(st.findings, func(i, j int) bool { return st.findings[i].pos < st.findings[j].pos })
	return st, nil
}

// isEntrypoint reports whether fn is part of the package's exported
// mutation surface: an exported function, or an exported method on an
// exported named type.
func isEntrypoint(fn *types.Func) bool {
	if !fn.Exported() {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return true
	}
	recv := sig.Recv()
	if recv == nil {
		return true
	}
	t := recv.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Exported()
	}
	return false
}

// checkDecl compares the //mclegal:writes declaration of one
// entrypoint against its computed write set.
func (st *wsState) checkDecl(vocab *writeloc.Vocab, fset *token.FileSet, n *framework.Node, we *framework.WriteEffects) {
	actual := vocab.EffectLocs(we.Effects)
	reason, declared := framework.DocDirective(n.Decl.Doc, "writes")
	pos := n.Decl.Pos()
	pkg := n.Pkg.Types

	if !declared {
		if len(actual) == 0 {
			return // provably write-free, nothing to declare
		}
		w, _ := writeloc.Witness(vocab, we.Effects, actual[0])
		st.findings = append(st.findings, finding{
			pkg: pkg, pos: pos, supp: true,
			msg: fmt.Sprintf("exported entrypoint %s mutates %s (e.g. %s at %s) but carries no //mclegal:writes declaration; add `//mclegal:writes %s <why>` to its doc comment",
				n.Func.Name(), strings.Join(actual, ","), witnessName(w), fset.Position(w.Pos), strings.Join(actual, ",")),
		})
		return
	}

	fields := strings.Fields(reason)
	if len(fields) == 0 {
		st.findings = append(st.findings, finding{
			pkg: pkg, pos: pos,
			msg: fmt.Sprintf("//mclegal:writes on %s names no locations; declare `//mclegal:writes %s <why>`", n.Func.Name(), strings.Join(actual, ",")),
		})
		return
	}
	declaredLocs := splitLocs(fields[0])
	if len(fields) == 1 {
		st.findings = append(st.findings, finding{
			pkg: pkg, pos: pos,
			msg: fmt.Sprintf("//mclegal:writes on %s is missing a justification", n.Func.Name()),
		})
	}
	known := make(map[string]bool)
	for _, l := range vocab.LocNames() {
		known[l] = true
	}
	for _, l := range declaredLocs {
		if !known[l] {
			st.findings = append(st.findings, finding{
				pkg: pkg, pos: pos,
				msg: fmt.Sprintf("//mclegal:writes on %s names unknown location %q (known: %s)", n.Func.Name(), l, strings.Join(vocab.LocNames(), ", ")),
			})
			return
		}
	}
	if !equalStrings(declaredLocs, actual) {
		have := strings.Join(declaredLocs, ",")
		want := strings.Join(actual, ",")
		if want == "" {
			want = "nothing — delete the declaration"
		}
		st.findings = append(st.findings, finding{
			pkg: pkg, pos: pos,
			msg: fmt.Sprintf("stale //mclegal:writes on %s: declares %s but the provable write set is %s", n.Func.Name(), have, want),
		})
	}
}

func witnessName(w framework.WriteEffect) string {
	if w.Obj == nil {
		return "?"
	}
	if w.Obj.Pkg() != nil {
		return w.Obj.Pkg().Name() + "." + w.Obj.Name()
	}
	return w.Obj.Name()
}

func splitLocs(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func run(pass *framework.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	st, err := state(pass.Prog)
	if err != nil {
		return err
	}
	for _, f := range st.findings {
		if f.pkg != pass.Pkg {
			continue
		}
		if f.supp && pass.Suppressed("writeset", f.pos) {
			continue
		}
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}
