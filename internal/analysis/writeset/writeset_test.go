package writeset_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/writeset"
)

// The fixture model package must be in the same program so the
// writeloc vocabulary resolves its tracked types; the notscoped
// package proves the analyzer respects scope.DeterministicCore.
func TestWriteset(t *testing.T) {
	analysistest.RunGroup(t, "../testdata", writeset.Analyzer,
		"writeset/internal/model", "writeset/internal/mgl", "writeset/notscoped")
}
