// Package goleak statically proves that every goroutine spawned in the
// concurrency scope (scope.ConcurrencyScope) is joined on all paths —
// the static twin of the dynamic leak tests
// (mgl.TestPoolShutdownNoGoroutineLeak, the shard-runner leak tests,
// the serve drain tests), whose witness pairing is pinned by
// TestGoleakRootsMatchLeakTests.
//
// For each `go` statement the analyzer takes the spawned body's
// concurrency summary (framework.ConcSummary — a literal's own
// sub-summary, or the callee's summary for `go f()`) and demands two
// proofs:
//
//   - Termination: every channel the body receives from has an
//     in-program sender or closer, and every channel it sends on has an
//     in-program receiver outside the body — otherwise the goroutine
//     can block forever. Channels the summary cannot resolve to a
//     variable fail closed.
//   - Join: the body ends in a handoff some other goroutine waits on —
//     a WaitGroup.Done (deferred, so it covers every exit path, or as
//     the literal last statement) paired with an in-program Add and
//     Wait on the same WaitGroup, or a tail send on a result-slot
//     channel that is received outside the body. This is exactly the
//     PR-3 pool shutdown shape (close(work) + workers.Wait()) and the
//     shard runner's wg.Add/Done/Wait pairing.
//
// Spawns of dynamic function values and of externals without bodies
// fail closed: their lifetime cannot be proven. A goroutine that is
// intentionally never joined — the mclegald signal listener that lives
// until process exit — takes //mclegal:daemon <why> on the line above
// the go statement; the justification is mandatory.
package goleak

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// Analyzer is the goroutine-lifetime check.
var Analyzer = &framework.Analyzer{
	Name:      "goleak",
	Doc:       "prove every spawned goroutine terminates and is joined (suppress daemons with //mclegal:daemon)",
	Run:       run,
	Scope:     scope.ConcurrencyScope,
	Directive: "daemon",
	Example:   "//mclegal:daemon process-lifetime signal listener; the kernel reaps it at exit",
}

// A SpawnInfo describes one in-scope spawn site of the program; the
// root-sync test uses the inventory to pin the static proof to the
// dynamic leak tests.
type SpawnInfo struct {
	// Fn is the function whose body contains the go statement.
	Fn *types.Func
	// Pos is the go statement's position.
	Pos token.Pos
	// Daemon reports a //mclegal:daemon directive on the site.
	Daemon bool
}

type spawn struct {
	site   *framework.SpawnSite
	owner  *framework.Node
	daemon bool
	// problems is empty when both the termination and join proofs
	// succeeded.
	problems []string
}

// opIndex collects the program-wide channel and WaitGroup operations
// the proofs consult: a worker body's `range p.work` is serviced by
// run()'s sends and stop()'s close, which live in other functions.
type opIndex struct {
	sends, recvs, closes map[*types.Var][]token.Pos
	adds, waits          map[*types.Var][]token.Pos
}

type leakState struct {
	spawns []*spawn
}

// Spawns returns the in-scope spawn inventory in source order.
func Spawns(prog *framework.Program) ([]SpawnInfo, error) {
	st, err := state(prog)
	if err != nil {
		return nil, err
	}
	out := make([]SpawnInfo, len(st.spawns))
	for i, sp := range st.spawns {
		out[i] = SpawnInfo{Fn: sp.owner.Func, Pos: sp.site.Pos, Daemon: sp.daemon}
	}
	return out, nil
}

func state(prog *framework.Program) (*leakState, error) {
	v, err := prog.CacheLoad("goleak", func() (any, error) { return computeState(prog) })
	if err != nil {
		return nil, err
	}
	return v.(*leakState), nil
}

func computeState(prog *framework.Program) (*leakState, error) {
	cg, err := prog.CallGraph()
	if err != nil {
		return nil, err
	}
	idx := &opIndex{
		sends:  make(map[*types.Var][]token.Pos),
		recvs:  make(map[*types.Var][]token.Pos),
		closes: make(map[*types.Var][]token.Pos),
		adds:   make(map[*types.Var][]token.Pos),
		waits:  make(map[*types.Var][]token.Pos),
	}
	record := func(m map[*types.Var][]token.Pos, v *types.Var, pos token.Pos) {
		if v != nil {
			m[v] = append(m[v], pos)
		}
	}
	for _, n := range cg.Nodes() {
		if n.External() {
			continue
		}
		c := n.Conc()
		for _, op := range c.Sends {
			record(idx.sends, op.Ch, op.Pos)
		}
		for _, op := range c.Recvs {
			record(idx.recvs, op.Ch, op.Pos)
		}
		for _, op := range c.Closes {
			record(idx.closes, op.Ch, op.Pos)
		}
		for _, op := range c.WGAdds {
			record(idx.adds, op.Obj, op.Pos)
		}
		for _, op := range c.WGWaits {
			record(idx.waits, op.Obj, op.Pos)
		}
	}

	st := &leakState{}
	for _, n := range cg.Nodes() {
		if n.External() || n.Pkg == nil || !framework.PathMatchesAny(n.Pkg.Path, scope.ConcurrencyScope) {
			continue
		}
		for _, site := range n.Conc().AllSpawns() {
			sp := &spawn{site: site, owner: n}
			_, sp.daemon = prog.DirectiveAt("daemon", site.Pos)
			if !sp.daemon {
				sp.problems = judge(cg, idx, n.Pkg.Info, site)
			}
			st.spawns = append(st.spawns, sp)
		}
	}
	fset := prog.Fset()
	sort.SliceStable(st.spawns, func(i, j int) bool {
		pi, pj := fset.Position(st.spawns[i].site.Pos), fset.Position(st.spawns[j].site.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return st, nil
}

// judge produces the list of reasons the spawn is unproven (empty when
// both proofs succeed).
func judge(cg *framework.CallGraph, idx *opIndex, info *types.Info, site *framework.SpawnSite) []string {
	var problems []string
	body := site.Body
	var bindings map[*types.Var]*types.Var
	var bodyStart, bodyEnd token.Pos
	switch {
	case body != nil:
		bodyStart, bodyEnd = site.BodyLit.Pos(), site.BodyLit.End()
	case site.Callee != nil:
		callee := cg.Node(site.Callee)
		if callee == nil || callee.External() {
			return []string{fmt.Sprintf("spawn target %s has no analyzable body", site.Callee.FullName())}
		}
		body = callee.Conc()
		bodyStart, bodyEnd = callee.Decl.Pos(), callee.Decl.End()
		// The callee's facts are keyed on its parameters; translate
		// them to the variables the spawner bound at the go statement
		// so `go worker(&wg, ch)` proves against the spawner's wg/ch.
		bindings = framework.SpawnBindings(info, site)
	default:
		return []string{"spawn target is a dynamic function value; its lifetime cannot be proven"}
	}

	// translate maps a body-frame variable into the spawner's frame;
	// an unresolvable binding comes back nil and fails closed below.
	translate := func(v *types.Var) *types.Var {
		if bound, ok := bindings[v]; ok {
			return bound
		}
		return v
	}

	inBody := func(pos token.Pos) bool { return pos >= bodyStart && pos <= bodyEnd }
	outside := func(positions []token.Pos) bool {
		for _, p := range positions {
			if !inBody(p) {
				return true
			}
		}
		return false
	}

	// Termination: the body's own channel waits must be serviceable.
	for _, op := range body.Recvs {
		ch := op.Ch
		if ch != nil {
			ch = translate(ch)
		}
		if ch == nil {
			problems = append(problems, "receives on a channel the analysis cannot resolve")
			break
		}
		if len(idx.sends[ch]) == 0 && len(idx.closes[ch]) == 0 {
			problems = append(problems,
				fmt.Sprintf("receives on %s, which nothing in the program sends to or closes", ch.Name()))
		}
	}
	for _, op := range body.Sends {
		ch := op.Ch
		if ch != nil {
			ch = translate(ch)
		}
		if ch == nil {
			problems = append(problems, "sends on a channel the analysis cannot resolve")
			break
		}
		if !outside(idx.recvs[ch]) {
			problems = append(problems,
				fmt.Sprintf("sends on %s, which is never received outside the goroutine", ch.Name()))
		}
	}

	// Join: a Done the spawner (or anyone) waits on, or a tail result
	// send someone receives.
	joined := false
	if wg := body.TailDone; wg != nil {
		wg = translate(wg)
		if wg != nil && len(idx.adds[wg]) > 0 && len(idx.waits[wg]) > 0 {
			joined = true
		}
	}
	if ch := body.TailSend; !joined && ch != nil {
		if ch = translate(ch); ch != nil && outside(idx.recvs[ch]) {
			joined = true
		}
	}
	if !joined {
		problems = append(problems,
			"no join handoff: body neither defers/tails a WaitGroup.Done with a matching Add+Wait nor tail-sends on a channel received elsewhere")
	}
	return dedup(problems)
}

func dedup(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func run(pass *framework.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	st, err := state(pass.Prog)
	if err != nil {
		return err
	}
	for _, sp := range st.spawns {
		if sp.owner.Pkg == nil || sp.owner.Pkg.Types != pass.Pkg {
			continue
		}
		if len(sp.problems) == 0 && !sp.daemon {
			continue
		}
		// Suppressed also reports a bare //mclegal:daemon directive as
		// missing its justification, covering the daemon inventory.
		if pass.Suppressed("daemon", sp.site.Pos) {
			continue
		}
		pass.Reportf(sp.site.Pos,
			"goroutine is not provably joined: %s; restructure to a joined shape or justify with //mclegal:daemon <why>",
			strings.Join(sp.problems, "; "))
	}
	return nil
}
