package goleak_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/goleak"
)

// The two fixture packages form one program: the scoped package
// carries every diagnose/allowed/suppression shape, the unscoped one
// proves the analyzer respects scope.ConcurrencyScope.
func TestGoleak(t *testing.T) {
	analysistest.RunGroup(t, "../testdata", goleak.Analyzer,
		"goleak/internal/mgl", "goleak/notscoped")
}
