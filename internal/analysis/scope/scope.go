// Package scope centralizes which packages each mclegal-vet invariant
// applies to, so the analyzers and the documentation cannot drift
// apart. Paths are matched by suffix (framework.PathMatchesAny), which
// makes the same analyzers scope correctly over both the real module
// ("mclegal/internal/mgl") and analysistest fixtures
// ("maporder/internal/mgl").
package scope

// DeterministicCore lists the packages whose output must be
// byte-identical across runs and worker counts: the three pipeline
// stages, their composition layers, and the matching solver. See
// docs/PERFORMANCE.md (determinism) and docs/STATIC_ANALYSIS.md.
var DeterministicCore = []string{
	"internal/mgl",
	"internal/refine",
	"internal/maxdisp",
	"internal/matching",
	"internal/flow",
	"internal/stage",
	"internal/shard",
	// The serving layer answers identical requests with byte-identical
	// placements, so it is held to the same no-wallclock/no-map-order
	// rules as the pipeline it wraps.
	"internal/serve",
}

// FloatCritical lists the packages where float64 equality comparisons
// are banned outside the approved Approx* epsilon helpers: the
// geometry vocabulary and the metric/curve arithmetic whose values
// feed benchmark comparisons.
var FloatCritical = []string{
	"internal/geom",
	"internal/curve",
	"internal/eval",
}

// GateBoundary lists the packages whose errors cross the pipeline's
// gate boundary and therefore must be the typed kinds of
// docs/ROBUSTNESS.md rather than bare fmt.Errorf values.
var GateBoundary = []string{
	"internal/stage",
	// The server's wire errors are the same taxonomy one layer out:
	// every failure a client sees must be a typed Error, never a bare
	// errors.New/fmt.Errorf value.
	"internal/serve",
}

// CancellationAware lists the packages where a context.Context, once
// received, must be threaded into every callee that can accept one
// (the ctxflow analyzer): the deterministic core plus the min-cost
// flow solver the refinement stage can spend most of its time in.
var CancellationAware = []string{
	"internal/mgl",
	"internal/refine",
	"internal/maxdisp",
	"internal/matching",
	"internal/flow",
	"internal/stage",
	"internal/shard",
	"internal/mcf",
	// Request handlers thread the per-request context (deadline budget,
	// client cancellation, drain) into every run they start.
	"internal/serve",
}

// ConcurrencyScope lists the packages where goroutines, locks, and
// shared state live — the MGL worker pool, the shard runner, the
// serving layer's admission/drain machinery, the fault injector's
// shared counters, and the daemon wiring them together. The three
// concurrency analyzers (goleak, lockguard, sharedwrite) apply here;
// the determinism guarantee is only as strong as this layer's
// leak-freedom and race-freedom.
var ConcurrencyScope = []string{
	"internal/mgl",
	"internal/stage",
	"internal/shard",
	"internal/serve",
	"internal/faults",
	"cmd/mclegald",
}

// WriteEffectClosure lists the packages the write-effect proofs
// (writeset, snapshotsafe, aliasleak) need full bodies for beyond the
// other lists' union. The serving layer hands resident designs to the
// .mcl serializer, so aliasleak can only prove the clone boundary if
// bmark's bodies are in the program; eval's audit/measure functions
// sit inside every gated stage tree the same way.
var WriteEffectClosure = []string{
	"internal/bmark",
	"internal/eval",
	"internal/model",
	"internal/seg",
	"internal/route",
	"internal/faults",
	// The flow package's greedy fallback stage calls straight into the
	// baseline package; its body must be loaded for that stage's write
	// set to stay provable.
	"internal/baseline",
}

// HotPathClosure lists every package the //mclegal:hotpath call trees
// reach (mgl.bestInWindow, the mcf warm-start resolve path, and the
// matching augment phase): the noalloc proof needs full bodies for all
// of them, so program loads (suite tests, mclegal-vet) must include
// the whole list.
var HotPathClosure = []string{
	"internal/mgl",
	"internal/curve",
	"internal/geom",
	"internal/seg",
	"internal/model",
	"internal/route",
	"internal/mcf",
	"internal/matching",
}
