// Package analysis bundles the mclegal-vet analyzer suite: mechanical
// enforcement of the pipeline's determinism, aliasing, and numeric
// invariants (docs/STATIC_ANALYSIS.md).
package analysis

import (
	"mclegal/internal/analysis/aliasleak"
	"mclegal/internal/analysis/ctxflow"
	"mclegal/internal/analysis/exhaustive"
	"mclegal/internal/analysis/floatcmp"
	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/goleak"
	"mclegal/internal/analysis/lockguard"
	"mclegal/internal/analysis/maporder"
	"mclegal/internal/analysis/noalloc"
	"mclegal/internal/analysis/nowallclock"
	"mclegal/internal/analysis/scratchescape"
	"mclegal/internal/analysis/sharedwrite"
	"mclegal/internal/analysis/snapshotsafe"
	"mclegal/internal/analysis/typederr"
	"mclegal/internal/analysis/writeset"
)

// All returns the full analyzer suite in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		aliasleak.Analyzer,
		ctxflow.Analyzer,
		exhaustive.Analyzer,
		floatcmp.Analyzer,
		goleak.Analyzer,
		lockguard.Analyzer,
		maporder.Analyzer,
		noalloc.Analyzer,
		nowallclock.Analyzer,
		scratchescape.Analyzer,
		sharedwrite.Analyzer,
		snapshotsafe.Analyzer,
		typederr.Analyzer,
		writeset.Analyzer,
	}
}
