// Package analysis bundles the mclegal-vet analyzer suite: mechanical
// enforcement of the pipeline's determinism, aliasing, and numeric
// invariants (docs/STATIC_ANALYSIS.md).
package analysis

import (
	"mclegal/internal/analysis/floatcmp"
	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/maporder"
	"mclegal/internal/analysis/nowallclock"
	"mclegal/internal/analysis/scratchescape"
	"mclegal/internal/analysis/typederr"
)

// All returns the full analyzer suite in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		floatcmp.Analyzer,
		maporder.Analyzer,
		nowallclock.Analyzer,
		scratchescape.Analyzer,
		typederr.Analyzer,
	}
}
