package analysis_test

import (
	"os"
	"strings"
	"testing"

	"mclegal/internal/analysis/snapshotsafe"
)

// TestStageWriteSetsMatchRollbackProof pins the static and dynamic
// halves of the rollback-completeness proof to each other, in both
// directions (the same shape as TestGoleakRootsMatchLeakTests):
//
//   - every stage implementation the snapshotsafe analyzer proves
//     against the gate's //mclegal:restores declaration must have a
//     subtest in stage.TestGateRollbackRestoresDesignAndArtifacts that
//     demonstrates the restore at runtime, and
//   - every anchor listed here must correspond to a proof, so a stage
//     deleted or renamed out of the pipeline fails this test instead of
//     leaving a stale rollback subtest behind.
//
// A new Stage implementation therefore cannot ship without both a
// provable write set (or it fails snapshotsafe) and a dynamic rollback
// demonstration (or it fails here).
func TestStageWriteSetsMatchRollbackProof(t *testing.T) {
	prog := loadScopedProgram(t)
	proofs, err := snapshotsafe.StageProofs(prog)
	if err != nil {
		t.Fatalf("collecting stage proofs: %v", err)
	}
	if len(proofs) == 0 {
		t.Fatal("no stage proofs collected; the snapshotsafe analyzer is proving nothing")
	}

	// Stage type (as StageProof.Type names it) -> subtest of
	// stage.TestGateRollbackRestoresDesignAndArtifacts witnessing the
	// restore dynamically. mutates lists locations the stage must
	// provably write (the dynamic test is only meaningful if the static
	// proof shows the stage writes something the gate restores).
	anchors := map[string]struct {
		subtest string
		mutates []string
	}{
		"stage.MGLStage":     {subtest: "MGLStage", mutates: []string{"design.xy", "stagectx"}},
		"stage.MaxDispStage": {subtest: "MaxDispStage", mutates: []string{"design.xy", "stagectx"}},
		"stage.RefineStage":  {subtest: "RefineStage", mutates: []string{"design.xy", "stagectx"}},
		// FuncStage's body is the composer's; its provable write set is
		// empty (the dynamic subtest exercises a concrete Fn instead).
		"stage.FuncStage": {subtest: "FuncStage"},
	}

	src, err := os.ReadFile("../stage/rollback_test.go")
	if err != nil {
		t.Fatalf("reading the dynamic rollback test: %v", err)
	}
	text := string(src)
	if !strings.Contains(text, "func TestGateRollbackRestoresDesignAndArtifacts(") {
		t.Fatal("stage.TestGateRollbackRestoresDesignAndArtifacts not found; the pin has nothing to pin to")
	}

	seen := make(map[string]bool)
	for _, p := range proofs {
		if seen[p.Type] {
			t.Errorf("duplicate proof for %s", p.Type)
		}
		seen[p.Type] = true

		a, ok := anchors[p.Type]
		if !ok {
			t.Errorf("stage %s is proven by snapshotsafe but has no dynamic rollback subtest; add one to stage.TestGateRollbackRestoresDesignAndArtifacts and anchor it here", p.Type)
			continue
		}
		if p.Gate != "stage.runGated" {
			t.Errorf("%s is gated by %s, want stage.runGated", p.Type, p.Gate)
		}
		if len(p.Uncovered) != 0 {
			t.Errorf("%s has uncovered writes %v; the suite test should have failed first", p.Type, p.Uncovered)
		}
		for _, loc := range a.mutates {
			if !containsLoc(p.Writes, loc) {
				t.Errorf("%s: static write set %v does not include %s; the dynamic subtest %q would be rolling back nothing", p.Type, p.Writes, loc, a.subtest)
			}
		}
		if !strings.Contains(text, `"`+a.subtest+`"`) {
			t.Errorf("%s: subtest %q not found in rollback_test.go", p.Type, a.subtest)
		}
	}
	for typ, a := range anchors {
		if !seen[typ] {
			t.Errorf("anchor %s (subtest %q) has no snapshotsafe proof; if the stage is gone, delete its subtest and this anchor", typ, a.subtest)
		}
	}
}

func containsLoc(locs []string, want string) bool {
	for _, l := range locs {
		if l == want {
			return true
		}
	}
	return false
}
