package ctxflow_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "../testdata", ctxflow.Analyzer,
		"ctxflow/internal/mcf", "ctxflow/internal/other")
}
