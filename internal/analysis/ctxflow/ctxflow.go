// Package ctxflow enforces cancellation plumbing in the packages of
// scope.CancellationAware: once a function receives a context.Context,
// the context must flow into everything it calls that can honour it.
// A dropped context is how a cancelled run keeps a min-cost-flow pivot
// loop or an assignment solve running to completion long after the
// caller gave up (the bug class fixed in refine -> mcf.SolveContext and
// maxdisp -> matching.MinCostPerfectContext).
//
// In a function that receives a context.Context, the analyzer reports:
//
//   - calls to context.Background() or context.TODO() — the received
//     context is the one to use;
//   - calls to a function or method F when a sibling FContext or
//     FWithContext exists (same package scope for functions, same
//     method set for methods) that accepts a context — the
//     context-aware variant is the one to call.
//
// In unexported functions that do not receive a context, calls to
// context.Background()/TODO() are also reported: internal helpers must
// accept a context from their caller, not mint a fresh one. Exported
// context-less functions are exempt — they are the documented
// convenience facades (mclegal.Legalize, flow.Run, mcf.Solve) whose
// contract is "no cancellation".
//
// Suppress a finding with //mclegal:ctx <why> on the call line or the
// line above.
package ctxflow

import (
	"go/ast"
	"go/types"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// Analyzer is the ctxflow check.
var Analyzer = &framework.Analyzer{
	Name:      "ctxflow",
	Doc:       "thread received contexts into every context-capable callee; no fresh Background/TODO in the core (suppress with //mclegal:ctx)",
	Run:       run,
	Scope:     scope.CancellationAware,
	Directive: "ctx",
	Example:   "//mclegal:ctx this helper is documented as detach-on-return; its work outlives the request on purpose",
}

func run(pass *framework.Pass) error {
	if !framework.PathMatchesAny(pass.Pkg.Path(), scope.CancellationAware) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	hasCtx := acceptsContext(fn.Type().(*types.Signature))
	exported := ast.IsExported(fd.Name.Name)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		callee := staticCallee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if isContextCtor(callee) {
			switch {
			case hasCtx:
				report(pass, call, "function already receives a context.Context; use it instead of context.%s()", callee.Name())
			case !exported:
				report(pass, call, "unexported function mints a fresh context with context.%s(); accept a context.Context from the caller instead", callee.Name())
			}
			return true
		}
		if !hasCtx {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || acceptsContext(sig) {
			return true // callee already takes the context at this site
		}
		if sibling := contextVariant(callee); sibling != nil {
			report(pass, call, "call to %s drops the received context; call %s instead", callee.Name(), sibling.Name())
		}
		return true
	})
}

func report(pass *framework.Pass, call *ast.CallExpr, format string, args ...any) {
	if pass.Suppressed("ctx", call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(), format, args...)
}

// staticCallee resolves a call to the function or method it statically
// invokes, or nil for builtins, function values, and interface calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// acceptsContext reports whether any parameter of sig is a
// context.Context.
func acceptsContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isContextCtor(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// contextVariant finds the context-accepting sibling of fn: a function
// named fn.Name()+"Context" or +"WithContext" in the same package
// scope, or for methods the same method set, that takes a
// context.Context parameter.
func contextVariant(fn *types.Func) *types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for _, suffix := range [2]string{"Context", "WithContext"} {
		name := fn.Name() + suffix
		var obj types.Object
		if sig.Recv() != nil {
			obj, _, _ = types.LookupFieldOrMethod(sig.Recv().Type(), true, fn.Pkg(), name)
		} else if fn.Pkg() != nil {
			obj = fn.Pkg().Scope().Lookup(name)
		}
		cand, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if csig, ok := cand.Type().(*types.Signature); ok && acceptsContext(csig) {
			return cand
		}
	}
	return nil
}
