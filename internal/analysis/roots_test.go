package analysis_test

import (
	"go/types"
	"testing"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/noalloc"
)

// TestHotPathRootsMatchDynamicProof pins the static noalloc proof to
// the dynamic one: mgl.TestBestInWindowZeroAlloc measures exactly the
// call tree under (*Legalizer).bestInWindow, so (a) bestInWindow must
// be a //mclegal:hotpath root, and (b) every other root must be
// reachable from bestInWindow — otherwise the static proof would claim
// coverage the benchmark does not actually measure, and the two could
// silently drift apart.
func TestHotPathRootsMatchDynamicProof(t *testing.T) {
	prog := loadScopedProgram(t)
	cg, err := prog.CallGraph()
	if err != nil {
		t.Fatalf("building call graph: %v", err)
	}
	roots, err := noalloc.Roots(prog)
	if err != nil {
		t.Fatalf("collecting hotpath roots: %v", err)
	}
	if len(roots) == 0 {
		t.Fatal("no //mclegal:hotpath roots found; the noalloc analyzer is proving nothing")
	}

	mgl := prog.Package("mclegal/internal/mgl")
	if mgl == nil {
		t.Fatal("internal/mgl not in the scoped program")
	}
	leg, _ := mgl.Types.Scope().Lookup("Legalizer").(*types.TypeName)
	if leg == nil {
		t.Fatal("mgl.Legalizer not found")
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(leg.Type()), true, mgl.Types, "bestInWindow")
	fn, _ := obj.(*types.Func)
	if fn == nil {
		t.Fatal("(*mgl.Legalizer).bestInWindow not found")
	}
	bench := cg.Node(fn)
	if bench == nil {
		t.Fatal("bestInWindow has no call-graph node")
	}

	isRoot := false
	for _, r := range roots {
		if r == bench {
			isRoot = true
		}
	}
	if !isRoot {
		t.Errorf("bestInWindow is not a //mclegal:hotpath root; the static proof no longer covers what TestBestInWindowZeroAlloc measures")
	}

	// BFS from bestInWindow over in-program edges.
	reach := map[*framework.Node]bool{bench: true}
	queue := []*framework.Node{bench}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if e.Callee == nil || e.Callee.External() || reach[e.Callee] {
				continue
			}
			reach[e.Callee] = true
			queue = append(queue, e.Callee)
		}
	}
	for _, r := range roots {
		if !reach[r] {
			t.Errorf("root %s is not reachable from bestInWindow: the dynamic benchmark does not exercise it, so its zero-alloc claim has no runtime witness",
				r.Func.FullName())
		}
	}
}
