package analysis_test

import (
	"go/types"
	"testing"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/noalloc"
)

// TestHotPathRootsMatchDynamicProof pins the static noalloc proof to
// the dynamic ones. Each //mclegal:hotpath call tree has a
// testing.AllocsPerRun witness measuring an anchor function whose call
// tree contains it:
//
//	(*mgl.Legalizer).bestInWindow  — mgl.TestBestInWindowZeroAlloc
//	(*mcf.Solver).resolve          — mcf.TestResolveZeroAlloc
//	(*matching.Solver).solve       — matching.TestSolverReuseZeroAlloc
//	                                 (root: augmentRow, inside solve)
//
// Every anchor marked mustBeRoot must itself carry the hotpath
// annotation, and every root must be reachable from some anchor —
// otherwise the static proof would claim coverage no benchmark
// actually measures, and the two could silently drift apart.
func TestHotPathRootsMatchDynamicProof(t *testing.T) {
	prog := loadScopedProgram(t)
	cg, err := prog.CallGraph()
	if err != nil {
		t.Fatalf("building call graph: %v", err)
	}
	roots, err := noalloc.Roots(prog)
	if err != nil {
		t.Fatalf("collecting hotpath roots: %v", err)
	}
	if len(roots) == 0 {
		t.Fatal("no //mclegal:hotpath roots found; the noalloc analyzer is proving nothing")
	}

	anchors := []struct {
		pkg, typ, method string
		mustBeRoot       bool
		witness          string
	}{
		{"mclegal/internal/mgl", "Legalizer", "bestInWindow", true, "mgl.TestBestInWindowZeroAlloc"},
		{"mclegal/internal/mcf", "Solver", "resolve", true, "mcf.TestResolveZeroAlloc"},
		{"mclegal/internal/matching", "Solver", "solve", false, "matching.TestSolverReuseZeroAlloc"},
	}

	reach := map[*framework.Node]bool{}
	for _, a := range anchors {
		pkg := prog.Package(a.pkg)
		if pkg == nil {
			t.Fatalf("%s not in the scoped program", a.pkg)
		}
		tn, _ := pkg.Types.Scope().Lookup(a.typ).(*types.TypeName)
		if tn == nil {
			t.Fatalf("%s.%s not found", a.pkg, a.typ)
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pkg.Types, a.method)
		fn, _ := obj.(*types.Func)
		if fn == nil {
			t.Fatalf("(*%s.%s).%s not found", a.pkg, a.typ, a.method)
		}
		node := cg.Node(fn)
		if node == nil {
			t.Fatalf("%s has no call-graph node", fn.FullName())
		}
		if a.mustBeRoot {
			isRoot := false
			for _, r := range roots {
				if r == node {
					isRoot = true
				}
			}
			if !isRoot {
				t.Errorf("%s is not a //mclegal:hotpath root; the static proof no longer covers what %s measures",
					fn.FullName(), a.witness)
			}
		}

		// BFS from the anchor over in-program edges.
		if reach[node] {
			continue
		}
		reach[node] = true
		queue := []*framework.Node{node}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, e := range n.Out {
				if e.Callee == nil || e.Callee.External() || reach[e.Callee] {
					continue
				}
				reach[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	for _, r := range roots {
		if !reach[r] {
			t.Errorf("root %s is not reachable from any dynamic-proof anchor: no benchmark exercises it, so its zero-alloc claim has no runtime witness",
				r.Func.FullName())
		}
	}
}
