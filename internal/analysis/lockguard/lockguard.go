// Package lockguard enforces two mutex disciplines over the
// concurrency scope (scope.ConcurrencyScope):
//
// Guard consistency — for each struct field, the analyzer infers its
// guard from majority usage: if some mutex M is held (write-mode for
// writes) at more than half of the field's accesses, including at
// least one write, then M is the field's guard and every access that
// does not hold M is reported. The held set at an access combines the
// function's own Lock/Unlock pairing (framework.ConcSummary) with the
// guards every caller provably holds at every call site
// (CallGraph.InheritedHeld) — so the `locked()` helper idiom, a method
// that touches guarded state and is only ever called under the lock,
// needs no annotation. Accesses through constructor-fresh receivers
// are exempt (the value is unpublished), and a write performed under
// only the read lock of an RWMutex gets its own diagnostic.
//
// No blocking under a lock — a channel send/receive, default-less
// select, or WaitGroup.Wait while holding any mutex stalls every
// contender of that mutex behind an unbounded wait (the
// shard-observer-mutex and serve-semaphore hazard class). Direct
// blocking ops are checked against the held set at the op; static
// calls made under a lock are checked against the callee's transitive
// may-block fact (CallGraph.MayBlock), and the diagnostic names the
// concrete blocking operation it found. Re-acquiring a mutex already
// held is reported as a self-deadlock. Acquiring a *different* mutex
// under a lock is deliberately not reported (that is lock-ordering
// territory, meaningless without a global order), and interface or
// dynamic dispatch under a lock is not judged — the implementations
// are judged in their own bodies, where their own lock context is
// known.
//
// A justified exception takes //mclegal:lockguard <why> on the line.
package lockguard

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// Analyzer is the lock-discipline check.
var Analyzer = &framework.Analyzer{
	Name:      "lockguard",
	Doc:       "infer each field's guarding mutex and enforce it everywhere; forbid blocking ops under a lock (suppress with //mclegal:lockguard)",
	Run:       run,
	Scope:     scope.ConcurrencyScope,
	Directive: "lockguard",
	Example:   "//mclegal:lockguard read is of an atomic counter; the mutex guards only the map",
}

// A finding is one pre-computed diagnostic, attributed to the package
// whose pass should report it.
type finding struct {
	pkg *types.Package
	pos token.Pos
	msg string
}

type guardState struct {
	findings []finding
}

// accessRec is one field access with its effective guard set (own
// pairing ∪ caller-inherited).
type accessRec struct {
	node *framework.Node
	acc  framework.FieldAccess
	eff  framework.GuardSet
}

func state(prog *framework.Program) (*guardState, error) {
	v, err := prog.CacheLoad("lockguard", func() (any, error) { return computeState(prog) })
	if err != nil {
		return nil, err
	}
	return v.(*guardState), nil
}

func computeState(prog *framework.Program) (*guardState, error) {
	cg, err := prog.CallGraph()
	if err != nil {
		return nil, err
	}
	inherited := cg.InheritedHeld()
	mayBlock := cg.MayBlock()
	st := &guardState{}
	byField := make(map[*types.Var][]accessRec)
	var fields []*types.Var

	addAccess := func(n *framework.Node, a framework.FieldAccess, inheritedHeld framework.GuardSet) {
		if !a.Obj.IsField() || a.Fresh {
			return
		}
		eff := a.Held.Clone()
		for m, mode := range inheritedHeld {
			if mode > eff[m] {
				eff[m] = mode
			}
		}
		if len(byField[a.Obj]) == 0 {
			fields = append(fields, a.Obj)
		}
		byField[a.Obj] = append(byField[a.Obj], accessRec{node: n, acc: a, eff: eff})
	}

	for _, n := range cg.Nodes() {
		if n.External() || n.Pkg == nil || !framework.PathMatchesAny(n.Pkg.Path, scope.ConcurrencyScope) {
			continue
		}
		c := n.Conc()
		for _, a := range c.Accesses {
			addAccess(n, a, inherited[n])
		}
		// Spawned bodies: their accesses carry their own pairing and
		// inherit nothing (a goroutine does not hold its spawner's
		// locks).
		for _, sp := range c.AllSpawns() {
			if sp.Body == nil {
				continue
			}
			for _, a := range sp.Body.Accesses {
				addAccess(n, a, nil)
			}
		}
		st.checkBlocking(cg, mayBlock, n)
	}

	// Guard inference per field, in first-seen (deterministic walk)
	// order.
	for _, f := range fields {
		st.checkField(f, byField[f])
	}
	return st, nil
}

// checkField infers the field's guard from majority usage and reports
// the accesses that violate it.
func (st *guardState) checkField(f *types.Var, recs []accessRec) {
	// Tally, per candidate mutex, how many accesses hold it with the
	// required mode, and whether any write does.
	guarded := make(map[*types.Var]int)
	writeUnder := make(map[*types.Var]bool)
	var candidates []*types.Var
	for _, r := range recs {
		for m := range r.eff {
			if ok, _ := holdsFor(r, m); !ok {
				continue
			}
			if guarded[m] == 0 {
				candidates = append(candidates, m)
			}
			guarded[m]++
			if r.acc.Write {
				writeUnder[m] = true
			}
		}
	}
	var guard *types.Var
	best := 0
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Name() < candidates[j].Name() })
	for _, m := range candidates {
		if writeUnder[m] && guarded[m]*2 > len(recs) && guarded[m] > best {
			guard, best = m, guarded[m]
		}
	}
	if guard == nil {
		return
	}
	for _, r := range recs {
		ok, readOnly := holdsFor(r, guard)
		if ok {
			continue
		}
		kind := "read"
		if r.acc.Write {
			kind = "write"
		}
		if readOnly {
			st.report(r.node, r.acc.Pos,
				"write to %s holds only the read lock of %s, its inferred guard (%d/%d accesses hold it); take the write lock or justify with //mclegal:lockguard <why>",
				f.Name(), guard.Name(), best, len(recs))
			continue
		}
		st.report(r.node, r.acc.Pos,
			"%s of %s without %s, its inferred guard (%d/%d accesses hold it); hold the mutex or justify with //mclegal:lockguard <why>",
			kind, f.Name(), guard.Name(), best, len(recs))
	}
}

// holdsFor reports whether the access holds m in the mode it needs;
// readOnly flags a write that holds m only in read mode.
func holdsFor(r accessRec, m *types.Var) (ok, readOnly bool) {
	mode := framework.GuardRead
	if r.acc.Write {
		mode = framework.GuardWrite
	}
	if r.eff.Holds(m, mode) {
		return true, false
	}
	return false, r.acc.Write && r.eff.Holds(m, framework.GuardRead)
}

// checkBlocking reports blocking operations performed with a lock
// held, in n's own body and its spawned bodies.
func (st *guardState) checkBlocking(cg *framework.CallGraph, mayBlock map[*framework.Node]*framework.BlockWitness, n *framework.Node) {
	check := func(c *framework.ConcSummary) {
		for _, b := range c.Blocks {
			if b.Kind == framework.BlockLock {
				if b.Mutex != nil && b.Held.Holds(b.Mutex, framework.GuardRead) {
					st.report(n, b.Pos, "acquires %s while already holding it: self-deadlock", b.Mutex.Name())
				}
				continue
			}
			if m := anyHeld(b.Held); m != nil {
				st.report(n, b.Pos, "%s while holding %s; blocking under a lock stalls every contender, release it first or justify with //mclegal:lockguard <why>",
					b.Kind, m.Name())
			}
		}
		for _, call := range c.Calls {
			m := anyHeld(call.Held)
			if m == nil {
				continue
			}
			callee := cg.Node(call.Callee)
			w := mayBlock[callee]
			if w == nil {
				continue
			}
			st.report(n, call.Pos, "call to %s may block (%s in %s) while holding %s; release the lock first or justify with //mclegal:lockguard <why>",
				call.Callee.Name(), w.Kind, w.Owner.Func.Name(), m.Name())
		}
	}
	c := n.Conc()
	check(c)
	for _, sp := range c.AllSpawns() {
		if sp.Body != nil {
			check(sp.Body)
		}
	}
}

// anyHeld returns a deterministic representative of a non-empty guard
// set (the name-smallest mutex), or nil.
func anyHeld(g framework.GuardSet) *types.Var {
	var out *types.Var
	for m := range g {
		if out == nil || m.Name() < out.Name() {
			out = m
		}
	}
	return out
}

func (st *guardState) report(n *framework.Node, pos token.Pos, format string, args ...any) {
	var pkg *types.Package
	if n.Pkg != nil {
		pkg = n.Pkg.Types
	}
	st.findings = append(st.findings, finding{pkg: pkg, pos: pos, msg: fmt.Sprintf(format, args...)})
}

func run(pass *framework.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	st, err := state(pass.Prog)
	if err != nil {
		return err
	}
	for _, f := range st.findings {
		if f.pkg != pass.Pkg {
			continue
		}
		if pass.Suppressed("lockguard", f.pos) {
			continue
		}
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}
