package lockguard_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/lockguard"
)

// The scoped fixture package carries every inference/blocking/
// suppression shape; the unscoped one proves the analyzer respects
// scope.ConcurrencyScope.
func TestLockguard(t *testing.T) {
	analysistest.RunGroup(t, "../testdata", lockguard.Analyzer,
		"lockguard/internal/serve", "lockguard/notscoped")
}
