// Package maporder flags range statements over maps in the
// deterministic core packages. Go randomizes map iteration order, so
// any map range whose effects depend on order silently breaks the
// byte-identical-output guarantee the benchmark trajectory
// (BENCH_mgl.json) and the parallel-regression suite rely on.
//
// Three shapes are accepted without a directive:
//
//   - key/value collection: a loop whose whole body is a single
//     `s = append(s, k)` (or `s = append(s, v)`) where s is later
//     passed to a sort call in the same block — the canonical
//     collect-then-sort idiom;
//   - order-insensitive reduction: every body statement folds into an
//     accumulator through a commutative, associative integer operation
//     (`+=`, `-=`, `*=`, `|=`, `&=`, `^=`, `++`/`--`, `x = min(x, e)`,
//     `if v < best { best = v }`) or inserts into a set/map keyed so
//     collisions cannot disagree — with call-free operands, so no
//     iteration can observe another's order;
//   - a //mclegal:ordered <why> directive on the loop, for ranges whose
//     effects are order-free for reasons the analyzer cannot prove
//     (e.g. accumulating into a structure it does not model).
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// Analyzer is the maporder check.
var Analyzer = &framework.Analyzer{
	Name:      "maporder",
	Doc:       "flag range-over-map in deterministic packages unless it collects-then-sorts or is a provably order-insensitive reduction (or justified with //mclegal:ordered)",
	Run:       run,
	Scope:     scope.DeterministicCore,
	Directive: "ordered",
	Example:   "//mclegal:ordered map-to-map copy; the copy's insertion order is never observed",
}

func run(pass *framework.Pass) error {
	if !framework.PathMatchesAny(pass.Pkg.Path(), scope.DeterministicCore) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				checkRange(pass, rs, block.List[i+1:])
			}
			return true
		})
	}
	return nil
}

func checkRange(pass *framework.Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.Suppressed("ordered", rs.Pos()) {
		return
	}
	if isCollectThenSort(pass, rs, following) {
		return
	}
	if isOrderInsensitiveReduction(pass, rs) {
		return
	}
	pass.Reportf(rs.Pos(),
		"range over map %s in deterministic package %s: iteration order is randomized; collect and sort the keys first, or justify with //mclegal:ordered <why>",
		types.ExprString(rs.X), pass.Pkg.Path())
}

// isCollectThenSort recognizes the blessed idiom: the loop body is
// exactly `s = append(s, k)` collecting the range key (or value), and a
// later statement in the same block sorts s.
func isCollectThenSort(pass *framework.Pass, rs *ast.RangeStmt, following []ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	target, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	targetObj := pass.TypesInfo.Uses[target]
	if targetObj == nil {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 || call.Ellipsis != token.NoPos {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if first, ok := call.Args[0].(*ast.Ident); !ok || pass.TypesInfo.Uses[first] != targetObj {
		return false
	}
	// Every appended element must be the range key or value itself, so
	// the collected slice is a pure projection of the map's keys.
	keyObj := rangeVarObj(pass, rs.Key)
	valObj := rangeVarObj(pass, rs.Value)
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || (obj != keyObj && obj != valObj) {
			return false
		}
	}
	return sortedLater(pass, targetObj, following)
}

// isOrderInsensitiveReduction reports whether every statement in the
// loop body folds into an accumulator through an operation whose result
// is the same under any iteration order, with call-free operands.
//
// Accepted statement shapes (x is the accumulator, e is a pure operand):
//
//	x += e  x -= e  x *= e  x |= e  x &= e  x ^= e   (integer x)
//	x++  x--                                         (integer x)
//	s[i] += e  s[i]++ ...                            (map cell, same ops)
//	x = min(x, e)  x = max(x, e)                     (builtin min/max)
//	if e < x { x = e }                               (running min/max)
//	s[k] = e                                         (range-key index:
//	                                                  cells are distinct)
//	s[i] = <constant>                                (colliding cells
//	                                                  agree)
//
// Each accumulator may appear in exactly one statement, and no operand
// may read any accumulator — otherwise one iteration could observe a
// partial fold from another (`x += k; y += x` accumulates prefix sums
// of x, which depend on order). Operands must be call-free apart from
// type conversions and the pure builtins (len, cap, min, max, real,
// imag): a called function could consume iteration order even when the
// folded value does not. Float and string accumulators are excluded —
// float addition is not associative and string concatenation is not
// commutative.
func isOrderInsensitiveReduction(pass *framework.Pass, rs *ast.RangeStmt) bool {
	body := rs.Body.List
	if len(body) == 0 {
		return false
	}
	// First pass: every statement must name a distinct accumulator.
	accs := make(map[types.Object]bool, len(body))
	for _, stmt := range body {
		obj := reductionTarget(pass, stmt)
		if obj == nil || accs[obj] {
			return false
		}
		accs[obj] = true
	}
	// Second pass: validate each statement's shape with the full
	// accumulator set known, so cross-statement reads are rejected.
	for _, stmt := range body {
		if !isReductionStmt(pass, rs, stmt, accs) {
			return false
		}
	}
	return true
}

// reductionTarget resolves the accumulator a candidate reduction
// statement folds into: the assigned identifier, or the map variable
// for indexed stores. Nil means the statement is not a reduction shape.
func reductionTarget(pass *framework.Pass, stmt ast.Stmt) types.Object {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return lvalueBase(pass, s.X)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return nil
		}
		return lvalueBase(pass, s.Lhs[0])
	case *ast.IfStmt:
		if s.Init != nil || s.Else != nil || len(s.Body.List) != 1 {
			return nil
		}
		assign, ok := s.Body.List[0].(*ast.AssignStmt)
		if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 {
			return nil
		}
		return lvalueBase(pass, assign.Lhs[0])
	}
	return nil
}

// lvalueBase resolves an accumulator lvalue: a plain identifier, or the
// map variable of a single-level index expression.
func lvalueBase(pass *framework.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.IndexExpr:
		id, ok := e.X.(*ast.Ident)
		if !ok {
			return nil
		}
		if _, isMap := pass.TypesInfo.Types[e.X].Type.Underlying().(*types.Map); !isMap {
			return nil
		}
		return pass.TypesInfo.Uses[id]
	}
	return nil
}

// commutativeAssignOps are the op-assign tokens whose repeated
// application folds to the same value under any order (on integers).
var commutativeAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.OR_ASSIGN:  true,
	token.AND_ASSIGN: true,
	token.XOR_ASSIGN: true,
}

func isReductionStmt(pass *framework.Pass, rs *ast.RangeStmt, stmt ast.Stmt, accs map[types.Object]bool) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return isIntegerLvalue(pass, s.X) && pureIndexOf(pass, s.X, accs)

	case *ast.AssignStmt:
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		if commutativeAssignOps[s.Tok] {
			return isIntegerLvalue(pass, lhs) &&
				pureIndexOf(pass, lhs, accs) &&
				pureOperand(pass, rhs, accs)
		}
		if s.Tok != token.ASSIGN {
			return false
		}
		if id, ok := lhs.(*ast.Ident); ok {
			return isMinMaxFold(pass, id, rhs, accs)
		}
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			return isSetInsert(pass, rs, ix, rhs, accs)
		}
		return false

	case *ast.IfStmt:
		return isCompareFold(pass, s, accs)
	}
	return false
}

// isIntegerLvalue reports whether the folded cell has integer type:
// float folds are not associative and string folds not commutative.
func isIntegerLvalue(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// pureIndexOf validates the index of an indexed accumulator (trivially
// true for plain identifiers).
func pureIndexOf(pass *framework.Pass, e ast.Expr, accs map[types.Object]bool) bool {
	if ix, ok := e.(*ast.IndexExpr); ok {
		return pureOperand(pass, ix.Index, accs)
	}
	return true
}

// isMinMaxFold matches `x = min(x, e...)` / `x = max(x, e...)` with the
// builtin min/max: idempotent and commutative, so order-free.
func isMinMaxFold(pass *framework.Pass, lhs *ast.Ident, rhs ast.Expr, accs map[types.Object]bool) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || (fn.Name != "min" && fn.Name != "max") {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	target := pass.TypesInfo.Uses[lhs]
	selfSeen := false
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == target {
			selfSeen = true
			continue
		}
		if !pureOperand(pass, arg, accs) {
			return false
		}
	}
	return target != nil && selfSeen
}

// isSetInsert matches map stores whose colliding writes cannot
// disagree: either the cell is keyed by the range key (every iteration
// owns a distinct cell), or the stored value is a constant (colliding
// iterations all write the same thing — the `seen[v] = true` set
// idiom).
func isSetInsert(pass *framework.Pass, rs *ast.RangeStmt, lhs *ast.IndexExpr, rhs ast.Expr, accs map[types.Object]bool) bool {
	if !pureOperand(pass, lhs.Index, accs) || !pureOperand(pass, rhs, accs) {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[rhs]; ok && tv.Value != nil {
		return true
	}
	if lit, ok := rhs.(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
		return true // struct{}{} set-membership marker
	}
	keyObj := rangeVarObj(pass, rs.Key)
	return keyObj != nil && usesObj(pass, lhs.Index, keyObj)
}

// isCompareFold matches the manual running-min/max idiom:
// `if e < x { x = e }` (any of < > <= >=, either operand order), where
// e is the same pure expression in the condition and the assignment.
func isCompareFold(pass *framework.Pass, s *ast.IfStmt, accs map[types.Object]bool) bool {
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	assign := s.Body.List[0].(*ast.AssignStmt) // shape-checked in reductionTarget
	if len(assign.Rhs) != 1 {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	target := pass.TypesInfo.Uses[lhs]
	src, ok := assign.Rhs[0].(*ast.Ident)
	if !ok || !pureOperand(pass, src, accs) {
		return false
	}
	srcObj := pass.TypesInfo.Uses[src]
	if target == nil || srcObj == nil {
		return false
	}
	// The condition must compare exactly the assigned source against
	// the accumulator, in either order.
	condMatches := func(a, b ast.Expr) bool {
		ai, aok := a.(*ast.Ident)
		bi, bok := b.(*ast.Ident)
		return aok && bok &&
			pass.TypesInfo.Uses[ai] == srcObj && pass.TypesInfo.Uses[bi] == target
	}
	return condMatches(cond.X, cond.Y) || condMatches(cond.Y, cond.X)
}

// pureOperand reports whether e can be evaluated in any iteration
// without observing another iteration's effects: no calls (other than
// type conversions and pure builtins), no channel receives, no function
// literals, and no reads of any accumulator.
func pureOperand(pass *framework.Pass, e ast.Expr, accs map[types.Object]bool) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		if !pure {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "len", "cap", "min", "max", "real", "imag", "complex":
						return true
					}
				}
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && accs[obj] {
				pure = false
				return false
			}
		}
		return true
	})
	return pure
}

// usesObj reports whether e references obj.
func usesObj(pass *framework.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// rangeVarObj resolves the object of a range key/value identifier.
func rangeVarObj(pass *framework.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// sortedLater reports whether a following statement passes obj to a
// sort/slices sorting function.
func sortedLater(pass *framework.Pass, obj types.Object, following []ast.Stmt) bool {
	found := false
	for _, stmt := range following {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "sort", "slices":
			default:
				return true
			}
			if arg, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.Uses[arg] == obj {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
