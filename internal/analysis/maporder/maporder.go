// Package maporder flags range statements over maps in the
// deterministic core packages. Go randomizes map iteration order, so
// any map range whose effects depend on order silently breaks the
// byte-identical-output guarantee the benchmark trajectory
// (BENCH_mgl.json) and the parallel-regression suite rely on.
//
// Two shapes are accepted without a directive:
//
//   - key/value collection: a loop whose whole body is a single
//     `s = append(s, k)` (or `s = append(s, v)`) where s is later
//     passed to a sort call in the same block — the canonical
//     collect-then-sort idiom;
//   - a //mclegal:ordered <why> directive on the loop, for ranges whose
//     effects are genuinely order-free (e.g. feeding a commutative
//     reduction).
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// Analyzer is the maporder check.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map in deterministic packages unless keys are collected and sorted (or justified with //mclegal:ordered)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !framework.PathMatchesAny(pass.Pkg.Path(), scope.DeterministicCore) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				checkRange(pass, rs, block.List[i+1:])
			}
			return true
		})
	}
	return nil
}

func checkRange(pass *framework.Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.Suppressed("ordered", rs.Pos()) {
		return
	}
	if isCollectThenSort(pass, rs, following) {
		return
	}
	pass.Reportf(rs.Pos(),
		"range over map %s in deterministic package %s: iteration order is randomized; collect and sort the keys first, or justify with //mclegal:ordered <why>",
		types.ExprString(rs.X), pass.Pkg.Path())
}

// isCollectThenSort recognizes the blessed idiom: the loop body is
// exactly `s = append(s, k)` collecting the range key (or value), and a
// later statement in the same block sorts s.
func isCollectThenSort(pass *framework.Pass, rs *ast.RangeStmt, following []ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	target, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	targetObj := pass.TypesInfo.Uses[target]
	if targetObj == nil {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 || call.Ellipsis != token.NoPos {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if first, ok := call.Args[0].(*ast.Ident); !ok || pass.TypesInfo.Uses[first] != targetObj {
		return false
	}
	// Every appended element must be the range key or value itself, so
	// the collected slice is a pure projection of the map's keys.
	keyObj := rangeVarObj(pass, rs.Key)
	valObj := rangeVarObj(pass, rs.Value)
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || (obj != keyObj && obj != valObj) {
			return false
		}
	}
	return sortedLater(pass, targetObj, following)
}

// rangeVarObj resolves the object of a range key/value identifier.
func rangeVarObj(pass *framework.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// sortedLater reports whether a following statement passes obj to a
// sort/slices sorting function.
func sortedLater(pass *framework.Pass, obj types.Object, following []ast.Stmt) bool {
	found := false
	for _, stmt := range following {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "sort", "slices":
			default:
				return true
			}
			if arg, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.Uses[arg] == obj {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
