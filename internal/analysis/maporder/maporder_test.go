package maporder_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "../testdata", maporder.Analyzer,
		"maporder/internal/mgl", "maporder/internal/other")
}
