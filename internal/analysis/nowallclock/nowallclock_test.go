package nowallclock_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/nowallclock"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, "../testdata", nowallclock.Analyzer,
		"nowallclock/internal/stage", "nowallclock/internal/other")
}
