// Package nowallclock forbids nondeterministic inputs in the
// deterministic core packages: wall-clock reads (time.Now/time.Since),
// pseudo-randomness (importing math/rand or math/rand/v2), and select
// statements with more than one communication case (the runtime picks
// a ready case pseudo-randomly).
//
// Observability-only uses — stage timing that feeds observer events
// but never influences placement — are suppressed with a
// //mclegal:wallclock <why> directive.
package nowallclock

import (
	"go/ast"
	"go/types"
	"strconv"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// Analyzer is the nowallclock check.
var Analyzer = &framework.Analyzer{
	Name:      "nowallclock",
	Doc:       "forbid time.Now/time.Since, math/rand, and multi-case selects in deterministic packages (suppress with //mclegal:wallclock)",
	Run:       run,
	Scope:     scope.DeterministicCore,
	Directive: "wallclock",
	Example:   "//mclegal:wallclock total-runtime reporting only, never influences placement",
}

func run(pass *framework.Pass) error {
	if !framework.PathMatchesAny(pass.Pkg.Path(), scope.DeterministicCore) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				if !pass.Suppressed("wallclock", imp.Pos()) {
					pass.Reportf(imp.Pos(),
						"import of %s in deterministic package %s: pseudo-randomness breaks byte-identical output",
						path, pass.Pkg.Path())
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if name := fn.Name(); name == "Now" || name == "Since" {
					if !pass.Suppressed("wallclock", n.Pos()) {
						pass.Reportf(n.Pos(),
							"time.%s in deterministic package %s: wall-clock reads must not influence results; justify observability-only uses with //mclegal:wallclock <why>",
							name, pass.Pkg.Path())
					}
				}
			case *ast.SelectStmt:
				comms := 0
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						comms++
					}
				}
				if comms >= 2 && !pass.Suppressed("wallclock", n.Pos()) {
					pass.Reportf(n.Pos(),
						"select with %d communication cases in deterministic package %s: the runtime chooses a ready case pseudo-randomly; restructure or justify with //mclegal:wallclock <why>",
						comms, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
