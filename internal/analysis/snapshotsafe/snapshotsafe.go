// Package snapshotsafe proves the pipeline's rollback story complete:
// for every gated stage, the stage's transitive resident-state write
// set (computed by the framework's write-effect engine under the
// internal/analysis/writeloc vocabulary) must be covered by what the
// gate's snapshot/rollback restores, or by state declared per-run
// scratch.
//
// The gate declares its restored locations in its doc comment:
//
//	//mclegal:restores design.xy,stagectx what the rollback puts back
//
// and per-run scratch is declared on the tracked type or field itself:
//
//	//mclegal:ephemeral rebuilt from the design on every run
//
// The analyzer locates every function carrying a //mclegal:restores
// directive, resolves the Stage interface of that function's package,
// finds every in-program implementation, and checks
//
//	writes(impl.Run) ⊆ restores(gate) ∪ ephemeral
//
// reporting any stage mutation a rollback would silently keep. It also
// validates the declarations themselves: restored locations must be
// real vocabulary names, and both directives must carry a
// justification.
//
// Provability (no dynamic/external calls with unknowable effects in
// the stage trees) is the writeset analyzer's job; the two share one
// write-effect computation and snapshotsafe does not re-report unknown
// call sites. This analyzer is the static foundation the ROADMAP
// item 1 ECO dirty-region refactor extends: new snapshotable
// PipelineContext state must join the //mclegal:restores contract to
// pass it (docs/DESIGN.md).
package snapshotsafe

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
	"mclegal/internal/analysis/writeloc"
)

// Analyzer proves write-set ⊆ restored-set for every gated stage.
var Analyzer = &framework.Analyzer{
	Name:      "snapshotsafe",
	Doc:       "prove every gated stage's resident-state write set is covered by the gate's declared snapshot/rollback (//mclegal:restores) or by //mclegal:ephemeral scratch",
	Scope:     scope.GateBoundary,
	Directive: "snapshotsafe",
	Example:   "//mclegal:snapshotsafe this stage runs ungated by construction; its caller owns the snapshot",
	Run:       run,
}

type finding struct {
	pkg  *types.Package
	pos  token.Pos
	msg  string
	supp bool
}

// StageProof is the static rollback proof of one gated stage, exported
// for the bidirectional pin against the dynamic rollback byte-identity
// test (TestStageWriteSetsMatchRollbackProof).
type StageProof struct {
	// Type is the implementation's qualified name, e.g. "stage.MGLStage".
	Type string
	// Gate is the qualified name of the //mclegal:restores function.
	Gate string
	// Writes is the stage Run tree's transitive location set; Restored
	// and Ephemeral are the covering sets; Uncovered is what remains.
	Writes    []string
	Restored  []string
	Ephemeral []string
	Uncovered []string
}

type ssState struct {
	findings []finding
	proofs   []StageProof
}

func state(prog *framework.Program) (*ssState, error) {
	v, err := prog.CacheLoad("snapshotsafe", func() (any, error) { return computeState(prog) })
	if err != nil {
		return nil, err
	}
	return v.(*ssState), nil
}

// StageProofs exposes the per-stage static proofs of the loaded
// program; the pin test compares them against the dynamic rollback
// test's stage table in both directions.
func StageProofs(prog *framework.Program) ([]StageProof, error) {
	st, err := state(prog)
	if err != nil {
		return nil, err
	}
	return st.proofs, nil
}

type gate struct {
	node     *framework.Node
	restores []string
}

func computeState(prog *framework.Program) (*ssState, error) {
	effects, vocab, err := writeloc.Effects(prog)
	if err != nil {
		return nil, err
	}
	cg, err := prog.CallGraph()
	if err != nil {
		return nil, err
	}
	st := &ssState{}
	fset := prog.Fset()

	known := make(map[string]bool)
	for _, l := range vocab.LocNames() {
		known[l] = true
	}

	// Ephemeral declarations excuse their locations everywhere; a bare
	// directive still owes its why.
	ephLocs := make(map[string]bool)
	for _, e := range vocab.Ephemerals() {
		if strings.TrimSpace(e.Reason) == "" {
			pos := fset.Position(e.Pos)
			st.findings = append(st.findings, finding{
				pkg: pkgAt(prog, e.Pos), pos: e.Pos,
				msg: fmt.Sprintf("//mclegal:ephemeral on %s (%s) is missing a justification", e.What, pos.Filename),
			})
		}
		for _, l := range e.Locs {
			ephLocs[l] = true
		}
	}

	// Gates are the //mclegal:restores-annotated functions; each defines
	// the rollback contract for the Stage interface of its own package.
	for _, n := range cg.Nodes() {
		if n.External() || n.Pkg == nil || n.Decl == nil || n.Decl.Doc == nil {
			continue
		}
		reason, ok := framework.DocDirective(n.Decl.Doc, "restores")
		if !ok {
			continue
		}
		g := gate{node: n}
		fields := strings.Fields(reason)
		if len(fields) == 0 {
			st.findings = append(st.findings, finding{
				pkg: n.Pkg.Types, pos: n.Decl.Pos(),
				msg: fmt.Sprintf("//mclegal:restores on %s names no locations; declare `//mclegal:restores <locs> <why>`", n.Func.Name()),
			})
			continue
		}
		if len(fields) == 1 {
			st.findings = append(st.findings, finding{
				pkg: n.Pkg.Types, pos: n.Decl.Pos(),
				msg: fmt.Sprintf("//mclegal:restores on %s is missing a justification", n.Func.Name()),
			})
		}
		bad := false
		for _, l := range strings.Split(fields[0], ",") {
			l = strings.TrimSpace(l)
			if l == "" {
				continue
			}
			if !known[l] {
				st.findings = append(st.findings, finding{
					pkg: n.Pkg.Types, pos: n.Decl.Pos(),
					msg: fmt.Sprintf("//mclegal:restores on %s names unknown location %q (known: %s)", n.Func.Name(), l, strings.Join(vocab.LocNames(), ", ")),
				})
				bad = true
				continue
			}
			g.restores = append(g.restores, l)
		}
		if bad {
			continue
		}
		sort.Strings(g.restores)
		st.checkGate(prog, cg, effects, vocab, fset, g, ephLocs)
	}
	sort.Slice(st.findings, func(i, j int) bool { return st.findings[i].pos < st.findings[j].pos })
	sort.Slice(st.proofs, func(i, j int) bool { return st.proofs[i].Type < st.proofs[j].Type })
	return st, nil
}

// checkGate proves coverage for every in-program implementation of the
// gate package's Stage interface.
func (st *ssState) checkGate(prog *framework.Program, cg *framework.CallGraph, effects map[*framework.Node]*framework.WriteEffects, vocab *writeloc.Vocab, fset *token.FileSet, g gate, ephLocs map[string]bool) {
	gatePkg := g.node.Pkg
	iface := stageInterface(gatePkg)
	if iface == nil {
		st.findings = append(st.findings, finding{
			pkg: gatePkg.Types, pos: g.node.Decl.Pos(),
			msg: fmt.Sprintf("//mclegal:restores on %s has no Stage interface in its package to prove coverage against", g.node.Func.Name()),
		})
		return
	}
	gateName := gatePkg.Types.Name() + "." + g.node.Func.Name()

	var ephList []string
	for l := range ephLocs {
		ephList = append(ephList, l)
	}
	sort.Strings(ephList)

	for _, impl := range stageImpls(prog, iface) {
		runFn := runMethod(impl)
		if runFn == nil {
			continue
		}
		node := cg.Node(runFn)
		if node == nil || node.Decl == nil {
			continue
		}
		we := effects[node]
		if we == nil {
			continue
		}
		locs := vocab.EffectLocs(we.Effects)
		proof := StageProof{
			Type:      impl.Obj().Pkg().Name() + "." + impl.Obj().Name(),
			Gate:      gateName,
			Writes:    locs,
			Restored:  g.restores,
			Ephemeral: ephList,
		}
		for _, l := range locs {
			if containsString(g.restores, l) || ephLocs[l] {
				continue
			}
			proof.Uncovered = append(proof.Uncovered, l)
			w, _ := writeloc.Witness(vocab, we.Effects, l)
			st.findings = append(st.findings, finding{
				pkg: node.Pkg.Types, pos: node.Decl.Pos(), supp: true,
				msg: fmt.Sprintf("(%s).Run's call tree writes %s (e.g. %s at %s), which %s's rollback does not restore and no //mclegal:ephemeral covers; add the location to the snapshot/rollback path or declare its type ephemeral",
					proof.Type, l, witnessName(w), fset.Position(w.Pos), gateName),
			})
		}
		st.proofs = append(st.proofs, proof)
	}
}

// stageInterface resolves the Stage interface declared in pkg.
func stageInterface(pkg *framework.Package) *types.Interface {
	tn, _ := pkg.Types.Scope().Lookup("Stage").(*types.TypeName)
	if tn == nil {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

// stageImpls collects every in-program named type implementing iface
// (through a pointer or value receiver set), in deterministic order.
func stageImpls(prog *framework.Program, iface *types.Interface) []*types.Named {
	var out []*types.Named
	for _, pkg := range prog.Pkgs {
		sc := pkg.Types.Scope()
		names := sc.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := sc.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
				out = append(out, named)
			}
		}
	}
	return out
}

// runMethod finds the implementation's Run method.
func runMethod(named *types.Named) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), "Run")
	fn, _ := obj.(*types.Func)
	return fn
}

func pkgAt(prog *framework.Program, pos token.Pos) *types.Package {
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			if f.FileStart <= pos && pos <= f.FileEnd {
				return pkg.Types
			}
		}
	}
	return nil
}

func witnessName(w framework.WriteEffect) string {
	if w.Obj == nil {
		return "?"
	}
	if w.Obj.Pkg() != nil {
		return w.Obj.Pkg().Name() + "." + w.Obj.Name()
	}
	return w.Obj.Name()
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	st, err := state(pass.Prog)
	if err != nil {
		return err
	}
	for _, f := range st.findings {
		if f.pkg != pass.Pkg {
			continue
		}
		if f.supp && pass.Suppressed("snapshotsafe", f.pos) {
			continue
		}
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}
