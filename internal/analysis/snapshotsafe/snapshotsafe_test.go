package snapshotsafe_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/snapshotsafe"
)

// One program: the gate and its stages live in the stage fixture, the
// tracked types (and their //mclegal:ephemeral declarations) in the
// model/seg fixtures.
func TestSnapshotsafe(t *testing.T) {
	analysistest.RunGroup(t, "../testdata", snapshotsafe.Analyzer,
		"snapshotsafe/internal/model", "snapshotsafe/internal/seg", "snapshotsafe/internal/stage")
}
