package sharedwrite_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/sharedwrite"
)

// The scoped fixture package carries the diagnose/exempt/suppression
// shapes; the unscoped one proves the analyzer respects
// scope.ConcurrencyScope.
func TestSharedwrite(t *testing.T) {
	analysistest.RunGroup(t, "../testdata", sharedwrite.Analyzer,
		"sharedwrite/internal/stage", "sharedwrite/notscoped")
}
