// Package sharedwrite is a lightweight static race screen over the
// concurrency scope (scope.ConcurrencyScope): it turns the chaos
// suite's schedule-dependent -race coverage into a schedule-independent
// check for the most common race shape — a location written inside a
// spawned goroutine's call tree and touched by the spawner's
// continuation while the goroutine may still be running.
//
// For every function containing a go statement the analyzer collects
// the spawn's write set: variables and fields written directly in the
// spawned body plus fields written by its static callees (transitive,
// visited-set bounded; constructor-fresh writes excluded — a callee
// mutating its own fresh struct is not shared state). It then scans
// the spawning function's top-level statements with a three-state
// machine:
//
//	pre   — before any spawn: accesses are initialization, exempt
//	        (happens-before the goroutine via the go statement);
//	live  — after a spawn: any access to a write-set location is
//	        diagnosed, unless both sides hold a common mutex;
//	synced — after a barrier: a WaitGroup.Wait, channel op,
//	        default-less select, or a static call that transitively
//	        blocks (CallGraph.MayBlock). The barrier is treated as the
//	        join edge; later accesses are exempt.
//
// Mutex acquisition is deliberately NOT a barrier — taking a lock in
// the continuation orders nothing unless the goroutine takes the same
// lock, which is exactly the common-guard exemption. Interface and
// dynamic calls inside the spawned tree are skipped (may-analysis:
// the screen reports only what it can prove is written), and a
// statement containing both a spawn and a barrier is treated as
// internally joined. This is a screen, not a proof — the dynamic
// -race chaos suites remain the backstop (docs/ROBUSTNESS.md).
//
// A justified exception takes //mclegal:sharedwrite <why> on the line.
package sharedwrite

import (
	"fmt"
	"go/token"
	"go/types"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// Analyzer is the static race screen.
var Analyzer = &framework.Analyzer{
	Name:      "sharedwrite",
	Doc:       "flag unguarded continuation accesses to locations a live spawned goroutine writes (suppress with //mclegal:sharedwrite)",
	Run:       run,
	Scope:     scope.ConcurrencyScope,
	Directive: "sharedwrite",
	Example:   "//mclegal:sharedwrite the workers write disjoint index ranges; the race detector runs this path in CI",
}

type finding struct {
	pkg *types.Package
	pos token.Pos
	msg string
}

type raceState struct {
	findings []finding
}

func state(prog *framework.Program) (*raceState, error) {
	v, err := prog.CacheLoad("sharedwrite", func() (any, error) { return computeState(prog) })
	if err != nil {
		return nil, err
	}
	return v.(*raceState), nil
}

func computeState(prog *framework.Program) (*raceState, error) {
	cg, err := prog.CallGraph()
	if err != nil {
		return nil, err
	}
	mayBlock := cg.MayBlock()
	st := &raceState{}
	fset := prog.Fset()
	for _, n := range cg.Nodes() {
		if n.External() || n.Pkg == nil || !framework.PathMatchesAny(n.Pkg.Path, scope.ConcurrencyScope) {
			continue
		}
		if len(n.Conc().Spawns) == 0 {
			continue
		}
		st.screen(cg, mayBlock, fset, n)
	}
	return st, nil
}

// writeSet is the locations a spawn's call tree writes, each with the
// intersection of guard sets across its inside writes (nil once any
// inside write is unguarded).
type writeSet map[*types.Var]framework.GuardSet

func (ws writeSet) add(v *types.Var, held framework.GuardSet) {
	have, seen := ws[v]
	if !seen {
		ws[v] = held.Clone()
		return
	}
	for m, mode := range have {
		got, ok := held[m]
		if !ok {
			delete(have, m)
		} else if got < mode {
			have[m] = got
		}
	}
}

// collectWrites accumulates the write set of one spawned body: its
// direct non-fresh writes, plus the non-fresh field writes of its
// static callees, transitively.
func collectWrites(cg *framework.CallGraph, ws writeSet, body *framework.ConcSummary, visited map[*framework.Node]bool) {
	for _, a := range body.Accesses {
		if a.Write && !a.Fresh {
			ws.add(a.Obj, a.Held)
		}
	}
	for _, call := range body.Calls {
		collectCalleeWrites(cg, ws, cg.Node(call.Callee), visited)
	}
	for _, sp := range body.Spawns {
		if sp.Body != nil {
			collectWrites(cg, ws, sp.Body, visited)
		} else if sp.Callee != nil {
			collectCalleeWrites(cg, ws, cg.Node(sp.Callee), visited)
		}
	}
}

// collectCalleeWrites adds a callee's transitive non-fresh FIELD
// writes (its locals are its own frame; only fields outlive the call).
func collectCalleeWrites(cg *framework.CallGraph, ws writeSet, n *framework.Node, visited map[*framework.Node]bool) {
	if n == nil || n.External() || visited[n] {
		return
	}
	visited[n] = true
	c := n.Conc()
	for _, a := range c.Accesses {
		if a.Write && !a.Fresh && a.Obj.IsField() {
			ws.add(a.Obj, a.Held)
		}
	}
	for _, call := range c.Calls {
		collectCalleeWrites(cg, ws, cg.Node(call.Callee), visited)
	}
	for _, sp := range c.AllSpawns() {
		if sp.Body != nil {
			collectWrites(cg, ws, sp.Body, visited)
		}
	}
}

// screen runs the pre/live/synced statement machine over one spawning
// function.
func (st *raceState) screen(cg *framework.CallGraph, mayBlock map[*framework.Node]*framework.BlockWitness, fset *token.FileSet, n *framework.Node) {
	c := n.Conc()
	in := func(pos, lo, hi token.Pos) bool { return pos >= lo && pos <= hi }

	live := false
	var liveWrites writeSet
	var liveSpawn token.Pos
	for _, stmt := range n.Decl.Body.List {
		lo, hi := stmt.Pos(), stmt.End()

		barrier := false
		for _, b := range c.Blocks {
			if b.Kind != framework.BlockLock && in(b.Pos, lo, hi) {
				barrier = true
				break
			}
		}
		if !barrier {
			for _, call := range c.Calls {
				if in(call.Pos, lo, hi) && mayBlock[cg.Node(call.Callee)] != nil {
					barrier = true
					break
				}
			}
		}

		var spawned []*framework.SpawnSite
		for _, sp := range c.Spawns {
			if in(sp.Pos, lo, hi) {
				spawned = append(spawned, sp)
			}
		}

		if barrier {
			// The barrier is the join edge; a statement that both
			// spawns and blocks (a whole pool setup in one block) is
			// treated as internally joined.
			live = false
			liveWrites = nil
			continue
		}
		if live {
			for _, a := range c.Accesses {
				if !in(a.Pos, lo, hi) {
					continue
				}
				guards, written := liveWrites[a.Obj]
				if !written {
					continue
				}
				if commonGuard(a.Held, guards) {
					continue
				}
				kind := "read"
				if a.Write {
					kind = "write"
				}
				st.findings = append(st.findings, finding{
					pkg: n.Pkg.Types,
					pos: a.Pos,
					msg: fmt.Sprintf("%s of %s races the goroutine spawned at line %d, which writes it with no common guard and no join in between; join first, guard both sides, or justify with //mclegal:sharedwrite <why>",
						kind, a.Obj.Name(), fset.Position(liveSpawn).Line),
				})
			}
		}
		if len(spawned) > 0 {
			if !live {
				liveWrites = make(writeSet)
				liveSpawn = spawned[0].Pos
			}
			live = true
			for _, sp := range spawned {
				visited := make(map[*framework.Node]bool)
				if sp.Body != nil {
					collectWrites(cg, liveWrites, sp.Body, visited)
				} else if sp.Callee != nil {
					collectCalleeWrites(cg, liveWrites, cg.Node(sp.Callee), visited)
				}
				// Dynamic spawn targets contribute nothing: goleak
				// already fails closed on them.
			}
		}
	}
}

// commonGuard reports whether the continuation access and every inside
// write hold at least one mutex in common.
func commonGuard(outside, inside framework.GuardSet) bool {
	for m := range inside {
		if outside.Holds(m, framework.GuardRead) {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	st, err := state(pass.Prog)
	if err != nil {
		return err
	}
	for _, f := range st.findings {
		if f.pkg != pass.Pkg {
			continue
		}
		if pass.Suppressed("sharedwrite", f.pos) {
			continue
		}
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}
