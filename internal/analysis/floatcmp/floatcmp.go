// Package floatcmp flags == and != on floating-point operands in the
// metric-critical packages (geom, curve, eval). Exact float equality
// is almost always a latent bug there: metric values feed the
// benchmark trajectory and gate checks, where representation noise
// must be absorbed by an explicit epsilon.
//
// Comparisons inside the approved epsilon helpers — functions whose
// name starts with "Approx" (geom.ApproxEq, geom.ApproxZero) — are
// exempt; anything else needs a //mclegal:floatcmp <why> directive
// (e.g. an intentional bit-exactness check).
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// Analyzer is the floatcmp check.
var Analyzer = &framework.Analyzer{
	Name:      "floatcmp",
	Doc:       "flag ==/!= on float operands outside Approx* epsilon helpers (suppress with //mclegal:floatcmp)",
	Run:       run,
	Scope:     scope.FloatCritical,
	Directive: "floatcmp",
	Example:   "//mclegal:floatcmp comparing against the exact sentinel value the same function stored",
}

func run(pass *framework.Pass) error {
	if !framework.PathMatchesAny(pass.Pkg.Path(), scope.FloatCritical) {
		return nil
	}
	for _, f := range pass.Files {
		// Body ranges of the approved helpers, skipped wholesale.
		var approved [][2]token.Pos
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && strings.HasPrefix(fd.Name.Name, "Approx") {
				approved = append(approved, [2]token.Pos{fd.Body.Pos(), fd.Body.End()})
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
				return true
			}
			for _, r := range approved {
				if be.Pos() >= r[0] && be.Pos() < r[1] {
					return true
				}
			}
			if pass.Suppressed("floatcmp", be.Pos()) {
				return true
			}
			pass.Reportf(be.Pos(),
				"%s on floating-point operands in %s: use an Approx* epsilon helper (geom.ApproxEq) or justify with //mclegal:floatcmp <why>",
				be.Op, pass.Pkg.Path())
			return true
		})
	}
	return nil
}

func isFloat(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
