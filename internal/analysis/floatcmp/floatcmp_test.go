package floatcmp_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, "../testdata", floatcmp.Analyzer,
		"floatcmp/internal/geom", "floatcmp/internal/other")
}
