// Package analysistest runs an analyzer over golden fixture packages
// and compares its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the in-tree
// framework.
//
// A fixture line expecting a diagnostic carries a trailing comment of
// the form
//
//	// want "regexp" `another regexp`
//
// with one Go string literal per expected diagnostic on that line.
// Every diagnostic must be matched by a want and every want must be
// matched by a diagnostic, or the test fails.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mclegal/internal/analysis/framework"
)

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package under testdata/src and checks the
// analyzer's diagnostics against the // want comments. Each path is
// its own single-package program; use RunGroup for analyses that need
// several fixture packages in one program.
func Run(t *testing.T, testdata string, a *framework.Analyzer, paths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	for _, path := range paths {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			t.Helper()
			ld := framework.NewLoader("", "")
			ld.FixtureRoot = src
			prog, err := framework.LoadProgram(ld, []string{path})
			if err != nil {
				t.Fatalf("loading fixture %s: %v", path, err)
			}
			checkProgram(t, prog, a)
		})
	}
}

// RunGroup loads all fixture paths as ONE program and checks the
// analyzer's diagnostics against the // want comments of every
// package. Cross-package analyses (noalloc's call-graph walk) need the
// whole group in a single types.Object universe, exactly as
// mclegal-vet loads the real module.
func RunGroup(t *testing.T, testdata string, a *framework.Analyzer, paths ...string) {
	t.Helper()
	ld := framework.NewLoader("", "")
	ld.FixtureRoot = filepath.Join(testdata, "src")
	prog, err := framework.LoadProgram(ld, paths)
	if err != nil {
		t.Fatalf("loading fixture group %v: %v", paths, err)
	}
	checkProgram(t, prog, a)
}

// checkProgram runs the analyzer over the program and matches every
// diagnostic against the fixtures' // want comments, both ways.
func checkProgram(t *testing.T, prog *framework.Program, a *framework.Analyzer) {
	t.Helper()
	diags, err := prog.Run([]*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	var wants []*want
	for _, pkg := range prog.Pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	fset := prog.Fset()
diagLoop:
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				continue diagLoop
			}
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// collectWants extracts the // want expectations from every fixture
// file.
func collectWants(t *testing.T, pkg *framework.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				out = append(out, parseWant(t, pkg, c)...)
			}
		}
	}
	return out
}

func parseWant(t *testing.T, pkg *framework.Package, c *ast.Comment) []*want {
	t.Helper()
	text, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*want
	rest := strings.TrimSpace(text)
	for rest != "" {
		lit, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed // want comment: %q", pos, c.Text)
		}
		pattern, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: malformed // want literal %s: %v", pos, lit, err)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s: bad // want regexp %q: %v", pos, pattern, err)
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: lit})
		rest = strings.TrimSpace(rest[len(lit):])
	}
	return out
}
