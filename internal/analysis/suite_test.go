package analysis_test

import (
	"path/filepath"
	"testing"

	"mclegal/internal/analysis"
	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// TestSuiteCleanOnScopedPackages runs the full analyzer suite over
// every real package any analyzer scopes itself to, asserting zero
// diagnostics. This keeps plain `go test ./...` enforcing the
// invariants even where `make lint` is not run.
func TestSuiteCleanOnScopedPackages(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	ld := framework.NewLoader("mclegal", root)
	seen := make(map[string]bool)
	var paths []string
	for _, set := range [][]string{scope.DeterministicCore, scope.FloatCritical, scope.GateBoundary} {
		for _, p := range set {
			full := "mclegal/" + p
			if !seen[full] {
				seen[full] = true
				paths = append(paths, full)
			}
		}
	}
	for _, path := range paths {
		pkg, err := ld.LoadTarget(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := framework.RunAnalyzers(pkg, analysis.All())
		if err != nil {
			t.Fatalf("running suite on %s: %v", path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
