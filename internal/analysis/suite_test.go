package analysis_test

import (
	"path/filepath"
	"sort"
	"testing"

	"mclegal/internal/analysis"
	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// loadScopedProgram loads every real package any analyzer scopes
// itself to as ONE program: cross-package analyses (the noalloc
// hot-path proof) need all bodies in a single types.Object universe,
// and a shared load is what mclegal-vet does too.
func loadScopedProgram(t *testing.T) *framework.Program {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	ld := framework.NewLoader("mclegal", root)
	seen := make(map[string]bool)
	var paths []string
	for _, set := range [][]string{
		scope.DeterministicCore,
		scope.FloatCritical,
		scope.GateBoundary,
		scope.CancellationAware,
		scope.HotPathClosure,
		scope.ConcurrencyScope,
		scope.WriteEffectClosure,
	} {
		for _, p := range set {
			full := "mclegal/" + p
			if !seen[full] {
				seen[full] = true
				paths = append(paths, full)
			}
		}
	}
	sort.Strings(paths)
	prog, err := framework.LoadProgram(ld, paths)
	if err != nil {
		t.Fatalf("loading scoped program: %v", err)
	}
	return prog
}

// TestSuiteCleanOnScopedPackages runs the full analyzer suite over
// every real package any analyzer scopes itself to, asserting zero
// diagnostics. This keeps plain `go test ./...` enforcing the
// invariants even where `make lint` is not run.
func TestSuiteCleanOnScopedPackages(t *testing.T) {
	prog := loadScopedProgram(t)
	diags, err := prog.Run(analysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", prog.Fset().Position(d.Pos), d.Analyzer, d.Message)
	}
}
