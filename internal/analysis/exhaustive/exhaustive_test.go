package exhaustive_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/exhaustive"
)

// The fixture packages load as one program so the facade package sees
// the enum's declaring package in-program (the value-based coverage
// path).
func TestExhaustive(t *testing.T) {
	analysistest.RunGroup(t, "../testdata", exhaustive.Analyzer,
		"exhaustive/internal/stage", "exhaustive/internal/other")
}
