// Package exhaustive enforces that value switches over the repo's
// enum-like constant sets either cover every member or say why not
// with an explicit default. A switch that silently ignores a member is
// how a new RecoveryPolicy or run Status slips through a reporting
// path unrendered (the bug class fixed in stage.GateReport.String and
// cmd/legalize's exit-code mapping).
//
// Two shapes count as an enum:
//
//   - A named type declared in this module with at least two
//     package-level constants of that exact type in its declaring
//     package (Status, RecoveryPolicy, curve.Kind). Coverage is
//     checked by constant value, so facade re-exports
//     (mclegal.StatusRecovered = stage.StatusRecovered) count as
//     covering the underlying member.
//   - A single `const (...)` declaration group of basic-typed
//     constants (the stage name and gate action string groups). A
//     switch whose cases all name members of one group must cover the
//     whole group.
//
// A default clause — even an empty one — opts the switch out: it is
// the author's statement that the remainder is handled. Suppress a
// finding with //mclegal:exhaustive <why> on the switch line or the
// line above.
package exhaustive

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"mclegal/internal/analysis/framework"
)

// Analyzer is the exhaustive check.
var Analyzer = &framework.Analyzer{
	Name:      "exhaustive",
	Doc:       "switches over enum-like constant sets must cover all members or carry a default (suppress with //mclegal:exhaustive)",
	Run:       run,
	Directive: "exhaustive",
	Example:   "//mclegal:exhaustive the remaining members are wire-only states this switch can never receive",
}

// member is one enum constant: the declared object plus its value for
// cross-package (facade re-export) coverage matching.
type member struct {
	name string
	val  constant.Value
}

// groups indexes every multi-constant `const (...)` declaration in the
// program, built once and shared across passes.
type groups struct {
	of map[*types.Const][]member // const object -> its group's members
	id map[*types.Const]int      // const object -> group identity
}

func run(pass *framework.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	gs, err := constGroups(pass.Prog)
	if err != nil {
		return err
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, gs, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *framework.Pass, gs *groups, sw *ast.SwitchStmt) {
	var caseVals []constant.Value
	var caseConsts []*types.Const
	for _, s := range sw.Body.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause opts the switch out
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: coverage is not decidable
			}
			caseVals = append(caseVals, tv.Value)
			caseConsts = append(caseConsts, constObj(pass.TypesInfo, e))
		}
	}
	if len(caseVals) == 0 {
		return
	}

	members, what := namedEnum(pass, sw.Tag)
	if members == nil {
		members, what = caseGroup(gs, caseConsts)
	}
	if members == nil {
		return
	}
	var missing []string
	for _, m := range members {
		covered := false
		for _, v := range caseVals {
			if constant.Compare(m.val, token.EQL, v) {
				covered = true
				break
			}
		}
		if !covered {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	if pass.Suppressed("exhaustive", sw.Switch) {
		return
	}
	pass.Reportf(sw.Switch, "switch over %s is missing cases %s; add them or an explicit default",
		what, strings.Join(missing, ", "))
}

// namedEnum returns the members of the switch tag's type when that
// type is an in-program named enum: at least two package-level
// constants of the exact type in its declaring package.
func namedEnum(pass *framework.Pass, tag ast.Expr) ([]member, string) {
	tv, ok := pass.TypesInfo.Types[tag]
	if !ok || !tv.IsValue() {
		return nil, ""
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, ""
	}
	if pass.Prog.PackageFor(named.Obj().Pkg()) == nil {
		return nil, "" // not declared in this program: not ours to police
	}
	var members []member
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), tv.Type) {
			continue
		}
		members = append(members, member{name: c.Name(), val: c.Val()})
	}
	if len(members) < 2 {
		return nil, ""
	}
	return members, named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// caseGroup returns the group members when every case expression names
// a constant and all of them belong to the same multi-constant
// declaration group.
func caseGroup(gs *groups, caseConsts []*types.Const) ([]member, string) {
	var members []member
	id := -1
	for _, c := range caseConsts {
		if c == nil {
			return nil, ""
		}
		g, ok := gs.id[c]
		if !ok || (id != -1 && g != id) {
			return nil, ""
		}
		id = g
		members = gs.of[c]
	}
	if members == nil {
		return nil, ""
	}
	return members, "the " + members[0].name + " constant group"
}

// constObj resolves a case expression to the constant object it names,
// or nil for literals and expressions.
func constObj(info *types.Info, e ast.Expr) *types.Const {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, _ := info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := info.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}

func constGroups(prog *framework.Program) (*groups, error) {
	v, err := prog.CacheLoad("exhaustive-groups", func() (any, error) {
		gs := &groups{of: make(map[*types.Const][]member), id: make(map[*types.Const]int)}
		next := 0
		for _, pkg := range prog.Pkgs {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					gd, ok := d.(*ast.GenDecl)
					if !ok || gd.Tok != token.CONST {
						continue
					}
					var objs []*types.Const
					var members []member
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							c, ok := pkg.Info.Defs[name].(*types.Const)
							if !ok || c.Name() == "_" {
								continue
							}
							objs = append(objs, c)
							members = append(members, member{name: c.Name(), val: c.Val()})
						}
					}
					if len(objs) < 2 {
						continue
					}
					for _, c := range objs {
						gs.of[c] = members
						gs.id[c] = next
					}
					next++
				}
			}
		}
		return gs, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*groups), nil
}
