package analysis_test

import (
	"go/types"
	"testing"

	"mclegal/internal/analysis/goleak"
)

// TestGoleakRootsMatchLeakTests pins the static goroutine-lifetime
// proof to the dynamic leak tests, the way
// TestHotPathRootsMatchDynamicProof pins noalloc to the AllocsPerRun
// benchmarks. Every spawn site goleak inventories must live in a
// function with a named dynamic witness — a leak test that counts
// goroutines across the spawn/join cycle, or (for the one daemon) the
// lifecycle test that drives the shutdown path end to end:
//
//	(*mgl.Legalizer).startPool   — mgl.TestPoolShutdownNoGoroutineLeak
//	(*stage.ShardedPipeline).Run — stage.TestShardedRunNoGoroutineLeak
//	mclegald run                 — mclegald.TestServeAndGracefulShutdown
//	                               (daemon: joined only on the
//	                               signal-driven shutdown path)
//
// Both directions are checked: a witnessed function that stops
// spawning means the dynamic test exercises nothing; a spawn site
// outside the witnessed set means a goroutine with no leak test
// behind its static proof. Adding a spawn site to the concurrency
// scope requires adding its leak test here.
func TestGoleakRootsMatchLeakTests(t *testing.T) {
	prog := loadScopedProgram(t)
	spawns, err := goleak.Spawns(prog)
	if err != nil {
		t.Fatalf("collecting spawn inventory: %v", err)
	}
	if len(spawns) == 0 {
		t.Fatal("no spawn sites inventoried; the goleak analyzer is proving nothing")
	}

	anchors := []struct {
		pkg, typ, fn string
		daemon       bool
		witness      string
	}{
		{"mclegal/internal/mgl", "Legalizer", "startPool", false, "mgl.TestPoolShutdownNoGoroutineLeak"},
		{"mclegal/internal/stage", "ShardedPipeline", "Run", false, "stage.TestShardedRunNoGoroutineLeak"},
		{"mclegal/cmd/mclegald", "", "run", true, "mclegald.TestServeAndGracefulShutdown"},
	}

	witnessed := make(map[*types.Func]int) // anchor func -> index
	for i, a := range anchors {
		pkg := prog.Package(a.pkg)
		if pkg == nil {
			t.Fatalf("%s not in the scoped program", a.pkg)
		}
		var fn *types.Func
		if a.typ == "" {
			fn, _ = pkg.Types.Scope().Lookup(a.fn).(*types.Func)
		} else {
			tn, _ := pkg.Types.Scope().Lookup(a.typ).(*types.TypeName)
			if tn == nil {
				t.Fatalf("%s.%s not found", a.pkg, a.typ)
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pkg.Types, a.fn)
			fn, _ = obj.(*types.Func)
		}
		if fn == nil {
			t.Fatalf("%s: anchor %s.%s not found", a.witness, a.typ, a.fn)
		}
		witnessed[fn] = i

		found := false
		for _, sp := range spawns {
			if sp.Fn != fn {
				continue
			}
			found = true
			if sp.Daemon != a.daemon {
				t.Errorf("%s: spawn at %s has daemon=%v, want %v (witness %s)",
					fn.FullName(), prog.Fset().Position(sp.Pos), sp.Daemon, a.daemon, a.witness)
			}
		}
		if !found {
			t.Errorf("%s no longer spawns; its leak test %s exercises nothing — update the anchor table",
				fn.FullName(), a.witness)
		}
	}

	for _, sp := range spawns {
		if _, ok := witnessed[sp.Fn]; !ok {
			t.Errorf("spawn at %s (in %s) has no dynamic leak-test witness; add the leak test and its anchor here",
				prog.Fset().Position(sp.Pos), sp.Fn.FullName())
		}
	}
}
