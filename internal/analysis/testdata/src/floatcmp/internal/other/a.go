// Package other is outside the float-critical set, so floatcmp must
// stay silent here.
package other

func Eq(a, b float64) bool {
	return a == b
}
