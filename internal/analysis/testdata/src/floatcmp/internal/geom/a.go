package geom

const eps = 1e-9

func Bad(a, b float64) bool {
	return a == b // want `== on floating-point operands`
}

func BadNeq(a, b float64) bool {
	return a != b // want `!= on floating-point operands`
}

func BadFloat32(a, b float32) bool {
	return a == b // want `== on floating-point operands`
}

// ApproxEq is an approved epsilon helper: exact comparisons inside
// Approx* bodies are the fast path of the tolerance check itself.
func ApproxEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func Ints(a, b int) bool {
	return a == b
}

func Justified(a float64) bool {
	//mclegal:floatcmp zero is an exact sentinel assigned, never computed
	return a == 0
}
