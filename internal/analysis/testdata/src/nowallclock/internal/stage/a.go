package stage

import (
	"math/rand" // want `import of math/rand in deterministic package`
	"time"
)

func Timestamp() time.Time {
	return time.Now() // want `time.Now in deterministic package`
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in deterministic package`
}

func Justified() time.Duration {
	//mclegal:wallclock observability-only timing, never influences placement
	start := time.Now()
	return time.Since(start) //mclegal:wallclock observability-only timing
}

func Roll() int {
	return rand.Intn(6)
}

func racySelect(a, b chan int) int {
	select { // want `select with 2 communication cases in deterministic package`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func okSelect(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
