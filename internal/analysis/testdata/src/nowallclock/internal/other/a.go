// Package other is outside the deterministic core, so nowallclock must
// stay silent here.
package other

import "time"

func Timestamp() time.Time {
	return time.Now()
}
