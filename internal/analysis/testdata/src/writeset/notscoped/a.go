// An exported undeclared mutator outside scope.DeterministicCore:
// writeset must stay silent here.
package notscoped

import "writeset/internal/model"

func Shuffle(d *model.Design) {
	d.Cells[0].X = 9
}
