// Fixture twin of internal/model: the writeloc vocabulary tracks Cell
// (X/Y -> design.xy, the rest -> design.meta) and Design (Cells ->
// design.meta+design.xy) by package-path suffix, so this package is
// resolved exactly like the real one.
package model

type Cell struct {
	X, Y int
	Name string
}

type Design struct {
	Cells []Cell
}
