// Fixture for the writeset analyzer: correctly declared entrypoints,
// a missing declaration, a stale one, a bare justification, an unknown
// location name, an unprovable dynamic call with its justified and
// bare-suppression twins, and non-entrypoints the analyzer must skip.
package mgl

import "writeset/internal/model"

// Legalize commits new positions for every cell.
//
//mclegal:writes design.xy legalization moves cells to legal sites
func Legalize(d *model.Design) {
	for i := range d.Cells {
		d.Cells[i].X++
	}
}

// Engine mutates the design it was built around through its receiver.
type Engine struct{ d *model.Design }

// Run commits positions through the engine's design.
//
//mclegal:writes design.xy the engine owns the design it legalizes
func (e *Engine) Run() {
	e.d.Cells[0].X = 1
}

// Rename mutates cell metadata but declares nothing.
func Rename(d *model.Design) { // want "carries no //mclegal:writes declaration"
	d.Cells[0].Name = "renamed"
}

// Stale declares coordinates but nowadays only touches metadata.
//
//mclegal:writes design.xy justification rotted along with the code
func Stale(d *model.Design) { // want "stale //mclegal:writes"
	d.Cells[0].Name = "renamed"
}

// Gone declares a write set but provably writes nothing.
//
//mclegal:writes design.xy leftover from a removed mutation
func Gone(d *model.Design) {} // want "provable write set is nothing"

// NoWhy declares the right locations without saying why.
//
//mclegal:writes design.meta
func NoWhy(d *model.Design) { // want "missing a justification"
	d.Cells[0].Name = "renamed"
}

// BadLoc declares a location the vocabulary does not define.
//
//mclegal:writes design.zz typo for design.xy
func BadLoc(d *model.Design) { // want "unknown location"
	d.Cells[0].X = 1
}

// Hook hands control to an opaque caller hook: unprovable.
func Hook(d *model.Design, f func()) {
	f() // want "unprovable"
}

// HookJustified is the same shape with its why on record.
func HookJustified(d *model.Design, f func()) {
	//mclegal:writeset the hook receives no resident state to mutate
	f()
}

// HookBare suppresses without a justification.
func HookBare(d *model.Design, f func()) {
	//mclegal:writeset
	f() // want "missing a justification"
}

// fresh builds and fills its own design: unexported helpers are not
// entrypoints, and constructor writes drop from summaries anyway.
func fresh() *model.Design {
	d := &model.Design{Cells: make([]model.Cell, 2)}
	d.Cells[0].X = 4
	return d
}

// Build is an exported entrypoint with a provably empty write set: no
// declaration required.
func Build() *model.Design { return fresh() }

// helper is unexported, so its exported method is not an entrypoint.
type helper struct{}

func (h helper) Mutate(d *model.Design) { d.Cells[0].Y = 2 }
