// Fixture twin of internal/model for the aliasleak analyzer: Design
// reaches resident state, and Clone is the laundering boundary.
package model

type Cell struct {
	X, Y int
	Name string
}

type Design struct {
	Cells []Cell
}

// Clone returns a deep private copy of d.
func (d *Design) Clone() *Design {
	c := &Design{Cells: make([]Cell, len(d.Cells))}
	copy(c.Cells, d.Cells)
	return c
}

// Count is a provably read-only helper.
func (d *Design) Count() int { return len(d.Cells) }
