// Fixture for the aliasleak analyzer: every escape channel of a
// store-resident design (return, field store, global store, goroutine
// capture, mutating/unprovable/dynamic callees), the clean clone-in/
// clone-out shapes that must stay silent, and the suppression paths.
package serve

import "aliasleak/internal/model"

// Server holds resident designs, immutable once stored.
type Server struct {
	designs map[string]*model.Design
	last    *model.Design
}

var published *model.Design

// Lookup leaks the resident pointer across the clone boundary.
func (s *Server) Lookup(name string) *model.Design {
	d := s.designs[name]
	return d // want "returns an interior pointer"
}

// LookupClone launders correctly.
func (s *Server) LookupClone(name string) *model.Design {
	d := s.designs[name]
	return d.Clone()
}

// FirstCell leaks an interior pointer derived from the resident.
func (s *Server) FirstCell(name string) *model.Cell {
	d := s.designs[name]
	return &d.Cells[0] // want "returns an interior pointer"
}

// Cache parks the resident pointer in a field that outlives the
// request.
func (s *Server) Cache(name string) {
	s.last = s.designs[name] // want "stores a resident design pointer into field"
}

// Publish parks it in a package-level variable.
func (s *Server) Publish(name string) {
	published = s.designs[name] // want "package-level"
}

// Spawn captures the resident pointer in a goroutine.
func (s *Server) Spawn(name string, out chan<- int) {
	d := s.designs[name]
	go func() {
		out <- len(d.Cells) // want "goroutine captures"
	}()
}

// Hand passes the resident pointer to a spawned call.
func (s *Server) Hand(name string, sink func(*model.Design)) {
	d := s.designs[name]
	go sink(d) // want "passes a resident design pointer to a goroutine"
}

// Touch hands the resident design to a callee that mutates it.
func (s *Server) Touch(name string) {
	bump(s.designs[name]) // want "writes .* through parameter"
}

func bump(d *model.Design) { d.Cells[0].X++ }

// Size hands it to a provably read-only callee: fine.
func (s *Server) Size(name string) int {
	d := s.designs[name]
	return d.Count()
}

// Apply hands it through a dynamic call: unprovable.
func (s *Server) Apply(name string, f func(*model.Design)) {
	d := s.designs[name]
	f(d) // want "dynamic call"
}

// All leaks resident pointers through a range + append chain.
func (s *Server) All() []*model.Design {
	var out []*model.Design
	for _, d := range s.designs {
		out = append(out, d)
	}
	return out // want "returns an interior pointer"
}

// Peek is Lookup with its why on record.
func (s *Server) Peek(name string) *model.Design {
	d := s.designs[name]
	//mclegal:aliasleak the fixture proves justified reads of the store stay allowed
	return d
}

// PeekBare suppresses without a justification.
func (s *Server) PeekBare(name string) *model.Design {
	d := s.designs[name]
	//mclegal:aliasleak
	return d // want "missing a justification"
}

// AddClone is the store's own clone-in path: storing into the store
// map is not an escape, and the stored value is a private copy.
func (s *Server) AddClone(name string, d *model.Design) {
	s.designs[name] = d.Clone()
}
