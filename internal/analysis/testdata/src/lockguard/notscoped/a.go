// Unguarded mixed access outside scope.ConcurrencyScope: lockguard
// must stay silent here (no want comments in this file).
package notscoped

import "sync"

type loose struct {
	mu sync.Mutex
	n  int
}

func (l *loose) guarded() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
}

func (l *loose) guardedToo() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
}

func (l *loose) stray() int { return l.n }
