// Fixture for the lockguard analyzer: majority guard inference, the
// caller-holds-the-lock helper idiom, RWMutex read/write modes,
// constructor freshness, blocking-under-lock, and the suppression
// directive.
package serve

import "sync"

// --- guard inference: one stray access breaks the majority rule ----

type tally struct {
	mu sync.Mutex
	n  int
}

func (t *tally) inc() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
}

func (t *tally) read() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

func (t *tally) racy() int {
	return t.n // want `read of n without mu, its inferred guard`
}

// --- freshness: constructor init is not a guarded access -----------

func newTally() *tally {
	t := &tally{}
	t.n = 1
	return t
}

// --- helper idiom: every caller holds the lock, so the helper's
// unannotated access inherits it -----------------------------------

type box struct {
	mu sync.Mutex
	v  int
}

func (b *box) locked() { b.v++ }

func (b *box) Set() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.locked()
	b.v = 1
}

func (b *box) Set2() {
	b.mu.Lock()
	b.locked()
	b.mu.Unlock()
}

// --- RWMutex: a write needs the write lock -------------------------

type cache struct {
	mu sync.RWMutex
	m  map[string]int
}

func (c *cache) put(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v
}

func (c *cache) get(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[k]
}

func (c *cache) sneaky(k string, v int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.m[k] = v // want `holds only the read lock`
}

// --- blocking under a lock -----------------------------------------

type pump struct {
	mu  sync.Mutex
	out chan int
}

func (p *pump) push(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.out <- v // want `channel send while holding mu`
}

func (p *pump) drain() {
	for range p.out {
	}
}

func (p *pump) bad() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drain() // want `may block \(channel receive in drain\) while holding mu`
}

func (p *pump) dead() {
	p.mu.Lock()
	p.mu.Lock() // want `self-deadlock`
	p.mu.Unlock()
	p.mu.Unlock()
}

// --- suppression ----------------------------------------------------

func (p *pump) justified(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	//mclegal:lockguard the channel is buffered one full batch deep, the send never blocks
	p.out <- v
}

func (p *pump) bare(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	//mclegal:lockguard
	p.out <- v // want `missing a justification`
}
