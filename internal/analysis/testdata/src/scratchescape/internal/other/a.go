// Package other declares no scratch type, so scratchescape must stay
// silent even for patterns that would be escapes elsewhere.
package other

type buffers struct{ vals []int }

var sink []int

func Store(b *buffers) {
	sink = b.vals
}
