package mgl

type move struct{ id, x, y int }

// scratch mirrors the pooled evaluation scratch of internal/mgl: its
// slice fields are recycled through a sync.Pool, so aliases must not
// survive past the evaluation boundary.
type scratch struct {
	moves     []move
	bestMoves []move
	reps      []int
}

type result struct{ moves []move }

var leaked []move

func storeGlobal(sc *scratch) {
	leaked = sc.moves // want `scratch buffer sc\.moves is aliased past the evaluation boundary`
}

func storeThroughPointer(sc *scratch, r *result) {
	r.moves = sc.moves // want `scratch buffer sc\.moves is aliased past the evaluation boundary`
}

func sendOnChannel(sc *scratch, ch chan []move) {
	ch <- sc.moves // want `scratch buffer sc\.moves sent on a channel`
}

func ExportedReturn(sc *scratch) []move {
	return sc.moves // want `scratch buffer sc\.moves returned from exported ExportedReturn`
}

func appendElement(sc *scratch) [][]move {
	var rows [][]move
	rows = append(rows, sc.moves) // want `scratch buffer sc\.moves appended as an element`
	return rows
}

func launderedThroughLocal(sc *scratch, r *result) {
	m := sc.moves
	r.moves = m // want `scratch buffer m is aliased past the evaluation boundary`
}

func launderedSlice(sc *scratch, r *result) {
	m := sc.moves[:1]
	r.moves = m[1:] // want `scratch buffer m\[1:\] is aliased past the evaluation boundary`
}

// good exercises every legal pattern from the three-stage ownership
// rule: spread copies, growth written back into the scratch, aliases
// confined to locals and local value structs.
func good(sc *scratch, r *result) {
	r.moves = append(r.moves[:0], sc.moves...)
	sc.bestMoves = append(sc.bestMoves[:0], sc.moves...)

	local := sc.moves[:0]
	local = append(local, move{})
	sc.moves = local

	var res result
	res.moves = sc.moves
	_ = res

	sc.reps = sc.reps[:0]
}

// goodReturn is the intra-boundary helper idiom: unexported callees may
// hand scratch-owned slices back to their (scratch-owning) caller.
func goodReturn(sc *scratch) []move {
	return sc.moves
}

func justified(sc *scratch, r *result) {
	//mclegal:escape caller copies r.moves before the scratch is released
	r.moves = sc.moves
}
