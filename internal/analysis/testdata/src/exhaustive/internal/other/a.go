// Fixture proving value-based coverage: a facade's re-exported
// constant (a distinct object with the same value) covers the
// underlying member, and a facade switch missing a member is still
// caught.
package other

import "exhaustive/internal/stage"

// StatusLegal mirrors the mclegal facade idiom: a new constant of the
// same type and value.
const StatusLegal = stage.StatusLegal

func covered(s stage.Status) string {
	switch s {
	case StatusLegal, stage.StatusRecovered, stage.StatusPartial:
		return "any"
	}
	return "?"
}

func missing(s stage.Status) string {
	switch s { // want `switch over stage.Status is missing cases StatusPartial, StatusRecovered`
	case StatusLegal:
		return "legal"
	}
	return "?"
}
