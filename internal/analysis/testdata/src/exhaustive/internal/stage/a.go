// Fixture for the exhaustive analyzer: named-type enums, const-group
// enums, defaults, suppression, and the missing-justification path.
package stage

type Status int

const (
	StatusLegal Status = iota
	StatusRecovered
	StatusPartial
)

func missingMember(s Status) string {
	switch s { // want `switch over stage.Status is missing cases StatusPartial`
	case StatusLegal:
		return "legal"
	case StatusRecovered:
		return "recovered"
	}
	return "?"
}

func fullCoverage(s Status) string {
	switch s {
	case StatusLegal, StatusRecovered, StatusPartial:
		return "any"
	}
	return "?"
}

func defaulted(s Status) string {
	switch s {
	case StatusLegal:
		return "legal"
	default:
		return "other"
	}
}

const (
	ActionFailed   = "failed"
	ActionFallback = "fallback"
	ActionSkipped  = "skipped"
)

func missingGroupMember(a string) string {
	switch a { // want `switch over the ActionFailed constant group is missing cases ActionSkipped`
	case ActionFailed:
		return "f"
	case ActionFallback:
		return "b"
	}
	return ""
}

func literalCase(a string) string {
	// A case outside the group means this is not an enum switch.
	switch a {
	case ActionFailed, "other":
		return "x"
	}
	return ""
}

func suppressed(s Status) string {
	//mclegal:exhaustive fixture: remainder is handled by the caller
	switch s {
	case StatusLegal:
		return "legal"
	}
	return ""
}

func bareDirective(s Status) string {
	//mclegal:exhaustive
	switch s { // want `//mclegal:exhaustive directive is missing a justification`
	case StatusLegal:
		return "legal"
	}
	return ""
}
