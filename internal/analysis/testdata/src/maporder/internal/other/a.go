// Package other is outside the deterministic core, so maporder must
// stay silent here.
package other

func Sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
