package mgl

// Order-insensitive reductions: legal without collect-then-sort and
// without a directive.

func sumKeys(m map[int]string) int {
	total := 0
	for k := range m {
		total += k
	}
	return total
}

func countAndMask(m map[int]int) (int, int) {
	n, mask := 0, 0
	for _, v := range m {
		n++
		mask |= v
	}
	return n, mask
}

func histogram(m map[string]int) map[int]int {
	hist := make(map[int]int)
	for _, v := range m {
		hist[v]++
	}
	return hist
}

func minMaxBuiltin(m map[int]int) (int, int) {
	lo, hi := 1<<62, -(1 << 62)
	for k := range m {
		lo = min(lo, k)
		hi = max(hi, k)
	}
	return lo, hi
}

func runningMax(m map[int]int) int {
	best := -1
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func setInsertByValue(m map[int]int) map[int]bool {
	seen := make(map[int]bool)
	for _, v := range m {
		seen[v] = true // constant store: colliding cells agree
	}
	return seen
}

func setInsertStruct(m map[int]int) map[int]struct{} {
	seen := make(map[int]struct{})
	for _, v := range m {
		seen[v] = struct{}{}
	}
	return seen
}

func invertByKey(m map[int]int) map[int]int {
	inv := make(map[int]int, len(m))
	for k, v := range m {
		inv[k] = v // keyed by the range key: every cell is distinct
	}
	return inv
}

func xorWithConversion(m map[int]int32) int {
	acc := 0
	for _, v := range m {
		acc ^= int(v) // conversions and len/min/max builtins are pure
	}
	return acc
}

// Still-flagged shapes: the fold looks like a reduction but is not
// provably order-free.

func floatSum(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want `range over map m in deterministic package`
		total += v // float addition is non-associative
	}
	return total
}

func stringConcat(m map[int]string) string {
	s := ""
	for _, v := range m { // want `range over map m in deterministic package`
		s += v // concatenation is not commutative
	}
	return s
}

func prefixSums(m map[int]int) (int, int) {
	x, y := 0, 0
	for k := range m { // want `range over map m in deterministic package`
		x += k
		y += x // reads another accumulator mid-fold: order-dependent
	}
	return x, y
}

func callInOperand(m map[int]int, f func(int) int) int {
	total := 0
	for k := range m { // want `range over map m in deterministic package`
		total += f(k) // f could consume iteration order
	}
	return total
}

func valueKeyedStore(m map[int]int) map[int]int {
	last := make(map[int]int)
	for k, v := range m { // want `range over map m in deterministic package`
		last[v] = k // colliding values keep an order-chosen key
	}
	return last
}

func twoFoldsSameTarget(m map[int]int) int {
	x := 1
	for k := range m { // want `range over map m in deterministic package`
		x += k
		x *= 2 // mixing + and * on one target does not commute
	}
	return x
}
