package mgl

import (
	"slices"
	"sort"
)

func flagged(m map[int]string) int {
	total := 0
	for k := range m { // want `range over map m in deterministic package`
		total = total*31 + k // polynomial hash: order-dependent
	}
	return total
}

func collectThenSort(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func collectThenSlicesSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Float accumulation is not provable (addition is non-associative), so
// the escape hatch is a justified directive.
func justified(m map[int]float64) float64 {
	total := 0.0
	//mclegal:ordered every value is an exact small integer, so float addition is exact and commutative here
	for _, v := range m {
		total += v
	}
	return total
}

func bareDirective(m map[int]float64) float64 {
	total := 0.0
	//mclegal:ordered
	for _, v := range m { // want `//mclegal:ordered directive is missing a justification`
		total += v
	}
	return total
}

type pair struct{ k, v int }

// Appending composite values is not the blessed projection idiom even
// when a sort follows: the loop body could do anything order-dependent.
func compositeAppend(m map[int]int) []pair {
	pairs := make([]pair, 0, len(m))
	for k, v := range m { // want `range over map m in deterministic package`
		pairs = append(pairs, pair{k, v})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	return pairs
}

func collectUnsorted(m map[int]int) []int {
	var keys []int
	for k := range m { // want `range over map m in deterministic package`
		keys = append(keys, k)
	}
	return keys
}
