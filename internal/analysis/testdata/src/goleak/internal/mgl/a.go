// Fixture for the goleak analyzer: joined pool/WaitGroup/result-slot
// shapes are accepted, unjoined, dynamic, external and unserviced
// spawns are diagnosed, and //mclegal:daemon suppresses with a
// mandatory justification.
package mgl

import (
	"fmt"
	"sync"
)

// --- allowed: the PR-3 pool shutdown shape -------------------------

type pool struct {
	work    chan int
	workers sync.WaitGroup
}

func startPool(n int) *pool {
	p := &pool{work: make(chan int, 8)}
	p.workers.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer p.workers.Done()
			for i := range p.work {
				_ = i
			}
		}()
	}
	return p
}

func (p *pool) stop() {
	close(p.work)
	p.workers.Wait()
}

// --- allowed: plain Add/Done/Wait pairing, named worker ------------

func worker(wg *sync.WaitGroup, ch chan int) {
	defer wg.Done()
	for v := range ch {
		_ = v
	}
}

func fanOut(n int) {
	ch := make(chan int)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go worker(&wg, ch)
	}
	close(ch)
	wg.Wait()
}

// --- allowed: result-slot channel drained by the spawner -----------

func compute() error { return nil }

func result() error {
	errc := make(chan error, 1)
	go func() {
		errc <- compute()
	}()
	return <-errc
}

// --- diagnosed: no join handoff at all -----------------------------

func fireAndForget() {
	go func() { // want `not provably joined`
		_ = compute()
	}()
}

// --- diagnosed: dynamic spawn target fails closed ------------------

func spawnValue(f func()) {
	go f() // want `dynamic function value`
}

// --- diagnosed: external callee has no body to prove ---------------

func spawnExternal() {
	go fmt.Println("x") // want `no analyzable body`
}

// --- diagnosed: receive nothing services ---------------------------

func recvForever() {
	idle := make(chan int)
	go func() { // want `nothing in the program sends to or closes`
		<-idle
	}()
}

// --- diagnosed: send nobody outside the goroutine drains -----------

func sendForever() {
	sink := make(chan int)
	go func() { // want `never received outside the goroutine`
		sink <- 1
	}()
	_ = sink
}

// --- suppression: a justified daemon is accepted -------------------

func daemonOK(sigs chan int) {
	//mclegal:daemon lives until process exit, mirrors the mclegald listener
	go func() {
		<-sigs
	}()
}

// --- missing justification: bare daemon directive is itself flagged

func daemonBare(sigs chan int) {
	//mclegal:daemon
	go func() { // want `missing a justification`
		<-sigs
	}()
}
