// A leaky spawn outside scope.ConcurrencyScope: goleak must stay
// silent here (no want comments in this file).
package notscoped

func leakFreely() {
	go func() {
		select {}
	}()
}
