package stage

import (
	"errors"
	"fmt"
)

func Untyped() error {
	return errors.New("boom") // want `errors.New crosses the stage gate boundary untyped`
}

func BareErrorf(n int) error {
	return fmt.Errorf("bad count %d", n) // want `bare fmt.Errorf crosses the stage gate boundary`
}

func Wrapped(err error) error {
	return fmt.Errorf("stage: %w", err)
}

func Justified() error {
	//mclegal:typederr CLI usage error, never crosses the gate boundary
	return errors.New("usage: stage <name>")
}
