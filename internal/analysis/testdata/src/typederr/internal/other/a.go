// Package other is outside the gate boundary, so typederr must stay
// silent here.
package other

import "errors"

func Untyped() error {
	return errors.New("fine here")
}
