// Fixture for the noalloc analyzer: a //mclegal:hotpath root whose
// call tree mixes rooted (clean) pooled-scratch idioms with every
// reportable allocation shape, plus suppression and
// missing-justification paths.
package mgl

import (
	"sort"
	"sync"

	"noalloc/internal/curve"
)

type scratch struct {
	buf   []int
	moves []int
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

var sink []int
var escape func() int

//mclegal:hotpath fixture twin of the zero-alloc benchmark root
func BestInWindow(dst *[]int, n int) int {
	sc := pool.Get().(*scratch) // pooled: Get is allow-listed, sc is rooted
	defer pool.Put(sc)
	sc.buf = append(sc.buf[:0], n) // rooted: pooled scratch growth
	reps := sc.moves[:0]           // rooted: reslice of pooled storage
	reps = append(reps, n)
	i := sort.Search(n, func(i int) bool { return i >= n/2 }) // allow-listed; closure accepted
	leak := make([]int, n)                                    // want `make allocates on every call`
	*dst = append((*dst)[:0], leak...)                        // rooted: pointer parameter
	return helper(n) + curve.Accumulate(reps, n) + i
}

func helper(n int) int {
	m := map[int]int{} // want `map literal allocates on every call`
	m[n] = n           // want `map store allocates on every call`
	x := n
	escape = func() int { return x } // want `escaping closure allocates on every call`
	box := any(n)                    // want `interface boxing allocates on every call`
	_ = box
	return indirect(func() int { return 0 }) + m[n]
}

func indirect(f func() int) int {
	return f() // want `indirect call of a function value cannot be proven allocation-free`
}

//mclegal:hotpath
func BareRoot(n int) { // want `//mclegal:hotpath directive is missing a justification`
	//mclegal:alloc fixture: one-time warm-up growth of the package sink
	sink = append(sink, n)
	//mclegal:alloc
	sink = append(sink, n) // want `//mclegal:alloc directive is missing a justification`
}

// NotHot never appears in a hotpath tree, so nothing here is reported.
func NotHot(n int) []int {
	out := make([]int, n)
	return out
}
