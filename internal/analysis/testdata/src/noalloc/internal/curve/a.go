// Fixture dependency of noalloc/internal/mgl: reached only through
// the cross-package call edge from the hot root, proving the analyzer
// follows the call graph between packages.
package curve

type Curve struct{ breaks []int }

// Add grows receiver-owned storage: rooted, clean.
func (c *Curve) Add(x int) {
	c.breaks = append(c.breaks, x)
}

type Weigher interface{ Weigh() int }

func Accumulate(buf []int, n int) int {
	var c Curve
	c.Add(n)
	tmp := make([]int, n) // want `make allocates on every call`
	s := pad("x", "y")
	var w Weigher
	if n < 0 {
		return w.Weigh() // want `interface call Weigh has no in-program implementation`
	}
	return len(tmp) + len(buf) + len(s) + len(c.breaks)
}

func pad(a, b string) string {
	return a + b // want `string allocation allocates on every call`
}
