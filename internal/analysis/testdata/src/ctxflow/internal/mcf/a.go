// Fixture for the ctxflow analyzer, inside the CancellationAware
// scope: dropped-context calls, fresh Background/TODO contexts,
// exported facades, suppression, and the missing-justification path.
package mcf

import "context"

type Graph struct{}

// Solve is the exported convenience facade: minting a Background
// context in a context-less exported function is the documented
// contract.
func (g *Graph) Solve() error { return g.SolveContext(context.Background()) }

func (g *Graph) SolveContext(ctx context.Context) error {
	_ = ctx
	return nil
}

func Wait() {}

func WaitWithContext(ctx context.Context) { _ = ctx }

func Run(ctx context.Context, g *Graph) error {
	if err := g.Solve(); err != nil { // want `call to Solve drops the received context; call SolveContext instead`
		return err
	}
	Wait() // want `call to Wait drops the received context; call WaitWithContext instead`
	WaitWithContext(ctx)
	ctx2 := context.Background() // want `function already receives a context.Context; use it instead of context.Background`
	_ = ctx2
	return g.SolveContext(ctx)
}

func helper() {
	ctx := context.TODO() // want `unexported function mints a fresh context with context.TODO`
	_ = ctx
}

func suppressed(ctx context.Context, g *Graph) error {
	_ = ctx
	//mclegal:ctx fixture: the solve below is bounded and cancellation-free by design
	return g.Solve()
}

func bareDirective(ctx context.Context, g *Graph) error {
	_ = ctx
	//mclegal:ctx
	return g.Solve() // want `//mclegal:ctx directive is missing a justification`
}
