// Fixture outside the CancellationAware scope: identical patterns,
// zero findings.
package other

import "context"

func Wait() {}

func WaitWithContext(ctx context.Context) { _ = ctx }

func run(ctx context.Context) {
	Wait()
	fresh := context.Background()
	_ = fresh
	_ = ctx
}
