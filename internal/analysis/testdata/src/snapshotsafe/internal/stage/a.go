// Fixture for the snapshotsafe analyzer: a //mclegal:restores gate, a
// covered stage, an uncovered stagectx writer, a stage covered by a
// //mclegal:ephemeral declaration, a suppressed stage, and declaration
// rot (bare justification, unknown location).
package stage

import (
	"snapshotsafe/internal/model"
	"snapshotsafe/internal/seg"
)

// PipelineContext is the state shared by the stages of one run; the
// vocabulary maps every field to stagectx.
type PipelineContext struct {
	Design *model.Design
	Grid   *seg.Grid
	Stats  int
}

// Stage is one pass of the fixture pipeline.
type Stage interface {
	Name() string
	Run(pc *PipelineContext) error
}

// runGated snapshots positions, runs the stage, and rolls back on
// failure.
//
//mclegal:restores design.xy the rollback restores the XY snapshot
func runGated(s Stage, pc *PipelineContext) error {
	snap := snapshot(pc.Design)
	if err := s.Run(pc); err != nil {
		restore(pc.Design, snap)
		return err
	}
	return nil
}

// bareGate restores everything but never says why.
//
//mclegal:restores design.xy,design.meta,stagectx,hotcells,grid,occupancy,routememo
func bareGate(s Stage, pc *PipelineContext) error { // want "missing a justification"
	return s.Run(pc)
}

// typoGate names a location the vocabulary does not define.
//
//mclegal:restores design.zz typo for design.xy
func typoGate(s Stage, pc *PipelineContext) error { // want "unknown location"
	return s.Run(pc)
}

func snapshot(d *model.Design) []int {
	out := make([]int, len(d.Cells))
	for i := range d.Cells {
		out[i] = d.Cells[i].X
	}
	return out
}

func restore(d *model.Design, snap []int) {
	for i := range snap {
		d.Cells[i].X = snap[i]
	}
}

// GoodStage writes only coordinates: covered by runGated's restores.
type GoodStage struct{}

func (s *GoodStage) Name() string { return "good" }

func (s *GoodStage) Run(pc *PipelineContext) error {
	pc.Design.Cells[0].X = 3
	return nil
}

// BadStage also writes a pipeline-context artifact, which no rollback
// restores.
type BadStage struct{}

func (s *BadStage) Name() string { return "bad" }

func (s *BadStage) Run(pc *PipelineContext) error { // want "does not restore"
	pc.Design.Cells[0].X = 3
	pc.Stats++
	return nil
}

// ScratchStage writes the hotcells mirror, which model declares
// ephemeral with a justification: covered.
type ScratchStage struct {
	hot *model.HotCells
}

func (s *ScratchStage) Name() string { return "scratch" }

func (s *ScratchStage) Run(pc *PipelineContext) error {
	s.hot.X[0] = 7
	pc.Design.Cells[0].Y = 1
	return nil
}

// WaivedStage is BadStage with a justified suppression.
type WaivedStage struct{}

func (s *WaivedStage) Name() string { return "waived" }

//mclegal:snapshotsafe the fixture waives this stage to prove the directive works
func (s *WaivedStage) Run(pc *PipelineContext) error {
	pc.Stats++
	return nil
}
