// Fixture twin of internal/seg: Grid is tracked as the grid location
// and carries a BARE //mclegal:ephemeral, which snapshotsafe must
// report as missing its justification.
package seg

// Grid is the row segmentation.
//
//mclegal:ephemeral
type Grid struct { // want "missing a justification"
	NumRows int
}
