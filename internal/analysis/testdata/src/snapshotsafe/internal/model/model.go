// Fixture twin of internal/model for the snapshotsafe analyzer. The
// vocabulary tracks Cell/Design (design.xy, design.meta) and HotCells
// (hotcells); HotCells carries the justified //mclegal:ephemeral the
// covered-scratch stage relies on.
package model

type Cell struct {
	X, Y int
	Name string
}

type Design struct {
	Cells []Cell
}

// HotCells is the per-run struct-of-arrays scratch mirror.
//
//mclegal:ephemeral rebuilt from the design at the start of every run
type HotCells struct {
	X []int32
}
