// A blatant continuation race outside scope.ConcurrencyScope:
// sharedwrite must stay silent here (no want comments in this file).
package notscoped

type counter struct{ n int }

func poke(c *counter) { c.n++ }

func racy(c *counter) {
	go poke(c)
	c.n++
}
