// Fixture for the sharedwrite analyzer: live-window races on fields,
// captured locals and transitive callee writes are diagnosed; pre-spawn
// init, post-barrier accesses and common-guard accesses are exempt.
package stage

import "sync"

type agg struct{ n int }

func bump(a *agg) { a.n++ }

// --- diagnosed: continuation write races the spawned writer --------

func race() {
	a := &agg{}
	go bump(a)
	a.n++ // want `write of n races the goroutine spawned at line 16`
}

// --- diagnosed: continuation read races the spawned writer ---------

func readRace(a *agg) int {
	go bump(a)
	return a.n // want `read of n races the goroutine`
}

// --- diagnosed: write reached through a transitive static callee ---

func deepWrite(a *agg) { bump(a) }

func transitive(a *agg) {
	go deepWrite(a)
	a.n++ // want `write of n races the goroutine`
}

// --- diagnosed: captured local written on both sides ---------------

func capturedLocal() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n++
		done <- struct{}{}
	}()
	n++ // want `write of n races the goroutine`
	<-done
	return n
}

// --- exempt: pre-spawn init and post-barrier accesses --------------

func initThenJoin() int {
	a := &agg{}
	a.n = 1
	done := make(chan struct{})
	go func() {
		a.n++
		done <- struct{}{}
	}()
	<-done
	a.n = 2
	return a.n
}

// --- exempt: both sides hold the same mutex ------------------------

type guarded struct {
	mu sync.Mutex
	n  int
}

func lockedBoth(g *guarded, done chan struct{}) {
	go func() {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
		done <- struct{}{}
	}()
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	<-done
}

// --- suppression ----------------------------------------------------

func justified(a *agg, done chan struct{}) {
	go func() {
		bump(a)
		done <- struct{}{}
	}()
	//mclegal:sharedwrite monotonic telemetry counter, a torn read only skews one sample
	a.n++
	<-done
}

func bare(a *agg, done chan struct{}) {
	go func() {
		bump(a)
		done <- struct{}{}
	}()
	//mclegal:sharedwrite
	a.n++ // want `missing a justification`
	<-done
}
