package framework_test

import (
	"go/token"
	"testing"

	"mclegal/internal/analysis/framework"
)

// concFixture is one package exercising every fact family the
// concurrency walker extracts: guarded and unguarded field accesses,
// deferred and explicit unlocks, branch-scoped locks, spawn sites of
// all three shapes, channel and WaitGroup operations, and the helper
// idiom InheritedHeld exists for.
const concFixture = `package a

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Explicit() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // unguarded: lock released above
}

func (c *Counter) Branch(cond bool) {
	if cond {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
	c.n-- // the branch's lock does not cover this
}

// locked is the helper idiom: it touches c.n with no lock of its own,
// relying on every caller holding c.mu.
func (c *Counter) locked() { c.n *= 2 }

func (c *Counter) CallsLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.locked()
}

func (c *Counter) CallsLockedToo() {
	c.mu.Lock()
	c.locked()
	c.mu.Unlock()
}

// mixed touches c.n both under and outside the lock, so helpers it
// calls inherit nothing.
func (c *Counter) mixed() { c.naked() }

func (c *Counter) naked() { c.n++ }

func SpawnShapes(c *Counter, f func()) {
	done := make(chan struct{})
	go func() {
		c.n++
		done <- struct{}{}
	}()
	go c.Bump()
	go f()
	<-done
}

func Fresh() *Counter {
	c := &Counter{}
	c.n = 7 // constructor init: fresh, not a shared write
	return c
}

func Blocky(ch chan int) int { return <-ch }

func CallsBlocky(ch chan int) int { return Blocky(ch) }

func LockOnly(c *Counter) {
	c.mu.Lock()
	c.mu.Unlock()
}

func SpawnedBlockOnly(ch chan int) {
	go func() {
		<-ch
	}()
}

func Selecty(a, b chan int) {
	select {
	case <-a:
	case b <- 1:
	}
}

func NonBlockingSelect(a chan int) {
	select {
	case <-a:
	default:
	}
}

func Waits(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
`

func loadConc(t *testing.T) (*framework.Program, *framework.CallGraph) {
	t.Helper()
	ld := writeFixtureModule(t, map[string]string{"a/a.go": concFixture})
	return loadGraph(t, ld, "a")
}

func fieldAccesses(c *framework.ConcSummary, name string) []framework.FieldAccess {
	var out []framework.FieldAccess
	for _, a := range c.Accesses {
		if a.Obj.Name() == name && a.Obj.IsField() {
			out = append(out, a)
		}
	}
	return out
}

func TestGuardTracking(t *testing.T) {
	_, cg := loadConc(t)

	bump := nodeByName(t, cg, "(*a.Counter).Bump").Conc()
	for _, a := range fieldAccesses(bump, "n") {
		if len(a.Held) != 1 {
			t.Errorf("Bump: access to n at %v held=%v, want exactly the mutex", a.Pos, a.Held)
		}
		for _, mode := range a.Held {
			if mode != framework.GuardWrite {
				t.Errorf("Bump: want write-mode guard, got %v", mode)
			}
		}
	}

	// Explicit: first n access guarded, post-Unlock access not.
	expl := nodeByName(t, cg, "(*a.Counter).Explicit").Conc()
	ns := fieldAccesses(expl, "n")
	if len(ns) != 2 {
		t.Fatalf("Explicit: %d accesses to n, want 2", len(ns))
	}
	if len(ns[0].Held) != 1 || len(ns[1].Held) != 0 {
		t.Errorf("Explicit: held sets %v / %v, want guarded then unguarded", ns[0].Held, ns[1].Held)
	}

	// Branch: the lock taken inside the if does not cover the tail.
	br := nodeByName(t, cg, "(*a.Counter).Branch").Conc()
	ns = fieldAccesses(br, "n")
	if len(ns) != 2 {
		t.Fatalf("Branch: %d accesses to n, want 2", len(ns))
	}
	if len(ns[0].Held) != 1 || len(ns[1].Held) != 0 {
		t.Errorf("Branch: held sets %v / %v, want guarded then unguarded", ns[0].Held, ns[1].Held)
	}
}

func TestSpawnShapes(t *testing.T) {
	_, cg := loadConc(t)
	c := nodeByName(t, cg, "a.SpawnShapes").Conc()
	if len(c.Spawns) != 3 {
		t.Fatalf("SpawnShapes: %d spawns, want 3", len(c.Spawns))
	}
	lit, named, dyn := c.Spawns[0], c.Spawns[1], c.Spawns[2]
	if lit.Body == nil || lit.BodyLit == nil {
		t.Errorf("literal spawn: want a sub-summary body")
	} else {
		if got := fieldAccesses(lit.Body, "n"); len(got) != 1 || !got[0].Write {
			t.Errorf("literal spawn body: accesses to n = %v, want one write", got)
		}
		if len(lit.Body.Sends) != 1 {
			t.Errorf("literal spawn body: %d sends, want 1", len(lit.Body.Sends))
		}
		if lit.Body.TailSend == nil {
			t.Errorf("literal spawn body: want TailSend (done <- at tail)")
		}
	}
	if named.Callee == nil || named.Callee.Name() != "Bump" {
		t.Errorf("named spawn: callee = %v, want Bump", named.Callee)
	}
	if !dyn.Dynamic {
		t.Errorf("func-value spawn: want Dynamic")
	}
	// The spawned body's send folds into the encloser's index, but its
	// blocking op must NOT appear among the encloser's own Blocks.
	if len(c.Sends) != 1 {
		t.Errorf("encloser: %d sends folded, want 1", len(c.Sends))
	}
	for _, b := range c.Blocks {
		if b.Kind == framework.BlockSend {
			t.Errorf("encloser Blocks contains the spawned body's send")
		}
	}
	var recvs int
	for _, b := range c.Blocks {
		if b.Kind == framework.BlockRecv {
			recvs++
		}
	}
	if recvs != 1 {
		t.Errorf("encloser: %d direct recv blocks, want 1 (<-done)", recvs)
	}
}

func TestFreshDetection(t *testing.T) {
	_, cg := loadConc(t)
	c := nodeByName(t, cg, "a.Fresh").Conc()
	ns := fieldAccesses(c, "n")
	if len(ns) != 1 || !ns[0].Fresh {
		t.Errorf("Fresh: accesses = %+v, want one fresh write", ns)
	}
}

func TestSelectAndWaitFacts(t *testing.T) {
	_, cg := loadConc(t)

	sel := nodeByName(t, cg, "a.Selecty").Conc()
	var kinds []framework.BlockKind
	for _, b := range sel.Blocks {
		kinds = append(kinds, b.Kind)
	}
	if len(kinds) != 1 || kinds[0] != framework.BlockSelect {
		t.Errorf("Selecty: blocks = %v, want one BlockSelect", kinds)
	}
	if len(sel.Recvs) != 1 || len(sel.Sends) != 1 {
		t.Errorf("Selecty: recvs=%d sends=%d, want 1/1 (select comms still indexed)", len(sel.Recvs), len(sel.Sends))
	}

	nb := nodeByName(t, cg, "a.NonBlockingSelect").Conc()
	if len(nb.Blocks) != 0 {
		t.Errorf("NonBlockingSelect: blocks = %v, want none (has default)", nb.Blocks)
	}

	w := nodeByName(t, cg, "a.Waits").Conc()
	if len(w.WGAdds) != 1 || len(w.WGWaits) != 1 {
		t.Errorf("Waits: adds=%d waits=%d, want 1/1", len(w.WGAdds), len(w.WGWaits))
	}
	if len(w.WGDones) != 1 || !w.WGDones[0].Deferred {
		t.Errorf("Waits: dones=%+v, want one deferred (folded from spawn body)", w.WGDones)
	}
	if len(w.Spawns) != 1 || w.Spawns[0].Body == nil || w.Spawns[0].Body.TailDone == nil {
		t.Errorf("Waits: want spawned body with TailDone")
	}
}

func TestMayBlockPropagation(t *testing.T) {
	_, cg := loadConc(t)
	mb := cg.MayBlock()

	blocky := nodeByName(t, cg, "a.Blocky")
	calls := nodeByName(t, cg, "a.CallsBlocky")
	if mb[blocky] == nil {
		t.Fatalf("Blocky: want may-block witness")
	}
	w := mb[calls]
	if w == nil {
		t.Fatalf("CallsBlocky: want may-block via static callee")
	}
	if w.Owner != blocky || w.Kind != framework.BlockRecv {
		t.Errorf("CallsBlocky witness = %+v, want Blocky's recv", w)
	}

	if mb[nodeByName(t, cg, "a.LockOnly")] != nil {
		t.Errorf("LockOnly: lock acquisition alone must not count as may-block")
	}
	if mb[nodeByName(t, cg, "a.SpawnedBlockOnly")] != nil {
		t.Errorf("SpawnedBlockOnly: a block inside a spawned body must not leak to the spawner")
	}
}

func TestInheritedHeld(t *testing.T) {
	_, cg := loadConc(t)
	ih := cg.InheritedHeld()

	locked := nodeByName(t, cg, "(*a.Counter).locked")
	if got := ih[locked]; len(got) != 1 {
		t.Errorf("locked: inherited = %v, want the mutex from both callers", got)
	}
	// naked is called from mixed, which holds nothing.
	naked := nodeByName(t, cg, "(*a.Counter).naked")
	if got := ih[naked]; len(got) != 0 {
		t.Errorf("naked: inherited = %v, want empty", got)
	}
	// Bump is called both directly (no locks) and as a spawn target;
	// either way it inherits nothing.
	bump := nodeByName(t, cg, "(*a.Counter).Bump")
	if got := ih[bump]; len(got) != 0 {
		t.Errorf("Bump: inherited = %v, want empty", got)
	}
}

func TestDirectiveAt(t *testing.T) {
	ld := writeFixtureModule(t, map[string]string{"a/a.go": `package a

//mclegal:daemon serves until process exit
func Daemon() {}

func Plain() {}
`})
	prog, cg := loadGraph(t, ld, "a")
	d := nodeByName(t, cg, "a.Daemon")
	if reason, ok := prog.DirectiveAt("daemon", d.Decl.Pos()); !ok || reason != "serves until process exit" {
		t.Errorf("DirectiveAt(daemon) = %q, %v", reason, ok)
	}
	p := nodeByName(t, cg, "a.Plain")
	if _, ok := prog.DirectiveAt("daemon", p.Decl.Pos()); ok {
		t.Errorf("Plain: unexpected daemon directive")
	}
	if _, ok := prog.DirectiveAt("daemon", token.NoPos); ok {
		t.Errorf("NoPos: unexpected directive hit")
	}
}
