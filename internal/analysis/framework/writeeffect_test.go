package framework_test

import (
	"go/types"
	"strings"
	"testing"

	"mclegal/internal/analysis/framework"
)

// testWriteVocab tracks the X coordinate field and the Cells slice of
// the fixture's Design/Cell types, the minimal vocabulary the engine
// tests need.
func testWriteVocab() *framework.WriteVocabulary {
	return &framework.WriteVocabulary{
		Tracked: func(v *types.Var) bool {
			return v.Name() == "X" || v.Name() == "Cells"
		},
		Reaches: func(t types.Type) bool {
			return strings.Contains(t.String(), "Design") || strings.Contains(t.String(), "Cell")
		},
		External: func(fn *types.Func) ([]int, bool) { return nil, false },
	}
}

const writeEffectFixture = `package w

import "ext"

type Cell struct{ X, Y int }

type Design struct{ Cells []Cell }

func (d *Design) SetX(i, v int) { d.Cells[i].X = v }

// Shift writes through a reslice of a parameter's slice: the reslice
// denotes the same backing array, so the effect must survive rooted at
// the parameter.
func Shift(d *Design) {
	tail := d.Cells[1:]
	tail[0].X = 7
}

// Fresh builds and initializes its own Design: every write lands in
// fresh storage and must vanish from the summary.
func Fresh() *Design {
	d := &Design{Cells: make([]Cell, 4)}
	d.Cells[0].X = 1
	return d
}

// Wrap builds a fresh Design around a caller-owned backing array: the
// element write escapes the fresh object and must survive as shared.
func Wrap(cells []Cell) {
	d := &Design{Cells: cells}
	d.Cells[0].X = 9
}

// Apply calls a method value bound once to a local: the call resolves
// statically and SetX's receiver effects re-root through d.
func Apply(d *Design) {
	f := d.SetX
	f(0, 3)
}

// Run calls an opaque function value: unprovable, fails closed.
func Run(f func()) { f() }

// Restore calls a parameterless literal bound once to a local — the
// gate's rollback idiom. The body is analyzed inline through its
// captures, so the call resolves and the write stays rooted at the
// parameter instead of failing closed.
func Restore(d *Design) {
	rollback := func() { d.Cells[0].X = 0 }
	rollback()
}

// RestoreArg writes through the literal's OWN pointer parameter: the
// inline walk cannot attribute that storage to the caller's bindings,
// so the write must fail closed as shared, not vanish as fresh.
func RestoreArg(d *Design) {
	set := func(t *Design) { t.Cells[0].X = 5 }
	set(d)
}

// Outer inherits Run's unknown and adds its own tracked write.
func Outer(d *Design, f func()) {
	Run(f)
	d.Cells[0].X = 1
}

// Leak hands the design to an external callee whose behavior is
// unknown: fails closed.
func Leak(d *Design) { ext.Touch(d) }

// Build only calls the fresh constructor: nothing to report.
func Build() *Design { return Fresh() }
`

const writeEffectExtFixture = `package ext

func Touch(v any) {}
`

func writeEffectsByName(t *testing.T) map[string]*framework.WriteEffects {
	t.Helper()
	ld := writeFixtureModule(t, map[string]string{
		"w/w.go":     writeEffectFixture,
		"ext/ext.go": writeEffectExtFixture,
	})
	_, cg := loadGraph(t, ld, "w")
	res := cg.WriteEffects(testWriteVocab())
	out := make(map[string]*framework.WriteEffects)
	for _, n := range cg.Nodes() {
		if we := res[n]; we != nil {
			out[n.Func.FullName()] = we
		}
	}
	return out
}

func TestWriteEffectsReslicesAndRoots(t *testing.T) {
	res := writeEffectsByName(t)

	setx := res["(*w.Design).SetX"]
	if len(setx.Effects) != 1 || len(setx.Unknown) != 0 {
		t.Fatalf("SetX: got %+v / unknown %+v", setx.Effects, setx.Unknown)
	}
	if e := setx.Effects[0]; e.Obj.Name() != "X" || e.Root != framework.WriteRecv || !e.Crossed {
		t.Errorf("SetX effect = {%s %v crossed=%v}, want {X receiver crossed}", e.Obj.Name(), e.Root, e.Crossed)
	}

	shift := res["w.Shift"]
	if len(shift.Effects) != 1 {
		t.Fatalf("Shift: got %+v", shift.Effects)
	}
	if e := shift.Effects[0]; e.Obj.Name() != "X" || e.Root != framework.WriteParam || e.Param != 0 {
		t.Errorf("Shift effect = {%s %v param=%d}, want {X parameter 0}: reslice lost the backing", e.Obj.Name(), e.Root, e.Param)
	}

	if fresh := res["w.Fresh"]; len(fresh.Effects) != 0 || len(fresh.Unknown) != 0 {
		t.Errorf("Fresh: constructor writes must drop, got %+v / %+v", fresh.Effects, fresh.Unknown)
	}
	if build := res["w.Build"]; len(build.Effects) != 0 || len(build.Unknown) != 0 {
		t.Errorf("Build: calling a fresh constructor must stay clean, got %+v / %+v", build.Effects, build.Unknown)
	}

	wrap := res["w.Wrap"]
	if len(wrap.Effects) != 1 {
		t.Fatalf("Wrap: got %+v", wrap.Effects)
	}
	if e := wrap.Effects[0]; e.Obj.Name() != "X" || e.Root != framework.WriteShared {
		t.Errorf("Wrap effect = {%s %v}, want {X shared}: foreign backing behind a fresh object must not drop", e.Obj.Name(), e.Root)
	}
}

func TestWriteEffectsMethodValuesAndUnknowns(t *testing.T) {
	res := writeEffectsByName(t)

	apply := res["w.Apply"]
	if len(apply.Unknown) != 0 {
		t.Fatalf("Apply: a single-bound method value must resolve statically, got unknowns %+v", apply.Unknown)
	}
	if len(apply.Effects) != 1 {
		t.Fatalf("Apply: got %+v", apply.Effects)
	}
	if e := apply.Effects[0]; e.Obj.Name() != "X" || e.Root != framework.WriteParam || e.Param != 0 {
		t.Errorf("Apply effect = {%s %v param=%d}, want {X parameter 0} via the bound receiver", e.Obj.Name(), e.Root, e.Param)
	}
	if apply.Effects[0].Owner.Name() != "SetX" {
		t.Errorf("Apply witness owner = %s, want SetX", apply.Effects[0].Owner.Name())
	}

	run := res["w.Run"]
	if len(run.Unknown) != 1 {
		t.Fatalf("Run: dynamic call must fail closed, got %+v", run.Unknown)
	}

	restore := res["w.Restore"]
	if len(restore.Unknown) != 0 {
		t.Fatalf("Restore: a single-bound parameterless literal must resolve, got unknowns %+v", restore.Unknown)
	}
	if len(restore.Effects) != 1 || restore.Effects[0].Obj.Name() != "X" ||
		restore.Effects[0].Root != framework.WriteParam || restore.Effects[0].Param != 0 {
		t.Errorf("Restore: capture write must survive rooted at the parameter, got %+v", restore.Effects)
	}

	ra := res["w.RestoreArg"]
	if len(ra.Effects) != 1 || ra.Effects[0].Obj.Name() != "X" || ra.Effects[0].Root != framework.WriteShared {
		t.Errorf("RestoreArg: a write through the literal's own parameter must fail closed as shared, got %+v / unknowns %+v", ra.Effects, ra.Unknown)
	}

	outer := res["w.Outer"]
	if len(outer.Unknown) != 1 {
		t.Errorf("Outer: must inherit Run's unknown site, got %+v", outer.Unknown)
	} else if outer.Unknown[0].Pos != run.Unknown[0].Pos {
		t.Errorf("Outer: inherited unknown must keep the original site position")
	}
	if len(outer.Effects) != 1 || outer.Effects[0].Root != framework.WriteParam {
		t.Errorf("Outer: own tracked write missing, got %+v", outer.Effects)
	}

	leak := res["w.Leak"]
	if len(leak.Unknown) != 1 || !strings.Contains(leak.Unknown[0].What, "ext.Touch") {
		t.Errorf("Leak: external call receiving tracked state must fail closed, got %+v", leak.Unknown)
	}
}
