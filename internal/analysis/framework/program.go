// Program-level analysis: a Program is a set of fully loaded packages
// that share one token.FileSet and one types.Object universe, plus the
// lazily built artifacts analyzers consume across package boundaries —
// the call graph, function summaries, and the program-wide directive
// index (so a //mclegal: suppression works no matter which package's
// pass reports the finding).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Program is one coherent set of loaded packages under analysis.
type Program struct {
	// Pkgs are the packages in load order.
	Pkgs []*Package

	byPath     map[string]*Package
	byTypes    map[*types.Package]*Package
	directives map[string]map[int]directive

	cg    *CallGraph
	cgErr error

	cache map[string]any
}

// NewProgram assembles a program from packages loaded by one shared
// Loader (they must share a FileSet; cross-package analysis is
// meaningless otherwise).
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:       pkgs,
		byPath:     make(map[string]*Package, len(pkgs)),
		byTypes:    make(map[*types.Package]*Package, len(pkgs)),
		directives: make(map[string]map[int]directive),
		cache:      make(map[string]any),
	}
	for _, pkg := range pkgs {
		p.byPath[pkg.Path] = pkg
		p.byTypes[pkg.Types] = pkg
		mergeDirectives(p.directives, pkg.Fset, pkg.Files)
	}
	return p
}

// LoadProgram loads every path as a full target of l and assembles the
// program.
func LoadProgram(l *Loader, paths []string) (*Program, error) {
	pkgs, err := l.LoadTargets(paths)
	if err != nil {
		return nil, err
	}
	return NewProgram(pkgs), nil
}

// Package returns the loaded package with the given import path, or
// nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// Fset returns the FileSet shared by the program's packages (nil for
// an empty program).
func (p *Program) Fset() *token.FileSet {
	if len(p.Pkgs) == 0 {
		return nil
	}
	return p.Pkgs[0].Fset
}

// PackageFor maps a types.Package back to its loaded Package; nil for
// packages outside the program (header-only dependencies).
func (p *Program) PackageFor(t *types.Package) *Package { return p.byTypes[t] }

// CallGraph returns the program's call graph, building it on first
// use. The graph is shared by every analyzer in the run.
func (p *Program) CallGraph() (*CallGraph, error) {
	if p.cg == nil && p.cgErr == nil {
		p.cg, p.cgErr = buildCallGraph(p)
	}
	return p.cg, p.cgErr
}

// CacheLoad memoizes an arbitrary program-scoped artifact under key,
// so analyzers that run once per package can share whole-program state
// (e.g. noalloc's reachability closure) instead of recomputing it.
func (p *Program) CacheLoad(key string, build func() (any, error)) (any, error) {
	if v, ok := p.cache[key]; ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	p.cache[key] = v
	return v, nil
}

// DirectiveAt reports whether a //mclegal:<name> directive covers the
// source line of pos or the line above it — the same placement rule
// Pass.Suppressed applies — and returns its justification text. It
// lets program-scoped inventories (e.g. goleak's spawn roots) consult
// directives outside the reporting path.
func (p *Program) DirectiveAt(name string, pos token.Pos) (reason string, ok bool) {
	fset := p.Fset()
	if fset == nil || !pos.IsValid() {
		return "", false
	}
	position := fset.Position(pos)
	lines := p.directives[position.Filename]
	if lines == nil {
		return "", false
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		if d, found := lines[line]; found && d.name == name {
			return d.reason, true
		}
	}
	return "", false
}

// Run applies every analyzer to every package of the program and
// returns the combined diagnostics ordered by position (file, line,
// column, analyzer) — the stable order the -json output mode relies
// on.
func (p *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var fset *token.FileSet
	for _, pkg := range p.Pkgs {
		fset = pkg.Fset
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				Prog:       p,
				directives: p.directives,
				diags:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	if fset != nil {
		sortDiagnostics(fset, diags)
	}
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// mergeDirectives indexes every //mclegal: comment of files into out.
func mergeDirectives(out map[string]map[int]directive, fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]directive)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = directive{name: m[1], reason: m[2]}
			}
		}
	}
}
