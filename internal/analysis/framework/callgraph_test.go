package framework_test

import (
	"os"
	"path/filepath"
	"testing"

	"mclegal/internal/analysis/framework"
)

// writeFixtureModule lays out a testdata/src-style fixture tree in a
// temp dir and returns a loader rooted there.
func writeFixtureModule(t *testing.T, files map[string]string) *framework.Loader {
	t.Helper()
	src := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(src, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ld := framework.NewLoader("", "")
	ld.FixtureRoot = src
	return ld
}

func loadGraph(t *testing.T, ld *framework.Loader, paths ...string) (*framework.Program, *framework.CallGraph) {
	t.Helper()
	prog, err := framework.LoadProgram(ld, paths)
	if err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	cg, err := prog.CallGraph()
	if err != nil {
		t.Fatalf("CallGraph: %v", err)
	}
	return prog, cg
}

func nodeByName(t *testing.T, cg *framework.CallGraph, fullName string) *framework.Node {
	t.Helper()
	for _, n := range cg.Nodes() {
		if n.Func.FullName() == fullName {
			return n
		}
	}
	t.Fatalf("no node %q in graph", fullName)
	return nil
}

func edgeKinds(n *framework.Node) map[framework.EdgeKind]int {
	out := make(map[framework.EdgeKind]int)
	for _, e := range n.Out {
		out[e.Kind]++
	}
	return out
}

func TestCallGraphEdges(t *testing.T) {
	ld := writeFixtureModule(t, map[string]string{
		"a/a.go": `package a

import "b"

type Weigher interface{ Weigh() int }

type Stone struct{}

func (Stone) Weigh() int { return 1 }

func Static() int { return b.Dep() }

func Iface(w Weigher) int { return w.Weigh() }

func Dynamic(f func() int) int { return f() }

func LocalClosure(n int) int {
	double := func(x int) int { return x * 2 }
	return double(n)
}

func Generic[T any](v T) T { return v }

func CallsGeneric() int { return Generic(7) }
`,
		"b/b.go": `package b

func Dep() int { return 0 }
`,
	})
	_, cg := loadGraph(t, ld, "a", "b")

	// Cross-package static edge, resolved to the full dependency node.
	static := nodeByName(t, cg, "a.Static")
	if len(static.Out) != 1 || static.Out[0].Kind != framework.EdgeStatic {
		t.Fatalf("a.Static edges = %+v, want one static edge", edgeKinds(static))
	}
	dep := static.Out[0].Callee
	if dep.Func.FullName() != "b.Dep" || dep.External() {
		t.Errorf("a.Static callee = %s (external=%v), want in-program b.Dep", dep.Func.FullName(), dep.External())
	}

	// Interface call: one edge for the method, one per implementation.
	iface := nodeByName(t, cg, "a.Iface")
	kinds := edgeKinds(iface)
	if kinds[framework.EdgeInterface] != 2 {
		t.Errorf("a.Iface interface edges = %d, want 2 (method + Stone impl)", kinds[framework.EdgeInterface])
	}
	foundImpl := false
	for _, e := range iface.Out {
		if e.Callee != nil && !e.Callee.External() && e.Callee.Func.Name() == "Weigh" {
			foundImpl = true
		}
	}
	if !foundImpl {
		t.Error("a.Iface has no edge to the concrete Stone.Weigh implementation")
	}

	// Unknown function value: dynamic edge with nil callee.
	dyn := nodeByName(t, cg, "a.Dynamic")
	if kinds := edgeKinds(dyn); kinds[framework.EdgeDynamic] != 1 {
		t.Errorf("a.Dynamic edges = %+v, want one dynamic edge", kinds)
	}

	// A local bound once to a literal is covered by the enclosing
	// summary: no edge at all.
	loc := nodeByName(t, cg, "a.LocalClosure")
	if len(loc.Out) != 0 {
		t.Errorf("a.LocalClosure has %d edges, want 0 (single-bound local literal)", len(loc.Out))
	}

	// Generic instantiations collapse onto the origin node.
	gen := nodeByName(t, cg, "a.CallsGeneric")
	if len(gen.Out) != 1 || gen.Out[0].Callee.Func.Name() != "Generic" {
		t.Fatalf("a.CallsGeneric edges = %d, want one static edge to Generic", len(gen.Out))
	}
}

func TestSummaryRootedness(t *testing.T) {
	ld := writeFixtureModule(t, map[string]string{
		"s/s.go": `package s

type buf struct{ data []int }

func (b *buf) Grow(n int) {
	b.data = append(b.data, n) // rooted: pointer receiver
}

func Copy(dst *[]int, src []int) {
	*dst = append((*dst)[:0], src...) // rooted: pointer parameter
}

func Leak(n int) []int {
	out := make([]int, n) // unrooted
	return out
}

func Derived(b *buf, n int) {
	view := b.data[:0]       // local derived from rooted storage
	view = append(view, n)   // rooted
	b.data = view
}
`,
	})
	_, cg := loadGraph(t, ld, "s")

	assertAllocs := func(name string, wantRooted, wantUnrooted int) {
		t.Helper()
		n := nodeByName(t, cg, name)
		rooted, unrooted := 0, 0
		for _, site := range n.Summary().Allocs {
			if site.Rooted {
				rooted++
			} else {
				unrooted++
			}
		}
		if rooted != wantRooted || unrooted != wantUnrooted {
			t.Errorf("%s allocs = %d rooted / %d unrooted, want %d / %d",
				name, rooted, unrooted, wantRooted, wantUnrooted)
		}
	}
	assertAllocs("(*s.buf).Grow", 1, 0)
	assertAllocs("s.Copy", 1, 0)
	assertAllocs("s.Leak", 0, 1)
	assertAllocs("s.Derived", 1, 0)
}

func TestSCCsBottomUp(t *testing.T) {
	ld := writeFixtureModule(t, map[string]string{
		"c/c.go": `package c

func Leaf() int { return 1 }

func Mid() int { return Leaf() }

func Top() int { return Mid() }

func MutualA(n int) int {
	if n <= 0 {
		return 0
	}
	return MutualB(n - 1)
}

func MutualB(n int) int { return MutualA(n) }
`,
	})
	_, cg := loadGraph(t, ld, "c")
	comps := cg.SCCs()
	order := make(map[*framework.Node]int)
	for i, comp := range comps {
		for _, n := range comp {
			order[n] = i
		}
	}
	leaf := nodeByName(t, cg, "c.Leaf")
	mid := nodeByName(t, cg, "c.Mid")
	top := nodeByName(t, cg, "c.Top")
	if !(order[leaf] < order[mid] && order[mid] < order[top]) {
		t.Errorf("SCC order not bottom-up: Leaf=%d Mid=%d Top=%d", order[leaf], order[mid], order[top])
	}
	a := nodeByName(t, cg, "c.MutualA")
	b := nodeByName(t, cg, "c.MutualB")
	if order[a] != order[b] {
		t.Errorf("mutually recursive functions in different components: %d vs %d", order[a], order[b])
	}
}

// TestProgramSharedUniverse is the regression test for the bug the
// target-aware loader fixes: loading geom as a dependency header
// before declaring it a target used to fork a second types.Package and
// break cross-package object identity.
func TestProgramSharedUniverse(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	ld := framework.NewLoader("mclegal", root)
	prog, err := framework.LoadProgram(ld, []string{
		"mclegal/internal/mgl",  // imports geom
		"mclegal/internal/eval", // also imports geom
		"mclegal/internal/geom",
	})
	if err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	geom := prog.Package("mclegal/internal/geom")
	if geom == nil {
		t.Fatal("geom not loaded")
	}
	for _, p := range prog.Pkgs {
		for _, imp := range p.Types.Imports() {
			if imp.Path() == "mclegal/internal/geom" && imp != geom.Types {
				t.Errorf("%s imports a different geom types.Package: object universe forked", p.Path)
			}
		}
	}
}
