// Write-effect summaries: per-function sets of resident-state
// locations a call tree may mutate, computed bottom-up over the Tarjan
// SCC order (the sibling of summary.go's allocation facts and
// concurrency.go's guard facts). The writeset, snapshotsafe and
// aliasleak analyzers consume them to prove snapshot/rollback
// completeness and clone-boundary isolation.
//
// The model is deliberately storage-relative. Every local write is
// classified by the *root* its storage is reachable from — the
// receiver's object, a parameter's object, function-local (fresh)
// storage, or shared storage (globals, call results, anything behind
// an untracked pointer hop). Propagation re-roots a callee's effects
// through the call site's receiver and argument expressions:
// fresh-rooted writes that stay inside the fresh object disappear
// (constructors mutate nothing the caller can see), everything else
// survives with the caller's root. Aliasing is tracked through pointer
// receivers, parameter aliasing, slice reslices (a reslice denotes the
// same backing array), and method values bound once to a local.
//
// The analysis fails closed: a call of a dynamic function value, or a
// call into an external (header-only) function that receives a value
// which can reach tracked storage, yields an UnknownWrite — "this
// function's write set is not provable" — which propagates to every
// caller. The vocabulary of tracked locations is injected via
// WriteVocabulary so the framework stays domain-free; the mclegal
// vocabulary lives in internal/analysis/writeloc.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// WriteRoot classifies the storage a write lands in, relative to the
// function that performs it.
type WriteRoot int

const (
	// WriteFresh is storage allocated by the function itself
	// (composite literals, make, new). Fresh writes that do not cross
	// into foreign storage are invisible to callers and are dropped
	// from summaries.
	WriteFresh WriteRoot = iota
	// WriteRecv is storage reachable from the method receiver.
	WriteRecv
	// WriteParam is storage reachable from parameter Param.
	WriteParam
	// WriteShared is storage with no provable owner: package-level
	// variables, call results, anything behind an extra pointer hop.
	WriteShared
)

func (r WriteRoot) String() string {
	switch r {
	case WriteFresh:
		return "fresh"
	case WriteRecv:
		return "receiver"
	case WriteParam:
		return "parameter"
	case WriteShared:
		return "shared"
	default:
		return "WriteRoot(?)"
	}
}

// A WriteEffect is one (deduplicated) tracked mutation in a function's
// transitive write set.
type WriteEffect struct {
	// Obj is the written location: a struct field object (shared by
	// all instances of the type) or a package-level variable.
	Obj *types.Var
	// Pos is the witness store — the first concrete assignment that
	// produced this effect.
	Pos token.Pos
	// Owner is the function whose body contains the witness (a
	// transitive callee of the summarized function, possibly itself).
	Owner *types.Func
	// Root is the storage root relative to the summarized function.
	Root WriteRoot
	// Param is the parameter index when Root == WriteParam.
	Param int
	// Crossed marks writes that reach their storage through an extra
	// pointer hop or a non-fresh slice/map backing: a fresh root does
	// not contain such storage, so crossed effects never drop.
	Crossed bool
}

// An UnknownWrite is one call site that defeats the write-effect
// proof: a dynamic function value, or an external callee that receives
// a value which can reach tracked storage. Unknowns propagate to every
// transitive caller with their original site position.
type UnknownWrite struct {
	Pos   token.Pos
	Owner *types.Func // function whose body contains the call
	What  string      // human-readable description of the call
}

// WriteEffects is the transitive write summary of one function.
type WriteEffects struct {
	Fn      *types.Func
	Effects []WriteEffect  // deduplicated, deterministic order
	Unknown []UnknownWrite // deduplicated by position, sorted
}

// A WriteVocabulary injects the domain knowledge the engine needs:
// which locations are resident state, which types can reach them, and
// what external functions are known to do.
type WriteVocabulary struct {
	// Tracked reports whether a struct field or package-level variable
	// is a resident-state location.
	Tracked func(*types.Var) bool
	// Reaches reports whether a value of t can be used to mutate
	// tracked storage (a *Design can; a copied Cell value cannot).
	Reaches func(types.Type) bool
	// ValueWrites returns the tracked field objects written when a
	// whole value of t is stored (d.Cells[i] = c writes every tracked
	// field of Cell). Nil/empty for untracked types.
	ValueWrites func(types.Type) []*types.Var
	// External classifies a header-only callee. known=true means the
	// function's behavior is understood: it mutates (element-level)
	// exactly the arguments whose indices are returned and retains
	// nothing. known=false means the call must be screened
	// conservatively against Reaches.
	External func(*types.Func) (mutatesArgs []int, known bool)
}

// WriteEffects computes the transitive write summary of every
// non-external node, bottom-up over the SCC order. The result is
// deterministic for a given program and vocabulary.
func (g *CallGraph) WriteEffects(voc *WriteVocabulary) map[*Node]*WriteEffects {
	ctxs := make(map[*Node]*writeCtx)
	local := make(map[*Node]*weState)
	for _, n := range g.Nodes() {
		if n.External() || n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		c := newWriteCtx(n, voc)
		ctxs[n] = c
		local[n] = c.localFacts()
	}

	res := make(map[*Node]*weState)
	for _, comp := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				c := ctxs[n]
				if c == nil {
					continue
				}
				st := foldNode(g, n, c, local[n], res)
				if prev := res[n]; prev == nil || st.size() > prev.size() {
					res[n] = st
					changed = true
				}
			}
		}
	}

	out := make(map[*Node]*WriteEffects, len(res))
	for n, st := range res {
		out[n] = st.finish(n.Func)
	}
	return out
}

// ---- accumulation state ----

type effKey struct {
	obj     *types.Var
	root    WriteRoot
	param   int
	crossed bool
}

type weState struct {
	eff map[effKey]WriteEffect
	unk map[token.Pos]UnknownWrite
}

func newWEState() *weState {
	return &weState{eff: make(map[effKey]WriteEffect), unk: make(map[token.Pos]UnknownWrite)}
}

func (s *weState) size() int { return len(s.eff) + len(s.unk) }

func (s *weState) add(e WriteEffect) {
	k := effKey{obj: e.Obj, root: e.Root, param: e.Param, crossed: e.Crossed}
	if _, ok := s.eff[k]; !ok {
		s.eff[k] = e
	}
}

func (s *weState) addUnknown(u UnknownWrite) {
	if _, ok := s.unk[u.Pos]; !ok {
		s.unk[u.Pos] = u
	}
}

func (s *weState) finish(fn *types.Func) *WriteEffects {
	w := &WriteEffects{Fn: fn}
	for _, e := range s.eff {
		w.Effects = append(w.Effects, e)
	}
	sort.Slice(w.Effects, func(i, j int) bool {
		a, b := w.Effects[i], w.Effects[j]
		if a.Obj != b.Obj {
			an, bn := varSortKey(a.Obj), varSortKey(b.Obj)
			if an != bn {
				return an < bn
			}
			return a.Obj.Pos() < b.Obj.Pos()
		}
		if a.Root != b.Root {
			return a.Root < b.Root
		}
		if a.Param != b.Param {
			return a.Param < b.Param
		}
		return !a.Crossed && b.Crossed
	})
	for _, u := range s.unk {
		w.Unknown = append(w.Unknown, u)
	}
	sort.Slice(w.Unknown, func(i, j int) bool { return w.Unknown[i].Pos < w.Unknown[j].Pos })
	return w
}

func varSortKey(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Path() + "." + v.Name()
	}
	return v.Name()
}

// ---- expression classification ----

// An exprClass describes where the storage an expression denotes (or
// the value it evaluates to) lives, relative to the function's roots.
type exprClass struct {
	root  WriteRoot
	param int
	// crossed: the storage may lie outside the root object (behind a
	// pointer hop or a foreign slice backing).
	crossed bool
	// direct: the value IS the root handle itself (the pointer/slice/
	// map as passed, or an exact &location), so one dereference or
	// index through it stays inside the root object.
	direct bool
	// freshBacking: a slice/map value whose backing was allocated in
	// this function, so element stores stay inside fresh storage.
	freshBacking bool
}

var sharedClass = exprClass{root: WriteShared, crossed: true}
var freshClass = exprClass{root: WriteFresh, direct: true, freshBacking: true}

func mergeClass(a, b exprClass) exprClass {
	out := exprClass{
		crossed:      a.crossed || b.crossed,
		direct:       a.direct && b.direct,
		freshBacking: a.freshBacking && b.freshBacking,
	}
	switch {
	case a.root == b.root && a.param == b.param:
		out.root, out.param = a.root, a.param
	case a.root == WriteFresh:
		out.root, out.param = b.root, b.param
	case b.root == WriteFresh:
		out.root, out.param = a.root, a.param
	default:
		out.root, out.crossed = WriteShared, true
	}
	return out
}

// boundMethod is a local bound exactly once to a method value (h.Less)
// or a declared function (helper), so a later call of the local can be
// resolved statically.
type boundMethod struct {
	fn   *types.Func
	recv ast.Expr // receiver expression at the bind site; nil for plain functions
	// lit marks a local bound to a parameterless function literal: the
	// literal's body is analyzed inline through its captures (fn stays
	// nil), so the call edge itself carries no effects to fold in.
	lit bool
}

// writeCtx is the per-function classification context: parameter and
// receiver roots, the fixed-point classes of locals, per-local fresh
// field maps, tracked-source aliases, and single-bound method values.
type writeCtx struct {
	node *Node
	info *types.Info
	voc  *WriteVocabulary

	recv      *types.Var
	recvClass exprClass
	paramIdx  map[*types.Var]int
	paramCls  []exprClass

	locals      map[*types.Var]exprClass
	freshFields map[*types.Var]map[*types.Var]bool // fresh local -> field -> fresh backing
	localSrc    map[*types.Var]map[*types.Var]bool // local -> tracked source fields it aliases
	methodVals  map[*types.Var]*boundMethod
}

func newWriteCtx(n *Node, voc *WriteVocabulary) *writeCtx {
	c := &writeCtx{
		node:        n,
		info:        n.Pkg.Info,
		voc:         voc,
		paramIdx:    make(map[*types.Var]int),
		locals:      make(map[*types.Var]exprClass),
		freshFields: make(map[*types.Var]map[*types.Var]bool),
		localSrc:    make(map[*types.Var]map[*types.Var]bool),
	}
	sig, _ := n.Func.Type().(*types.Signature)
	if sig != nil {
		if rv := sig.Recv(); rv != nil {
			c.recv = rv
			if isPointerType(rv.Type()) {
				c.recvClass = exprClass{root: WriteRecv, direct: true}
			} else {
				// A value receiver is a copy: writes to its direct
				// fields mutate the copy, not the caller's object.
				c.recvClass = exprClass{root: WriteFresh, direct: true}
			}
		}
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			c.paramIdx[p] = i
			c.paramCls = append(c.paramCls, paramClass(p.Type(), i))
		}
	}
	c.methodVals = boundMethodVals(c.info, n.Decl.Body)
	c.build(n.Decl.Body)
	return c
}

// paramClass gives the root class of parameter i by its type: handle
// types root the callee in caller storage, value types are copies.
func paramClass(t types.Type, i int) exprClass {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return exprClass{root: WriteParam, param: i, direct: true}
	case *types.Chan, *types.Signature, *types.Interface:
		return sharedClass
	default:
		// Value structs, arrays, basics: the slot is a local copy.
		// Reference-typed fields inside it still classify as crossed
		// when selected through, so mutation through them survives.
		return exprClass{root: WriteFresh, direct: true}
	}
}

func isPointerType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// build runs the local fixed point: classes of locals, fresh field
// maps and tracked-source aliases, until nothing changes.
func (c *writeCtx) build(body *ast.BlockStmt) {
	for iter := 0; iter < 32; iter++ {
		changed := false
		ast.Inspect(body, func(nd ast.Node) bool {
			switch st := nd.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					var rhs ast.Expr
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					} else if len(st.Rhs) == 1 {
						rhs = st.Rhs[0]
					}
					if rhs != nil {
						c.recordBinding(lhs, rhs, &changed)
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					if i < len(st.Values) {
						c.recordBinding(name, st.Values[i], &changed)
					}
				}
			case *ast.RangeStmt:
				c.recordRange(st, &changed)
			}
			return true
		})
		if !changed {
			break
		}
	}
}

// recordBinding folds one assignment into the fixed point.
func (c *writeCtx) recordBinding(lhs, rhs ast.Expr, changed *bool) {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		v := localVar(c.info, id)
		if v == nil || v == c.recv || isPkgLevel(v) {
			return
		}
		if _, isParam := c.paramIdx[v]; isParam {
			return // reassigned parameters keep their root, conservatively
		}
		cl := c.classify(rhs)
		c.mergeLocal(v, cl, changed)
		if cl.root == WriteFresh && cl.direct {
			c.seedFreshFields(v, rhs, changed)
		}
		for _, f := range c.trackedSourcesIn(rhs) {
			if c.localSrc[v] == nil {
				c.localSrc[v] = make(map[*types.Var]bool)
			}
			if !c.localSrc[v][f] {
				c.localSrc[v][f] = true
				*changed = true
			}
		}
		return
	}
	// o.f = rhs on a fresh composite local: the field's backing
	// freshness follows the rhs.
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		baseID, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		v := localVar(c.info, baseID)
		if v == nil {
			return
		}
		ff := c.freshFields[v]
		if ff == nil {
			return
		}
		s, ok := c.info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return
		}
		f, ok := s.Obj().(*types.Var)
		if !ok {
			return
		}
		c.mergeFreshField(ff, f, c.classify(rhs).freshBacking, changed)
	}
}

// mergeFreshField ANDs a new backing-freshness fact into the field map
// (monotone: once a field held foreign backing it stays unfresh).
func (c *writeCtx) mergeFreshField(ff map[*types.Var]bool, f *types.Var, fresh bool, changed *bool) {
	cur, seen := ff[f]
	if !seen {
		cur = true // unmentioned composite field: zero value, fresh
	}
	next := cur && fresh
	if !seen || next != cur {
		ff[f] = next
		*changed = true
	}
}

func (c *writeCtx) mergeLocal(v *types.Var, cl exprClass, changed *bool) {
	cur, ok := c.locals[v]
	if !ok {
		cur = freshClass // an unassigned `var x T` is local storage
	}
	next := mergeClass(cur, cl)
	if next != cur || !ok {
		c.locals[v] = next
		if next != cur {
			*changed = true
		}
	}
}

// seedFreshFields marks the fields of a composite-literal/new/make
// bound local: unmentioned fields are zero (fresh), mentioned fields
// follow their initializer's backing freshness.
func (c *writeCtx) seedFreshFields(v *types.Var, rhs ast.Expr, changed *bool) {
	if c.freshFields[v] == nil {
		c.freshFields[v] = make(map[*types.Var]bool)
		*changed = true
	}
	lit := compositeOf(rhs)
	if lit == nil {
		return
	}
	ff := c.freshFields[v]
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		f, ok := c.info.Uses[key].(*types.Var)
		if !ok {
			continue
		}
		c.mergeFreshField(ff, f, c.classify(kv.Value).freshBacking, changed)
	}
}

func compositeOf(e ast.Expr) *ast.CompositeLit {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return compositeOf(e.X)
	case *ast.CompositeLit:
		return e
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return compositeOf(e.X)
		}
	}
	return nil
}

func (c *writeCtx) recordRange(st *ast.RangeStmt, changed *bool) {
	cl := c.classify(st.X)
	elem := exprClass{root: cl.root, param: cl.param, crossed: cl.crossed}
	if !cl.direct && !cl.freshBacking {
		elem.crossed = true
	}
	bind := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v := localVar(c.info, id)
		if v == nil {
			return
		}
		// Range variables are value copies: only reference-typed
		// elements keep a claim on the container's storage.
		switch v.Type().Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map:
		default:
			return
		}
		c.mergeLocal(v, elem, changed)
	}
	bind(st.Key)
	bind(st.Value)
}

// trackedSourcesIn collects the tracked field objects an expression
// reads through, so locals aliasing tracked storage (memo :=
// r.rowMemo) attribute their writes to the source field.
func (c *writeCtx) trackedSourcesIn(rhs ast.Expr) []*types.Var {
	var out []*types.Var
	ast.Inspect(rhs, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := nd.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := c.info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if f, ok := s.Obj().(*types.Var); ok && c.voc.Tracked(f) {
			out = append(out, f)
		}
		return true
	})
	return out
}

// classify computes the storage class of an expression. See exprClass.
func (c *writeCtx) classify(e ast.Expr) exprClass {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.classify(e.X)
	case *ast.Ident:
		return c.classifyIdent(e)
	case *ast.SelectorExpr:
		if s, ok := c.info.Selections[e]; ok && s.Kind() == types.FieldVal {
			base := c.classify(e.X)
			cl := exprClass{root: base.root, param: base.param, crossed: base.crossed}
			if isPointerType(typeOf(c.info, e.X)) {
				// Implicit dereference: free only through the bare
				// root handle (d.Cells for a *Design parameter d).
				if !base.direct {
					cl.crossed = true
				}
			}
			if base.root == WriteFresh && base.direct && !cl.crossed {
				if f, ok := s.Obj().(*types.Var); ok {
					cl.freshBacking = c.fieldFresh(e.X, f)
				}
			}
			return cl
		}
		// Package-qualified variable, method value, or qualified
		// function: as a storage class, shared.
		return sharedClass
	case *ast.IndexExpr:
		base := c.classify(e.X)
		cl := exprClass{root: base.root, param: base.param, crossed: base.crossed}
		switch typeOf(c.info, e.X).Underlying().(type) {
		case *types.Slice, *types.Map, *types.Pointer:
			if !base.direct && !base.freshBacking {
				cl.crossed = true
			}
		case *types.Array:
			// Value array: same storage as the array itself.
			cl.direct = false
		}
		return cl
	case *ast.SliceExpr:
		// A reslice denotes the same backing array.
		return c.classify(e.X)
	case *ast.StarExpr:
		base := c.classify(e.X)
		cl := exprClass{root: base.root, param: base.param, crossed: base.crossed}
		if !base.direct {
			cl.crossed = true
		}
		return cl
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			base := c.classify(e.X)
			// &location: the pointer denotes exactly that storage, so
			// a dereference through it is free.
			return exprClass{root: base.root, param: base.param, crossed: base.crossed, direct: true}
		}
		return sharedClass // channel receive, etc.
	case *ast.CompositeLit:
		return freshClass
	case *ast.CallExpr:
		switch {
		case isBuiltinCall(c.info, e, "make"), isBuiltinCall(c.info, e, "new"):
			return freshClass
		case isBuiltinCall(c.info, e, "append"):
			if len(e.Args) > 0 {
				return c.classify(e.Args[0])
			}
			return freshClass
		}
		if tv, ok := c.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.classify(e.Args[0]) // conversion preserves aliasing
		}
		return sharedClass
	case *ast.BasicLit, *ast.FuncLit:
		return freshClass
	default:
		return sharedClass
	}
}

func (c *writeCtx) classifyIdent(id *ast.Ident) exprClass {
	switch c.info.ObjectOf(id).(type) {
	case *types.Nil, *types.Const:
		return freshClass
	}
	v := localVar(c.info, id)
	if v == nil {
		return sharedClass
	}
	if v == c.recv {
		return c.recvClass
	}
	if i, ok := c.paramIdx[v]; ok {
		return c.paramCls[i]
	}
	if isPkgLevel(v) {
		return sharedClass
	}
	if cl, ok := c.locals[v]; ok {
		return cl
	}
	return freshClass
}

// fieldFresh reports whether field f of the fresh local behind base
// has function-local backing.
func (c *writeCtx) fieldFresh(base ast.Expr, f *types.Var) bool {
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	v := localVar(c.info, id)
	if v == nil {
		return false
	}
	ff, ok := c.freshFields[v]
	if !ok {
		return false
	}
	fresh, seen := ff[f]
	if !seen {
		return true // unmentioned composite field: zero value, fresh
	}
	return fresh
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// ---- local facts ----

// localFacts extracts the function's own tracked writes and the
// unknown-call sites its body contains.
func (c *writeCtx) localFacts() *weState {
	st := newWEState()
	body := c.node.Decl.Body
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range nd.Lhs {
				c.recordStore(st, lhs)
			}
		case *ast.IncDecStmt:
			c.recordStore(st, nd.X)
		case *ast.CallExpr:
			switch {
			case isBuiltinCall(c.info, nd, "copy"),
				isBuiltinCall(c.info, nd, "clear"),
				isBuiltinCall(c.info, nd, "delete"):
				if len(nd.Args) > 0 {
					c.recordElemStore(st, nd.Args[0], nd.Pos())
				}
			}
		}
		return true
	})
	c.screenEdges(st)
	return st
}

// recordStore attributes one assignment target to its tracked
// location(s) and storage class.
func (c *writeCtx) recordStore(st *weState, lhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		v := localVar(c.info, id)
		if v != nil && isPkgLevel(v) && c.voc.Tracked(v) {
			st.add(WriteEffect{Obj: v, Pos: lhs.Pos(), Owner: c.node.Func, Root: WriteShared, Crossed: true})
		}
		return
	}
	objs := c.storeObjs(lhs)
	if len(objs) == 0 {
		return
	}
	cl := c.classify(lhs)
	c.addClassified(st, objs, cl, lhs.Pos())
}

// recordElemStore handles element-level mutation of a container
// expression (copy/clear/delete, external sorts).
func (c *writeCtx) recordElemStore(st *weState, arg ast.Expr, pos token.Pos) {
	var objs []*types.Var
	if et := elemTypeOf(typeOf(c.info, arg)); et != nil {
		objs = c.valueWrites(et)
	}
	if len(objs) == 0 {
		objs = c.pathObjs(arg)
	}
	if len(objs) == 0 {
		return
	}
	cl := c.classify(arg)
	if !cl.direct && !cl.freshBacking {
		cl.crossed = true
	}
	c.addClassified(st, objs, cl, pos)
}

func (c *writeCtx) addClassified(st *weState, objs []*types.Var, cl exprClass, pos token.Pos) {
	root, param, crossed := cl.root, cl.param, cl.crossed
	if root == WriteFresh {
		if !crossed {
			return // writes confined to function-local storage
		}
		root, param = WriteShared, 0
	}
	for _, obj := range objs {
		st.add(WriteEffect{Obj: obj, Pos: pos, Owner: c.node.Func, Root: root, Param: param, Crossed: crossed})
	}
}

// storeObjs resolves a store target to tracked location objects:
// whole-value stores write every tracked field of the stored type,
// otherwise the innermost tracked field on the access path wins, with
// local source aliases as the fallback.
func (c *writeCtx) storeObjs(lhs ast.Expr) []*types.Var {
	for {
		p, ok := lhs.(*ast.ParenExpr)
		if !ok {
			break
		}
		lhs = p.X
	}
	switch lhs.(type) {
	case *ast.IndexExpr, *ast.StarExpr:
		if objs := c.valueWrites(typeOf(c.info, lhs)); len(objs) > 0 {
			return objs
		}
	}
	return c.pathObjs(lhs)
}

func (c *writeCtx) valueWrites(t types.Type) []*types.Var {
	if c.voc.ValueWrites == nil || t == nil {
		return nil
	}
	return c.voc.ValueWrites(t)
}

func (c *writeCtx) pathObjs(e ast.Expr) []*types.Var {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.SelectorExpr:
			if s, ok := c.info.Selections[t]; ok && s.Kind() == types.FieldVal {
				if f, ok := s.Obj().(*types.Var); ok && c.voc.Tracked(f) {
					return []*types.Var{f}
				}
				e = t.X
				continue
			}
			if v, ok := c.info.Uses[t.Sel].(*types.Var); ok && !v.IsField() && c.voc.Tracked(v) {
				return []*types.Var{v}
			}
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.Ident:
			v := localVar(c.info, t)
			if v == nil {
				return nil
			}
			if isPkgLevel(v) && c.voc.Tracked(v) {
				return []*types.Var{v}
			}
			if srcs := c.localSrc[v]; len(srcs) > 0 {
				out := make([]*types.Var, 0, len(srcs))
				for f := range srcs {
					out = append(out, f)
				}
				sort.Slice(out, func(i, j int) bool {
					if ki, kj := varSortKey(out[i]), varSortKey(out[j]); ki != kj {
						return ki < kj
					}
					return out[i].Pos() < out[j].Pos()
				})
				return out
			}
			return nil
		default:
			return nil
		}
	}
}

func elemTypeOf(t types.Type) types.Type {
	switch t := t.Underlying().(type) {
	case *types.Slice:
		return t.Elem()
	case *types.Array:
		return t.Elem()
	case *types.Map:
		return t.Elem()
	case *types.Pointer:
		if a, ok := t.Elem().Underlying().(*types.Array); ok {
			return a.Elem()
		}
	}
	return nil
}

// ---- call screening (local) ----

// screenEdges classifies the function's out-edges that propagation
// cannot resolve: dynamic calls (unless bound once to a method value),
// interface calls with no in-program implementation, and external
// callees. Known externals contribute element-store effects; anything
// else that receives a value reaching tracked storage becomes an
// UnknownWrite.
func (c *writeCtx) screenEdges(st *weState) {
	implCount := make(map[*ast.CallExpr]int)
	for _, e := range c.node.Out {
		if e.Kind == EdgeInterface && e.Callee != nil && !e.Callee.External() {
			implCount[e.Site]++
		}
	}
	seen := make(map[*ast.CallExpr]bool)
	for _, e := range c.node.Out {
		switch {
		case e.Kind == EdgeDynamic:
			if c.resolveDynamic(e.Site) != nil {
				continue // handled statically during propagation
			}
			st.addUnknown(UnknownWrite{
				Pos: e.Site.Pos(), Owner: c.node.Func,
				What: "call of a dynamic function value",
			})
		case e.Kind == EdgeInterface:
			if seen[e.Site] {
				continue
			}
			seen[e.Site] = true
			if implCount[e.Site] > 0 {
				continue // the implementation edges carry the effects
			}
			if c.argsReach(e.Site, false) {
				st.addUnknown(UnknownWrite{
					Pos: e.Site.Pos(), Owner: c.node.Func,
					What: "interface call with no in-program implementation receives tracked state",
				})
			}
		case e.Callee != nil && e.Callee.External():
			if e.Kind != EdgeStatic {
				continue
			}
			fn := e.Callee.Func
			if c.voc.External != nil {
				if mutates, known := c.voc.External(fn); known {
					for _, idx := range mutates {
						if idx < len(e.Site.Args) {
							c.recordElemStore(st, e.Site.Args[idx], e.Site.Pos())
						}
					}
					continue
				}
			}
			if c.argsReach(e.Site, true) {
				st.addUnknown(UnknownWrite{
					Pos: e.Site.Pos(), Owner: c.node.Func,
					What: "external call to " + fn.FullName() + " may retain or mutate tracked state",
				})
			}
		}
	}
}

// argsReach reports whether the call passes anything an unknown callee
// could use to mutate tracked storage: a receiver or argument whose
// type reaches the vocabulary, or an opaque function value.
func (c *writeCtx) argsReach(site *ast.CallExpr, includeRecv bool) bool {
	if includeRecv {
		if sel, ok := unwrapFun(site.Fun).(*ast.SelectorExpr); ok {
			if s, ok := c.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if c.reaches(typeOf(c.info, sel.X)) {
					return true
				}
			}
		}
	}
	for _, arg := range site.Args {
		if _, isLit := arg.(*ast.FuncLit); isLit {
			continue // the literal's body is analyzed inline
		}
		t := typeOf(c.info, arg)
		if _, isFunc := t.Underlying().(*types.Signature); isFunc {
			return true // opaque function value: fail closed
		}
		if c.reaches(t) {
			return true
		}
	}
	return false
}

func (c *writeCtx) reaches(t types.Type) bool {
	return c.voc.Reaches != nil && t != nil && c.voc.Reaches(t)
}

// resolveDynamic resolves a call of a local bound exactly once to a
// method value or declared function.
func (c *writeCtx) resolveDynamic(site *ast.CallExpr) *boundMethod {
	id, ok := unwrapFun(site.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := c.info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	return c.methodVals[v]
}

// boundMethodVals finds locals bound exactly once to a concrete method
// value (h.Reload), a declared function (helper), or a parameterless
// function literal, and never reassigned: calls of such locals resolve
// statically, with the receiver classified at the bind site.
func boundMethodVals(info *types.Info, body *ast.BlockStmt) map[*types.Var]*boundMethod {
	bindings := make(map[*types.Var]int)
	cand := make(map[*types.Var]*boundMethod)
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		v := localVar(info, id)
		if v == nil {
			return
		}
		bindings[v]++
		if rhs == nil {
			return
		}
		switch rhs := rhs.(type) {
		case *ast.SelectorExpr:
			if s, ok := info.Selections[rhs]; ok && s.Kind() == types.MethodVal {
				if fn, ok := s.Obj().(*types.Func); ok && !types.IsInterface(s.Recv()) {
					cand[v] = &boundMethod{fn: fn, recv: rhs.X}
				}
			}
		case *ast.Ident:
			if fn, ok := info.Uses[rhs].(*types.Func); ok {
				cand[v] = &boundMethod{fn: fn}
			}
		case *ast.FuncLit:
			// A parameterless literal mutates only through captures,
			// which the inline walk already attributes to the enclosing
			// function; with parameters the call site would smuggle
			// arguments past that attribution, so those stay dynamic.
			if rhs.Type.Params == nil || len(rhs.Type.Params.List) == 0 {
				cand[v] = &boundMethod{lit: true}
			}
		}
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch st := nd.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if i < len(st.Rhs) {
					rhs = st.Rhs[i]
				}
				record(lhs, rhs)
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				var rhs ast.Expr
				if i < len(st.Values) {
					rhs = st.Values[i]
				}
				record(name, rhs)
			}
		}
		return true
	})
	out := make(map[*types.Var]*boundMethod)
	for v, bm := range cand {
		if bindings[v] == 1 {
			out[v] = bm
		}
	}
	return out
}

// ---- propagation ----

// foldNode recomputes a node's transitive state from its local facts
// and the current summaries of its callees, re-rooting every callee
// effect through the call site's receiver and argument classes.
func foldNode(g *CallGraph, n *Node, c *writeCtx, local *weState, res map[*Node]*weState) *weState {
	st := newWEState()
	for _, e := range local.eff {
		st.add(e)
	}
	for _, u := range local.unk {
		st.addUnknown(u)
	}
	for _, e := range n.Out {
		var callee *Node
		var recvExpr ast.Expr
		var args []ast.Expr
		switch {
		case e.Kind == EdgeDynamic:
			bm := c.resolveDynamic(e.Site)
			if bm == nil {
				continue
			}
			callee = g.Node(bm.fn)
			recvExpr, args = bm.recv, e.Site.Args
		case e.Callee != nil && !e.Callee.External():
			callee = e.Callee
			recvExpr, args = splitOperands(c.info, e.Site)
		default:
			continue
		}
		if callee == nil {
			continue
		}
		sub := res[callee]
		if sub == nil {
			continue // not computed yet (same SCC); next pass picks it up
		}
		sig, _ := callee.Func.Type().(*types.Signature)
		for _, eff := range sub.eff {
			cl, ok := operandClass(c, eff, sig, recvExpr, args, e.Site)
			if !ok {
				continue
			}
			if re, keep := reroot(eff, cl); keep {
				st.add(re)
			}
		}
		for _, u := range sub.unk {
			st.addUnknown(u)
		}
	}
	return st
}

// splitOperands maps a call site onto (receiver expression, argument
// expressions), normalizing method expressions (T.M(recv, args...)).
func splitOperands(info *types.Info, site *ast.CallExpr) (recv ast.Expr, args []ast.Expr) {
	fun := unwrapFun(site.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok {
			switch s.Kind() {
			case types.MethodVal:
				return sel.X, site.Args
			case types.MethodExpr:
				if len(site.Args) > 0 {
					return site.Args[0], site.Args[1:]
				}
			}
		}
	}
	return nil, site.Args
}

// operandClass finds the caller-side class of the storage a callee
// effect is rooted in.
func operandClass(c *writeCtx, eff WriteEffect, sig *types.Signature, recvExpr ast.Expr, args []ast.Expr, site *ast.CallExpr) (exprClass, bool) {
	switch eff.Root {
	case WriteShared:
		return sharedClass, true
	case WriteRecv:
		if recvExpr == nil {
			return sharedClass, true
		}
		return c.classify(recvExpr), true
	case WriteParam:
		if sig == nil {
			return sharedClass, true
		}
		np := sig.Params().Len()
		idx := eff.Param
		if sig.Variadic() && idx == np-1 {
			if site.Ellipsis.IsValid() {
				if idx < len(args) {
					return c.classify(args[idx]), true
				}
				return sharedClass, true
			}
			if idx >= len(args) {
				return exprClass{}, false // nothing passed for the variadic slot
			}
			cl := c.classify(args[idx])
			for _, a := range args[idx+1:] {
				cl = mergeClass(cl, c.classify(a))
			}
			return cl, true
		}
		if idx < len(args) {
			return c.classify(args[idx]), true
		}
		return sharedClass, true
	default: // WriteFresh never appears in summaries
		return sharedClass, true
	}
}

// reroot rewrites a callee effect in the caller's frame. Fresh-rooted
// call-site storage absorbs uncrossed effects entirely; everything
// else survives under the caller's root, crossing when the handle
// passed was not the bare root.
func reroot(eff WriteEffect, cl exprClass) (WriteEffect, bool) {
	switch {
	case cl.root == WriteShared || cl.crossed:
		eff.Root, eff.Param, eff.Crossed = WriteShared, 0, true
	case cl.root == WriteFresh:
		if eff.Crossed || !cl.direct {
			eff.Root, eff.Param, eff.Crossed = WriteShared, 0, true
			return eff, true
		}
		return eff, false // the mutated storage is the caller's own fresh object
	default:
		eff.Root, eff.Param = cl.root, cl.param
		eff.Crossed = eff.Crossed || !cl.direct
	}
	return eff, true
}
