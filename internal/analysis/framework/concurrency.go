// Concurrency summary construction: a block-structured walk over one
// function body that tracks the set of held mutexes through
// Lock/Unlock pairs (with defer handling), records field/variable
// accesses and call sites with their guard context, classifies
// blocking operations, and splits spawned goroutine literals into
// their own sub-summaries.
//
// The guard walk is a simple pairing lattice, not a full CFG dataflow:
// statements in a block are processed in order with a mutable held
// set; branches (if/for/switch/select bodies) get a clone, so a lock
// taken inside a branch never leaks into the code after it. A
// `defer mu.Unlock()` leaves the mutex held for the rest of the body —
// the idiomatic lock-to-end-of-function shape — while an explicit
// Unlock removes it at that point. This under-approximates release
// (a branch that unlocks early is still treated as held afterwards
// only if the unlock was inside the branch), which errs toward
// reporting a blocking-op-under-lock that a human must then judge, and
// never toward silently missing an unguarded access: guard inference
// in lockguard works on majorities, not single samples.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// summarizeConc computes the concurrency summary of one node.
func summarizeConc(n *Node) *ConcSummary {
	s := &ConcSummary{Fn: n.Func, CallHeld: make(map[*ast.CallExpr]GuardSet)}
	if n.Decl == nil || n.Decl.Body == nil {
		return s
	}
	w := &concWalk{info: n.Pkg.Info, sum: s, fresh: make(map[*types.Var]bool)}
	w.stmts(n.Decl.Body.List, make(GuardSet))
	s.TailSend, s.TailDone = tailFacts(n.Pkg.Info, n.Decl.Body.List)
	// Fold spawned-body call-site guards and op indexes into the
	// enclosing summary (see the ConcSummary doc for why these two fact
	// families span the whole declaration).
	var fold func(parent, body *ConcSummary)
	fold = func(parent, body *ConcSummary) {
		for site, held := range body.CallHeld {
			parent.CallHeld[site] = held
		}
		parent.WGAdds = append(parent.WGAdds, body.WGAdds...)
		parent.WGDones = append(parent.WGDones, body.WGDones...)
		parent.WGWaits = append(parent.WGWaits, body.WGWaits...)
		parent.Sends = append(parent.Sends, body.Sends...)
		parent.Recvs = append(parent.Recvs, body.Recvs...)
		parent.Closes = append(parent.Closes, body.Closes...)
		for _, sp := range body.Spawns {
			if sp.Body != nil {
				fold(parent, sp.Body)
			}
		}
	}
	for _, sp := range s.Spawns {
		if sp.Body != nil {
			fold(s, sp.Body)
		}
	}
	return s
}

// AllSpawns returns the summary's spawn sites including ones nested
// inside spawned bodies.
func (s *ConcSummary) AllSpawns() []*SpawnSite {
	out := append([]*SpawnSite(nil), s.Spawns...)
	for _, sp := range s.Spawns {
		if sp.Body != nil {
			out = append(out, sp.Body.AllSpawns()...)
		}
	}
	return out
}

// InSpawnSite reports whether the call site lexically sits inside one
// of the summary's spawned goroutine bodies (including nested spawns).
func (s *ConcSummary) InSpawnSite(site *ast.CallExpr) bool {
	for _, sp := range s.AllSpawns() {
		if sp.Body == nil {
			continue
		}
		if _, ok := sp.Body.CallHeld[site]; ok {
			return true
		}
	}
	return false
}

// SpawnBindings maps the parameters (and receiver) of a named spawn
// target to the caller variables bound to them at the go statement:
// `go worker(&wg, ch)` binds worker's wg parameter to the caller's wg
// and its ch parameter to the caller's ch, letting a lifetime proof
// translate the callee body's channel and WaitGroup facts into the
// spawner's frame. A parameter whose argument does not resolve to a
// variable maps to nil (unprovable); info must be the spawning
// package's type info. Returns nil for literal or dynamic spawns.
func SpawnBindings(info *types.Info, site *SpawnSite) map[*types.Var]*types.Var {
	if site.Callee == nil {
		return nil
	}
	sig, ok := site.Callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make(map[*types.Var]*types.Var)
	if recv := sig.Recv(); recv != nil {
		if sel, ok := unwrapFun(site.Stmt.Call.Fun).(*ast.SelectorExpr); ok {
			out[recv] = resolveVar(info, sel.X)
		}
	}
	params := sig.Params()
	for i, arg := range site.Stmt.Call.Args {
		if i >= params.Len() {
			break
		}
		if sig.Variadic() && i == params.Len()-1 {
			break // variadic slot aggregates; no single binding
		}
		out[params.At(i)] = resolveVar(info, arg)
	}
	return out
}

// concWalk carries the walk state for one summary (one declared body,
// or one spawned literal body).
type concWalk struct {
	info *types.Info
	sum  *ConcSummary
	// fresh holds locals assigned from a composite literal or new(T) in
	// this body: their referents are unpublished until stored somewhere
	// shared, so accesses through them are constructor initialization.
	fresh map[*types.Var]bool
	// inDefer marks walking inside a deferred call or literal: Unlocks
	// do not release (they run at return), and ops are tagged Deferred.
	inDefer bool
	// inSelect suppresses the per-communication BlockSites inside a
	// select (the select itself is the one blocking point).
	inSelect bool
	// spawnDepth > 0 while walking a spawned literal body (used to tag
	// ConcCall.InSpawn on calls recorded there).
	inSpawn bool
}

func (w *concWalk) stmts(list []ast.Stmt, held GuardSet) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *concWalk) stmt(s ast.Stmt, held GuardSet) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		// A bare nested block shares the sequence: locks taken inside
		// it remain held after (Go scoping does not release them).
		w.stmts(s.List, held)
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.SendStmt:
		w.chanSend(s, held)
	case *ast.AssignStmt:
		w.assign(s, held)
	case *ast.IncDecStmt:
		w.target(s.X, held)
	case *ast.GoStmt:
		w.spawn(s, held)
	case *ast.DeferStmt:
		w.deferCall(s.Call, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, held.Clone())
		w.stmt(s.Else, held.Clone())
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		inner := held.Clone()
		w.expr(s.Cond, inner)
		w.stmts(s.Body.List, inner)
		w.stmt(s.Post, inner)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		if _, isChan := typeOf(w.info, s.X).Underlying().(*types.Chan); isChan {
			ch := resolveVar(w.info, s.X)
			w.sum.Recvs = append(w.sum.Recvs, ChanOp{Ch: ch, Pos: s.Pos()})
			w.block(BlockSite{Kind: BlockRecv, Pos: s.Pos(), Chan: ch, Held: held.Clone()})
		}
		if s.Tok == token.ASSIGN {
			w.target(s.Key, held)
			w.target(s.Value, held)
		}
		w.stmts(s.Body.List, held.Clone())
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		w.expr(s.Tag, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := held.Clone()
				for _, e := range cc.List {
					w.expr(e, inner)
				}
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, held.Clone())
			}
		}
	case *ast.SelectStmt:
		w.selectStmt(s, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.markFresh(name, vs.Values[i])
						w.expr(vs.Values[i], held)
					}
				}
			}
		}
	}
}

// selectStmt records one BlockSelect for a default-less select and
// walks the communication clauses with the per-op BlockSites
// suppressed; the channel ops still enter the service indexes either
// way (an op behind a default still services its peer).
func (w *concWalk) selectStmt(s *ast.SelectStmt, held GuardSet) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		w.block(BlockSite{Kind: BlockSelect, Pos: s.Pos(), Held: held.Clone()})
	}
	saved := w.inSelect
	w.inSelect = true
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		inner := held.Clone()
		w.stmt(cc.Comm, inner)
		w.inSelect = saved
		w.stmts(cc.Body, inner)
		w.inSelect = true
	}
	w.inSelect = saved
}

func (w *concWalk) chanSend(s *ast.SendStmt, held GuardSet) {
	ch := resolveVar(w.info, s.Chan)
	w.sum.Sends = append(w.sum.Sends, ChanOp{Ch: ch, Pos: s.Pos()})
	if !w.inSelect {
		w.block(BlockSite{Kind: BlockSend, Pos: s.Pos(), Chan: ch, Held: held.Clone()})
	}
	w.expr(s.Value, held)
}

func (w *concWalk) block(b BlockSite) { w.sum.Blocks = append(w.sum.Blocks, b) }

func (w *concWalk) assign(s *ast.AssignStmt, held GuardSet) {
	if s.Tok == token.DEFINE && len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				w.markFresh(id, s.Rhs[i])
			}
		}
	}
	for _, rhs := range s.Rhs {
		w.expr(rhs, held)
	}
	for _, lhs := range s.Lhs {
		w.target(lhs, held)
	}
}

// markFresh records a local defined from a composite literal or new(T):
// its referent is private to this function until published.
func (w *concWalk) markFresh(id *ast.Ident, rhs ast.Expr) {
	v, ok := w.info.Defs[id].(*types.Var)
	if !ok {
		return
	}
	switch rhs := rhs.(type) {
	case *ast.CompositeLit:
		w.fresh[v] = true
	case *ast.UnaryExpr:
		if rhs.Op == token.AND {
			if _, ok := rhs.X.(*ast.CompositeLit); ok {
				w.fresh[v] = true
			}
		}
	case *ast.CallExpr:
		if isBuiltinCall(w.info, rhs, "new") {
			w.fresh[v] = true
		}
	}
}

// target records one assignment target: a write access to the
// outermost resolvable variable (a store through an index or selector
// chain mutates the container the base names).
func (w *concWalk) target(e ast.Expr, held GuardSet) {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		if v := localVar(w.info, e); v != nil {
			w.access(v, e.Pos(), true, held, w.isFreshBase(e))
		}
	case *ast.SelectorExpr:
		if v := fieldOf(w.info, e); v != nil {
			w.access(v, e.Pos(), true, held, w.isFreshBase(e))
		}
		w.expr(e.X, held)
	case *ast.IndexExpr:
		w.target(e.X, held)
		w.expr(e.Index, held)
	case *ast.StarExpr:
		// A deref store's target is whatever the pointer points at —
		// unresolvable here; the pointer itself is read.
		w.expr(e.X, held)
	case *ast.ParenExpr:
		w.target(e.X, held)
	default:
		w.expr(e, held)
	}
}

func (w *concWalk) access(v *types.Var, pos token.Pos, write bool, held GuardSet, fresh bool) {
	if selfSynchronized(v.Type()) {
		return
	}
	w.sum.Accesses = append(w.sum.Accesses, FieldAccess{
		Obj: v, Write: write, Pos: pos, Held: held.Clone(), Fresh: fresh, Deferred: w.inDefer,
	})
}

// expr walks one expression in read position.
func (w *concWalk) expr(e ast.Expr, held GuardSet) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		if v, ok := w.info.Uses[e].(*types.Var); ok && !v.IsField() {
			w.access(v, e.Pos(), false, held, w.fresh[v])
		}
	case *ast.SelectorExpr:
		if v := fieldOf(w.info, e); v != nil {
			w.access(v, e.Pos(), false, held, w.isFreshBase(e))
		}
		w.expr(e.X, held)
	case *ast.CallExpr:
		w.call(e, held)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			ch := resolveVar(w.info, e.X)
			w.sum.Recvs = append(w.sum.Recvs, ChanOp{Ch: ch, Pos: e.Pos()})
			if !w.inSelect {
				w.block(BlockSite{Kind: BlockRecv, Pos: e.Pos(), Chan: ch, Held: held.Clone()})
			}
		}
		w.expr(e.X, held)
	case *ast.FuncLit:
		// A non-spawn literal folds into the enclosing summary, walked
		// with a clone of the current guard context (callbacks are
		// typically invoked where they are built; for stored escaping
		// callbacks this over-approximates the guards, which biases
		// lockguard toward accepting — a documented may-analysis
		// choice).
		w.stmts(e.Body.List, held.Clone())
	case *ast.BinaryExpr:
		w.expr(e.X, held)
		w.expr(e.Y, held)
	case *ast.ParenExpr:
		w.expr(e.X, held)
	case *ast.StarExpr:
		w.expr(e.X, held)
	case *ast.IndexExpr:
		w.expr(e.X, held)
		w.expr(e.Index, held)
	case *ast.IndexListExpr:
		w.expr(e.X, held)
	case *ast.SliceExpr:
		w.expr(e.X, held)
		w.expr(e.Low, held)
		w.expr(e.High, held)
		w.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		w.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value, held)
				continue
			}
			w.expr(el, held)
		}
	}
}

// call handles one call expression: sync.Mutex/RWMutex lock pairing,
// WaitGroup ops, close(), static callee recording, and the held-at-site
// index.
func (w *concWalk) call(call *ast.CallExpr, held GuardSet) {
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			w.expr(a, held)
		}
		return
	}
	if isBuiltinCall(w.info, call, "close") && len(call.Args) == 1 {
		w.sum.Closes = append(w.sum.Closes, ChanOp{Ch: resolveVar(w.info, call.Args[0]), Pos: call.Pos()})
		return
	}
	fun := unwrapFun(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if fn, ok := selectedFunc(w.info, sel); ok {
			if w.syncMethod(call, sel, fn, held) {
				return
			}
		}
	}
	w.sum.CallHeld[call] = held.Clone()
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := w.info.Uses[fun].(*types.Func); ok {
			w.recordCall(fn, call, held)
		}
	case *ast.SelectorExpr:
		if fn, ok := selectedFunc(w.info, sel(fun)); ok {
			w.recordCall(fn, call, held)
		}
		w.expr(fun.X, held)
	case *ast.FuncLit:
		// Immediately invoked: walked inline with the current guards.
		w.stmts(fun.Body.List, held.Clone())
	}
	for _, a := range call.Args {
		w.expr(a, held)
	}
}

func sel(e *ast.SelectorExpr) *ast.SelectorExpr { return e }

func (w *concWalk) recordCall(fn *types.Func, call *ast.CallExpr, held GuardSet) {
	w.sum.Calls = append(w.sum.Calls, ConcCall{
		Callee: fn.Origin(), Site: call, Pos: call.Pos(), Held: held.Clone(), InSpawn: w.inSpawn,
	})
}

// syncMethod recognizes the sync.Mutex/RWMutex/WaitGroup method calls
// that mutate the walk state; it reports true when the call was one.
func (w *concWalk) syncMethod(call *ast.CallExpr, fun *ast.SelectorExpr, fn *types.Func, held GuardSet) bool {
	recv := func() *types.Var { return resolveVar(w.info, fun.X) }
	switch fn.Origin().FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		m := recv()
		w.block(BlockSite{Kind: BlockLock, Pos: call.Pos(), Mutex: m, Held: held.Clone()})
		if m != nil && !w.inDefer {
			held[m] = GuardWrite
		}
	case "(*sync.RWMutex).RLock":
		m := recv()
		w.block(BlockSite{Kind: BlockLock, Pos: call.Pos(), Mutex: m, Held: held.Clone()})
		if m != nil && !w.inDefer && held[m] < GuardRead {
			held[m] = GuardRead
		}
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		if m := recv(); m != nil && !w.inDefer {
			delete(held, m)
		}
	case "(*sync.WaitGroup).Add":
		w.sum.WGAdds = append(w.sum.WGAdds, SyncOp{Obj: recv(), Pos: call.Pos(), Deferred: w.inDefer})
		for _, a := range call.Args {
			w.expr(a, held)
		}
	case "(*sync.WaitGroup).Done":
		w.sum.WGDones = append(w.sum.WGDones, SyncOp{Obj: recv(), Pos: call.Pos(), Deferred: w.inDefer})
	case "(*sync.WaitGroup).Wait":
		w.sum.WGWaits = append(w.sum.WGWaits, SyncOp{Obj: recv(), Pos: call.Pos(), Deferred: w.inDefer})
		w.block(BlockSite{Kind: BlockWait, Pos: call.Pos(), Held: held.Clone()})
	default:
		return false
	}
	return true
}

// deferCall handles `defer f(...)`: the call runs at return, so lock
// mutations inside it are ignored for the sequence (a deferred Unlock
// keeps the mutex held to the end) and ops inside it are tagged.
func (w *concWalk) deferCall(call *ast.CallExpr, held GuardSet) {
	saved := w.inDefer
	w.inDefer = true
	if lit, ok := unwrapFun(call.Fun).(*ast.FuncLit); ok {
		w.stmts(lit.Body.List, held.Clone())
	} else {
		w.call(call, held)
	}
	w.inDefer = saved
}

// spawn splits a go statement: literal bodies get their own
// sub-summary walked with an empty guard context (a goroutine does not
// inherit its spawner's locks); named targets are recorded for the
// call-graph side; anything else is a dynamic spawn.
func (w *concWalk) spawn(s *ast.GoStmt, held GuardSet) {
	site := &SpawnSite{Stmt: s, Pos: s.Pos()}
	fun := unwrapFun(s.Call.Fun)
	switch fun := fun.(type) {
	case *ast.FuncLit:
		body := &ConcSummary{Fn: w.sum.Fn, CallHeld: make(map[*ast.CallExpr]GuardSet)}
		bw := &concWalk{info: w.info, sum: body, fresh: make(map[*types.Var]bool), inSpawn: true}
		bw.stmts(fun.Body.List, make(GuardSet))
		body.TailSend, body.TailDone = tailFacts(w.info, fun.Body.List)
		site.Body = body
		site.BodyLit = fun
	case *ast.Ident:
		if fn, ok := w.info.Uses[fun].(*types.Func); ok {
			site.Callee = fn.Origin()
		} else {
			site.Dynamic = true
		}
	case *ast.SelectorExpr:
		if fn, ok := selectedFunc(w.info, fun); ok && !isInterfaceRecv(w.info, fun) {
			site.Callee = fn.Origin()
		} else {
			site.Dynamic = true
		}
		w.expr(fun.X, held)
	default:
		site.Dynamic = true
	}
	// The spawn's arguments are evaluated in the spawning goroutine.
	for _, a := range s.Call.Args {
		w.expr(a, held)
	}
	w.sum.Spawns = append(w.sum.Spawns, site)
}

// isFreshBase reports whether the leftmost identifier of a selector
// chain is a constructor-local of this body.
func (w *concWalk) isFreshBase(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			v, _ := w.info.Uses[x].(*types.Var)
			if v == nil {
				v, _ = w.info.Defs[x].(*types.Var)
			}
			return v != nil && w.fresh[v]
		default:
			return false
		}
	}
}

// tailFacts inspects a body for the join-handoff shapes goleak
// accepts: a trailing channel send (result slot), a trailing
// WaitGroup.Done, or a `defer wg.Done()` anywhere at the top level —
// the deferred form runs on every exit path, which is strictly
// stronger than a literal tail statement.
func tailFacts(info *types.Info, list []ast.Stmt) (tailSend, tailDone *types.Var) {
	doneRecv := func(call *ast.CallExpr) *types.Var {
		if s, ok := unwrapFun(call.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := selectedFunc(info, s); ok && fn.Origin().FullName() == "(*sync.WaitGroup).Done" {
				return resolveVar(info, s.X)
			}
		}
		return nil
	}
	for _, s := range list {
		if d, ok := s.(*ast.DeferStmt); ok {
			if wg := doneRecv(d.Call); wg != nil {
				tailDone = wg
			}
		}
	}
	if len(list) == 0 {
		return nil, tailDone
	}
	switch last := list[len(list)-1].(type) {
	case *ast.SendStmt:
		tailSend = resolveVar(info, last.Chan)
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if wg := doneRecv(call); wg != nil {
				tailDone = wg
			}
		}
	}
	return tailSend, tailDone
}

// selectedFunc resolves a selector to the method or package function
// it names.
func selectedFunc(info *types.Info, e *ast.SelectorExpr) (*types.Func, bool) {
	if sel, ok := info.Selections[e]; ok {
		fn, ok := sel.Obj().(*types.Func)
		return fn, ok
	}
	fn, ok := info.Uses[e.Sel].(*types.Func)
	return fn, ok
}

// isInterfaceRecv reports whether the selector is a method call
// through an interface value.
func isInterfaceRecv(info *types.Info, e *ast.SelectorExpr) bool {
	sel, ok := info.Selections[e]
	return ok && types.IsInterface(sel.Recv())
}

// resolveVar resolves an expression to the variable or field object it
// denotes, chasing parens, derefs and address-ofs; nil when the
// expression is anything more dynamic (a call result, an index, a
// literal).
func resolveVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok {
				v, _ := sel.Obj().(*types.Var)
				return v
			}
			// Package-qualified variable.
			v, _ := info.Uses[x.Sel].(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// fieldOf resolves a selector expression to the struct field or
// package-level variable it reads, nil for methods and package names.
func fieldOf(info *types.Info, e *ast.SelectorExpr) *types.Var {
	if sel, ok := info.Selections[e]; ok {
		if sel.Kind() == types.FieldVal {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		return nil
	}
	if v, ok := info.Uses[e.Sel].(*types.Var); ok && !v.IsField() {
		return v // package-qualified variable
	}
	return nil
}

// selfSynchronized reports types whose values carry their own
// synchronization discipline — channels, sync primitives, atomics —
// and are therefore excluded from guard inference and the shared-write
// screen (a chan field is read on every send; that is its job).
func selfSynchronized(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				return true
			}
		}
	}
	return false
}
