// Package framework is a self-contained re-implementation of the slice
// of golang.org/x/tools/go/analysis that the mclegal-vet suite needs:
// an Analyzer/Pass/Diagnostic vocabulary, a runner, and justification
// directives. The container this repository builds in has no module
// proxy access, so the upstream module cannot be vendored; the API
// shape mirrors go/analysis closely enough that swapping the import
// path (and the *_test.go harness) back to x/tools is mechanical.
//
// Directives: a diagnostic can be suppressed by a comment of the form
//
//	//mclegal:<name> <justification>
//
// on the flagged line or the line directly above it. The justification
// text is mandatory — a bare directive is itself a diagnostic — so
// every suppression in the tree documents why the invariant does not
// apply. Each analyzer documents its directive name (e.g. maporder
// honours //mclegal:ordered).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// mclegal-vet command line.
	Name string
	// Doc is the help text: first line is a summary, the rest explains
	// the invariant being enforced.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through the Pass.
	Run func(*Pass) error
}

// A Pass is the interface between one analyzer and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	directives map[string]map[int]directive // filename -> line -> directive
	diags      *[]Diagnostic
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

type directive struct {
	name   string
	reason string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...),
	})
}

var directiveRe = regexp.MustCompile(`^//mclegal:([a-z]+)(?:[ \t]+(.*))?$`)

// Suppressed reports whether a finding at pos is covered by a
// //mclegal:<name> directive on the same line or the line above. A
// directive without a justification suppresses the finding but is
// reported itself, so suppressions can never silently lose their why.
func (p *Pass) Suppressed(name string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	lines := p.directives[position.Filename]
	for _, ln := range [2]int{position.Line, position.Line - 1} {
		d, ok := lines[ln]
		if !ok || d.name != name {
			continue
		}
		if strings.TrimSpace(d.reason) == "" {
			p.Reportf(pos, "//mclegal:%s directive is missing a justification", name)
		}
		return true
	}
	return false
}

// buildDirectives indexes every //mclegal: comment by file and line.
func buildDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int]directive {
	out := make(map[string]map[int]directive)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]directive)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = directive{name: m[1], reason: m[2]}
			}
		}
	}
	return out
}

// RunAnalyzers applies the analyzers to one loaded package and returns
// the combined diagnostics in position order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	dirs := buildDirectives(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			directives: dirs,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// PathMatchesAny reports whether pkgPath is one of the target packages:
// equal to a target or ending in "/"+target. Matching by suffix lets
// analysistest fixtures (whose import paths are rooted in testdata/src)
// scope themselves exactly like the real module packages.
func PathMatchesAny(pkgPath string, targets []string) bool {
	for _, t := range targets {
		if pkgPath == t || strings.HasSuffix(pkgPath, "/"+t) {
			return true
		}
	}
	return false
}
