// Package framework is a self-contained re-implementation of the slice
// of golang.org/x/tools/go/analysis that the mclegal-vet suite needs:
// an Analyzer/Pass/Diagnostic vocabulary, a runner, and justification
// directives. The container this repository builds in has no module
// proxy access, so the upstream module cannot be vendored; the API
// shape mirrors go/analysis closely enough that swapping the import
// path (and the *_test.go harness) back to x/tools is mechanical.
//
// Directives: a diagnostic can be suppressed by a comment of the form
//
//	//mclegal:<name> <justification>
//
// on the flagged line or the line directly above it. The justification
// text is mandatory — a bare directive is itself a diagnostic — so
// every suppression in the tree documents why the invariant does not
// apply. Each analyzer documents its directive name (e.g. maporder
// honours //mclegal:ordered).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// mclegal-vet command line.
	Name string
	// Doc is the help text: first line is a summary, the rest explains
	// the invariant being enforced.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through the Pass.
	Run func(*Pass) error

	// Scope lists the package-path suffixes the analyzer's invariant
	// applies to (nil means every package). It is metadata for
	// mclegal-vet's -explain output; the analyzer's Run remains the
	// source of truth for actual scoping.
	Scope []string
	// Directive is the //mclegal:<name> directive the analyzer honours
	// (suppression or declaration), and Example is one justified use of
	// it. mclegal-vet -explain prints both, so the documented
	// suppression story cannot drift from the code.
	Directive string
	Example   string
}

// A Pass is the interface between one analyzer and one package. Prog
// gives cross-package analyzers access to the whole program (call
// graph, summaries, sibling packages); per-package analyzers can
// ignore it.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Prog      *Program

	directives map[string]map[int]directive // filename -> line -> directive
	diags      *[]Diagnostic
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

type directive struct {
	name   string
	reason string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...),
	})
}

var directiveRe = regexp.MustCompile(`^//mclegal:([a-z]+)(?:[ \t]+(.*))?$`)

// Suppressed reports whether a finding at pos is covered by a
// //mclegal:<name> directive on the same line or the line above. A
// directive without a justification suppresses the finding but is
// reported itself, so suppressions can never silently lose their why.
func (p *Pass) Suppressed(name string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	lines := p.directives[position.Filename]
	for _, ln := range [2]int{position.Line, position.Line - 1} {
		d, ok := lines[ln]
		if !ok || d.name != name {
			continue
		}
		if strings.TrimSpace(d.reason) == "" {
			p.Reportf(pos, "//mclegal:%s directive is missing a justification", name)
		}
		return true
	}
	return false
}

// DocDirective scans the doc comment of a declaration for a
// //mclegal:<name> directive and returns its justification text.
// Analyzers use it for function-level markers such as
// //mclegal:hotpath (noalloc roots), where the directive annotates the
// whole declaration rather than suppressing one finding.
func DocDirective(doc *ast.CommentGroup, name string) (reason string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		m := directiveRe.FindStringSubmatch(c.Text)
		if m != nil && m[1] == name {
			return strings.TrimSpace(m[2]), true
		}
	}
	return "", false
}

// RunAnalyzers applies the analyzers to one loaded package and returns
// the combined diagnostics in position order. It is the single-package
// convenience form of Program.Run; cross-package analyzers see a
// program containing just this package.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return NewProgram([]*Package{pkg}).Run(analyzers)
}

// PathMatchesAny reports whether pkgPath is one of the target packages:
// equal to a target or ending in "/"+target. Matching by suffix lets
// analysistest fixtures (whose import paths are rooted in testdata/src)
// scope themselves exactly like the real module packages.
func PathMatchesAny(pkgPath string, targets []string) bool {
	for _, t := range targets {
		if pkgPath == t || strings.HasSuffix(pkgPath, "/"+t) {
			return true
		}
	}
	return false
}
