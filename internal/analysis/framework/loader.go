package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages from source without invoking
// the go command or touching the network: module-local import paths
// resolve under ModuleRoot, everything else under GOROOT/src (or the
// fixture tree when FixtureRoot is set). Target packages are checked
// strictly with full bodies; dependencies are checked leniently with
// IgnoreFuncBodies, which keeps a whole-module run cheap.
type Loader struct {
	Fset *token.FileSet
	// ModulePath/ModuleRoot map the current module's import paths to
	// directories ("mclegal" -> the repository root). Empty disables
	// module resolution (fixture loads).
	ModulePath string
	ModuleRoot string
	// FixtureRoot, when set, resolves import paths that exist under it
	// before falling back to GOROOT; analysistest points it at a
	// testdata/src tree.
	FixtureRoot string

	headers map[string]*types.Package
	loading map[string]bool
}

// NewLoader builds a loader for one module (both arguments may be
// empty for fixture-only loading).
func NewLoader(modulePath, moduleRoot string) *Loader {
	return &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modulePath,
		ModuleRoot: moduleRoot,
		headers:    make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}
}

// dirFor resolves an import path to a source directory.
func (l *Loader) dirFor(path string) (string, error) {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleRoot, nil
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), nil
		}
	}
	if l.FixtureRoot != "" {
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	dir := filepath.Join(build.Default.GOROOT, "src", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	return "", fmt.Errorf("cannot resolve import %q (not in module, fixtures, or GOROOT)", path)
}

// parseDir parses the buildable non-test Go files of dir, applying the
// host build constraints via go/build (no go command involved).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append(append([]string{}, bp.GoFiles...), bp.CgoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Import implements types.Importer for dependency packages.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.headers[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	// Dependencies only have to expose their declarations; bodies are
	// skipped and residual errors (e.g. references into even deeper
	// internals) tolerated, matching what an export-data importer would
	// provide.
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		IgnoreFuncBodies: true,
		Error:            func(error) {},
	}
	pkg, _ := conf.Check(path, l.Fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("type-checking %q produced no package", path)
	}
	l.headers[path] = pkg
	return pkg, nil
}

// LoadTarget loads one package for analysis: full bodies, full
// types.Info, and hard failure on any type error so analyzers never
// run over half-resolved syntax.
func (l *Loader) LoadTarget(path string) (*Package, error) {
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w (and %d more)", path, errs[0], len(errs)-1)
	}
	if tpkg == nil {
		return nil, fmt.Errorf("type-checking %s produced no package", path)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}
