package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages from source without invoking
// the go command or touching the network: module-local import paths
// resolve under ModuleRoot, everything else under GOROOT/src (or the
// fixture tree when FixtureRoot is set). Target packages are checked
// strictly with full bodies; dependencies are checked leniently with
// IgnoreFuncBodies, which keeps a whole-module run cheap.
//
// Every package is parsed and type-checked at most once per loader, so
// a multi-analyzer run over many targets shares all of the parse and
// dependency-checking work. When one target imports another, the
// import resolves to the importee's full (bodies included) package, so
// the whole program shares one types.Object universe — the property
// the call-graph layer (callgraph.go) depends on to connect
// cross-package call edges.
type Loader struct {
	Fset *token.FileSet
	// ModulePath/ModuleRoot map the current module's import paths to
	// directories ("mclegal" -> the repository root). Empty disables
	// module resolution (fixture loads).
	ModulePath string
	ModuleRoot string
	// FixtureRoot, when set, resolves import paths that exist under it
	// before falling back to GOROOT; analysistest points it at a
	// testdata/src tree.
	FixtureRoot string

	headers map[string]*types.Package
	full    map[string]*Package
	targets map[string]bool
	loading map[string]bool
	parsed  map[string][]*ast.File // dir -> parsed files (cache)
}

// NewLoader builds a loader for one module (both arguments may be
// empty for fixture-only loading).
func NewLoader(modulePath, moduleRoot string) *Loader {
	return &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modulePath,
		ModuleRoot: moduleRoot,
		headers:    make(map[string]*types.Package),
		full:       make(map[string]*Package),
		targets:    make(map[string]bool),
		loading:    make(map[string]bool),
		parsed:     make(map[string][]*ast.File),
	}
}

// dirFor resolves an import path to a source directory.
func (l *Loader) dirFor(path string) (string, error) {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleRoot, nil
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), nil
		}
	}
	if l.FixtureRoot != "" {
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	dir := filepath.Join(build.Default.GOROOT, "src", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	return "", fmt.Errorf("cannot resolve import %q (not in module, fixtures, or GOROOT)", path)
}

// parseDir parses the buildable non-test Go files of dir, applying the
// host build constraints via go/build (no go command involved).
// Results are cached per directory: a package that is both a
// dependency of one target and a target itself is parsed exactly once,
// so its syntax trees (and their token.File entries) are shared.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	if files, ok := l.parsed[dir]; ok {
		return files, nil
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append(append([]string{}, bp.GoFiles...), bp.CgoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	l.parsed[dir] = files
	return files, nil
}

// Import implements types.Importer for dependency packages. Imports of
// declared target packages resolve to the full (bodies included)
// load, so cross-target references share one types.Object identity;
// everything else gets the cheap header-only treatment.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.full[path]; ok {
		return pkg.Types, nil
	}
	if pkg, ok := l.headers[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	if l.targets[path] {
		pkg, err := l.loadFull(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	// Dependencies only have to expose their declarations; bodies are
	// skipped and residual errors (e.g. references into even deeper
	// internals) tolerated, matching what an export-data importer would
	// provide.
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		IgnoreFuncBodies: true,
		Error:            func(error) {},
	}
	pkg, _ := conf.Check(path, l.Fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("type-checking %q produced no package", path)
	}
	l.headers[path] = pkg
	return pkg, nil
}

// loadFull type-checks path with full bodies and full types.Info,
// failing hard on any type error so analyzers never run over
// half-resolved syntax. The result is memoized and also registered as
// the import answer for path.
func (l *Loader) loadFull(path string) (*Package, error) {
	if pkg, ok := l.full[path]; ok {
		return pkg, nil
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w (and %d more)", path, errs[0], len(errs)-1)
	}
	if tpkg == nil {
		return nil, fmt.Errorf("type-checking %s produced no package", path)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.full[path] = pkg
	return pkg, nil
}

// LoadTarget loads one package for analysis: full bodies, full
// types.Info, and hard failure on any type error.
func (l *Loader) LoadTarget(path string) (*Package, error) {
	l.targets[path] = true
	return l.loadFull(path)
}

// LoadTargets loads every path with full bodies. All paths are
// declared as targets up front, so imports between them resolve to the
// full packages regardless of load order and the resulting packages
// form one consistent program.
func (l *Loader) LoadTargets(paths []string) ([]*Package, error) {
	for _, p := range paths {
		l.targets[p] = true
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.loadFull(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
