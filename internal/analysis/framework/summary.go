// Function summaries: per-function allocation facts, computed once per
// call-graph node and consumed bottom-up by interprocedural analyzers
// (noalloc). A summary answers "what could this function allocate,
// locally?"; transitive questions compose over the call graph.
//
// The central notion is *rootedness*. The hot path's steady-state
// allocation-freedom (docs/PERFORMANCE.md, TestBestInWindowZeroAlloc)
// does not mean "no make/append anywhere": pooled scratch buffers and
// curve breakpoint storage grow during warm-up and are reused
// thereafter. An allocation is *rooted* when it only grows persistent
// storage the caller owns — storage reachable from a pointer receiver,
// a pointer parameter, or a local derived from one (sc.chain[:0],
// *dst, &sc.total). Rooted growth is amortized away by reuse and is
// exactly what testing.AllocsPerRun observes as zero after warm-up;
// unrooted allocation happens on every call and is what noalloc
// reports.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AllocKind classifies one potential allocation site.
type AllocKind int

const (
	// AllocMake is a make() of a slice, map, or channel.
	AllocMake AllocKind = iota
	// AllocNew is a new(T).
	AllocNew
	// AllocAppend is an append that may grow its backing array.
	AllocAppend
	// AllocMapLit is a map composite literal.
	AllocMapLit
	// AllocCompositeRef is &T{...}, a heap-escaping composite.
	AllocCompositeRef
	// AllocClosure is a function literal that captures variables and
	// escapes (stored, returned, or sent — not a direct call argument
	// or a call-only local).
	AllocClosure
	// AllocBox is a conversion that boxes a non-pointer concrete value
	// into an interface.
	AllocBox
	// AllocString is string concatenation or a string<->[]byte/[]rune
	// conversion.
	AllocString
	// AllocMapWrite is a map element store, which may trigger map
	// growth.
	AllocMapWrite
	// AllocGo is a go statement (new goroutine, escaping closure).
	AllocGo
)

func (k AllocKind) String() string {
	switch k {
	case AllocMake:
		return "make"
	case AllocNew:
		return "new"
	case AllocAppend:
		return "append"
	case AllocMapLit:
		return "map literal"
	case AllocCompositeRef:
		return "&composite literal"
	case AllocClosure:
		return "escaping closure"
	case AllocBox:
		return "interface boxing"
	case AllocString:
		return "string allocation"
	case AllocMapWrite:
		return "map store"
	case AllocGo:
		return "go statement"
	default:
		return fmt.Sprintf("AllocKind(%d)", int(k))
	}
}

// An AllocSite is one potential allocation in a function body.
type AllocSite struct {
	Kind AllocKind
	Pos  token.Pos
	// Rooted reports that the allocation only grows persistent
	// caller-owned storage (see the package comment): warm-up growth,
	// not steady-state allocation.
	Rooted bool
}

// A Summary holds the local facts of one function.
type Summary struct {
	Fn     *types.Func
	Allocs []AllocSite
}

// Summary returns the node's local allocation facts, computing them on
// first use. External nodes (no body) return an empty summary.
func (n *Node) Summary() *Summary {
	if n.summary == nil {
		n.summary = summarize(n)
	}
	return n.summary
}

// summarize walks one function body and extracts its allocation sites.
func summarize(n *Node) *Summary {
	s := &Summary{Fn: n.Func}
	if n.Decl == nil || n.Decl.Body == nil {
		return s
	}
	info := n.Pkg.Info
	rooted := rootedVars(info, n.Decl)
	isRooted := func(e ast.Expr) bool { return rootedExpr(info, rooted, e) }

	// Context classification for make/new and function literals:
	// decided by where the expression appears, so collect accepted
	// positions in a pre-pass.
	handledAlloc := make(map[ast.Expr]bool) // make/new assigned to rooted storage
	acceptedLit := make(map[*ast.FuncLit]bool)
	litOf := make(map[*types.Var]*ast.FuncLit)
	singleBound := singleBoundFuncLits(info, n.Decl.Body)
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			if len(nd.Lhs) == len(nd.Rhs) {
				for i, rhs := range nd.Rhs {
					if isBuiltinCall(info, rhs, "make") || isBuiltinCall(info, rhs, "new") {
						if isRooted(nd.Lhs[i]) {
							handledAlloc[rhs] = true
						}
					}
					if lit, ok := rhs.(*ast.FuncLit); ok {
						if id, ok := nd.Lhs[i].(*ast.Ident); ok {
							if v := localVar(info, id); v != nil && singleBound[v] {
								acceptedLit[lit] = true
								litOf[v] = lit
							}
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i := range nd.Names {
				if i < len(nd.Values) {
					if lit, ok := nd.Values[i].(*ast.FuncLit); ok {
						if v := localVar(info, nd.Names[i]); v != nil && singleBound[v] {
							acceptedLit[lit] = true
							litOf[v] = lit
						}
					}
				}
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[nd.Fun]; !ok || !tv.IsType() {
				// A literal passed directly as a call argument does
				// not outlive the call in the idioms this module
				// allows (sort.Search, slices.SortFunc): accepted.
				for _, arg := range nd.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						acceptedLit[lit] = true
					}
				}
				if lit, ok := unwrapFun(nd.Fun).(*ast.FuncLit); ok {
					acceptedLit[lit] = true // immediately invoked
				}
			}
		}
		return true
	})
	// A call-only local closure is accepted, but if the variable is
	// ever used outside call position the literal escapes after all.
	for v, lit := range litOf {
		if escapesAsValue(info, n.Decl.Body, v) {
			delete(acceptedLit, lit)
		}
	}

	add := func(kind AllocKind, pos token.Pos, isrooted bool) {
		s.Allocs = append(s.Allocs, AllocSite{Kind: kind, Pos: pos, Rooted: isrooted})
	}

	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.GoStmt:
			add(AllocGo, nd.Pos(), false)
		case *ast.AssignStmt:
			for _, lhs := range nd.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if _, isMap := typeOf(info, ix.X).Underlying().(*types.Map); isMap {
						add(AllocMapWrite, lhs.Pos(), false)
					}
				}
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[nd.Fun]; ok && tv.IsType() {
				if site, bad := classifyConversion(info, nd); bad {
					add(site, nd.Pos(), false)
				}
				return true
			}
			switch {
			case isBuiltinCall(info, nd, "make"):
				add(AllocMake, nd.Pos(), handledAlloc[nd])
			case isBuiltinCall(info, nd, "new"):
				add(AllocNew, nd.Pos(), handledAlloc[nd])
			case isBuiltinCall(info, nd, "append"):
				add(AllocAppend, nd.Pos(), len(nd.Args) > 0 && isRooted(nd.Args[0]))
			}
		case *ast.CompositeLit:
			if _, isMap := typeOf(info, nd).Underlying().(*types.Map); isMap {
				add(AllocMapLit, nd.Pos(), false)
			}
		case *ast.UnaryExpr:
			if nd.Op == token.AND {
				if _, ok := nd.X.(*ast.CompositeLit); ok {
					add(AllocCompositeRef, nd.Pos(), false)
				}
			}
		case *ast.BinaryExpr:
			if nd.Op == token.ADD {
				if b, ok := typeOf(info, nd).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					add(AllocString, nd.Pos(), false)
				}
			}
		case *ast.FuncLit:
			if !acceptedLit[nd] && capturesVariables(info, n.Decl, nd) {
				add(AllocClosure, nd.Pos(), false)
			}
		}
		return true
	})
	return s
}

// classifyConversion reports whether the conversion call allocates:
// string<->[]byte/[]rune traffic, or boxing a non-pointer concrete
// value into an interface.
func classifyConversion(info *types.Info, call *ast.CallExpr) (AllocKind, bool) {
	if len(call.Args) != 1 {
		return 0, false
	}
	dst := typeOf(info, call.Fun)
	src := typeOf(info, call.Args[0])
	if dst == nil || src == nil {
		return 0, false
	}
	if types.IsInterface(dst) && !types.IsInterface(src) {
		if !allocFreeBoxed(src) {
			return AllocBox, true
		}
		return 0, false
	}
	db, dOK := dst.Underlying().(*types.Basic)
	sb, sOK := src.Underlying().(*types.Basic)
	dstStr := dOK && db.Info()&types.IsString != 0
	srcStr := sOK && sb.Info()&types.IsString != 0
	if dstStr != srcStr {
		// string([]byte), []byte(string), string(rune), ... — every
		// cross-kind string conversion copies.
		if dstStr || srcStr {
			return AllocString, true
		}
	}
	return 0, false
}

// allocFreeBoxed reports whether values of t fit an interface word
// without heap allocation (pointer-shaped types).
func allocFreeBoxed(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// rootedVars runs a small fixed point over decl's body: a local
// variable is rooted when it is (derived from) persistent storage —
// the pointer receiver, a pointer parameter, or a rooted expression.
func rootedVars(info *types.Info, decl *ast.FuncDecl) map[*types.Var]bool {
	rooted := make(map[*types.Var]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
						rooted[v] = true
					}
				}
			}
		}
	}
	addFields(decl.Recv)
	if decl.Type.Params != nil {
		addFields(decl.Type.Params)
	}
	if decl.Body == nil {
		return rooted
	}
	for {
		changed := false
		ast.Inspect(decl.Body, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.AssignStmt:
				if len(nd.Lhs) != len(nd.Rhs) {
					return true
				}
				for i, lhs := range nd.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					v := localVar(info, id)
					if v == nil || rooted[v] {
						continue
					}
					if rootedExpr(info, rooted, nd.Rhs[i]) {
						rooted[v] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range nd.Names {
					if i >= len(nd.Values) {
						continue
					}
					v := localVar(info, name)
					if v == nil || rooted[v] {
						continue
					}
					if rootedExpr(info, rooted, nd.Values[i]) {
						rooted[v] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			return rooted
		}
	}
}

// rootedExpr reports whether e denotes (a view of) persistent
// caller-owned storage.
func rootedExpr(info *types.Info, rooted map[*types.Var]bool, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		v := localVar(info, e)
		return v != nil && rooted[v]
	case *ast.SelectorExpr:
		// A field chain is rooted by its base object.
		return rootedExpr(info, rooted, e.X)
	case *ast.StarExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && rootedExpr(info, rooted, e.X)
	case *ast.SliceExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.IndexExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.ParenExpr:
		return rootedExpr(info, rooted, e.X)
	case *ast.TypeAssertExpr:
		// pool.Get().(*scratch): the assertion is a view of whatever
		// Get returned.
		return rootedExpr(info, rooted, e.X)
	case *ast.CallExpr:
		// append(rooted, ...) yields rooted storage (grown in place or
		// re-anchored under the same owner).
		if isBuiltinCall(info, e, "append") && len(e.Args) > 0 {
			return rootedExpr(info, rooted, e.Args[0])
		}
		// (*sync.Pool).Get hands out pooled persistent storage — the
		// scratch idiom rootedness exists to accept.
		if sel, ok := unwrapFun(e.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok &&
				fn.FullName() == "(*sync.Pool).Get" {
				return true
			}
		}
	}
	return false
}

// escapesAsValue reports whether v is used anywhere other than as the
// function operand of a call (x() is fine; passing or storing x is an
// escape).
func escapesAsValue(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	escapes := false
	calleeIdents := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(nd ast.Node) bool {
		if call, ok := nd.(*ast.CallExpr); ok {
			if id, ok := unwrapFun(call.Fun).(*ast.Ident); ok {
				calleeIdents[id] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok || calleeIdents[id] {
			return true
		}
		if u, ok := info.Uses[id].(*types.Var); ok && u == v {
			escapes = true
		}
		return true
	})
	return escapes
}

// capturesVariables reports whether lit references a variable declared
// in the enclosing function outside the literal itself.
func capturesVariables(info *types.Info, encl *ast.FuncDecl, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if v.Pos() >= encl.Pos() && v.Pos() < encl.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captures = true
		}
		return true
	})
	return captures
}

// localVar resolves an identifier to the variable it defines or uses.
func localVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// typeOf is Info.TypeOf with a non-nil guarantee (types.Typ[Invalid]
// for unknown expressions), so callers can chase Underlying safely.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if t := info.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, e ast.Expr, name string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unwrapFun(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// ---- Concurrency summaries ----
//
// Alongside allocation facts, a function summary learns the
// concurrency shape of its body: spawn sites (go statements, keyed
// like alloc sites), blocking operations (channel send/recv/select,
// WaitGroup.Wait, mutex acquisition), and guard facts — which
// sync.Mutex/RWMutex objects are held at every field access and call
// site, tracked by a Lock/Unlock pairing walk over the statement
// structure with defer handling. The goleak, lockguard and sharedwrite
// analyzers consume these bottom-up over CallGraph.SCCs (MayBlock) and
// top-down over the in-edges (InheritedHeld).

// GuardMode distinguishes how a mutex is held: GuardWrite for Lock,
// GuardRead for RLock. A write access to a field guarded by an RWMutex
// needs GuardWrite; a read is satisfied by either mode.
type GuardMode int

const (
	// GuardRead is a shared (RLock) hold.
	GuardRead GuardMode = iota + 1
	// GuardWrite is an exclusive (Lock) hold.
	GuardWrite
)

// A GuardSet maps each held mutex object (a sync.Mutex/RWMutex field
// or variable) to the strongest mode held. Mutexes are keyed by their
// types.Var, so s.mu resolves to the same guard across every method of
// the type regardless of receiver name.
type GuardSet map[*types.Var]GuardMode

// Clone copies the set (nil-safe).
func (g GuardSet) Clone() GuardSet {
	out := make(GuardSet, len(g))
	for k, v := range g {
		out[k] = v
	}
	return out
}

// Holds reports whether m is held in at least mode (GuardRead is
// satisfied by GuardWrite).
func (g GuardSet) Holds(m *types.Var, mode GuardMode) bool { return g[m] >= mode }

// BlockKind classifies one potentially blocking operation.
type BlockKind int

const (
	// BlockSend is a channel send (including a semaphore acquire on a
	// chan struct{} slot pool).
	BlockSend BlockKind = iota
	// BlockRecv is a channel receive (including range-over-channel).
	BlockRecv
	// BlockSelect is a select statement with no default clause.
	BlockSelect
	// BlockWait is a (*sync.WaitGroup).Wait call.
	BlockWait
	// BlockLock is a mutex acquisition (Lock or RLock).
	BlockLock
)

func (k BlockKind) String() string {
	switch k {
	case BlockSend:
		return "channel send"
	case BlockRecv:
		return "channel receive"
	case BlockSelect:
		return "blocking select"
	case BlockWait:
		return "WaitGroup.Wait"
	case BlockLock:
		return "mutex acquisition"
	default:
		return fmt.Sprintf("BlockKind(%d)", int(k))
	}
}

// A BlockSite is one potentially blocking operation in a function
// body, with the guards held on entry to it.
type BlockSite struct {
	Kind BlockKind
	Pos  token.Pos
	// Chan is the channel operated on (send/recv), when it resolves to
	// a variable or field; nil for untrackable operands.
	Chan *types.Var
	// Mutex is the lock being acquired (BlockLock only).
	Mutex *types.Var
	// Held are the guards held entering the operation (before a
	// BlockLock acquisition takes effect).
	Held GuardSet
}

// A FieldAccess is one read or write of a struct field, package-level
// variable, or local, with the guards held at the access.
type FieldAccess struct {
	// Obj is the accessed variable: a struct field object for selector
	// accesses (shared across all instances of the type), or the local
	// or package-level variable itself.
	Obj   *types.Var
	Write bool
	Pos   token.Pos
	Held  GuardSet
	// Fresh marks accesses whose base object was constructed in this
	// function (assigned from a composite literal or new): the object
	// is unpublished, so pre-publication initialization needs no guard.
	Fresh bool
	// Deferred marks accesses inside a deferred call or literal.
	Deferred bool
}

// A ConcCall is one resolved call with the guards held at the site.
// Interface calls record the interface method; dynamic calls are not
// recorded (MayBlock treats them as non-blocking, a documented
// may-analysis choice — goleak is the one analyzer that fails closed
// on them, at spawn sites).
type ConcCall struct {
	Callee *types.Func
	Site   *ast.CallExpr
	Pos    token.Pos
	Held   GuardSet
	// InSpawn marks calls made inside a spawned goroutine body: they do
	// not inherit the spawner's locks (the goroutine runs after the
	// caller may have released them).
	InSpawn bool
}

// A SyncOp is one sync.WaitGroup Add/Done/Wait call.
type SyncOp struct {
	Obj      *types.Var // the WaitGroup
	Pos      token.Pos
	Deferred bool
}

// A ChanOp is one channel send, receive or close, indexed for the
// program-wide serviceability lookups goleak performs ("does anything
// ever close the channel this goroutine ranges over?").
type ChanOp struct {
	Ch  *types.Var // nil when the operand does not resolve to a variable
	Pos token.Pos
}

// A SpawnSite is one go statement. Exactly one of Body (literal
// spawns), Callee (static spawns of a declared function), or Dynamic
// (function-value spawns) describes the spawned code.
type SpawnSite struct {
	Stmt *ast.GoStmt
	Pos  token.Pos
	// Callee is the spawned function for `go f()` / `go x.m()` with a
	// statically resolved target.
	Callee *types.Func
	// Body is the summary of the spawned literal's body, computed with
	// an empty guard context (a goroutine does not inherit its
	// spawner's locks). Its Spawns list carries nested go statements.
	Body *ConcSummary
	// BodyLit is the spawned literal (when Body is set), for positional
	// "outside the goroutine" checks.
	BodyLit *ast.FuncLit
	// Dynamic marks spawns whose target cannot be resolved (function
	// values, interface methods); goleak fails closed on these.
	Dynamic bool
}

// A ConcSummary holds the local concurrency facts of one function
// body. Facts inside spawned goroutine literals live on the SpawnSite
// (so a blocking receive in a worker loop is not attributed to the
// function that merely starts the worker), with two deliberate
// exceptions: CallHeld covers spawned bodies too (the call graph folds
// literal bodies into the enclosing declaration, so held-at-site
// lookups must resolve for those edges), and the WaitGroup/channel op
// indexes cover them as well (a goroutine's send can service another
// goroutine's receive).
type ConcSummary struct {
	Fn       *types.Func
	Spawns   []*SpawnSite
	Blocks   []BlockSite
	Accesses []FieldAccess
	Calls    []ConcCall

	// CallHeld records the guards held at every call expression of the
	// function, spawned bodies included.
	CallHeld map[*ast.CallExpr]GuardSet

	// WaitGroup and channel op indexes (spawned bodies included).
	WGAdds, WGDones, WGWaits []SyncOp
	Sends, Recvs, Closes     []ChanOp

	// TailSend/TailDone describe the body's final statement when it is
	// a channel send or a WaitGroup.Done — the result-slot handoff and
	// join shapes goleak accepts.
	TailSend *types.Var
	TailDone *types.Var
}

// Conc returns the node's concurrency summary, computing it on first
// use. External nodes (no body) return an empty summary.
func (n *Node) Conc() *ConcSummary {
	if n.conc == nil {
		n.conc = summarizeConc(n)
	}
	return n.conc
}

// SCCs returns the strongly connected components of the call graph in
// bottom-up (reverse topological) order: every static/interface callee
// of a component appears in an earlier component (or the same one).
// Analyzers that fold summaries over the graph process components in
// this order.
func (g *CallGraph) SCCs() [][]*Node {
	nodes := g.Nodes()
	index := make(map[*Node]int, len(nodes))
	low := make(map[*Node]int, len(nodes))
	onStack := make(map[*Node]bool, len(nodes))
	var stack []*Node
	var comps [][]*Node
	next := 0

	var strongconnect func(n *Node)
	strongconnect = func(n *Node) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, e := range n.Out {
			m := e.Callee
			if m == nil {
				continue
			}
			if _, seen := index[m]; !seen {
				strongconnect(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var comp []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return comps
}
