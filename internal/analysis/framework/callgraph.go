// Call-graph construction. The graph is type-aware and conservative:
//
//   - Static calls (package functions, methods called on concrete
//     receivers) produce one EdgeStatic to the callee, across package
//     boundaries — the loader guarantees every in-program package
//     shares one types.Object universe, so a *types.Func seen at a
//     call site in package A is the same object as the one declared in
//     package B.
//   - Interface method calls produce one EdgeInterface per concrete
//     in-program type whose method set satisfies the interface (the
//     sound over-approximation: any of them may be the dynamic
//     callee).
//   - Calls of function values (parameters, fields, channel receives)
//     produce an EdgeDynamic with a nil Callee: the analyzer decides
//     how pessimistic to be. Calls of a local variable that is bound
//     exactly once to a function literal in the same function are
//     resolved like static calls would be: the literal's body already
//     contributes its facts to the enclosing function's summary, so
//     such edges are omitted entirely.
//
// Function literals are attributed to their enclosing declared
// function: calls inside a literal become edges out of the declaration
// that lexically contains it. Generic functions and methods are keyed
// by their Origin, so instantiations collapse onto one node.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EdgeKind classifies how a call edge was resolved.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a known function or method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is an interface method call, one edge per
	// in-program implementation.
	EdgeInterface
	// EdgeDynamic is a call of a function value whose target is
	// unknown; Callee is nil.
	EdgeDynamic
)

// A Node is one function in the call graph. Decl and Pkg are nil for
// functions outside the program (header-only dependencies such as
// sort.Search), which have in-edges but no analyzable body.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []*Edge
	In   []*Edge

	summary *Summary
	conc    *ConcSummary
}

// An Edge is one (conservative) call.
type Edge struct {
	Caller *Node
	Callee *Node // nil for EdgeDynamic
	Site   *ast.CallExpr
	Kind   EdgeKind
}

// A CallGraph holds every declared function of the program plus
// external nodes for called dependencies.
type CallGraph struct {
	prog  *Program
	nodes map[*types.Func]*Node
}

// Node returns the graph node for fn (its Origin, for instantiated
// generics), or nil if fn was never declared in or called from the
// program.
func (g *CallGraph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Nodes returns every node in a deterministic order (by full name).
func (g *CallGraph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Func.FullName() < out[j].Func.FullName()
	})
	return out
}

// External reports whether the node has no analyzable body in the
// program.
func (n *Node) External() bool { return n.Decl == nil }

func (g *CallGraph) node(fn *types.Func) *Node {
	fn = fn.Origin()
	n, ok := g.nodes[fn]
	if !ok {
		n = &Node{Func: fn}
		g.nodes[fn] = n
	}
	return n
}

func buildCallGraph(p *Program) (*CallGraph, error) {
	g := &CallGraph{prog: p, nodes: make(map[*types.Func]*Node)}

	// Pass 1: a node per declared function, so interface resolution
	// can enumerate implementations.
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := g.node(fn)
				n.Decl = fd
				n.Pkg = pkg
			}
		}
	}

	// Pass 2: edges.
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.addEdges(pkg, g.node(fn), fd.Body)
			}
		}
	}
	return g, nil
}

// addEdges walks body (including nested function literals) and records
// one edge per call expression out of caller.
func (g *CallGraph) addEdges(pkg *Package, caller *Node, body *ast.BlockStmt) {
	localLits := singleBoundFuncLits(pkg.Info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		fun := unwrapFun(call.Fun)
		switch fun := fun.(type) {
		case *ast.Ident:
			switch obj := pkg.Info.Uses[fun].(type) {
			case *types.Builtin:
				return true
			case *types.Func:
				g.link(caller, g.node(obj), call, EdgeStatic)
			default:
				// A function value. Calls of a local bound exactly
				// once to a literal in this function are covered by
				// the enclosing summary; anything else is dynamic.
				if v, ok := obj.(*types.Var); ok && localLits[v] {
					return true
				}
				g.linkDynamic(caller, call)
			}
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[fun]; ok {
				fn, _ := sel.Obj().(*types.Func)
				if fn == nil {
					g.linkDynamic(caller, call) // func-typed field
					return true
				}
				if types.IsInterface(sel.Recv()) {
					g.linkInterface(caller, fn, call)
				} else {
					g.link(caller, g.node(fn), call, EdgeStatic)
				}
				return true
			}
			// Package-qualified reference (pkg.Func) or method
			// expression.
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				g.link(caller, g.node(fn), call, EdgeStatic)
			} else {
				g.linkDynamic(caller, call)
			}
		case *ast.FuncLit:
			// Immediately invoked literal: its body is walked as part
			// of this function, no edge needed.
		default:
			g.linkDynamic(caller, call)
		}
		return true
	})
}

func (g *CallGraph) link(caller, callee *Node, site *ast.CallExpr, kind EdgeKind) {
	e := &Edge{Caller: caller, Callee: callee, Site: site, Kind: kind}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

func (g *CallGraph) linkDynamic(caller *Node, site *ast.CallExpr) {
	caller.Out = append(caller.Out, &Edge{Caller: caller, Site: site, Kind: EdgeDynamic})
}

// linkInterface adds one edge per in-program concrete type that
// satisfies the method's interface. The interface method itself gets a
// node (external, no body) so analyzers can see the dispatch point
// even when no implementation is in the program.
func (g *CallGraph) linkInterface(caller *Node, m *types.Func, site *ast.CallExpr) {
	g.link(caller, g.node(m), site, EdgeInterface)
	iface, _ := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		return
	}
	for _, impl := range g.implementations(iface, m) {
		g.link(caller, g.node(impl), site, EdgeInterface)
	}
}

// implementations returns the concrete in-program methods that may be
// the dynamic target of calling m through iface.
func (g *CallGraph) implementations(iface *types.Interface, m *types.Func) []*types.Func {
	var out []*types.Func
	for _, pkg := range g.prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			var recv types.Type = named
			if !types.Implements(recv, iface) {
				recv = types.NewPointer(named)
				if !types.Implements(recv, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				out = append(out, fn)
			}
		}
	}
	return out
}

// A BlockWitness explains why a function may block: the kind and
// position of one concrete blocking operation, and the node whose body
// contains it (which may be a transitive callee of the function the
// witness was attached to).
type BlockWitness struct {
	Kind  BlockKind
	Pos   token.Pos
	Owner *Node
}

// MayBlock computes, bottom-up over the Tarjan SCC order, which nodes
// may perform a potentially unbounded blocking operation — a channel
// send/receive, a default-less select, or a WaitGroup.Wait — either
// directly or through a static call chain. Lock acquisitions are
// deliberately not counted (almost every mutex-using helper would
// qualify, drowning the signal); callers that care about
// lock-acquire-under-lock check direct BlockLock sites themselves.
// External callees and dynamic/interface dispatch are treated as
// non-blocking: this is a may-analysis whose findings must be real,
// not a must-analysis.
func (g *CallGraph) MayBlock() map[*Node]*BlockWitness {
	res := make(map[*Node]*BlockWitness)
	for _, comp := range g.SCCs() {
		// Two passes fix the members of a cyclic component against each
		// other; callees outside the component are already final.
		for pass := 0; pass < 2; pass++ {
			for _, n := range comp {
				if res[n] != nil || n.External() {
					continue
				}
				c := n.Conc()
				for _, b := range c.Blocks {
					if b.Kind != BlockLock {
						res[n] = &BlockWitness{Kind: b.Kind, Pos: b.Pos, Owner: n}
						break
					}
				}
				if res[n] != nil {
					continue
				}
				for _, call := range c.Calls {
					if w := res[g.Node(call.Callee)]; w != nil {
						res[n] = w
						break
					}
				}
			}
		}
	}
	return res
}

// InheritedHeld computes, top-down over the call graph, the set of
// mutexes every caller provably holds at every call site of a
// function — the guard context a function body can rely on even though
// it never locks anything itself (the `locked` helper-method idiom).
// The set is the intersection over all in-edges of (caller's own
// inherited set ∪ guards held at the site); call sites inside spawned
// goroutine bodies contribute only their recorded site guards, never
// the spawner's inheritance, because a goroutine does not hold its
// spawner's locks. Members of multi-node cycles and functions with no
// in-edges get the empty set.
func (g *CallGraph) InheritedHeld() map[*Node]GuardSet {
	res := make(map[*Node]GuardSet)
	comps := g.SCCs()
	for i := len(comps) - 1; i >= 0; i-- {
		comp := comps[i]
		if len(comp) > 1 {
			for _, n := range comp {
				res[n] = make(GuardSet)
			}
			continue
		}
		n := comp[0]
		inter := make(GuardSet)
		first := true
		for _, e := range n.In {
			if e.Caller == n {
				continue // self-recursion neither adds nor removes guards
			}
			contrib := make(GuardSet)
			held := e.Caller.Conc().CallHeld[e.Site]
			inSpawn := e.Caller.Conc().InSpawnSite(e.Site)
			if !inSpawn {
				for m, mode := range res[e.Caller] {
					contrib[m] = mode
				}
			}
			for m, mode := range held {
				if mode > contrib[m] {
					contrib[m] = mode
				}
			}
			if first {
				inter = contrib
				first = false
				continue
			}
			for m, mode := range inter {
				cm, ok := contrib[m]
				if !ok {
					delete(inter, m)
				} else if cm < mode {
					inter[m] = cm // the weaker guarantee wins
				}
			}
			if len(inter) == 0 {
				break
			}
		}
		res[n] = inter
	}
	return res
}

// unwrapFun strips parens and generic instantiation indexes from a
// call's function expression.
func unwrapFun(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// singleBoundFuncLits returns the local variables of body that are
// bound to a function literal exactly once and never reassigned —
// the "named local closure" idiom (e.g. the better() helper in
// curve.MinOn) whose body is analyzed as part of the enclosing
// function.
func singleBoundFuncLits(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	bound := make(map[*types.Var]int)
	litBound := make(map[*types.Var]int)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := info.Defs[id].(*types.Var)
		if !ok {
			v, ok = info.Uses[id].(*types.Var)
			if !ok {
				return
			}
		}
		bound[v]++
		if rhs != nil {
			if _, isLit := rhs.(*ast.FuncLit); isLit {
				litBound[v]++
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if i < len(st.Rhs) {
					rhs = st.Rhs[i]
				}
				record(lhs, rhs)
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				var rhs ast.Expr
				if i < len(st.Values) {
					rhs = st.Values[i]
				}
				record(name, rhs)
			}
		}
		return true
	})
	out := make(map[*types.Var]bool)
	for v, n := range litBound {
		if n == 1 && bound[v] == 1 {
			out[v] = true
		}
	}
	return out
}
