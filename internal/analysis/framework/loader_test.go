package framework_test

import (
	"path/filepath"
	"testing"

	"mclegal/internal/analysis/framework"
)

// TestLoadModulePackage exercises the offline loader against the real
// module tree: full type-check of a target package, lenient header
// loading of its dependencies, no go command, no network.
func TestLoadModulePackage(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	ld := framework.NewLoader("mclegal", root)
	pkg, err := ld.LoadTarget("mclegal/internal/refine")
	if err != nil {
		t.Fatalf("LoadTarget: %v", err)
	}
	if pkg.Types.Name() != "refine" {
		t.Errorf("package name = %q, want %q", pkg.Types.Name(), "refine")
	}
	if len(pkg.Files) == 0 {
		t.Error("no files parsed")
	}
	if len(pkg.Info.Defs) == 0 || len(pkg.Info.Uses) == 0 {
		t.Error("types.Info not populated")
	}
}

func TestLoadStdlibDependency(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	ld := framework.NewLoader("mclegal", root)
	pkg, err := ld.Import("sort")
	if err != nil {
		t.Fatalf("Import(sort): %v", err)
	}
	if pkg.Scope().Lookup("Slice") == nil {
		t.Error("sort.Slice not visible through header load")
	}
}

func TestUnresolvableImport(t *testing.T) {
	ld := framework.NewLoader("", "")
	if _, err := ld.Import("no/such/package"); err == nil {
		t.Error("expected an error for an unresolvable import path")
	}
}
