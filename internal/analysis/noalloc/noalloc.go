// Package noalloc statically proves that the call tree rooted at the
// functions marked //mclegal:hotpath is free of steady-state heap
// allocation — the static twin of the dynamic proof in
// mgl.TestBestInWindowZeroAlloc (testing.AllocsPerRun == 0 after
// warm-up).
//
// The analyzer walks the program call graph (framework.CallGraph) from
// every //mclegal:hotpath <why> root and inspects the allocation
// summary (framework.Summary) of each reachable function:
//
//   - Rooted allocations — make/append/new growth of persistent
//     caller-owned storage such as pooled scratch buffers or curve
//     breakpoint arrays — are warm-up growth and accepted; they are
//     exactly what AllocsPerRun amortizes to zero.
//   - Everything else is reported: unrooted make/new/append, map
//     literals and map stores, &composite literals, escaping closures
//     that capture variables, interface boxing of non-pointer values,
//     string concatenation/conversion, and go statements.
//   - Call edges must stay provable: indirect calls of unknown
//     function values are reported, interface calls are expanded to
//     every in-program implementation (and reported when none exists),
//     and calls into externals without bodies are reported unless the
//     callee is on the documented allow list of known
//     allocation-free routines (sort.Search, slices.Sort/SortFunc,
//     cmp.Compare, sync.Pool Get/Put, sync.Mutex Lock/Unlock).
//
// A site that allocates by design takes //mclegal:alloc <why> on its
// line (or the line above); the justification is mandatory. Hot-path
// roots are declared with //mclegal:hotpath <why> on the function's
// doc comment; the reason text is mandatory there too, and the root
// set is pinned to the dynamic benchmark by
// TestHotPathRootsMatchDynamicProof.
package noalloc

import (
	"fmt"
	"go/types"
	"sort"

	"mclegal/internal/analysis/framework"
	"mclegal/internal/analysis/scope"
)

// Analyzer is the noalloc check.
var Analyzer = &framework.Analyzer{
	Name:      "noalloc",
	Doc:       "prove the //mclegal:hotpath call tree allocation-free (suppress sites with //mclegal:alloc)",
	Run:       run,
	Scope:     scope.HotPathClosure,
	Directive: "alloc",
	Example:   "//mclegal:alloc one-time warm-up growth; steady state reuses the buffer (see the 0 allocs/op benchmark)",
}

// allowedExternals are dependency functions without analyzable bodies
// that are known not to allocate on the hot path. Every entry must
// stay justified here:
//
//	sort.Search, slices.Sort, slices.SortFunc, cmp.Compare —
//	    comparison-based search/sort over caller storage; the
//	    comparator closures are stack-allocated (their parameters do
//	    not escape).
//	(*sync.Pool).Get / Put — the pool's per-P private/shared slots;
//	    Get allocates only through New, which the scratch pool pays
//	    during warm-up.
//	(*sync.Mutex).Lock / Unlock — spinning/futex, no heap traffic.
var allowedExternals = map[string]bool{
	"sort.Search":          true,
	"slices.Sort":          true,
	"slices.SortFunc":      true,
	"cmp.Compare":          true,
	"(*sync.Pool).Get":     true,
	"(*sync.Pool).Put":     true,
	"(*sync.Mutex).Lock":   true,
	"(*sync.Mutex).Unlock": true,
}

// hotState is the program-wide result, computed once and shared by the
// per-package passes through Program.CacheLoad.
type hotState struct {
	// roots maps each root function to its directive justification.
	roots map[*framework.Node]string
	// via maps every hot-reachable node to the root it was first
	// reached from (deterministic: roots processed in name order).
	via map[*framework.Node]*framework.Node
}

// Roots returns the //mclegal:hotpath root functions of the program in
// deterministic order; the root-set sync test uses it to pin the
// static proof to the dynamic one.
func Roots(prog *framework.Program) ([]*framework.Node, error) {
	st, err := state(prog)
	if err != nil {
		return nil, err
	}
	out := make([]*framework.Node, 0, len(st.roots))
	for n := range st.roots {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Func.FullName() < out[j].Func.FullName()
	})
	return out, nil
}

// Reachable reports whether the node is in the hot-path closure.
func Reachable(prog *framework.Program, n *framework.Node) (bool, error) {
	st, err := state(prog)
	if err != nil {
		return false, err
	}
	_, ok := st.via[n]
	return ok, nil
}

func state(prog *framework.Program) (*hotState, error) {
	v, err := prog.CacheLoad("noalloc", func() (any, error) { return computeState(prog) })
	if err != nil {
		return nil, err
	}
	return v.(*hotState), nil
}

func computeState(prog *framework.Program) (*hotState, error) {
	cg, err := prog.CallGraph()
	if err != nil {
		return nil, err
	}
	st := &hotState{
		roots: make(map[*framework.Node]string),
		via:   make(map[*framework.Node]*framework.Node),
	}
	for _, n := range cg.Nodes() {
		if n.Decl == nil {
			continue
		}
		if reason, ok := framework.DocDirective(n.Decl.Doc, "hotpath"); ok {
			st.roots[n] = reason
		}
	}
	// BFS from each root (name order, so `via` attribution is
	// deterministic). External and interface-method nodes terminate
	// the walk: they have no bodies; their edges are judged at the
	// call site.
	var order []*framework.Node
	for n := range st.roots {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool {
		return order[i].Func.FullName() < order[j].Func.FullName()
	})
	for _, root := range order {
		if _, seen := st.via[root]; seen {
			continue
		}
		queue := []*framework.Node{root}
		st.via[root] = root
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, e := range n.Out {
				m := e.Callee
				if m == nil || m.Decl == nil {
					continue
				}
				if _, seen := st.via[m]; seen {
					continue
				}
				st.via[m] = root
				queue = append(queue, m)
			}
		}
	}
	return st, nil
}

func run(pass *framework.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	st, err := state(pass.Prog)
	if err != nil {
		return err
	}
	if len(st.roots) == 0 {
		return nil
	}
	cg, err := pass.Prog.CallGraph()
	if err != nil {
		return err
	}
	// Check root directives (justification mandatory) for roots
	// declared in this package.
	for n, reason := range st.roots {
		if n.Pkg != nil && n.Pkg.Types == pass.Pkg && reason == "" {
			pass.Reportf(n.Decl.Pos(),
				"//mclegal:hotpath directive is missing a justification")
		}
	}
	// Walk the hot closure; report findings located in this package
	// only, so a program-wide run emits each finding exactly once.
	for _, n := range cg.Nodes() {
		root, hot := st.via[n]
		if !hot || n.Pkg == nil || n.Pkg.Types != pass.Pkg {
			continue
		}
		ctx := fmt.Sprintf("hot path via %s", root.Func.FullName())
		for _, site := range n.Summary().Allocs {
			if site.Rooted {
				continue
			}
			if pass.Suppressed("alloc", site.Pos) {
				continue
			}
			pass.Reportf(site.Pos, "%s: %s allocates on every call; pool it, root it in caller-owned storage, or justify with //mclegal:alloc <why>",
				ctx, site.Kind)
		}
		seenIfaceSite := make(map[*framework.Edge]bool)
		for _, e := range n.Out {
			switch e.Kind {
			case framework.EdgeDynamic:
				if !pass.Suppressed("alloc", e.Site.Pos()) {
					pass.Reportf(e.Site.Pos(), "%s: indirect call of a function value cannot be proven allocation-free; justify with //mclegal:alloc <why>", ctx)
				}
			case framework.EdgeInterface:
				// Edges come in groups per site: the interface method
				// itself plus one edge per implementation. Judge each
				// site once.
				if e.Callee != nil && e.Callee.Decl == nil && isInterfaceMethod(e.Callee.Func) {
					if !seenIfaceSite[e] && implCount(n, e) == 0 {
						if !pass.Suppressed("alloc", e.Site.Pos()) {
							pass.Reportf(e.Site.Pos(), "%s: interface call %s has no in-program implementation to prove; justify with //mclegal:alloc <why>",
								ctx, e.Callee.Func.Name())
						}
					}
					seenIfaceSite[e] = true
				}
			case framework.EdgeStatic:
				if e.Callee.Decl == nil && !allowedExternals[e.Callee.Func.Origin().FullName()] {
					if !pass.Suppressed("alloc", e.Site.Pos()) {
						pass.Reportf(e.Site.Pos(), "%s: call into unsummarized external %s (no body to prove); extend the noalloc allow list or justify with //mclegal:alloc <why>",
							ctx, e.Callee.Func.FullName())
					}
				}
			}
		}
	}
	return nil
}

// implCount counts concrete-implementation edges sharing the call site
// of the interface-method edge e.
func implCount(n *framework.Node, e *framework.Edge) int {
	count := 0
	for _, o := range n.Out {
		if o.Kind == framework.EdgeInterface && o.Site == e.Site && o != e && o.Callee != nil && o.Callee.Decl != nil {
			count++
		}
	}
	return count
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}
