package noalloc_test

import (
	"testing"

	"mclegal/internal/analysis/analysistest"
	"mclegal/internal/analysis/noalloc"
)

// The two fixture packages form one program: the hot root lives in
// mgl, part of its call tree in curve, and the analyzer must follow
// the cross-package edge.
func TestNoalloc(t *testing.T) {
	analysistest.RunGroup(t, "../testdata", noalloc.Analyzer,
		"noalloc/internal/mgl", "noalloc/internal/curve")
}
