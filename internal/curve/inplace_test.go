package curve

import (
	"math/rand"
	"testing"
)

// The in-place accumulation methods (ResetAbs, AddPushLeft,
// AddPushRight) must agree pointwise with the allocating constructors
// they replace on the legalizer's hot path.
func TestInPlaceAccumulationMatchesConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		g0 := int64(rng.Intn(200) - 100)
		w := int64(1 + rng.Intn(10))
		k := int64(rng.Intn(1000))

		ref := Abs(g0, w, k)
		var got Curve
		got.ResetAbs(g0, w, k)

		for term := 0; term < 1+rng.Intn(8); term++ {
			cur := int64(rng.Intn(200) - 100)
			g := int64(rng.Intn(200) - 100)
			off := int64(1 + rng.Intn(20))
			if rng.Intn(2) == 0 {
				ref.Add(PushLeft(cur, g, off, w))
				got.AddPushLeft(cur, g, off, w)
			} else {
				ref.Add(PushRight(cur, g, off, w))
				got.AddPushRight(cur, g, off, w)
			}
		}

		for probe := 0; probe < 40; probe++ {
			x := int64(rng.Intn(400) - 200)
			if rv, gv := ref.Eval(x), got.Eval(x); rv != gv {
				t.Fatalf("trial %d: Eval(%d) = %d in place, %d via constructors",
					trial, x, gv, rv)
			}
		}
		rx, rv := ref.MinOn(-150, 150, 0)
		gx, gv := got.MinOn(-150, 150, 0)
		if rx != gx || rv != gv {
			t.Fatalf("trial %d: MinOn = (%d,%d) in place, (%d,%d) via constructors",
				trial, gx, gv, rx, rv)
		}
	}
}

// ResetAbs must fully overwrite previous state so a recycled curve
// cannot leak breakpoints or reference values between evaluations.
func TestResetAbsClearsState(t *testing.T) {
	var c Curve
	c.ResetAbs(10, 2, 0)
	c.AddPushRight(30, 25, 3, 2)
	c.AddPushLeft(-5, 0, 4, 2)
	c.ResetAbs(7, 3, 11)
	want := Abs(7, 3, 11)
	for x := int64(-30); x <= 30; x++ {
		if c.Eval(x) != want.Eval(x) {
			t.Fatalf("Eval(%d) = %d after reset, want %d", x, c.Eval(x), want.Eval(x))
		}
	}
}
