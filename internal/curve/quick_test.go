package curve

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genCurve builds a random curve plus an equivalent closure for
// reference evaluation.
func genCurve(rng *rand.Rand) (*Curve, func(int64) int64) {
	kind := rng.Intn(4)
	cur := int64(rng.Intn(60) - 30)
	g := int64(rng.Intn(60) - 30)
	off := int64(rng.Intn(12))
	w := int64(1 + rng.Intn(4))
	c0 := int64(rng.Intn(10))
	switch kind {
	case 0:
		return Abs(g, w, c0), func(x int64) int64 { return w*abs64(x-g) + c0 }
	case 1:
		return PushRight(cur, g, off, w), func(x int64) int64 {
			p := cur
			if x+off > p {
				p = x + off
			}
			return w * abs64(p-g)
		}
	case 2:
		return PushLeft(cur, g, off, w), func(x int64) int64 {
			p := cur
			if x-off < p {
				p = x - off
			}
			return w * abs64(p-g)
		}
	default:
		return Const(c0), func(int64) int64 { return c0 }
	}
}

// Property: summing k random curves evaluates pointwise to the sum of
// the parts over a wide scan range.
func TestQuickSumPointwise(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%6) + 1
		sum := Const(0)
		var refs []func(int64) int64
		for i := 0; i < k; i++ {
			c, ref := genCurve(rng)
			sum.Add(c)
			refs = append(refs, ref)
		}
		for x := int64(-50); x <= 50; x += 3 {
			var want int64
			for _, r := range refs {
				want += r(x)
			}
			if sum.Eval(x) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MinOn returns the true minimum over the integer range.
func TestQuickMinOnIsMinimum(t *testing.T) {
	f := func(seed int64, loRaw int16, span uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sum := Const(0)
		for i := 0; i < 1+rng.Intn(5); i++ {
			c, _ := genCurve(rng)
			sum.Add(c)
		}
		lo := int64(loRaw % 40)
		hi := lo + int64(span%60)
		prefer := lo + int64(span)%maxi64(1, hi-lo+1)
		x, v := sum.MinOn(lo, hi, prefer)
		if x < lo || x > hi || sum.Eval(x) != v {
			return false
		}
		for q := lo; q <= hi; q++ {
			if sum.Eval(q) < v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a sum of convex curves (types A and B only, the MLL
// setting) is always convex.
func TestQuickMLLCurvesConvex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sum := Const(0)
		for i := 0; i < 1+rng.Intn(6); i++ {
			cur := int64(rng.Intn(40) - 20)
			off := int64(rng.Intn(10))
			w := int64(1 + rng.Intn(3))
			// MLL semantics: g == cur, so PushRight is type A and
			// PushLeft type B.
			if rng.Intn(2) == 0 {
				sum.Add(PushRight(cur, cur, off, w))
			} else {
				sum.Add(PushLeft(cur, cur, off, w))
			}
		}
		return sum.IsConvex()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
