// Package curve implements the piecewise-linear displacement curves at
// the heart of MGL (paper Section 3.1, Figure 4).
//
// For a candidate insertion point, every local cell contributes a curve
// of one of four types over the target cell's x-coordinate:
//
//	Type A: flat, then rising   — right-side cell at/right of its GP
//	Type B: falling, then flat  — left-side cell at/left of its GP
//	Type C: flat, falling, rising — right-side cell left of its GP
//	Type D: falling, rising, flat (mirrored C) — left-side cell right of its GP
//
// The target cell itself contributes the V-shaped |x - x'| curve. The
// sum of all curves is scanned at its breakpoints for the optimum,
// exactly as the paper does (it skips the MCF pre-pass that Theorem 1
// would need to guarantee convexity, so the scan must not assume it).
package curve

import (
	"cmp"
	"slices"
)

// Kind classifies a local cell's contribution curve (paper Figure 4).
// The four shapes are the complete case split of {right, left} side ×
// {at/beyond, short of} the cell's GP position; the Push* constructors
// switch over a Kind exhaustively so a new shape can never be added
// without every consumer taking a position on it (the exhaustive
// analyzer enforces this).
type Kind uint8

const (
	// KindA is flat, then rising: right-side cell at/right of its GP.
	KindA Kind = iota
	// KindB is falling, then flat: left-side cell at/left of its GP.
	KindB
	// KindC is flat, falling, rising: right-side cell left of its GP.
	KindC
	// KindD is falling, rising, flat: left-side cell right of its GP
	// (mirrored C).
	KindD
)

func (k Kind) String() string {
	switch k {
	case KindA:
		return "A"
	case KindB:
		return "B"
	case KindC:
		return "C"
	case KindD:
		return "D"
	}
	return "Kind(invalid)"
}

// RightKind classifies the curve of a right-side local cell currently
// at cur with GP position g: KindA at/right of the GP, KindC left of
// it.
func RightKind(cur, g int64) Kind {
	if cur >= g {
		return KindA
	}
	return KindC
}

// LeftKind classifies the curve of a left-side local cell: KindB
// at/left of the GP, KindD right of it.
func LeftKind(cur, g int64) Kind {
	if cur <= g {
		return KindB
	}
	return KindD
}

type breakpoint struct {
	x  int64
	ds int64 // slope increase at x
}

// Curve is a piecewise-linear function of an integer coordinate. The
// zero value is the constant 0 function.
type Curve struct {
	vref   int64 // value at xref
	xref   int64
	slope0 int64 // slope left of every breakpoint
	breaks []breakpoint
	sorted bool
}

// Const returns the constant curve f(x) = c.
func Const(c int64) *Curve { return &Curve{vref: c} }

// Abs returns f(x) = w*|x-g| + c, the target cell's own curve (w is the
// per-unit displacement cost, c a constant such as the y-displacement).
func Abs(g, w, c int64) *Curve {
	return &Curve{
		vref: c, xref: g, slope0: -w,
		breaks: []breakpoint{{x: g, ds: 2 * w}},
		sorted: true,
	}
}

// PushRight returns f(x) = w*|max(cur, x+off) - g|: the displacement of
// a right-side local cell whose position is max(cur, x+off) when the
// target sits at x. cur is the cell's current position, g its GP
// position, off the chain offset (target width plus the widths and
// spacings between). Yields RightKind(cur, g): KindA when cur >= g,
// KindC otherwise.
func PushRight(cur, g, off, w int64) *Curve {
	var c *Curve
	switch RightKind(cur, g) {
	case KindA:
		// (cur-g) for x <= cur-off, then rising.
		c = &Curve{
			vref: w * (cur - g), xref: cur - off,
			breaks: []breakpoint{{x: cur - off, ds: w}},
			sorted: true,
		}
	case KindC:
		// Flat (g-cur), falling to 0 at g-off, rising after.
		c = &Curve{
			vref: w * (g - cur), xref: cur - off,
			breaks: []breakpoint{
				{x: cur - off, ds: -w},
				{x: g - off, ds: 2 * w},
			},
			sorted: true,
		}
	case KindB, KindD:
		panic("curve: RightKind yielded a left-side kind")
	}
	return c
}

// PushLeft returns f(x) = w*|min(cur, x-off) - g|: the displacement of a
// left-side local cell whose position is min(cur, x-off). Yields
// LeftKind(cur, g): KindB when cur <= g, KindD otherwise.
func PushLeft(cur, g, off, w int64) *Curve {
	var c *Curve
	switch LeftKind(cur, g) {
	case KindB:
		// Falling toward the critical position cur+off, then flat at
		// (g-cur).
		c = &Curve{
			vref: w * (g - cur), xref: cur + off,
			slope0: -w,
			breaks: []breakpoint{{x: cur + off, ds: w}},
			sorted: true,
		}
	case KindD:
		// Rising region ends at cur+off with value (cur-g); flat
		// after; falling before g+off.
		c = &Curve{
			vref: w * (cur - g), xref: cur + off,
			slope0: -w,
			breaks: []breakpoint{
				{x: g + off, ds: 2 * w},
				{x: cur + off, ds: -w},
			},
			sorted: true,
		}
	case KindA, KindC:
		panic("curve: LeftKind yielded a right-side kind")
	}
	return c
}

// ResetAbs reinitializes c in place to f(x) = w*|x-g| + k, reusing the
// breakpoint storage. It is the allocation-free form of Abs, used by the
// legalizer's hot path to rebuild the summed curve for every insertion
// point without heap traffic.
//
//mclegal:hotpath rebuilds the summed curve once per insertion point; only appends into caller-owned breakpoint storage
func (c *Curve) ResetAbs(g, w, k int64) {
	c.vref, c.xref, c.slope0 = k, g, -w
	c.breaks = append(c.breaks[:0], breakpoint{x: g, ds: 2 * w})
	c.sorted = true
}

// AddPushRight accumulates PushRight(cur, g, off, w) into c without
// allocating the intermediate curve: the contribution at c.xref is
// evaluated in closed form (w*|max(cur, xref+off) - g|) and the
// breakpoints are appended to c's own storage.
//
//mclegal:hotpath curve accumulation runs once per chain cell per insertion point; appends only into c's own storage
func (c *Curve) AddPushRight(cur, g, off, w int64) {
	p := c.xref + off
	if cur > p {
		p = cur
	}
	c.vref += w * abs64(p-g)
	switch RightKind(cur, g) {
	case KindA:
		c.breaks = append(c.breaks, breakpoint{x: cur - off, ds: w})
	case KindC:
		c.breaks = append(c.breaks,
			breakpoint{x: cur - off, ds: -w},
			breakpoint{x: g - off, ds: 2 * w})
	case KindB, KindD:
		panic("curve: RightKind yielded a left-side kind")
	}
	c.sorted = false
}

// AddPushLeft mirrors AddPushRight for PushLeft: the contribution at
// c.xref is w*|min(cur, xref-off) - g|.
//
//mclegal:hotpath curve accumulation runs once per chain cell per insertion point; appends only into c's own storage
func (c *Curve) AddPushLeft(cur, g, off, w int64) {
	p := c.xref - off
	if cur < p {
		p = cur
	}
	c.vref += w * abs64(p-g)
	c.slope0 -= w
	switch LeftKind(cur, g) {
	case KindB:
		c.breaks = append(c.breaks, breakpoint{x: cur + off, ds: w})
	case KindD:
		c.breaks = append(c.breaks,
			breakpoint{x: g + off, ds: 2 * w},
			breakpoint{x: cur + off, ds: -w})
	case KindA, KindC:
		panic("curve: LeftKind yielded a right-side kind")
	}
	c.sorted = false
}

// Add accumulates o into c.
func (c *Curve) Add(o *Curve) {
	c.vref += o.Eval(c.xref)
	c.slope0 += o.slope0
	c.breaks = append(c.breaks, o.breaks...)
	c.sorted = false
}

// AddConst adds a constant to the curve.
func (c *Curve) AddConst(v int64) { c.vref += v }

func (c *Curve) ensureSorted() {
	if c.sorted {
		return
	}
	if len(c.breaks) <= 24 {
		// Insertion sort: breakpoint lists are tiny and this is on the
		// legalizer's hot path.
		for i := 1; i < len(c.breaks); i++ {
			for j := i; j > 0 && c.breaks[j].x < c.breaks[j-1].x; j-- {
				c.breaks[j], c.breaks[j-1] = c.breaks[j-1], c.breaks[j]
			}
		}
	} else {
		slices.SortFunc(c.breaks, func(a, b breakpoint) int { return cmp.Compare(a.x, b.x) })
	}
	c.sorted = true
}

// integrate returns the integral of the slope function over [a, b],
// a <= b. The slope is right-continuous: a breakpoint at x changes the
// slope on [x, next).
func (c *Curve) integrate(a, b int64) int64 {
	c.ensureSorted()
	var total int64
	s := c.slope0
	prev := a
	for _, bp := range c.breaks {
		if bp.x <= a {
			s += bp.ds
			continue
		}
		if bp.x >= b {
			break
		}
		total += s * (bp.x - prev)
		prev = bp.x
		s += bp.ds
	}
	total += s * (b - prev)
	return total
}

// Eval returns f(x).
func (c *Curve) Eval(x int64) int64 {
	if x >= c.xref {
		return c.vref + c.integrate(c.xref, x)
	}
	return c.vref - c.integrate(x, c.xref)
}

// Breakpoints returns the sorted breakpoint positions (with duplicates
// collapsed).
func (c *Curve) Breakpoints() []int64 {
	c.ensureSorted()
	out := make([]int64, 0, len(c.breaks))
	for _, b := range c.breaks {
		if n := len(out); n > 0 && out[n-1] == b.x {
			continue
		}
		out = append(out, b.x)
	}
	return out
}

// MinOn scans the curve on [lo, hi] and returns the minimizing x and
// value. Candidates are the interval endpoints, every breakpoint
// inside, and prefer itself; ties prefer the x closest to prefer (then
// the smaller x) so results are deterministic. The interval must
// satisfy lo <= hi. The scan is a single O(breaks) sweep.
func (c *Curve) MinOn(lo, hi, prefer int64) (bestX, bestV int64) {
	c.ensureSorted()
	bestX, bestV = lo, c.Eval(lo)
	better := func(x, v int64) {
		if v < bestV {
			bestX, bestV = x, v
			return
		}
		if v > bestV {
			return
		}
		dNew, dOld := abs64(x-prefer), abs64(bestX-prefer)
		if dNew < dOld || (dNew == dOld && x < bestX) {
			bestX = x
		}
	}
	// Sweep from lo: maintain the running value and slope.
	v := bestV
	s := c.slope0
	prev := lo
	preferDone := prefer <= lo || prefer > hi
	for _, b := range c.breaks {
		if b.x <= lo {
			s += b.ds
			continue
		}
		if b.x > hi {
			break
		}
		if !preferDone && prefer < b.x {
			better(prefer, v+s*(prefer-prev))
			preferDone = true
		}
		v += s * (b.x - prev)
		prev = b.x
		s += b.ds
		better(b.x, v)
	}
	if !preferDone {
		better(prefer, v+s*(prefer-prev))
	}
	better(hi, v+s*(hi-prev))
	return bestX, bestV
}

// IsConvex reports whether every breakpoint slope change is
// non-negative after merging co-located breaks, i.e. the curve is
// convex. Theorem 1 of the paper states the summed curve is convex when
// all local cells start at optimal positions.
func (c *Curve) IsConvex() bool {
	c.ensureSorted()
	for i := 0; i < len(c.breaks); {
		j := i
		var ds int64
		for j < len(c.breaks) && c.breaks[j].x == c.breaks[i].x {
			ds += c.breaks[j].ds
			j++
		}
		if ds < 0 {
			return false
		}
		i = j
	}
	return true
}

// Clone returns an independent copy.
func (c *Curve) Clone() *Curve {
	nc := *c
	nc.breaks = append([]breakpoint(nil), c.breaks...)
	return &nc
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
