package curve

import (
	"math/rand"
	"testing"
)

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Direct definitions the constructors must match.
func pushRightRef(cur, g, off, w, x int64) int64 { return w * abs64(maxI(cur, x+off)-g) }
func pushLeftRef(cur, g, off, w, x int64) int64  { return w * abs64(minI(cur, x-off)-g) }

func TestAbsCurve(t *testing.T) {
	c := Abs(10, 3, 7)
	for x := int64(-5); x <= 25; x++ {
		want := 3*abs64(x-10) + 7
		if got := c.Eval(x); got != want {
			t.Fatalf("Abs.Eval(%d) = %d, want %d", x, got, want)
		}
	}
	if !c.IsConvex() {
		t.Errorf("Abs should be convex")
	}
}

func TestConst(t *testing.T) {
	c := Const(42)
	if c.Eval(-100) != 42 || c.Eval(100) != 42 {
		t.Errorf("Const broken")
	}
	x, v := c.MinOn(0, 10, 3)
	if v != 42 || x != 3 {
		t.Errorf("MinOn const: x=%d v=%d (prefer tie-break should pick 3)", x, v)
	}
}

func TestPushRightTypes(t *testing.T) {
	// Type A: cur >= g.
	a := PushRight(8, 5, 4, 2)
	for x := int64(-10); x <= 20; x++ {
		if got, want := a.Eval(x), pushRightRef(8, 5, 4, 2, x); got != want {
			t.Fatalf("typeA Eval(%d) = %d, want %d", x, got, want)
		}
	}
	if !a.IsConvex() {
		t.Errorf("type A must be convex")
	}
	// Type C: cur < g. Flat, falling, rising.
	c := PushRight(3, 9, 4, 1)
	for x := int64(-15); x <= 20; x++ {
		if got, want := c.Eval(x), pushRightRef(3, 9, 4, 1, x); got != want {
			t.Fatalf("typeC Eval(%d) = %d, want %d", x, got, want)
		}
	}
	if c.IsConvex() {
		t.Errorf("an isolated type C curve is not convex (flat then falling)")
	}
}

func TestPushLeftTypes(t *testing.T) {
	// Type B: cur <= g.
	b := PushLeft(5, 9, 3, 2)
	for x := int64(-10); x <= 25; x++ {
		if got, want := b.Eval(x), pushLeftRef(5, 9, 3, 2, x); got != want {
			t.Fatalf("typeB Eval(%d) = %d, want %d", x, got, want)
		}
	}
	if !b.IsConvex() {
		t.Errorf("type B must be convex")
	}
	// Type D: cur > g.
	d := PushLeft(9, 4, 3, 1)
	for x := int64(-10); x <= 25; x++ {
		if got, want := d.Eval(x), pushLeftRef(9, 4, 3, 1, x); got != want {
			t.Fatalf("typeD Eval(%d) = %d, want %d", x, got, want)
		}
	}
	if d.IsConvex() {
		t.Errorf("an isolated type D curve is not convex")
	}
}

// Figure 4 reproduction: the four displacement-curve shapes, checked by
// their slope sequences.
func TestFigure4CurveTypes(t *testing.T) {
	slopeSeq := func(c *Curve, lo, hi int64) []int64 {
		var out []int64
		prev := c.Eval(lo)
		for x := lo + 1; x <= hi; x++ {
			v := c.Eval(x)
			s := v - prev
			prev = v
			if n := len(out); n == 0 || out[n-1] != s {
				out = append(out, s)
			}
		}
		return out
	}
	eq := func(a, b []int64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	// A: 0 then +1 ; B: -1 then 0 ; C: 0,-1,+1 ; D: -1,+1,0.
	if got := slopeSeq(PushRight(10, 5, 0, 1), -5, 25); !eq(got, []int64{0, 1}) {
		t.Errorf("type A slopes = %v", got)
	}
	if got := slopeSeq(PushLeft(5, 10, 0, 1), -5, 25); !eq(got, []int64{-1, 0}) {
		t.Errorf("type B slopes = %v", got)
	}
	if got := slopeSeq(PushRight(2, 10, 0, 1), -10, 25); !eq(got, []int64{0, -1, 1}) {
		t.Errorf("type C slopes = %v", got)
	}
	if got := slopeSeq(PushLeft(12, 4, 0, 1), -10, 30); !eq(got, []int64{-1, 1, 0}) {
		t.Errorf("type D slopes = %v", got)
	}
}

func TestAddMatchesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		var parts []*Curve
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			cur := int64(rng.Intn(40) - 20)
			g := int64(rng.Intn(40) - 20)
			off := int64(rng.Intn(10))
			w := int64(1 + rng.Intn(3))
			switch rng.Intn(4) {
			case 0:
				parts = append(parts, PushRight(cur, g, off, w))
			case 1:
				parts = append(parts, PushLeft(cur, g, off, w))
			case 2:
				parts = append(parts, Abs(g, w, int64(rng.Intn(5))))
			default:
				parts = append(parts, Const(int64(rng.Intn(9))))
			}
		}
		sum := Const(0)
		for _, p := range parts {
			sum.Add(p)
		}
		for x := int64(-30); x <= 30; x += 1 + int64(rng.Intn(3)) {
			var want int64
			for _, p := range parts {
				want += p.Eval(x)
			}
			if got := sum.Eval(x); got != want {
				t.Fatalf("trial %d: sum.Eval(%d) = %d, want %d", trial, x, got, want)
			}
		}
	}
}

func TestMinOnExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 120; trial++ {
		sum := Const(0)
		for i := 0; i < 1+rng.Intn(5); i++ {
			cur := int64(rng.Intn(30) - 15)
			g := int64(rng.Intn(30) - 15)
			off := int64(rng.Intn(8))
			if rng.Intn(2) == 0 {
				sum.Add(PushRight(cur, g, off, 1))
			} else {
				sum.Add(PushLeft(cur, g, off, 1))
			}
		}
		lo := int64(rng.Intn(20) - 25)
		hi := lo + int64(rng.Intn(40))
		prefer := lo + int64(rng.Intn(int(hi-lo)+1))
		gotX, gotV := sum.MinOn(lo, hi, prefer)
		if gotX < lo || gotX > hi {
			t.Fatalf("trial %d: minimizer %d outside [%d,%d]", trial, gotX, lo, hi)
		}
		if sum.Eval(gotX) != gotV {
			t.Fatalf("trial %d: reported value mismatch", trial)
		}
		for x := lo; x <= hi; x++ {
			if v := sum.Eval(x); v < gotV {
				t.Fatalf("trial %d: MinOn missed better x=%d (%d < %d)", trial, x, v, gotV)
			}
		}
	}
}

func TestMinOnTieBreak(t *testing.T) {
	// Flat-bottomed V: |x-0| + |x-10| is 10 on [0,10].
	sum := Abs(0, 1, 0)
	sum.Add(Abs(10, 1, 0))
	x, v := sum.MinOn(-20, 30, 7)
	if v != 10 || x != 7 {
		t.Errorf("tie-break: x=%d v=%d, want x=7 v=10", x, v)
	}
	x, _ = sum.MinOn(-20, 30, 100) // prefer beyond the flat region
	if x != 10 {
		t.Errorf("tie-break toward large prefer: x=%d, want 10", x)
	}
}

func TestBreakpointsDedup(t *testing.T) {
	sum := Abs(5, 1, 0)
	sum.Add(Abs(5, 2, 0))
	sum.Add(Abs(9, 1, 0))
	bps := sum.Breakpoints()
	if len(bps) != 2 || bps[0] != 5 || bps[1] != 9 {
		t.Errorf("Breakpoints = %v", bps)
	}
}

func TestClone(t *testing.T) {
	a := Abs(3, 1, 0)
	b := a.Clone()
	b.Add(Const(5))
	if a.Eval(3) != 0 || b.Eval(3) != 5 {
		t.Errorf("Clone not independent")
	}
}

// isotonicOpt brute-forces the minimum-total-displacement positions of a
// right chain: p[i+1] >= p[i] + wdt[i], positions in [-range, range].
func isotonicOpt(g []int64, wdt []int64, lo, hi int64) []int64 {
	n := len(g)
	best := make([]int64, n)
	bestCost := int64(1) << 60
	p := make([]int64, n)
	var rec func(i int, minPos int64, cost int64)
	rec = func(i int, minPos int64, cost int64) {
		if cost >= bestCost {
			return
		}
		if i == n {
			bestCost = cost
			copy(best, p)
			return
		}
		for x := maxI(lo, minPos); x <= hi; x++ {
			p[i] = x
			rec(i+1, x+wdt[i], cost+abs64(x-g[i]))
		}
	}
	rec(0, lo, 0)
	return best
}

// Theorem 1 of the paper: when local cells start at optimal positions,
// the summed displacement curve is convex. We verify it for random
// right-side chains whose initial positions are the brute-force optimum.
func TestTheorem1Convexity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(3)
		g := make([]int64, n)
		wdt := make([]int64, n)
		for i := range g {
			g[i] = int64(rng.Intn(14) - 2)
			wdt[i] = int64(1 + rng.Intn(3))
		}
		q := isotonicOpt(g, wdt, -6, 18)
		sum := Const(0)
		var off int64 = 2 // target width
		for i := 0; i < n; i++ {
			sum.Add(PushRight(q[i], g[i], off, 1))
			off += wdt[i]
		}
		if !sum.IsConvex() {
			t.Fatalf("trial %d: Theorem 1 violated: g=%v w=%v q=%v", trial, g, wdt, q)
		}
		// The curve model must also equal the true parametric optimum:
		// for every x, the best chain placement with p[0] >= x+2 but
		// never left of q (cells are only pushed away from the gap).
		for x := int64(-10); x <= 20; x++ {
			var want int64
			minPos := x + 2
			for i := 0; i < n; i++ {
				pos := maxI(q[i], minPos)
				want += abs64(pos - g[i])
				minPos = pos + wdt[i]
			}
			if got := sum.Eval(x); got != want {
				t.Fatalf("trial %d: model mismatch at x=%d: %d vs %d", trial, x, got, want)
			}
		}
	}
}

// With non-optimal initial positions the summed curve may be non-convex
// — which is why MGL scans every breakpoint instead of using the MLL
// median trick. Exhibit one such instance.
func TestNonConvexWithoutPrecondition(t *testing.T) {
	sum := Const(0)
	// A cell parked far right of its GP (type C w.r.t. nothing...):
	// cur=0 but g=10 (type C), plus a type A cell.
	sum.Add(PushRight(0, 10, 0, 1))
	sum.Add(PushRight(0, 0, 5, 1))
	if sum.IsConvex() {
		t.Skip("chosen instance unexpectedly convex")
	}
	// Breakpoint scan still finds the global optimum.
	gotX, gotV := sum.MinOn(-20, 30, 0)
	for x := int64(-20); x <= 30; x++ {
		if sum.Eval(x) < gotV {
			t.Fatalf("scan missed optimum at %d", x)
		}
	}
	_ = gotX
}
