package gp

import (
	"math/rand"
	"reflect"
	"testing"

	"mclegal/internal/bmark"
	"mclegal/internal/eval"
	"mclegal/internal/flow"
	"mclegal/internal/model"
)

// netted returns a design with locality-destroyed GP (random positions)
// but a meaningful netlist.
func netted(seed int64, n int) *model.Design {
	d := bmark.Generate(bmark.Params{
		Name: "gp", Seed: seed,
		Counts:  [4]int{n, n / 10, n / 40, 0},
		Density: 0.5,
		NetFrac: 0.8,
	})
	rng := rand.New(rand.NewSource(seed + 1))
	for i := range d.Cells {
		c := &d.Cells[i]
		ct := &d.Types[c.Type]
		c.GX = rng.Intn(d.Tech.NumSites - ct.Width)
		c.GY = rng.Intn(d.Tech.NumRows - ct.Height)
		c.X, c.Y = c.GX, c.GY
	}
	return d
}

func TestPlaceReducesHPWL(t *testing.T) {
	d := netted(3, 600)
	before := eval.HPWL(d)
	Place(d, Options{})
	after := eval.HPWL(d)
	if after >= before/2 {
		t.Errorf("HPWL %d -> %d: expected at least 2x reduction", before, after)
	}
	t.Logf("HPWL %d -> %d (%.1fx)", before, after, float64(before)/float64(after))
}

func TestPlaceInCore(t *testing.T) {
	d := netted(5, 300)
	Place(d, Options{})
	core := d.Tech.CoreRect()
	for i := range d.Cells {
		if !core.Contains(d.GPRect(model.CellID(i))) {
			t.Fatalf("cell %d placed out of core: %v", i, d.GPRect(model.CellID(i)))
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	d1 := netted(7, 300)
	d2 := netted(7, 300)
	Place(d1, Options{})
	Place(d2, Options{})
	if !reflect.DeepEqual(d1.Cells, d2.Cells) {
		t.Fatalf("GP not deterministic")
	}
}

func TestPlaceSpreads(t *testing.T) {
	d := netted(9, 800)
	Place(d, Options{})
	// No density bin should hold more than ~3x its fair share of cell
	// area (quadratic GP without spreading collapses to a point, which
	// would put everything in a couple of bins).
	const binRows = 2
	aspect := d.Tech.RowH / d.Tech.SiteW
	binW := binRows * aspect
	nbx := (d.Tech.NumSites + binW - 1) / binW
	nby := (d.Tech.NumRows + binRows - 1) / binRows
	util := make([]float64, nbx*nby)
	var total float64
	for i := range d.Cells {
		c := &d.Cells[i]
		ct := &d.Types[c.Type]
		bx := min(c.GX/binW, nbx-1)
		by := min(c.GY/binRows, nby-1)
		a := float64(ct.Width * ct.Height)
		util[bx+by*nbx] += a
		total += a
	}
	fair := total / float64(len(util))
	var worst float64
	for _, u := range util {
		if u > worst {
			worst = u
		}
	}
	if worst > 6*fair {
		t.Errorf("worst bin %.1f vs fair share %.1f: not spread", worst, fair)
	}
}

func TestPlaceRespectsFixedAnchors(t *testing.T) {
	// Two movable cells tied to a fixed macro by 2-pin nets must land
	// near the macro, not at the core center.
	d := &model.Design{
		Name: "anchor",
		Tech: model.Tech{SiteW: 10, RowH: 80, NumSites: 200, NumRows: 40},
		Types: []model.CellType{
			{Name: "S", Width: 2, Height: 1},
			{Name: "MAC", Width: 10, Height: 4},
		},
	}
	d.Cells = []model.Cell{
		{Name: "m", Type: 1, X: 170, Y: 30, GX: 170, GY: 30, Fixed: true},
		{Name: "a", Type: 0, X: 0, Y: 0},
		{Name: "b", Type: 0, X: 0, Y: 0},
	}
	d.Nets = []model.Net{
		{Name: "n1", Pins: []model.NetPin{{Cell: 0}, {Cell: 1}}},
		{Name: "n2", Pins: []model.NetPin{{Cell: 0}, {Cell: 2}}},
		{Name: "n3", Pins: []model.NetPin{{Cell: 1}, {Cell: 2}}},
	}
	Place(d, Options{})
	for _, i := range []int{1, 2} {
		if d.Cells[i].GX < 120 || d.Cells[i].GY < 20 {
			t.Errorf("cell %d at (%d,%d): not pulled toward the fixed macro",
				i, d.Cells[i].GX, d.Cells[i].GY)
		}
	}
}

func TestPlaceEmptyAndDegenerate(t *testing.T) {
	d := &model.Design{
		Name:  "empty",
		Tech:  model.Tech{SiteW: 10, RowH: 80, NumSites: 20, NumRows: 4},
		Types: []model.CellType{{Name: "S", Width: 2, Height: 1}},
	}
	Place(d, Options{}) // no movable cells: no-op
	d.Cells = []model.Cell{{Name: "a", Type: 0}}
	Place(d, Options{}) // one cell, no nets: stays in core
	if d.Cells[0].GX < 0 || d.Cells[0].GX > 18 {
		t.Errorf("degenerate placement out of core: %d", d.Cells[0].GX)
	}
}

// End to end: GP output must be legalizable and the legalized result
// should retain most of the HPWL improvement.
func TestPlaceThenLegalize(t *testing.T) {
	d := netted(11, 500)
	Place(d, Options{})
	gpHPWL := eval.HPWL(d)
	res, err := legalizeForTest(d)
	if err != nil {
		t.Fatal(err)
	}
	if res > gpHPWL*3/2 {
		t.Errorf("legalization destroyed GP quality: HPWL %d -> %d", gpHPWL, res)
	}
}

func legalizeForTest(d *model.Design) (int64, error) {
	res, err := flow.Run(d, flow.Options{Workers: 1, TotalDisplacement: true})
	if err != nil {
		return 0, err
	}
	return res.HPWLAfter, nil
}

func BenchmarkGlobalPlace(b *testing.B) {
	base := netted(13, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := base.Clone()
		Place(d, Options{})
	}
}
