// Package gp is a small quadratic global placer: it derives the GP
// positions that the legalizer consumes from the netlist alone, making
// the repository usable end-to-end (netlist -> global placement ->
// legalization). It is a substrate, not a contribution of the paper —
// the paper assumes a GP solution as input.
//
// The algorithm is classic quadratic placement with density spreading:
// nets become quadratic springs (clique model for small nets, chain
// model for large ones), the two independent linear systems (x and y)
// are solved by conjugate gradient, and overfull density bins push
// their cells' anchor targets outward between solves.
package gp

import (
	"math"
	"math/rand"
	"sort"

	"mclegal/internal/model"
)

// Options tunes the placer.
type Options struct {
	// Rounds of solve+spread (default 8).
	Rounds int
	// CGIters per linear solve (default 60).
	CGIters int
	// BinRows is the density-bin height in rows (default 2).
	BinRows int
	// AnchorWeight pulls cells toward their spread targets (default 0.4).
	AnchorWeight float64
	// Seed randomizes the initial placement (default 1).
	Seed int64
	// MaxBinUtil is the spreading target utilization per bin
	// (default 0.8).
	MaxBinUtil float64
}

func (o Options) withDefaults() Options {
	if o.Rounds <= 0 {
		o.Rounds = 8
	}
	if o.CGIters <= 0 {
		o.CGIters = 60
	}
	if o.BinRows <= 0 {
		o.BinRows = 2
	}
	if o.AnchorWeight <= 0 {
		o.AnchorWeight = 0.4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxBinUtil <= 0 {
		o.MaxBinUtil = 0.8
	}
	return o
}

// edge is one quadratic spring between two movable cells (or a cell and
// a fixed position).
type edge struct {
	a, b int // movable indices; b < 0 means fixed point (fx, fy)
	w    float64
	fx   float64
	fy   float64
}

// Place computes GP positions for every movable cell of d from its
// netlist and writes them to GX/GY (and X/Y). Fixed cells are anchors.
// Positions are clamped to the core and rounded to sites/rows; the
// result is generally NOT legal — that is the legalizer's job.
func Place(d *model.Design, opt Options) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	t := &d.Tech
	aspect := float64(t.RowH) / float64(t.SiteW)

	// Movable indexing.
	var ids []model.CellID
	idx := make(map[model.CellID]int)
	for i := range d.Cells {
		if !d.Cells[i].Fixed {
			idx[model.CellID(i)] = len(ids)
			ids = append(ids, model.CellID(i))
		}
	}
	n := len(ids)
	if n == 0 {
		return
	}

	// Centers in site units (y scaled by the row aspect so that the
	// quadratic metric is isotropic in DBU).
	cx := make([]float64, n)
	cy := make([]float64, n)
	for k, id := range ids {
		ct := &d.Types[d.Cells[id].Type]
		cx[k] = rng.Float64()*float64(t.NumSites-ct.Width) + float64(ct.Width)/2
		cy[k] = (rng.Float64()*float64(t.NumRows-ct.Height) + float64(ct.Height)/2) * aspect
	}

	// Springs from nets.
	center := func(id model.CellID) (float64, float64, bool) {
		c := &d.Cells[id]
		ct := &d.Types[c.Type]
		if c.Fixed {
			return float64(c.X) + float64(ct.Width)/2,
				(float64(c.Y) + float64(ct.Height)/2) * aspect, true
		}
		return 0, 0, false
	}
	var edges []edge
	addSpring := func(p, q model.CellID, w float64) {
		pi, pm := idx[p]
		qi, qm := idx[q]
		switch {
		case pm && qm:
			edges = append(edges, edge{a: pi, b: qi, w: w})
		case pm:
			fx, fy, _ := center(q)
			edges = append(edges, edge{a: pi, b: -1, w: w, fx: fx, fy: fy})
		case qm:
			fx, fy, _ := center(p)
			edges = append(edges, edge{a: qi, b: -1, w: w, fx: fx, fy: fy})
		}
	}
	for ni := range d.Nets {
		pins := d.Nets[ni].Pins
		k := len(pins)
		if k < 2 {
			continue
		}
		if k <= 4 {
			w := 2.0 / float64(k)
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					addSpring(pins[i].Cell, pins[j].Cell, w)
				}
			}
		} else {
			// Chain model for big nets.
			for i := 1; i < k; i++ {
				addSpring(pins[i-1].Cell, pins[i].Cell, 1)
			}
		}
	}

	// Density bins sized in scaled units.
	binH := float64(opt.BinRows) * aspect
	binW := binH // square bins in the scaled metric
	nbx := int(math.Ceil(float64(t.NumSites) / binW))
	nby := int(math.Ceil(float64(t.NumRows) * aspect / binH))
	if nbx < 1 {
		nbx = 1
	}
	if nby < 1 {
		nby = 1
	}
	area := make([]float64, n)
	for k, id := range ids {
		ct := &d.Types[d.Cells[id].Type]
		area[k] = float64(ct.Width) * float64(ct.Height) * aspect
	}
	binCap := binW * binH * opt.MaxBinUtil

	ax := make([]float64, n) // anchor targets
	ay := make([]float64, n)
	hasAnchor := make([]bool, n)

	for round := 0; round < opt.Rounds; round++ {
		aw := 0.0
		if round > 0 {
			aw = opt.AnchorWeight * float64(round) / float64(opt.Rounds-0)
		}
		solveCG(n, edges, cx, ax, hasAnchor, aw, opt.CGIters, func(e *edge) float64 { return e.fx })
		solveCG(n, edges, cy, ay, hasAnchor, aw, opt.CGIters, func(e *edge) float64 { return e.fy })
		clampAll(d, ids, cx, cy, aspect)
		spread(d, ids, cx, cy, area, ax, ay, hasAnchor, nbx, nby, binW, binH, binCap, aspect)
	}

	// Round to sites/rows and write back.
	for k, id := range ids {
		c := &d.Cells[id]
		ct := &d.Types[c.Type]
		gx := int(math.Round(cx[k] - float64(ct.Width)/2))
		gy := int(math.Round(cy[k]/aspect - float64(ct.Height)/2))
		gx = clampInt(gx, 0, t.NumSites-ct.Width)
		gy = clampInt(gy, 0, t.NumRows-ct.Height)
		c.GX, c.GY = gx, gy
		c.X, c.Y = gx, gy
	}
}

// solveCG minimizes sum w((v_a - v_b)^2) + aw*sum (v - anchor)^2 over
// one coordinate via conjugate gradient on the (regularized) Laplacian.
// fixedCoord selects the coordinate of a fixed-point spring (fx for the
// x solve, fy for the y solve).
func solveCG(n int, edges []edge, v, anchor []float64, hasAnchor []bool,
	aw float64, iters int, fixedCoord func(*edge) float64) {
	const eps = 1e-6
	// A*x where A = L + D_anchor + D_fixed + eps*I.
	mul := func(x, out []float64) {
		for i := range out {
			a := eps
			if aw > 0 && hasAnchor[i] {
				a += aw
			}
			out[i] = a * x[i]
		}
		for i := range edges {
			e := &edges[i]
			if e.b >= 0 {
				d := x[e.a] - x[e.b]
				out[e.a] += e.w * d
				out[e.b] -= e.w * d
			} else {
				out[e.a] += e.w * x[e.a]
			}
		}
	}
	rhs := make([]float64, n)
	for i := range rhs {
		if aw > 0 && hasAnchor[i] {
			rhs[i] = aw * anchor[i]
		}
	}
	for i := range edges {
		e := &edges[i]
		if e.b < 0 {
			rhs[e.a] += e.w * fixedCoord(e)
		}
	}
	cg(mul, rhs, v, iters)
}

// cg runs conjugate gradient for mul(x) = rhs starting from x.
func cg(mul func(x, out []float64), rhs, x []float64, iters int) {
	n := len(rhs)
	r := make([]float64, n)
	p := make([]float64, n)
	apv := make([]float64, n)
	mul(x, r)
	for i := range r {
		r[i] = rhs[i] - r[i]
		p[i] = r[i]
	}
	rr := dot(r, r)
	for it := 0; it < iters && rr > 1e-9; it++ {
		mul(p, apv)
		pap := dot(p, apv)
		if pap <= 0 {
			break
		}
		alpha := rr / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * apv[i]
		}
		rr2 := dot(r, r)
		beta := rr2 / rr
		rr = rr2
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func clampAll(d *model.Design, ids []model.CellID, cx, cy []float64, aspect float64) {
	t := &d.Tech
	for k, id := range ids {
		ct := &d.Types[d.Cells[id].Type]
		loX := float64(ct.Width) / 2
		hiX := float64(t.NumSites) - loX
		loY := float64(ct.Height) / 2 * aspect
		hiY := float64(t.NumRows)*aspect - loY
		cx[k] = clampF(cx[k], loX, hiX)
		cy[k] = clampF(cy[k], loY, hiY)
	}
}

// spread updates anchor targets: cells in overfull bins are pulled
// toward the nearest underfull bin along a distance-sorted scan.
func spread(d *model.Design, ids []model.CellID, cx, cy, area, ax, ay []float64,
	hasAnchor []bool, nbx, nby int, binW, binH, binCap, aspect float64) {
	nb := nbx * nby
	util := make([]float64, nb)
	members := make([][]int, nb)
	binOf := func(k int) int {
		bx := int(cx[k] / binW)
		by := int(cy[k] / binH)
		bx = clampInt(bx, 0, nbx-1)
		by = clampInt(by, 0, nby-1)
		return by*nbx + bx
	}
	for k := range ids {
		b := binOf(k)
		util[b] += area[k]
		members[b] = append(members[b], k)
	}
	type binPos struct{ bx, by int }
	pos := func(b int) binPos { return binPos{bx: b % nbx, by: b / nbx} }
	free := make([]float64, nb)
	for b := range free {
		free[b] = binCap - util[b]
	}
	for b := 0; b < nb; b++ {
		over := util[b] - binCap
		if over <= 0 {
			continue
		}
		// Push the cells farthest from the bin center first.
		ms := append([]int(nil), members[b]...)
		bp := pos(b)
		bcx := (float64(bp.bx) + 0.5) * binW
		bcy := (float64(bp.by) + 0.5) * binH
		sort.Slice(ms, func(i, j int) bool {
			di := sq(cx[ms[i]]-bcx) + sq(cy[ms[i]]-bcy)
			dj := sq(cx[ms[j]]-bcx) + sq(cy[ms[j]]-bcy)
			if di != dj {
				return di > dj
			}
			return ms[i] < ms[j]
		})
		for _, k := range ms {
			if over <= 0 {
				break
			}
			// Nearest bin with free capacity, ring search.
			best, bestD := -1, math.MaxFloat64
			for o := 0; o < nb; o++ {
				if free[o] < area[k] {
					continue
				}
				op := pos(o)
				dd := sq((float64(op.bx)+0.5)*binW-cx[k]) + sq((float64(op.by)+0.5)*binH-cy[k])
				if dd < bestD {
					best, bestD = o, dd
				}
			}
			if best < 0 {
				break
			}
			op := pos(best)
			ax[k] = (float64(op.bx) + 0.5) * binW
			ay[k] = (float64(op.by) + 0.5) * binH
			hasAnchor[k] = true
			free[best] -= area[k]
			over -= area[k]
		}
	}
}

func sq(x float64) float64 { return x * x }

func clampF(x, lo, hi float64) float64 {
	if hi < lo {
		return lo
	}
	return math.Min(math.Max(x, lo), hi)
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
