package stage

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// StartEvent announces that a stage is about to run.
type StartEvent struct {
	Stage string
	// Index and Total locate the stage in the composed pipeline.
	Index, Total int
	// Cells is the movable-cell count of the design.
	Cells int
}

// FinishEvent reports a completed (or failed) stage.
type FinishEvent struct {
	Stage        string
	Index, Total int
	Duration     time.Duration
	// CellsPerSec is the movable-cell throughput of the stage.
	CellsPerSec float64
	// Counters are the stage's work counters (windows processed,
	// matchings solved, simplex pivots, ...); nil when the stage
	// does not implement CounterProvider.
	Counters map[string]int64
	// Err is non-nil when the stage failed or was cancelled.
	Err error
}

// Observer receives stage lifecycle callbacks. Callbacks are issued
// sequentially from the pipeline's goroutine; implementations need no
// internal locking.
type Observer interface {
	StageStart(StartEvent)
	StageFinish(FinishEvent)
}

// NewLogObserver returns an observer writing human-readable progress
// lines to w.
func NewLogObserver(w io.Writer) Observer { return &logObserver{w: w} }

type logObserver struct{ w io.Writer }

func (o *logObserver) StageStart(ev StartEvent) {
	fmt.Fprintf(o.w, "[%d/%d] %-8s start (%d cells)\n", ev.Index+1, ev.Total, ev.Stage, ev.Cells)
}

func (o *logObserver) StageFinish(ev FinishEvent) {
	if ev.Err != nil {
		fmt.Fprintf(o.w, "[%d/%d] %-8s FAILED after %v: %v\n",
			ev.Index+1, ev.Total, ev.Stage, ev.Duration.Round(time.Microsecond), ev.Err)
		return
	}
	fmt.Fprintf(o.w, "[%d/%d] %-8s done in %v (%.0f cells/s)%s\n",
		ev.Index+1, ev.Total, ev.Stage, ev.Duration.Round(time.Microsecond),
		ev.CellsPerSec, formatCounters(ev.Counters))
}

func formatCounters(c map[string]int64) string {
	if len(c) == 0 {
		return ""
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, c[k])
	}
	return b.String()
}

// NewJSONObserver returns an observer emitting one JSON object per
// event line to w, suitable for machine consumption (progress bars,
// dashboards, log aggregation). The schema is documented in DESIGN.md.
func NewJSONObserver(w io.Writer) Observer { return &jsonObserver{enc: json.NewEncoder(w)} }

type jsonObserver struct{ enc *json.Encoder }

// jsonEvent is the wire shape of both event kinds; encoding/json
// serializes the Counters map with sorted keys, so output lines are
// deterministic.
type jsonEvent struct {
	Event       string           `json:"event"` // "stage_start" | "stage_finish"
	Stage       string           `json:"stage"`
	Index       int              `json:"index"`
	Total       int              `json:"total"`
	Cells       int              `json:"cells,omitempty"`
	Seconds     float64          `json:"seconds,omitempty"`
	CellsPerSec float64          `json:"cells_per_second,omitempty"`
	Counters    map[string]int64 `json:"counters,omitempty"`
	Error       string           `json:"error,omitempty"`
}

func (o *jsonObserver) StageStart(ev StartEvent) {
	_ = o.enc.Encode(jsonEvent{
		Event: "stage_start", Stage: ev.Stage,
		Index: ev.Index, Total: ev.Total, Cells: ev.Cells,
	})
}

func (o *jsonObserver) StageFinish(ev FinishEvent) {
	je := jsonEvent{
		Event: "stage_finish", Stage: ev.Stage,
		Index: ev.Index, Total: ev.Total,
		Seconds:     ev.Duration.Seconds(),
		CellsPerSec: ev.CellsPerSec,
		Counters:    ev.Counters,
	}
	if ev.Err != nil {
		je.Error = ev.Err.Error()
	}
	_ = o.enc.Encode(je)
}

// MultiObserver fans every event out to all given observers.
func MultiObserver(obs ...Observer) Observer { return multiObserver(obs) }

type multiObserver []Observer

func (m multiObserver) StageStart(ev StartEvent) {
	for _, o := range m {
		o.StageStart(ev)
	}
}

func (m multiObserver) StageFinish(ev FinishEvent) {
	for _, o := range m {
		o.StageFinish(ev)
	}
}
