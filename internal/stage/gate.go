package stage

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"

	"mclegal/internal/eval"
	"mclegal/internal/faults"
)

// This file is the pipeline's resilience layer: legality gates that
// snapshot cell positions before a stage, verify the paper's per-stage
// contract after it (every stage must leave the placement legal, and
// the matching stage must not create new violations or a larger
// maximum displacement, Sections 3.1-3.3), and on failure roll the
// stage back; recovery policies that decide what happens next; and a
// recover() boundary turning stage panics into typed errors so no
// input can crash the process.

// RecoveryPolicy selects what the pipeline does when a gated stage
// fails (stage error, panic, legality audit, or metric regression).
type RecoveryPolicy int

const (
	// RecoverStrict (the default) fails the run on the first gate
	// failure with a typed *GateError naming the offending stage.
	RecoverStrict RecoveryPolicy = iota
	// RecoverFallback rolls the failing stage back and runs its
	// fallback chain: a substitute stage when one is registered (MGL
	// falls back to the order-preserving greedy), otherwise the stage
	// is skipped if the pipeline can still end legal without it. A
	// critical stage with no working fallback fails the run.
	RecoverFallback
	// RecoverBestEffort is RecoverFallback that never fails the run:
	// when even a critical stage's fallbacks are exhausted, the
	// pipeline stops and faithfully reports a partial result instead
	// of returning an error.
	RecoverBestEffort
)

func (p RecoveryPolicy) String() string {
	switch p {
	case RecoverStrict:
		return "strict"
	case RecoverFallback:
		return "fallback"
	case RecoverBestEffort:
		return "besteffort"
	}
	return fmt.Sprintf("RecoveryPolicy(%d)", int(p))
}

// ParsePolicy converts a policy name ("strict", "fallback",
// "besteffort") to its RecoveryPolicy.
func ParsePolicy(s string) (RecoveryPolicy, error) {
	switch strings.ToLower(s) {
	case "strict":
		return RecoverStrict, nil
	case "fallback":
		return RecoverFallback, nil
	case "besteffort", "best-effort":
		return RecoverBestEffort, nil
	}
	return RecoverStrict, &PolicyError{Input: s}
}

// Status summarizes how trustworthy a finished pipeline run is.
type Status int

const (
	// StatusLegal: every stage passed its gate; no recovery was needed.
	StatusLegal Status = iota
	// StatusRecovered: at least one stage failed but a fallback (or a
	// safe skip) kept the pipeline on a verified placement.
	StatusRecovered
	// StatusPartial: recovery was exhausted; the reported placement is
	// the best known state but is not verified legal.
	StatusPartial
)

func (s Status) String() string {
	switch s {
	case StatusLegal:
		return "legal"
	case StatusRecovered:
		return "recovered"
	case StatusPartial:
		return "partial"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Gate failure reasons recorded in GateReport.Reason.
const (
	ReasonStageError = "stage-error" // the stage returned an error
	ReasonPanic      = "panic"       // the stage (or a worker) panicked
	ReasonAudit      = "audit"       // eval.Audit found violations after the stage
	ReasonMetric     = "metric"      // the metric-regression check failed
)

// Recovery actions recorded in GateReport.Action.
const (
	ActionFailed   = "failed"   // run aborted with a *GateError
	ActionFallback = "fallback" // a substitute stage repaired the run
	ActionSkipped  = "skipped"  // stage rolled back and left out
	ActionAborted  = "aborted"  // best-effort run stopped here (partial)
)

// GateReport describes one gate intervention: which stage failed, why,
// what the gate observed, and how the pipeline recovered.
type GateReport struct {
	// Stage is the name of the failing stage.
	Stage string
	// Reason is one of the Reason* constants.
	Reason string
	// Err is the underlying failure: the stage's error, a *PanicError,
	// or nil for pure audit/metric failures.
	Err error
	// NumViolations is the total audit violation count (Reason ==
	// ReasonAudit); Violations is a bounded sample of them.
	NumViolations int
	Violations    []eval.Violation
	// RolledBack reports whether cell positions were restored to the
	// pre-stage snapshot.
	RolledBack bool
	// Counters carries the failing attempt's stage counters (when the
	// stage implements CounterProvider), captured before the rollback
	// restored the context artifacts the counters are derived from.
	// They are how far the failed attempt got — the rolled-back context
	// no longer shows it.
	Counters map[string]int64
	// Action is one of the Action* constants; for ActionFallback,
	// Fallback names the substitute stage that repaired the run.
	Action   string
	Fallback string
}

func (r GateReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stage %s: gate failed (%s", r.Stage, r.Reason)
	if r.Err != nil {
		fmt.Fprintf(&b, ": %v", r.Err)
	}
	if r.NumViolations > 0 {
		fmt.Fprintf(&b, "; %d violations", r.NumViolations)
		if len(r.Violations) > 0 {
			fmt.Fprintf(&b, ", e.g. %s", r.Violations[0].String())
		}
	}
	b.WriteString(")")
	switch r.Action {
	case ActionFallback:
		fmt.Fprintf(&b, ", recovered via %s", r.Fallback)
	case ActionSkipped:
		b.WriteString(", stage skipped")
	case ActionAborted:
		b.WriteString(", run aborted (partial result)")
	case ActionFailed:
		// The base "gate failed" message already says everything a
		// failed (non-recovered) gate has to say.
	}
	return b.String()
}

// GateError is the typed error a strict (or fallback-exhausted) run
// fails with; it carries the full GateReport of the offending stage.
type GateError struct {
	Report GateReport
}

func (e *GateError) Error() string { return e.Report.String() }

// Unwrap exposes the underlying stage error (if any) to errors.Is/As.
func (e *GateError) Unwrap() error { return e.Report.Err }

// PanicError is a panic recovered at the pipeline's stage boundary,
// converted into an error carrying the panic value and stack.
type PanicError struct {
	Stage string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("stage %s: panic: %v", e.Stage, e.Value)
}

// PolicyError reports an unknown recovery-policy name handed to
// ParsePolicy (typically from a CLI flag).
type PolicyError struct {
	Input string
}

func (e *PolicyError) Error() string {
	return fmt.Sprintf("stage: unknown recovery policy %q (want strict, fallback or besteffort)", e.Input)
}

// AuditError reports that a stage left the placement illegal: the
// post-stage audit found violations and the snapshot was restored.
type AuditError struct {
	Stage         string
	NumViolations int
	First         eval.Violation
}

func (e *AuditError) Error() string {
	return fmt.Sprintf("stage %s: left %d legality violations (first: %s)", e.Stage, e.NumViolations, e.First)
}

// MetricRegressionError reports a stage worsening a metric it is
// guaranteed not to worsen (e.g. matching and maximum displacement,
// paper Section 3.2).
type MetricRegressionError struct {
	Metric string
	Unit   string
	Before float64
	After  float64
}

func (e *MetricRegressionError) Error() string {
	return fmt.Sprintf("%s regressed from %.3f to %.3f %s", e.Metric, e.Before, e.After, e.Unit)
}

// RunReport summarizes the resilience layer's view of a finished run.
type RunReport struct {
	// Status is StatusLegal when no gate intervened, StatusRecovered
	// when fallbacks kept the run on a verified placement, and
	// StatusPartial when recovery was exhausted under
	// RecoverBestEffort.
	Status Status
	// Gates lists every gate intervention in execution order.
	Gates []GateReport
}

// maxViolationSample bounds the violations copied into a GateReport;
// NumViolations always carries the full count.
const maxViolationSample = 8

// runIsolated executes s.Run under a recover() boundary: a panic
// anywhere in the stage (worker panics are converted inside mgl; this
// catches everything else) becomes a typed *PanicError instead of a
// process crash.
func runIsolated(ctx context.Context, s Stage, pc *PipelineContext) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Stage: s.Name(), Value: r, Stack: debug.Stack()}
		}
	}()
	return s.Run(ctx, pc)
}

// gateOutcome is the result of one gated stage execution.
type gateOutcome struct {
	err      error  // nil = stage passed its gate
	reason   string // Reason* constant when err != nil
	numV     int
	sample   []eval.Violation
	counters map[string]int64 // failing attempt's counters, pre-rollback
}

// runGated executes one stage with the resilience wrapper: snapshot,
// isolated run (with the stage-error injection point), then — when
// verify is on — the post-stage legality audit (with the illegal-move
// injection point) and the stage's metric-regression check. On any
// failure both the placement and the context artifacts are rolled back
// to their snapshots unless the failure is a context cancellation
// (cancelled runs keep their partial progress, matching the engine's
// documented semantics). The failing attempt's counters are captured
// into the outcome first, so the GateReport still shows how far the
// attempt got after its artifacts are gone.
//
//mclegal:restores design.xy,stagectx every gate failure restores the XY snapshot and the artifact snapshot; hotcells, occupancy and route memos are per-run scratch rebuilt from the design (see their //mclegal:ephemeral declarations)
func (p *Pipeline) runGated(ctx context.Context, pc *PipelineContext, s Stage, verify bool) gateOutcome {
	snap := pc.Design.SnapshotXY()
	arts := pc.snapshotArtifacts()
	rollback := func() map[string]int64 {
		var counters map[string]int64
		if cp, ok := s.(CounterProvider); ok {
			counters = cp.Counters(pc)
		}
		pc.Design.RestoreXY(snap)
		pc.restoreArtifacts(arts)
		return counters
	}
	var before eval.Metrics
	check := p.MetricChecks[s.Name()]
	if verify && check != nil {
		before = eval.Measure(pc.Design)
	}

	err := pc.Faults.Err(faults.StageError(s.Name()))
	if err == nil {
		err = runIsolated(ctx, s, pc)
	}
	if err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			return gateOutcome{err: err, reason: ""} // cancellation: no rollback
		}
		counters := rollback()
		reason := ReasonStageError
		var pe *PanicError
		if errors.As(err, &pe) {
			reason = ReasonPanic
		}
		return gateOutcome{err: err, reason: reason, counters: counters}
	}
	if !verify {
		return gateOutcome{}
	}

	if pc.Faults.ShouldFire(faults.IllegalMove(s.Name())) {
		injectIllegalMove(pc)
	}
	if vs := eval.Audit(pc.Design, pc.Grid); len(vs) > 0 {
		counters := rollback()
		sample := vs
		if len(sample) > maxViolationSample {
			sample = sample[:maxViolationSample]
		}
		return gateOutcome{
			err:      &AuditError{Stage: s.Name(), NumViolations: len(vs), First: vs[0]},
			reason:   ReasonAudit,
			numV:     len(vs),
			sample:   sample,
			counters: counters,
		}
	}
	if check != nil {
		//mclegal:writeset metric checks are pure predicates over two eval.Metrics value copies
		if merr := check(before, eval.Measure(pc.Design)); merr != nil {
			counters := rollback()
			return gateOutcome{err: fmt.Errorf("stage %s: %w", s.Name(), merr), reason: ReasonMetric, counters: counters}
		}
	}
	return gateOutcome{}
}

// injectIllegalMove deterministically corrupts the placement: the
// first movable cell is stacked onto the second one, guaranteeing an
// overlap the audit must report.
func injectIllegalMove(pc *PipelineContext) {
	d := pc.Design
	first := -1
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			continue
		}
		if first < 0 {
			first = i
			continue
		}
		d.Cells[first].X = d.Cells[i].X
		d.Cells[first].Y = d.Cells[i].Y
		return
	}
}

// NoMaxDispRegression is the metric-regression check of the matching
// stage: paper Section 3.2 guarantees its swaps cannot create any new
// violation, and in particular cannot increase the maximum
// displacement the matching minimizes.
func NoMaxDispRegression(before, after eval.Metrics) error {
	if after.MaxDisp > before.MaxDisp {
		return &MetricRegressionError{Metric: "max displacement", Unit: "rows", Before: before.MaxDisp, After: after.MaxDisp}
	}
	return nil
}

// FuncStage adapts a plain function to the Stage interface; the flow
// package uses it for fallback stages.
type FuncStage struct {
	StageName string
	Fn        func(ctx context.Context, pc *PipelineContext) error
}

func (f *FuncStage) Name() string { return f.StageName }

func (f *FuncStage) Run(ctx context.Context, pc *PipelineContext) error {
	//mclegal:writeset Fn is the composer's own stage body; the gate audits and rolls back whatever it writes
	return f.Fn(ctx, pc)
}

// CriticalStage marks stages the pipeline cannot recover from by
// skipping: without their output a legal result is unreachable (MGL is
// the only built-in one — the later stages only improve an already
// legal placement).
type CriticalStage interface {
	Critical() bool
}

func isCritical(s Stage) bool {
	c, ok := s.(CriticalStage)
	return ok && c.Critical()
}
