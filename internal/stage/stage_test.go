package stage

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mclegal/internal/bmark"
	"mclegal/internal/maxdisp"
	"mclegal/internal/mgl"
	"mclegal/internal/refine"
)

// fakeStage records its execution and optionally fails, sleeps, or
// cancels the run.
type fakeStage struct {
	name     string
	err      error
	sleep    time.Duration
	onRun    func(pc *PipelineContext)
	counters map[string]int64
	ran      bool
}

func (f *fakeStage) Name() string { return f.name }

func (f *fakeStage) Run(ctx context.Context, pc *PipelineContext) error {
	f.ran = true
	if f.sleep > 0 {
		time.Sleep(f.sleep)
	}
	if f.onRun != nil {
		f.onRun(pc)
	}
	return f.err
}

func (f *fakeStage) Counters(pc *PipelineContext) map[string]int64 { return f.counters }

// recorder captures every observer callback.
type recorder struct {
	starts   []StartEvent
	finishes []FinishEvent
}

func (r *recorder) StageStart(ev StartEvent)   { r.starts = append(r.starts, ev) }
func (r *recorder) StageFinish(ev FinishEvent) { r.finishes = append(r.finishes, ev) }

func smallContext(t *testing.T) *PipelineContext {
	t.Helper()
	d := bmark.Generate(bmark.Params{
		Name: "stage", Seed: 11, Counts: [4]int{120, 12, 0, 0}, Density: 0.5,
	})
	pc, err := NewContext(d, false)
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

func TestPipelineRunsStagesInOrder(t *testing.T) {
	pc := smallContext(t)
	var order []string
	mk := func(name string) *fakeStage {
		return &fakeStage{name: name, onRun: func(*PipelineContext) { order = append(order, name) }}
	}
	p := Pipeline{Stages: []Stage{mk("a"), mk("b"), mk("c")}}
	timings, err := p.Run(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "a,b,c" {
		t.Errorf("order = %s", got)
	}
	if len(timings) != 3 || timings[0].Stage != "a" || timings[2].Stage != "c" {
		t.Errorf("timings = %+v", timings)
	}
}

func TestPipelineWrapsErrorAndKeepsTimings(t *testing.T) {
	pc := smallContext(t)
	boom := errors.New("boom")
	last := &fakeStage{name: "never"}
	p := Pipeline{Stages: []Stage{
		&fakeStage{name: "ok"},
		&fakeStage{name: "bad", err: boom},
		last,
	}}
	timings, err := p.Run(context.Background(), pc)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "stage bad") {
		t.Errorf("error not wrapped with stage name: %v", err)
	}
	// The failed stage's timing is still reported.
	if len(timings) != 2 || timings[1].Stage != "bad" {
		t.Errorf("timings = %+v", timings)
	}
	if last.ran {
		t.Error("stage after the failure ran")
	}
}

func TestCancelBetweenStages(t *testing.T) {
	pc := smallContext(t)
	ctx, cancel := context.WithCancel(context.Background())
	second := &fakeStage{name: "second"}
	p := Pipeline{Stages: []Stage{
		&fakeStage{name: "first", onRun: func(*PipelineContext) { cancel() }},
		second,
	}}
	timings, err := p.Run(ctx, pc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if second.ran {
		t.Error("stage ran after cancellation")
	}
	if len(timings) != 1 {
		t.Errorf("timings = %+v", timings)
	}
}

func TestObserverReceivesEvents(t *testing.T) {
	pc := smallContext(t)
	rec := &recorder{}
	boom := errors.New("boom")
	p := Pipeline{
		Stages: []Stage{
			&fakeStage{name: "work", sleep: time.Millisecond,
				counters: map[string]int64{"items": 7}},
			&fakeStage{name: "fail", err: boom},
		},
		Observer: rec,
	}
	if _, err := p.Run(context.Background(), pc); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if len(rec.starts) != 2 || len(rec.finishes) != 2 {
		t.Fatalf("starts %d finishes %d", len(rec.starts), len(rec.finishes))
	}
	if rec.starts[0].Cells != pc.Design.MovableCount() {
		t.Errorf("start cells = %d", rec.starts[0].Cells)
	}
	fin := rec.finishes[0]
	if fin.Duration <= 0 || fin.CellsPerSec <= 0 {
		t.Errorf("finish duration %v cells/s %f", fin.Duration, fin.CellsPerSec)
	}
	if fin.Counters["items"] != 7 {
		t.Errorf("counters = %v", fin.Counters)
	}
	if rec.finishes[1].Err == nil {
		t.Error("failed stage's finish event has no error")
	}
	if rec.starts[1].Index != 1 || rec.starts[1].Total != 2 {
		t.Errorf("event indexing = %+v", rec.starts[1])
	}
}

func TestArtifacts(t *testing.T) {
	pc := smallContext(t)
	st := &fakeStage{name: "custom", onRun: func(pc *PipelineContext) {
		pc.PutArtifact("custom", 42)
	}}
	p := Pipeline{Stages: []Stage{st}}
	if _, err := p.Run(context.Background(), pc); err != nil {
		t.Fatal(err)
	}
	v, ok := pc.Artifact("custom")
	if !ok || v.(int) != 42 {
		t.Errorf("artifact = %v %v", v, ok)
	}
	if _, ok := pc.Artifact("missing"); ok {
		t.Error("missing artifact found")
	}
}

// The three real stages compose into the paper's full pipeline and
// populate the typed artifacts.
func TestRealStagesEndToEnd(t *testing.T) {
	d := bmark.Generate(bmark.Params{
		Name: "real", Seed: 7, Counts: [4]int{400, 40, 10, 4},
		Density: 0.6, NumFences: 1, FenceFrac: 0.5, Routability: true,
	})
	pc, err := NewContext(d, true)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Rules == nil {
		t.Fatal("routability rules not built")
	}
	p := Pipeline{Stages: []Stage{
		NewMGL(mgl.Options{Workers: 2}),
		NewMaxDisp(maxdisp.Options{}),
		NewRefine(refine.Options{Weights: refine.WeightHeightAverage, MaxDispWeight: 10}, true),
	}}
	timings, err := p.Run(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != 3 {
		t.Fatalf("timings = %+v", timings)
	}
	if pc.MGLStats.Placed != d.MovableCount() {
		t.Errorf("placed %d of %d", pc.MGLStats.Placed, d.MovableCount())
	}
	if pc.MaxDispStats.Groups == 0 {
		t.Error("matching solved no groups")
	}
	if pc.RefineReport.Nodes == 0 {
		t.Error("refine built no network")
	}
}

func TestLogObserverOutput(t *testing.T) {
	var buf bytes.Buffer
	o := NewLogObserver(&buf)
	o.StageStart(StartEvent{Stage: "mgl", Index: 0, Total: 3, Cells: 100})
	o.StageFinish(FinishEvent{
		Stage: "mgl", Index: 0, Total: 3, Duration: 20 * time.Millisecond,
		CellsPerSec: 5000, Counters: map[string]int64{"b": 2, "a": 1},
	})
	o.StageFinish(FinishEvent{Stage: "mgl", Index: 0, Total: 3,
		Duration: time.Millisecond, Err: fmt.Errorf("kaput")})
	out := buf.String()
	for _, want := range []string{"[1/3] mgl", "start (100 cells)", "a=1 b=2", "5000 cells/s", "FAILED", "kaput"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONObserverOutput(t *testing.T) {
	var buf bytes.Buffer
	o := NewJSONObserver(&buf)
	o.StageStart(StartEvent{Stage: "maxdisp", Index: 1, Total: 3, Cells: 50})
	o.StageFinish(FinishEvent{
		Stage: "maxdisp", Index: 1, Total: 3, Duration: time.Second,
		CellsPerSec: 50, Counters: map[string]int64{"matchings_solved": 4},
	})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var start, finish map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &start); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &finish); err != nil {
		t.Fatal(err)
	}
	if start["event"] != "stage_start" || start["stage"] != "maxdisp" || start["cells"] != float64(50) {
		t.Errorf("start = %v", start)
	}
	if finish["event"] != "stage_finish" || finish["seconds"] != float64(1) {
		t.Errorf("finish = %v", finish)
	}
	if c := finish["counters"].(map[string]any); c["matchings_solved"] != float64(4) {
		t.Errorf("counters = %v", c)
	}
}

func TestMultiObserver(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	m := MultiObserver(a, b)
	m.StageStart(StartEvent{Stage: "x"})
	m.StageFinish(FinishEvent{Stage: "x"})
	if len(a.starts) != 1 || len(b.starts) != 1 || len(a.finishes) != 1 || len(b.finishes) != 1 {
		t.Error("events not fanned out")
	}
}
