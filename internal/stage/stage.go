// Package stage is the pipeline engine behind the three-stage
// legalization flow (paper Figure 2): a Stage interface, a shared
// PipelineContext carrying the design and the artifacts every stage
// accumulates, and a Pipeline runner that owns timing, context
// cancellation, error wrapping and observer notification.
//
// The flow package composes the built-in stages (NewMGL, NewMaxDisp,
// NewRefine) from its Options; ablations such as the paper's Table 3
// are expressed by leaving a stage out of the composition rather than
// by flags inside a monolithic function. Custom stages only need to
// implement Stage (and optionally CounterProvider) to participate in
// timing and observability.
package stage

import (
	"context"
	"fmt"
	"time"

	"mclegal/internal/maxdisp"
	"mclegal/internal/mgl"
	"mclegal/internal/model"
	"mclegal/internal/refine"
	"mclegal/internal/route"
	"mclegal/internal/seg"
)

// Stage is one pass of the legalization pipeline. Run mutates the
// design carried by the PipelineContext in place and records its
// artifacts there; it must return promptly (with ctx.Err()) once ctx
// is cancelled, leaving the design consistent even if not legal.
type Stage interface {
	Name() string
	Run(ctx context.Context, pc *PipelineContext) error
}

// CounterProvider is an optional Stage extension: stages that implement
// it have their counters attached to the observer's finish event.
type CounterProvider interface {
	Counters(pc *PipelineContext) map[string]int64
}

// PipelineContext is the state shared by all stages of one run: the
// design being legalized, its segmentation grid, the routability
// rules/checker (when enabled), and the artifacts accumulated per
// stage. Artifacts of the built-in stages are typed fields; custom
// stages can deposit arbitrary values keyed by stage name.
type PipelineContext struct {
	Design *model.Design
	Grid   *seg.Grid
	// Rules is non-nil when routability handling (paper Section 3.4)
	// is enabled; the MGL and refinement stages consult it.
	Rules *route.Rules
	// Checker counts pin and edge-spacing violations; it is always
	// present so post-run scoring works with or without routability.
	Checker *route.Checker

	// Artifacts of the built-in stages, populated by their Run methods
	// (partially populated artifacts survive a failed or cancelled
	// stage so operators can see how far the run got).
	MGLStats     mgl.Stats
	MaxDispStats maxdisp.Stats
	RefineReport refine.Report

	artifacts map[string]any
}

// NewContext builds the shared pipeline state for d: the segmentation
// grid, the violation checker, and (when routability is enabled) the
// Section 3.4 rules.
func NewContext(d *model.Design, routability bool) (*PipelineContext, error) {
	grid, err := seg.Build(d)
	if err != nil {
		return nil, err
	}
	checker := route.NewChecker(d)
	pc := &PipelineContext{Design: d, Grid: grid, Checker: checker}
	if routability {
		pc.Rules = route.NewRules(checker)
	}
	return pc, nil
}

// PutArtifact stores a custom stage's output under its name.
func (pc *PipelineContext) PutArtifact(stage string, v any) {
	if pc.artifacts == nil {
		pc.artifacts = make(map[string]any)
	}
	pc.artifacts[stage] = v
}

// Artifact returns the output a custom stage stored under its name.
func (pc *PipelineContext) Artifact(stage string) (any, bool) {
	v, ok := pc.artifacts[stage]
	return v, ok
}

// Timing is the measured duration of one executed stage.
type Timing struct {
	Stage    string
	Duration time.Duration
}

// Pipeline runs a stage list over a shared context. The runner owns
// what every stage would otherwise duplicate: cancellation checks
// between stages, per-stage timing, error wrapping with the stage
// name, and observer notification.
type Pipeline struct {
	Stages   []Stage
	Observer Observer // optional
}

// Run executes the stages in order. It returns the timing of every
// stage that started — including a failed or cancelled one — so a
// partial run remains attributable; the error is wrapped with the
// failing stage's name.
func (p *Pipeline) Run(ctx context.Context, pc *PipelineContext) ([]Timing, error) {
	timings := make([]Timing, 0, len(p.Stages))
	cells := pc.Design.MovableCount()
	for i, s := range p.Stages {
		if err := ctx.Err(); err != nil {
			return timings, err
		}
		if p.Observer != nil {
			p.Observer.StageStart(StartEvent{
				Stage: s.Name(), Index: i, Total: len(p.Stages), Cells: cells,
			})
		}
		t0 := time.Now()
		err := s.Run(ctx, pc)
		dur := time.Since(t0)
		timings = append(timings, Timing{Stage: s.Name(), Duration: dur})
		if p.Observer != nil {
			ev := FinishEvent{
				Stage: s.Name(), Index: i, Total: len(p.Stages),
				Duration: dur, Err: err,
			}
			if cp, ok := s.(CounterProvider); ok {
				ev.Counters = cp.Counters(pc)
			}
			if secs := dur.Seconds(); secs > 0 {
				ev.CellsPerSec = float64(cells) / secs
			}
			p.Observer.StageFinish(ev)
		}
		if err != nil {
			return timings, fmt.Errorf("stage %s: %w", s.Name(), err)
		}
	}
	return timings, nil
}
