// Package stage is the pipeline engine behind the three-stage
// legalization flow (paper Figure 2): a Stage interface, a shared
// PipelineContext carrying the design and the artifacts every stage
// accumulates, and a Pipeline runner that owns timing, context
// cancellation, error wrapping and observer notification.
//
// The flow package composes the built-in stages (NewMGL, NewMaxDisp,
// NewRefine) from its Options; ablations such as the paper's Table 3
// are expressed by leaving a stage out of the composition rather than
// by flags inside a monolithic function. Custom stages only need to
// implement Stage (and optionally CounterProvider) to participate in
// timing and observability.
package stage

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mclegal/internal/eval"
	"mclegal/internal/faults"
	"mclegal/internal/maxdisp"
	"mclegal/internal/mgl"
	"mclegal/internal/model"
	"mclegal/internal/refine"
	"mclegal/internal/route"
	"mclegal/internal/seg"
)

// Stage is one pass of the legalization pipeline. Run mutates the
// design carried by the PipelineContext in place and records its
// artifacts there; it must return promptly (with ctx.Err()) once ctx
// is cancelled, leaving the design consistent even if not legal.
type Stage interface {
	Name() string
	Run(ctx context.Context, pc *PipelineContext) error
}

// CounterProvider is an optional Stage extension: stages that implement
// it have their counters attached to the observer's finish event.
type CounterProvider interface {
	Counters(pc *PipelineContext) map[string]int64
}

// PipelineContext is the state shared by all stages of one run: the
// design being legalized, its segmentation grid, the routability
// rules/checker (when enabled), and the artifacts accumulated per
// stage. Artifacts of the built-in stages are typed fields; custom
// stages can deposit arbitrary values keyed by stage name.
type PipelineContext struct {
	Design *model.Design
	Grid   *seg.Grid
	// Rules is non-nil when routability handling (paper Section 3.4)
	// is enabled; the MGL and refinement stages consult it.
	Rules *route.Rules
	// Checker counts pin and edge-spacing violations; it is always
	// present so post-run scoring works with or without routability.
	Checker *route.Checker
	// Faults is the optional fault-injection harness shared by the
	// run; gates consult the per-stage stage-error and illegal-move
	// points on it. Nil disables injection.
	Faults *faults.Injector

	// Artifacts of the built-in stages, populated by their Run methods
	// (partially populated artifacts survive a failed or cancelled
	// stage so operators can see how far the run got).
	MGLStats     mgl.Stats
	MaxDispStats maxdisp.Stats
	RefineReport refine.Report

	artifacts map[string]any
}

// NewContext builds the shared pipeline state for d: the segmentation
// grid, the violation checker, and (when routability is enabled) the
// Section 3.4 rules.
func NewContext(d *model.Design, routability bool) (*PipelineContext, error) {
	grid, err := seg.Build(d)
	if err != nil {
		return nil, err
	}
	checker := route.NewChecker(d)
	pc := &PipelineContext{Design: d, Grid: grid, Checker: checker}
	if routability {
		pc.Rules = route.NewRules(checker)
	}
	return pc, nil
}

// artifactSnapshot captures the per-stage artifact state of a
// PipelineContext — the typed built-in artifacts by value and the
// custom-artifact map by key — so a gate can roll a failed stage's
// context writes back alongside its position writes. Custom artifact
// values are restored by reference: a stage that mutates a value it
// deposited in an earlier run owns that aliasing.
type artifactSnapshot struct {
	mglStats     mgl.Stats
	maxDispStats maxdisp.Stats
	refineReport refine.Report
	artifacts    map[string]any
}

// snapshotArtifacts copies the context's artifact state for a later
// restoreArtifacts. The typed artifacts are plain value structs; the
// custom map is copied shallowly.
func (pc *PipelineContext) snapshotArtifacts() artifactSnapshot {
	snap := artifactSnapshot{
		mglStats:     pc.MGLStats,
		maxDispStats: pc.MaxDispStats,
		refineReport: pc.RefineReport,
	}
	if pc.artifacts != nil {
		snap.artifacts = make(map[string]any, len(pc.artifacts))
		//mclegal:ordered map-to-map copy; the snapshot's insertion order is never observed
		for k, v := range pc.artifacts {
			snap.artifacts[k] = v
		}
	}
	return snap
}

// restoreArtifacts rolls the context's artifact state back to a
// snapshot taken before a failed stage ran.
func (pc *PipelineContext) restoreArtifacts(snap artifactSnapshot) {
	pc.MGLStats = snap.mglStats
	pc.MaxDispStats = snap.maxDispStats
	pc.RefineReport = snap.refineReport
	pc.artifacts = snap.artifacts
}

// PutArtifact stores a custom stage's output under its name.
//
//mclegal:writes stagectx custom stages deposit their outputs on the shared context by design
func (pc *PipelineContext) PutArtifact(stage string, v any) {
	if pc.artifacts == nil {
		pc.artifacts = make(map[string]any)
	}
	pc.artifacts[stage] = v
}

// Artifact returns the output a custom stage stored under its name.
func (pc *PipelineContext) Artifact(stage string) (any, bool) {
	v, ok := pc.artifacts[stage]
	return v, ok
}

// Timing is the measured duration of one executed stage.
type Timing struct {
	Stage    string
	Duration time.Duration
}

// Pipeline runs a stage list over a shared context. The runner owns
// what every stage would otherwise duplicate: cancellation checks
// between stages, per-stage timing, error wrapping with the stage
// name, observer notification, panic isolation, and — when Verify or
// a non-strict Recovery policy is set — the legality gates and
// fallback chains of gate.go.
type Pipeline struct {
	Stages   []Stage
	Observer Observer // optional

	// Verify arms the legality gates: every stage runs against a
	// position snapshot, is audited (eval.Audit) afterwards, checked
	// for metric regressions, and rolled back on any failure.
	Verify bool
	// Recovery selects what a gate failure does to the run; see the
	// RecoveryPolicy constants. The zero value is RecoverStrict.
	Recovery RecoveryPolicy
	// Fallbacks maps a stage name to the substitute stage run (also
	// gated) after the primary failed and was rolled back.
	Fallbacks map[string]Stage
	// MetricChecks maps a stage name to its metric-regression
	// predicate, evaluated by the gate when Verify is on.
	MetricChecks map[string]func(before, after eval.Metrics) error
}

// Run executes the stages in order. It returns the timing of every
// stage that started — including a failed or cancelled one — so a
// partial run remains attributable; the error is wrapped with the
// failing stage's name.
//
//mclegal:writes design.xy,hotcells,occupancy,routememo,stagectx the pipeline mutates exactly what its stages mutate: positions, artifacts, and the per-run scratch views
func (p *Pipeline) Run(ctx context.Context, pc *PipelineContext) ([]Timing, error) {
	timings, _, err := p.RunWithReport(ctx, pc)
	return timings, err
}

// RunWithReport is Run plus the resilience layer's RunReport: the
// run's trust status and every gate intervention. Without gates
// (Verify off, strict recovery) stages still run under panic
// isolation, so a panicking stage fails the run with a *PanicError
// instead of crashing the process.
//
//mclegal:writes design.xy,hotcells,occupancy,routememo,stagectx the pipeline mutates exactly what its stages mutate: positions, artifacts, and the per-run scratch views
func (p *Pipeline) RunWithReport(ctx context.Context, pc *PipelineContext) ([]Timing, RunReport, error) {
	report := RunReport{Status: StatusLegal}
	timings := make([]Timing, 0, len(p.Stages))
	gated := p.Verify || p.Recovery != RecoverStrict

	for i, s := range p.Stages {
		if err := ctx.Err(); err != nil {
			return timings, report, err
		}
		out := p.runObserved(ctx, pc, s, i, gated, &timings)
		if out.err == nil {
			continue
		}
		if ctx.Err() != nil && errors.Is(out.err, ctx.Err()) {
			return timings, report, out.err // cancellation, not a gate failure
		}
		if !gated {
			// Engine-compatible strict path: wrapped error, partial
			// artifacts preserved, no rollback.
			return timings, report, fmt.Errorf("stage %s: %w", s.Name(), out.err)
		}

		rep := GateReport{
			Stage: s.Name(), Reason: out.reason, Err: out.err,
			NumViolations: out.numV, Violations: out.sample, RolledBack: true,
			Counters: out.counters,
		}
		if p.Recovery == RecoverStrict {
			rep.Action = ActionFailed
			report.Gates = append(report.Gates, rep)
			return timings, report, &GateError{Report: rep}
		}

		// Fallback chain: substitute stage first, then skipping.
		if fb := p.Fallbacks[s.Name()]; fb != nil {
			fbOut := p.runObserved(ctx, pc, fb, i, gated, &timings)
			if fbOut.err == nil {
				rep.Action, rep.Fallback = ActionFallback, fb.Name()
				report.Gates = append(report.Gates, rep)
				report.Status = StatusRecovered
				continue
			}
			if ctx.Err() != nil && errors.Is(fbOut.err, ctx.Err()) {
				report.Gates = append(report.Gates, rep)
				return timings, report, fbOut.err
			}
			report.Gates = append(report.Gates, GateReport{
				Stage: fb.Name(), Reason: fbOut.reason, Err: fbOut.err,
				NumViolations: fbOut.numV, Violations: fbOut.sample,
				RolledBack: true, Action: ActionFailed,
				Counters: fbOut.counters,
			})
		}
		if !isCritical(s) {
			rep.Action = ActionSkipped
			report.Gates = append(report.Gates, rep)
			report.Status = StatusRecovered
			continue
		}
		// A critical stage with its fallbacks exhausted.
		if p.Recovery == RecoverFallback {
			rep.Action = ActionFailed
			report.Gates = append(report.Gates, rep)
			return timings, report, &GateError{Report: rep}
		}
		rep.Action = ActionAborted
		report.Gates = append(report.Gates, rep)
		report.Status = StatusPartial
		return timings, report, nil
	}
	return timings, report, nil
}

// runObserved executes one stage (gated or merely panic-isolated) with
// observer notification and timing capture.
func (p *Pipeline) runObserved(ctx context.Context, pc *PipelineContext, s Stage, index int, gated bool, timings *[]Timing) gateOutcome {
	cells := pc.Design.MovableCount()
	if p.Observer != nil {
		p.Observer.StageStart(StartEvent{
			Stage: s.Name(), Index: index, Total: len(p.Stages), Cells: cells,
		})
	}
	//mclegal:wallclock stage timing feeds observer events only, never placement
	t0 := time.Now()
	var out gateOutcome
	if gated {
		out = p.runGated(ctx, pc, s, p.Verify)
	} else {
		out.err = runIsolated(ctx, s, pc)
		if out.err != nil {
			var pe *PanicError
			if errors.As(out.err, &pe) {
				out.reason = ReasonPanic
			} else {
				out.reason = ReasonStageError
			}
		}
	}
	//mclegal:wallclock stage timing feeds observer events only, never placement
	dur := time.Since(t0)
	*timings = append(*timings, Timing{Stage: s.Name(), Duration: dur})
	if p.Observer != nil {
		ev := FinishEvent{
			Stage: s.Name(), Index: index, Total: len(p.Stages),
			Duration: dur, Err: out.err,
		}
		if cp, ok := s.(CounterProvider); ok {
			ev.Counters = cp.Counters(pc)
		}
		if secs := dur.Seconds(); secs > 0 {
			ev.CellsPerSec = float64(cells) / secs
		}
		p.Observer.StageFinish(ev)
	}
	return out
}
