package stage

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mclegal/internal/bmark"
	"mclegal/internal/faults"
	"mclegal/internal/maxdisp"
	"mclegal/internal/mgl"
	"mclegal/internal/model"
	"mclegal/internal/refine"
)

// This file is the dynamic half of the snapshotsafe proof: the static
// analyzer proves every gated stage's write set is covered by the
// gate's //mclegal:restores declaration (plus the //mclegal:ephemeral
// scratch), and these tests demonstrate the runtime consequence — a
// rolled-back stage leaves the design deep-equal to its pre-stage
// state and the context artifacts exactly as they were. The analysis
// pin test (analysis.TestStageWriteSetsMatchRollbackProof) holds the
// two halves together: every stage the analyzer proves must have a
// subtest here, and every subtest here must correspond to a proof.

// rollbackCase prepares a PipelineContext the stage under test can run
// on. MGL starts from GP positions; the improvement stages need a
// placement that is already legal on entry.
type rollbackCase struct {
	stage Stage
	prep  func(t *testing.T) *PipelineContext
}

func generated(t *testing.T, seed int64) *model.Design {
	t.Helper()
	return bmark.Generate(bmark.Params{
		Name: "rollback", Seed: seed, Counts: [4]int{200, 20, 6, 2},
		Density: 0.6, NumFences: 1, FenceFrac: 0.5,
	})
}

// freshContext returns a context over a generated (GP, generally
// illegal) design — the state MGL starts from.
func freshContext(t *testing.T, seed int64) *PipelineContext {
	t.Helper()
	pc, err := NewContext(generated(t, seed), false)
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

// legalizedContext runs MGL ungated first, so the stage under test
// starts from a legal placement like it would mid-pipeline.
func legalizedContext(t *testing.T, seed int64) *PipelineContext {
	t.Helper()
	pc := freshContext(t, seed)
	p := Pipeline{Stages: []Stage{NewMGL(mgl.Options{})}}
	if _, err := p.Run(context.Background(), pc); err != nil {
		t.Fatalf("prep legalization: %v", err)
	}
	return pc
}

// TestGateRollbackRestoresDesignAndArtifacts runs every built-in stage
// (and a custom FuncStage) to completion under an injected illegal-move
// fault, so the gate audits the corrupted result, rolls back, and must
// restore everything the stage wrote: cell positions byte-for-byte and
// the context artifacts — typed stats and the custom artifact map —
// to their pre-stage values. The failing attempt's counters must still
// surface in the GateReport, since the rolled-back context no longer
// shows them.
func TestGateRollbackRestoresDesignAndArtifacts(t *testing.T) {
	cases := map[string]rollbackCase{
		"MGLStage": {
			stage: NewMGL(mgl.Options{}),
			prep:  func(t *testing.T) *PipelineContext { return freshContext(t, 11) },
		},
		"MaxDispStage": {
			stage: NewMaxDisp(maxdisp.Options{}),
			prep:  func(t *testing.T) *PipelineContext { return legalizedContext(t, 12) },
		},
		"RefineStage": {
			stage: NewRefine(refine.Options{Weights: refine.WeightHeightAverage, MaxDispWeight: 10}, false),
			prep:  func(t *testing.T) *PipelineContext { return legalizedContext(t, 13) },
		},
		"FuncStage": {
			stage: &FuncStage{
				StageName: "custom",
				Fn: func(ctx context.Context, pc *PipelineContext) error {
					pc.Design.Cells[0].X++
					pc.PutArtifact("custom", 42)
					return nil
				},
			},
			prep: func(t *testing.T) *PipelineContext { return legalizedContext(t, 14) },
		},
	}

	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			pc := tc.prep(t)
			pc.PutArtifact("pre-existing", "kept")
			pc.Faults = faults.New().Arm(faults.IllegalMove(tc.stage.Name()))

			want := pc.Design.Clone()
			wantMGL, wantMaxDisp, wantRefine := pc.MGLStats, pc.MaxDispStats, pc.RefineReport

			p := Pipeline{Stages: []Stage{tc.stage}, Verify: true}
			_, report, err := p.RunWithReport(context.Background(), pc)

			var ge *GateError
			if !errors.As(err, &ge) || ge.Report.Reason != ReasonAudit {
				t.Fatalf("err = %v, want audit GateError", err)
			}
			if !ge.Report.RolledBack {
				t.Error("gate did not report a rollback")
			}
			if len(report.Gates) != 1 {
				t.Fatalf("gate reports = %d, want 1", len(report.Gates))
			}

			if !reflect.DeepEqual(pc.Design, want) {
				t.Error("rolled-back design differs from its pre-stage state")
			}
			if pc.MGLStats != wantMGL {
				t.Errorf("MGLStats not restored: %+v, want %+v", pc.MGLStats, wantMGL)
			}
			if pc.MaxDispStats != wantMaxDisp {
				t.Errorf("MaxDispStats not restored: %+v, want %+v", pc.MaxDispStats, wantMaxDisp)
			}
			if pc.RefineReport != wantRefine {
				t.Errorf("RefineReport not restored: %+v, want %+v", pc.RefineReport, wantRefine)
			}
			if v, ok := pc.Artifact("pre-existing"); !ok || v != "kept" {
				t.Errorf("pre-existing artifact lost: %v %v", v, ok)
			}
			if v, ok := pc.Artifact("custom"); ok {
				t.Errorf("failed stage's artifact survived the rollback: %v", v)
			}

			if _, ok := tc.stage.(CounterProvider); ok {
				if len(ge.Report.Counters) == 0 {
					t.Error("failing attempt's counters missing from the gate report")
				}
			}
		})
	}
}

// A cancelled stage keeps its partial artifacts — the gate's
// rollback-completeness contract deliberately excludes cancellation
// (see the runGated doc and //mclegal:restores justification).
func TestCancellationKeepsPartialArtifacts(t *testing.T) {
	pc := legalizedContext(t, 15)
	ctx, cancel := context.WithCancel(context.Background())
	st := &FuncStage{
		StageName: "cancelled",
		Fn: func(ctx context.Context, pc *PipelineContext) error {
			pc.PutArtifact("partial", 7)
			cancel()
			return ctx.Err()
		},
	}
	p := Pipeline{Stages: []Stage{st}, Verify: true}
	_, _, err := p.RunWithReport(ctx, pc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if v, ok := pc.Artifact("partial"); !ok || v != 7 {
		t.Errorf("cancelled stage's partial artifact lost: %v %v", v, ok)
	}
}
