package stage

import (
	"context"

	"mclegal/internal/mgl"
)

// Stage names of the built-in pipeline stages, usable as timing and
// artifact keys.
const (
	NameMGL     = "mgl"
	NameMaxDisp = "maxdisp"
	NameRefine  = "refine"
)

// NewMGL returns the multi-row global legalization stage (paper
// Sections 3.1 and 3.5). The pipeline's routability rules, when
// present, override opt.Rules.
func NewMGL(opt mgl.Options) *MGLStage { return &MGLStage{Opt: opt} }

// MGLStage is the concrete MGL stage; Opt is exposed so composers and
// tests can inspect the options the stage will run with.
type MGLStage struct{ Opt mgl.Options }

func (s *MGLStage) Name() string { return NameMGL }

// Critical marks MGL as unskippable: every later stage refines an
// already legal placement, so without MGL (or its fallback) the
// pipeline cannot end legal.
func (s *MGLStage) Critical() bool { return true }

// Run legalizes the context's design in place and deposits the run's
// stats as the stage artifact.
//
//mclegal:writes design.xy,hotcells,occupancy,routememo,stagectx MGL commits legal positions and deposits its stats; the hot view, occupancy index and route memos are per-run scratch
func (s *MGLStage) Run(ctx context.Context, pc *PipelineContext) error {
	opt := s.Opt
	if pc.Rules != nil {
		opt.Rules = pc.Rules
	}
	if opt.Faults == nil {
		opt.Faults = pc.Faults
	}
	l := mgl.New(pc.Design, pc.Grid, opt)
	err := l.RunContext(ctx)
	// Keep partial stats on failure or cancellation: on an ungated run
	// they tell the operator how far legalization got. A gate rolls
	// them back with the rest of the context, but captures the counters
	// into its GateReport first, so the information survives either way.
	pc.MGLStats = l.Stats
	return err
}

func (s *MGLStage) Counters(pc *PipelineContext) map[string]int64 {
	return map[string]int64{
		"cells_placed":   int64(pc.MGLStats.Placed),
		"window_retries": int64(pc.MGLStats.WindowRetries),
		"batches":        int64(pc.MGLStats.Batches),
		"eval_workers":   int64(pc.MGLStats.Workers),
	}
}
