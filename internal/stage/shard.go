package stage

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"mclegal/internal/model"
)

// Shard is one independent subproblem of a sharded run: a named
// subdesign whose movables are spatially disjoint from every other
// shard's (per-fence regions or blockage-confined die slabs, see
// internal/shard).
type Shard struct {
	Name string
	Sub  *model.Subdesign
	// Index is the shard's position in the plan. Builders that depend
	// on a stable per-shard identity — the fault-injection fork of a
	// sharded run keys its deterministic hit counters on it — must use
	// Index, never the order shards happen to be scheduled in.
	Index int
}

// ShardResult is the outcome of one shard's pipeline run.
type ShardResult struct {
	Shard   Shard
	Timings []Timing
	Report  RunReport
	// Err is the shard pipeline's error (nil on success). Cancellation
	// surfaces here as the context error.
	Err error
	// Context is the shard's pipeline context, for per-shard stats and
	// artifacts; nil when Make failed.
	Context *PipelineContext
}

// ShardedPipeline runs one full pipeline per shard on a bounded worker
// pool and merges the shard placements back into the parent design.
//
// Workers is a pure concurrency knob: shards are handed out and merged
// in index order, each shard's pipeline is deterministic on its own
// subdesign, and the subdesigns write disjoint cells of the parent —
// so the merged placement is byte-identical for any worker count.
type ShardedPipeline struct {
	// Workers bounds how many shards legalize concurrently; <=1 runs
	// them sequentially. The result never depends on it.
	Workers int
	// Make builds the pipeline and context legalizing one shard. It is
	// called from worker goroutines and must be safe for concurrent
	// use (each call builds fresh state for its own shard).
	Make func(Shard) (*Pipeline, *PipelineContext, error)
}

// Run legalizes every shard, merges the placements into parent, and
// aggregates the per-shard gate reports: the combined Status is the
// worst across shards and gate entries carry "shard/stage" names. The
// returned error is the first failing shard's (by index), wrapped with
// the shard name; cancellation is reported as the context error. The
// per-shard results are returned even on error so callers can see
// partial progress.
//
//mclegal:writes design.xy,hotcells,occupancy,routememo,stagectx each shard runs a full pipeline over its subdesign and the merge writes the parent's positions
func (sp *ShardedPipeline) Run(ctx context.Context, parent *model.Design, shards []Shard) ([]ShardResult, RunReport, error) {
	results := make([]ShardResult, len(shards))
	workers := sp.Workers
	if workers <= 1 || len(shards) <= 1 {
		for i := range shards {
			results[i] = sp.runOne(ctx, shards[i], nil)
		}
	} else {
		if workers > len(shards) {
			workers = len(shards)
		}
		// PR-3 pool shape: workers drain an index channel and write
		// into per-index slots; the feeder closes the channel and the
		// WaitGroup joins every goroutine on all return paths. Workers
		// keep draining after cancellation — runOne returns promptly
		// because the pipeline checks its context before each stage.
		var obsMu sync.Mutex
		work := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range work {
					results[i] = sp.runOne(ctx, shards[i], &obsMu)
				}
			}()
		}
		for i := range shards {
			work <- i
		}
		close(work)
		wg.Wait()
	}

	agg := RunReport{Status: StatusLegal}
	var firstErr error
	for i := range results {
		r := &results[i]
		// Merge every shard, failed ones included: the subdesign always
		// holds a consistent placement (rolled back, fallback or
		// partial), matching what a monolithic run leaves behind.
		r.Shard.Sub.MergeBack(parent)
		if r.Report.Status > agg.Status {
			agg.Status = r.Report.Status
		}
		for _, g := range r.Report.Gates {
			g.Stage = r.Shard.Name + "/" + g.Stage
			agg.Gates = append(agg.Gates, g)
		}
		if r.Err != nil && firstErr == nil {
			if errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded) {
				firstErr = r.Err
			} else {
				firstErr = fmt.Errorf("shard %s: %w", r.Shard.Name, r.Err)
			}
		}
	}
	return results, agg, firstErr
}

func (sp *ShardedPipeline) runOne(ctx context.Context, sh Shard, obsMu *sync.Mutex) ShardResult {
	res := ShardResult{Shard: sh}
	p, pc, err := sp.Make(sh) //mclegal:writeset Make is the composer's shard-pipeline factory; it builds fresh state per shard and its product runs under the shard's own gates
	if err != nil {
		res.Err = fmt.Errorf("build pipeline: %w", err)
		return res
	}
	if p.Observer != nil {
		// Observers are written for one sequential pipeline; prefix
		// stage names with the shard and serialize callbacks across
		// concurrently running shards.
		p.Observer = &shardObserver{name: sh.Name, mu: obsMu, inner: p.Observer}
	}
	res.Context = pc
	res.Timings, res.Report, res.Err = p.RunWithReport(ctx, pc)
	return res
}

// shardObserver adapts a per-run observer for concurrent shard
// pipelines: stage names gain a "shard/" prefix and callbacks are
// serialized behind the pool-wide mutex (nil in sequential runs).
type shardObserver struct {
	name  string
	mu    *sync.Mutex
	inner Observer
}

func (o *shardObserver) StageStart(ev StartEvent) {
	ev.Stage = o.name + "/" + ev.Stage
	if o.mu != nil {
		o.mu.Lock()
		defer o.mu.Unlock()
	}
	o.inner.StageStart(ev)
}

func (o *shardObserver) StageFinish(ev FinishEvent) {
	ev.Stage = o.name + "/" + ev.Stage
	if o.mu != nil {
		o.mu.Lock()
		defer o.mu.Unlock()
	}
	o.inner.StageFinish(ev)
}
