package stage

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/testutil"
)

// shardParent builds a legal parent design: 8 movables on distinct
// sites plus one fixed cell the shards must never touch.
func shardParent(t *testing.T) *model.Design {
	t.Helper()
	d := &model.Design{
		Name: "sharded",
		Tech: model.Tech{SiteW: 10, RowH: 80, NumSites: 60, NumRows: 6},
		Types: []model.CellType{
			{Name: "S1", Width: 2, Height: 1},
		},
	}
	for i := 0; i < 8; i++ {
		x, y := 4*i, i%3
		d.Cells = append(d.Cells, model.Cell{
			Name: "c", Type: 0, GX: x, GY: y, X: x, Y: y,
		})
	}
	d.Cells = append(d.Cells, model.Cell{
		Name: "blk", Type: 0, GX: 50, GY: 5, X: 50, Y: 5, Fixed: true,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// twoShards splits the parent's movables into two disjoint halves.
func twoShards(t *testing.T, d *model.Design) []Shard {
	t.Helper()
	a, err := model.NewSubdesign(d, "a", []model.CellID{0, 1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := model.NewSubdesign(d, "b", []model.CellID{4, 5, 6, 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return []Shard{{Name: "a", Sub: a}, {Name: "b", Sub: b}}
}

// shiftMaker builds a one-stage pipeline per shard that shifts every
// movable of the shard right by dx sites — a deterministic stand-in
// for the real legalization stack.
func shiftMaker(dx int) func(Shard) (*Pipeline, *PipelineContext, error) {
	return func(sh Shard) (*Pipeline, *PipelineContext, error) {
		pc, err := NewContext(sh.Sub.Design, false)
		if err != nil {
			return nil, nil, err
		}
		mov := sh.Sub.Movables
		p := &Pipeline{Stages: []Stage{&fakeStage{
			name: "shift",
			onRun: func(pc *PipelineContext) {
				for i := 0; i < mov; i++ {
					pc.Design.Cells[i].X += dx
				}
			},
		}}}
		return p, pc, nil
	}
}

// A sharded run must write every shard's movables back to the parent
// and leave fixed cells untouched.
func TestShardedRunMergesDisjointWrites(t *testing.T) {
	d := shardParent(t)
	sp := &ShardedPipeline{Workers: 2, Make: shiftMaker(1)}
	results, report, err := sp.Run(context.Background(), d, twoShards(t, d))
	if err != nil {
		t.Fatal(err)
	}
	if report.Status != StatusLegal || len(report.Gates) != 0 {
		t.Errorf("report = %+v", report)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil || r.Context == nil || len(r.Timings) != 1 {
			t.Errorf("shard %s: err=%v ctx=%v timings=%d", r.Shard.Name, r.Err, r.Context, len(r.Timings))
		}
	}
	for i := 0; i < 8; i++ {
		if d.Cells[i].X != 4*i+1 {
			t.Errorf("cell %d at %d, want %d", i, d.Cells[i].X, 4*i+1)
		}
	}
	if blk := d.Cells[8]; blk.X != 50 || blk.Y != 5 {
		t.Errorf("fixed cell moved to (%d,%d)", blk.X, blk.Y)
	}
}

// The worker count is a pure concurrency knob: any value must produce
// a byte-identical merged placement.
func TestShardedRunWorkerCountInvariant(t *testing.T) {
	var snaps [][]geom.Pt
	for _, workers := range []int{1, 2, 7} {
		d := shardParent(t)
		sp := &ShardedPipeline{Workers: workers, Make: shiftMaker(2)}
		if _, _, err := sp.Run(context.Background(), d, twoShards(t, d)); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		snaps = append(snaps, d.SnapshotXY())
	}
	for i := 1; i < len(snaps); i++ {
		if !reflect.DeepEqual(snaps[0], snaps[i]) {
			t.Fatalf("placement differs between worker counts")
		}
	}
}

// recordObserver collects events; the shard runner must serialize
// callbacks (this test runs under -race) and prefix stage names.
type recordObserver struct {
	starts, finishes []string
}

func (o *recordObserver) StageStart(ev StartEvent)   { o.starts = append(o.starts, ev.Stage) }
func (o *recordObserver) StageFinish(ev FinishEvent) { o.finishes = append(o.finishes, ev.Stage) }

func TestShardedRunPrefixesAndSerializesObserver(t *testing.T) {
	d := shardParent(t)
	obs := &recordObserver{}
	base := shiftMaker(1)
	sp := &ShardedPipeline{Workers: 4, Make: func(sh Shard) (*Pipeline, *PipelineContext, error) {
		p, pc, err := base(sh)
		if err == nil {
			p.Observer = obs
		}
		return p, pc, err
	}}
	if _, _, err := sp.Run(context.Background(), d, twoShards(t, d)); err != nil {
		t.Fatal(err)
	}
	if len(obs.starts) != 2 || len(obs.finishes) != 2 {
		t.Fatalf("events: %d starts, %d finishes", len(obs.starts), len(obs.finishes))
	}
	seen := map[string]bool{}
	for _, s := range append(append([]string{}, obs.starts...), obs.finishes...) {
		seen[s] = true
		if !strings.HasPrefix(s, "a/") && !strings.HasPrefix(s, "b/") {
			t.Errorf("stage name %q lacks shard prefix", s)
		}
	}
	if !seen["a/shift"] || !seen["b/shift"] {
		t.Errorf("missing prefixed events: %v", seen)
	}
}

// The aggregated report takes the worst per-shard status and prefixes
// gate entries with the shard name.
func TestShardedRunAggregatesReports(t *testing.T) {
	d := shardParent(t)
	ok := shiftMaker(1)
	sp := &ShardedPipeline{Workers: 2, Make: func(sh Shard) (*Pipeline, *PipelineContext, error) {
		if sh.Name != "b" {
			return ok(sh)
		}
		pc, err := NewContext(sh.Sub.Design, false)
		if err != nil {
			return nil, nil, err
		}
		p := &Pipeline{
			Stages:    []Stage{&fakeStage{name: "prim", err: errors.New("boom")}},
			Fallbacks: map[string]Stage{"prim": &fakeStage{name: "prim-fallback"}},
			Recovery:  RecoverFallback,
		}
		return p, pc, nil
	}}
	results, report, err := sp.Run(context.Background(), d, twoShards(t, d))
	if err != nil {
		t.Fatal(err)
	}
	if report.Status != StatusRecovered {
		t.Errorf("status = %v, want recovered", report.Status)
	}
	if len(report.Gates) != 1 || report.Gates[0].Stage != "b/prim" {
		t.Errorf("gates = %+v", report.Gates)
	}
	if results[1].Report.Status != StatusRecovered {
		t.Errorf("shard b status = %v", results[1].Report.Status)
	}
	// Shard a still merged its placement.
	if d.Cells[0].X != 1 {
		t.Errorf("shard a not merged: cell 0 at %d", d.Cells[0].X)
	}
}

// A failing shard's error is attributed by name; healthy shards still
// merge back.
func TestShardedRunAttributesErrors(t *testing.T) {
	d := shardParent(t)
	sentinel := errors.New("shard exploded")
	ok := shiftMaker(3)
	sp := &ShardedPipeline{Workers: 2, Make: func(sh Shard) (*Pipeline, *PipelineContext, error) {
		if sh.Name != "b" {
			return ok(sh)
		}
		pc, err := NewContext(sh.Sub.Design, false)
		if err != nil {
			return nil, nil, err
		}
		return &Pipeline{Stages: []Stage{&fakeStage{name: "prim", err: sentinel}}}, pc, nil
	}}
	results, _, err := sp.Run(context.Background(), d, twoShards(t, d))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "shard b:") {
		t.Errorf("error not attributed: %v", err)
	}
	if results[1].Err == nil {
		t.Error("shard b result has no error")
	}
	if d.Cells[0].X != 3 {
		t.Errorf("healthy shard a not merged: cell 0 at %d", d.Cells[0].X)
	}
}

// A Make failure is reported like a shard error, with a nil context.
func TestShardedRunMakeFailure(t *testing.T) {
	d := shardParent(t)
	ok := shiftMaker(1)
	sp := &ShardedPipeline{Make: func(sh Shard) (*Pipeline, *PipelineContext, error) {
		if sh.Name == "a" {
			return nil, nil, errors.New("no pipeline for you")
		}
		return ok(sh)
	}}
	results, _, err := sp.Run(context.Background(), d, twoShards(t, d))
	if err == nil || !strings.Contains(err.Error(), "shard a: build pipeline:") {
		t.Fatalf("err = %v", err)
	}
	if results[0].Context != nil {
		t.Error("failed Make left a context")
	}
}

// Cancellation surfaces as the plain context error, not a shard-
// attributed one, and the placement of finished shards is kept.
func TestShardedRunCancellation(t *testing.T) {
	d := shardParent(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sp := &ShardedPipeline{Workers: 2, Make: shiftMaker(1)}
	_, _, err := sp.Run(ctx, d, twoShards(t, d))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if strings.Contains(err.Error(), "shard") {
		t.Errorf("cancellation attributed to a shard: %v", err)
	}
}

// A mid-run cancellation with partially completed shards: the shard
// that finished before the cancel merges its placement into the
// parent, the shard cancelled mid-flight leaves its cells exactly
// where they were, each ShardResult reports its own outcome, and the
// worker pool is torn down.
func TestShardedRunMidRunCancelMergesFinishedShards(t *testing.T) {
	before := testutil.Count()
	d := shardParent(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	aDone := make(chan struct{})
	base := shiftMaker(5)
	sp := &ShardedPipeline{Workers: 2, Make: func(sh Shard) (*Pipeline, *PipelineContext, error) {
		if sh.Name == "a" {
			p, pc, err := base(sh)
			if err == nil {
				p.Stages = append(p.Stages, &fakeStage{name: "done", onRun: func(*PipelineContext) {
					close(aDone)
				}})
			}
			return p, pc, err
		}
		pc, err := NewContext(sh.Sub.Design, false)
		if err != nil {
			return nil, nil, err
		}
		// Shard b stalls until shard a has fully finished, then the run
		// is cancelled out from under it before it moves a single cell.
		p := &Pipeline{Stages: []Stage{&FuncStage{StageName: "stall", Fn: func(ctx context.Context, _ *PipelineContext) error {
			<-aDone
			cancel()
			<-ctx.Done()
			return ctx.Err()
		}}}}
		return p, pc, nil
	}}

	results, report, err := sp.Run(ctx, d, twoShards(t, d))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if strings.Contains(err.Error(), "shard") {
		t.Errorf("cancellation attributed to a shard: %v", err)
	}

	// The finished shard's moves survived the cancellation...
	for i := 0; i < 4; i++ {
		if d.Cells[i].X != 4*i+5 {
			t.Errorf("finished shard a: cell %d at %d, want %d", i, d.Cells[i].X, 4*i+5)
		}
	}
	// ...and the cancelled shard's cells are untouched.
	for i := 4; i < 8; i++ {
		if d.Cells[i].X != 4*i {
			t.Errorf("cancelled shard b: cell %d at %d, want %d", i, d.Cells[i].X, 4*i)
		}
	}

	// Per-shard outcomes are faithful: a legal and complete, b cancelled.
	if results[0].Err != nil || results[0].Report.Status != StatusLegal || len(results[0].Timings) != 2 {
		t.Errorf("shard a result: err=%v status=%v timings=%d",
			results[0].Err, results[0].Report.Status, len(results[0].Timings))
	}
	if !errors.Is(results[1].Err, context.Canceled) {
		t.Errorf("shard b err = %v, want context.Canceled", results[1].Err)
	}
	// Cancellation is not a gate event: the aggregate carries no gates
	// and no downgraded status.
	if report.Status != StatusLegal || len(report.Gates) != 0 {
		t.Errorf("aggregate report = %+v, want clean legal", report)
	}

	testutil.CheckNoLeaks(t, before)
}

// The shard worker pool must be torn down on every Run return path:
// normal completion, shard error, and cancellation.
func TestShardedRunNoGoroutineLeak(t *testing.T) {
	check := func(name string, run func(t *testing.T) error, wantErr bool) {
		t.Helper()
		before := testutil.Count()
		err := run(t)
		if wantErr && err == nil {
			t.Fatalf("%s: expected an error", name)
		}
		if !wantErr && err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		testutil.CheckNoLeaks(t, before)
	}

	check("normal", func(t *testing.T) error {
		d := shardParent(t)
		sp := &ShardedPipeline{Workers: 4, Make: shiftMaker(1)}
		_, _, err := sp.Run(context.Background(), d, twoShards(t, d))
		return err
	}, false)

	check("error", func(t *testing.T) error {
		d := shardParent(t)
		ok := shiftMaker(1)
		sp := &ShardedPipeline{Workers: 4, Make: func(sh Shard) (*Pipeline, *PipelineContext, error) {
			if sh.Name == "b" {
				return nil, nil, errors.New("boom")
			}
			return ok(sh)
		}}
		_, _, err := sp.Run(context.Background(), d, twoShards(t, d))
		return err
	}, true)

	check("cancelled", func(t *testing.T) error {
		d := shardParent(t)
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		base := shiftMaker(1)
		sp := &ShardedPipeline{Workers: 4, Make: func(sh Shard) (*Pipeline, *PipelineContext, error) {
			p, pc, err := base(sh)
			if err == nil {
				// Cancel mid-run, from the first shard that gets going.
				p.Stages = append([]Stage{&fakeStage{name: "trip", onRun: func(*PipelineContext) {
					once.Do(cancel)
				}}}, p.Stages...)
			}
			return p, pc, err
		}}
		_, _, err := sp.Run(ctx, d, twoShards(t, d))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled path: got %v, want context.Canceled", err)
		}
		return err
	}, true)
}
