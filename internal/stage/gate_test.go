package stage

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mclegal/internal/eval"
	"mclegal/internal/faults"
	"mclegal/internal/model"
)

// legalContext builds a pipeline context whose design is already legal
// (cells spaced on distinct sites), so a no-op stage passes its gate.
func legalContext(t *testing.T) *PipelineContext {
	t.Helper()
	d := &model.Design{
		Name: "gate",
		Tech: model.Tech{SiteW: 10, RowH: 80, NumSites: 40, NumRows: 6},
		Types: []model.CellType{
			{Name: "S1", Width: 2, Height: 1},
		},
	}
	for i := 0; i < 8; i++ {
		x, y := 4*i, i%3
		d.Cells = append(d.Cells, model.Cell{
			Name: "c", Type: 0, GX: x, GY: y, X: x, Y: y,
		})
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	pc, err := NewContext(d, false)
	if err != nil {
		t.Fatal(err)
	}
	if vs := eval.Audit(d, pc.Grid); len(vs) > 0 {
		t.Fatalf("fixture not legal: %v", vs)
	}
	return pc
}

// A panicking stage must surface as a typed *PanicError, never crash
// the process — even with gates off.
func TestPanicIsolationWithoutGates(t *testing.T) {
	pc := legalContext(t)
	p := Pipeline{Stages: []Stage{
		&fakeStage{name: "boom", onRun: func(*PipelineContext) { panic("kaboom") }},
	}}
	_, err := p.Run(context.Background(), pc)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Stage != "boom" || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Errorf("panic error incomplete: stage %q, stack %d bytes", pe.Stage, len(pe.Stack))
	}
	if !strings.Contains(err.Error(), "stage boom") {
		t.Errorf("error not attributed: %v", err)
	}
}

// With Verify on, a stage that leaves the placement illegal is rolled
// back and a Strict run fails with a GateError naming it.
func TestGateCatchesIllegalResultAndRollsBack(t *testing.T) {
	pc := legalContext(t)
	before := pc.Design.SnapshotXY()
	corrupt := &fakeStage{name: "corrupt", onRun: func(pc *PipelineContext) {
		// Stack cell 0 onto cell 1: a guaranteed overlap.
		pc.Design.Cells[0].X = pc.Design.Cells[1].X
		pc.Design.Cells[0].Y = pc.Design.Cells[1].Y
	}}
	p := Pipeline{Stages: []Stage{corrupt}, Verify: true}
	_, report, err := p.RunWithReport(context.Background(), pc)

	var ge *GateError
	if !errors.As(err, &ge) {
		t.Fatalf("err = %T %v, want *GateError", err, err)
	}
	r := ge.Report
	if r.Stage != "corrupt" || r.Reason != ReasonAudit || !r.RolledBack || r.NumViolations == 0 {
		t.Errorf("report = %+v", r)
	}
	if len(report.Gates) != 1 {
		t.Errorf("run report gates = %+v", report.Gates)
	}
	for i, xy := range pc.Design.SnapshotXY() {
		if xy != before[i] {
			t.Fatalf("cell %d not rolled back: %v != %v", i, xy, before[i])
		}
	}
}

// The injected illegal move (faults harness) must be caught by the
// audit gate exactly like an organic one.
func TestGateCatchesInjectedIllegalMove(t *testing.T) {
	pc := legalContext(t)
	pc.Faults = faults.New().Arm(faults.IllegalMove("noop"))
	p := Pipeline{Stages: []Stage{&fakeStage{name: "noop"}}, Verify: true}
	_, _, err := p.RunWithReport(context.Background(), pc)
	var ge *GateError
	if !errors.As(err, &ge) || ge.Report.Reason != ReasonAudit {
		t.Fatalf("err = %v, want audit GateError", err)
	}
}

// The stage-error injection point fails the stage before it runs.
func TestInjectedStageError(t *testing.T) {
	pc := legalContext(t)
	pc.Faults = faults.New().Arm(faults.StageError("victim"))
	victim := &fakeStage{name: "victim"}
	p := Pipeline{Stages: []Stage{victim}, Verify: true}
	_, _, err := p.RunWithReport(context.Background(), pc)
	var ie *faults.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want injected error", err)
	}
	if victim.ran {
		t.Error("stage ran despite injected stage error")
	}
}

// A metric regression (max displacement growing) trips the gate even
// though the placement stays legal.
func TestMetricRegressionGate(t *testing.T) {
	pc := legalContext(t)
	drift := &fakeStage{name: "drift", onRun: func(pc *PipelineContext) {
		// Legal but far from GP: max displacement grows.
		pc.Design.Cells[0].X = pc.Design.Cells[0].GX + 20
	}}
	p := Pipeline{
		Stages:       []Stage{drift},
		Verify:       true,
		MetricChecks: map[string]func(before, after eval.Metrics) error{"drift": NoMaxDispRegression},
	}
	_, _, err := p.RunWithReport(context.Background(), pc)
	var ge *GateError
	if !errors.As(err, &ge) || ge.Report.Reason != ReasonMetric {
		t.Fatalf("err = %v, want metric GateError", err)
	}
	if pc.Design.Cells[0].X != pc.Design.Cells[0].GX {
		t.Error("metric failure not rolled back")
	}
}

// Fallback policy: a failing stage with a registered fallback is
// repaired and the run reports StatusRecovered.
func TestFallbackStageRepairsRun(t *testing.T) {
	pc := legalContext(t)
	prim := &fakeStage{name: "prim", err: errors.New("boom")}
	fb := &fakeStage{name: "prim-fallback"}
	after := &fakeStage{name: "after"}
	p := Pipeline{
		Stages:    []Stage{prim, after},
		Verify:    true,
		Recovery:  RecoverFallback,
		Fallbacks: map[string]Stage{"prim": fb},
	}
	timings, report, err := p.RunWithReport(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	if !fb.ran || !after.ran {
		t.Error("fallback or subsequent stage did not run")
	}
	if report.Status != StatusRecovered {
		t.Errorf("status = %v", report.Status)
	}
	if len(report.Gates) != 1 || report.Gates[0].Action != ActionFallback || report.Gates[0].Fallback != "prim-fallback" {
		t.Errorf("gates = %+v", report.Gates)
	}
	// Timings include primary and fallback.
	var names []string
	for _, tm := range timings {
		names = append(names, tm.Stage)
	}
	if got := strings.Join(names, ","); got != "prim,prim-fallback,after" {
		t.Errorf("timings = %s", got)
	}
}

type criticalFake struct{ fakeStage }

func (c *criticalFake) Critical() bool { return true }

// A non-critical failing stage with no fallback is skipped under
// Fallback policy; a critical one fails the run.
func TestSkipVersusCriticalFailure(t *testing.T) {
	pc := legalContext(t)
	after := &fakeStage{name: "after"}
	p := Pipeline{
		Stages:   []Stage{&fakeStage{name: "opt", err: errors.New("boom")}, after},
		Recovery: RecoverFallback,
	}
	_, report, err := p.RunWithReport(context.Background(), pc)
	if err != nil || !after.ran || report.Status != StatusRecovered {
		t.Fatalf("optional failure not skipped: err %v, status %v", err, report.Status)
	}
	if report.Gates[0].Action != ActionSkipped {
		t.Errorf("action = %s", report.Gates[0].Action)
	}

	pc2 := legalContext(t)
	crit := &criticalFake{fakeStage{name: "crit", err: errors.New("boom")}}
	p2 := Pipeline{Stages: []Stage{crit}, Recovery: RecoverFallback}
	_, _, err = p2.RunWithReport(context.Background(), pc2)
	var ge *GateError
	if !errors.As(err, &ge) || ge.Report.Stage != "crit" {
		t.Fatalf("err = %v, want GateError for crit", err)
	}
}

// BestEffort never errors: an unrecoverable critical failure ends the
// run with StatusPartial and the rolled-back placement.
func TestBestEffortReportsPartial(t *testing.T) {
	pc := legalContext(t)
	crit := &criticalFake{fakeStage{name: "crit", err: errors.New("boom")}}
	never := &fakeStage{name: "never"}
	p := Pipeline{Stages: []Stage{crit, never}, Recovery: RecoverBestEffort}
	_, report, err := p.RunWithReport(context.Background(), pc)
	if err != nil {
		t.Fatalf("best-effort returned error %v", err)
	}
	if report.Status != StatusPartial {
		t.Errorf("status = %v", report.Status)
	}
	if never.ran {
		t.Error("stage ran after best-effort abort")
	}
	if report.Gates[len(report.Gates)-1].Action != ActionAborted {
		t.Errorf("gates = %+v", report.Gates)
	}
}

// Cancellation mid-stage is not a gate failure: no rollback, the
// context error propagates unchanged.
func TestCancellationIsNotGated(t *testing.T) {
	pc := legalContext(t)
	ctx, cancel := context.WithCancel(context.Background())
	mover := &fakeStage{name: "mover", onRun: func(pc *PipelineContext) {
		pc.Design.Cells[0].X += 4 // legal move that must survive cancellation
		cancel()
	}}
	mover.err = context.Canceled
	p := Pipeline{Stages: []Stage{mover}, Verify: true, Recovery: RecoverFallback}
	_, report, err := p.RunWithReport(ctx, pc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(report.Gates) != 0 {
		t.Errorf("cancellation produced gate reports: %+v", report.Gates)
	}
	if pc.Design.Cells[0].X == pc.Design.Cells[0].GX {
		t.Error("partial progress rolled back on cancellation")
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]RecoveryPolicy{
		"strict": RecoverStrict, "fallback": RecoverFallback,
		"besteffort": RecoverBestEffort, "BEST-EFFORT": RecoverBestEffort,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestPolicyAndStatusStrings(t *testing.T) {
	if RecoverFallback.String() != "fallback" || StatusPartial.String() != "partial" {
		t.Error("stringers wrong")
	}
	if !strings.Contains(RecoveryPolicy(9).String(), "9") || !strings.Contains(Status(9).String(), "9") {
		t.Error("out-of-range stringers wrong")
	}
}
