package stage

import (
	"context"

	"mclegal/internal/maxdisp"
)

// NewMaxDisp returns the matching-based maximum-displacement
// optimization stage (paper Section 3.2).
func NewMaxDisp(opt maxdisp.Options) *MaxDispStage { return &MaxDispStage{Opt: opt} }

// MaxDispStage is the concrete matching stage; Opt is exposed so
// composers and tests can inspect the options the stage will run with.
type MaxDispStage struct{ Opt maxdisp.Options }

func (s *MaxDispStage) Name() string { return NameMaxDisp }

// Run swaps cell positions within matching groups and deposits the
// matching stats as the stage artifact.
//
//mclegal:writes design.xy,stagectx matching permutes positions among already-legal sites and deposits its stats
func (s *MaxDispStage) Run(ctx context.Context, pc *PipelineContext) error {
	opt := s.Opt
	if opt.Faults == nil {
		opt.Faults = pc.Faults
	}
	st, err := maxdisp.OptimizeContext(ctx, pc.Design, opt)
	pc.MaxDispStats = st
	return err
}

func (s *MaxDispStage) Counters(pc *PipelineContext) map[string]int64 {
	return map[string]int64{
		"matchings_solved": int64(pc.MaxDispStats.Groups),
		"cells_swapped":    int64(pc.MaxDispStats.Swapped),
		"phi_cost_before":  pc.MaxDispStats.CostBefore,
		"phi_cost_after":   pc.MaxDispStats.CostAfter,
		"warm_hits":        int64(pc.MaxDispStats.WarmHits),
		"warm_misses":      int64(pc.MaxDispStats.WarmMisses),
	}
}
