package stage

import (
	"context"

	"mclegal/internal/mcf"
	"mclegal/internal/refine"
)

// NewRefine returns the fixed-row-and-order min-cost-flow refinement
// stage (paper Section 3.3). With useRanges set, the pipeline's
// routability rules (when present) narrow each cell's feasible x-range
// to its rail-safe intersection (Section 3.4).
func NewRefine(opt refine.Options, useRanges bool) *RefineStage {
	return &RefineStage{Opt: opt, UseRanges: useRanges}
}

// RefineStage is the concrete refinement stage; Opt and UseRanges are
// exposed so composers and tests can inspect the configuration the
// stage will run with.
type RefineStage struct {
	Opt       refine.Options
	UseRanges bool

	// solver is lazily created and kept across runs of this stage
	// instance, so repeated runs of one pipeline (the ECO loop) reuse
	// scratch arrays and warm-start from the previous basis. Stages
	// are per-pipeline (per shard), so no synchronization is needed.
	solver *mcf.Solver
}

func (s *RefineStage) Name() string { return NameRefine }

// Run re-spaces cells within their rows by min-cost flow and deposits
// the flow report as the stage artifact.
//
//mclegal:writes design.xy,stagectx refinement moves cells only along their rows and deposits its flow report
func (s *RefineStage) Run(ctx context.Context, pc *PipelineContext) error {
	opt := s.Opt
	if s.UseRanges && pc.Rules != nil {
		opt.Ranges = pc.Rules.RangeProvider(pc.Grid)
	}
	if opt.Faults == nil {
		opt.Faults = pc.Faults
	}
	if opt.Solver == nil {
		if s.solver == nil {
			s.solver = mcf.NewSolver()
		}
		opt.Solver = s.solver
	}
	rep, err := refine.OptimizeContext(ctx, pc.Design, pc.Grid, opt)
	pc.RefineReport = rep
	return err
}

func (s *RefineStage) Counters(pc *PipelineContext) map[string]int64 {
	return map[string]int64{
		"flow_nodes":     int64(pc.RefineReport.Nodes),
		"flow_arcs":      int64(pc.RefineReport.Arcs),
		"simplex_pivots": int64(pc.RefineReport.Pivots),
		"neighbor_edges": int64(pc.RefineReport.Edges),
		"cells_moved":    int64(pc.RefineReport.Moved),
		"solver_rule":    int64(pc.RefineReport.Rule),
		"warm_hits":      int64(pc.RefineReport.WarmHits),
		"warm_misses":    int64(pc.RefineReport.WarmMisses),
		"solve_ns":       pc.RefineReport.SolveNs,
	}
}
