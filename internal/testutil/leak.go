// Package testutil holds helpers shared across the package test
// suites. The goroutine-leak checker here is the single dynamic
// counterpart to the static goleak analyzer: every spawn site the
// analyzer inventories is exercised by a test that brackets the
// spawn/join cycle with Count/CheckNoLeaks (see
// internal/analysis/conc_roots_test.go, which pins that pairing).
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Count returns the number of live goroutines attributable to the code
// under test. It parses a full runtime.Stack dump and drops goroutines
// whose top frame is runtime or testing bookkeeping (GC workers,
// finalizers, parked parallel tests), so the baseline is stable across
// -race, -cpu and parallel siblings in a way a raw
// runtime.NumGoroutine() comparison is not.
func Count() int {
	return len(liveStacks())
}

// CheckNoLeaks polls until the filtered goroutine count falls back to
// base, then returns; timer and AfterFunc goroutines take a moment to
// unwind, so a single snapshot would flake. If the count has not
// settled within 10 seconds the test fails with the stacks of every
// surviving goroutine.
func CheckNoLeaks(tb testing.TB, base int) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		live := liveStacks()
		if len(live) <= base {
			return
		}
		if time.Now().After(deadline) {
			tb.Errorf("goroutine leak: %d live test goroutines, want <= %d\n\n%s",
				len(live), base, strings.Join(live, "\n\n"))
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// liveStacks captures one stack block per goroutine that survives the
// bookkeeping filter.
func liveStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var live []string
	for _, block := range strings.Split(string(buf), "\n\n") {
		if countsAsLive(block) {
			live = append(live, block)
		}
	}
	return live
}

// countsAsLive reports whether one "goroutine N [state]:" block belongs
// to the code under test. The top function frame (the line under the
// header) decides: runtime.* and testing.* tops are scheduler, GC,
// finalizer and test-harness goroutines, not products of the package
// being tested.
func countsAsLive(block string) bool {
	lines := strings.Split(block, "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "goroutine ") {
		return false
	}
	top := strings.TrimSpace(lines[1])
	return !strings.HasPrefix(top, "runtime.") && !strings.HasPrefix(top, "testing.")
}
