// Package baseline reimplements the comparison legalizers of the
// paper's evaluation:
//
//   - MLL (reference [12], DAC'16): the window-based legalizer whose
//     displacement curves are anchored at current positions — realized
//     as the mgl engine with Options.CostFromCurrent.
//   - MLLImp: MLL followed by the optimal fixed-row-and-order MCF
//     refinement, the "[12]-Imp" variant whose improved numbers [9]
//     reports (Table 2 column 1).
//   - AbacusExt (reference [7], ASPDAC'17): an order-preserving
//     nearest-free-slot sweep in GP-x order standing in for Abacus
//     extended to mixed heights (Table 2 column 2).
//   - ChenLike (reference [9], DAC'17): the ordered sweep followed by
//     the globally optimal fixed-order refinement, standing in for the
//     QP/LCP formulation (Table 2 column 3).
//   - Champion: the ICCAD 2017 contest champion stand-in for Table 1 —
//     a competitive displacement-driven flow (MLL + fixed-order
//     refinement) with **no** routability or edge-spacing awareness, so
//     it produces the violation profile the contest binary shows in
//     Table 1. The real champion binary is closed-source; DESIGN.md
//     records the substitution.
//
// The greedy sweep is deliberately spacing- and pin-blind: these
// baselines model displacement-only legalizers.
package baseline

import (
	"fmt"
	"sort"

	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// rowOcc tracks the placed intervals of one row, sorted by Lo.
type rowOcc struct {
	ivs []geom.Interval
}

func (r *rowOcc) insert(iv geom.Interval) {
	i := sort.Search(len(r.ivs), func(k int) bool { return r.ivs[k].Lo > iv.Lo })
	r.ivs = append(r.ivs, geom.Interval{})
	copy(r.ivs[i+1:], r.ivs[i:])
	r.ivs[i] = iv
}

// orderedGreedy legalizes cells in GP-x order, honoring the horizontal
// cell order of the GP solution as the paper's type-(1) legalizers do
// ([7], [9]): within every row, cells may only be *appended* right of
// the row's frontier. When no frontier position fits (a rare corner on
// tight instances), the cell falls back to the nearest free slot. The
// per-row append discipline is exactly what makes these baselines lose
// badly on dense designs (paper Table 2, des_perf_1), because the
// frontier wastes all slack left of it.
func orderedGreedy(d *model.Design, grid *seg.Grid) error {
	nRows := d.Tech.NumRows
	occ := make([]rowOcc, nRows)
	frontier := make([]int, nRows)

	var ids []model.CellID
	for i := range d.Cells {
		if !d.Cells[i].Fixed {
			ids = append(ids, model.CellID(i))
		}
	}
	sort.SliceStable(ids, func(a, b int) bool {
		ca, cb := &d.Cells[ids[a]], &d.Cells[ids[b]]
		if ca.GX != cb.GX {
			return ca.GX < cb.GX
		}
		if ca.GY != cb.GY {
			return ca.GY < cb.GY
		}
		return ids[a] < ids[b]
	})

	for _, id := range ids {
		c := &d.Cells[id]
		ct := &d.Types[c.Type]
		bestCost := int64(1) << 62
		bestX, bestY := -1, -1
		for y := 0; y+ct.Height <= nRows; y++ {
			if !d.Tech.RowAllowed(ct.Height, y) {
				continue
			}
			yCost := int64(geom.Abs(y-c.GY)) * int64(d.Tech.RowH)
			if yCost >= bestCost {
				continue
			}
			x, ok := frontierSlot(d, grid, frontier, id, y)
			if !ok {
				continue
			}
			cost := int64(geom.Abs(x-c.GX))*int64(d.Tech.SiteW) + yCost
			if cost < bestCost {
				bestCost, bestX, bestY = cost, x, y
			}
		}
		if bestY < 0 {
			// Fallback: nearest free slot anywhere (order no longer
			// strictly preserved for this cell).
			for y := 0; y+ct.Height <= nRows; y++ {
				if !d.Tech.RowAllowed(ct.Height, y) {
					continue
				}
				yCost := int64(geom.Abs(y-c.GY)) * int64(d.Tech.RowH)
				if yCost >= bestCost {
					continue
				}
				x, ok := nearestSlot(d, grid, occ, id, y)
				if !ok {
					continue
				}
				cost := int64(geom.Abs(x-c.GX))*int64(d.Tech.SiteW) + yCost
				if cost < bestCost {
					bestCost, bestX, bestY = cost, x, y
				}
			}
		}
		if bestY < 0 {
			return fmt.Errorf("baseline: greedy cannot place cell %d", id)
		}
		c.X, c.Y = bestX, bestY
		for r := bestY; r < bestY+ct.Height; r++ {
			occ[r].insert(geom.Interval{Lo: bestX, Hi: bestX + ct.Width})
			if bestX+ct.Width > frontier[r] {
				frontier[r] = bestX + ct.Width
			}
		}
	}
	return nil
}

// frontierSlot returns the cheapest x >= the span rows' frontiers where
// the cell fits inside fence-consistent segments on rows [y, y+h).
func frontierSlot(d *model.Design, grid *seg.Grid, frontier []int, id model.CellID, y int) (int, bool) {
	c := &d.Cells[id]
	ct := &d.Types[c.Type]
	x := c.GX
	for r := y; r < y+ct.Height; r++ {
		if frontier[r] > x {
			x = frontier[r]
		}
	}
	for tries := 0; tries < d.Tech.NumSites; tries++ {
		if x+ct.Width > d.Tech.NumSites {
			return 0, false
		}
		span, ok := grid.SpanInterval(c.Fence, x, y, ct.Height)
		if ok && span.Hi >= x+ct.Width {
			return x, true
		}
		// Jump to the closest fence-consistent segment start right of x.
		nx := 1 << 30
		for r := y; r < y+ct.Height; r++ {
			for _, sid := range grid.Row(r) {
				s := grid.Segs[sid]
				if s.Fence == c.Fence && s.X.Lo > x && s.X.Lo < nx {
					nx = s.X.Lo
				}
			}
		}
		if nx >= 1<<30 {
			return 0, false
		}
		x = nx
	}
	return 0, false
}

// nearestSlot returns the free x closest to the cell's GP x where it
// fits on rows [y, y+h) inside fence-consistent segments.
func nearestSlot(d *model.Design, grid *seg.Grid, occ []rowOcc, id model.CellID, y int) (int, bool) {
	c := &d.Cells[id]
	ct := &d.Types[c.Type]
	w := ct.Width

	// Sweep boundaries: segment edges and occupied interval edges of
	// every span row.
	var cuts []int
	for r := y; r < y+ct.Height; r++ {
		for _, sid := range grid.Row(r) {
			s := grid.Segs[sid]
			if s.Fence == c.Fence {
				cuts = append(cuts, s.X.Lo, s.X.Hi)
			}
		}
		for _, iv := range occ[r].ivs {
			cuts = append(cuts, iv.Lo, iv.Hi)
		}
	}
	sort.Ints(cuts)
	// For every maximal free run, the best position clamps GX into it.
	bestX, found := 0, false
	bestD := 1 << 30
	consider := func(lo, hi int) {
		if hi-lo < w {
			return
		}
		x := lo
		if c.GX > hi-w {
			x = hi - w
		} else if c.GX > lo {
			x = c.GX
		}
		if dd := geom.Abs(x - c.GX); !found || dd < bestD {
			bestX, bestD, found = x, dd, true
		}
	}
	// Scan elementary intervals, merging consecutive free ones.
	runLo, inRun := 0, false
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if lo >= hi {
			continue
		}
		if freeSpan(d, grid, occ, c.Fence, lo, y, ct.Height) {
			if !inRun {
				runLo, inRun = lo, true
			}
			continue
		}
		if inRun {
			consider(runLo, lo)
			inRun = false
		}
	}
	if inRun && len(cuts) > 0 {
		consider(runLo, cuts[len(cuts)-1])
	}
	return bestX, found
}

// freeSpan reports whether site x (an elementary-interval start) is
// inside a fence-f segment and unoccupied on all rows [y, y+h).
func freeSpan(d *model.Design, grid *seg.Grid, occ []rowOcc, f model.FenceID, x, y, h int) bool {
	for r := y; r < y+h; r++ {
		s, ok := grid.At(r, x)
		if !ok || s.Fence != f {
			return false
		}
		ivs := occ[r].ivs
		i := sort.Search(len(ivs), func(k int) bool { return ivs[k].Hi > x })
		if i < len(ivs) && ivs[i].Lo <= x {
			return false
		}
	}
	return true
}
