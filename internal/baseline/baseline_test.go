package baseline_test

import (
	"math/rand"
	"testing"

	"mclegal/internal/baseline"
	"mclegal/internal/bmark"
	"mclegal/internal/eval"
	"mclegal/internal/flow"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

func smallInstance(seed int64, density float64) *model.Design {
	return bmark.Generate(bmark.Params{
		Name: "bl", Seed: seed,
		Counts:  [4]int{400, 40, 10, 4},
		Density: density,
		NetFrac: 0.4,
	})
}

func audit(t *testing.T, d *model.Design) {
	t.Helper()
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("audit: %v (of %d)", v[0], len(v))
	}
}

func TestMLLLegalizes(t *testing.T) {
	d := smallInstance(1, 0.6)
	if err := baseline.MLL(d, 1); err != nil {
		t.Fatal(err)
	}
	audit(t, d)
}

func TestMLLImpImproves(t *testing.T) {
	d1 := smallInstance(2, 0.6)
	d2 := d1.Clone()
	if err := baseline.MLL(d1, 1); err != nil {
		t.Fatal(err)
	}
	if err := baseline.MLLImp(d2, 1); err != nil {
		t.Fatal(err)
	}
	audit(t, d2)
	m1, m2 := eval.Measure(d1), eval.Measure(d2)
	if m2.TotalDispSites > m1.TotalDispSites {
		t.Errorf("refinement worsened MLL: %v -> %v", m1.TotalDispSites, m2.TotalDispSites)
	}
}

func TestAbacusExtLegalizes(t *testing.T) {
	d := smallInstance(3, 0.6)
	if err := baseline.AbacusExt(d); err != nil {
		t.Fatal(err)
	}
	audit(t, d)
}

func TestChenLikeBeatsAbacus(t *testing.T) {
	var wins int
	for seed := int64(10); seed < 15; seed++ {
		d1 := smallInstance(seed, 0.55)
		d2 := d1.Clone()
		if err := baseline.AbacusExt(d1); err != nil {
			t.Fatal(err)
		}
		if err := baseline.ChenLike(d2); err != nil {
			t.Fatal(err)
		}
		audit(t, d2)
		if eval.Measure(d2).TotalDispSites <= eval.Measure(d1).TotalDispSites {
			wins++
		}
	}
	if wins < 5 {
		t.Errorf("ChenLike beat AbacusExt on only %d/5 seeds", wins)
	}
}

func TestChampionProducesViolations(t *testing.T) {
	// On a routability-enabled instance the champion stand-in must be
	// legal but produce edge/pin violations that our flow avoids.
	d1 := bmark.ContestDesign(bmark.ContestBenches()[9], 0.03) // fft_a_md2 (low density)
	d2 := d1.Clone()
	if err := baseline.Champion(d1, 2); err != nil {
		t.Fatal(err)
	}
	audit(t, d1)
	champ := flow.Evaluate(d1, eval.HPWL(d2))
	res, err := flow.Run(d2, flow.Options{Routability: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if champ.Violations.Pin()+champ.Violations.EdgeSpacing == 0 {
		t.Errorf("champion stand-in produced no violations; instance too easy")
	}
	if res.Violations.EdgeSpacing > 0 {
		t.Errorf("our flow has %d edge violations", res.Violations.EdgeSpacing)
	}
	if res.Violations.Pin() >= champ.Violations.Pin() {
		t.Errorf("our flow should have fewer pin violations: ours=%d champ=%d",
			res.Violations.Pin(), champ.Violations.Pin())
	}
}

// Figure 3's claim: measuring displacement from GP positions (MGL)
// yields smaller final GP displacement than measuring from current
// positions (MLL). Verified statistically over random instances.
func TestFigure3MGLBeatsMLL(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var mglTotal, mllTotal float64
	strict := 0
	for trial := 0; trial < 8; trial++ {
		seed := rng.Int63()
		d1 := bmark.Generate(bmark.Params{
			Name: "f3", Seed: seed, Counts: [4]int{500, 50, 12, 0}, Density: 0.75, NetFrac: 0,
		})
		d2 := d1.Clone()
		res, err := flow.Run(d1, flow.Options{Workers: 1, TotalDisplacement: true,
			SkipMaxDisp: true, SkipRefine: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := baseline.MLL(d2, 1); err != nil {
			t.Fatal(err)
		}
		audit(t, d1)
		audit(t, d2)
		mgl := res.Metrics.TotalDispSites
		mll := eval.Measure(d2).TotalDispSites
		mglTotal += mgl
		mllTotal += mll
		if mgl < mll {
			strict++
		}
	}
	if mglTotal >= mllTotal {
		t.Errorf("MGL total %.0f not better than MLL total %.0f", mglTotal, mllTotal)
	}
	if strict < 5 {
		t.Errorf("MGL strictly better on only %d/8 instances", strict)
	}
	t.Logf("MGL %.0f vs MLL %.0f sites (%d/8 strict wins)", mglTotal, mllTotal, strict)
}
