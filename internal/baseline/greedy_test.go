package baseline

import (
	"testing"

	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

func greedyDesign() *model.Design {
	return &model.Design{
		Name: "g",
		Tech: model.Tech{SiteW: 10, RowH: 80, NumSites: 40, NumRows: 4},
		Types: []model.CellType{
			{Name: "S", Width: 3, Height: 1},
			{Name: "D", Width: 4, Height: 2},
		},
	}
}

func TestRowOccInsertSorted(t *testing.T) {
	var r rowOcc
	r.insert(geom.Interval{Lo: 20, Hi: 23})
	r.insert(geom.Interval{Lo: 5, Hi: 8})
	r.insert(geom.Interval{Lo: 10, Hi: 14})
	for i := 1; i < len(r.ivs); i++ {
		if r.ivs[i].Lo < r.ivs[i-1].Lo {
			t.Fatalf("not sorted: %v", r.ivs)
		}
	}
}

func TestNearestSlotPicksClosest(t *testing.T) {
	d := greedyDesign()
	d.Cells = append(d.Cells, model.Cell{Name: "t", Type: 0, GX: 12, GY: 0})
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	occ := make([]rowOcc, d.Tech.NumRows)
	// Occupy [10,16) in row 0: the GP spot is blocked.
	occ[0].insert(geom.Interval{Lo: 10, Hi: 16})
	x, ok := nearestSlot(d, grid, occ, 0, 0)
	if !ok {
		t.Fatal("no slot found")
	}
	// Closest feasible: left gap ends at 10 (x=7, dist 5) vs right gap
	// starts at 16 (dist 4): expect 16.
	if x != 16 {
		t.Errorf("nearestSlot = %d, want 16", x)
	}
}

func TestNearestSlotRespectsFence(t *testing.T) {
	d := greedyDesign()
	d.Fences = []model.Fence{{Name: "f", Rects: []geom.Rect{geom.RectWH(20, 0, 10, 2)}}}
	d.Cells = append(d.Cells, model.Cell{Name: "t", Type: 0, Fence: 1, GX: 2, GY: 0})
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	occ := make([]rowOcc, d.Tech.NumRows)
	x, ok := nearestSlot(d, grid, occ, 0, 0)
	if !ok || x < 20 || x+3 > 30 {
		t.Errorf("fence cell slot = %d ok=%v, want inside [20,30)", x, ok)
	}
}

func TestFrontierSlotAppendsOnly(t *testing.T) {
	d := greedyDesign()
	d.Cells = append(d.Cells, model.Cell{Name: "t", Type: 1, GX: 0, GY: 0})
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	frontier := make([]int, d.Tech.NumRows)
	frontier[0] = 12
	frontier[1] = 8
	// Double-height span rows 0-1: must start at max(frontier) = 12
	// even though the GP is at 0 (order preservation).
	x, ok := frontierSlot(d, grid, frontier, 0, 0)
	if !ok || x != 12 {
		t.Errorf("frontierSlot = %d ok=%v, want 12", x, ok)
	}
}

func TestFrontierSlotFailsWhenFull(t *testing.T) {
	d := greedyDesign()
	d.Cells = append(d.Cells, model.Cell{Name: "t", Type: 0, GX: 0, GY: 0})
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	frontier := make([]int, d.Tech.NumRows)
	frontier[0] = 39 // only 1 site left, cell needs 3
	if _, ok := frontierSlot(d, grid, frontier, 0, 0); ok {
		t.Errorf("slot found in a full row")
	}
}
