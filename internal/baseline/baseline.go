package baseline

import (
	"mclegal/internal/mgl"
	"mclegal/internal/model"
	"mclegal/internal/refine"
	"mclegal/internal/seg"
)

// MLL legalizes d with the DAC'16 multi-row local legalization
// baseline: window insertion whose displacement curves measure from
// current positions (types A/B only).
func MLL(d *model.Design, workers int) error {
	_, err := mgl.Legalize(d, mgl.Options{
		Workers:         workers,
		CostFromCurrent: true,
	})
	return err
}

// MLLImp is MLL followed by the optimal fixed-row-and-order refinement
// with a total-displacement objective — the "[12]-Imp" column of
// Table 2.
func MLLImp(d *model.Design, workers int) error {
	if err := MLL(d, workers); err != nil {
		return err
	}
	return refineUniform(d)
}

// AbacusExt legalizes d with the order-preserving greedy standing in
// for Wang et al. [7] (Abacus extended to mixed heights).
func AbacusExt(d *model.Design) error {
	grid, err := seg.Build(d)
	if err != nil {
		return err
	}
	return orderedGreedy(d, grid)
}

// ChenLike legalizes d with an order-preserving assignment followed by
// the globally optimal fixed-order MCF pass, standing in for the
// QP/LCP legalizer of Chen et al. [9].
func ChenLike(d *model.Design) error {
	if err := AbacusExt(d); err != nil {
		return err
	}
	return refineUniform(d)
}

// Champion is the ICCAD 2017 contest champion stand-in used in
// Table 1: a fast single-pass window legalizer (MLL) that is entirely
// unaware of routability — no edge-spacing inflation, no pin-aware row
// or x steering, no post-refinement — so its solutions carry both the
// larger displacement and the violation profile Table 1 reports for
// the contest binary.
func Champion(d *model.Design, workers int) error {
	// Spacing-blind: run against a copy of the tech without the
	// edge-spacing table, then restore it for evaluation.
	saved := d.Tech.EdgeSpacing
	d.Tech.EdgeSpacing = nil
	err := MLL(d, workers)
	d.Tech.EdgeSpacing = saved
	return err
}

func refineUniform(d *model.Design) error {
	grid, err := seg.Build(d)
	if err != nil {
		return err
	}
	_, err = refine.Optimize(d, grid, refine.Options{Weights: refine.WeightUniform})
	return err
}
