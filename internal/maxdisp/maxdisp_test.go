package maxdisp

import (
	"math/rand"
	"testing"

	"mclegal/internal/eval"
	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

func newDesign() *model.Design {
	return &model.Design{
		Name: "t",
		Tech: model.Tech{SiteW: 10, RowH: 80, NumSites: 100, NumRows: 10},
		Types: []model.CellType{
			{Name: "A", Width: 2, Height: 1},
			{Name: "B", Width: 2, Height: 1},
		},
	}
}

func place(d *model.Design, ti model.CellTypeID, gx, gy, x, y int, f model.FenceID) model.CellID {
	d.Cells = append(d.Cells, model.Cell{Name: "c", Type: ti, Fence: f, GX: gx, GY: gy, X: x, Y: y})
	return model.CellID(len(d.Cells) - 1)
}

func TestPhi(t *testing.T) {
	// Linear region.
	if Phi(5, 10) != 5 || Phi(10, 10) != 10 {
		t.Errorf("phi linear region wrong")
	}
	// Superlinear: δ=20, δ0=10: 20^5/10^4 = 320.
	if got := Phi(20, 10); got != 320 {
		t.Errorf("phi(20,10) = %d, want 320", got)
	}
	// Clamp never overflows.
	if got := Phi(1<<40, 10); got <= 0 {
		t.Errorf("phi clamp broken: %d", got)
	}
	// Monotone.
	prev := int64(-1)
	for dd := int64(0); dd < 100; dd++ {
		v := Phi(dd, 10)
		if v < prev {
			t.Fatalf("phi not monotone at %d", dd)
		}
		prev = v
	}
}

func TestSwapRestoresGP(t *testing.T) {
	d := newDesign()
	// Two same-type cells sitting exactly at each other's GP.
	a := place(d, 0, 10, 2, 50, 7, 0)
	b := place(d, 0, 50, 7, 10, 2, 0)
	st := Optimize(d, Options{})
	if st.Swapped != 2 {
		t.Fatalf("Swapped = %d, want 2", st.Swapped)
	}
	if d.Cells[a].X != 10 || d.Cells[a].Y != 2 || d.Cells[b].X != 50 || d.Cells[b].Y != 7 {
		t.Errorf("swap not applied: a=(%d,%d) b=(%d,%d)",
			d.Cells[a].X, d.Cells[a].Y, d.Cells[b].X, d.Cells[b].Y)
	}
	if st.CostAfter != 0 {
		t.Errorf("CostAfter = %d, want 0", st.CostAfter)
	}
}

func TestDifferentTypesNeverSwap(t *testing.T) {
	d := newDesign()
	a := place(d, 0, 10, 2, 50, 7, 0)
	b := place(d, 1, 50, 7, 10, 2, 0)
	Optimize(d, Options{})
	if d.Cells[a].X != 50 || d.Cells[b].X != 10 {
		t.Errorf("different-type cells were swapped")
	}
}

func TestDifferentFencesNeverSwap(t *testing.T) {
	d := newDesign()
	d.Fences = []model.Fence{
		{Name: "f1", Rects: []geom.Rect{geom.RectWH(0, 0, 100, 5)}},
		{Name: "f2", Rects: []geom.Rect{geom.RectWH(0, 5, 100, 5)}},
	}
	a := place(d, 0, 10, 2, 50, 2, 1)
	b := place(d, 0, 50, 7, 10, 7, 2)
	Optimize(d, Options{})
	if d.Cells[a].Y != 2 || d.Cells[b].Y != 7 {
		t.Errorf("cells crossed fence boundaries")
	}
}

func TestMaxDispReduced(t *testing.T) {
	d := newDesign()
	// A cell far from its GP plus a chain of cells near their GPs, one
	// of which sits close to the outlier's GP.
	place(d, 0, 10, 0, 90, 9, 0) // outlier: wants (10,0), sits at (90,9)
	place(d, 0, 88, 9, 12, 0, 0) // partner: wants (88,9), sits at (12,0)
	place(d, 0, 40, 4, 40, 4, 0) // already perfect
	before := eval.Measure(d)
	st := Optimize(d, Options{Delta0Rows: 2})
	after := eval.Measure(d)
	if after.MaxDisp >= before.MaxDisp {
		t.Errorf("max disp not reduced: %v -> %v", before.MaxDisp, after.MaxDisp)
	}
	if st.CostAfter >= st.CostBefore {
		t.Errorf("cost did not improve: %d -> %d", st.CostBefore, st.CostAfter)
	}
	// The untouched perfect cell must stay.
	if d.Cells[2].X != 40 || d.Cells[2].Y != 4 {
		t.Errorf("perfect cell moved")
	}
}

func TestPositionsArePermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := newDesign()
	// 30 same-type cells with random legal (disjoint) positions and
	// random GPs.
	used := map[geom.Pt]bool{}
	for len(d.Cells) < 30 {
		p := geom.Pt{X: rng.Intn(49) * 2, Y: rng.Intn(10)}
		if used[p] {
			continue
		}
		used[p] = true
		place(d, 0, rng.Intn(98), rng.Intn(10), p.X, p.Y, 0)
	}
	beforePos := d.SnapshotXY()
	Optimize(d, Options{Delta0Rows: 1, MaxGroup: 8})
	// Multiset of positions must be unchanged.
	afterUsed := map[geom.Pt]int{}
	for i := range d.Cells {
		afterUsed[geom.Pt{X: d.Cells[i].X, Y: d.Cells[i].Y}]++
	}
	for _, p := range beforePos {
		afterUsed[p]--
	}
	for p, n := range afterUsed {
		if n != 0 {
			t.Fatalf("positions not a permutation at %v (%d)", p, n)
		}
	}
}

func TestLegalityPreserved(t *testing.T) {
	d := newDesign()
	for i := 0; i < 20; i++ {
		place(d, 0, (i*7)%90, (i*3)%10, i*4, i%10, 0)
	}
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("precondition: %v", v[0])
	}
	Optimize(d, Options{})
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("maxdisp broke legality: %v", v[0])
	}
}

func TestAveragePreservedWithinThreshold(t *testing.T) {
	// All displacements below δ0: matching minimizes the plain total
	// displacement, so the average can only improve or stay equal.
	d := newDesign()
	place(d, 0, 10, 1, 12, 1, 0)
	place(d, 0, 14, 1, 16, 1, 0)
	before := eval.Measure(d)
	Optimize(d, Options{Delta0Rows: 100})
	after := eval.Measure(d)
	if after.AvgDisp > before.AvgDisp+1e-9 {
		t.Errorf("average displacement worsened: %v -> %v", before.AvgDisp, after.AvgDisp)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d1 := newDesign()
	for i := 0; i < 40; i++ {
		place(d1, model.CellTypeID(i%2), rng.Intn(98), rng.Intn(10), (i*2)%98, i%10, 0)
	}
	d2 := d1.Clone()
	Optimize(d1, Options{MaxGroup: 16})
	Optimize(d2, Options{MaxGroup: 16})
	for i := range d1.Cells {
		if d1.Cells[i].X != d2.Cells[i].X || d1.Cells[i].Y != d2.Cells[i].Y {
			t.Fatalf("non-deterministic at cell %d", i)
		}
	}
}

func TestSingletonGroupUntouched(t *testing.T) {
	d := newDesign()
	place(d, 0, 10, 1, 30, 3, 0)
	st := Optimize(d, Options{})
	if st.Groups != 0 || st.Swapped != 0 {
		t.Errorf("singleton group processed: %+v", st)
	}
	if d.Cells[0].X != 30 {
		t.Errorf("singleton moved")
	}
}
