package maxdisp

import (
	"math/rand"
	"testing"

	"mclegal/internal/model"
)

// WarmDuals must not change any cost figure: every group's matching is
// exactly optimal either way, so the summed φ totals agree with the
// cold path, and the warm-attempt counters account for every group.
func TestWarmDualsMatchesColdCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	d1 := newDesign()
	for i := 0; i < 60; i++ {
		place(d1, model.CellTypeID(i%2), rng.Intn(98), rng.Intn(10), (i*2)%98, i%10, 0)
	}
	d2 := d1.Clone()
	cold := Optimize(d1, Options{MaxGroup: 16})
	warm := Optimize(d2, Options{MaxGroup: 16, WarmDuals: true})
	if cold.WarmHits != 0 || cold.WarmMisses != 0 {
		t.Errorf("cold run counted warm attempts: %+v", cold)
	}
	if warm.CostBefore != cold.CostBefore || warm.CostAfter != cold.CostAfter {
		t.Errorf("warm costs (%d->%d) differ from cold (%d->%d)",
			warm.CostBefore, warm.CostAfter, cold.CostBefore, cold.CostAfter)
	}
	if warm.Groups != cold.Groups {
		t.Errorf("group counts differ: %d vs %d", warm.Groups, cold.Groups)
	}
	if warm.WarmHits+warm.WarmMisses != warm.Groups {
		t.Errorf("warm attempts %d+%d do not cover %d groups",
			warm.WarmHits, warm.WarmMisses, warm.Groups)
	}
	// Hits across unrelated groups are opportunistic (the stored duals
	// must stay feasible for the next group's costs), so only the
	// accounting is asserted here; the hit path itself is pinned by the
	// matching package's TestWarmDualsExactAndCounted.
	// Positions must be a permutation within each (type, fence) group
	// either way; comparing the full multisets of the two runs keeps
	// the check simple.
	pos := func(d *model.Design) map[[2]int]int {
		m := map[[2]int]int{}
		for i := range d.Cells {
			m[[2]int{d.Cells[i].X, d.Cells[i].Y}]++
		}
		return m
	}
	p1, p2 := pos(d1), pos(d2)
	for k, v := range p1 {
		if p2[k] != v {
			t.Fatalf("position multisets differ at %v: %d vs %d", k, v, p2[k])
		}
	}
}
