// Package maxdisp implements the paper's maximum-displacement
// optimization (Section 3.2): for every (cell type x fence region)
// group, a min-cost perfect bipartite matching re-assigns the group's
// cells to the multiset of their current positions. Because only
// same-type cells exchange positions, the geometry of the placement is
// unchanged and no new violation of any kind can appear.
//
// The matching cost is φ(δ) of Eq. (3): linear up to the tolerance
// threshold δ0 (preserving the average displacement) and δ^5/δ0^4
// beyond it (crushing outliers).
package maxdisp

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mclegal/internal/faults"
	"mclegal/internal/geom"
	"mclegal/internal/matching"
	"mclegal/internal/model"
)

// Options configures the optimization.
type Options struct {
	// Delta0Rows is the tolerable maximum displacement threshold δ0 of
	// Eq. (3), in row-height units. Zero means 10 rows.
	Delta0Rows float64
	// MaxGroup caps the matching size; larger groups are split into
	// spatially coherent chunks (the paper is silent on group-size
	// handling; exact matching is cubic). Zero means 400.
	MaxGroup int
	// Faults is the optional fault-injection harness; the armed
	// faults.MatchingFail point fails the optimization before any
	// group is solved. Nil disables injection.
	Faults *faults.Injector
	// WarmDuals carries the matching solver's dual potentials from one
	// group into the next same-size group (validated for feasibility
	// before use, so totals are still exactly optimal). Off by
	// default: warm duals can pick a different tie among equal-cost
	// optimal assignments, and the default path stays byte-identical
	// to the cold solver.
	WarmDuals bool
}

func (o Options) withDefaults() Options {
	if o.Delta0Rows <= 0 {
		o.Delta0Rows = 10
	}
	if o.MaxGroup <= 0 {
		o.MaxGroup = 400
	}
	return o
}

// Stats reports the work done by Optimize.
type Stats struct {
	// Groups is the number of matchings solved.
	Groups int
	// Swapped is the number of cells whose position changed.
	Swapped int
	// CostBefore and CostAfter are the summed φ costs over all groups.
	CostBefore, CostAfter int64
	// WarmHits and WarmMisses count the solver's warm-start attempts
	// when Options.WarmDuals is set (a miss solved cold: first group,
	// size change, or stored duals infeasible for the new costs).
	WarmHits, WarmMisses int
}

// Phi evaluates Eq. (3) in integer DBU with δ0 given in DBU, returning
// a clamped int64 suitable as a matching cost: the identity up to δ0,
// δ^5/δ0^4 beyond it.
func Phi(deltaDBU, delta0DBU int64) int64 {
	if deltaDBU <= delta0DBU {
		return deltaDBU
	}
	d := float64(deltaDBU)
	d0 := float64(delta0DBU)
	v := d * d * d * d * d / (d0 * d0 * d0 * d0)
	const clamp = 1e16
	if v > clamp || math.IsInf(v, 1) {
		return int64(clamp)
	}
	return int64(v)
}

// Optimize runs the matching for every (type, fence) group of movable
// cells and applies the optimal assignment.
//
//mclegal:writes design.xy the optimal assignment permutes cell positions within each matching group
func Optimize(d *model.Design, opt Options) Stats {
	st, _ := OptimizeContext(context.Background(), d, opt)
	return st
}

// OptimizeContext is Optimize under a context: cancellation is checked
// between group matchings (each already-applied matching leaves the
// design legal, so an aborted run is always consistent) and the
// partial Stats are returned alongside ctx.Err().
//
//mclegal:writes design.xy the optimal assignment permutes cell positions within each matching group
func OptimizeContext(ctx context.Context, d *model.Design, opt Options) (Stats, error) {
	opt = opt.withDefaults()
	var st Stats
	if err := opt.Faults.Err(faults.MatchingFail); err != nil {
		return st, fmt.Errorf("maxdisp: matching failed: %w", err)
	}
	delta0 := int64(opt.Delta0Rows * float64(d.Tech.RowH))

	type key struct {
		t model.CellTypeID
		f model.FenceID
	}
	var sv matching.Solver
	groups := make(map[key][]model.CellID)
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		k := key{t: c.Type, f: c.Fence}
		groups[k] = append(groups[k], model.CellID(i))
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].t != keys[b].t {
			return keys[a].t < keys[b].t
		}
		return keys[a].f < keys[b].f
	})

	for _, k := range keys {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		ids := groups[k]
		if len(ids) < 2 {
			continue
		}
		// Spatially coherent chunks when the group exceeds the cap:
		// order by current (Y, X) and split.
		sort.Slice(ids, func(a, b int) bool {
			ca, cb := &d.Cells[ids[a]], &d.Cells[ids[b]]
			if ca.Y != cb.Y {
				return ca.Y < cb.Y
			}
			if ca.X != cb.X {
				return ca.X < cb.X
			}
			return ids[a] < ids[b]
		})
		for lo := 0; lo < len(ids); lo += opt.MaxGroup {
			if err := ctx.Err(); err != nil {
				return st, err
			}
			hi := lo + opt.MaxGroup
			if hi > len(ids) {
				hi = len(ids)
			}
			if hi-lo < 2 {
				continue
			}
			st.Groups++
			if err := optimizeGroup(ctx, d, &sv, opt, ids[lo:hi], delta0, &st); err != nil {
				return st, err
			}
		}
	}
	st.WarmHits = sv.Stats().WarmHits
	st.WarmMisses = sv.Stats().WarmMisses
	return st, nil
}

// optimizeGroup re-assigns one group of interchangeable cells to the
// multiset of their positions. The ctx flows into the assignment
// solver, where a large group's O(n^3) solve is the bulk of the
// stage's work.
func optimizeGroup(ctx context.Context, d *model.Design, sv *matching.Solver, opt Options, ids []model.CellID, delta0 int64, st *Stats) error {
	n := len(ids)
	pos := make([]geom.Pt, n)
	for i, id := range ids {
		pos[i] = geom.Pt{X: d.Cells[id].X, Y: d.Cells[id].Y}
	}
	siteW, rowH := int64(d.Tech.SiteW), int64(d.Tech.RowH)
	cost := func(i, j int) int64 {
		c := &d.Cells[ids[i]]
		dd := int64(geom.Abs(pos[j].X-c.GX))*siteW + int64(geom.Abs(pos[j].Y-c.GY))*rowH
		return Phi(dd, delta0)
	}
	var before int64
	for i := 0; i < n; i++ {
		before += cost(i, i)
	}
	var (
		assign []int
		after  int64
		ok     bool
		err    error
	)
	if opt.WarmDuals {
		assign, after, ok, err = sv.MinCostPerfectWarmContext(ctx, n, cost)
	} else {
		assign, after, ok, err = sv.MinCostPerfectContext(ctx, n, cost)
	}
	if err != nil {
		return err
	}
	if !ok || after >= before {
		st.CostBefore += before
		st.CostAfter += before
		return nil
	}
	st.CostBefore += before
	st.CostAfter += after
	for i, j := range assign {
		if j == i {
			continue
		}
		c := &d.Cells[ids[i]]
		if c.X != pos[j].X || c.Y != pos[j].Y {
			c.X, c.Y = pos[j].X, pos[j].Y
			st.Swapped++
		}
	}
	return nil
}
