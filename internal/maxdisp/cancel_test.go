package maxdisp

import (
	"context"
	"errors"
	"testing"

	"mclegal/internal/model"
)

// A cancelled context stops the optimization between group matchings;
// positions already swapped stay legal (same-type swaps preserve the
// geometry) and the partial stats are returned with ctx.Err().
func TestCancelBetweenGroups(t *testing.T) {
	d := &model.Design{
		Name:  "cancel",
		Tech:  model.Tech{SiteW: 10, RowH: 80, NumSites: 60, NumRows: 6},
		Types: []model.CellType{{Name: "S1", Width: 2, Height: 1}},
	}
	for i := 0; i < 10; i++ {
		d.Cells = append(d.Cells, model.Cell{
			Name: "c", Type: 0, GX: 3 * i, GY: 0, X: 3 * (9 - i), Y: 0,
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := OptimizeContext(ctx, d, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if st.Groups != 0 || st.Swapped != 0 {
		t.Errorf("work done under a pre-cancelled context: %+v", st)
	}
	for i := range d.Cells {
		if d.Cells[i].X != 3*(9-i) {
			t.Errorf("cell %d moved under a pre-cancelled context", i)
		}
	}
}
