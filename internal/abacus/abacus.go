// Package abacus implements the classic Abacus single-row placement
// refinement (Spindler, Schlichtmann, Johannes — paper reference [8]):
// with rows and cell order fixed, each row's cells are packed into
// clusters whose optimal positions minimize the *quadratic* displacement
// from the cells' GP x-positions.
//
// It complements the paper's fixed-row-and-order MCF refinement
// (internal/refine), which optimizes the *linear* objective: Abacus is
// the quadratic ancestor the paper's related work builds on, and the
// two make an instructive ablation pair. Multi-row cells are treated as
// fixed obstacles (classic Abacus predates mixed-height circuits).
package abacus

import (
	"sort"

	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// cluster is a maximal group of touching cells placed as one block.
type cluster struct {
	firstIdx int // index of the first member in the row list
	lastIdx  int
	e        float64 // total weight
	q        float64 // e*optimal position accumulator
	w        int     // total width (sites)
	x        float64 // optimal position of the cluster start
}

// Stats reports what RefineRows changed.
type Stats struct {
	RowsProcessed int
	Moved         int
}

// RefineRows runs Abacus clustering on every single-height-cell run of
// every segment, minimizing sum (x_i - gx_i)^2 while preserving order.
// Multi-row cells do not move and split the runs they touch.
func RefineRows(d *model.Design, grid *seg.Grid) Stats {
	var st Stats
	// Collect single-height movable cells per (row, segment); multi-row
	// and fixed cells become barriers.
	type barrier struct{ lo, hi int }
	rowCells := make(map[int][]entry)
	rowBars := make(map[int][]barrier)
	for i := range d.Cells {
		c := &d.Cells[i]
		ct := &d.Types[c.Type]
		if c.Fixed || ct.Height > 1 {
			for r := c.Y; r < c.Y+ct.Height; r++ {
				rowBars[r] = append(rowBars[r], barrier{lo: c.X, hi: c.X + ct.Width})
			}
			continue
		}
		rowCells[c.Y] = append(rowCells[c.Y], entry{id: model.CellID(i), x: c.X})
	}

	for r, cells := range rowCells {
		sort.Slice(cells, func(a, b int) bool { return cells[a].x < cells[b].x })
		bars := rowBars[r]
		sort.Slice(bars, func(a, b int) bool { return bars[a].lo < bars[b].lo })
		// Split the row's cells into maximal runs between barriers and
		// segment boundaries, then cluster each run.
		i := 0
		for i < len(cells) {
			s, ok := grid.At(r, cells[i].x)
			if !ok {
				i++
				continue
			}
			// Bounds of this run: the segment clipped by barriers.
			lo, hi := s.X.Lo, s.X.Hi
			for _, b := range bars {
				if b.hi <= cells[i].x && b.hi > lo {
					lo = b.hi
				}
				if b.lo > cells[i].x && b.lo < hi {
					hi = b.lo
				}
			}
			j := i
			fence := d.Cells[cells[i].id].Fence
			for j < len(cells) && cells[j].x < hi &&
				d.Cells[cells[j].id].Fence == fence {
				// Stay within the same segment (same fence region run).
				s2, ok2 := grid.At(r, cells[j].x)
				if !ok2 || s2.ID != s.ID {
					break
				}
				j++
			}
			st.Moved += placeRun(d, cells[i:j], lo, hi)
			if j == i { // defensive: always progress
				j = i + 1
			}
			i = j
		}
		st.RowsProcessed++
	}
	return st
}

// entry is one single-height movable cell in a row, keyed by its
// current x.
type entry struct {
	id model.CellID
	x  int
}

// placeRun is the textbook Abacus dynamic clustering over one run of
// cells with fixed order inside [lo, hi). Returns how many cells moved.
func placeRun(d *model.Design, cells []entry, lo, hi int) int {
	n := len(cells)
	if n == 0 {
		return 0
	}
	widths := make([]int, n)
	gx := make([]float64, n)
	var totalW int
	for k := range cells {
		ct := &d.Types[d.Cells[cells[k].id].Type]
		widths[k] = ct.Width
		gx[k] = float64(d.Cells[cells[k].id].GX)
		totalW += ct.Width
	}
	if totalW > hi-lo {
		return 0 // run does not fit (should not happen on legal input)
	}

	var cl []cluster
	collapse := func() {
		for len(cl) > 0 {
			c := &cl[len(cl)-1]
			c.x = c.q / c.e
			if c.x < float64(lo) {
				c.x = float64(lo)
			}
			if c.x > float64(hi-c.w) {
				c.x = float64(hi - c.w)
			}
			if len(cl) < 2 {
				return
			}
			p := &cl[len(cl)-2]
			if p.x+float64(p.w) <= c.x {
				return
			}
			// Merge c into p.
			p.lastIdx = c.lastIdx
			p.e += c.e
			p.q += c.q - c.e*float64(p.w)
			p.w += c.w
			cl = cl[:len(cl)-1]
		}
	}
	for k := 0; k < n; k++ {
		cl = append(cl, cluster{
			firstIdx: k, lastIdx: k,
			e: 1, q: gx[k], w: widths[k],
		})
		collapse()
	}

	moved := 0
	for _, c := range cl {
		x := int(c.x + 0.5)
		if x < lo {
			x = lo
		}
		if x+c.w > hi {
			x = hi - c.w
		}
		for k := c.firstIdx; k <= c.lastIdx; k++ {
			if d.Cells[cells[k].id].X != x {
				d.Cells[cells[k].id].X = x
				moved++
			}
			x += widths[k]
		}
	}
	return moved
}
