package abacus

import (
	"math/rand"
	"testing"

	"mclegal/internal/eval"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

func design(nSites, nRows int) *model.Design {
	return &model.Design{
		Name: "ab",
		Tech: model.Tech{SiteW: 10, RowH: 80, NumSites: nSites, NumRows: nRows},
		Types: []model.CellType{
			{Name: "S2", Width: 2, Height: 1},
			{Name: "S3", Width: 3, Height: 1},
			{Name: "D4", Width: 4, Height: 2},
		},
	}
}

func put(d *model.Design, ti model.CellTypeID, gx, x, y int) model.CellID {
	d.Cells = append(d.Cells, model.Cell{Name: "c", Type: ti, GX: gx, GY: y, X: x, Y: y})
	return model.CellID(len(d.Cells) - 1)
}

func quadCost(d *model.Design) int64 {
	var s int64
	for i := range d.Cells {
		dx := int64(d.Cells[i].X - d.Cells[i].GX)
		s += dx * dx
	}
	return s
}

// bruteQuad finds the optimal integer positions for an ordered run.
func bruteQuad(gx, w []int, lo, hi int) int64 {
	n := len(gx)
	best := int64(1) << 62
	var rec func(i, minX int, acc int64)
	rec = func(i, minX int, acc int64) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			return
		}
		rest := 0
		for k := i; k < n; k++ {
			rest += w[k]
		}
		for x := minX; x+rest <= hi; x++ {
			dx := int64(x - gx[i])
			rec(i+1, x+w[i], acc+dx*dx)
		}
	}
	rec(0, lo, 0)
	return best
}

func TestSimpleClusterMerge(t *testing.T) {
	d := design(40, 2)
	// Two cells wanting the same spot: optimum splits them around it.
	a := put(d, 0, 10, 4, 0)
	b := put(d, 0, 10, 20, 0)
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	st := RefineRows(d, grid)
	if st.Moved == 0 {
		t.Fatalf("nothing moved")
	}
	// Quadratic optimum: positions 9 and 11 (cost 1+1=2).
	if got := quadCost(d); got != 2 {
		t.Errorf("quad cost = %d, want 2 (a=%d b=%d)", got, d.Cells[a].X, d.Cells[b].X)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("audit: %v", v[0])
	}
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 80; trial++ {
		nSites := 14 + rng.Intn(6)
		d := design(nSites, 1)
		x := 0
		var gx, w []int
		for {
			x += rng.Intn(3)
			ti := model.CellTypeID(rng.Intn(2))
			wd := d.Types[ti].Width
			if x+wd > nSites {
				break
			}
			put(d, ti, rng.Intn(nSites-wd), x, 0)
			gx = append(gx, d.Cells[len(d.Cells)-1].GX)
			w = append(w, wd)
			x += wd
		}
		if len(d.Cells) == 0 {
			continue
		}
		grid, err := seg.Build(d)
		if err != nil {
			t.Fatal(err)
		}
		RefineRows(d, grid)
		want := bruteQuad(gx, w, 0, nSites)
		if got := quadCost(d); got != want {
			t.Fatalf("trial %d: abacus %d != brute %d", trial, got, want)
		}
		if v := eval.Audit(d, grid); len(v) > 0 {
			t.Fatalf("trial %d: %v", trial, v[0])
		}
	}
}

func TestMultiRowCellsAreBarriers(t *testing.T) {
	d := design(40, 3)
	dbl := put(d, 2, 15, 15, 0) // 4-wide double cell at x 15..19, rows 0-1
	// A cell left of the barrier wanting to cross it.
	a := put(d, 0, 30, 10, 0)
	// A cell right of the barrier wanting to cross left.
	b := put(d, 0, 0, 25, 0)
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	RefineRows(d, grid)
	if d.Cells[dbl].X != 15 {
		t.Fatalf("multi-row cell moved")
	}
	if d.Cells[a].X+2 > 15 {
		t.Errorf("left cell crossed the barrier: %d", d.Cells[a].X)
	}
	if d.Cells[b].X < 19 {
		t.Errorf("right cell crossed the barrier: %d", d.Cells[b].X)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("audit: %v", v[0])
	}
}

func TestAbacusVsMCFObjectives(t *testing.T) {
	// Abacus minimizes the quadratic objective, the MCF refinement the
	// linear one; on an asymmetric instance the solutions differ in the
	// expected direction (abacus <= on quadratic cost).
	mk := func() (*model.Design, *seg.Grid) {
		d := design(60, 1)
		put(d, 0, 10, 10, 0)
		put(d, 0, 10, 12, 0)
		put(d, 0, 30, 14, 0) // outlier pulling right
		g, err := seg.Build(d)
		if err != nil {
			t.Fatal(err)
		}
		return d, g
	}
	d1, g1 := mk()
	RefineRows(d1, g1)
	q1 := quadCost(d1)

	d2, g2 := mk()
	RefineRows(d2, g2) // idempotence check below
	RefineRows(d2, g2)
	if quadCost(d2) != q1 {
		t.Errorf("abacus not idempotent: %d vs %d", quadCost(d2), q1)
	}
}
