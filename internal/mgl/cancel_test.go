package mgl

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// Cancelling mid-run aborts between batches with ctx.Err() and leaves
// a consistent partial placement: every committed cell sits inside the
// core and committed cells never overlap each other.
func TestCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rng := rand.New(rand.NewSource(4242))
		d := newDesign(120, 12)
		for i := 0; i < 150; i++ {
			ti := model.CellTypeID(rng.Intn(len(d.Types)))
			ct := d.Types[ti]
			addCell(d, ti, rng.Intn(120-ct.Width), rng.Intn(12-ct.Height), 0)
		}
		grid, err := seg.Build(d)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var committed []model.CellID
		l := New(d, grid, Options{
			Workers: workers,
			DebugAfterBatch: func(placed []model.CellID) bool {
				committed = append(committed, placed...)
				cancel()
				return true
			},
		})
		err = l.RunContext(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if l.Stats.Placed == 0 || l.Stats.Placed >= d.MovableCount() {
			t.Fatalf("workers=%d: placed %d of %d, want a strict partial placement",
				workers, l.Stats.Placed, d.MovableCount())
		}
		if len(committed) != l.Stats.Placed {
			t.Errorf("workers=%d: hook saw %d commits, stats say %d",
				workers, len(committed), l.Stats.Placed)
		}
		core := d.Tech.CoreRect()
		for i, a := range committed {
			ra := d.CellRect(a)
			if !core.Contains(ra) {
				t.Errorf("workers=%d: committed cell %d outside core: %v", workers, a, ra)
			}
			for _, b := range committed[i+1:] {
				if ra.Overlaps(d.CellRect(b)) {
					t.Errorf("workers=%d: committed cells %d and %d overlap", workers, a, b)
				}
			}
		}
	}
}

// A context that is already cancelled stops the run before any cell is
// placed.
func TestCancelImmediate(t *testing.T) {
	d := newDesign(40, 4)
	addCell(d, 0, 5, 1, 0)
	addCell(d, 0, 9, 2, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l, err := LegalizeContext(ctx, d, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if l.Stats.Placed != 0 {
		t.Errorf("placed %d cells under a pre-cancelled context", l.Stats.Placed)
	}
}
