package mgl

import (
	"testing"

	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

func windowFixture(t *testing.T) *Legalizer {
	t.Helper()
	d := newDesign(100, 20)
	addCell(d, 0, 50, 10, 0) // width 2, height 1 at GP (50,10)
	addCell(d, 2, 10, 4, 0)  // width 4, height 3
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return New(d, grid, Options{Workers: 1})
}

func TestWindowForGrowsAndClamps(t *testing.T) {
	l := windowFixture(t)
	w0 := l.windowFor(0, 0)
	// Default half extents: hw = 2*2+8 = 12, hh = 1+2 = 3.
	want := geom.Rect{XLo: 38, YLo: 7, XHi: 64, YHi: 14}
	if w0 != want {
		t.Errorf("initial window = %v, want %v", w0, want)
	}
	w1 := l.windowFor(0, 1)
	if w1.W() <= w0.W() || w1.H() <= w0.H() {
		t.Errorf("window did not grow: %v -> %v", w0, w1)
	}
	// Eventually clamps to the full core.
	core := l.d.Tech.CoreRect()
	for a := 0; a < 12; a++ {
		if l.windowFor(0, a) == core {
			return
		}
	}
	t.Errorf("window never reached the core")
}

func TestCoverageBound(t *testing.T) {
	l := windowFixture(t)
	win := l.windowFor(0, 0) // [38,64)x[7,14), GP (50,10), w=2 h=1
	b := l.coverageBound(0, win)
	// Distances to edges: left (50-38)*10=120 DBU; right (64-2-50)*10=120;
	// down (10-7)*80=240; up (14-1-10)*80=240. Min = 120.
	if b != 120 {
		t.Errorf("coverageBound = %d, want 120", b)
	}
	// A full-core window has no outside: bound is huge.
	if b := l.coverageBound(0, l.d.Tech.CoreRect()); b < 1<<61 {
		t.Errorf("core window bound = %d", b)
	}
}

func TestQualityGrowthFindsFarCheaperRow(t *testing.T) {
	// The GP row region is packed for many sites around the target;
	// a free row 5 rows away is cheaper than a long x-trek, but lies
	// outside the initial +-2-row window for a 1-high cell... within
	// the x window everything is full, so quality growth must look
	// farther instead of settling for a big x displacement.
	d := newDesign(200, 20)
	// Fill rows 8..12 solid on sites 0..120 (target GP inside).
	for y := 8; y <= 12; y++ {
		for x := 0; x < 120; x += 2 {
			addCell(d, 0, x, y, 0)
		}
	}
	tgt := addCell(d, 0, 30, 10, 0)
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1, QualityGrowths: 4})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	c := d.Cells[tgt]
	// Cheapest escape: row 7 or 13 at x=30 costs 3 rows * 80 = 240 DBU
	// ... but rows 7/13 are free and inside the first window. Rows 8-12
	// being solid up to x=120, staying in row 10 would cost
	// (120-30)*10=900 DBU or push half the block. The legalizer must
	// not pay more than a few rows of displacement.
	disp := d.DispDBU(tgt)
	if disp > 4*80 {
		t.Errorf("target displaced %d DBU (placed at %d,%d), expected a nearby row",
			disp, c.X, c.Y)
	}
}

func TestQualityGrowthDisabled(t *testing.T) {
	d := newDesign(60, 6)
	addCell(d, 0, 30, 3, 0)
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1, QualityGrowths: -1})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Cells[0].X != 30 || d.Cells[0].Y != 3 {
		t.Errorf("free cell moved with quality growth disabled")
	}
}

func TestInsertionRepsEnumeration(t *testing.T) {
	d := newDesign(60, 4)
	a := addCell(d, 0, 10, 1, 0)
	b := addCell(d, 0, 30, 1, 0)
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1})
	d.Cells[a].X, d.Cells[a].Y = 10, 1
	d.Cells[b].X, d.Cells[b].Y = 30, 1
	l.occ.insert(a)
	l.occ.insert(b)
	win := geom.Rect{XLo: 5, YLo: 0, XHi: 50, YHi: 3}
	sc := new(scratch)
	reps := l.insertionReps(sc, model.DefaultFence, 1, 1, win)
	// Expected: window start 5, cell edges 10 and 30. The segment start
	// (0) is left of the window.
	want := []int{5, 10, 30}
	if len(reps) != len(want) {
		t.Fatalf("reps = %v, want %v", reps, want)
	}
	for i := range want {
		if reps[i] != want[i] {
			t.Fatalf("reps = %v, want %v", reps, want)
		}
	}
	// Multi-row span gathers edges from every row.
	c := addCell(d, 0, 20, 2, 0)
	d.Cells[c].X, d.Cells[c].Y = 20, 2
	refreshHot(l)
	l.occ.insert(c)
	reps = l.insertionReps(sc, model.DefaultFence, 1, 2, win)
	want = []int{5, 10, 20, 30}
	if len(reps) != len(want) {
		t.Fatalf("2-row reps = %v, want %v", reps, want)
	}
}
