package mgl

import (
	"sync"

	"mclegal/internal/curve"
)

// scratch holds reusable per-evaluation buffers indexed by cell ID,
// replacing per-insertion-point map allocations on the hot path. Each
// chain build bumps the stamp, implicitly clearing the arrays. After a
// few windows of warm-up every buffer has reached its steady-state
// capacity and a window evaluation performs zero heap allocations (see
// TestBestInWindowZeroAlloc).
type scratch struct {
	stamp    int32
	inChain  []int32 // stamp marker: cell is in the current chain
	chainIdx []int32 // index into the chain slice (valid when marked)
	offStamp []int32
	offReq   []int64 // seeded frontier off requirement

	chain  []chainCell
	chainR []chainCell
	queue  []int32
	order  []int

	reps      []int       // insertion-point representatives (insertionReps)
	total     curve.Curve // summed displacement curve (evaluateInsertion)
	moves     []move      // candidate plan moves (evaluateInsertion)
	bestMoves []move      // current best plan's moves (bestInWindow)
}

func (s *scratch) reset(n int) {
	if len(s.inChain) < n {
		s.inChain = make([]int32, n)
		s.chainIdx = make([]int32, n)
		s.offStamp = make([]int32, n)
		s.offReq = make([]int64, n)
	}
	s.stamp++
}

// scratchPool hands out scratch buffers to concurrent window
// evaluations.
var scratchPool = sync.Pool{New: func() any { return new(scratch) }}
