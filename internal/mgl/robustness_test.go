package mgl

import (
	"testing"

	"mclegal/internal/eval"
	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// GP positions far outside the core must still legalize (window growth
// eventually reaches the core).
func TestGPOutsideCore(t *testing.T) {
	d := newDesign(60, 6)
	ids := []model.CellID{
		addCell(d, 0, -50, -10, 0),
		addCell(d, 0, 500, 300, 0),
		addCell(d, 1, -5, 3, 0),
	}
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("audit: %v", v[0])
	}
	core := d.Tech.CoreRect()
	for _, id := range ids {
		if !core.Contains(d.CellRect(id)) {
			t.Errorf("cell %d not pulled into core", id)
		}
	}
}

// A cell wider than the core fails with an error, not a panic or hang.
func TestCellWiderThanCore(t *testing.T) {
	d := newDesign(10, 4)
	d.Types = append(d.Types, model.CellType{Name: "HUGE", Width: 20, Height: 1})
	addCell(d, model.CellTypeID(len(d.Types)-1), 0, 0, 0)
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1})
	if err := l.Run(); err == nil {
		t.Fatal("oversized cell legalized")
	}
}

// A fence too small for its assigned cell fails cleanly.
func TestFenceTooSmall(t *testing.T) {
	d := newDesign(60, 8)
	d.Fences = []model.Fence{{Name: "tiny", Rects: []geom.Rect{geom.RectWH(10, 2, 2, 1)}}}
	addCell(d, 2, 10, 2, 1) // 4x3 cell assigned to a 2x1 fence
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1})
	if err := l.Run(); err == nil {
		t.Fatal("cell larger than its fence legalized")
	}
}

// Overlapping fixed macros are tolerated: their union is simply blocked
// space.
func TestOverlappingFixedCells(t *testing.T) {
	d := newDesign(60, 6)
	for _, x := range []int{20, 22} {
		d.Cells = append(d.Cells, model.Cell{
			Name: "m", Type: 3, X: x, Y: 2, GX: x, GY: 2, Fixed: true,
		})
	}
	addCell(d, 0, 21, 2, 0) // GP inside the blocked zone
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("audit: %v", v[0])
	}
	// The movable cell must not overlap either macro.
	mr := d.CellRect(0).Union(d.CellRect(1))
	if mr.Overlaps(d.CellRect(2)) {
		t.Errorf("cell placed over fixed macros")
	}
}

// An L-shaped fence (two overlapping rects of the same fence) is one
// region: a cell may straddle the seam of the two rectangles.
func TestLShapedFence(t *testing.T) {
	d := newDesign(60, 8)
	d.Fences = []model.Fence{{Name: "L", Rects: []geom.Rect{
		geom.RectWH(10, 2, 20, 2), // horizontal bar
		geom.RectWH(10, 2, 6, 4),  // vertical bar sharing the corner
	}}}
	// Fill the horizontal bar enough that some cell must use the seam.
	for i := 0; i < 9; i++ {
		addCell(d, 0, 12+2*i, 2, 1)
	}
	addCell(d, 1, 11, 3, 1) // 3x2 cell: only fits in the vertical bar
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("audit: %v", v[0])
	}
}
