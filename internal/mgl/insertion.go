package mgl

import (
	"sort"

	"mclegal/internal/geom"
	"mclegal/internal/model"
)

// move is one chain shift of an already-placed cell.
type move struct {
	id   model.CellID
	newX int
}

// plan is a fully evaluated insertion of the target cell: its position,
// the chain shifts that make room, and the total DBU displacement cost
// (target + shifted locals, each measured from its GP position).
type plan struct {
	target model.CellID
	x, y   int
	cost   int64
	moves  []move
	ok     bool
}

// chainCell is one movable local cell of a push chain.
type chainCell struct {
	id  model.CellID
	off int64 // longest-path offset from the target x (includes spacing)
	// bound is minPos for left chains (lowest legal left edge) and
	// maxPos for right chains (highest legal left edge).
	bound int64
}

// spacing returns the edge-spacing rule in sites between a left cell of
// type a and a right cell of type b.
func (l *Legalizer) spacing(a, b model.CellTypeID) int64 {
	return int64(l.d.Tech.Spacing(l.d.Types[a].EdgeR, l.d.Types[b].EdgeL))
}

// winPadLo returns the left window edge as a barrier. Interior window
// edges are padded by the largest edge-spacing rule so that two batches
// inserting on both sides of a seam can never violate spacing.
func (l *Legalizer) winPadLo(win geom.Rect, segLo int) int64 {
	w := int64(win.XLo)
	if win.XLo > segLo {
		w += int64(l.maxSp)
	}
	if int64(segLo) > w {
		return int64(segLo)
	}
	return w
}

// winPadHi mirrors winPadLo for the right window edge.
func (l *Legalizer) winPadHi(win geom.Rect, segHi int) int64 {
	w := int64(win.XHi)
	if win.XHi < segHi {
		w -= int64(l.maxSp)
	}
	if int64(segHi) < w {
		return int64(segHi)
	}
	return w
}

// chainCap bounds the number of movable cells per push chain. The
// full-core window (the legalizer's last resort) lifts the bound so
// that completeness is never lost to chain truncation.
func (l *Legalizer) chainCap(win geom.Rect) int {
	core := l.d.Tech.CoreRect()
	if win.XLo == core.XLo && win.XHi == core.XHi {
		return win.W()
	}
	return l.opt.MaxChain
}

// isLocal reports whether a placed cell lies completely within the
// window (paper: only such cells may be shifted).
func (l *Legalizer) isLocal(id model.CellID, win geom.Rect) bool {
	h := l.hot
	x, y := int(h.X[id]), int(h.Y[id])
	return x >= win.XLo && y >= win.YLo &&
		x+int(h.W[id]) <= win.XHi && y+int(h.H[id]) <= win.YHi
}

// leftNeighborIdx returns, for segment sid, the index in the occupancy
// list of the nearest cell whose left edge is <= x (-1 if none).
func (l *Legalizer) leftNeighborIdx(sid int32, x int) int {
	return l.occ.splitAt(sid, x) - 1
}

const chainInfeasible = int64(1) << 60

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Chain-membership helpers on scratch. These were closures capturing
// the chain slice; as methods over explicit state they keep the chain
// builders allocation-free.

// chainAt returns the chain index of id if it carries the current
// stamp.
func (s *scratch) chainAt(id model.CellID) (int32, bool) {
	if s.inChain[id] == s.stamp {
		return s.chainIdx[id], true
	}
	return 0, false
}

// bumpOff raises the seeded frontier offset requirement of id.
func (s *scratch) bumpOff(id model.CellID, off int64) {
	if s.offStamp[id] != s.stamp || off > s.offReq[id] {
		s.offStamp[id] = s.stamp
		s.offReq[id] = off
	}
}

// seedOff returns the seeded frontier offset of id (0 if none).
func (s *scratch) seedOff(id model.CellID) int64 {
	if s.offStamp[id] == s.stamp {
		return s.offReq[id]
	}
	return 0
}

// buildLeftChain collects the movable cells pushed left when the target
// (rows [y,y+h)) is inserted with its left edge at variable x. It
// returns the chain cells (off and minPos filled in) and the x lower
// bound implied by compression; lo == chainInfeasible marks an
// infeasible insertion point. The returned slice is owned by sc.
func (l *Legalizer) buildLeftChain(sc *scratch, t model.CellID, y, h, x0 int, win geom.Rect) ([]chainCell, int64) {
	hc := l.hot
	grid := l.grid
	tct := hc.Type[t]
	tf := hc.Fence[t]
	sc.reset(len(hc.X))
	chain := sc.chain[:0]
	queue := sc.queue[:0]
	capN := l.chainCap(win)
	var xlo int64

	// Seed with per-target-row frontiers.
	for r := y; r < y+h; r++ {
		sid := grid.AtID(r, x0)
		if sid < 0 || grid.FenceOf(sid) != tf {
			return nil, chainInfeasible
		}
		idx := l.leftNeighborIdx(sid, x0)
		if idx < 0 {
			if b := l.winPadLo(win, grid.Lo(sid)); b > xlo {
				xlo = b
			}
			continue
		}
		nb := l.occ.cellsIn(sid)[idx]
		if !l.isLocal(nb, win) {
			b := int64(hc.X[nb]+hc.W[nb]) + l.spacing(hc.Type[nb], tct)
			if b > xlo {
				xlo = b
			}
			continue
		}
		if sc.inChain[nb] != sc.stamp {
			sc.inChain[nb] = sc.stamp
			sc.chainIdx[nb] = int32(len(chain))
			chain = append(chain, chainCell{id: nb})
			queue = append(queue, int32(nb))
		}
		sc.bumpOff(nb, int64(hc.W[nb])+l.spacing(hc.Type[nb], tct))
	}

	// BFS: explore left neighbors of chain members across all their rows.
	for qi := 0; qi < len(queue); qi++ {
		c := model.CellID(queue[qi])
		cx := hc.X[c]
		cy := int(hc.Y[c])
		for r := cy; r < cy+int(hc.H[c]); r++ {
			sid := grid.AtID(r, int(cx))
			if sid < 0 {
				return nil, chainInfeasible
			}
			lst := l.occ.cellsIn(sid)
			i := sort.Search(len(lst), func(k int) bool { return hc.X[lst[k]] >= cx })
			if i-1 < 0 {
				continue
			}
			nb := lst[i-1]
			if sc.inChain[nb] == sc.stamp {
				continue
			}
			if !l.isLocal(nb, win) || len(chain) >= capN {
				continue // becomes a barrier below, via minPos
			}
			sc.inChain[nb] = sc.stamp
			sc.chainIdx[nb] = int32(len(chain))
			chain = append(chain, chainCell{id: nb})
			queue = append(queue, int32(nb))
		}
	}

	// Topological pass 1 (descending X): longest-path offsets.
	order := sc.order[:0]
	for i := range chain {
		order = append(order, i)
	}
	// Insertion sort by descending X: chains are short and this is hot.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && hc.X[chain[order[j]].id] > hc.X[chain[order[j-1]].id]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, ci := range order {
		c := chain[ci].id
		cx := hc.X[c]
		cy := int(hc.Y[c])
		off := sc.seedOff(c)
		for r := cy; r < cy+int(hc.H[c]); r++ {
			sid := grid.AtID(r, int(cx))
			if sid < 0 {
				continue
			}
			lst := l.occ.cellsIn(sid)
			i := sort.Search(len(lst), func(k int) bool { return hc.X[lst[k]] > cx })
			if i >= len(lst) {
				continue
			}
			rn := lst[i]
			ri, ok2 := sc.chainAt(rn)
			if !ok2 {
				continue
			}
			req := chain[ri].off + int64(hc.W[c]) + l.spacing(hc.Type[c], hc.Type[rn])
			if req > off {
				off = req
			}
		}
		if off == 0 {
			off = -1 // defensive: never move a requirement-free cell
		}
		chain[ci].off = off
	}

	// Topological pass 2 (ascending X): compression bounds (minPos).
	for k := len(order) - 1; k >= 0; k-- {
		ci := order[k]
		c := chain[ci].id
		cx := hc.X[c]
		cy := int(hc.Y[c])
		var minPos int64 = -1 << 60
		for r := cy; r < cy+int(hc.H[c]); r++ {
			sid := grid.AtID(r, int(cx))
			if sid < 0 {
				return nil, chainInfeasible
			}
			lst := l.occ.cellsIn(sid)
			i := sort.Search(len(lst), func(k2 int) bool { return hc.X[lst[k2]] >= cx })
			if i-1 < 0 {
				if b := l.winPadLo(win, grid.Lo(sid)); b > minPos {
					minPos = b
				}
				continue
			}
			nb := lst[i-1]
			if ni, ok2 := sc.chainAt(nb); ok2 {
				b := chain[ni].bound + int64(hc.W[nb]) + l.spacing(hc.Type[nb], hc.Type[c])
				if b > minPos {
					minPos = b
				}
			} else {
				// Non-local barrier, still clamped to the (padded)
				// window edge: chain cells must never leave the
				// window, or parallel batches could collide.
				b := int64(hc.X[nb]+hc.W[nb]) + l.spacing(hc.Type[nb], hc.Type[c])
				if w := l.winPadLo(win, grid.Lo(sid)); w > b {
					b = w
				}
				if b > minPos {
					minPos = b
				}
			}
		}
		chain[ci].bound = minPos
		if chain[ci].off > 0 {
			if v := minPos + chain[ci].off; v > xlo {
				xlo = v
			}
		}
	}
	sc.chain, sc.queue, sc.order = chain, queue, order
	return chain, xlo
}

// buildRightChain mirrors buildLeftChain for cells pushed right. It
// returns the chain and the upper bound on the target x; hi ==
// -chainInfeasible marks an infeasible insertion point. The returned
// slice is owned by sc.
func (l *Legalizer) buildRightChain(sc *scratch, t model.CellID, y, h, x0 int, win geom.Rect) ([]chainCell, int64) {
	hc := l.hot
	grid := l.grid
	tct := hc.Type[t]
	tf := hc.Fence[t]
	tw := int64(hc.W[t])
	sc.reset(len(hc.X))
	chain := sc.chainR[:0]
	queue := sc.queue[:0]
	capN := l.chainCap(win)
	xhi := int64(1) << 60

	for r := y; r < y+h; r++ {
		sid := grid.AtID(r, x0)
		if sid < 0 || grid.FenceOf(sid) != tf {
			return nil, -chainInfeasible
		}
		lst := l.occ.cellsIn(sid)
		i := l.occ.splitAt(sid, x0)
		if i >= len(lst) {
			if v := l.winPadHi(win, grid.Hi(sid)) - tw; v < xhi {
				xhi = v
			}
			continue
		}
		nb := lst[i]
		if !l.isLocal(nb, win) {
			b := int64(hc.X[nb]) - l.spacing(tct, hc.Type[nb]) - tw
			if b < xhi {
				xhi = b
			}
			continue
		}
		if sc.inChain[nb] != sc.stamp {
			sc.inChain[nb] = sc.stamp
			sc.chainIdx[nb] = int32(len(chain))
			chain = append(chain, chainCell{id: nb})
			queue = append(queue, int32(nb))
		}
		sc.bumpOff(nb, tw+l.spacing(tct, hc.Type[nb]))
	}

	for qi := 0; qi < len(queue); qi++ {
		c := model.CellID(queue[qi])
		cx := hc.X[c]
		cy := int(hc.Y[c])
		for r := cy; r < cy+int(hc.H[c]); r++ {
			sid := grid.AtID(r, int(cx))
			if sid < 0 {
				return nil, -chainInfeasible
			}
			lst := l.occ.cellsIn(sid)
			i := sort.Search(len(lst), func(k int) bool { return hc.X[lst[k]] > cx })
			if i >= len(lst) {
				continue
			}
			nb := lst[i]
			if sc.inChain[nb] == sc.stamp {
				continue
			}
			if !l.isLocal(nb, win) || len(chain) >= capN {
				continue
			}
			sc.inChain[nb] = sc.stamp
			sc.chainIdx[nb] = int32(len(chain))
			chain = append(chain, chainCell{id: nb})
			queue = append(queue, int32(nb))
		}
	}

	// Pass 1 (ascending X): offsets from the target.
	order := sc.order[:0]
	for i := range chain {
		order = append(order, i)
	}
	// Insertion sort by ascending X (see the left-chain mirror).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && hc.X[chain[order[j]].id] < hc.X[chain[order[j-1]].id]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, ci := range order {
		c := chain[ci].id
		cx := hc.X[c]
		cy := int(hc.Y[c])
		off := sc.seedOff(c)
		for r := cy; r < cy+int(hc.H[c]); r++ {
			sid := grid.AtID(r, int(cx))
			if sid < 0 {
				continue
			}
			lst := l.occ.cellsIn(sid)
			i := sort.Search(len(lst), func(k int) bool { return hc.X[lst[k]] >= cx })
			if i-1 < 0 {
				continue
			}
			ln := lst[i-1]
			li, ok2 := sc.chainAt(ln)
			if !ok2 {
				continue
			}
			req := chain[li].off + int64(hc.W[ln]) + l.spacing(hc.Type[ln], hc.Type[c])
			if req > off {
				off = req
			}
		}
		if off == 0 {
			off = -1
		}
		chain[ci].off = off
	}

	// Pass 2 (descending X): expansion bounds (maxPos).
	for k := len(order) - 1; k >= 0; k-- {
		ci := order[k]
		c := chain[ci].id
		cx := hc.X[c]
		cy := int(hc.Y[c])
		cw := int64(hc.W[c])
		var maxPos int64 = 1 << 60
		for r := cy; r < cy+int(hc.H[c]); r++ {
			sid := grid.AtID(r, int(cx))
			if sid < 0 {
				return nil, -chainInfeasible
			}
			lst := l.occ.cellsIn(sid)
			i := sort.Search(len(lst), func(k2 int) bool { return hc.X[lst[k2]] > cx })
			if i >= len(lst) {
				if v := l.winPadHi(win, grid.Hi(sid)) - cw; v < maxPos {
					maxPos = v
				}
				continue
			}
			nb := lst[i]
			if ni, ok2 := sc.chainAt(nb); ok2 {
				b := chain[ni].bound - l.spacing(hc.Type[c], hc.Type[nb]) - cw
				if b < maxPos {
					maxPos = b
				}
			} else {
				// Non-local barrier, clamped to the padded window edge
				// (see the left-chain mirror for why).
				b := int64(hc.X[nb]) - l.spacing(hc.Type[c], hc.Type[nb]) - cw
				if w := l.winPadHi(win, grid.Hi(sid)) - cw; w < b {
					b = w
				}
				if b < maxPos {
					maxPos = b
				}
			}
		}
		chain[ci].bound = maxPos
		if chain[ci].off > 0 {
			if v := maxPos - chain[ci].off; v < xhi {
				xhi = v
			}
		}
	}
	sc.chainR, sc.queue, sc.order = chain, queue, order
	return chain, xhi
}

// evaluateInsertion builds the displacement curve for the insertion
// point defined by (y, x0) and returns the best position and cost. The
// second return is false if the point is infeasible. The returned
// plan's moves alias sc.moves and are only valid until the next
// evaluation with the same scratch.
func (l *Legalizer) evaluateInsertion(sc *scratch, t model.CellID, y, h, x0 int, win geom.Rect) (plan, bool) {
	hc := l.hot
	grid := l.grid
	tf := hc.Fence[t]
	tw := int(hc.W[t])
	tgx := int64(hc.GX[t])
	siteW := int64(l.d.Tech.SiteW)
	rowH := int64(l.d.Tech.RowH)

	// Quick rejection: every span row must hold at least the target's
	// width of free sites inside the window. This necessary condition
	// skips the expensive chain construction for insertion points deep
	// inside packed regions.
	for r := y; r < y+h; r++ {
		sid := grid.AtID(r, x0)
		if sid < 0 || grid.FenceOf(sid) != tf {
			return plan{}, false
		}
		wl, wh := grid.Lo(sid), grid.Hi(sid)
		if win.XLo > wl {
			wl = win.XLo
		}
		if win.XHi < wh {
			wh = win.XHi
		}
		if wh-wl < tw ||
			(wh-wl)-l.occ.occupiedWidth(sid, wl, wh) < tw {
			return plan{}, false
		}
	}

	left, xlo := l.buildLeftChain(sc, t, y, h, x0, win)
	if xlo >= chainInfeasible {
		return plan{}, false
	}
	right, xhi := l.buildRightChain(sc, t, y, h, x0, win)
	if xhi <= -chainInfeasible {
		return plan{}, false
	}
	if int64(win.XLo) > xlo {
		xlo = int64(win.XLo)
	}
	if v := int64(win.XHi) - int64(tw); v < xhi {
		xhi = v
	}
	if xlo > xhi {
		return plan{}, false
	}

	// The summed curve lives in the scratch and is accumulated in
	// place: the former per-cell curve constructors allocated a curve
	// plus breakpoint storage for every local cell of every insertion
	// point.
	total := &sc.total
	total.ResetAbs(tgx, siteW, int64(geom.Abs(y-int(hc.GY[t])))*rowH)
	// Each local cell contributes its *incremental* displacement: the
	// curve minus its current (sunk) displacement. Without the
	// subtraction, insertion points whose windows happen to contain
	// already-displaced cells would look spuriously expensive, biasing
	// the row choice. (For MLL semantics the baseline is zero anyway.)
	for i := range left {
		if left[i].off <= 0 {
			continue
		}
		id := left[i].id
		cx := int64(hc.X[id])
		g := int64(hc.GX[id])
		if l.opt.CostFromCurrent {
			g = cx // MLL semantics: cost from current position
		}
		total.AddPushLeft(cx, g, left[i].off, siteW)
		total.AddConst(-siteW * abs64(cx-g))
	}
	for i := range right {
		if right[i].off <= 0 {
			continue
		}
		id := right[i].id
		cx := int64(hc.X[id])
		g := int64(hc.GX[id])
		if l.opt.CostFromCurrent {
			g = cx
		}
		total.AddPushRight(cx, g, right[i].off, siteW)
		total.AddConst(-siteW * abs64(cx-g))
	}

	bestX, bestV := total.MinOn(xlo, xhi, tgx)

	// Vertical-rail avoidance: slide to the nearest clean x by curve
	// cost (paper Section 3.4).
	if l.opt.Rules != nil && l.opt.Rules.XForbidden(hc.Type[t], int(bestX), y) {
		const scanCap = 256
		found := false
		var candX, candV int64
		for step := int64(1); step <= scanCap; step++ {
			if x := bestX - step; x >= xlo && !l.opt.Rules.XForbidden(hc.Type[t], int(x), y) {
				candX, candV = x, total.Eval(x)
				found = true
				break
			}
		}
		for step := int64(1); step <= scanCap; step++ {
			x := bestX + step
			if x > xhi {
				break
			}
			if !l.opt.Rules.XForbidden(hc.Type[t], int(x), y) {
				if v := total.Eval(x); !found || v < candV {
					candX, candV = x, v
				}
				break
			}
		}
		if !found {
			return plan{}, false
		}
		bestX, bestV = candX, candV
	}
	if l.opt.Rules != nil {
		bestV += l.opt.Rules.IOPenalty(hc.Type[t], int(bestX), y)
	}

	p := plan{target: t, x: int(bestX), y: y, cost: bestV, ok: true}
	moves := sc.moves[:0]
	for i := range left {
		if left[i].off <= 0 {
			continue
		}
		id := left[i].id
		cx := int64(hc.X[id])
		nx := bestX - left[i].off
		if cx < nx {
			nx = cx
		}
		if nx != cx {
			moves = append(moves, move{id: id, newX: int(nx)})
		}
	}
	for i := range right {
		if right[i].off <= 0 {
			continue
		}
		id := right[i].id
		cx := int64(hc.X[id])
		nx := bestX + right[i].off
		if cx > nx {
			nx = cx
		}
		if nx != cx {
			moves = append(moves, move{id: id, newX: int(nx)})
		}
	}
	sc.moves = moves
	p.moves = moves
	return p, true
}
