package mgl

import (
	"sort"

	"mclegal/internal/geom"
	"mclegal/internal/model"
)

// move is one chain shift of an already-placed cell.
type move struct {
	id   model.CellID
	newX int
}

// plan is a fully evaluated insertion of the target cell: its position,
// the chain shifts that make room, and the total DBU displacement cost
// (target + shifted locals, each measured from its GP position).
type plan struct {
	target model.CellID
	x, y   int
	cost   int64
	moves  []move
	ok     bool
}

// chainCell is one movable local cell of a push chain.
type chainCell struct {
	id  model.CellID
	off int64 // longest-path offset from the target x (includes spacing)
	// bound is minPos for left chains (lowest legal left edge) and
	// maxPos for right chains (highest legal left edge).
	bound int64
}

// spacing returns the edge-spacing rule in sites between a left cell of
// type a and a right cell of type b.
func (l *Legalizer) spacing(a, b model.CellTypeID) int64 {
	return int64(l.d.Tech.Spacing(l.d.Types[a].EdgeR, l.d.Types[b].EdgeL))
}

// winPadLo returns the left window edge as a barrier. Interior window
// edges are padded by the largest edge-spacing rule so that two batches
// inserting on both sides of a seam can never violate spacing.
func (l *Legalizer) winPadLo(win geom.Rect, segLo int) int64 {
	w := int64(win.XLo)
	if win.XLo > segLo {
		w += int64(l.maxSp)
	}
	if int64(segLo) > w {
		return int64(segLo)
	}
	return w
}

// winPadHi mirrors winPadLo for the right window edge.
func (l *Legalizer) winPadHi(win geom.Rect, segHi int) int64 {
	w := int64(win.XHi)
	if win.XHi < segHi {
		w -= int64(l.maxSp)
	}
	if int64(segHi) < w {
		return int64(segHi)
	}
	return w
}

// chainCap bounds the number of movable cells per push chain. The
// full-core window (the legalizer's last resort) lifts the bound so
// that completeness is never lost to chain truncation.
func (l *Legalizer) chainCap(win geom.Rect) int {
	core := l.d.Tech.CoreRect()
	if win.XLo == core.XLo && win.XHi == core.XHi {
		return win.W()
	}
	return l.opt.MaxChain
}

// isLocal reports whether a placed cell lies completely within the
// window (paper: only such cells may be shifted).
func (l *Legalizer) isLocal(id model.CellID, win geom.Rect) bool {
	return win.Contains(l.d.CellRect(id))
}

// leftNeighborIdx returns, for segment sid, the index in the occupancy
// list of the nearest cell whose left edge is <= x (-1 if none).
func (l *Legalizer) leftNeighborIdx(sid int, x int) int {
	return l.occ.splitAt(sid, x) - 1
}

const chainInfeasible = int64(1) << 60

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Chain-membership helpers on scratch. These were closures capturing
// the chain slice; as methods over explicit state they keep the chain
// builders allocation-free.

// chainAt returns the chain index of id if it carries the current
// stamp.
func (s *scratch) chainAt(id model.CellID) (int32, bool) {
	if s.inChain[id] == s.stamp {
		return s.chainIdx[id], true
	}
	return 0, false
}

// bumpOff raises the seeded frontier offset requirement of id.
func (s *scratch) bumpOff(id model.CellID, off int64) {
	if s.offStamp[id] != s.stamp || off > s.offReq[id] {
		s.offStamp[id] = s.stamp
		s.offReq[id] = off
	}
}

// seedOff returns the seeded frontier offset of id (0 if none).
func (s *scratch) seedOff(id model.CellID) int64 {
	if s.offStamp[id] == s.stamp {
		return s.offReq[id]
	}
	return 0
}

// buildLeftChain collects the movable cells pushed left when the target
// (rows [y,y+h)) is inserted with its left edge at variable x. It
// returns the chain cells (off and minPos filled in) and the x lower
// bound implied by compression; lo == chainInfeasible marks an
// infeasible insertion point. The returned slice is owned by sc.
func (l *Legalizer) buildLeftChain(sc *scratch, t model.CellID, y, h, x0 int, win geom.Rect) ([]chainCell, int64) {
	d := l.d
	tct := d.Cells[t].Type
	sc.reset(len(d.Cells))
	chain := sc.chain[:0]
	queue := sc.queue[:0]
	capN := l.chainCap(win)
	var xlo int64

	// Seed with per-target-row frontiers.
	for r := y; r < y+h; r++ {
		s, ok := l.grid.At(r, x0)
		if !ok || s.Fence != d.Cells[t].Fence {
			return nil, chainInfeasible
		}
		idx := l.leftNeighborIdx(s.ID, x0)
		if idx < 0 {
			if b := l.winPadLo(win, s.X.Lo); b > xlo {
				xlo = b
			}
			continue
		}
		nb := l.occ.cellsIn(s.ID)[idx]
		nbc := &d.Cells[nb]
		nbct := &d.Types[nbc.Type]
		if !l.isLocal(nb, win) {
			b := int64(nbc.X+nbct.Width) + l.spacing(nbc.Type, tct)
			if b > xlo {
				xlo = b
			}
			continue
		}
		if sc.inChain[nb] != sc.stamp {
			sc.inChain[nb] = sc.stamp
			sc.chainIdx[nb] = int32(len(chain))
			chain = append(chain, chainCell{id: nb})
			queue = append(queue, int32(nb))
		}
		sc.bumpOff(nb, int64(nbct.Width)+l.spacing(nbc.Type, tct))
	}

	// BFS: explore left neighbors of chain members across all their rows.
	for qi := 0; qi < len(queue); qi++ {
		c := model.CellID(queue[qi])
		cc := &d.Cells[c]
		cct := &d.Types[cc.Type]
		for r := cc.Y; r < cc.Y+cct.Height; r++ {
			s, ok := l.grid.At(r, cc.X)
			if !ok {
				return nil, chainInfeasible
			}
			lst := l.occ.cellsIn(s.ID)
			i := sort.Search(len(lst), func(k int) bool { return d.Cells[lst[k]].X >= cc.X })
			if i-1 < 0 {
				continue
			}
			nb := lst[i-1]
			if sc.inChain[nb] == sc.stamp {
				continue
			}
			if !l.isLocal(nb, win) || len(chain) >= capN {
				continue // becomes a barrier below, via minPos
			}
			sc.inChain[nb] = sc.stamp
			sc.chainIdx[nb] = int32(len(chain))
			chain = append(chain, chainCell{id: nb})
			queue = append(queue, int32(nb))
		}
	}

	// Topological pass 1 (descending X): longest-path offsets.
	order := sc.order[:0]
	for i := range chain {
		order = append(order, i)
	}
	// Insertion sort by descending X: chains are short and this is hot.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && d.Cells[chain[order[j]].id].X > d.Cells[chain[order[j-1]].id].X; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, ci := range order {
		c := chain[ci].id
		cc := &d.Cells[c]
		cct := &d.Types[cc.Type]
		off := sc.seedOff(c)
		for r := cc.Y; r < cc.Y+cct.Height; r++ {
			s, ok := l.grid.At(r, cc.X)
			if !ok {
				continue
			}
			lst := l.occ.cellsIn(s.ID)
			i := sort.Search(len(lst), func(k int) bool { return d.Cells[lst[k]].X > cc.X })
			if i >= len(lst) {
				continue
			}
			rn := lst[i]
			ri, ok2 := sc.chainAt(rn)
			if !ok2 {
				continue
			}
			req := chain[ri].off + int64(cct.Width) + l.spacing(cc.Type, d.Cells[rn].Type)
			if req > off {
				off = req
			}
		}
		if off == 0 {
			off = -1 // defensive: never move a requirement-free cell
		}
		chain[ci].off = off
	}

	// Topological pass 2 (ascending X): compression bounds (minPos).
	for k := len(order) - 1; k >= 0; k-- {
		ci := order[k]
		c := chain[ci].id
		cc := &d.Cells[c]
		cct := &d.Types[cc.Type]
		var minPos int64 = -1 << 60
		for r := cc.Y; r < cc.Y+cct.Height; r++ {
			s, ok := l.grid.At(r, cc.X)
			if !ok {
				return nil, chainInfeasible
			}
			lst := l.occ.cellsIn(s.ID)
			i := sort.Search(len(lst), func(k2 int) bool { return d.Cells[lst[k2]].X >= cc.X })
			if i-1 < 0 {
				if b := l.winPadLo(win, s.X.Lo); b > minPos {
					minPos = b
				}
				continue
			}
			nb := lst[i-1]
			nbc := &d.Cells[nb]
			nbct := &d.Types[nbc.Type]
			if ni, ok2 := sc.chainAt(nb); ok2 {
				b := chain[ni].bound + int64(nbct.Width) + l.spacing(nbc.Type, cc.Type)
				if b > minPos {
					minPos = b
				}
			} else {
				// Non-local barrier, still clamped to the (padded)
				// window edge: chain cells must never leave the
				// window, or parallel batches could collide.
				b := int64(nbc.X+nbct.Width) + l.spacing(nbc.Type, cc.Type)
				if w := l.winPadLo(win, s.X.Lo); w > b {
					b = w
				}
				if b > minPos {
					minPos = b
				}
			}
		}
		chain[ci].bound = minPos
		if chain[ci].off > 0 {
			if v := minPos + chain[ci].off; v > xlo {
				xlo = v
			}
		}
	}
	sc.chain, sc.queue, sc.order = chain, queue, order
	return chain, xlo
}

// buildRightChain mirrors buildLeftChain for cells pushed right. It
// returns the chain and the upper bound on the target x; hi ==
// -chainInfeasible marks an infeasible insertion point. The returned
// slice is owned by sc.
func (l *Legalizer) buildRightChain(sc *scratch, t model.CellID, y, h, x0 int, win geom.Rect) ([]chainCell, int64) {
	d := l.d
	tc := &d.Cells[t]
	tw := int64(d.Types[tc.Type].Width)
	sc.reset(len(d.Cells))
	chain := sc.chainR[:0]
	queue := sc.queue[:0]
	capN := l.chainCap(win)
	xhi := int64(1) << 60

	for r := y; r < y+h; r++ {
		s, ok := l.grid.At(r, x0)
		if !ok || s.Fence != tc.Fence {
			return nil, -chainInfeasible
		}
		lst := l.occ.cellsIn(s.ID)
		i := l.occ.splitAt(s.ID, x0)
		if i >= len(lst) {
			if v := l.winPadHi(win, s.X.Hi) - tw; v < xhi {
				xhi = v
			}
			continue
		}
		nb := lst[i]
		nbc := &d.Cells[nb]
		if !l.isLocal(nb, win) {
			b := int64(nbc.X) - l.spacing(tc.Type, nbc.Type) - tw
			if b < xhi {
				xhi = b
			}
			continue
		}
		if sc.inChain[nb] != sc.stamp {
			sc.inChain[nb] = sc.stamp
			sc.chainIdx[nb] = int32(len(chain))
			chain = append(chain, chainCell{id: nb})
			queue = append(queue, int32(nb))
		}
		sc.bumpOff(nb, tw+l.spacing(tc.Type, nbc.Type))
	}

	for qi := 0; qi < len(queue); qi++ {
		c := model.CellID(queue[qi])
		cc := &d.Cells[c]
		cct := &d.Types[cc.Type]
		for r := cc.Y; r < cc.Y+cct.Height; r++ {
			s, ok := l.grid.At(r, cc.X)
			if !ok {
				return nil, -chainInfeasible
			}
			lst := l.occ.cellsIn(s.ID)
			i := sort.Search(len(lst), func(k int) bool { return d.Cells[lst[k]].X > cc.X })
			if i >= len(lst) {
				continue
			}
			nb := lst[i]
			if sc.inChain[nb] == sc.stamp {
				continue
			}
			if !l.isLocal(nb, win) || len(chain) >= capN {
				continue
			}
			sc.inChain[nb] = sc.stamp
			sc.chainIdx[nb] = int32(len(chain))
			chain = append(chain, chainCell{id: nb})
			queue = append(queue, int32(nb))
		}
	}

	// Pass 1 (ascending X): offsets from the target.
	order := sc.order[:0]
	for i := range chain {
		order = append(order, i)
	}
	// Insertion sort by ascending X (see the left-chain mirror).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && d.Cells[chain[order[j]].id].X < d.Cells[chain[order[j-1]].id].X; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, ci := range order {
		c := chain[ci].id
		cc := &d.Cells[c]
		off := sc.seedOff(c)
		for r := cc.Y; r < cc.Y+d.Types[cc.Type].Height; r++ {
			s, ok := l.grid.At(r, cc.X)
			if !ok {
				continue
			}
			lst := l.occ.cellsIn(s.ID)
			i := sort.Search(len(lst), func(k int) bool { return d.Cells[lst[k]].X >= cc.X })
			if i-1 < 0 {
				continue
			}
			ln := lst[i-1]
			li, ok2 := sc.chainAt(ln)
			if !ok2 {
				continue
			}
			lnc := &d.Cells[ln]
			req := chain[li].off + int64(d.Types[lnc.Type].Width) + l.spacing(lnc.Type, cc.Type)
			if req > off {
				off = req
			}
		}
		if off == 0 {
			off = -1
		}
		chain[ci].off = off
	}

	// Pass 2 (descending X): expansion bounds (maxPos).
	for k := len(order) - 1; k >= 0; k-- {
		ci := order[k]
		c := chain[ci].id
		cc := &d.Cells[c]
		cct := &d.Types[cc.Type]
		cw := int64(cct.Width)
		var maxPos int64 = 1 << 60
		for r := cc.Y; r < cc.Y+cct.Height; r++ {
			s, ok := l.grid.At(r, cc.X)
			if !ok {
				return nil, -chainInfeasible
			}
			lst := l.occ.cellsIn(s.ID)
			i := sort.Search(len(lst), func(k2 int) bool { return d.Cells[lst[k2]].X > cc.X })
			if i >= len(lst) {
				if v := l.winPadHi(win, s.X.Hi) - cw; v < maxPos {
					maxPos = v
				}
				continue
			}
			nb := lst[i]
			nbc := &d.Cells[nb]
			if ni, ok2 := sc.chainAt(nb); ok2 {
				b := chain[ni].bound - l.spacing(cc.Type, nbc.Type) - cw
				if b < maxPos {
					maxPos = b
				}
			} else {
				// Non-local barrier, clamped to the padded window edge
				// (see the left-chain mirror for why).
				b := int64(nbc.X) - l.spacing(cc.Type, nbc.Type) - cw
				if w := l.winPadHi(win, s.X.Hi) - cw; w < b {
					b = w
				}
				if b < maxPos {
					maxPos = b
				}
			}
		}
		chain[ci].bound = maxPos
		if chain[ci].off > 0 {
			if v := maxPos - chain[ci].off; v < xhi {
				xhi = v
			}
		}
	}
	sc.chainR, sc.queue, sc.order = chain, queue, order
	return chain, xhi
}

// evaluateInsertion builds the displacement curve for the insertion
// point defined by (y, x0) and returns the best position and cost. The
// second return is false if the point is infeasible. The returned
// plan's moves alias sc.moves and are only valid until the next
// evaluation with the same scratch.
func (l *Legalizer) evaluateInsertion(sc *scratch, t model.CellID, y, h, x0 int, win geom.Rect) (plan, bool) {
	d := l.d
	tc := &d.Cells[t]
	tct := &d.Types[tc.Type]
	siteW := int64(d.Tech.SiteW)
	rowH := int64(d.Tech.RowH)

	// Quick rejection: every span row must hold at least the target's
	// width of free sites inside the window. This necessary condition
	// skips the expensive chain construction for insertion points deep
	// inside packed regions.
	for r := y; r < y+h; r++ {
		s, ok := l.grid.At(r, x0)
		if !ok || s.Fence != tc.Fence {
			return plan{}, false
		}
		wl, wh := s.X.Lo, s.X.Hi
		if win.XLo > wl {
			wl = win.XLo
		}
		if win.XHi < wh {
			wh = win.XHi
		}
		if wh-wl < tct.Width ||
			(wh-wl)-l.occ.occupiedWidth(s.ID, wl, wh) < tct.Width {
			return plan{}, false
		}
	}

	left, xlo := l.buildLeftChain(sc, t, y, h, x0, win)
	if xlo >= chainInfeasible {
		return plan{}, false
	}
	right, xhi := l.buildRightChain(sc, t, y, h, x0, win)
	if xhi <= -chainInfeasible {
		return plan{}, false
	}
	if int64(win.XLo) > xlo {
		xlo = int64(win.XLo)
	}
	if v := int64(win.XHi) - int64(tct.Width); v < xhi {
		xhi = v
	}
	if xlo > xhi {
		return plan{}, false
	}

	// The summed curve lives in the scratch and is accumulated in
	// place: the former per-cell curve constructors allocated a curve
	// plus breakpoint storage for every local cell of every insertion
	// point.
	total := &sc.total
	total.ResetAbs(int64(tc.GX), siteW, int64(geom.Abs(y-tc.GY))*rowH)
	// Each local cell contributes its *incremental* displacement: the
	// curve minus its current (sunk) displacement. Without the
	// subtraction, insertion points whose windows happen to contain
	// already-displaced cells would look spuriously expensive, biasing
	// the row choice. (For MLL semantics the baseline is zero anyway.)
	for i := range left {
		c := &d.Cells[left[i].id]
		if left[i].off <= 0 {
			continue
		}
		g := int64(c.GX)
		if l.opt.CostFromCurrent {
			g = int64(c.X) // MLL semantics: cost from current position
		}
		total.AddPushLeft(int64(c.X), g, left[i].off, siteW)
		total.AddConst(-siteW * abs64(int64(c.X)-g))
	}
	for i := range right {
		c := &d.Cells[right[i].id]
		if right[i].off <= 0 {
			continue
		}
		g := int64(c.GX)
		if l.opt.CostFromCurrent {
			g = int64(c.X)
		}
		total.AddPushRight(int64(c.X), g, right[i].off, siteW)
		total.AddConst(-siteW * abs64(int64(c.X)-g))
	}

	bestX, bestV := total.MinOn(xlo, xhi, int64(tc.GX))

	// Vertical-rail avoidance: slide to the nearest clean x by curve
	// cost (paper Section 3.4).
	if l.opt.Rules != nil && l.opt.Rules.XForbidden(tc.Type, int(bestX), y) {
		const scanCap = 256
		found := false
		var candX, candV int64
		for step := int64(1); step <= scanCap; step++ {
			if x := bestX - step; x >= xlo && !l.opt.Rules.XForbidden(tc.Type, int(x), y) {
				candX, candV = x, total.Eval(x)
				found = true
				break
			}
		}
		for step := int64(1); step <= scanCap; step++ {
			x := bestX + step
			if x > xhi {
				break
			}
			if !l.opt.Rules.XForbidden(tc.Type, int(x), y) {
				if v := total.Eval(x); !found || v < candV {
					candX, candV = x, v
				}
				break
			}
		}
		if !found {
			return plan{}, false
		}
		bestX, bestV = candX, candV
	}
	if l.opt.Rules != nil {
		bestV += l.opt.Rules.IOPenalty(tc.Type, int(bestX), y)
	}

	p := plan{target: t, x: int(bestX), y: y, cost: bestV, ok: true}
	moves := sc.moves[:0]
	for i := range left {
		if left[i].off <= 0 {
			continue
		}
		c := &d.Cells[left[i].id]
		nx := bestX - left[i].off
		if int64(c.X) < nx {
			nx = int64(c.X)
		}
		if nx != int64(c.X) {
			moves = append(moves, move{id: left[i].id, newX: int(nx)})
		}
	}
	for i := range right {
		if right[i].off <= 0 {
			continue
		}
		c := &d.Cells[right[i].id]
		nx := bestX + right[i].off
		if int64(c.X) > nx {
			nx = int64(c.X)
		}
		if nx != int64(c.X) {
			moves = append(moves, move{id: right[i].id, newX: int(nx)})
		}
	}
	sc.moves = moves
	p.moves = moves
	return p, true
}
