//go:build !race

package mgl

const raceEnabled = false
