package mgl

import (
	"math/rand"
	"testing"

	"mclegal/internal/eval"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// Regression for a parallel-scheduler bug: a chain cell whose
// compression barrier came from a non-local neighbor could be pushed
// past its window's edge, colliding with a concurrent batch member's
// placement in the adjacent window. Dense instances with many multi-row
// cells, small windows and forbidden rows maximize batch pressure at
// window seams.
func TestParallelSeamRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(1711))
	for trial := 0; trial < 6; trial++ {
		d := newDesign(200, 20)
		// ~72% utilization with a tall-cell-heavy mix.
		area := 0
		for area < 200*20*72/100 {
			ti := model.CellTypeID(rng.Intn(len(d.Types)))
			ct := d.Types[ti]
			gx := rng.Intn(200 - ct.Width)
			gy := rng.Intn(20 - ct.Height)
			addCell(d, ti, gx, gy, 0)
			area += ct.Width * ct.Height
		}
		grid, err := seg.Build(d)
		if err != nil {
			t.Fatal(err)
		}
		l := New(d, grid, Options{
			Workers:  4,
			BatchCap: 16,
			// Tiny windows force many adjacent windows per batch.
			WindowW: 6, WindowH: 2,
			Rules: fakeRules{
				rowBad: func(ct model.CellTypeID, y int) bool {
					// Forbid one row phase for one type to force
					// retries and window growth.
					return ct == 0 && y%5 == 0
				},
			},
		})
		if err := l.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if v := eval.Audit(d, grid); len(v) > 0 {
			t.Fatalf("trial %d: %v (of %d)", trial, v[0], len(v))
		}
	}
}
