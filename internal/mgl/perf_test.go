package mgl

import (
	"context"
	"errors"
	"math/rand"
	"runtime/debug"
	"testing"

	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
	"mclegal/internal/testutil"
)

// The prefix-width arrays must stay an exact prefix sum of the cell
// widths of every segment after arbitrary insertion orders; the insert
// fast path (one shift-and-add tail pass) is checked against a naive
// recomputation from the occupancy lists.
func TestPrefixWidthMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	for trial := 0; trial < 20; trial++ {
		d := newDesign(200, 8)
		grid, err := seg.Build(d)
		if err != nil {
			t.Fatal(err)
		}
		occ := newOccupancy(d, model.NewHotCells(d), grid)
		// Random non-overlapping cells of mixed widths/heights, placed
		// row by row, inserted in shuffled order.
		var ids []model.CellID
		for y := 0; y < 8; y++ {
			x := rng.Intn(3)
			for {
				ti := model.CellTypeID(rng.Intn(len(d.Types)))
				ct := d.Types[ti]
				if x+ct.Width > 200 || y+ct.Height > 8 {
					break
				}
				id := addCell(d, ti, x, y, 0)
				d.Cells[id].X, d.Cells[id].Y = x, y
				ids = append(ids, id)
				x += ct.Width + rng.Intn(4)
			}
		}
		occ.hot = model.NewHotCells(d) // cells were added after the fixture view
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for n, id := range ids {
			if err := occ.insert(id); err != nil {
				t.Fatalf("trial %d: insert %d: %v", trial, id, err)
			}
			// Check every touched segment against the naive prefix sum.
			c := &d.Cells[id]
			ct := &d.Types[c.Type]
			for r := c.Y; r < c.Y+ct.Height; r++ {
				s, ok := grid.At(r, c.X)
				if !ok {
					t.Fatalf("trial %d: no segment at (%d,%d)", trial, r, c.X)
				}
				lst := occ.cellsIn(int32(s.ID))
				pw := occ.prefW[s.ID]
				if len(pw) != len(lst)+1 {
					t.Fatalf("trial %d after %d inserts: prefW len %d, want %d",
						trial, n+1, len(pw), len(lst)+1)
				}
				var sum int32
				if pw[0] != 0 {
					t.Fatalf("trial %d: prefW[0] = %d", trial, pw[0])
				}
				for k, cid := range lst {
					sum += int32(d.Types[d.Cells[cid].Type].Width)
					if pw[k+1] != sum {
						t.Fatalf("trial %d after %d inserts: prefW[%d] = %d, want %d",
							trial, n+1, k+1, pw[k+1], sum)
					}
				}
			}
		}
	}
}

// A warm window evaluation must not touch the heap: the scratch pool
// owns every buffer (rows are enumerated without storage, reps, chains,
// curve breakpoints and moves are reused). GC is disabled during the
// measurement so a pool flush cannot produce a false positive.
func TestBestInWindowZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless under -race")
	}
	d := newDesign(120, 8)
	// A realistic local neighborhood: placed cells around the target's
	// GP so chains, reps, and curve accumulation all do real work.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 60; i++ {
		ti := model.CellTypeID(rng.Intn(len(d.Types)))
		ct := d.Types[ti]
		addCell(d, ti, rng.Intn(120-ct.Width), rng.Intn(8-ct.Height), 0)
	}
	tgt := addCell(d, 1, 60, 4, 0)
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1})
	// Register everything except the target, as mid-run evaluation sees it.
	for i := range d.Cells {
		if model.CellID(i) == tgt {
			continue
		}
		if err := l.occ.insert(model.CellID(i)); err != nil {
			// Random cells may overlap; occupancy insert does not care.
			t.Fatalf("insert: %v", err)
		}
	}
	win := l.windowFor(tgt, 2)
	var dst []move
	eval := func() {
		if _, ok := l.bestInWindow(tgt, win, &dst); !ok {
			t.Fatal("no feasible plan in window")
		}
	}
	// Warm up the scratch pool and dst capacity.
	for i := 0; i < 8; i++ {
		eval()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(200, eval); allocs != 0 {
		t.Fatalf("bestInWindow allocates %.2f objects/call after warm-up, want 0", allocs)
	}
}

// The persistent worker pool must be torn down on every RunContext
// return path: normal completion, typed error, and cancellation.
func TestPoolShutdownNoGoroutineLeak(t *testing.T) {
	check := func(name string, run func() error, wantErr bool) {
		t.Helper()
		before := testutil.Count()
		err := run()
		if wantErr && err == nil {
			t.Fatalf("%s: expected an error", name)
		}
		if !wantErr && err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		testutil.CheckNoLeaks(t, before)
	}

	check("normal", func() error {
		rng := rand.New(rand.NewSource(12))
		d := randomDesign(rng, 120, 10, 70, false)
		grid, err := seg.Build(d)
		if err != nil {
			return err
		}
		return New(d, grid, Options{Workers: 4}).Run()
	}, false)

	check("error", func() error {
		// 6 width-2 cells in a 10-site row: infeasible, typed error.
		d := newDesign(10, 1)
		for i := 0; i < 6; i++ {
			addCell(d, 0, 0, 0, 0)
		}
		grid, err := seg.Build(d)
		if err != nil {
			return err
		}
		err = New(d, grid, Options{Workers: 4}).Run()
		var inf *InfeasibleError
		if !errors.As(err, &inf) {
			t.Fatalf("error path: got %v, want *InfeasibleError", err)
		}
		return err
	}, true)

	check("cancelled", func() error {
		rng := rand.New(rand.NewSource(13))
		d := randomDesign(rng, 120, 10, 70, false)
		grid, err := seg.Build(d)
		if err != nil {
			return err
		}
		ctx, cancel := context.WithCancel(context.Background())
		l := New(d, grid, Options{
			Workers: 4,
			DebugAfterBatch: func([]model.CellID) bool {
				cancel()
				return true
			},
		})
		err = l.RunContext(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled path: got %v, want context.Canceled", err)
		}
		return err
	}, true)
}

// The interval sweep over chosen windows must accept and reject exactly
// the same candidates as the pairwise overlap scan it replaced.
func TestOverlapSweepMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 200; trial++ {
		rs := &runState{}
		rs.ensure(1, 64)
		var chosen []int
		for i := 0; i < 40; i++ {
			x, y := rng.Intn(100), rng.Intn(30)
			w := geom.RectWH(x, y, 1+rng.Intn(25), 1+rng.Intn(8))
			pairwise := false
			for _, ci := range chosen {
				if rs.wins[ci].Overlaps(w) {
					pairwise = true
					break
				}
			}
			if got := rs.overlapsChosen(w); got != pairwise {
				t.Fatalf("trial %d window %d %v: sweep says %v, pairwise says %v",
					trial, i, w, got, pairwise)
			}
			if !pairwise {
				rs.wins = append(rs.wins, w)
				rs.addChosen(len(rs.wins) - 1)
				chosen = append(chosen, len(rs.wins)-1)
			}
		}
	}
}
