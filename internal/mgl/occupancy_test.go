package mgl

import (
	"math/rand"
	"testing"

	"mclegal/internal/model"
	"mclegal/internal/seg"
)

func occFixture(t *testing.T) (*model.Design, *seg.Grid, *occupancy) {
	t.Helper()
	d := newDesign(100, 4)
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, grid, newOccupancy(d, model.NewHotCells(d), grid)
}

func TestOccupancyInsertOrder(t *testing.T) {
	d, grid, occ := occFixture(t)
	mk := func(ti model.CellTypeID, x, y int) model.CellID {
		id := addCell(d, ti, x, y, 0)
		d.Cells[id].X, d.Cells[id].Y = x, y
		occ.hot = model.NewHotCells(d)
		occ.insert(id)
		return id
	}
	c := mk(0, 50, 1)
	a := mk(0, 10, 1)
	b := mk(0, 30, 1)
	s, _ := grid.At(1, 0)
	lst := occ.cellsIn(int32(s.ID))
	if len(lst) != 3 || lst[0] != a || lst[1] != b || lst[2] != c {
		t.Fatalf("occupancy not x-sorted: %v", lst)
	}
	if occ.splitAt(int32(s.ID), 30) != 2 { // cells with X <= 30: a and b
		t.Errorf("splitAt(30) = %d", occ.splitAt(int32(s.ID), 30))
	}
	if occ.splitAt(int32(s.ID), 9) != 0 || occ.splitAt(int32(s.ID), 99) != 3 {
		t.Errorf("splitAt boundaries wrong")
	}
}

func TestOccupancyMultiRow(t *testing.T) {
	d, grid, occ := occFixture(t)
	id := addCell(d, 1, 20, 2, 0) // 3-wide, 2-high at rows 2,3
	occ.hot = model.NewHotCells(d)
	occ.insert(id)
	for r := 2; r <= 3; r++ {
		s, _ := grid.At(r, 20)
		if lst := occ.cellsIn(int32(s.ID)); len(lst) != 1 || lst[0] != id {
			t.Fatalf("row %d missing multi-row cell", r)
		}
	}
	s, _ := grid.At(1, 20)
	if len(occ.cellsIn(int32(s.ID))) != 0 {
		t.Errorf("row 1 should be empty")
	}
}

func TestOccupiedWidth(t *testing.T) {
	d, grid, occ := occFixture(t)
	mk := func(ti model.CellTypeID, x int) {
		id := addCell(d, ti, x, 0, 0)
		occ.hot = model.NewHotCells(d)
		occ.insert(id)
	}
	// Width-2 cells at [10,12), [20,22); width-5 at [30,35).
	mk(0, 10)
	mk(0, 20)
	mk(3, 30)
	s, _ := grid.At(0, 0)
	cases := []struct {
		lo, hi, want int
	}{
		{0, 100, 9},
		{10, 12, 2},
		{11, 12, 1}, // clipped left
		{10, 11, 1}, // clipped right
		{12, 20, 0}, // gap
		{0, 10, 0},  // before everything
		{31, 34, 3}, // inside the wide cell
		{21, 33, 4}, // 1 from cell2 + 3 from cell3
		{50, 40, 0}, // inverted interval
	}
	for _, c := range cases {
		if got := occ.occupiedWidth(int32(s.ID), c.lo, c.hi); got != c.want {
			t.Errorf("occupiedWidth(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestOccupiedWidthRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		d, grid, occ := occFixture(t)
		// Random non-overlapping width-2 cells in row 0.
		x := 0
		var placed []int
		for {
			x += rng.Intn(4)
			if x+2 > 100 {
				break
			}
			id := addCell(d, 0, x, 0, 0)
			occ.hot = model.NewHotCells(d)
			occ.insert(id)
			placed = append(placed, x)
			x += 2
		}
		s, _ := grid.At(0, 0)
		for q := 0; q < 30; q++ {
			lo := rng.Intn(100)
			hi := lo + rng.Intn(100-lo+1)
			want := 0
			for _, px := range placed {
				o := min(hi, px+2) - max(lo, px)
				if o > 0 {
					want += o
				}
			}
			if got := occ.occupiedWidth(int32(s.ID), lo, hi); got != want {
				t.Fatalf("trial %d: occupiedWidth(%d,%d) = %d, want %d", trial, lo, hi, got, want)
			}
		}
	}
}

func TestOccupancyResort(t *testing.T) {
	d, grid, occ := occFixture(t)
	a := addCell(d, 0, 10, 0, 0)
	b := addCell(d, 0, 20, 0, 0)
	occ.hot = model.NewHotCells(d)
	occ.insert(a)
	occ.insert(b)
	// Manually swap positions (tests only), then resort.
	d.Cells[a].X, d.Cells[b].X = 20, 10
	occ.hot.Reload(d)
	s, _ := grid.At(0, 0)
	occ.resort(int32(s.ID))
	lst := occ.cellsIn(int32(s.ID))
	if lst[0] != b || lst[1] != a {
		t.Errorf("resort failed: %v", lst)
	}
}
