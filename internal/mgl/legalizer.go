package mgl

import (
	"context"
	"fmt"
	"runtime/debug"
	"slices"
	"sort"
	"sync"

	"mclegal/internal/faults"
	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// Stats reports work done by a Run.
type Stats struct {
	Placed        int
	WindowRetries int
	Batches       int
	// Workers is the evaluation concurrency the run actually used
	// (after defaulting). It never affects the placement — see
	// Options.Workers — and is reported for observability only.
	Workers int
}

// Legalizer runs multi-row global legalization over one design.
type Legalizer struct {
	d    *model.Design
	grid *seg.Grid
	// hot is the struct-of-arrays view of d's cells the evaluation hot
	// paths read; commit writes every move through it so the view and
	// the design never diverge within a run.
	hot   *model.HotCells
	occ   *occupancy
	opt   Options
	maxSp int
	rs    runState

	// Stats is populated by Run; it remains valid (partially filled)
	// after a failed or cancelled run.
	Stats Stats
}

// New builds a legalizer for d over the prebuilt segmentation grid.
//
//mclegal:writes hotcells construction materializes the hot view of the design's cells
func New(d *model.Design, grid *seg.Grid, opt Options) *Legalizer {
	hot := model.NewHotCells(d)
	return &Legalizer{
		d:     d,
		grid:  grid,
		hot:   hot,
		occ:   newOccupancy(d, hot, grid),
		opt:   opt.withDefaults(),
		maxSp: d.Tech.MaxEdgeSpacing(),
	}
}

// Order returns the cell legalization order under the configured policy.
func (l *Legalizer) Order() []model.CellID {
	ids := make([]model.CellID, 0, l.d.MovableCount())
	for i := range l.d.Cells {
		if !l.d.Cells[i].Fixed {
			ids = append(ids, model.CellID(i))
		}
	}
	ts := l.d.Types
	cs := l.d.Cells
	sort.SliceStable(ids, func(a, b int) bool {
		ca, cb := &cs[ids[a]], &cs[ids[b]]
		ta, tb := &ts[ca.Type], &ts[cb.Type]
		switch l.opt.Order {
		case GPLeftToRight:
			if ca.GX != cb.GX {
				return ca.GX < cb.GX
			}
		case WidestAreaFirst:
			aa, ab := ta.Width*ta.Height, tb.Width*tb.Height
			if aa != ab {
				return aa > ab
			}
		default: // TallestFirst
			if ta.Height != tb.Height {
				return ta.Height > tb.Height
			}
		}
		if ca.GX != cb.GX {
			return ca.GX < cb.GX
		}
		return ids[a] < ids[b]
	})
	return ids
}

// windowFor returns the (attempt-times grown) search window of cell t,
// clamped to the core.
func (l *Legalizer) windowFor(t model.CellID, attempt int) geom.Rect {
	c := &l.d.Cells[t]
	ct := &l.d.Types[c.Type]
	hw := l.opt.WindowW
	if hw <= 0 {
		hw = 2*ct.Width + 8
	}
	hh := l.opt.WindowH
	if hh <= 0 {
		hh = ct.Height + 2
	}
	for i := 0; i < attempt; i++ {
		hw *= l.opt.GrowFactor
		hh *= l.opt.GrowFactor
	}
	core := l.d.Tech.CoreRect()
	win := geom.Rect{
		XLo: c.GX - hw, XHi: c.GX + ct.Width + hw,
		YLo: c.GY - hh, YHi: c.GY + ct.Height + hh,
	}
	return win.Intersect(core)
}

// betterPlan reports whether p beats best: by cost, then by |Δrow| to
// the GP row, then by lower y, then lower x. An unset best always
// loses. The tiebreak chain makes the choice worker-independent.
func betterPlan(p, best plan, gy int) bool {
	if !best.ok {
		return true
	}
	if p.cost != best.cost {
		return p.cost < best.cost
	}
	da, db := geom.Abs(p.y-gy), geom.Abs(best.y-gy)
	if da != db {
		return da < db
	}
	if p.y != best.y {
		return p.y < best.y
	}
	return p.x < best.x
}

// bestInWindow evaluates every insertion point of t in win and returns
// the cheapest feasible plan. The winning plan's moves are copied into
// *dst (reusing its capacity), so the returned plan stays valid after
// the evaluation's scratch buffers are recycled.
//
//mclegal:hotpath per-cell inner loop of MGL; TestBestInWindowZeroAlloc pins it to 0 allocs/op after warm-up
func (l *Legalizer) bestInWindow(t model.CellID, win geom.Rect, dst *[]move) (plan, bool) {
	d := l.d
	hc := l.hot
	h := int(hc.H[t])

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	var best plan

	// Scan candidate rows outward from the GP row — distance ascending,
	// lower row first on ties — so that row pruning (PruneSlackRows) can
	// stop early: once the y-cost alone exceeds the best cost plus the
	// slack, no farther row can win. The order is generated directly
	// (no row buffer, no sort): for each distance dist, try GY-dist
	// then GY+dist.
	yLo := win.YLo
	if yLo < 0 {
		yLo = 0
	}
	yHi := win.YHi
	if yHi > d.Tech.NumRows {
		yHi = d.Tech.NumRows
	}
	yHi -= h // highest valid bottom row
	gy := int(hc.GY[t])
	dMax := -1
	if yHi >= yLo {
		dMax = geom.Abs(gy - yLo)
		if v := geom.Abs(yHi - gy); v > dMax {
			dMax = v
		}
	}
	rowH := int64(d.Tech.RowH)
rowLoop:
	for dist := 0; dist <= dMax; dist++ {
		for side := 0; side < 2; side++ {
			y := gy - dist
			if side == 1 {
				if dist == 0 {
					continue
				}
				y = gy + dist
			}
			if y < yLo || y > yHi {
				continue
			}
			if l.opt.PruneSlackRows >= 0 && best.ok {
				yCost := int64(dist) * rowH
				if yCost > best.cost+int64(l.opt.PruneSlackRows)*rowH {
					break rowLoop
				}
			}
			if !d.Tech.RowAllowed(h, y) {
				continue
			}
			if l.opt.Rules != nil && l.opt.Rules.RowForbidden(hc.Type[t], y) {
				continue
			}
			for _, x0 := range l.insertionReps(sc, hc.Fence[t], y, h, win) {
				p, ok := l.evaluateInsertion(sc, t, y, h, x0, win)
				if ok && betterPlan(p, best, gy) {
					// p.moves aliases sc.moves, which the next
					// evaluation overwrites: keep a stable copy.
					sc.bestMoves = append(sc.bestMoves[:0], p.moves...)
					best = p
					best.moves = sc.bestMoves
				}
			}
		}
	}
	if best.ok {
		*dst = append((*dst)[:0], best.moves...)
		best.moves = *dst
	}
	return best, best.ok
}

// insertionReps returns the representative x positions that enumerate
// all distinct insertion points for rows [y,y+h) within win: one per
// elementary interval between segment starts and placed-cell left
// edges. The returned slice is owned by sc and valid until the next
// call.
func (l *Legalizer) insertionReps(sc *scratch, f model.FenceID, y, h int, win geom.Rect) []int {
	reps := sc.reps[:0]
	lo, hi := win.XLo, win.XHi
	if lo < hi {
		reps = append(reps, lo)
	}
	hc := l.hot
	grid := l.grid
	for r := y; r < y+h; r++ {
		for _, sid := range grid.Row(r) {
			sLo, sHi := grid.Lo(sid), grid.Hi(sid)
			if grid.FenceOf(sid) != f || sLo >= hi || sHi <= lo {
				continue
			}
			if sLo >= lo && sLo < hi {
				reps = append(reps, sLo)
			}
			// Only cells whose left edge lies inside [lo, hi) can
			// contribute; the occupancy list is x-sorted, so binary
			// search to the first candidate and stop at the window end.
			lst := l.occ.cellsIn(sid)
			start := sort.Search(len(lst), func(k int) bool { return int(hc.X[lst[k]]) >= lo })
			for _, id := range lst[start:] {
				x := int(hc.X[id])
				if x >= hi {
					break
				}
				reps = append(reps, x)
			}
		}
	}
	slices.Sort(reps)
	out := reps[:0]
	for i, x := range reps {
		if i == 0 || x != reps[i-1] {
			out = append(out, x)
		}
	}
	sc.reps = reps
	return out
}

// commit applies a plan: chain cells shift, the target is placed and
// registered. Shifts preserve the x-order of every occupancy list.
func (l *Legalizer) commit(p plan) error {
	for _, mv := range p.moves {
		l.hot.SetX(l.d, mv.id, mv.newX)
	}
	l.hot.SetXY(l.d, p.target, p.x, p.y)
	c := &l.d.Cells[p.target]
	if l.opt.Faults.ShouldFire(faults.MGLInsertOutside) {
		return &InsertError{Cell: p.target, Name: c.Name, X: c.X, Y: c.Y, Row: c.Y}
	}
	if err := l.occ.insert(p.target); err != nil {
		return err
	}
	l.Stats.Placed++
	return nil
}

// coverageBound returns the minimum possible target-displacement cost
// of any position *outside* win: if the best in-window plan costs more,
// a cheaper position may exist beyond the window.
func (l *Legalizer) coverageBound(t model.CellID, win geom.Rect) int64 {
	c := &l.d.Cells[t]
	ct := &l.d.Types[c.Type]
	core := l.d.Tech.CoreRect()
	siteW := int64(l.d.Tech.SiteW)
	rowH := int64(l.d.Tech.RowH)
	bound := int64(1) << 62
	if win.XLo > core.XLo {
		bound = min64(bound, int64(c.GX-win.XLo)*siteW)
	}
	if win.XHi < core.XHi {
		bound = min64(bound, int64(win.XHi-ct.Width-c.GX)*siteW)
	}
	if win.YLo > core.YLo {
		bound = min64(bound, int64(c.GY-win.YLo)*rowH)
	}
	if win.YHi < core.YHi {
		bound = min64(bound, int64(win.YHi-ct.Height-c.GY)*rowH)
	}
	return bound
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// runState holds the scheduler's per-run buffers: per-cell retry
// counters, epoch-stamped batch membership (replacing per-batch maps),
// the per-slot evaluation results, and the sorted-interval sweep over
// the chosen windows. Everything is allocated once per design size and
// reused across batches and runs.
type runState struct {
	// Per-cell state, indexed by CellID. attempt and quality persist
	// across batches within one run; selEpoch/failEpoch mark batch
	// membership by carrying the batch's epoch value, so "clearing"
	// them between batches is a single counter increment.
	attempt   []int32
	quality   []int32
	selEpoch  []uint32
	failEpoch []uint32
	epoch     uint32

	// Per-batch slots, capacity BatchCap.
	batch     []model.CellID
	wins      []geom.Rect
	plans     []plan
	oks       []bool
	panics    []*WorkerPanicError
	moves     [][]move // stable backing storage for plans[i].moves
	committed []model.CellID

	// Window-overlap sweep: indices into wins sorted by XLo, with a
	// parallel prefix-maximum of XHi (see overlapsChosen).
	byXLo []int32
	maxHi []int
}

func (rs *runState) ensure(nCells, batchCap int) {
	if len(rs.attempt) < nCells {
		rs.attempt = make([]int32, nCells)
		rs.quality = make([]int32, nCells)
		rs.selEpoch = make([]uint32, nCells)
		rs.failEpoch = make([]uint32, nCells)
	} else {
		// Repeat runs restart the retry counters; the epoch stamps
		// stay valid because the epoch counter keeps increasing.
		clear(rs.attempt[:nCells])
		clear(rs.quality[:nCells])
	}
	if cap(rs.plans) < batchCap {
		rs.batch = make([]model.CellID, 0, batchCap)
		rs.wins = make([]geom.Rect, 0, batchCap)
		rs.plans = make([]plan, batchCap)
		rs.oks = make([]bool, batchCap)
		rs.panics = make([]*WorkerPanicError, batchCap)
		rs.moves = make([][]move, batchCap)
		rs.byXLo = make([]int32, 0, batchCap)
		rs.maxHi = make([]int, 0, batchCap)
	}
}

// overlapsChosen reports whether w overlaps any window already chosen
// for the current batch. Instead of the former O(batch) pairwise scan
// per candidate, the chosen windows are kept sorted by XLo with a
// running prefix-max of XHi: windows starting at or right of w.XHi are
// skipped by binary search, and the backward scan stops as soon as the
// prefix maximum right edge falls at or left of w.XLo. The residual
// rectangle test is exact, so batch composition — and therefore the
// final placement — is identical to the pairwise version.
func (rs *runState) overlapsChosen(w geom.Rect) bool {
	k := sort.Search(len(rs.byXLo), func(i int) bool {
		return rs.wins[rs.byXLo[i]].XLo >= w.XHi
	})
	for j := k - 1; j >= 0; j-- {
		if rs.maxHi[j] <= w.XLo {
			return false
		}
		if rs.wins[rs.byXLo[j]].Overlaps(w) {
			return true
		}
	}
	return false
}

// addChosen inserts wins[idx] into the sweep structures, keeping byXLo
// sorted and maxHi its prefix maximum of XHi.
func (rs *runState) addChosen(idx int) {
	w := rs.wins[idx]
	k := sort.Search(len(rs.byXLo), func(i int) bool {
		return rs.wins[rs.byXLo[i]].XLo > w.XLo
	})
	rs.byXLo = append(rs.byXLo, 0)
	copy(rs.byXLo[k+1:], rs.byXLo[k:])
	rs.byXLo[k] = int32(idx)
	rs.maxHi = append(rs.maxHi, 0)
	for j := k; j < len(rs.byXLo); j++ {
		hi := rs.wins[rs.byXLo[j]].XHi
		if j > 0 && rs.maxHi[j-1] > hi {
			hi = rs.maxHi[j-1]
		}
		rs.maxHi[j] = hi
	}
}

// evalOne evaluates batch slot i against the current snapshot. A panic
// inside the evaluation is recovered into a typed *WorkerPanicError
// carrying the cell and stack — the first panic wins deterministically
// (lowest batch index) — so a degenerate window can never crash the
// process.
func (l *Legalizer) evalOne(i int) {
	rs := &l.rs
	defer func() {
		if r := recover(); r != nil {
			rs.panics[i] = &WorkerPanicError{
				Cell: rs.batch[i], Value: r, Stack: debug.Stack(),
			}
		}
	}()
	if l.opt.Faults.ShouldFire(faults.MGLWorkerPanic) {
		panic("injected worker panic")
	}
	rs.plans[i], rs.oks[i] = l.bestInWindow(rs.batch[i], rs.wins[i], &rs.moves[i])
}

// evalPool is the persistent evaluation worker pool of one RunContext:
// opt.Workers goroutines started once, fed batch slot indices over a
// channel, and torn down by stop() on every return path. This replaces
// the former per-batch goroutine+semaphore spawn, whose setup cost was
// paid thousands of times per run.
type evalPool struct {
	work    chan int
	workers sync.WaitGroup // worker goroutine lifetimes
	pending sync.WaitGroup // outstanding evaluations of the current batch
}

// startPool launches the workers. Workers observing a cancelled ctx
// drain their indices without evaluating (oks stays false); RunContext
// checks ctx before interpreting any result.
func (l *Legalizer) startPool(ctx context.Context) *evalPool {
	// The buffer covers a full batch, so dispatch never blocks.
	p := &evalPool{work: make(chan int, l.opt.BatchCap)}
	p.workers.Add(l.opt.Workers)
	for w := 0; w < l.opt.Workers; w++ {
		go func() {
			defer p.workers.Done()
			for i := range p.work {
				if ctx.Err() == nil {
					l.evalOne(i)
				}
				p.pending.Done()
			}
		}()
	}
	return p
}

// run evaluates slots [0,n) of the current batch and blocks until all
// are done. The WaitGroup handoff orders the workers' writes to the
// runState slots before RunContext reads them.
func (p *evalPool) run(n int) {
	p.pending.Add(n)
	for i := 0; i < n; i++ {
		p.work <- i
	}
	p.pending.Wait()
}

// stop tears the pool down and waits for every worker to exit, so a
// returned RunContext never leaks goroutines (see
// TestPoolShutdownNoGoroutineLeak).
func (p *evalPool) stop() {
	close(p.work)
	p.workers.Wait()
}

// Run legalizes every movable cell (see RunContext).
//
//mclegal:writes design.xy,hotcells,occupancy,routememo MGL commits legal positions through both the design and its hot view, maintains the occupancy index, and warms the route-rule memo
func (l *Legalizer) Run() error { return l.RunContext(context.Background()) }

// RunContext legalizes every movable cell using the deterministic
// window scheduler of paper Section 3.5: each iteration selects up to
// BatchCap cells (in queue order) whose windows are pairwise disjoint,
// evaluates them (on the persistent worker pool for Workers > 1)
// against the iteration's snapshot, then commits the results in queue
// order. Batch composition and commit order never depend on Workers,
// so the final placement is byte-identical for every worker count.
//
// Cancelling ctx aborts between batches — never mid-commit — with
// ctx.Err(): cells already committed keep their legal positions and
// the remainder stay at their GP positions, so the design remains
// consistent and auditable (though not legal).
//
//mclegal:writes design.xy,hotcells,occupancy,routememo MGL commits legal positions through both the design and its hot view, maintains the occupancy index, and warms the route-rule memo
func (l *Legalizer) RunContext(ctx context.Context) error {
	queue := l.Order()
	rs := &l.rs
	rs.ensure(len(l.d.Cells), l.opt.BatchCap)
	l.Stats.Workers = l.opt.Workers
	var pool *evalPool
	if l.opt.Workers > 1 {
		pool = l.startPool(ctx)
		defer pool.stop()
	}
	core := l.d.Tech.CoreRect()
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Select the batch L_p: queue-ordered, pairwise-disjoint windows.
		rs.epoch++
		rs.batch = rs.batch[:0]
		rs.wins = rs.wins[:0]
		rs.byXLo = rs.byXLo[:0]
		rs.maxHi = rs.maxHi[:0]
		for _, t := range queue {
			if len(rs.batch) >= l.opt.BatchCap {
				break
			}
			w := l.windowFor(t, int(rs.attempt[t]))
			if rs.overlapsChosen(w) {
				continue
			}
			rs.batch = append(rs.batch, t)
			rs.wins = append(rs.wins, w)
			rs.addChosen(len(rs.batch) - 1)
			rs.selEpoch[t] = rs.epoch
		}
		l.Stats.Batches++

		// Evaluation against the current snapshot: inline for a single
		// worker, on the pool otherwise. Cancelled evaluations leave
		// oks[i] false, but those entries are never interpreted — the
		// ctx check below returns before any commit.
		n := len(rs.batch)
		for i := 0; i < n; i++ {
			rs.oks[i] = false
			rs.panics[i] = nil
		}
		if pool != nil {
			pool.run(n)
		} else {
			for i := 0; i < n; i++ {
				if ctx.Err() != nil {
					break
				}
				l.evalOne(i)
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, pe := range rs.panics[:n] {
			if pe != nil {
				return pe
			}
		}

		// Sequential deterministic commit; failures grow their window
		// and return to the queue.
		rs.committed = rs.committed[:0]
		for i, t := range rs.batch {
			if rs.oks[i] {
				// Quality-driven growth (see legalizeOne): if a
				// cheaper position may lie outside this window and the
				// budget allows, retry with a bigger window instead of
				// committing. The next batch re-evaluates fresh, which
				// keeps batch windows disjoint.
				if rs.wins[i] != core && l.opt.QualityGrowths >= 0 &&
					int(rs.quality[t]) < l.opt.QualityGrowths &&
					rs.plans[i].cost > l.coverageBound(t, rs.wins[i]) {
					rs.quality[t]++
					rs.attempt[t]++
					rs.failEpoch[t] = rs.epoch
					l.Stats.WindowRetries++
					continue
				}
				if err := l.commit(rs.plans[i]); err != nil {
					return err
				}
				rs.committed = append(rs.committed, t)
				continue
			}
			l.Stats.WindowRetries++
			if rs.wins[i] == core {
				return &InfeasibleError{Cell: t, Name: l.d.Cells[t].Name, Fence: l.d.Cells[t].Fence}
			}
			rs.attempt[t]++
			rs.failEpoch[t] = rs.epoch
		}
		next := queue[:0]
		for _, t := range queue {
			if rs.selEpoch[t] != rs.epoch || rs.failEpoch[t] == rs.epoch {
				next = append(next, t)
			}
		}
		queue = next
		//mclegal:writeset the debug hook is wired only by tests and receives the committed count by value
		if l.opt.DebugAfterBatch != nil && !l.opt.DebugAfterBatch(rs.committed) {
			return fmt.Errorf("mgl: aborted by debug hook")
		}
	}
	return nil
}

// Legalize builds the segmentation of d and runs MGL with opt.
//
//mclegal:writes design.xy,hotcells,occupancy,routememo MGL commits legal positions through both the design and its hot view, maintains the occupancy index, and warms the route-rule memo
func Legalize(d *model.Design, opt Options) (*Legalizer, error) {
	return LegalizeContext(context.Background(), d, opt)
}

// LegalizeContext builds the segmentation of d and runs MGL with opt
// under ctx.
//
//mclegal:writes design.xy,hotcells,occupancy,routememo MGL commits legal positions through both the design and its hot view, maintains the occupancy index, and warms the route-rule memo
func LegalizeContext(ctx context.Context, d *model.Design, opt Options) (*Legalizer, error) {
	grid, err := seg.Build(d)
	if err != nil {
		return nil, err
	}
	l := New(d, grid, opt)
	if err := l.RunContext(ctx); err != nil {
		return l, err
	}
	return l, nil
}
