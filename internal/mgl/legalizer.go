package mgl

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"mclegal/internal/faults"
	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// Stats reports work done by a Run.
type Stats struct {
	Placed        int
	WindowRetries int
	Batches       int
}

// Legalizer runs multi-row global legalization over one design.
type Legalizer struct {
	d     *model.Design
	grid  *seg.Grid
	occ   *occupancy
	opt   Options
	maxSp int

	// Stats is populated by Run; it remains valid (partially filled)
	// after a failed or cancelled run.
	Stats Stats
}

// New builds a legalizer for d over the prebuilt segmentation grid.
func New(d *model.Design, grid *seg.Grid, opt Options) *Legalizer {
	return &Legalizer{
		d:     d,
		grid:  grid,
		occ:   newOccupancy(d, grid),
		opt:   opt.withDefaults(),
		maxSp: d.Tech.MaxEdgeSpacing(),
	}
}

// Order returns the cell legalization order under the configured policy.
func (l *Legalizer) Order() []model.CellID {
	var ids []model.CellID
	for i := range l.d.Cells {
		if !l.d.Cells[i].Fixed {
			ids = append(ids, model.CellID(i))
		}
	}
	ts := l.d.Types
	cs := l.d.Cells
	sort.SliceStable(ids, func(a, b int) bool {
		ca, cb := &cs[ids[a]], &cs[ids[b]]
		ta, tb := &ts[ca.Type], &ts[cb.Type]
		switch l.opt.Order {
		case GPLeftToRight:
			if ca.GX != cb.GX {
				return ca.GX < cb.GX
			}
		case WidestAreaFirst:
			aa, ab := ta.Width*ta.Height, tb.Width*tb.Height
			if aa != ab {
				return aa > ab
			}
		default: // TallestFirst
			if ta.Height != tb.Height {
				return ta.Height > tb.Height
			}
		}
		if ca.GX != cb.GX {
			return ca.GX < cb.GX
		}
		return ids[a] < ids[b]
	})
	return ids
}

// windowFor returns the (attempt-times grown) search window of cell t,
// clamped to the core.
func (l *Legalizer) windowFor(t model.CellID, attempt int) geom.Rect {
	c := &l.d.Cells[t]
	ct := &l.d.Types[c.Type]
	hw := l.opt.WindowW
	if hw <= 0 {
		hw = 2*ct.Width + 8
	}
	hh := l.opt.WindowH
	if hh <= 0 {
		hh = ct.Height + 2
	}
	for i := 0; i < attempt; i++ {
		hw *= l.opt.GrowFactor
		hh *= l.opt.GrowFactor
	}
	core := l.d.Tech.CoreRect()
	win := geom.Rect{
		XLo: c.GX - hw, XHi: c.GX + ct.Width + hw,
		YLo: c.GY - hh, YHi: c.GY + ct.Height + hh,
	}
	return win.Intersect(core)
}

// bestInWindow evaluates every insertion point of t in win and returns
// the cheapest feasible plan.
func (l *Legalizer) bestInWindow(t model.CellID, win geom.Rect) (plan, bool) {
	d := l.d
	tc := &d.Cells[t]
	tct := &d.Types[tc.Type]
	h := tct.Height

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	var best plan
	better := func(p plan) bool {
		if !best.ok {
			return true
		}
		if p.cost != best.cost {
			return p.cost < best.cost
		}
		da, db := geom.Abs(p.y-tc.GY), geom.Abs(best.y-tc.GY)
		if da != db {
			return da < db
		}
		if p.y != best.y {
			return p.y < best.y
		}
		return p.x < best.x
	}

	// Scan candidate rows outward from the GP row so that row pruning
	// (PruneSlackRows) can stop early: once the y-cost alone exceeds
	// the best cost plus the slack, no farther row can win.
	rows := make([]int, 0, win.H())
	for y := win.YLo; y+h <= win.YHi; y++ {
		if y < 0 || y+h > d.Tech.NumRows {
			continue
		}
		rows = append(rows, y)
	}
	sort.Slice(rows, func(a, b int) bool {
		da, db := geom.Abs(rows[a]-tc.GY), geom.Abs(rows[b]-tc.GY)
		if da != db {
			return da < db
		}
		return rows[a] < rows[b]
	})
	rowH := int64(d.Tech.RowH)
	for _, y := range rows {
		if l.opt.PruneSlackRows >= 0 && best.ok {
			yCost := int64(geom.Abs(y-tc.GY)) * rowH
			if yCost > best.cost+int64(l.opt.PruneSlackRows)*rowH {
				break
			}
		}
		if !d.Tech.RowAllowed(h, y) {
			continue
		}
		if l.opt.Rules != nil && l.opt.Rules.RowForbidden(tc.Type, y) {
			continue
		}
		for _, x0 := range l.insertionReps(tc.Fence, y, h, win) {
			p, ok := l.evaluateInsertion(sc, t, y, h, x0, win)
			if ok && better(p) {
				best = p
			}
		}
	}
	return best, best.ok
}

// insertionReps returns the representative x positions that enumerate
// all distinct insertion points for rows [y,y+h) within win: one per
// elementary interval between segment starts and placed-cell left
// edges.
func (l *Legalizer) insertionReps(f model.FenceID, y, h int, win geom.Rect) []int {
	var reps []int
	add := func(x int) {
		if x >= win.XLo && x < win.XHi {
			reps = append(reps, x)
		}
	}
	add(win.XLo)
	for r := y; r < y+h; r++ {
		for _, sid := range l.grid.Row(r) {
			s := l.grid.Segs[sid]
			if s.Fence != f || !s.X.Overlaps(geom.Interval{Lo: win.XLo, Hi: win.XHi}) {
				continue
			}
			add(s.X.Lo)
			for _, id := range l.occ.cellsIn(sid) {
				add(l.d.Cells[id].X)
			}
		}
	}
	sort.Ints(reps)
	out := reps[:0]
	for i, x := range reps {
		if i == 0 || x != reps[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// commit applies a plan: chain cells shift, the target is placed and
// registered. Shifts preserve the x-order of every occupancy list.
func (l *Legalizer) commit(p plan) error {
	for _, mv := range p.moves {
		l.d.Cells[mv.id].X = mv.newX
	}
	c := &l.d.Cells[p.target]
	c.X, c.Y = p.x, p.y
	if l.opt.Faults.ShouldFire(faults.MGLInsertOutside) {
		return &InsertError{Cell: p.target, Name: c.Name, X: c.X, Y: c.Y, Row: c.Y}
	}
	if err := l.occ.insert(p.target); err != nil {
		return err
	}
	l.Stats.Placed++
	return nil
}

// coverageBound returns the minimum possible target-displacement cost
// of any position *outside* win: if the best in-window plan costs more,
// a cheaper position may exist beyond the window.
func (l *Legalizer) coverageBound(t model.CellID, win geom.Rect) int64 {
	c := &l.d.Cells[t]
	ct := &l.d.Types[c.Type]
	core := l.d.Tech.CoreRect()
	siteW := int64(l.d.Tech.SiteW)
	rowH := int64(l.d.Tech.RowH)
	bound := int64(1) << 62
	if win.XLo > core.XLo {
		bound = min64(bound, int64(c.GX-win.XLo)*siteW)
	}
	if win.XHi < core.XHi {
		bound = min64(bound, int64(win.XHi-ct.Width-c.GX)*siteW)
	}
	if win.YLo > core.YLo {
		bound = min64(bound, int64(c.GY-win.YLo)*rowH)
	}
	if win.YHi < core.YHi {
		bound = min64(bound, int64(win.YHi-ct.Height-c.GY)*rowH)
	}
	return bound
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Run legalizes every movable cell (see RunContext).
func (l *Legalizer) Run() error { return l.RunContext(context.Background()) }

// RunContext legalizes every movable cell using the deterministic
// window scheduler of paper Section 3.5: each iteration selects up to
// BatchCap cells (in queue order) whose windows are pairwise disjoint,
// evaluates them (in parallel for Workers > 1) against the iteration's
// snapshot, then commits the results in queue order. Batch composition
// and commit order never depend on Workers, so the final placement is
// byte-identical for every worker count.
//
// Cancelling ctx aborts between batches — never mid-commit — with
// ctx.Err(): cells already committed keep their legal positions and
// the remainder stay at their GP positions, so the design remains
// consistent and auditable (though not legal).
func (l *Legalizer) RunContext(ctx context.Context) error {
	queue := l.Order()
	attempt := make(map[model.CellID]int, len(queue))
	quality := make(map[model.CellID]int, len(queue))
	core := l.d.Tech.CoreRect()
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Select the batch L_p: queue-ordered, pairwise-disjoint windows.
		var batch []model.CellID
		var wins []geom.Rect
		selected := make(map[model.CellID]bool, l.opt.BatchCap)
		for _, t := range queue {
			if len(batch) >= l.opt.BatchCap {
				break
			}
			w := l.windowFor(t, attempt[t])
			clash := false
			for _, o := range wins {
				if w.Overlaps(o) {
					clash = true
					break
				}
			}
			if clash {
				continue
			}
			batch = append(batch, t)
			wins = append(wins, w)
			selected[t] = true
		}
		l.Stats.Batches++

		// Evaluation against the current snapshot: inline for a single
		// worker, parallel otherwise. Cancelled workers leave oks[i]
		// false, but those entries are never interpreted — the ctx
		// check below returns before any commit. A panic inside an
		// evaluation (worker or inline) is recovered into a typed
		// *WorkerPanicError carrying the cell and stack — the first
		// panic wins deterministically (lowest batch index) — so a
		// degenerate window can never crash the process.
		plans := make([]plan, len(batch))
		oks := make([]bool, len(batch))
		panics := make([]*WorkerPanicError, len(batch))
		evalOne := func(i int) {
			defer func() {
				if r := recover(); r != nil {
					panics[i] = &WorkerPanicError{
						Cell: batch[i], Value: r, Stack: debug.Stack(),
					}
				}
			}()
			if l.opt.Faults.ShouldFire(faults.MGLWorkerPanic) {
				panic("injected worker panic")
			}
			plans[i], oks[i] = l.bestInWindow(batch[i], wins[i])
		}
		if l.opt.Workers == 1 {
			for i := range batch {
				if ctx.Err() != nil {
					break
				}
				evalOne(i)
			}
		} else {
			var wg sync.WaitGroup
			sem := make(chan struct{}, l.opt.Workers)
			for i := range batch {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					if ctx.Err() != nil {
						return
					}
					evalOne(i)
				}(i)
			}
			wg.Wait()
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, pe := range panics {
			if pe != nil {
				return pe
			}
		}

		// Sequential deterministic commit; failures grow their window
		// and return to the queue.
		failed := make(map[model.CellID]bool)
		var committed []model.CellID
		for i, t := range batch {
			if oks[i] {
				// Quality-driven growth (see legalizeOne): if a
				// cheaper position may lie outside this window and the
				// budget allows, retry with a bigger window instead of
				// committing. The next batch re-evaluates fresh, which
				// keeps batch windows disjoint.
				if wins[i] != core && l.opt.QualityGrowths >= 0 &&
					quality[t] < l.opt.QualityGrowths &&
					plans[i].cost > l.coverageBound(t, wins[i]) {
					quality[t]++
					attempt[t]++
					failed[t] = true
					l.Stats.WindowRetries++
					continue
				}
				if err := l.commit(plans[i]); err != nil {
					return err
				}
				committed = append(committed, t)
				continue
			}
			l.Stats.WindowRetries++
			if wins[i] == core {
				return &InfeasibleError{Cell: t, Name: l.d.Cells[t].Name, Fence: l.d.Cells[t].Fence}
			}
			attempt[t]++
			failed[t] = true
		}
		next := queue[:0]
		for _, t := range queue {
			if !selected[t] || failed[t] {
				next = append(next, t)
			}
		}
		queue = next
		if l.opt.DebugAfterBatch != nil && !l.opt.DebugAfterBatch(committed) {
			return fmt.Errorf("mgl: aborted by debug hook")
		}
	}
	return nil
}

// Legalize builds the segmentation of d and runs MGL with opt.
func Legalize(d *model.Design, opt Options) (*Legalizer, error) {
	return LegalizeContext(context.Background(), d, opt)
}

// LegalizeContext builds the segmentation of d and runs MGL with opt
// under ctx.
func LegalizeContext(ctx context.Context, d *model.Design, opt Options) (*Legalizer, error) {
	grid, err := seg.Build(d)
	if err != nil {
		return nil, err
	}
	l := New(d, grid, opt)
	if err := l.RunContext(ctx); err != nil {
		return l, err
	}
	return l, nil
}
