// Package mgl implements the paper's core contribution: multi-row
// global legalization (Section 3.1). Cells are inserted sequentially
// into a window around their GP position; for every candidate insertion
// point the summed displacement curve of the target and the local cells
// is scanned at its breakpoints; the cheapest position wins and local
// cells are spread to make room.
//
// Unlike MLL (reference [12], reimplemented in internal/baseline), all
// displacement here is measured from global-placement positions, so
// costs do not accumulate over successive insertions (paper Figure 3).
package mgl

import (
	"sort"

	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// occupancy tracks, for every segment, the IDs of placed cells ordered
// by their current x. A multi-row cell appears in one segment per row
// it spans.
//
// All position and width reads go through the HotCells view (shared
// with the owning Legalizer): the occupancy queries run inside the
// bestInWindow hot path, where chasing Design.Cells→Design.Types per
// cell costs a dependent load the flat arrays avoid.
//
//mclegal:ephemeral the index is rebuilt from the design's positions for every legalizer; it never outlives the run that built it
type occupancy struct {
	d    *model.Design
	hot  *model.HotCells
	grid *seg.Grid
	segs [][]model.CellID
	// prefW[sid][i] is the summed width of segs[sid][:i]; it provides
	// O(log) occupied-width queries for the quick-rejection test.
	prefW [][]int32
}

func newOccupancy(d *model.Design, hot *model.HotCells, grid *seg.Grid) *occupancy {
	return &occupancy{
		d:     d,
		hot:   hot,
		grid:  grid,
		segs:  make([][]model.CellID, len(grid.Segs)),
		prefW: make([][]int32, len(grid.Segs)),
	}
}

// reserve returns s with room for one more element, growing by at
// least eight slots at a time: append's doubling reallocates four
// times to reach the first eight elements, so small segment lists were
// re-copying on nearly every insert.
func reserve[T any](s []T) []T {
	if len(s) < cap(s) {
		return s[:len(s)+1]
	}
	ns := make([]T, len(s)+1, 2*cap(s)+8)
	copy(ns, s)
	return ns
}

// insert registers a placed cell in the segments of all rows it spans.
// The cell's X/Y must already be final (in both the design and the hot
// view). A cell outside any segment — an inconsistency between the
// committed plan and the grid — yields a typed *InsertError; the
// partially-registered rows are left in place (the stage runner rolls
// the whole stage back on error).
func (o *occupancy) insert(id model.CellID) error {
	h := o.hot
	x, y := int(h.X[id]), int(h.Y[id])
	for r := y; r < y+int(h.H[id]); r++ {
		sid := o.grid.AtID(r, x)
		if sid < 0 {
			c := &o.d.Cells[id]
			return &InsertError{Cell: id, Name: c.Name, X: x, Y: y, Row: r}
		}
		lst := reserve(o.segs[sid])
		i := sort.Search(len(lst)-1, func(k int) bool { return h.X[lst[k]] > int32(x) })
		copy(lst[i+1:], lst[i:])
		lst[i] = id
		o.segs[sid] = lst

		// One shift-and-add pass keeps prefW a prefix sum of widths:
		// entries after the insertion point slide right one slot
		// (pw[i+1] becomes a copy of pw[i], the prefix up to the new
		// cell), then the new cell's width is added to the whole tail.
		pw := o.prefW[sid]
		if len(pw) == 0 {
			pw = append(pw, 0)
		}
		pw = reserve(pw)
		copy(pw[i+2:], pw[i+1:])
		pw[i+1] = pw[i]
		w := h.W[id]
		for k := i + 1; k < len(pw); k++ {
			pw[k] += w
		}
		o.prefW[sid] = pw
	}
	return nil
}

// occupiedWidth returns the summed width (in sites) of the parts of
// placed cells of segment sid that lie inside [lo, hi).
func (o *occupancy) occupiedWidth(sid int32, lo, hi int) int {
	lst := o.segs[sid]
	if len(lst) == 0 || hi <= lo {
		return 0
	}
	h := o.hot
	// First cell with right edge > lo.
	a := sort.Search(len(lst), func(k int) bool {
		id := lst[k]
		return int(h.X[id]+h.W[id]) > lo
	})
	// First cell with left edge >= hi.
	b := sort.Search(len(lst), func(k int) bool { return int(h.X[lst[k]]) >= hi })
	if a >= b {
		return 0
	}
	pw := o.prefW[sid]
	total := int(pw[b] - pw[a])
	// Trim boundary overhangs.
	ca := lst[a]
	if int(h.X[ca]) < lo {
		total -= lo - int(h.X[ca])
	}
	cb := lst[b-1]
	if r := int(h.X[cb] + h.W[cb]); r > hi {
		total -= r - hi
	}
	return total
}

// cellsIn returns the placed cells of segment sid (ordered by x).
func (o *occupancy) cellsIn(sid int32) []model.CellID { return o.segs[sid] }

// splitAt returns the index of the first cell in segment sid whose left
// edge is strictly greater than x: cells [0,idx) are "left of x".
func (o *occupancy) splitAt(sid int32, x int) int {
	lst := o.segs[sid]
	return sort.Search(len(lst), func(k int) bool { return int(o.hot.X[lst[k]]) > x })
}

// resort restores x-order of a segment after cells were shifted.
// Shifting by the MGL chain rules preserves order, so this is only used
// defensively by tests.
func (o *occupancy) resort(sid int32) {
	lst := o.segs[sid]
	sort.SliceStable(lst, func(a, b int) bool { return o.hot.X[lst[a]] < o.hot.X[lst[b]] })
}
