package mgl

import (
	"math/rand"
	"testing"

	"mclegal/internal/eval"
	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

func baseTech(nSites, nRows int) model.Tech {
	return model.Tech{SiteW: 10, RowH: 80, NumSites: nSites, NumRows: nRows}
}

func newDesign(nSites, nRows int) *model.Design {
	return &model.Design{
		Name: "test",
		Tech: baseTech(nSites, nRows),
		Types: []model.CellType{
			{Name: "S1", Width: 2, Height: 1},
			{Name: "D2", Width: 3, Height: 2},
			{Name: "T3", Width: 4, Height: 3},
			{Name: "W1", Width: 5, Height: 1},
		},
	}
}

func addCell(d *model.Design, ti model.CellTypeID, gx, gy int, f model.FenceID) model.CellID {
	d.Cells = append(d.Cells, model.Cell{
		Name: "c", Type: ti, Fence: f, GX: gx, GY: gy, X: gx, Y: gy,
	})
	return model.CellID(len(d.Cells) - 1)
}

// refreshHot rebuilds l's SoA view after a test grew or mutated the
// design directly (production code builds the view once, after the
// design is final).
func refreshHot(l *Legalizer) {
	l.hot = model.NewHotCells(l.d)
	l.occ.hot = l.hot
}

func runMGL(t *testing.T, d *model.Design, opt Options) *Legalizer {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid: %v", err)
	}
	l, err := Legalize(d, opt)
	if err != nil {
		t.Fatalf("legalize: %v", err)
	}
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("audit failed: %v (and %d more)", v[0], len(v)-1)
	}
	if l.Stats.Placed != d.MovableCount() {
		t.Fatalf("placed %d of %d cells", l.Stats.Placed, d.MovableCount())
	}
	return l
}

func TestPlaceAtGPWhenFree(t *testing.T) {
	d := newDesign(40, 6)
	addCell(d, 0, 10, 3, 0)
	addCell(d, 1, 20, 2, 0) // even row, double height: already legal
	runMGL(t, d, Options{Workers: 1})
	if d.Cells[0].X != 10 || d.Cells[0].Y != 3 {
		t.Errorf("free cell moved: (%d,%d)", d.Cells[0].X, d.Cells[0].Y)
	}
	if d.Cells[1].X != 20 || d.Cells[1].Y != 2 {
		t.Errorf("double cell moved: (%d,%d)", d.Cells[1].X, d.Cells[1].Y)
	}
}

func TestParityForcesRowChange(t *testing.T) {
	d := newDesign(40, 6)
	id := addCell(d, 1, 10, 3, 0) // double height on odd row: illegal parity
	runMGL(t, d, Options{Workers: 1})
	c := d.Cells[id]
	if c.Y%2 != 0 {
		t.Fatalf("even-height cell on odd row %d", c.Y)
	}
	if c.Y != 2 && c.Y != 4 {
		t.Errorf("expected adjacent even row, got %d", c.Y)
	}
	if c.X != 10 {
		t.Errorf("x should stay 10, got %d", c.X)
	}
}

func TestOverlapResolvedMinimally(t *testing.T) {
	d := newDesign(40, 3)
	a := addCell(d, 0, 10, 1, 0)
	b := addCell(d, 0, 10, 1, 0) // same GP: one must shift by exactly 2 sites
	runMGL(t, d, Options{Workers: 1})
	ca, cb := d.Cells[a], d.Cells[b]
	dist := geom.Abs(ca.X-10) + geom.Abs(ca.Y-1) + geom.Abs(cb.X-10) + geom.Abs(cb.Y-1)
	if dist != 2 {
		t.Errorf("total shift = %d sites, want 2 (a=%+v b=%+v)", dist, ca, cb)
	}
}

func TestInsertionSplitsNeighbors(t *testing.T) {
	// Two cells flank the GP of a third; inserting between them should
	// push both apart rather than displace the target far away.
	d := newDesign(60, 1)
	l := addCell(d, 0, 28, 0, 0) // width 2 at 28..30
	r := addCell(d, 0, 30, 0, 0) // width 2 at 30..32
	m := addCell(d, 0, 29, 0, 0) // wants 29..31
	runMGL(t, d, Options{Workers: 1})
	cm := d.Cells[m]
	if cm.Y != 0 {
		t.Fatalf("target changed rows: %d", cm.Y)
	}
	total := geom.Abs(d.Cells[l].X-28) + geom.Abs(d.Cells[r].X-30) + geom.Abs(cm.X-29)
	// Best achievable: insert at 29 pushing l to 27 and r to 31 => 1+1+0=2,
	// or place target at 26/32 => 3. MGL must find 2.
	if total != 2 {
		t.Errorf("total displacement = %d sites, want 2 (l=%d m=%d r=%d)",
			total, d.Cells[l].X, cm.X, d.Cells[r].X)
	}
}

func TestMultiRowPushAffectsAllRows(t *testing.T) {
	d := newDesign(40, 4)
	// A 2-high cell at x=10 on rows 0-1, and single-row cells right of
	// it in both rows.
	dbl := addCell(d, 1, 10, 0, 0) // 3 wide
	s0 := addCell(d, 0, 13, 0, 0)
	s1 := addCell(d, 0, 13, 1, 0)
	// Target 2-high cell whose GP overlaps dbl: must push or shift.
	tgt := addCell(d, 1, 9, 0, 0)
	runMGL(t, d, Options{Workers: 1})
	_ = s0
	_ = s1
	_ = dbl
	_ = tgt
	// Audit in runMGL already guarantees legality (incl. both rows of
	// the pushed 2-high cells); additionally check the chain kept order.
	if d.Cells[dbl].X < d.Cells[tgt].X && d.Cells[tgt].X < 9 {
		t.Errorf("unexpected arrangement")
	}
}

func TestFenceAssignmentRespected(t *testing.T) {
	d := newDesign(60, 6)
	d.Fences = []model.Fence{{Name: "F", Rects: []geom.Rect{geom.RectWH(20, 2, 10, 2)}}}
	in := addCell(d, 0, 5, 0, 1)   // assigned to fence but GP far outside
	out := addCell(d, 0, 22, 3, 0) // default cell with GP inside fence
	runMGL(t, d, Options{Workers: 1})
	ci, co := d.Cells[in], d.Cells[out]
	fr := geom.RectWH(20, 2, 10, 2)
	if !fr.Contains(geom.RectWH(ci.X, ci.Y, 2, 1)) {
		t.Errorf("fence cell at (%d,%d) outside fence", ci.X, ci.Y)
	}
	if fr.Overlaps(geom.RectWH(co.X, co.Y, 2, 1)) {
		t.Errorf("default cell at (%d,%d) inside fence", co.X, co.Y)
	}
}

func TestWindowGrowthOnDenseRegion(t *testing.T) {
	d := newDesign(100, 1)
	// Fill sites 0..40 solid with width-2 cells, then ask for one more
	// in the middle: it must travel beyond the initial window.
	for x := 0; x < 40; x += 2 {
		addCell(d, 0, x, 0, 0)
	}
	addCell(d, 0, 20, 0, 0)
	runMGL(t, d, Options{Workers: 1})
	// Optimal cost: either the target hops to x=40 (20 sites) or the
	// right half of the block is pushed right by 2 (10 cells * 2 = 20
	// sites). Both are optimal; anything worse is a regression.
	m := eval.Measure(d)
	if m.TotalDispSites != 20 {
		t.Errorf("total displacement = %v sites, want 20", m.TotalDispSites)
	}
}

func TestImpossibleDesignFails(t *testing.T) {
	d := newDesign(10, 1)
	// 6 width-2 cells in a 10-site row: 12 > 10 sites.
	for i := 0; i < 6; i++ {
		addCell(d, 0, 0, 0, 0)
	}
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1})
	if err := l.Run(); err == nil {
		t.Fatalf("over-full design legalized successfully")
	}
}

func TestEdgeSpacingHonored(t *testing.T) {
	d := newDesign(40, 1)
	d.Tech.EdgeSpacing = [][]int{{0, 0}, {0, 2}} // type-1 edges need 2 sites between each other
	d.Types[0].EdgeL, d.Types[0].EdgeR = 1, 1
	a := addCell(d, 0, 10, 0, 0)
	b := addCell(d, 0, 11, 0, 0) // wants to abut a
	runMGL(t, d, Options{Workers: 1})
	ca, cb := d.Cells[a], d.Cells[b]
	lo, hi := ca, cb
	if lo.X > hi.X {
		lo, hi = hi, lo
	}
	if gap := hi.X - (lo.X + 2); gap < 2 {
		t.Errorf("edge spacing violated: gap = %d sites", gap)
	}
}

// fakeRules implements Rules for steering tests.
type fakeRules struct {
	rowBad func(model.CellTypeID, int) bool
	xBad   func(model.CellTypeID, int, int) bool
	pen    func(model.CellTypeID, int, int) int64
}

func (f fakeRules) RowForbidden(ct model.CellTypeID, y int) bool {
	return f.rowBad != nil && f.rowBad(ct, y)
}
func (f fakeRules) XForbidden(ct model.CellTypeID, x, y int) bool {
	return f.xBad != nil && f.xBad(ct, x, y)
}
func (f fakeRules) IOPenalty(ct model.CellTypeID, x, y int) int64 {
	if f.pen == nil {
		return 0
	}
	return f.pen(ct, x, y)
}

func TestRulesRowForbidden(t *testing.T) {
	d := newDesign(40, 5)
	id := addCell(d, 0, 10, 2, 0)
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1, Rules: fakeRules{
		rowBad: func(_ model.CellTypeID, y int) bool { return y == 2 },
	}})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Cells[id].Y == 2 {
		t.Errorf("cell placed on forbidden row")
	}
	if d.Cells[id].Y != 1 && d.Cells[id].Y != 3 {
		t.Errorf("cell should land on an adjacent row, got %d", d.Cells[id].Y)
	}
}

func TestRulesXForbiddenSlides(t *testing.T) {
	d := newDesign(40, 3)
	id := addCell(d, 0, 10, 1, 0)
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1, Rules: fakeRules{
		xBad: func(_ model.CellTypeID, x, _ int) bool { return x >= 9 && x <= 11 },
	}})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	c := d.Cells[id]
	if c.X >= 9 && c.X <= 11 {
		t.Errorf("cell left on forbidden x %d", c.X)
	}
	if c.X != 8 && c.X != 12 {
		t.Errorf("cell should slide to nearest clean site, got %d", c.X)
	}
}

func TestRulesIOPenaltySteers(t *testing.T) {
	d := newDesign(40, 1)
	id := addCell(d, 0, 10, 0, 0)
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	l := New(d, grid, Options{Workers: 1, Rules: fakeRules{
		pen: func(_ model.CellTypeID, x, _ int) int64 {
			if x == 10 {
				return 1000
			}
			return 0
		},
	}})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	// Penalty applies to the whole insertion-point evaluation at its
	// optimum; moving off 10 costs 1*SiteW=10 < 1000, but the penalty
	// is only assessed at the chosen x. The cheapest clean choice is an
	// adjacent x... the insertion evaluator picks minimum curve cost
	// first, so the cell may still sit at 10 only if every insertion
	// point is penalized. With a single insertion point, the penalty
	// cannot re-rank, so just assert legality and placement.
	if d.Cells[id].Y != 0 {
		t.Errorf("row changed unexpectedly")
	}
}

func TestBlockageAvoided(t *testing.T) {
	d := newDesign(40, 3)
	d.Blockages = []geom.Rect{geom.RectWH(8, 1, 6, 1)}
	id := addCell(d, 0, 10, 1, 0) // GP inside blockage
	runMGL(t, d, Options{Workers: 1})
	c := d.Cells[id]
	if geom.RectWH(8, 1, 6, 1).Overlaps(geom.RectWH(c.X, c.Y, 2, 1)) {
		t.Errorf("cell overlaps blockage: (%d,%d)", c.X, c.Y)
	}
}

func randomDesign(rng *rand.Rand, nSites, nRows, nCells int, withFence bool) *model.Design {
	d := newDesign(nSites, nRows)
	fenceArea := 0
	var fence geom.Rect
	if withFence {
		fw, fh := 12+rng.Intn(8), 3+rng.Intn(3)
		fx, fy := rng.Intn(nSites-fw), rng.Intn(nRows-fh)
		fence = geom.RectWH(fx, fy, fw, fh)
		d.Fences = []model.Fence{{Name: "F", Rects: []geom.Rect{fence}}}
		fenceArea = fw * fh * 2 / 5
	}
	fenceUsed := 0
	for i := 0; i < nCells; i++ {
		ti := model.CellTypeID(rng.Intn(len(d.Types)))
		ct := d.Types[ti]
		gx := rng.Intn(nSites - ct.Width)
		gy := rng.Intn(nRows - ct.Height)
		f := model.FenceID(0)
		// Assign to the fence only if the cell fits and capacity allows.
		if withFence && rng.Intn(8) == 0 && ct.Height < fence.H() &&
			fenceUsed+ct.Width*ct.Height <= fenceArea {
			f = 1
			fenceUsed += ct.Width * ct.Height
		}
		addCell(d, ti, gx, gy, f)
	}
	return d
}

func TestRandomizedLegality(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		nSites, nRows := 60+rng.Intn(60), 8+rng.Intn(8)
		// Keep utilization moderate so instances stay feasible.
		nCells := nSites * nRows / 12
		d := randomDesign(rng, nSites, nRows, nCells, trial%3 == 0)
		runMGL(t, d, Options{Workers: 1})
	}
}

func TestRandomizedLegalityWithSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		d := randomDesign(rng, 100, 10, 60, false)
		d.Tech.EdgeSpacing = [][]int{{0, 1}, {1, 1}}
		for i := range d.Types {
			d.Types[i].EdgeL = uint8(i % 2)
			d.Types[i].EdgeR = uint8((i + 1) % 2)
		}
		runMGL(t, d, Options{Workers: 1})
		// Verify spacing directly.
		for i := range d.Cells {
			for j := range d.Cells {
				if i == j {
					continue
				}
				a, b := &d.Cells[i], &d.Cells[j]
				ra := d.CellRect(model.CellID(i))
				rb := d.CellRect(model.CellID(j))
				if !ra.YIv().Overlaps(rb.YIv()) || ra.XLo >= rb.XLo {
					continue
				}
				need := d.Tech.Spacing(d.Types[a.Type].EdgeR, d.Types[b.Type].EdgeL)
				if rb.XLo-ra.XHi < need && rb.XLo >= ra.XHi {
					t.Fatalf("trial %d: spacing %d < %d between cells %d,%d",
						trial, rb.XLo-ra.XHi, need, i, j)
				}
			}
		}
	}
}

func TestParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 6; trial++ {
		d1 := randomDesign(rng, 120, 12, 110, trial%2 == 0)
		d2 := d1.Clone()
		d3 := d1.Clone()
		runMGL(t, d1, Options{Workers: 1})
		runMGL(t, d2, Options{Workers: 4})
		runMGL(t, d3, Options{Workers: 4})
		for i := range d2.Cells {
			if d2.Cells[i].X != d3.Cells[i].X || d2.Cells[i].Y != d3.Cells[i].Y {
				t.Fatalf("trial %d: parallel runs disagree at cell %d", trial, i)
			}
		}
	}
}

func TestParallelLegality(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		d := randomDesign(rng, 150, 14, 160, trial%2 == 0)
		runMGL(t, d, Options{Workers: 4, BatchCap: 8})
	}
}

func TestOrderPolicies(t *testing.T) {
	for _, pol := range []OrderPolicy{TallestFirst, GPLeftToRight, WidestAreaFirst} {
		d := newDesign(60, 6)
		addCell(d, 0, 30, 2, 0)
		addCell(d, 2, 10, 1, 0)
		addCell(d, 1, 20, 2, 0)
		addCell(d, 3, 40, 5, 0)
		grid, err := seg.Build(d)
		if err != nil {
			t.Fatal(err)
		}
		l := New(d, grid, Options{Workers: 1, Order: pol})
		order := l.Order()
		if len(order) != 4 {
			t.Fatalf("order length %d", len(order))
		}
		switch pol {
		case TallestFirst:
			if order[0] != 1 { // the 3-high cell
				t.Errorf("TallestFirst order = %v", order)
			}
		case GPLeftToRight:
			if order[0] != 1 || order[3] != 3 {
				t.Errorf("GPLeftToRight order = %v", order)
			}
		case WidestAreaFirst:
			if order[0] != 1 { // area 12 is largest
				t.Errorf("WidestAreaFirst order = %v", order)
			}
		}
		if err := l.Run(); err != nil {
			t.Fatalf("policy %d: %v", pol, err)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	d := newDesign(40, 4)
	addCell(d, 0, 5, 1, 0)
	addCell(d, 0, 7, 2, 0)
	l := runMGL(t, d, Options{Workers: 1})
	if l.Stats.Placed != 2 {
		t.Errorf("Stats.Placed = %d", l.Stats.Placed)
	}
}

func TestMeasureAfterMGL(t *testing.T) {
	d := newDesign(40, 3)
	addCell(d, 0, 10, 1, 0)
	addCell(d, 0, 10, 1, 0)
	runMGL(t, d, Options{Workers: 1})
	m := eval.Measure(d)
	// One cell stays, the other moves 2 sites = 20 DBU = 0.25 rows.
	if m.TotalDispDBU != 20 {
		t.Errorf("TotalDispDBU = %d, want 20", m.TotalDispDBU)
	}
	if m.MaxDisp != 0.25 {
		t.Errorf("MaxDisp = %v, want 0.25", m.MaxDisp)
	}
	if m.MovedCells != 1 {
		t.Errorf("MovedCells = %d", m.MovedCells)
	}
}
