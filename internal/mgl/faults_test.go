package mgl

import (
	"errors"
	"strings"
	"testing"

	"mclegal/internal/faults"
	"mclegal/internal/seg"
)

// faultLegalizer builds a fresh n-cell legalizer per call so armed
// injectors never leak between runs.
func faultLegalizer(t *testing.T, n int) func(opt Options) *Legalizer {
	t.Helper()
	d := newDesign(80, 8)
	for i := 0; i < n; i++ {
		addCell(d, 0, (7*i)%70, i%6, 0)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return func(opt Options) *Legalizer {
		dd := d.Clone()
		grid, err := seg.Build(dd)
		if err != nil {
			t.Fatal(err)
		}
		return New(dd, grid, opt)
	}
}

// An injected panic inside an evaluation worker is recovered into a
// typed *WorkerPanicError — the process survives, the error names the
// cell and carries a stack.
func TestWorkerPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		mk := faultLegalizer(t, 30)
		l := mk(Options{Workers: workers, Faults: faults.New().Arm(faults.MGLWorkerPanic)})
		err := l.Run()
		var wp *WorkerPanicError
		if !errors.As(err, &wp) {
			t.Fatalf("workers=%d: err = %T %v, want *WorkerPanicError", workers, err, err)
		}
		if len(wp.Stack) == 0 || wp.Value == nil {
			t.Errorf("workers=%d: incomplete panic error %+v", workers, wp)
		}
		if !strings.Contains(wp.Error(), "worker panic") {
			t.Errorf("workers=%d: error text %q", workers, wp.Error())
		}
	}
}

// With every evaluation panicking, the reported cell is the lowest
// batch index regardless of worker count: first panic wins
// deterministically.
func TestWorkerPanicDeterministic(t *testing.T) {
	report := func(workers int) *WorkerPanicError {
		mk := faultLegalizer(t, 30)
		l := mk(Options{Workers: workers, Faults: faults.New().ArmN(faults.MGLWorkerPanic, 0, -1)})
		err := l.Run()
		var wp *WorkerPanicError
		if !errors.As(err, &wp) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		return wp
	}
	a, b := report(1), report(8)
	if a.Cell != b.Cell {
		t.Errorf("panic attribution depends on workers: cell %d vs %d", a.Cell, b.Cell)
	}
}

// The injected insert-outside fault surfaces as a typed *InsertError
// with the offending cell's placement recorded.
func TestInsertOutsideTypedError(t *testing.T) {
	mk := faultLegalizer(t, 10)
	l := mk(Options{Workers: 1, Faults: faults.New().Arm(faults.MGLInsertOutside)})
	err := l.Run()
	var ie *InsertError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T %v, want *InsertError", err, err)
	}
	if ie.Name == "" || !strings.Contains(ie.Error(), "outside any segment") {
		t.Errorf("insert error incomplete: %v", ie)
	}
}

func TestTypedErrorStrings(t *testing.T) {
	ie := &InfeasibleError{Cell: 3, Name: "u3", Fence: 1}
	if !strings.Contains(ie.Error(), "u3") || !strings.Contains(ie.Error(), "fence 1") {
		t.Errorf("infeasible error text %q", ie.Error())
	}
	we := &WorkerPanicError{Cell: 7, Value: "boom"}
	if !strings.Contains(we.Error(), "boom") {
		t.Errorf("worker panic text %q", we.Error())
	}
}
