package mgl

import (
	"runtime"

	"mclegal/internal/faults"
	"mclegal/internal/model"
)

// Rules is the routability hook MGL consults while inserting cells.
// The route package provides the paper's Section 3.4 implementation; a
// nil Rules disables all routability handling.
type Rules interface {
	// RowForbidden reports whether placing a cell of the given type
	// with its bottom edge on row y would short a pin against a
	// horizontal P/G rail (such insertion rows are skipped entirely).
	RowForbidden(ct model.CellTypeID, y int) bool
	// XForbidden reports whether placing the cell at site x, bottom
	// row y overlaps a signal pin with a vertical P/G stripe. MGL
	// slides to the nearest clean site.
	XForbidden(ct model.CellTypeID, x, y int) bool
	// IOPenalty returns an additive DBU cost for placing the cell at
	// (x,y), used to penalize positions whose pins overlap IO pins.
	IOPenalty(ct model.CellTypeID, x, y int) int64
}

// OrderPolicy selects the order in which MGL legalizes cells.
type OrderPolicy int

const (
	// TallestFirst orders by decreasing height, then by GP x, then ID.
	// Tall cells have the fewest candidate positions, so placing them
	// early avoids late large displacements. This is the default.
	TallestFirst OrderPolicy = iota
	// GPLeftToRight orders by GP x only (Abacus-style sweeps).
	GPLeftToRight
	// WidestAreaFirst orders by decreasing cell area.
	WidestAreaFirst
)

// Options configures a Legalizer.
type Options struct {
	// Order is the cell legalization order policy.
	Order OrderPolicy
	// WindowW and WindowH are the initial window half-extents in sites
	// and rows. Zero means automatic (derived from the cell size).
	WindowW, WindowH int
	// GrowFactor multiplies the window extents after a failed
	// insertion. Zero means 2.
	GrowFactor int
	// MaxChain bounds the number of movable cells per push chain; the
	// chain is cut with a barrier beyond it. Zero means 48.
	MaxChain int
	// Workers is the number of parallel evaluation threads (Section
	// 3.5). Zero means GOMAXPROCS. Workers only bounds concurrency:
	// batch composition and commit order are worker-independent, so
	// the result is byte-identical for every worker count.
	Workers int
	// BatchCap is the capacity of the scheduler's processing list L_p.
	// It shapes batch composition and therefore the (deterministic)
	// result; the default is a constant — not derived from Workers —
	// so results do not depend on the machine's core count. Zero
	// means 32.
	BatchCap int
	// Rules is the optional routability hook.
	Rules Rules
	// QualityGrowths bounds how many times a window is grown *after* a
	// feasible insertion was already found, chasing a cheaper position
	// that might lie outside: growth continues while the best in-window
	// cost exceeds the cost of reaching the window edge (so a better
	// slot could exist beyond it). 0 means 2; negative disables
	// quality-driven growth (first feasible window wins).
	QualityGrowths int
	// PruneSlackRows controls the row-pruning heuristic: candidate rows
	// are scanned outward from the GP row, and scanning stops once the
	// y-displacement cost alone exceeds the best found cost plus this
	// many row heights. The slack absorbs the (rare) negative
	// incremental costs of pushing displaced cells back toward their GP
	// positions. 0 means 16; negative disables pruning (exhaustive
	// evaluation, the paper's literal procedure).
	PruneSlackRows int
	// DebugAfterBatch, when set, is called after each batch commit
	// with the cells actually placed by the batch; returning false
	// aborts the run. Intended for tests and debugging (e.g.
	// cancelling a context mid-run at a deterministic point). The
	// slice is reused between batches: copy it if you keep it.
	DebugAfterBatch func(placed []model.CellID) bool
	// Faults is the optional fault-injection harness; armed points
	// (faults.MGLWorkerPanic, faults.MGLInsertOutside) force failures
	// at deterministic spots. Nil disables injection.
	Faults *faults.Injector
	// CostFromCurrent makes local-cell displacement curves measure from
	// the cells' *current* positions instead of their GP positions.
	// This reproduces the MLL baseline (reference [12]) whose curves
	// are only of types A and B; costs then accumulate over successive
	// insertions exactly as paper Figure 3 illustrates. Leave false for
	// MGL.
	CostFromCurrent bool
}

func (o Options) withDefaults() Options {
	if o.GrowFactor < 2 {
		o.GrowFactor = 2
	}
	if o.MaxChain <= 0 {
		o.MaxChain = 48
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BatchCap <= 0 {
		o.BatchCap = 32
	}
	if o.PruneSlackRows == 0 {
		o.PruneSlackRows = 8
	}
	if o.QualityGrowths == 0 {
		o.QualityGrowths = 2
	}
	return o
}
