package mgl

import (
	"fmt"

	"mclegal/internal/model"
)

// InsertError reports a commit that tried to register a cell outside
// any segment of the grid — an internal inconsistency between the plan
// and the segmentation, surfaced as an error instead of a panic so the
// pipeline can roll the stage back.
type InsertError struct {
	Cell model.CellID
	Name string
	X, Y int
	Row  int // the spanned row with no segment under the cell
}

func (e *InsertError) Error() string {
	return fmt.Sprintf("mgl: cell %q (%d) at (%d,%d) outside any segment of row %d",
		e.Name, e.Cell, e.X, e.Y, e.Row)
}

// InfeasibleError reports a cell with no feasible position anywhere in
// its fence region: the instance (or the fence assignment) is overfull.
type InfeasibleError struct {
	Cell  model.CellID
	Name  string
	Fence model.FenceID
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("mgl: cell %q (%d) cannot be legalized: no feasible position in fence %d",
		e.Name, e.Cell, e.Fence)
}

// WorkerPanicError reports a panic recovered inside an evaluation
// worker: the panic value, the cell whose window was being evaluated,
// and the worker's stack at the point of the panic. The batch run that
// observed it fails with this error instead of crashing the process.
type WorkerPanicError struct {
	Cell  model.CellID
	Value any
	Stack []byte
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("mgl: worker panic evaluating cell %d: %v", e.Cell, e.Value)
}
