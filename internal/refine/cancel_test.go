package refine

import (
	"context"
	"errors"
	"testing"

	"mclegal/internal/eval"
)

// Refinement writes positions only after a completed min-cost-flow
// solve, so a cancelled context must leave the design exactly as it
// entered: legal and byte-for-byte unmoved.
func TestCancelLeavesDesignUntouched(t *testing.T) {
	d := newDesign(40, 2)
	a := place(d, 0, 5, 0, 10, 0)
	b := place(d, 0, 20, 0, 25, 0)
	grid := mustGrid(t, d)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := OptimizeContext(ctx, d, grid, Options{Weights: WeightUniform})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if d.Cells[a].X != 10 || d.Cells[b].X != 25 {
		t.Errorf("cells moved under a pre-cancelled context: %d, %d",
			d.Cells[a].X, d.Cells[b].X)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Errorf("cancelled refine broke legality: %v", v[0])
	}
}
