package refine

import (
	"math/rand"
	"testing"

	"mclegal/internal/eval"
	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

func newDesign(nSites, nRows int) *model.Design {
	return &model.Design{
		Name: "t",
		Tech: model.Tech{SiteW: 10, RowH: 80, NumSites: nSites, NumRows: nRows},
		Types: []model.CellType{
			{Name: "S", Width: 2, Height: 1},
			{Name: "D", Width: 3, Height: 2},
		},
	}
}

func place(d *model.Design, ti model.CellTypeID, gx, gy, x, y int) model.CellID {
	d.Cells = append(d.Cells, model.Cell{Name: "c", Type: ti, GX: gx, GY: gy, X: x, Y: y})
	return model.CellID(len(d.Cells) - 1)
}

func mustGrid(t *testing.T, d *model.Design) *seg.Grid {
	t.Helper()
	g, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func optimize(t *testing.T, d *model.Design, opt Options) Report {
	t.Helper()
	grid := mustGrid(t, d)
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("precondition: %v", v[0])
	}
	rep, err := Optimize(d, grid, opt)
	if err != nil {
		t.Fatalf("refine: %v", err)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("refine broke legality: %v", v[0])
	}
	return rep
}

func TestReturnsToGPWithSlack(t *testing.T) {
	d := newDesign(40, 2)
	a := place(d, 0, 5, 0, 10, 0)
	b := place(d, 0, 20, 0, 25, 0)
	rep := optimize(t, d, Options{Weights: WeightUniform})
	if d.Cells[a].X != 5 || d.Cells[b].X != 20 {
		t.Errorf("cells not returned to GP: %d, %d", d.Cells[a].X, d.Cells[b].X)
	}
	if rep.Moved != 2 {
		t.Errorf("Moved = %d", rep.Moved)
	}
}

func TestOverlappingGPsSplitOptimally(t *testing.T) {
	d := newDesign(40, 1)
	// Both want x=10 (width 2); legal optimum costs 2 sites total.
	a := place(d, 0, 10, 0, 4, 0)
	b := place(d, 0, 10, 0, 20, 0)
	optimize(t, d, Options{Weights: WeightUniform})
	ca, cb := d.Cells[a].X, d.Cells[b].X
	total := geom.Abs(ca-10) + geom.Abs(cb-10)
	if total != 2 {
		t.Errorf("total = %d sites, want 2 (a=%d b=%d)", total, ca, cb)
	}
	if ca+2 > cb {
		t.Errorf("order violated: %d, %d", ca, cb)
	}
}

func TestRowsAndOrderFixed(t *testing.T) {
	d := newDesign(60, 4)
	ids := []model.CellID{
		place(d, 0, 30, 1, 5, 1),
		place(d, 0, 2, 1, 10, 1),
		place(d, 1, 40, 2, 20, 2),
	}
	ysBefore := []int{1, 1, 2}
	optimize(t, d, Options{Weights: WeightUniform})
	for k, id := range ids {
		if d.Cells[id].Y != ysBefore[k] {
			t.Errorf("cell %d changed row", id)
		}
	}
	// Order in row 1 must be preserved even though GPs are inverted.
	if d.Cells[ids[0]].X+2 > d.Cells[ids[1]].X {
		t.Errorf("order broken: %d vs %d", d.Cells[ids[0]].X, d.Cells[ids[1]].X)
	}
}

func TestMultiRowNeighborConstraints(t *testing.T) {
	d := newDesign(40, 2)
	// A double-height cell with single-row neighbors in both rows, all
	// pulled toward the same GP region.
	dd := place(d, 1, 10, 0, 10, 0) // 3 wide, rows 0-1
	s0 := place(d, 0, 10, 0, 15, 0) // row 0, wants to sit on the double cell
	s1 := place(d, 0, 11, 1, 20, 1) // row 1
	optimize(t, d, Options{Weights: WeightUniform})
	if d.Cells[s0].X < d.Cells[dd].X+3 {
		t.Errorf("row-0 neighbor overlaps double cell")
	}
	if d.Cells[s1].X < d.Cells[dd].X+3 {
		t.Errorf("row-1 neighbor overlaps double cell")
	}
}

func TestRangesRespected(t *testing.T) {
	d := newDesign(40, 1)
	a := place(d, 0, 5, 0, 12, 0)
	optimize(t, d, Options{
		Weights: WeightUniform,
		Ranges: func(id model.CellID) (int, int, bool) {
			return 10, 30, true
		},
	})
	if d.Cells[a].X != 10 {
		t.Errorf("range ignored: x=%d, want clamp at 10", d.Cells[a].X)
	}
}

func TestRangeWidenedToCurrentPosition(t *testing.T) {
	d := newDesign(40, 1)
	a := place(d, 0, 5, 0, 12, 0)
	// Provider excludes the current x entirely; refine must stay
	// feasible by widening.
	optimize(t, d, Options{
		Weights: WeightUniform,
		Ranges: func(id model.CellID) (int, int, bool) {
			return 20, 30, true
		},
	})
	if d.Cells[a].X > 12 {
		t.Errorf("x=%d worse than start", d.Cells[a].X)
	}
}

// Figure 5 reproduction: the 3-cell example (two single-row cells, one
// double-row cell). The base network must have m+1 vertices and
// 2m+|C_L|+|C_R|+|E| edges with C_L=C_R=C; the extension adds v_p, v_n
// and 2m+2 arcs.
func TestFigure5FlowGraph(t *testing.T) {
	build := func(n0 int64) (*model.Design, Report) {
		d := newDesign(40, 2)
		place(d, 0, 2, 0, 2, 0)  // c1 single-row
		place(d, 0, 2, 1, 2, 1)  // c2 single-row
		place(d, 1, 10, 0, 8, 0) // c3 double-row, neighbor of both
		grid := mustGrid(t, d)
		rep, err := Optimize(d, grid, Options{Weights: WeightUniform, MaxDispWeight: n0})
		if err != nil {
			t.Fatal(err)
		}
		return d, rep
	}
	_, rep := build(0)
	m := 3
	if rep.Edges != 2 { // c1->c3 and c2->c3
		t.Fatalf("|E| = %d, want 2", rep.Edges)
	}
	if rep.Nodes != m+1 {
		t.Errorf("base nodes = %d, want %d", rep.Nodes, m+1)
	}
	if want := 4*m + rep.Edges; rep.Arcs != want {
		t.Errorf("base arcs = %d, want %d", rep.Arcs, want)
	}
	_, rep = build(5)
	if rep.Nodes != m+3 {
		t.Errorf("extended nodes = %d, want %d", rep.Nodes, m+3)
	}
	if want := 4*m + rep.Edges + 2*m + 2; rep.Arcs != want {
		t.Errorf("extended arcs = %d, want %d", rep.Arcs, want)
	}
}

// objective recomputes the paper's Eq. (8) objective (in site units)
// exactly as refine encodes it.
func objective(d *model.Design, n0 int64, weights []int64) int64 {
	var total int64
	var maxP, maxN int64
	var maxDy int64
	for i := range d.Cells {
		c := &d.Cells[i]
		dx := int64(c.X - c.GX)
		dy := int64(geom.Abs(c.Y-c.GY)) * int64(d.Tech.RowH) / int64(d.Tech.SiteW)
		if dy > maxDy {
			maxDy = dy
		}
		a := dx
		if a < 0 {
			a = -a
		}
		total += weights[i] * a
		p := dy
		if dx > 0 {
			p += dx
		}
		if p > maxP {
			maxP = p
		}
		nn := dy
		if dx < 0 {
			nn -= dx
		}
		if nn > maxN {
			maxN = nn
		}
	}
	if maxP < maxDy {
		maxP = maxDy
	}
	if maxN < maxDy {
		maxN = maxDy
	}
	return total + n0*(maxP+maxN)
}

// Brute-force cross-check of the full formulation (including the
// maximum-displacement extension) on random single-row instances.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 120; trial++ {
		nSites := 10 + rng.Intn(5)
		d := newDesign(nSites, 3)
		n := 1 + rng.Intn(3)
		// Non-overlapping initial placement in row 1, random GPs
		// (possibly on other rows to exercise δ_y).
		x := 0
		for i := 0; i < n; i++ {
			x += rng.Intn(3)
			if x+2 > nSites {
				break
			}
			place(d, 0, rng.Intn(nSites-2), rng.Intn(3), x, 1)
			x += 2
		}
		if len(d.Cells) == 0 {
			continue
		}
		n = len(d.Cells)
		n0 := int64(rng.Intn(3)) // 0 disables the extension
		opt := Options{Weights: WeightUniform, MaxDispWeight: n0}

		weights := make([]int64, n)
		for i := range weights {
			weights[i] = 1
		}

		// Brute force over all order-preserving x assignments.
		best := int64(1) << 60
		var rec func(i, minX int)
		xs := make([]int, n)
		// Cells were appended left to right, so index order is row order.
		rec = func(i, minX int) {
			if i == n {
				for k := range xs {
					d.Cells[k].X = xs[k]
				}
				if v := objective(d, n0, weights); v < best {
					best = v
				}
				return
			}
			for xx := minX; xx+2*(n-i) <= nSites; xx++ {
				xs[i] = xx
				rec(i+1, xx+2)
			}
		}
		snapshot := d.SnapshotXY()
		rec(0, 0)
		d.RestoreXY(snapshot)

		grid := mustGrid(t, d)
		if _, err := Optimize(d, grid, opt); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := objective(d, n0, weights)
		if got != best {
			t.Fatalf("trial %d: refine objective %d != brute force %d (n=%d n0=%d)",
				trial, got, best, n, n0)
		}
	}
}

// Height-averaged weights must favor the rare-height class.
func TestHeightAverageWeights(t *testing.T) {
	d := newDesign(60, 4)
	// Many single-height cells and one double-height cell compete for
	// the same spot; with Eq. (2) weights the double (rare) cell
	// dominates per-cell, so it should stay nearer its GP.
	dd := place(d, 1, 20, 0, 20, 0)
	for i := 0; i < 8; i++ {
		place(d, 0, 23, 0, 23+2*i, 0)
	}
	optimize(t, d, Options{Weights: WeightHeightAverage})
	if geom.Abs(d.Cells[dd].X-20) > 1 {
		t.Errorf("rare-height cell displaced by %d sites", geom.Abs(d.Cells[dd].X-20))
	}
}

func TestEmptyDesign(t *testing.T) {
	d := newDesign(20, 2)
	rep := optimize(t, d, Options{})
	if rep.Nodes != 0 || rep.Moved != 0 {
		t.Errorf("empty design produced work: %+v", rep)
	}
}

func TestBlockageSplitsConstraints(t *testing.T) {
	d := newDesign(40, 1)
	d.Blockages = []geom.Rect{geom.RectWH(18, 0, 4, 1)}
	a := place(d, 0, 30, 0, 10, 0) // left of blockage, wants right
	b := place(d, 0, 5, 0, 25, 0)  // right of blockage, wants left
	optimize(t, d, Options{Weights: WeightUniform})
	// Each clamps against its side of the blockage.
	if d.Cells[a].X != 16 {
		t.Errorf("a.X = %d, want 16 (clamped at blockage)", d.Cells[a].X)
	}
	if d.Cells[b].X != 22 {
		t.Errorf("b.X = %d, want 22", d.Cells[b].X)
	}
}
