package refine

import (
	"context"
	"math/rand"
	"testing"

	"mclegal/internal/mcf"
)

// The report must describe the solver's behaviour: the concrete pivot
// rule, one warm/cold counter per solve, and a solve-time figure.
func TestReportSolverCounters(t *testing.T) {
	d := newDesign(60, 2)
	place(d, 0, 5, 0, 10, 0)
	place(d, 0, 20, 0, 25, 0)
	place(d, 0, 40, 1, 44, 1)
	rep := optimize(t, d, Options{Weights: WeightUniform})
	if rep.Rule != mcf.FirstEligible {
		t.Errorf("rule = %v, want FirstEligible (small instance under Auto)", rep.Rule)
	}
	if rep.WarmHits != 0 || rep.WarmMisses != 1 {
		t.Errorf("warm counters = %d/%d, want 0 hits / 1 miss on a private solver", rep.WarmHits, rep.WarmMisses)
	}
	if rep.SolveNs < 0 {
		t.Errorf("SolveNs = %d, want >= 0", rep.SolveNs)
	}
}

// A caller-provided Solver is reused across refinement runs: the
// second run on the same design has the same network shape and must
// warm-start; since the first run already reached the optimum, the
// warm run makes no moves.
func TestSolverReuseAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := newDesign(300, 4)
	x := 0
	for i := 0; i < 40; i++ {
		w := 2 // type 0 width
		x += w + rng.Intn(4)
		if x+w >= 300 {
			break
		}
		place(d, 0, x-rng.Intn(5), i%4, x, i%4)
	}
	grid := mustGrid(t, d)
	sv := mcf.NewSolver()
	opt := Options{Weights: WeightUniform, Solver: sv}
	rep1, err := OptimizeContext(context.Background(), d, grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.WarmMisses != 1 || rep1.WarmHits != 0 {
		t.Fatalf("first run counters = %+v, want a single cold solve", rep1)
	}
	rep2, err := OptimizeContext(context.Background(), d, grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.WarmHits != 1 || rep2.WarmMisses != 0 {
		t.Fatalf("second run counters = %+v, want a single warm solve", rep2)
	}
	if rep2.Moved != 0 {
		t.Errorf("second run moved %d cells; the first run's optimum should be stable", rep2.Moved)
	}
	st := sv.Stats()
	if st.ColdSolves != 1 || st.WarmSolves != 1 {
		t.Errorf("solver stats = %+v, want 1 cold / 1 warm", st)
	}
}

// An explicit pivot rule is honored and reported; every rule reaches
// the same optimal objective (positions may differ among ties, the
// audit in optimize covers legality).
func TestExplicitPivotRules(t *testing.T) {
	for _, rule := range []mcf.PivotRule{mcf.FirstEligible, mcf.BlockSearch, mcf.CandidateList} {
		d := newDesign(80, 2)
		place(d, 0, 5, 0, 10, 0)
		place(d, 0, 20, 0, 25, 0)
		place(d, 0, 50, 1, 41, 1)
		rep := optimize(t, d, Options{Weights: WeightUniform, Rule: rule})
		if rep.Rule != rule {
			t.Errorf("rule %v: report says %v", rule, rep.Rule)
		}
		if d.Cells[0].X != 5 || d.Cells[1].X != 20 || d.Cells[2].X != 50 {
			t.Errorf("rule %v: cells not at GP: %d,%d,%d", rule,
				d.Cells[0].X, d.Cells[1].X, d.Cells[2].X)
		}
	}
}
