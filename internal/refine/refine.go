// Package refine implements the paper's fixed-row and fixed-order
// optimization (Section 3.3): with every cell pinned to its rows and
// every row's cell order frozen, the legal x-coordinates minimizing a
// weighted sum of average and maximum displacement are found by solving
// the dual min-cost-flow of LP (4)/(8).
//
// The flow network follows the paper's compact construction: one vertex
// per cell plus the auxiliary v_z (and v_p, v_n when the
// maximum-displacement extension is enabled); the optimal node
// potentials are directly the legal x-coordinates.
package refine

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"time"

	"mclegal/internal/faults"
	"mclegal/internal/geom"
	"mclegal/internal/mcf"
	"mclegal/internal/model"
	"mclegal/internal/seg"
)

// WeightMode selects the per-cell displacement weights n_i.
type WeightMode int

const (
	// WeightHeightAverage sets n_i proportional to 1/|C_h|, matching
	// the contest metric S_am of Eq. (2). This is the paper's setting.
	WeightHeightAverage WeightMode = iota
	// WeightUniform sets n_i = 1, optimizing total displacement (the
	// Table 2 configuration and the setting of reference [13]).
	WeightUniform
)

// Options configures the refinement.
type Options struct {
	// Weights selects n_i.
	Weights WeightMode
	// MaxDispWeight is n_0, the weight of the maximum-displacement
	// terms; 0 disables the extension (pure total/average objective).
	MaxDispWeight int64
	// Ranges optionally narrows the feasible x-range of a cell (left
	// edge, in sites) below its segment span; the routability stage
	// uses it to keep pins off rails (Section 3.4, C_L = C_R = C). The
	// returned range is widened if needed to include the current x.
	Ranges func(id model.CellID) (lo, hi int, ok bool)
	// Faults is the optional fault-injection harness; the armed
	// faults.RefineInfeasible point reports min-cost-flow
	// infeasibility instead of solving. Nil disables injection.
	Faults *faults.Injector
	// Rule selects the simplex pivot rule. The zero value is mcf.Auto,
	// which picks FirstEligible (the paper's rule) or CandidateList by
	// instance size — deterministic, since the network is a function of
	// the design.
	Rule mcf.PivotRule
	// Solver, when non-nil, is reused across calls: scratch arrays are
	// kept and a same-shape network (e.g. the ECO loop re-refining the
	// same cells) warm-starts from the previous optimal basis. Nil
	// solves with a private solver.
	Solver *mcf.Solver
}

// Report describes the solved flow problem.
type Report struct {
	// Nodes and Arcs are the flow-network sizes (paper: m+1 vertices,
	// 2m+|C_L|+|C_R|+|E| edges for the base formulation).
	Nodes, Arcs int
	// Pivots is the simplex pivot count.
	Pivots int
	// Edges is |E|, the number of neighbor constraints.
	Edges int
	// Moved is the number of cells whose x changed.
	Moved int
	// Rule is the concrete pivot rule of the solve (Auto resolved).
	// Across a sharded run it is the last shard's rule.
	Rule mcf.PivotRule
	// WarmHits and WarmMisses count solves that warm-started from a
	// reused solver basis vs solved cold; sharded runs sum them.
	WarmHits, WarmMisses int
	// SolveNs is wall-clock nanoseconds inside the simplex solve
	// (observability only — never feeds back into placement).
	SolveNs int64
}

// Optimize shifts cells horizontally (rows and order unchanged) to the
// optimum of the configured objective. The design must be legal on
// entry and stays legal on success.
//
//mclegal:writes design.xy refinement rewrites x coordinates from the completed flow solution
func Optimize(d *model.Design, grid *seg.Grid, opt Options) (Report, error) {
	return OptimizeContext(context.Background(), d, grid, opt)
}

// OptimizeContext is Optimize under a context. Cancellation is checked
// before the network is built and again before the simplex solve; cell
// positions are only written after a completed solve, so a cancelled
// run leaves the design exactly as it was (legal) on entry.
//
//mclegal:writes design.xy refinement rewrites x coordinates from the completed flow solution
func OptimizeContext(ctx context.Context, d *model.Design, grid *seg.Grid, opt Options) (Report, error) {
	var rep Report
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	// Movable cell indexing.
	var ids []model.CellID
	for i := range d.Cells {
		if !d.Cells[i].Fixed {
			ids = append(ids, model.CellID(i))
		}
	}
	m := len(ids)
	if m == 0 {
		return rep, nil
	}

	// Weights n_i.
	weights := make([]int64, m)
	switch opt.Weights {
	case WeightUniform:
		for k := range weights {
			weights[k] = 1
		}
	default:
		counts := map[int]int{}
		for _, id := range ids {
			counts[d.Types[d.Cells[id].Type].Height]++
		}
		for k, id := range ids {
			h := d.Types[d.Cells[id].Type].Height
			w := int64(4*m) / int64(counts[h])
			if w < 1 {
				w = 1
			}
			weights[k] = w
		}
	}

	// Neighbor constraints E: consecutive movable cells per row, with
	// the gap inflated by the edge-spacing rule (the paper's "filler"
	// treatment).
	type edge struct {
		i, j int
		gap  int64
	}
	edgeKey := func(i, j int) int64 { return int64(i)*int64(m) + int64(j) }
	edgeGap := make(map[int64]int64)
	rows := make([][]int, d.Tech.NumRows)
	for k, id := range ids {
		c := &d.Cells[id]
		h := d.Types[c.Type].Height
		for r := c.Y; r < c.Y+h; r++ {
			rows[r] = append(rows[r], k)
		}
	}
	for r := range rows {
		lst := rows[r]
		sort.Slice(lst, func(a, b int) bool {
			ca, cb := &d.Cells[ids[lst[a]]], &d.Cells[ids[lst[b]]]
			if ca.X != cb.X {
				return ca.X < cb.X
			}
			return lst[a] < lst[b]
		})
		for p := 1; p < len(lst); p++ {
			i, j := lst[p-1], lst[p]
			ci, cj := &d.Cells[ids[i]], &d.Cells[ids[j]]
			// Only cells in the same segment constrain each other; a
			// blockage between them is encoded in their ranges.
			si, okI := grid.At(r, ci.X)
			sj, okJ := grid.At(r, cj.X)
			if !okI || !okJ || si.ID != sj.ID {
				continue
			}
			ti, tj := &d.Types[ci.Type], &d.Types[cj.Type]
			gap := int64(ti.Width) + int64(d.Tech.Spacing(ti.EdgeR, tj.EdgeL))
			if old, ok := edgeGap[edgeKey(i, j)]; !ok || gap > old {
				edgeGap[edgeKey(i, j)] = gap
			}
		}
	}
	// Iterate edgeGap in sorted key order: the key i*m+j orders edges by
	// (i, j), so the edge list is deterministic without a second sort.
	edgeKeys := make([]int64, 0, len(edgeGap))
	for k := range edgeGap {
		edgeKeys = append(edgeKeys, k)
	}
	slices.Sort(edgeKeys)
	edges := make([]edge, 0, len(edgeKeys))
	for _, k := range edgeKeys {
		edges = append(edges, edge{i: int(k / int64(m)), j: int(k % int64(m)), gap: edgeGap[k]})
	}
	rep.Edges = len(edges)

	// Feasible ranges [l_i, r_i] for the left edge, in sites.
	lo := make([]int64, m)
	hi := make([]int64, m)
	for k, id := range ids {
		c := &d.Cells[id]
		ct := &d.Types[c.Type]
		span, ok := grid.SpanInterval(c.Fence, c.X, c.Y, ct.Height)
		if !ok {
			return rep, fmt.Errorf("refine: cell %d not inside fence segments", id)
		}
		l, r := int64(span.Lo), int64(span.Hi-ct.Width)
		if opt.Ranges != nil {
			//mclegal:writeset the only wired provider is route.Rules.RangeProvider, a per-cell interval lookup whose rail-memo writes are declared ephemeral on the memo field
			if rl, rh, ok := opt.Ranges(id); ok {
				if int64(rl) > l {
					l = int64(rl)
				}
				if int64(rh) < r {
					r = int64(rh)
				}
			}
		}
		// Never exclude the current (legal) position: guarantees
		// feasibility of the flow problem.
		if int64(c.X) < l {
			l = int64(c.X)
		}
		if int64(c.X) > r {
			r = int64(c.X)
		}
		lo[k], hi[k] = l, r
	}

	// y-displacements in site units for the extension.
	useExt := opt.MaxDispWeight > 0
	dy := make([]int64, m)
	var maxDy int64
	if useExt {
		for k, id := range ids {
			c := &d.Cells[id]
			dyDBU := int64(geom.Abs(c.Y-c.GY)) * int64(d.Tech.RowH)
			dy[k] = dyDBU / int64(d.Tech.SiteW)
			if dy[k] > maxDy {
				maxDy = dy[k]
			}
		}
	}

	// Uncapacitated arcs get a bound no optimal basic solution can
	// reach: the total capacity of all capacitated arcs plus slack.
	var capSum int64
	for _, w := range weights {
		capSum += 2 * w
	}
	capSum += 2*opt.MaxDispWeight + 16

	// Build the network.
	nNodes := m + 1
	z := m
	p, nn := -1, -1
	if useExt {
		p, nn = m+1, m+2
		nNodes = m + 3
	}
	g := mcf.NewGraph(nNodes)
	for k := range ids {
		gx := int64(d.Cells[ids[k]].GX)
		g.AddArc(k, z, weights[k], gx)  // f_i^+
		g.AddArc(z, k, weights[k], -gx) // f_i^-
		g.AddArc(z, k, capSum, -lo[k])  // f_i^l
		g.AddArc(k, z, capSum, hi[k])   // f_i^r
	}
	for _, e := range edges {
		g.AddArc(e.i, e.j, capSum, -e.gap) // f_ij
	}
	if useExt {
		for k := range ids {
			gx := int64(d.Cells[ids[k]].GX)
			g.AddArc(k, p, capSum, gx-dy[k])   // f_i^p
			g.AddArc(nn, k, capSum, -gx-dy[k]) // f_i^n
		}
		g.AddArc(p, z, opt.MaxDispWeight, maxDy)  // f^p
		g.AddArc(z, nn, opt.MaxDispWeight, maxDy) // f^n
	}
	rep.Nodes = g.NumNodes()
	rep.Arcs = g.NumArcs()

	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if opt.Faults.ShouldFire(faults.RefineInfeasible) {
		return rep, fmt.Errorf("refine: injected: %w", mcf.ErrInfeasible)
	}
	sv := opt.Solver
	if sv == nil {
		sv = mcf.NewSolver()
	}
	//mclegal:wallclock solve timing feeds Report.SolveNs (observability), never placement
	solveStart := time.Now()
	res, warm, err := sv.SolveGraphContext(ctx, g, opt.Rule)
	//mclegal:wallclock solve timing feeds Report.SolveNs (observability), never placement
	rep.SolveNs = time.Since(solveStart).Nanoseconds()
	if err != nil {
		return rep, fmt.Errorf("refine: %w", err)
	}
	rep.Pivots = res.Pivots
	rep.Rule = sv.Stats().LastRule
	if warm {
		rep.WarmHits++
	} else {
		rep.WarmMisses++
	}

	// Node potentials are the legal x-coordinates.
	piz := res.Pi[z]
	for k, id := range ids {
		x := res.Pi[k] - piz
		if x < lo[k] || x > hi[k] {
			return rep, fmt.Errorf("refine: potential %d outside range [%d,%d] for cell %d", x, lo[k], hi[k], id)
		}
		if int(x) != d.Cells[id].X {
			d.Cells[id].X = int(x)
			rep.Moved++
		}
	}
	for _, e := range edges {
		xi, xj := int64(d.Cells[ids[e.i]].X), int64(d.Cells[ids[e.j]].X)
		if xi+e.gap > xj {
			return rep, fmt.Errorf("refine: order constraint broken between %d and %d", ids[e.i], ids[e.j])
		}
	}
	return rep, nil
}
