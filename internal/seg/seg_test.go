package seg

import (
	"math/rand"
	"testing"

	"mclegal/internal/geom"
	"mclegal/internal/model"
)

func flatDesign(nSites, nRows int) *model.Design {
	return &model.Design{
		Name: "flat",
		Tech: model.Tech{
			SiteW: 10, RowH: 80, NumSites: nSites, NumRows: nRows,
		},
		Types: []model.CellType{{Name: "T", Width: 2, Height: 1}},
	}
}

func TestBuildFlat(t *testing.T) {
	d := flatDesign(50, 4)
	g, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Segs) != 4 {
		t.Fatalf("want 4 segments, got %d", len(g.Segs))
	}
	for r := 0; r < 4; r++ {
		ids := g.Row(r)
		if len(ids) != 1 {
			t.Fatalf("row %d: %d segments", r, len(ids))
		}
		s := g.Segs[ids[0]]
		if s.X != (geom.Interval{Lo: 0, Hi: 50}) || s.Fence != model.DefaultFence || s.Row != r {
			t.Errorf("row %d segment = %+v", r, s)
		}
	}
	if g.Row(-1) != nil || g.Row(4) != nil {
		t.Errorf("out-of-range rows should be nil")
	}
}

func TestBuildWithFence(t *testing.T) {
	d := flatDesign(50, 4)
	d.Fences = []model.Fence{{Name: "f1", Rects: []geom.Rect{geom.RectWH(10, 1, 20, 2)}}}
	g, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 1 and 2 split in three; rows 0 and 3 whole.
	if len(g.Row(1)) != 3 || len(g.Row(2)) != 3 || len(g.Row(0)) != 1 {
		t.Fatalf("segment counts wrong: %d %d %d", len(g.Row(0)), len(g.Row(1)), len(g.Row(2)))
	}
	s, ok := g.At(1, 15)
	if !ok || s.Fence != 1 || s.X != (geom.Interval{Lo: 10, Hi: 30}) {
		t.Errorf("fence segment = %+v ok=%v", s, ok)
	}
	s, ok = g.At(1, 5)
	if !ok || s.Fence != model.DefaultFence || s.X != (geom.Interval{Lo: 0, Hi: 10}) {
		t.Errorf("left default segment = %+v", s)
	}
	s, ok = g.At(1, 40)
	if !ok || s.Fence != model.DefaultFence || s.X != (geom.Interval{Lo: 30, Hi: 50}) {
		t.Errorf("right default segment = %+v", s)
	}
}

func TestBuildWithBlockageAndFixed(t *testing.T) {
	d := flatDesign(50, 3)
	d.Blockages = []geom.Rect{geom.RectWH(20, 0, 5, 3)}
	d.Cells = append(d.Cells, model.Cell{Name: "macro", Type: 0, X: 40, Y: 1, Fixed: true})
	d.Types[0].Width = 4
	g, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Row(0)) != 2 {
		t.Fatalf("row 0 should split in 2, got %d", len(g.Row(0)))
	}
	if len(g.Row(1)) != 3 {
		t.Fatalf("row 1 should split in 3, got %d", len(g.Row(1)))
	}
	if _, ok := g.At(0, 22); ok {
		t.Errorf("blocked site should have no segment")
	}
	if _, ok := g.At(1, 41); ok {
		t.Errorf("fixed-cell site should have no segment")
	}
	if s, ok := g.At(1, 44); !ok || s.X.Lo != 44 {
		t.Errorf("segment after fixed cell = %+v ok=%v", s, ok)
	}
}

func TestOverlappingFencesRejected(t *testing.T) {
	d := flatDesign(50, 3)
	d.Fences = []model.Fence{
		{Name: "a", Rects: []geom.Rect{geom.RectWH(0, 0, 20, 3)}},
		{Name: "b", Rects: []geom.Rect{geom.RectWH(10, 0, 20, 3)}},
	}
	if _, err := Build(d); err == nil {
		t.Fatalf("overlapping fences accepted")
	}
}

func TestSameFenceOverlapOK(t *testing.T) {
	d := flatDesign(50, 3)
	d.Fences = []model.Fence{
		{Name: "a", Rects: []geom.Rect{geom.RectWH(0, 0, 20, 3), geom.RectWH(10, 0, 20, 2)}},
	}
	g, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := g.At(0, 0)
	if !ok || s.X != (geom.Interval{Lo: 0, Hi: 30}) || s.Fence != 1 {
		t.Errorf("merged same-fence segment = %+v", s)
	}
}

func TestSpanOK(t *testing.T) {
	d := flatDesign(50, 6)
	d.Fences = []model.Fence{{Name: "f", Rects: []geom.Rect{geom.RectWH(10, 0, 20, 4)}}}
	g, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if !g.SpanOK(1, 12, 0, 5, 4) {
		t.Errorf("valid fence span rejected")
	}
	if g.SpanOK(1, 12, 0, 5, 5) { // row 4 is outside the fence
		t.Errorf("span crossing fence top accepted")
	}
	if g.SpanOK(model.DefaultFence, 12, 0, 5, 1) {
		t.Errorf("default-fence cell inside fence accepted")
	}
	if !g.SpanOK(model.DefaultFence, 30, 0, 10, 4) {
		t.Errorf("default span right of fence rejected")
	}
	if g.SpanOK(1, 28, 0, 5, 1) { // sticks out of fence to the right
		t.Errorf("overhanging span accepted")
	}
	if g.SpanOK(model.DefaultFence, -2, 0, 4, 1) {
		t.Errorf("off-core span accepted")
	}
}

func TestSpanInterval(t *testing.T) {
	d := flatDesign(50, 6)
	d.Blockages = []geom.Rect{geom.RectWH(30, 2, 5, 1)}
	g, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0..1 are whole; row 2 splits at the blockage.
	iv, ok := g.SpanInterval(model.DefaultFence, 10, 0, 3)
	if !ok || iv != (geom.Interval{Lo: 0, Hi: 30}) {
		t.Errorf("SpanInterval = %v ok=%v", iv, ok)
	}
	iv, ok = g.SpanInterval(model.DefaultFence, 40, 0, 3)
	if !ok || iv != (geom.Interval{Lo: 35, Hi: 50}) {
		t.Errorf("SpanInterval right = %v ok=%v", iv, ok)
	}
	if _, ok := g.SpanInterval(model.DefaultFence, 31, 0, 3); ok {
		t.Errorf("span through blockage accepted")
	}
	if _, ok := g.SpanInterval(model.DefaultFence, 10, 4, 3); ok {
		t.Errorf("span past top row accepted")
	}
}

// Property: segments of a row never overlap, are sorted, and cover
// exactly the non-blocked sites.
func TestRandomizedSegmentInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nSites, nRows := 60+rng.Intn(60), 8+rng.Intn(8)
		d := flatDesign(nSites, nRows)
		for f := 0; f < rng.Intn(3); f++ {
			x := rng.Intn(nSites - 10)
			y := rng.Intn(nRows - 2)
			w := 3 + rng.Intn(10)
			h := 1 + rng.Intn(3)
			d.Fences = append(d.Fences, model.Fence{
				Name:  "f",
				Rects: []geom.Rect{geom.RectWH(x, y, w, h)},
			})
		}
		for b := 0; b < rng.Intn(4); b++ {
			d.Blockages = append(d.Blockages,
				geom.RectWH(rng.Intn(nSites-5), rng.Intn(nRows-1), 1+rng.Intn(5), 1+rng.Intn(2)))
		}
		g, err := Build(d)
		if err != nil {
			continue // overlapping random fences: rejection is correct
		}
		for r := 0; r < nRows; r++ {
			ids := g.Row(r)
			covered := make([]bool, nSites)
			prevHi := -1
			for _, id := range ids {
				s := g.Segs[id]
				if s.Row != r {
					t.Fatalf("segment %d row mismatch", id)
				}
				if s.X.Empty() {
					t.Fatalf("empty segment %d", id)
				}
				if s.X.Lo < prevHi {
					t.Fatalf("row %d segments overlap or unsorted", r)
				}
				prevHi = s.X.Hi
				for x := s.X.Lo; x < s.X.Hi; x++ {
					covered[x] = true
				}
			}
			for x := 0; x < nSites; x++ {
				blocked := false
				for _, b := range d.Blockages {
					if b.ContainsPt(geom.Pt{X: x, Y: r}) {
						blocked = true
					}
				}
				if covered[x] == blocked {
					t.Fatalf("row %d site %d: covered=%v blocked=%v", r, x, covered[x], blocked)
				}
			}
		}
	}
}
