// Package seg builds the static row segmentation of a design: every row
// is partitioned into maximal site intervals with a uniform fence label,
// with blockages and fixed cells removed. All later stages (MGL
// insertion, matching groups, fixed-order refinement) work on segments.
package seg

import (
	"fmt"
	"sort"

	"mclegal/internal/geom"
	"mclegal/internal/model"
)

// Segment is one usable maximal interval of a row. A cell assigned to
// fence F may only occupy segments labeled F, in every row it spans.
type Segment struct {
	ID    int
	Row   int
	X     geom.Interval
	Fence model.FenceID
}

// Grid is the per-row segment index of a design.
type Grid struct {
	NumRows int
	Segs    []Segment // all segments, sorted by (Row, X.Lo); ID = index
	byRow   [][]int   // byRow[r] lists segment IDs of row r in x order
}

// Build computes the segmentation of d. It fails if two fences overlap,
// since a site cannot belong to two fence regions.
func Build(d *model.Design) (*Grid, error) {
	nRows, nSites := d.Tech.NumRows, d.Tech.NumSites
	// Per-row paint lists.
	type paint struct {
		iv    geom.Interval
		fence model.FenceID // DefaultFence means "blocked" in blockList
	}
	fenceRows := make([][]paint, nRows)
	blockRows := make([][]geom.Interval, nRows)

	clampRow := func(r geom.Rect) (geom.Rect, bool) {
		c := r.Intersect(geom.Rect{XLo: 0, YLo: 0, XHi: nSites, YHi: nRows})
		return c, !c.Empty()
	}
	for k := range d.Fences {
		for _, r := range d.Fences[k].Rects {
			cr, ok := clampRow(r)
			if !ok {
				continue
			}
			for y := cr.YLo; y < cr.YHi; y++ {
				fenceRows[y] = append(fenceRows[y], paint{iv: cr.XIv(), fence: model.FenceID(k + 1)})
			}
		}
	}
	for _, b := range d.Blockages {
		cb, ok := clampRow(b)
		if !ok {
			continue
		}
		for y := cb.YLo; y < cb.YHi; y++ {
			blockRows[y] = append(blockRows[y], cb.XIv())
		}
	}
	for i := range d.Cells {
		if !d.Cells[i].Fixed {
			continue
		}
		cb, ok := clampRow(d.CellRect(model.CellID(i)))
		if !ok {
			continue
		}
		for y := cb.YLo; y < cb.YHi; y++ {
			blockRows[y] = append(blockRows[y], cb.XIv())
		}
	}

	g := &Grid{NumRows: nRows, byRow: make([][]int, nRows)}
	for y := 0; y < nRows; y++ {
		// Elementary boundaries.
		cuts := []int{0, nSites}
		for _, p := range fenceRows[y] {
			cuts = append(cuts, p.iv.Lo, p.iv.Hi)
		}
		for _, b := range blockRows[y] {
			cuts = append(cuts, b.Lo, b.Hi)
		}
		sort.Ints(cuts)
		cuts = dedupInts(cuts)

		// Label each elementary interval, then merge.
		var prev *Segment
		for ci := 0; ci+1 < len(cuts); ci++ {
			lo, hi := cuts[ci], cuts[ci+1]
			if lo < 0 || hi > nSites || lo >= hi {
				continue
			}
			mid := lo // representative point; intervals are elementary
			blocked := false
			for _, b := range blockRows[y] {
				if b.Contains(mid) {
					blocked = true
					break
				}
			}
			if blocked {
				prev = nil
				continue
			}
			label := model.DefaultFence
			for _, p := range fenceRows[y] {
				if !p.iv.Contains(mid) {
					continue
				}
				if label != model.DefaultFence && label != p.fence {
					return nil, fmt.Errorf("seg: fences %d and %d overlap at row %d site %d", label, p.fence, y, mid)
				}
				label = p.fence
			}
			if prev != nil && prev.Fence == label && prev.X.Hi == lo {
				prev.X.Hi = hi
				continue
			}
			g.Segs = append(g.Segs, Segment{Row: y, X: geom.Interval{Lo: lo, Hi: hi}, Fence: label})
			prev = &g.Segs[len(g.Segs)-1]
		}
	}
	for i := range g.Segs {
		g.Segs[i].ID = i
		g.byRow[g.Segs[i].Row] = append(g.byRow[g.Segs[i].Row], i)
	}
	return g, nil
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Row returns the segment IDs of row r in x order. Out-of-range rows
// yield nil.
func (g *Grid) Row(r int) []int {
	if r < 0 || r >= g.NumRows {
		return nil
	}
	return g.byRow[r]
}

// At returns the segment of row r containing site x, if any.
func (g *Grid) At(r, x int) (Segment, bool) {
	ids := g.Row(r)
	// Binary search over the x-sorted segments: find the last segment
	// with X.Lo <= x.
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.Segs[ids[mid]].X.Lo <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return Segment{}, false
	}
	s := g.Segs[ids[lo-1]]
	if s.X.Contains(x) {
		return s, true
	}
	return Segment{}, false
}

// SpanOK reports whether a cell of fence f occupying sites [x, x+w) on
// rows [y, y+h) lies entirely inside segments of fence f.
func (g *Grid) SpanOK(f model.FenceID, x, y, w, h int) bool {
	iv := geom.Interval{Lo: x, Hi: x + w}
	for r := y; r < y+h; r++ {
		s, ok := g.At(r, x)
		if !ok || s.Fence != f || !s.X.ContainsIv(iv) {
			return false
		}
	}
	return true
}

// SpanInterval returns, for a cell of fence f on rows [y, y+h), the
// x-interval of sites usable around site x (the intersection over the
// rows of the containing segments). ok is false if some row has no
// fence-f segment containing x.
func (g *Grid) SpanInterval(f model.FenceID, x, y, h int) (geom.Interval, bool) {
	out := geom.Interval{Lo: 0, Hi: 1 << 30}
	for r := y; r < y+h; r++ {
		s, ok := g.At(r, x)
		if !ok || s.Fence != f {
			return geom.Interval{}, false
		}
		out = out.Intersect(s.X)
	}
	if out.Empty() {
		return geom.Interval{}, false
	}
	return out, true
}
