// Package seg builds the static row segmentation of a design: every row
// is partitioned into maximal site intervals with a uniform fence label,
// with blockages and fixed cells removed. All later stages (MGL
// insertion, matching groups, fixed-order refinement) work on segments.
package seg

import (
	"fmt"
	"sort"

	"mclegal/internal/geom"
	"mclegal/internal/model"
)

// Segment is one usable maximal interval of a row. A cell assigned to
// fence F may only occupy segments labeled F, in every row it spans.
type Segment struct {
	ID    int
	Row   int
	X     geom.Interval
	Fence model.FenceID
}

// Grid is the per-row segment index of a design.
//
// Alongside the Segment records the grid keeps the fields the hot
// paths touch — segment bounds and fence label — in flat parallel
// arrays, and the per-row index in CSR form (one offsets array, one
// flat ID array) instead of a slice of slices. The At binary search
// then reads a dense []int32 rather than gathering 40-byte Segment
// structs through a double indirection, and a grid is two allocations
// instead of one per row.
type Grid struct {
	NumRows int
	Segs    []Segment // all segments, sorted by (Row, X.Lo); ID = index

	// CSR row index: rowIDs[rowOff[r]:rowOff[r+1]] lists the segment
	// IDs of row r in x order. Segments are built row-major, so the
	// IDs of one row are consecutive.
	rowOff []int32
	rowIDs []int32

	// Flat hot mirrors of Segs, indexed by segment ID.
	segLo, segHi []int32
	segFence     []model.FenceID
}

// Build computes the segmentation of d. It fails if two fences overlap,
// since a site cannot belong to two fence regions.
func Build(d *model.Design) (*Grid, error) {
	nRows, nSites := d.Tech.NumRows, d.Tech.NumSites
	// Per-row paint lists.
	type paint struct {
		iv    geom.Interval
		fence model.FenceID // DefaultFence means "blocked" in blockList
	}
	fenceRows := make([][]paint, nRows)
	blockRows := make([][]geom.Interval, nRows)

	clampRow := func(r geom.Rect) (geom.Rect, bool) {
		c := r.Intersect(geom.Rect{XLo: 0, YLo: 0, XHi: nSites, YHi: nRows})
		return c, !c.Empty()
	}
	for k := range d.Fences {
		for _, r := range d.Fences[k].Rects {
			cr, ok := clampRow(r)
			if !ok {
				continue
			}
			for y := cr.YLo; y < cr.YHi; y++ {
				fenceRows[y] = append(fenceRows[y], paint{iv: cr.XIv(), fence: model.FenceID(k + 1)})
			}
		}
	}
	for _, b := range d.Blockages {
		cb, ok := clampRow(b)
		if !ok {
			continue
		}
		for y := cb.YLo; y < cb.YHi; y++ {
			blockRows[y] = append(blockRows[y], cb.XIv())
		}
	}
	for i := range d.Cells {
		if !d.Cells[i].Fixed {
			continue
		}
		cb, ok := clampRow(d.CellRect(model.CellID(i)))
		if !ok {
			continue
		}
		for y := cb.YLo; y < cb.YHi; y++ {
			blockRows[y] = append(blockRows[y], cb.XIv())
		}
	}

	g := &Grid{NumRows: nRows}
	for y := 0; y < nRows; y++ {
		// Elementary boundaries.
		cuts := []int{0, nSites}
		for _, p := range fenceRows[y] {
			cuts = append(cuts, p.iv.Lo, p.iv.Hi)
		}
		for _, b := range blockRows[y] {
			cuts = append(cuts, b.Lo, b.Hi)
		}
		sort.Ints(cuts)
		cuts = dedupInts(cuts)

		// Label each elementary interval, then merge.
		var prev *Segment
		for ci := 0; ci+1 < len(cuts); ci++ {
			lo, hi := cuts[ci], cuts[ci+1]
			if lo < 0 || hi > nSites || lo >= hi {
				continue
			}
			mid := lo // representative point; intervals are elementary
			blocked := false
			for _, b := range blockRows[y] {
				if b.Contains(mid) {
					blocked = true
					break
				}
			}
			if blocked {
				prev = nil
				continue
			}
			label := model.DefaultFence
			for _, p := range fenceRows[y] {
				if !p.iv.Contains(mid) {
					continue
				}
				if label != model.DefaultFence && label != p.fence {
					return nil, fmt.Errorf("seg: fences %d and %d overlap at row %d site %d", label, p.fence, y, mid)
				}
				label = p.fence
			}
			if prev != nil && prev.Fence == label && prev.X.Hi == lo {
				prev.X.Hi = hi
				continue
			}
			g.Segs = append(g.Segs, Segment{Row: y, X: geom.Interval{Lo: lo, Hi: hi}, Fence: label})
			prev = &g.Segs[len(g.Segs)-1]
		}
	}
	g.rowOff = make([]int32, nRows+1)
	g.rowIDs = make([]int32, len(g.Segs))
	g.segLo = make([]int32, len(g.Segs))
	g.segHi = make([]int32, len(g.Segs))
	g.segFence = make([]model.FenceID, len(g.Segs))
	for i := range g.Segs {
		g.Segs[i].ID = i
		g.rowIDs[i] = int32(i) // row-major build order: IDs are already row-grouped
		g.segLo[i] = int32(g.Segs[i].X.Lo)
		g.segHi[i] = int32(g.Segs[i].X.Hi)
		g.segFence[i] = g.Segs[i].Fence
		g.rowOff[g.Segs[i].Row+1]++
	}
	for r := 0; r < nRows; r++ {
		g.rowOff[r+1] += g.rowOff[r]
	}
	return g, nil
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Row returns the segment IDs of row r in x order (a view into the CSR
// index; callers must not mutate it). Out-of-range rows yield nil.
func (g *Grid) Row(r int) []int32 {
	if r < 0 || r >= g.NumRows {
		return nil
	}
	return g.rowIDs[g.rowOff[r]:g.rowOff[r+1]]
}

// AtID returns the ID of the segment of row r containing site x, or -1
// if none. This is the allocation- and copy-free fast path behind At;
// hot loops pair it with Lo/Hi/FenceOf instead of materializing a
// Segment value.
func (g *Grid) AtID(r, x int) int32 {
	if r < 0 || r >= g.NumRows {
		return -1
	}
	// Binary search for the last segment with Lo <= x. Row IDs are
	// consecutive (row-major build), so search the ID range directly.
	lo, hi := g.rowOff[r], g.rowOff[r+1]
	for lo < hi {
		mid := (lo + hi) >> 1
		if int(g.segLo[mid]) <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == g.rowOff[r] {
		return -1
	}
	id := lo - 1
	if x < int(g.segHi[id]) {
		return id
	}
	return -1
}

// Lo returns the first site of segment id.
func (g *Grid) Lo(id int32) int { return int(g.segLo[id]) }

// Hi returns one past the last site of segment id.
func (g *Grid) Hi(id int32) int { return int(g.segHi[id]) }

// FenceOf returns the fence label of segment id.
func (g *Grid) FenceOf(id int32) model.FenceID { return g.segFence[id] }

// At returns the segment of row r containing site x, if any.
func (g *Grid) At(r, x int) (Segment, bool) {
	id := g.AtID(r, x)
	if id < 0 {
		return Segment{}, false
	}
	return g.Segs[id], true
}

// SpanOK reports whether a cell of fence f occupying sites [x, x+w) on
// rows [y, y+h) lies entirely inside segments of fence f.
func (g *Grid) SpanOK(f model.FenceID, x, y, w, h int) bool {
	for r := y; r < y+h; r++ {
		id := g.AtID(r, x)
		if id < 0 || g.segFence[id] != f || x+w > int(g.segHi[id]) {
			return false
		}
	}
	return true
}

// SpanInterval returns, for a cell of fence f on rows [y, y+h), the
// x-interval of sites usable around site x (the intersection over the
// rows of the containing segments). ok is false if some row has no
// fence-f segment containing x.
func (g *Grid) SpanInterval(f model.FenceID, x, y, h int) (geom.Interval, bool) {
	out := geom.Interval{Lo: 0, Hi: 1 << 30}
	for r := y; r < y+h; r++ {
		id := g.AtID(r, x)
		if id < 0 || g.segFence[id] != f {
			return geom.Interval{}, false
		}
		out = out.Intersect(geom.Interval{Lo: int(g.segLo[id]), Hi: int(g.segHi[id])})
	}
	if out.Empty() {
		return geom.Interval{}, false
	}
	return out, true
}
