// Package faults is a deterministic fault-injection harness for the
// legalization pipeline. Production code consults an *Injector at named
// injection points; tests arm the points they want to exercise and the
// injector fires on exact, reproducible hit counts — never on timers or
// randomness — so every failure scenario is replayable.
//
// A nil *Injector is inert: every ShouldFire/Err call on it returns the
// zero value, so call sites need no nil guards and production runs pay
// a single pointer comparison per injection point.
package faults

import (
	"fmt"
	"sort"
	"sync"
)

// Point names one injection point. Fixed points are declared as
// constants; per-stage points are derived with StageError and
// IllegalMove so the set of points grows with the pipeline.
type Point string

// Fixed injection points inside the solvers.
const (
	// MGLWorkerPanic panics inside an MGL evaluation worker goroutine,
	// exercising the worker recover() boundary.
	MGLWorkerPanic Point = "mgl/worker-panic"
	// MGLInsertOutside forces the occupancy insert-outside-segment
	// error on the next commit.
	MGLInsertOutside Point = "mgl/insert-outside"
	// RefineInfeasible makes the refinement report min-cost-flow
	// infeasibility instead of solving.
	RefineInfeasible Point = "refine/infeasible"
	// MatchingFail makes the maximum-displacement stage report a
	// matching failure before solving any group.
	MatchingFail Point = "maxdisp/matching-fail"
)

// StageError returns the point that fails the named pipeline stage with
// an injected error before it runs.
func StageError(stage string) Point { return Point("stage-error/" + stage) }

// IllegalMove returns the point that corrupts the placement (moving one
// movable cell onto another) right after the named stage succeeds, so a
// legality gate must catch it.
func IllegalMove(stage string) Point { return Point("illegal-move/" + stage) }

// InjectedError is the typed error returned by every error-producing
// injection site, carrying the point that fired.
type InjectedError struct {
	Point Point
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected failure at %s", e.Point)
}

type arm struct {
	skip  int // hits to let pass before firing
	limit int // shots; <0 = unlimited
	hits  int
	fired int
}

// Injector decides, per point, whether a fault fires. The zero value
// and the nil pointer are both inert. Methods are safe for concurrent
// use (MGL workers hit points in parallel); firing decisions depend
// only on per-point hit counts, so runs with deterministic hit
// sequences produce deterministic faults.
type Injector struct {
	mu    sync.Mutex
	arms  map[Point]*arm
	forks map[int]*Injector
}

// New returns an empty (inert) injector; arm points to make it bite.
func New() *Injector { return &Injector{} }

// Arm makes p fire once, on its next hit. It returns the injector for
// chaining.
func (in *Injector) Arm(p Point) *Injector { return in.ArmN(p, 0, 1) }

// ArmN makes p fire count times (count < 0 = every time) after letting
// skip hits pass. Re-arming a point resets its counters.
func (in *Injector) ArmN(p Point, skip, count int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.arms == nil {
		in.arms = make(map[Point]*arm)
	}
	in.arms[p] = &arm{skip: skip, limit: count}
	return in
}

// Fork returns the injector's child for one shard of a sharded run:
// an injector with the same armed points but fully independent hit and
// fire counters. Hit counts inside one shard's pipeline are
// deterministic (each shard legalizes its own subdesign), so keying
// the fork by plan index makes the injected behavior a function of the
// shard plan alone — never of how shards happened to be scheduled
// across workers. Forking the same index again returns the same child,
// so tests can inspect per-shard counters after the run. Children copy
// the arm configuration at first-fork time; re-arming the parent later
// does not reach existing forks. A nil injector forks to nil.
func (in *Injector) Fork(shard int) *Injector {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if f := in.forks[shard]; f != nil {
		return f
	}
	f := &Injector{arms: make(map[Point]*arm, len(in.arms))}
	for p, a := range in.arms {
		f.arms[p] = &arm{skip: a.skip, limit: a.limit}
	}
	if in.forks == nil {
		in.forks = make(map[int]*Injector)
	}
	in.forks[shard] = f
	return f
}

// ShouldFire records one hit at p and reports whether the fault fires.
// A nil injector never fires.
func (in *Injector) ShouldFire(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	a := in.arms[p]
	if a == nil {
		return false
	}
	a.hits++
	if a.hits <= a.skip {
		return false
	}
	if a.limit >= 0 && a.fired >= a.limit {
		return false
	}
	a.fired++
	return true
}

// Err records one hit at p and returns an *InjectedError when the
// fault fires, nil otherwise.
func (in *Injector) Err(p Point) error {
	if in.ShouldFire(p) {
		return &InjectedError{Point: p}
	}
	return nil
}

// Fired returns how many times p has fired so far.
func (in *Injector) Fired(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if a := in.arms[p]; a != nil {
		return a.fired
	}
	return 0
}

// Hits returns how many times p has been consulted so far, fired or
// not — a coverage signal for tests asserting a point is actually
// reached.
func (in *Injector) Hits(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if a := in.arms[p]; a != nil {
		return a.hits
	}
	return 0
}

// Armed lists the armed points in sorted order.
func (in *Injector) Armed() []Point {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Point, 0, len(in.arms))
	for p := range in.arms {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
