package faults

import (
	"errors"
	"sync"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.ShouldFire(MGLWorkerPanic) {
		t.Error("nil injector fired")
	}
	if err := in.Err(RefineInfeasible); err != nil {
		t.Errorf("nil injector produced error %v", err)
	}
	if in.Fired(MGLWorkerPanic) != 0 || in.Hits(MGLWorkerPanic) != 0 || in.Armed() != nil {
		t.Error("nil injector reports state")
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	in := New().Arm(RefineInfeasible)
	for i := 0; i < 100; i++ {
		if in.ShouldFire(MGLWorkerPanic) {
			t.Fatal("unarmed point fired")
		}
	}
}

func TestArmFiresExactlyOnce(t *testing.T) {
	in := New().Arm(MatchingFail)
	fired := 0
	for i := 0; i < 10; i++ {
		if in.ShouldFire(MatchingFail) {
			fired++
		}
	}
	if fired != 1 || in.Fired(MatchingFail) != 1 {
		t.Errorf("fired %d times (counter %d), want 1", fired, in.Fired(MatchingFail))
	}
	if in.Hits(MatchingFail) != 10 {
		t.Errorf("hits = %d, want 10", in.Hits(MatchingFail))
	}
}

func TestArmNSkipsAndLimits(t *testing.T) {
	in := New().ArmN(RefineInfeasible, 2, 3)
	var pattern []bool
	for i := 0; i < 8; i++ {
		pattern = append(pattern, in.ShouldFire(RefineInfeasible))
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("hit %d: fired=%v, want %v (pattern %v)", i, pattern[i], want[i], pattern)
		}
	}
}

func TestArmNUnlimited(t *testing.T) {
	in := New().ArmN(MGLWorkerPanic, 0, -1)
	for i := 0; i < 50; i++ {
		if !in.ShouldFire(MGLWorkerPanic) {
			t.Fatal("unlimited arm stopped firing")
		}
	}
}

func TestErrReturnsTypedError(t *testing.T) {
	in := New().Arm(StageError("mgl"))
	err := in.Err(StageError("mgl"))
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T %v, want *InjectedError", err, err)
	}
	if ie.Point != StageError("mgl") {
		t.Errorf("point = %s", ie.Point)
	}
	if in.Err(StageError("mgl")) != nil {
		t.Error("single-shot arm fired twice via Err")
	}
}

func TestDerivedPointsAreDistinct(t *testing.T) {
	if StageError("mgl") == StageError("refine") || StageError("mgl") == IllegalMove("mgl") {
		t.Error("derived points collide")
	}
}

func TestRearmResetsCounters(t *testing.T) {
	in := New().Arm(MatchingFail)
	in.ShouldFire(MatchingFail)
	in.Arm(MatchingFail)
	if !in.ShouldFire(MatchingFail) {
		t.Error("re-armed point did not fire")
	}
}

// Concurrent hits must fire exactly the armed count, never more
// (exercised with -race in CI).
func TestConcurrentFiresRespectLimit(t *testing.T) {
	in := New().ArmN(MGLWorkerPanic, 0, 5)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if in.ShouldFire(MGLWorkerPanic) {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 5 {
		t.Errorf("fired %d, want 5", fired)
	}
}

func TestArmedLists(t *testing.T) {
	in := New().Arm(RefineInfeasible).Arm(MGLWorkerPanic)
	pts := in.Armed()
	if len(pts) != 2 || pts[0] != MGLWorkerPanic || pts[1] != RefineInfeasible {
		t.Errorf("armed = %v", pts)
	}
}

// Fork gives every shard independent deterministic counters: firing a
// point on one fork must not consume another fork's (or the parent's)
// shots, and re-forking an index returns the same child so tests can
// read its counters after a run.
func TestForkIndependentCounters(t *testing.T) {
	parent := New().ArmN(MGLWorkerPanic, 1, 1) // skip 1, fire 1 — per fork
	f0, f1 := parent.Fork(0), parent.Fork(1)
	if f0 == nil || f1 == nil || f0 == f1 {
		t.Fatalf("forks = %p, %p", f0, f1)
	}
	for _, f := range []*Injector{f0, f1} {
		if f.ShouldFire(MGLWorkerPanic) {
			t.Error("fork fired on the skipped first hit")
		}
		if !f.ShouldFire(MGLWorkerPanic) {
			t.Error("fork did not fire on its second hit")
		}
		if f.ShouldFire(MGLWorkerPanic) {
			t.Error("fork fired past its limit")
		}
	}
	if f0.Fired(MGLWorkerPanic) != 1 || f1.Fired(MGLWorkerPanic) != 1 {
		t.Errorf("fired = %d, %d; want 1, 1", f0.Fired(MGLWorkerPanic), f1.Fired(MGLWorkerPanic))
	}
	if parent.Hits(MGLWorkerPanic) != 0 || parent.Fired(MGLWorkerPanic) != 0 {
		t.Error("fork hits leaked into the parent's counters")
	}
	if parent.Fork(0) != f0 {
		t.Error("re-forking index 0 built a new child")
	}
}

// A nil injector forks to nil, preserving the nil-is-inert contract at
// every shard boundary.
func TestForkNil(t *testing.T) {
	var in *Injector
	f := in.Fork(3)
	if f != nil {
		t.Fatalf("nil.Fork = %v, want nil", f)
	}
	if f.ShouldFire(MGLWorkerPanic) || f.Err(MGLWorkerPanic) != nil {
		t.Error("nil fork is not inert")
	}
}

// Forks copy the arm configuration but keep the armed-point set: a
// fork of an injector with two armed points lists both, with fresh
// counters.
func TestForkCopiesArms(t *testing.T) {
	parent := New().Arm(RefineInfeasible).ArmN(MatchingFail, 0, -1)
	parent.ShouldFire(RefineInfeasible) // consume the parent's only shot
	f := parent.Fork(0)
	pts := f.Armed()
	if len(pts) != 2 {
		t.Fatalf("fork armed = %v", pts)
	}
	if !f.ShouldFire(RefineInfeasible) {
		t.Error("fork inherited the parent's spent counter")
	}
	for i := 0; i < 3; i++ {
		if !f.ShouldFire(MatchingFail) {
			t.Error("unlimited arm did not survive the fork")
		}
	}
}
