package matching

import (
	"context"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, n int) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			m[i][j] = int64(rng.Intn(1000))
		}
	}
	return m
}

// A reused Solver solving cold must match the package-level functions
// byte-for-byte across a randomized sequence of instance sizes.
func TestSolverColdMatchesPackageFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var sv Solver
	for it := 0; it < 50; it++ {
		n := 1 + rng.Intn(24)
		m := randomMatrix(rng, n)
		if it%5 == 0 {
			// Sprinkle Forbidden pairs; some instances become infeasible.
			for k := 0; k < n; k++ {
				m[rng.Intn(n)][rng.Intn(n)] = Forbidden
			}
		}
		cost := func(i, j int) int64 { return m[i][j] }
		wantA, wantT, wantOK := MinCostPerfect(n, cost)
		gotA, gotT, gotOK := sv.MinCostPerfect(n, cost)
		if wantOK != gotOK || wantT != gotT || !slices.Equal(wantA, gotA) {
			t.Fatalf("it %d (n=%d): solver (%v,%d,%v) != package (%v,%d,%v)",
				it, n, gotA, gotT, gotOK, wantA, wantT, wantOK)
		}
	}
	if sv.Stats().WarmHits != 0 || sv.Stats().WarmMisses != 0 {
		t.Errorf("cold solves counted warm attempts: %+v", sv.Stats())
	}
}

// Property: Solver reuse (cold) is byte-identical to fresh solves for
// arbitrary matrices.
func TestQuickSolverReuseByteIdentical(t *testing.T) {
	var sv Solver
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		m := randomMatrix(rng, n)
		cost := func(i, j int) int64 { return m[i][j] }
		wantA, wantT, wantOK := MinCostPerfect(n, cost)
		gotA, gotT, gotOK := sv.MinCostPerfect(n, cost)
		return wantOK == gotOK && wantT == gotT && slices.Equal(wantA, gotA)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Warm starts reuse the stored duals when they are feasible for the
// new costs and always return an exactly optimal total.
func TestWarmDualsExactAndCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 20
	m := randomMatrix(rng, n)
	cost := func(i, j int) int64 { return m[i][j] }
	var sv Solver
	ctx := context.Background()

	// First warm attempt has nothing stored: a miss, still optimal.
	_, t0, ok, err := sv.MinCostPerfectWarmContext(ctx, n, cost)
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if sv.WarmStarted() || sv.Stats().WarmMisses != 1 {
		t.Fatalf("first solve: warmStarted=%v stats=%+v", sv.WarmStarted(), sv.Stats())
	}
	// Same instance again: duals are tight-feasible, must hit.
	_, t1, ok, err := sv.MinCostPerfectWarmContext(ctx, n, cost)
	if err != nil || !ok || t1 != t0 {
		t.Fatalf("re-solve: total %d vs %d (ok=%v err=%v)", t1, t0, ok, err)
	}
	if !sv.WarmStarted() || sv.Stats().WarmHits != 1 {
		t.Fatalf("re-solve: warmStarted=%v stats=%+v", sv.WarmStarted(), sv.Stats())
	}
	// Costs nudged upward keep the stored duals feasible: another hit,
	// and the total must equal the cold optimum.
	for k := 0; k < n; k++ {
		m[rng.Intn(n)][rng.Intn(n)] += int64(rng.Intn(50))
	}
	_, warmT, ok, err := sv.MinCostPerfectWarmContext(ctx, n, cost)
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if !sv.WarmStarted() {
		t.Error("upward-perturbed costs should keep duals feasible (warm hit)")
	}
	_, coldT, okC := MinCostPerfect(n, cost)
	if !okC || warmT != coldT {
		t.Fatalf("warm total %d != cold total %d", warmT, coldT)
	}
	// A different size cannot reuse duals: a miss.
	m2 := randomMatrix(rng, n+3)
	_, _, ok, err = sv.MinCostPerfectWarmContext(ctx, n+3, func(i, j int) int64 { return m2[i][j] })
	if err != nil || !ok || sv.WarmStarted() {
		t.Fatalf("size change: warmStarted=%v ok=%v err=%v", sv.WarmStarted(), ok, err)
	}
}

// Property: warm-started totals equal cold totals for arbitrary
// instance sequences (hit or miss, the optimum is the optimum).
func TestQuickWarmDualsOptimal(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%12) + 2
		var sv Solver
		for it := 0; it < 4; it++ {
			m := randomMatrix(rng, n)
			cost := func(i, j int) int64 { return m[i][j] }
			_, warmT, okW, err := sv.MinCostPerfectWarmContext(context.Background(), n, cost)
			if err != nil {
				return false
			}
			_, coldT, okC := MinCostPerfect(n, cost)
			if okW != okC || (okW && warmT != coldT) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// A reused Solver performs zero heap allocations per solve once its
// arrays fit the instance size — the per-row minv/used allocations of
// the pre-Solver code are gone. This is the dynamic witness the static
// noalloc proof (root: (*Solver).augmentRow) is pinned to by
// analysis.TestHotPathRootsMatchDynamicProof.
func TestSolverReuseZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 64
	m := randomMatrix(rng, n)
	cost := func(i, j int) int64 { return m[i][j] }
	var sv Solver
	if _, _, ok := sv.MinCostPerfect(n, cost); !ok {
		t.Fatal("warm-up solve failed")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, ok := sv.MinCostPerfect(n, cost); !ok {
			t.Fatal("solve failed")
		}
	})
	if allocs != 0 {
		t.Errorf("reused solve allocates %.1f times per op, want 0", allocs)
	}
}
