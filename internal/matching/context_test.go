package matching

import (
	"context"
	"errors"
	"testing"
)

func TestMinCostPerfectContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cost := func(i, j int) int64 { return int64(i*3 + j) }
	_, _, _, err := MinCostPerfectContext(ctx, 16, cost)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestMinCostPerfectContextClean(t *testing.T) {
	cost := [][]int64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	fn := func(i, j int) int64 { return cost[i][j] }
	_, total, ok, err := MinCostPerfectContext(context.Background(), 3, fn)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v, want solved", ok, err)
	}
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
	// The ctx-less facade must produce the same optimum.
	_, pTotal, pOK := MinCostPerfect(3, fn)
	if !pOK || pTotal != total {
		t.Errorf("MinCostPerfect total=%d ok=%v, want %d true", pTotal, pOK, total)
	}
}
