package matching

import (
	"math/rand"
	"testing"

	"mclegal/internal/mcf"
)

// bruteForce enumerates all permutations (n <= 8) for the exact
// optimum, skipping Forbidden pairs.
func bruteForce(cost [][]int64) (int64, bool) {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := int64(1) << 62
	found := false
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			var s int64
			for r, c := range perm {
				if cost[r][c] >= Forbidden {
					return
				}
				s += cost[r][c]
			}
			if s < best {
				best = s
			}
			found = true
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best, found
}

func TestTinyKnown(t *testing.T) {
	cost := [][]int64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, ok := MinCostPerfectMatrix(cost)
	if !ok {
		t.Fatal("no matching found")
	}
	if total != 5 { // 1 + 2 + 2
		t.Errorf("total = %d, want 5", total)
	}
	seen := map[int]bool{}
	for _, j := range assign {
		if seen[j] {
			t.Fatalf("assign is not a permutation: %v", assign)
		}
		seen[j] = true
	}
}

func TestIdentityOptimal(t *testing.T) {
	// Zero diagonal, positive elsewhere: identity must win.
	n := 6
	assign, total, ok := MinCostPerfect(n, func(i, j int) int64 {
		if i == j {
			return 0
		}
		return 10
	})
	if !ok || total != 0 {
		t.Fatalf("total=%d ok=%v", total, ok)
	}
	for i, j := range assign {
		if i != j {
			t.Errorf("assign[%d] = %d", i, j)
		}
	}
}

func TestEmpty(t *testing.T) {
	assign, total, ok := MinCostPerfect(0, nil)
	if !ok || total != 0 || assign != nil {
		t.Errorf("empty case: %v %d %v", assign, total, ok)
	}
}

func TestSingle(t *testing.T) {
	assign, total, ok := MinCostPerfect(1, func(i, j int) int64 { return 7 })
	if !ok || total != 7 || assign[0] != 0 {
		t.Errorf("single case wrong: %v %d %v", assign, total, ok)
	}
}

func TestForbiddenForcesAlternative(t *testing.T) {
	cost := [][]int64{
		{Forbidden, 1},
		{1, 100},
	}
	assign, total, ok := MinCostPerfectMatrix(cost)
	if !ok {
		t.Fatal("matching should exist")
	}
	if total != 2 || assign[0] != 1 || assign[1] != 0 {
		t.Errorf("assign=%v total=%d", assign, total)
	}
}

func TestInfeasibleAllForbidden(t *testing.T) {
	cost := [][]int64{
		{Forbidden, Forbidden},
		{1, 2},
	}
	if _, _, ok := MinCostPerfectMatrix(cost); ok {
		t.Errorf("infeasible instance reported ok")
	}
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(7)
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				if rng.Intn(10) == 0 {
					cost[i][j] = Forbidden
				} else {
					cost[i][j] = int64(rng.Intn(50))
				}
			}
		}
		want, feasible := bruteForce(cost)
		assign, got, ok := MinCostPerfectMatrix(cost)
		if ok != feasible {
			t.Fatalf("trial %d: ok=%v feasible=%v", trial, ok, feasible)
		}
		if !ok {
			continue
		}
		if got != want {
			t.Fatalf("trial %d: got %d, want %d (cost=%v)", trial, got, want, cost)
		}
		used := make([]bool, n)
		var check int64
		for i, j := range assign {
			if used[j] {
				t.Fatalf("trial %d: duplicate column", trial)
			}
			used[j] = true
			check += cost[i][j]
		}
		if check != got {
			t.Fatalf("trial %d: reported total %d != recomputed %d", trial, got, check)
		}
	}
}

// Cross-check against the generic MCF solver on larger instances.
func TestRandomAgainstMCF(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(20)
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(1000))
			}
		}
		_, got, ok := MinCostPerfectMatrix(cost)
		if !ok {
			t.Fatalf("trial %d infeasible", trial)
		}

		g := mcf.NewGraph(2 * n)
		for i := 0; i < n; i++ {
			g.SetSupply(i, 1)
			g.SetSupply(n+i, -1)
			for j := 0; j < n; j++ {
				g.AddArc(i, n+j, 1, cost[i][j])
			}
		}
		res, err := g.Solve()
		if err != nil {
			t.Fatalf("trial %d mcf: %v", trial, err)
		}
		if res.Cost != got {
			t.Fatalf("trial %d: hungarian %d != mcf %d", trial, got, res.Cost)
		}
	}
}

func TestNegativeCosts(t *testing.T) {
	cost := [][]int64{
		{-5, 0},
		{0, -5},
	}
	_, total, ok := MinCostPerfectMatrix(cost)
	if !ok || total != -10 {
		t.Errorf("negative costs: total=%d ok=%v", total, ok)
	}
}

func BenchmarkMatching200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
		for j := range cost[i] {
			cost[i][j] = int64(rng.Intn(10000))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := MinCostPerfectMatrix(cost); !ok {
			b.Fatal("infeasible")
		}
	}
}
