package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the optimum is invariant under row/column permutations.
func TestQuickPermutationInvariance(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%5) + 2
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(100))
			}
		}
		_, base, ok := MinCostPerfectMatrix(cost)
		if !ok {
			return false
		}
		// Shuffle rows and columns.
		rp := rng.Perm(n)
		cp := rng.Perm(n)
		shuffled := make([][]int64, n)
		for i := range shuffled {
			shuffled[i] = make([]int64, n)
			for j := range shuffled[i] {
				shuffled[i][j] = cost[rp[i]][cp[j]]
			}
		}
		_, got, ok := MinCostPerfectMatrix(shuffled)
		return ok && got == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: adding a constant to every entry of one row shifts the
// optimum by exactly that constant.
func TestQuickRowConstantShift(t *testing.T) {
	f := func(seed int64, nRaw, deltaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%5) + 2
		delta := int64(deltaRaw % 50)
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(100))
			}
		}
		_, base, ok := MinCostPerfectMatrix(cost)
		if !ok {
			return false
		}
		row := rng.Intn(n)
		for j := range cost[row] {
			cost[row][j] += delta
		}
		_, got, ok := MinCostPerfectMatrix(cost)
		return ok && got == base+delta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the optimum never exceeds the identity assignment's cost
// and never beats the sum of per-row minima.
func TestQuickOptimumBounds(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 1
		cost := make([][]int64, n)
		var diag, rowMin int64
		for i := range cost {
			cost[i] = make([]int64, n)
			m := int64(1 << 60)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(1000))
				if cost[i][j] < m {
					m = cost[i][j]
				}
			}
			diag += cost[i][i]
			rowMin += m
		}
		_, got, ok := MinCostPerfectMatrix(cost)
		return ok && got <= diag && got >= rowMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
