// Package matching solves min-cost perfect bipartite matching, the
// engine behind the paper's maximum-displacement optimization
// (Section 3.2): cells of one type inside one fence region are
// re-assigned to the multiset of their current positions so that the
// total φ-cost is minimized.
//
// The solver is the classic successive-shortest-augmenting-path
// (Hungarian/Jonker-Volgenant) algorithm with potentials, an instance of
// the min-cost-flow formulation the paper references [20], specialized
// to assignment problems for an O(n^3) bound.
//
// A Solver owns all scratch arrays (u/v/p/way/minv/used) and is reused
// across instances; it can also carry the dual potentials of the
// previous solve into the next same-size instance (a warm start), which
// shortens the augmenting phases when consecutive instances are
// similar, as the per-(type×fence) groups of one design sweep are.
package matching

import (
	"context"
	"math"
)

// Forbidden marks a pair that must not be matched. It is large enough
// to dominate any realistic total yet leaves headroom against overflow
// when n Forbidden entries are summed.
const Forbidden = int64(math.MaxInt64) / (1 << 20)

const inf = int64(math.MaxInt64) / 4

// Solver is a reusable assignment solver. The zero value is ready to
// use. A Solver is not safe for concurrent use.
//
// The assign slice returned by its methods aliases solver-owned
// storage and is valid until the next call on the same Solver.
type Solver struct {
	// 1-based arrays in the classic formulation; index 0 is virtual.
	u, v   []int64 // dual potentials (rows, columns)
	p      []int   // p[j]: row matched to column j (0 = free)
	way    []int   // way[j]: previous column on the shortest path
	minv   []int64 // per-column min reduced cost this phase
	used   []bool  // columns on the alternating tree this phase
	assign []int

	lastN     int
	warmValid bool // duals are from a completed solve of size lastN
	lastWarm  bool
	stats     SolverStats
}

// SolverStats counts a Solver's activity since creation.
type SolverStats struct {
	Solves int // completed solves (perfect matching found)
	// WarmHits / WarmMisses split the warm-start attempts: a hit
	// reused the stored duals, a miss fell back to zero duals (first
	// solve, size change, or stored duals infeasible for the costs).
	WarmHits   int
	WarmMisses int
}

// NewSolver returns an empty Solver. Equivalent to new(Solver).
func NewSolver() *Solver { return &Solver{} }

// Stats returns the solve counters.
func (sv *Solver) Stats() SolverStats { return sv.stats }

// WarmStarted reports whether the most recent solve reused stored
// dual potentials.
func (sv *Solver) WarmStarted() bool { return sv.lastWarm }

// MinCostPerfect solves one instance cold (duals reset to zero); see
// the package-level MinCostPerfect for the contract.
func (sv *Solver) MinCostPerfect(n int, cost func(i, j int) int64) (assign []int, total int64, ok bool) {
	assign, total, ok, _ = sv.solve(nil, n, cost, false)
	return assign, total, ok
}

// MinCostPerfectContext is the Solver's cold solve with cancellation;
// see the package-level MinCostPerfectContext for the contract.
func (sv *Solver) MinCostPerfectContext(ctx context.Context, n int, cost func(i, j int) int64) (assign []int, total int64, ok bool, err error) {
	return sv.solve(ctx, n, cost, false)
}

// MinCostPerfectWarmContext solves the instance starting from the dual
// potentials of the Solver's previous completed solve when they are
// valid for it: same size and dual-feasible for the new costs
// (cost(i,j) ≥ u[i]+v[j] everywhere, checked in O(n²)). Otherwise it
// falls back to zero duals. Either way the returned matching is
// exactly optimal — warm duals change the tie-breaking among equal-cost
// optima, never the total cost.
func (sv *Solver) MinCostPerfectWarmContext(ctx context.Context, n int, cost func(i, j int) int64) (assign []int, total int64, ok bool, err error) {
	return sv.solve(ctx, n, cost, true)
}

// MinCostPerfect computes a minimum-cost perfect matching between n
// "rows" (cells) and n "columns" (positions). cost(i,j) is the cost of
// assigning row i to column j; return Forbidden to rule a pair out.
//
// It returns assign with assign[i] = column matched to row i and the
// total cost. ok is false if no perfect matching avoiding Forbidden
// pairs exists.
func MinCostPerfect(n int, cost func(i, j int) int64) (assign []int, total int64, ok bool) {
	var sv Solver
	assign, total, ok, _ = sv.solve(nil, n, cost, false)
	return assign, total, ok
}

// MinCostPerfectContext is MinCostPerfect with cancellation: ctx is
// polled once per augmented row (each row is one O(n^2) shortest-path
// phase, the natural preemption granularity), and a non-nil err —
// always ctx.Err() — means the solve was abandoned, not that no
// matching exists.
func MinCostPerfectContext(ctx context.Context, n int, cost func(i, j int) int64) (assign []int, total int64, ok bool, err error) {
	var sv Solver
	return sv.solve(ctx, n, cost, false)
}

// MinCostPerfectMatrix is MinCostPerfect over an explicit cost matrix.
func MinCostPerfectMatrix(cost [][]int64) (assign []int, total int64, ok bool) {
	n := len(cost)
	return MinCostPerfect(n, func(i, j int) int64 { return cost[i][j] })
}

// grow sizes the scratch arrays for an n-row instance, reallocating
// only when n outgrows their capacity.
func (sv *Solver) grow(n int) {
	nn := n + 1
	if cap(sv.u) < nn {
		sv.u = make([]int64, nn)
		sv.v = make([]int64, nn)
		sv.p = make([]int, nn)
		sv.way = make([]int, nn)
		sv.minv = make([]int64, nn)
		sv.used = make([]bool, nn)
	} else {
		sv.u = sv.u[:nn]
		sv.v = sv.v[:nn]
		sv.p = sv.p[:nn]
		sv.way = sv.way[:nn]
		sv.minv = sv.minv[:nn]
		sv.used = sv.used[:nn]
	}
	if cap(sv.assign) < n {
		sv.assign = make([]int, n)
	} else {
		sv.assign = sv.assign[:n]
	}
}

// dualsFeasible reports whether the stored potentials satisfy
// cost(i,j) - u[i] - v[j] >= 0 for every pair — the invariant the
// augmenting phases rely on when starting from nonzero duals.
func (sv *Solver) dualsFeasible(n int, cost func(i, j int) int64) bool {
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if cost(i-1, j-1)-sv.u[i]-sv.v[j] < 0 { //mclegal:writeset cost is a caller-supplied pure pricing closure; it receives indices by value and no resident state
				return false
			}
		}
	}
	return true
}

func (sv *Solver) solve(ctx context.Context, n int, cost func(i, j int) int64, warm bool) (assign []int, total int64, ok bool, err error) {
	if n == 0 {
		return nil, 0, true, nil
	}
	sv.grow(n)
	warmOK := warm && sv.warmValid && sv.lastN == n && sv.dualsFeasible(n, cost)
	if warm {
		if warmOK {
			sv.stats.WarmHits++
		} else {
			sv.stats.WarmMisses++
		}
	}
	sv.lastWarm = warmOK
	sv.lastN = n
	sv.warmValid = false // until this solve completes
	if !warmOK {
		for j := range sv.u {
			sv.u[j] = 0
			sv.v[j] = 0
		}
	}
	for j := range sv.p {
		sv.p[j] = 0
		sv.way[j] = 0
	}
	for i := 1; i <= n; i++ {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, 0, false, cerr
			}
		}
		sv.minv[0] = 0
		for j := 1; j <= n; j++ {
			sv.minv[j] = inf
		}
		for j := range sv.used {
			sv.used[j] = false
		}
		if !sv.augmentRow(i, n, cost) {
			return nil, 0, false, nil // no augmenting path
		}
	}
	for j := 1; j <= n; j++ {
		sv.assign[sv.p[j]-1] = j - 1
		c := cost(sv.p[j]-1, j-1) //mclegal:writeset cost is a caller-supplied pure pricing closure; it receives indices by value and no resident state
		if c >= Forbidden {
			return nil, 0, false, nil
		}
		total += c
	}
	sv.stats.Solves++
	sv.warmValid = true
	return sv.assign[:n:n], total, true, nil
}

// augmentRow runs one shortest-path phase: it grows the alternating
// tree from row i until a free column is reached, updating the dual
// potentials, then flips the matching along the path. It reports false
// when no augmenting path exists.
//
//mclegal:hotpath matching augment phase; TestSolverReuseZeroAlloc pins reused Solvers to 0 allocs/op
func (sv *Solver) augmentRow(i, n int, cost func(i, j int) int64) bool {
	sv.p[0] = i
	j0 := 0
	for {
		sv.used[j0] = true
		i0 := sv.p[j0]
		var delta int64 = inf
		j1 := -1
		for j := 1; j <= n; j++ {
			if sv.used[j] {
				continue
			}
			//mclegal:alloc cost is a caller-supplied closure; its own allocation behaviour is the caller's
			cur := cost(i0-1, j-1) - sv.u[i0] - sv.v[j] //mclegal:writeset cost is a caller-supplied pure pricing closure; it receives indices by value and no resident state
			if cur < sv.minv[j] {
				sv.minv[j] = cur
				sv.way[j] = j0
			}
			if sv.minv[j] < delta {
				delta = sv.minv[j]
				j1 = j
			}
		}
		if j1 < 0 || delta >= inf/2 {
			return false
		}
		for j := 0; j <= n; j++ {
			if sv.used[j] {
				sv.u[sv.p[j]] += delta
				sv.v[j] -= delta
			} else {
				sv.minv[j] -= delta
			}
		}
		j0 = j1
		if sv.p[j0] == 0 {
			break
		}
	}
	for j0 != 0 {
		j1 := sv.way[j0]
		sv.p[j0] = sv.p[j1]
		j0 = j1
	}
	return true
}
