// Package matching solves min-cost perfect bipartite matching, the
// engine behind the paper's maximum-displacement optimization
// (Section 3.2): cells of one type inside one fence region are
// re-assigned to the multiset of their current positions so that the
// total φ-cost is minimized.
//
// The solver is the classic successive-shortest-augmenting-path
// (Hungarian/Jonker-Volgenant) algorithm with potentials, an instance of
// the min-cost-flow formulation the paper references [20], specialized
// to assignment problems for an O(n^3) bound.
package matching

import (
	"context"
	"math"
)

// Forbidden marks a pair that must not be matched. It is large enough
// to dominate any realistic total yet leaves headroom against overflow
// when n Forbidden entries are summed.
const Forbidden = int64(math.MaxInt64) / (1 << 20)

// MinCostPerfect computes a minimum-cost perfect matching between n
// "rows" (cells) and n "columns" (positions). cost(i,j) is the cost of
// assigning row i to column j; return Forbidden to rule a pair out.
//
// It returns assign with assign[i] = column matched to row i and the
// total cost. ok is false if no perfect matching avoiding Forbidden
// pairs exists.
func MinCostPerfect(n int, cost func(i, j int) int64) (assign []int, total int64, ok bool) {
	assign, total, ok, _ = minCostPerfect(nil, n, cost)
	return assign, total, ok
}

// MinCostPerfectContext is MinCostPerfect with cancellation: ctx is
// polled once per augmented row (each row is one O(n^2) shortest-path
// phase, the natural preemption granularity), and a non-nil err —
// always ctx.Err() — means the solve was abandoned, not that no
// matching exists.
func MinCostPerfectContext(ctx context.Context, n int, cost func(i, j int) int64) (assign []int, total int64, ok bool, err error) {
	return minCostPerfect(ctx, n, cost)
}

func minCostPerfect(ctx context.Context, n int, cost func(i, j int) int64) (assign []int, total int64, ok bool, err error) {
	if n == 0 {
		return nil, 0, true, nil
	}
	const inf = int64(math.MaxInt64) / 4
	// 1-based arrays in the classic formulation; index 0 is virtual.
	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1)   // p[j]: row matched to column j (0 = free)
	way := make([]int, n+1) // way[j]: previous column on the shortest path
	for i := 1; i <= n; i++ {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, 0, false, cerr
			}
		}
		p[0] = i
		j0 := 0
		minv := make([]int64, n+1)
		used := make([]bool, n+1)
		for j := 1; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			var delta int64 = inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 || delta >= inf/2 {
				return nil, 0, false, nil // no augmenting path
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign = make([]int, n)
	for j := 1; j <= n; j++ {
		assign[p[j]-1] = j - 1
		c := cost(p[j]-1, j-1)
		if c >= Forbidden {
			return nil, 0, false, nil
		}
		total += c
	}
	return assign, total, true, nil
}

// MinCostPerfectMatrix is MinCostPerfect over an explicit cost matrix.
func MinCostPerfectMatrix(cost [][]int64) (assign []int, total int64, ok bool) {
	n := len(cost)
	return MinCostPerfect(n, func(i, j int) int64 { return cost[i][j] })
}
