// Package flow composes the paper's complete three-stage legalization
// pipeline (Figure 2) — multi-row global legalization, matching-based
// maximum-displacement optimization, and fixed-row-and-order MCF
// refinement — on top of the stage engine in internal/stage, with
// optional routability handling (Section 3.4) threaded through every
// stage. Options select which stages are composed (the Table 3
// ablations are stage lists, not flags inside the stages), Validate
// centralizes range checks and defaulting, and RunContext makes the
// whole pipeline cancellable and observable.
package flow

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"time"

	"mclegal/internal/baseline"
	"mclegal/internal/eval"
	"mclegal/internal/faults"
	"mclegal/internal/maxdisp"
	"mclegal/internal/mgl"
	"mclegal/internal/model"
	"mclegal/internal/refine"
	"mclegal/internal/route"
	"mclegal/internal/seg"
	"mclegal/internal/shard"
	"mclegal/internal/stage"
)

// NameGreedyFallback is the stage name of the MGL fallback (the
// order-preserving greedy legalizer) in timings, observer events and
// gate reports.
const NameGreedyFallback = "greedy-fallback"

// Options configures a pipeline run.
type Options struct {
	// Routability enables the Section 3.4 handling: pin-aware row and
	// x steering in MGL, IO penalties, and rail-safe feasible ranges
	// in the refinement.
	Routability bool
	// TotalDisplacement switches the refinement to uniform weights
	// (the Table 2 objective) instead of the contest S_am weights.
	TotalDisplacement bool
	// SkipMaxDisp and SkipRefine leave post-processing stages out of
	// the composed pipeline (Table 3 ablation).
	SkipMaxDisp, SkipRefine bool
	// Workers is the MGL evaluation thread count (0 = GOMAXPROCS).
	// The result never depends on it.
	Workers int
	// Delta0Rows is the φ threshold of the matching stage. 0 picks the
	// default: 10 rows, or effectively-infinite under a pure
	// total-displacement objective (φ must stay in its linear regime,
	// where the matching minimizes the plain total displacement).
	Delta0Rows float64
	// MaxDispWeight is n_0 of the refinement; 0 picks a default
	// proportional to the summed cell weights.
	MaxDispWeight int64
	// MGL allows overriding low-level legalizer options; Workers and
	// Rules are filled in by the pipeline.
	MGL mgl.Options
	// Observer, when set, receives stage start/finish events with
	// per-stage durations and work counters.
	Observer stage.Observer
	// Verify arms the per-stage legality gates: every stage runs
	// against a position snapshot, its result is audited (eval.Audit)
	// and checked for metric regressions, and any failure rolls the
	// stage back before the Recovery policy decides what happens next.
	Verify bool
	// Recovery selects the failure-handling policy: RecoverStrict
	// (default) fails the run on the first gate failure,
	// RecoverFallback runs per-stage fallback chains (MGL falls back
	// to the order-preserving greedy legalizer, the matching and
	// refinement stages are skipped), RecoverBestEffort additionally
	// never fails — an unrecoverable run ends with a faithfully
	// reported partial result instead of an error.
	Recovery stage.RecoveryPolicy
	// Faults is the optional deterministic fault-injection harness
	// consulted at the pipeline's injection points; see
	// internal/faults. Nil (the default) disables injection. In a
	// sharded run every shard consults its own Fork of the injector,
	// keyed by plan index, so injected behavior stays a function of the
	// plan rather than of shard scheduling order.
	Faults *faults.Injector
	// Shards enables sharded execution: the design is decomposed into
	// per-fence regions plus default-region die slabs (internal/shard)
	// and every shard runs the full stage pipeline on its own
	// subdesign, with Shards bounding how many legalize concurrently.
	// 0 (the default) keeps the monolithic single-pipeline path. Like
	// Workers, Shards is a pure concurrency knob: the decomposition is
	// a function of the design and ShardPlan alone, so the merged
	// placement is byte-identical for every Shards >= 1.
	Shards int
	// ShardPlan tunes the shard decomposition (slab size target and
	// utilization guard); ignored when Shards == 0.
	ShardPlan shard.Options
}

// ParseShards parses a -shards flag value: a non-negative shard
// concurrency, or "auto" for the machine's CPU count. 0 (and the empty
// string) select the monolithic path.
func ParseShards(s string) (int, error) {
	switch s {
	case "", "0":
		return 0, nil
	case "auto":
		return runtime.NumCPU(), nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("flow: invalid shard count %q (want a non-negative integer or \"auto\")", s)
	}
	return n, nil
}

// Validate checks Options ranges and applies defaults in place. Run
// calls it on its own copy; callers building Options programmatically
// can call it early to fail fast.
func (o *Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("flow: Workers must be >= 0, got %d", o.Workers)
	}
	if o.Delta0Rows < 0 {
		return fmt.Errorf("flow: Delta0Rows must be >= 0, got %g", o.Delta0Rows)
	}
	if o.MaxDispWeight < 0 {
		return fmt.Errorf("flow: MaxDispWeight must be >= 0, got %d", o.MaxDispWeight)
	}
	if o.MGL.Workers != 0 && o.MGL.Workers != o.Workers {
		return fmt.Errorf("flow: set Workers on Options, not Options.MGL (got %d vs %d)",
			o.MGL.Workers, o.Workers)
	}
	if o.Recovery < stage.RecoverStrict || o.Recovery > stage.RecoverBestEffort {
		return fmt.Errorf("flow: unknown recovery policy %d", o.Recovery)
	}
	if o.Shards < 0 {
		return fmt.Errorf("flow: Shards must be >= 0, got %d", o.Shards)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Delta0Rows == 0 {
		if o.TotalDisplacement {
			o.Delta0Rows = 1e9
		} else {
			o.Delta0Rows = 10
		}
	}
	return nil
}

// DeadlineError reports that the run's deadline budget expired
// mid-pipeline — as opposed to an explicit caller cancellation, which
// surfaces as a plain context.Canceled. Callers with different
// contracts for "too slow" and "told to stop" (the CLI's exit codes,
// the serving layer's HTTP codes) dispatch on it with errors.As;
// errors.Is(err, context.DeadlineExceeded) also remains true through
// Unwrap.
type DeadlineError struct {
	// Cause is the underlying context error chain (always satisfying
	// errors.Is(Cause, context.DeadlineExceeded)).
	Cause error
	// Elapsed is how long the run had been going when the deadline cut
	// it off.
	Elapsed time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("flow: deadline exceeded after %v", e.Elapsed)
}

// Unwrap exposes the context error to errors.Is/As.
func (e *DeadlineError) Unwrap() error { return e.Cause }

// Result reports the pipeline outcome.
type Result struct {
	Metrics    eval.Metrics
	Violations route.Violations
	HPWLBefore int64
	HPWLAfter  int64
	Score      float64

	MGLTime, MaxDispTime, RefineTime time.Duration
	Total                            time.Duration

	// Timings lists every stage that started, in execution order —
	// including a failed or cancelled one.
	Timings []stage.Timing

	// Status is the resilience layer's trust verdict: StatusLegal
	// (every stage passed), StatusRecovered (a fallback or safe skip
	// repaired the run), or StatusPartial (best-effort recovery was
	// exhausted; the placement is the best known state but not
	// verified legal).
	Status stage.Status
	// Gates lists every gate intervention of the run, in order.
	Gates []stage.GateReport

	// Stage artifacts. In a sharded run these are summed across shards
	// (MGLStats.Workers reports the per-shard maximum); the per-shard
	// breakdown is in Shards.
	MGLStats     mgl.Stats
	MaxDispStats maxdisp.Stats
	RefineReport refine.Report

	// Shards reports the per-shard outcomes of a sharded run, in plan
	// order; nil in monolithic runs.
	Shards []ShardOutcome
}

// ShardOutcome is one shard's slice of a sharded Result.
type ShardOutcome struct {
	// Name is the plan region's name ("fence3-pll", "slab1", ...).
	Name string
	// Cells is the shard's movable-cell count.
	Cells int
	// Status is the shard pipeline's own trust verdict.
	Status stage.Status
	// Error is the shard pipeline's failure, "" on success.
	Error string
	// Timings lists the shard's executed stages, in order.
	Timings []stage.Timing

	MGLStats     mgl.Stats
	MaxDispStats maxdisp.Stats
	RefineReport refine.Report
}

// Stages builds the stage list selected by opt for d: MGL always, the
// matching and refinement stages unless skipped. opt must already be
// validated.
func Stages(d *model.Design, opt Options) []stage.Stage {
	mglOpt := opt.MGL
	mglOpt.Workers = opt.Workers
	list := []stage.Stage{stage.NewMGL(mglOpt)}

	if !opt.SkipMaxDisp {
		list = append(list, stage.NewMaxDisp(maxdisp.Options{Delta0Rows: opt.Delta0Rows}))
	}

	if !opt.SkipRefine {
		rOpt := refine.Options{MaxDispWeight: opt.MaxDispWeight}
		if opt.TotalDisplacement {
			rOpt.Weights = refine.WeightUniform
		} else {
			rOpt.Weights = refine.WeightHeightAverage
		}
		if rOpt.MaxDispWeight == 0 && !opt.TotalDisplacement {
			// Default n_0: two orders of magnitude below the summed
			// displacement weights, so the max-displacement terms can
			// win local trades without dominating the average. A pure
			// total-displacement objective keeps n_0 = 0.
			rOpt.MaxDispWeight = 1 + 4*int64(d.MovableCount())/100
		}
		list = append(list, stage.NewRefine(rOpt, opt.Routability))
	}
	return list
}

// Run legalizes d in place and returns the evaluation of the result.
//
//mclegal:writes design.meta,design.xy,hotcells,occupancy,routememo,stagectx the flow runs the full pipeline: stages write positions, artifacts and scratch views, and sharding splits/merges the design's cell tables
func Run(d *model.Design, opt Options) (Result, error) {
	return RunContext(context.Background(), d, opt)
}

// RunContext legalizes d in place under ctx. Cancellation aborts
// between units of work inside every stage with ctx.Err(), leaving the
// design consistent (auditable) though generally not legal.
//
// On error the returned Result still carries everything gathered up to
// the failure — per-stage timings and the artifacts of completed and
// partially-run stages — so operators can see where the time went.
//
//mclegal:writes design.meta,design.xy,hotcells,occupancy,routememo,stagectx the flow runs the full pipeline: stages write positions, artifacts and scratch views, and sharding splits/merges the design's cell tables
func RunContext(ctx context.Context, d *model.Design, opt Options) (Result, error) {
	var res Result
	if err := opt.Validate(); err != nil {
		return res, err
	}
	if err := d.Validate(); err != nil {
		return res, err
	}
	//mclegal:wallclock total-runtime reporting only, never influences placement
	start := time.Now()
	res.HPWLBefore = eval.HPWL(d)

	var checker *route.Checker
	var perr error
	if opt.Shards > 0 {
		checker, perr = runSharded(ctx, d, opt, &res)
	} else {
		checker, perr = runMonolithic(ctx, d, opt, &res)
	}

	for _, tm := range res.Timings {
		switch stageBase(tm.Stage) {
		case stage.NameMGL:
			res.MGLTime += tm.Duration
		case stage.NameMaxDisp:
			res.MaxDispTime += tm.Duration
		case stage.NameRefine:
			res.RefineTime += tm.Duration
		}
	}
	//mclegal:wallclock total-runtime reporting only, never influences placement
	res.Total = time.Since(start)
	if perr != nil {
		if errors.Is(perr, context.DeadlineExceeded) {
			// Deadline expiry is a distinct failure class from caller
			// cancellation: the caller set a time budget and the run
			// honestly exceeded it.
			return res, &DeadlineError{Cause: perr, Elapsed: res.Total}
		}
		return res, fmt.Errorf("flow: %w", perr)
	}

	res.Metrics = eval.Measure(d)
	res.Violations = checker.Count()
	res.HPWLAfter = eval.HPWL(d)
	res.Score = eval.Score(eval.ScoreInput{
		Metrics:        res.Metrics,
		HPWLBefore:     res.HPWLBefore,
		HPWLAfter:      res.HPWLAfter,
		PinViolations:  res.Violations.Pin(),
		EdgeViolations: res.Violations.EdgeSpacing,
		Cells:          d.MovableCount(),
	})
	return res, nil
}

// stageBase strips the "shard/" prefix a sharded run puts on stage
// names, so per-stage time accounting works on both paths.
func stageBase(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}

// buildPipeline assembles the gated stage pipeline legalizing pc's
// design. The metric-check closures capture pc, so every shard of a
// sharded run gets checks bound to its own context.
func buildPipeline(pc *stage.PipelineContext, opt Options) stage.Pipeline {
	return stage.Pipeline{
		Stages:   Stages(pc.Design, opt),
		Observer: opt.Observer,
		Verify:   opt.Verify,
		Recovery: opt.Recovery,
		// MGL is the only stage whose failure needs a substitute: the
		// order-preserving greedy sweep (the Abacus-extension baseline)
		// is slower on displacement but far harder to break. The
		// matching and refinement stages recover by skipping, which
		// keeps the verified pre-stage placement.
		Fallbacks: map[string]stage.Stage{
			stage.NameMGL: &stage.FuncStage{
				StageName: NameGreedyFallback,
				Fn: func(ctx context.Context, pc *stage.PipelineContext) error {
					if err := ctx.Err(); err != nil {
						return err
					}
					return baseline.AbacusExt(pc.Design)
				},
			},
		},
		// Paper Section 3.2: each matching is an optimal assignment, so
		// the summed φ cost can never exceed the identity assignment's —
		// a larger total φ after the stage is a broken invariant. (The
		// raw max displacement in rows may grow slightly: φ is linear
		// below δ0, where trades across cells are by design.)
		MetricChecks: map[string]func(before, after eval.Metrics) error{
			stage.NameMaxDisp: func(before, after eval.Metrics) error {
				if st := pc.MaxDispStats; st.CostAfter > st.CostBefore {
					return fmt.Errorf("maxdisp: phi cost regressed from %d to %d",
						st.CostBefore, st.CostAfter)
				}
				return nil
			},
		},
	}
}

// runMonolithic is the classic single-pipeline path.
func runMonolithic(ctx context.Context, d *model.Design, opt Options, res *Result) (*route.Checker, error) {
	pc, err := stage.NewContext(d, opt.Routability)
	if err != nil {
		return nil, err
	}
	pc.Faults = opt.Faults

	p := buildPipeline(pc, opt)
	timings, report, perr := p.RunWithReport(ctx, pc)

	// Stage artifacts and timings are reported even when a stage
	// failed or the run was cancelled.
	res.MGLStats = pc.MGLStats
	res.MaxDispStats = pc.MaxDispStats
	res.RefineReport = pc.RefineReport
	res.Timings = timings
	res.Status = report.Status
	res.Gates = report.Gates
	return pc.Checker, perr
}

// runSharded decomposes d into the shard plan's regions, legalizes
// every region's subdesign through its own full pipeline (at most
// opt.Shards concurrently), and merges the disjoint placements back.
func runSharded(ctx context.Context, d *model.Design, opt Options, res *Result) (*route.Checker, error) {
	grid, err := seg.Build(d)
	if err != nil {
		return nil, err
	}
	plan := shard.BuildPlan(d, grid, opt.ShardPlan)
	shards := make([]stage.Shard, len(plan.Regions))
	for i, r := range plan.Regions {
		sub, err := model.NewSubdesign(d, r.Name, r.Cells, r.Blockages)
		if err != nil {
			return nil, fmt.Errorf("shard %s: %w", r.Name, err)
		}
		shards[i] = stage.Shard{Name: r.Name, Sub: sub, Index: i}
	}

	sp := &stage.ShardedPipeline{
		Workers: opt.Shards,
		Make: func(sh stage.Shard) (*stage.Pipeline, *stage.PipelineContext, error) {
			spc, err := stage.NewContext(sh.Sub.Design, opt.Routability)
			if err != nil {
				return nil, nil, err
			}
			// Each shard gets its own deterministic fork of the
			// injector: per-shard hit counters keyed by plan index, so
			// what fires never depends on shard scheduling order.
			spc.Faults = opt.Faults.Fork(sh.Index)
			p := buildPipeline(spc, opt)
			return &p, spc, nil
		},
	}
	results, report, perr := sp.Run(ctx, d, shards)

	res.Status = report.Status
	res.Gates = report.Gates
	for i := range results {
		r := &results[i]
		out := ShardOutcome{
			Name:    r.Shard.Name,
			Cells:   r.Shard.Sub.Movables,
			Status:  r.Report.Status,
			Timings: r.Timings,
		}
		if r.Err != nil {
			out.Error = r.Err.Error()
		}
		for _, tm := range r.Timings {
			res.Timings = append(res.Timings, stage.Timing{
				Stage:    r.Shard.Name + "/" + tm.Stage,
				Duration: tm.Duration,
			})
		}
		if pc := r.Context; pc != nil {
			out.MGLStats = pc.MGLStats
			out.MaxDispStats = pc.MaxDispStats
			out.RefineReport = pc.RefineReport
			res.MGLStats.Placed += pc.MGLStats.Placed
			res.MGLStats.WindowRetries += pc.MGLStats.WindowRetries
			res.MGLStats.Batches += pc.MGLStats.Batches
			if pc.MGLStats.Workers > res.MGLStats.Workers {
				res.MGLStats.Workers = pc.MGLStats.Workers
			}
			res.MaxDispStats.Groups += pc.MaxDispStats.Groups
			res.MaxDispStats.Swapped += pc.MaxDispStats.Swapped
			res.MaxDispStats.CostBefore += pc.MaxDispStats.CostBefore
			res.MaxDispStats.CostAfter += pc.MaxDispStats.CostAfter
			res.MaxDispStats.WarmHits += pc.MaxDispStats.WarmHits
			res.MaxDispStats.WarmMisses += pc.MaxDispStats.WarmMisses
			res.RefineReport.Nodes += pc.RefineReport.Nodes
			res.RefineReport.Arcs += pc.RefineReport.Arcs
			res.RefineReport.Pivots += pc.RefineReport.Pivots
			res.RefineReport.Edges += pc.RefineReport.Edges
			res.RefineReport.Moved += pc.RefineReport.Moved
			res.RefineReport.Rule = pc.RefineReport.Rule
			res.RefineReport.WarmHits += pc.RefineReport.WarmHits
			res.RefineReport.WarmMisses += pc.RefineReport.WarmMisses
			res.RefineReport.SolveNs += pc.RefineReport.SolveNs
		}
		res.Shards = append(res.Shards, out)
	}
	return route.NewChecker(d), perr
}

// Evaluate scores an already-legalized design (used for baselines),
// with hpwlBefore measured at GP positions by the caller.
func Evaluate(d *model.Design, hpwlBefore int64) Result {
	var res Result
	res.HPWLBefore = hpwlBefore
	res.HPWLAfter = eval.HPWL(d)
	res.Metrics = eval.Measure(d)
	res.Violations = route.NewChecker(d).Count()
	res.Score = eval.Score(eval.ScoreInput{
		Metrics:        res.Metrics,
		HPWLBefore:     res.HPWLBefore,
		HPWLAfter:      res.HPWLAfter,
		PinViolations:  res.Violations.Pin(),
		EdgeViolations: res.Violations.EdgeSpacing,
		Cells:          d.MovableCount(),
	})
	return res
}
