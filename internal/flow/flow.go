// Package flow runs the paper's complete three-stage legalization
// pipeline (Figure 2): multi-row global legalization, matching-based
// maximum-displacement optimization, and fixed-row-and-order MCF
// refinement, with optional routability handling (Section 3.4)
// threaded through every stage.
package flow

import (
	"fmt"
	"time"

	"mclegal/internal/eval"
	"mclegal/internal/maxdisp"
	"mclegal/internal/mgl"
	"mclegal/internal/model"
	"mclegal/internal/refine"
	"mclegal/internal/route"
	"mclegal/internal/seg"
)

// Options configures a pipeline run.
type Options struct {
	// Routability enables the Section 3.4 handling: pin-aware row and
	// x steering in MGL, IO penalties, and rail-safe feasible ranges
	// in the refinement.
	Routability bool
	// TotalDisplacement switches the refinement to uniform weights
	// (the Table 2 objective) instead of the contest S_am weights.
	TotalDisplacement bool
	// SkipMaxDisp and SkipRefine disable post-processing stages
	// (Table 3 ablation).
	SkipMaxDisp, SkipRefine bool
	// Workers is the MGL thread count (0 = GOMAXPROCS).
	Workers int
	// Delta0Rows is the φ threshold of the matching stage.
	Delta0Rows float64
	// MaxDispWeight is n_0 of the refinement; 0 picks a default
	// proportional to the summed cell weights.
	MaxDispWeight int64
	// MGL allows overriding low-level legalizer options; Workers and
	// Rules are filled in by the pipeline.
	MGL mgl.Options
}

// Result reports the pipeline outcome.
type Result struct {
	Metrics    eval.Metrics
	Violations route.Violations
	HPWLBefore int64
	HPWLAfter  int64
	Score      float64

	MGLTime, MaxDispTime, RefineTime time.Duration
	Total                            time.Duration

	MGLStats     mgl.Stats
	MaxDispStats maxdisp.Stats
	RefineReport refine.Report
}

// Run legalizes d in place and returns the evaluation of the result.
func Run(d *model.Design, opt Options) (Result, error) {
	var res Result
	if err := d.Validate(); err != nil {
		return res, err
	}
	start := time.Now()
	res.HPWLBefore = eval.HPWL(d)

	grid, err := seg.Build(d)
	if err != nil {
		return res, err
	}

	var rules *route.Rules
	checker := route.NewChecker(d)
	mglOpt := opt.MGL
	mglOpt.Workers = opt.Workers
	if opt.Routability {
		rules = route.NewRules(checker)
		mglOpt.Rules = rules
	}

	// Stage 1: MGL (Section 3.1).
	t0 := time.Now()
	leg := mgl.New(d, grid, mglOpt)
	if err := leg.Run(); err != nil {
		return res, fmt.Errorf("flow: MGL: %w", err)
	}
	res.MGLStats = leg.Stats
	res.MGLTime = time.Since(t0)

	// Stage 2: maximum-displacement optimization (Section 3.2). Under
	// a pure total-displacement objective (the Table 2 configuration)
	// φ must stay in its linear regime, where the matching minimizes
	// the plain total displacement.
	if !opt.SkipMaxDisp {
		t0 = time.Now()
		mdOpt := maxdisp.Options{Delta0Rows: opt.Delta0Rows}
		if opt.TotalDisplacement && mdOpt.Delta0Rows == 0 {
			mdOpt.Delta0Rows = 1e9
		}
		res.MaxDispStats = maxdisp.Optimize(d, mdOpt)
		res.MaxDispTime = time.Since(t0)
	}

	// Stage 3: fixed row & order refinement (Section 3.3).
	if !opt.SkipRefine {
		t0 = time.Now()
		rOpt := refine.Options{MaxDispWeight: opt.MaxDispWeight}
		if opt.TotalDisplacement {
			rOpt.Weights = refine.WeightUniform
		} else {
			rOpt.Weights = refine.WeightHeightAverage
		}
		if rOpt.MaxDispWeight == 0 && !opt.TotalDisplacement {
			// Default n_0: two orders of magnitude below the summed
			// displacement weights, so the max-displacement terms can
			// win local trades without dominating the average. A pure
			// total-displacement objective keeps n_0 = 0.
			rOpt.MaxDispWeight = 1 + 4*int64(d.MovableCount())/100
		}
		if opt.Routability && rules != nil {
			rOpt.Ranges = rules.RangeProvider(grid)
		}
		rep, err := refine.Optimize(d, grid, rOpt)
		if err != nil {
			return res, fmt.Errorf("flow: refine: %w", err)
		}
		res.RefineReport = rep
		res.RefineTime = time.Since(t0)
	}

	res.Total = time.Since(start)
	res.Metrics = eval.Measure(d)
	res.Violations = checker.Count()
	res.HPWLAfter = eval.HPWL(d)
	res.Score = eval.Score(eval.ScoreInput{
		Metrics:        res.Metrics,
		HPWLBefore:     res.HPWLBefore,
		HPWLAfter:      res.HPWLAfter,
		PinViolations:  res.Violations.Pin(),
		EdgeViolations: res.Violations.EdgeSpacing,
		Cells:          d.MovableCount(),
	})
	return res, nil
}

// Evaluate scores an already-legalized design (used for baselines),
// with hpwlBefore measured at GP positions by the caller.
func Evaluate(d *model.Design, hpwlBefore int64) Result {
	var res Result
	res.HPWLBefore = hpwlBefore
	res.HPWLAfter = eval.HPWL(d)
	res.Metrics = eval.Measure(d)
	res.Violations = route.NewChecker(d).Count()
	res.Score = eval.Score(eval.ScoreInput{
		Metrics:        res.Metrics,
		HPWLBefore:     res.HPWLBefore,
		HPWLAfter:      res.HPWLAfter,
		PinViolations:  res.Violations.Pin(),
		EdgeViolations: res.Violations.EdgeSpacing,
		Cells:          d.MovableCount(),
	})
	return res
}
