package flow

import (
	"testing"

	"mclegal/internal/bmark"
	"mclegal/internal/eval"
)

func TestDelta0Passthrough(t *testing.T) {
	// A tiny δ0 makes the matching stage attack the maximum harder
	// than a huge δ0 (which degenerates to plain total-displacement
	// matching).
	d1 := bmark.Generate(bmark.Params{
		Name: "d0", Seed: 31, Counts: [4]int{900, 90, 20, 8}, Density: 0.75,
	})
	d2 := d1.Clone()
	r1, err := Run(d1, Options{Workers: 1, Delta0Rows: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(d2, Options{Workers: 1, Delta0Rows: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics.MaxDisp > r2.Metrics.MaxDisp {
		t.Errorf("tight δ0 should not worsen max disp: %.1f vs %.1f",
			r1.Metrics.MaxDisp, r2.Metrics.MaxDisp)
	}
}

func TestMaxDispWeightOverride(t *testing.T) {
	d1 := bmark.Generate(bmark.Params{
		Name: "n0", Seed: 37, Counts: [4]int{700, 70, 16, 6}, Density: 0.7,
	})
	d2 := d1.Clone()
	// Huge n0: the refinement all but ignores the average.
	r1, err := Run(d1, Options{Workers: 1, MaxDispWeight: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(d2, Options{Workers: 1, MaxDispWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Same placement before refine, so the n0-heavy run must end with
	// max displacement <= the n0-light run (up to the shared stages).
	if r1.Metrics.MaxDisp > r2.Metrics.MaxDisp+1e-9 {
		t.Errorf("large n0 worsened max: %.2f vs %.2f", r1.Metrics.MaxDisp, r2.Metrics.MaxDisp)
	}
}

func TestSkipStagesIndependently(t *testing.T) {
	base := bmark.Generate(bmark.Params{
		Name: "skip", Seed: 41, Counts: [4]int{500, 50, 10, 4}, Density: 0.7,
	})
	for _, tc := range []struct {
		name                string
		skipMax, skipRefine bool
	}{
		{"maxdisp-only", false, true},
		{"refine-only", true, false},
	} {
		d := base.Clone()
		res, err := Run(d, Options{Workers: 1, SkipMaxDisp: tc.skipMax, SkipRefine: tc.skipRefine})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if tc.skipMax && res.MaxDispStats.Groups != 0 {
			t.Errorf("%s: matching ran", tc.name)
		}
		if tc.skipRefine && res.RefineReport.Nodes != 0 {
			t.Errorf("%s: refine ran", tc.name)
		}
		if !tc.skipRefine && res.RefineReport.Nodes == 0 {
			t.Errorf("%s: refine did not run", tc.name)
		}
		m := eval.Measure(d)
		if m.AvgDisp <= 0 {
			t.Errorf("%s: no work done", tc.name)
		}
	}
}
