package flow

import (
	"testing"

	"mclegal/internal/bmark"
	"mclegal/internal/eval"
	"mclegal/internal/seg"
)

// A mid-scale end-to-end stress run (~5k cells with fences, rails and
// nets) proving the full pipeline holds up beyond toy sizes. Skipped in
// -short mode.
func TestStressMidScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping stress test in short mode")
	}
	d := bmark.Generate(bmark.Params{
		Name: "stress", Seed: 77,
		Counts:      [4]int{4400, 360, 70, 24},
		Density:     0.62,
		NumFences:   3,
		FenceFrac:   0.6,
		NetFrac:     0.5,
		IOPins:      24,
		Routability: true,
	})
	res, err := Run(d, Options{Routability: true})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("illegal: %v (of %d)", v[0], len(v))
	}
	if res.Violations.EdgeSpacing != 0 {
		t.Errorf("%d edge violations", res.Violations.EdgeSpacing)
	}
	if res.MGLStats.Placed != d.MovableCount() {
		t.Errorf("placed %d/%d", res.MGLStats.Placed, d.MovableCount())
	}
	t.Logf("stress: %d cells, avg %.3f rows, max %.1f rows, pins %d, total %v",
		d.MovableCount(), res.Metrics.AvgDisp, res.Metrics.MaxDisp,
		res.Violations.Pin(), res.Total)
}
