package flow

import (
	"strings"
	"testing"

	"mclegal/internal/geom"
	"mclegal/internal/model"
	"mclegal/internal/stage"
)

// When a stage fails, the partial Result must still surface the work
// done up to the failure — MGL stats and per-stage timings — so
// operators can see where the time went.
func TestPartialResultOnMGLFailure(t *testing.T) {
	d := &model.Design{
		Name: "partial",
		Tech: model.Tech{SiteW: 10, RowH: 80, NumSites: 30, NumRows: 4},
		Types: []model.CellType{
			{Name: "S1", Width: 2, Height: 1},
		},
		// A fence with room for exactly two width-2 cells.
		Fences: []model.Fence{{Name: "F", Rects: []geom.Rect{geom.RectWH(0, 0, 4, 1)}}},
	}
	add := func(gx, gy int, f model.FenceID) {
		d.Cells = append(d.Cells, model.Cell{
			Name: "c", Type: 0, Fence: f, GX: gx, GY: gy, X: gx, Y: gy,
		})
	}
	// Three cells assigned to the two-slot fence: the third cannot be
	// legalized anywhere.
	add(0, 0, 1)
	add(1, 0, 1)
	add(2, 0, 1)
	// Unconstrained cells that legalize fine.
	for i := 0; i < 6; i++ {
		add(10+3*i, 1+i%3, 0)
	}

	res, err := Run(d, Options{Workers: 1})
	if err == nil {
		t.Fatal("overfull fence legalized")
	}
	if !strings.Contains(err.Error(), "stage mgl") {
		t.Errorf("error not attributed to its stage: %v", err)
	}
	if res.MGLStats.Placed == 0 {
		t.Error("partial MGL stats discarded on failure")
	}
	if len(res.Timings) != 1 || res.Timings[0].Stage != stage.NameMGL {
		t.Errorf("timings = %+v", res.Timings)
	}
	if res.MGLTime <= 0 || res.Total <= 0 {
		t.Errorf("timings not recorded: MGL %v total %v", res.MGLTime, res.Total)
	}
}
