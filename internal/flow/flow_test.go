package flow

import (
	"testing"

	"mclegal/internal/bmark"
	"mclegal/internal/eval"
	"mclegal/internal/seg"
)

func TestFullPipeline(t *testing.T) {
	d := bmark.Generate(bmark.Params{
		Name: "flow", Seed: 4, Counts: [4]int{500, 50, 12, 6},
		Density: 0.65, NumFences: 1, FenceFrac: 0.5, NetFrac: 0.5, IOPins: 8,
		Routability: true,
	})
	res, err := Run(d, Options{Routability: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if v := eval.Audit(d, grid); len(v) > 0 {
		t.Fatalf("illegal result: %v", v[0])
	}
	if res.Metrics.AvgDisp <= 0 || res.Score <= 0 {
		t.Errorf("degenerate metrics: %+v", res.Metrics)
	}
	if res.HPWLBefore <= 0 || res.HPWLAfter <= 0 {
		t.Errorf("HPWL not measured")
	}
	if res.MGLStats.Placed != d.MovableCount() {
		t.Errorf("placed %d of %d", res.MGLStats.Placed, d.MovableCount())
	}
	if res.RefineReport.Nodes == 0 {
		t.Errorf("refine did not run")
	}
	if res.MGLTime <= 0 || res.Total <= 0 {
		t.Errorf("timings not recorded")
	}
}

// Table 3's shape: the two post-processing stages reduce the maximum
// displacement markedly and the average at least slightly.
func TestPostProcessingAblation(t *testing.T) {
	var maxBefore, maxAfter, avgBefore, avgAfter float64
	for seed := int64(20); seed < 24; seed++ {
		d1 := bmark.Generate(bmark.Params{
			Name: "abl", Seed: seed, Counts: [4]int{700, 70, 16, 8},
			Density: 0.72, NumFences: 1, FenceFrac: 0.5, Routability: false,
		})
		d2 := d1.Clone()
		r1, err := Run(d1, Options{Workers: 2, SkipMaxDisp: true, SkipRefine: true})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(d2, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		maxBefore += r1.Metrics.MaxDisp
		maxAfter += r2.Metrics.MaxDisp
		avgBefore += r1.Metrics.AvgDisp
		avgAfter += r2.Metrics.AvgDisp
	}
	if maxAfter >= maxBefore {
		t.Errorf("post-processing did not reduce max disp: %.2f -> %.2f", maxBefore, maxAfter)
	}
	if avgAfter > avgBefore*1.001 {
		t.Errorf("post-processing worsened avg disp: %.4f -> %.4f", avgBefore, avgAfter)
	}
	t.Logf("max %.2f->%.2f avg %.4f->%.4f", maxBefore, maxAfter, avgBefore, avgAfter)
}

func TestTotalDisplacementMode(t *testing.T) {
	d := bmark.Generate(bmark.Params{
		Name: "td", Seed: 6, Counts: [4]int{400, 40, 0, 0}, Density: 0.6,
	})
	res, err := Run(d, Options{Workers: 1, TotalDisplacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalDispSites <= 0 {
		t.Errorf("no displacement: %+v", res.Metrics)
	}
}

func TestInvalidDesignRejected(t *testing.T) {
	d := bmark.Generate(bmark.Params{Name: "bad", Seed: 1, Counts: [4]int{10, 0, 0, 0}, Density: 0.3})
	d.Cells[0].Type = 99
	if _, err := Run(d, Options{}); err == nil {
		t.Fatal("invalid design accepted")
	}
}

func TestEvaluateStandalone(t *testing.T) {
	d := bmark.Generate(bmark.Params{Name: "ev", Seed: 2, Counts: [4]int{100, 10, 0, 0}, Density: 0.5, NetFrac: 0.5})
	before := eval.HPWL(d)
	if _, err := Run(d, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	res := Evaluate(d, before)
	if res.HPWLBefore != before || res.Score <= 0 {
		t.Errorf("Evaluate wrong: %+v", res)
	}
}
