package flow

import (
	"bytes"
	"strings"
	"testing"

	"mclegal/internal/bmark"
	"mclegal/internal/eval"
	"mclegal/internal/faults"
	"mclegal/internal/seg"
	"mclegal/internal/shard"
)

// Shards is a pure concurrency knob over a fixed decomposition:
// legalizing the same design with 1 and 4 concurrent shards must
// produce byte-identical placements. Run under -race via `make check`.
func TestShardedDeterministicAcrossShardCounts(t *testing.T) {
	base := bmark.Generate(bmark.Params{
		Name: "shard-det", Seed: 4217, Counts: [4]int{1100, 110, 24, 10},
		Density: 0.62, NumFences: 2, FenceFrac: 0.5, NetFrac: 0.4, IOPins: 12,
		Routability: true,
	})
	plan := shard.Options{SlabTargetCells: 250, MaxSlabUtil: 0.95}

	run := func(shards int) []byte {
		d := base.Clone()
		res, err := Run(d, Options{Routability: true, Workers: 1, Shards: shards, ShardPlan: plan})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(res.Shards) < 3 {
			t.Fatalf("shards=%d: plan has only %d regions, want fences plus slabs", shards, len(res.Shards))
		}
		var buf bytes.Buffer
		if err := bmark.Write(&buf, d); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	s1 := run(1)
	s4 := run(4)
	if !bytes.Equal(s1, s4) {
		t.Fatal("Shards=1 and Shards=4 placements are not byte-identical")
	}
}

// The merged sharded placement must be legal on the parent design —
// including across slab seams — and every shard must pass its own
// legality gates.
func TestShardedRunMergedPlacementIsLegal(t *testing.T) {
	d := bmark.Generate(bmark.Params{
		Name: "shard-legal", Seed: 99, Counts: [4]int{900, 90, 20, 8},
		Density: 0.6, NumFences: 2, FenceFrac: 0.5, NetFrac: 0.3,
	})
	res, err := Run(d, Options{
		Workers: 1, Shards: 2, Verify: true,
		ShardPlan: shard.Options{SlabTargetCells: 200, MaxSlabUtil: 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 0 {
		t.Errorf("status = %v, want legal", res.Status)
	}
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if vs := eval.Audit(d, grid); len(vs) > 0 {
		t.Fatalf("merged placement has %d violations; first: %v", len(vs), vs[0])
	}
}

// A sharded run reports the per-shard breakdown: fence regions first,
// then slabs, with prefixed stage timings and summed top-level stats.
func TestShardedRunReportsPerShardOutcomes(t *testing.T) {
	d := bmark.Generate(bmark.Params{
		Name: "shard-report", Seed: 7, Counts: [4]int{700, 70, 16, 6},
		Density: 0.55, NumFences: 1, FenceFrac: 0.4, NetFrac: 0.3,
	})
	res, err := Run(d, Options{Workers: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) < 2 {
		t.Fatalf("shards = %+v", res.Shards)
	}
	if !strings.HasPrefix(res.Shards[0].Name, "fence1-") {
		t.Errorf("first region %q, want the drawn fence", res.Shards[0].Name)
	}
	if res.Shards[len(res.Shards)-1].Name != "slab0" &&
		!strings.HasPrefix(res.Shards[len(res.Shards)-1].Name, "slab") {
		t.Errorf("last region %q, want a slab", res.Shards[len(res.Shards)-1].Name)
	}
	var cells, placed int
	for _, sh := range res.Shards {
		cells += sh.Cells
		placed += sh.MGLStats.Placed
		if len(sh.Timings) == 0 {
			t.Errorf("shard %s has no timings", sh.Name)
		}
	}
	if cells != d.MovableCount() {
		t.Errorf("shard cells sum to %d, want %d", cells, d.MovableCount())
	}
	if res.MGLStats.Placed != placed {
		t.Errorf("aggregated Placed = %d, per-shard sum = %d", res.MGLStats.Placed, placed)
	}
	if res.MGLTime == 0 {
		t.Error("MGLTime not accumulated from prefixed timings")
	}
	for _, tm := range res.Timings {
		if !strings.Contains(tm.Stage, "/") {
			t.Errorf("timing %q lacks a shard prefix", tm.Stage)
		}
	}
}

// Sharded runs accept fault injection: every shard consults its own
// per-plan-index fork of the injector (independent deterministic hit
// counters), so Validate no longer rejects the combination. The
// sharded recovery behavior itself is covered in shard_faults_test.go.
func TestShardedRunAcceptsFaultInjection(t *testing.T) {
	opt := Options{Shards: 2, Faults: faults.New()}
	if err := opt.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want sharded fault injection accepted", err)
	}
}

func TestParseShards(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    int
		wantErr bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"3", 3, false},
		{"-1", 0, true},
		{"many", 0, true},
		{"1.5", 0, true},
	} {
		got, err := ParseShards(tc.in)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("ParseShards(%q) = %d, %v; want %d, err=%v", tc.in, got, err, tc.want, tc.wantErr)
		}
	}
	if n, err := ParseShards("auto"); err != nil || n < 1 {
		t.Errorf("ParseShards(auto) = %d, %v", n, err)
	}
	if opt := (Options{Shards: -1}); opt.Validate() == nil {
		t.Error("negative Shards validated")
	}
}
