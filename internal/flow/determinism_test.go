package flow

import (
	"bytes"
	"testing"

	"mclegal/internal/bmark"
)

// The paper's Section 3.5 scheduler is deterministic by construction:
// batch composition and commit order never depend on the worker count,
// which only bounds evaluation concurrency. Legalizing the same seeded
// benchmark with 1 and 8 workers must therefore produce byte-identical
// cell positions. Run under -race via `make check`.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	base := bmark.Generate(bmark.Params{
		Name: "det", Seed: 1213, Counts: [4]int{1100, 110, 24, 10},
		Density: 0.68, NumFences: 2, FenceFrac: 0.5, NetFrac: 0.4, IOPins: 12,
		Routability: true,
	})

	run := func(workers int) []byte {
		d := base.Clone()
		if _, err := Run(d, Options{Routability: true, Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := bmark.Write(&buf, d); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	w1 := run(1)
	w8 := run(8)
	if !bytes.Equal(w1, w8) {
		t.Fatal("Workers=1 and Workers=8 placements are not byte-identical")
	}
}
