package flow

import (
	"errors"
	"testing"

	"mclegal/internal/bmark"
	"mclegal/internal/eval"
	"mclegal/internal/faults"
	"mclegal/internal/model"
	"mclegal/internal/seg"
	"mclegal/internal/stage"
)

func recoveryBench() *model.Design {
	return bmark.Generate(bmark.Params{
		Name: "rec", Seed: 77, Counts: [4]int{300, 30, 8, 4},
		Density: 0.6, NumFences: 1, FenceFrac: 0.5, NetFrac: 0.4,
	})
}

func auditClean(t *testing.T, d *model.Design) {
	t.Helper()
	grid, err := seg.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if vs := eval.Audit(d, grid); len(vs) > 0 {
		t.Fatalf("placement not legal: %d violations, first %v", len(vs), vs[0])
	}
}

// Every injection point of the pipeline, with the stage a Strict
// GateReport must name for it.
var injectionPoints = []struct {
	name  string
	point faults.Point
	stage string
}{
	{"stage-error-mgl", faults.StageError(stage.NameMGL), stage.NameMGL},
	{"stage-error-maxdisp", faults.StageError(stage.NameMaxDisp), stage.NameMaxDisp},
	{"stage-error-refine", faults.StageError(stage.NameRefine), stage.NameRefine},
	{"illegal-move-mgl", faults.IllegalMove(stage.NameMGL), stage.NameMGL},
	{"illegal-move-maxdisp", faults.IllegalMove(stage.NameMaxDisp), stage.NameMaxDisp},
	{"illegal-move-refine", faults.IllegalMove(stage.NameRefine), stage.NameRefine},
	{"mgl-worker-panic", faults.MGLWorkerPanic, stage.NameMGL},
	{"mgl-insert-outside", faults.MGLInsertOutside, stage.NameMGL},
	{"matching-fail", faults.MatchingFail, stage.NameMaxDisp},
	{"refine-infeasible", faults.RefineInfeasible, stage.NameRefine},
}

// A clean verified run must pass every gate: Status Legal, no
// interventions, no false positives from the audits.
func TestVerifiedCleanRun(t *testing.T) {
	d := recoveryBench()
	res, err := Run(d, Options{Workers: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != stage.StatusLegal || len(res.Gates) != 0 {
		t.Errorf("status %v, gates %+v", res.Status, res.Gates)
	}
	auditClean(t, d)
}

// Strict runs fail on the injected fault with a typed GateError naming
// the offending stage — at every injection point.
func TestStrictFailsWithTypedGateReport(t *testing.T) {
	for _, ip := range injectionPoints {
		t.Run(ip.name, func(t *testing.T) {
			d := recoveryBench()
			_, err := Run(d, Options{
				Workers: 2, Verify: true,
				Recovery: stage.RecoverStrict,
				Faults:   faults.New().Arm(ip.point),
			})
			var ge *stage.GateError
			if !errors.As(err, &ge) {
				t.Fatalf("err = %T %v, want *stage.GateError", err, err)
			}
			if ge.Report.Stage != ip.stage {
				t.Errorf("gate names stage %q, want %q", ge.Report.Stage, ip.stage)
			}
			if !ge.Report.RolledBack || ge.Report.Action != stage.ActionFailed {
				t.Errorf("report = %s", ge.Report.String())
			}
		})
	}
}

// Fallback runs end legal at every injection point: MGL faults are
// repaired by the greedy fallback, matching and refinement faults by
// rolling back and skipping the stage.
func TestFallbackEndsLegalEverywhere(t *testing.T) {
	for _, ip := range injectionPoints {
		t.Run(ip.name, func(t *testing.T) {
			d := recoveryBench()
			res, err := Run(d, Options{
				Workers: 2, Verify: true,
				Recovery: stage.RecoverFallback,
				Faults:   faults.New().Arm(ip.point),
			})
			if err != nil {
				t.Fatalf("fallback run failed: %v", err)
			}
			if res.Status != stage.StatusRecovered {
				t.Errorf("status = %v, want recovered", res.Status)
			}
			if len(res.Gates) == 0 {
				t.Error("no gate intervention recorded")
			} else if g := res.Gates[0]; g.Stage != ip.stage {
				t.Errorf("gate names stage %q, want %q", g.Stage, ip.stage)
			}
			auditClean(t, d)
		})
	}
}

// BestEffort never returns an error, whatever is injected, and every
// recoverable fault still ends legal.
func TestBestEffortNeverErrors(t *testing.T) {
	for _, ip := range injectionPoints {
		t.Run(ip.name, func(t *testing.T) {
			d := recoveryBench()
			res, err := Run(d, Options{
				Workers: 2, Verify: true,
				Recovery: stage.RecoverBestEffort,
				Faults:   faults.New().Arm(ip.point),
			})
			if err != nil {
				t.Fatalf("best-effort returned error: %v", err)
			}
			if res.Status == stage.StatusPartial {
				// Allowed by contract, but every single-point fault here
				// is recoverable, so partial means a fallback broke.
				t.Errorf("single recoverable fault ended partial: %+v", res.Gates)
			}
			auditClean(t, d)
		})
	}
}

// Exhausting the fallback too (MGL fails, then the greedy fallback is
// also failed by injection) must distinguish Fallback from BestEffort:
// a typed error versus a faithfully-reported partial result.
func TestFallbackChainExhaustion(t *testing.T) {
	arm := func() *faults.Injector {
		return faults.New().
			Arm(faults.StageError(stage.NameMGL)).
			Arm(faults.StageError(NameGreedyFallback))
	}

	d := recoveryBench()
	_, err := Run(d, Options{
		Workers: 2, Verify: true, Recovery: stage.RecoverFallback, Faults: arm(),
	})
	var ge *stage.GateError
	if !errors.As(err, &ge) || ge.Report.Stage != stage.NameMGL {
		t.Fatalf("err = %v, want GateError for mgl", err)
	}

	d2 := recoveryBench()
	res, err := Run(d2, Options{
		Workers: 2, Verify: true, Recovery: stage.RecoverBestEffort, Faults: arm(),
	})
	if err != nil {
		t.Fatalf("best-effort returned error: %v", err)
	}
	if res.Status != stage.StatusPartial {
		t.Errorf("status = %v, want partial", res.Status)
	}
	// The failed fallback attempt must be visible in the gate log.
	var sawFallbackFailure bool
	for _, g := range res.Gates {
		if g.Stage == NameGreedyFallback && g.Action == stage.ActionFailed {
			sawFallbackFailure = true
		}
	}
	if !sawFallbackFailure {
		t.Errorf("fallback failure not recorded: %+v", res.Gates)
	}
	// Partial means rolled back to the pre-MGL snapshot: positions are
	// the (generally illegal) global placement, reported faithfully.
	if res.Status == stage.StatusPartial {
		for i := range d2.Cells {
			if d2.Cells[i].X != d2.Cells[i].GX || d2.Cells[i].Y != d2.Cells[i].GY {
				t.Fatalf("cell %d moved despite aborted run", i)
			}
		}
	}
}

// Recovery policies are rejected by Validate when out of range.
func TestRecoveryOptionValidation(t *testing.T) {
	o := Options{Recovery: stage.RecoveryPolicy(42)}
	if err := o.Validate(); err == nil {
		t.Fatal("bad recovery policy accepted")
	}
}
