package flow

import (
	"sync"
	"testing"

	"mclegal/internal/bmark"
	"mclegal/internal/stage"
)

// eventLog records observer callbacks for assertions.
type eventLog struct {
	mu       sync.Mutex
	starts   []stage.StartEvent
	finishes []stage.FinishEvent
}

func (l *eventLog) StageStart(ev stage.StartEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.starts = append(l.starts, ev)
}

func (l *eventLog) StageFinish(ev stage.FinishEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.finishes = append(l.finishes, ev)
}

// An observer attached via Options receives start/finish events with
// non-zero durations and work counters for all three stages on a
// seeded contest benchmark.
func TestObserverEventsOnContestBench(t *testing.T) {
	b := bmark.ContestBenches()[9] // fft_a_md2, low density
	d := bmark.ContestDesign(b, 0.02)
	log := &eventLog{}
	res, err := Run(d, Options{Routability: true, Workers: 2, Observer: log})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{stage.NameMGL, stage.NameMaxDisp, stage.NameRefine}
	if len(log.starts) != 3 || len(log.finishes) != 3 {
		t.Fatalf("starts %d finishes %d", len(log.starts), len(log.finishes))
	}
	for i, name := range want {
		st, fin := log.starts[i], log.finishes[i]
		if st.Stage != name || fin.Stage != name {
			t.Errorf("event %d: stage %s/%s, want %s", i, st.Stage, fin.Stage, name)
		}
		if st.Index != i || st.Total != 3 {
			t.Errorf("%s: index %d/%d", name, st.Index, st.Total)
		}
		if st.Cells != d.MovableCount() {
			t.Errorf("%s: cells = %d", name, st.Cells)
		}
		if fin.Duration <= 0 {
			t.Errorf("%s: zero duration", name)
		}
		if fin.CellsPerSec <= 0 {
			t.Errorf("%s: zero throughput", name)
		}
		if len(fin.Counters) == 0 {
			t.Errorf("%s: no counters", name)
		}
		if fin.Err != nil {
			t.Errorf("%s: unexpected error %v", name, fin.Err)
		}
	}
	if c := log.finishes[0].Counters["cells_placed"]; c != int64(d.MovableCount()) {
		t.Errorf("mgl cells_placed = %d, want %d", c, d.MovableCount())
	}
	if log.finishes[1].Counters["matchings_solved"] != int64(res.MaxDispStats.Groups) {
		t.Errorf("matching counters diverge from stats")
	}
	if log.finishes[2].Counters["simplex_pivots"] != int64(res.RefineReport.Pivots) {
		t.Errorf("refine counters diverge from report")
	}
}
