package flow

import (
	"context"
	"errors"
	"testing"
	"time"

	"mclegal/internal/bmark"
	"mclegal/internal/eval"
	"mclegal/internal/mgl"
	"mclegal/internal/model"
	"mclegal/internal/seg"
	"mclegal/internal/stage"
)

func cancelBench(seed int64) *model.Design {
	return bmark.Generate(bmark.Params{
		Name: "cancel", Seed: seed, Counts: [4]int{900, 90, 20, 8},
		Density: 0.65, NumFences: 1, FenceFrac: 0.5,
	})
}

// A context cancelled before the run starts stops the pipeline before
// any stage executes; the design is untouched.
func TestCancelBeforeRun(t *testing.T) {
	d := cancelBench(51)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, d, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(res.Timings) != 0 || res.MGLStats.Placed != 0 {
		t.Errorf("stages ran after pre-cancellation: %+v", res.Timings)
	}
	for i := range d.Cells {
		if d.Cells[i].X != d.Cells[i].GX || d.Cells[i].Y != d.Cells[i].GY {
			t.Fatalf("cell %d moved by a cancelled run", i)
		}
	}
}

// A context cancelled mid-MGL returns context.Canceled promptly with a
// partial Result, and leaves the design consistent: committed cells
// keep their (legal) positions, the rest stay at GP, and the design
// remains auditable.
func TestCancelMidMGL(t *testing.T) {
	for _, workers := range []int{1, 4} {
		d := cancelBench(52)
		ctx, cancel := context.WithCancel(context.Background())
		opt := Options{
			Workers: workers,
			MGL: mgl.Options{
				// Cancel at a deterministic point: after the first
				// committed batch.
				DebugAfterBatch: func(placed []model.CellID) bool {
					cancel()
					return true
				},
			},
		}
		start := time.Now()
		res, err := RunContext(ctx, d, opt)
		elapsed := time.Since(start)

		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// "Promptly" with a very generous bound: a full run of this
		// instance takes far longer than one batch.
		if elapsed > 30*time.Second {
			t.Fatalf("workers=%d: cancellation took %v", workers, elapsed)
		}
		// The partial result surfaces where the run stopped.
		if res.MGLStats.Placed == 0 || res.MGLStats.Placed >= d.MovableCount() {
			t.Errorf("workers=%d: placed %d of %d, want a strict partial placement",
				workers, res.MGLStats.Placed, d.MovableCount())
		}
		if len(res.Timings) != 1 || res.Timings[0].Stage != stage.NameMGL || res.MGLTime <= 0 {
			t.Errorf("workers=%d: timings = %+v, MGLTime = %v", workers, res.Timings, res.MGLTime)
		}
		if res.Total <= 0 {
			t.Errorf("workers=%d: total time not recorded", workers)
		}

		// Consistent, auditable state: the design still validates and
		// the auditor runs; cells are each either at their GP position
		// or somewhere legal inside the core.
		if err := d.Validate(); err != nil {
			t.Fatalf("workers=%d: design inconsistent after cancel: %v", workers, err)
		}
		grid, err := seg.Build(d)
		if err != nil {
			t.Fatalf("workers=%d: segmentation failed after cancel: %v", workers, err)
		}
		_ = eval.Audit(d, grid) // must not panic; violations are expected
	}
}

// Cancelling while a later stage starts still reports the completed
// stages' artifacts and timings.
func TestCancelAtMaxDispKeepsMGLArtifacts(t *testing.T) {
	d := cancelBench(53)
	ctx, cancel := context.WithCancel(context.Background())
	canceller := stageStartCanceller{at: stage.NameMaxDisp, cancel: cancel}
	res, err := RunContext(ctx, d, Options{Workers: 2, Observer: canceller})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.MGLStats.Placed != d.MovableCount() {
		t.Errorf("MGL artifacts lost: placed %d of %d", res.MGLStats.Placed, d.MovableCount())
	}
	if res.MGLTime <= 0 {
		t.Error("MGL timing lost")
	}
	// MGL completed, the matching stage started and was cancelled
	// inside; refine never ran.
	if len(res.Timings) != 2 || res.Timings[1].Stage != stage.NameMaxDisp {
		t.Errorf("timings = %+v", res.Timings)
	}
	if res.RefineReport.Nodes != 0 {
		t.Error("refine ran after cancellation")
	}
}

// stageStartCanceller cancels the run when the named stage starts.
type stageStartCanceller struct {
	at     string
	cancel context.CancelFunc
}

func (c stageStartCanceller) StageStart(ev stage.StartEvent) {
	if ev.Stage == c.at {
		c.cancel()
	}
}

func (c stageStartCanceller) StageFinish(stage.FinishEvent) {}

// A run whose context *deadline* expires must fail with the typed
// *DeadlineError — distinguishable from an explicit cancellation —
// while errors.Is still sees context.DeadlineExceeded through Unwrap.
func TestDeadlineSurfacesTypedError(t *testing.T) {
	d := cancelBench(53)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, err := RunContext(ctx, d, Options{Workers: 1})
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T %v, want *flow.DeadlineError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("DeadlineError does not unwrap to context.DeadlineExceeded")
	}
	if errors.Is(err, context.Canceled) {
		t.Error("deadline expiry claims to be an explicit cancellation")
	}
}

// An explicit cancellation must NOT be reported as a DeadlineError,
// even when the context also carries a (future) deadline.
func TestExplicitCancelIsNotDeadline(t *testing.T) {
	d := cancelBench(54)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	cancel()
	_, err := RunContext(ctx, d, Options{Workers: 1})
	var de *DeadlineError
	if errors.As(err, &de) {
		t.Fatalf("explicit cancel surfaced as DeadlineError: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
