package flow

import (
	"runtime"
	"strings"
	"testing"

	"mclegal/internal/bmark"
	"mclegal/internal/mgl"
	"mclegal/internal/refine"
	"mclegal/internal/stage"
)

func TestValidateRejectsBadRanges(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
		want string
	}{
		{"negative workers", Options{Workers: -1}, "Workers"},
		{"negative delta0", Options{Delta0Rows: -0.5}, "Delta0Rows"},
		{"negative n0", Options{MaxDispWeight: -3}, "MaxDispWeight"},
		{"conflicting workers", Options{Workers: 2, MGL: mgl.Options{Workers: 4}}, "MGL"},
	} {
		opt := tc.opt
		err := opt.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %s", tc.name, err, tc.want)
		}
	}
}

func TestValidateRejectedByRun(t *testing.T) {
	d := bmark.Generate(bmark.Params{Name: "v", Seed: 1, Counts: [4]int{20, 0, 0, 0}, Density: 0.3})
	if _, err := Run(d, Options{Workers: -2}); err == nil {
		t.Fatal("Run accepted negative Workers")
	}
}

func TestValidateDefaults(t *testing.T) {
	var opt Options
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if opt.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers default = %d", opt.Workers)
	}
	if opt.Delta0Rows != 10 {
		t.Errorf("Delta0Rows default = %g", opt.Delta0Rows)
	}

	// Under a pure total-displacement objective φ must stay linear:
	// the δ0 default becomes effectively infinite.
	opt = Options{TotalDisplacement: true}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if opt.Delta0Rows != 1e9 {
		t.Errorf("total-displacement Delta0Rows default = %g", opt.Delta0Rows)
	}

	// Explicit values survive validation.
	opt = Options{Workers: 3, Delta0Rows: 4.5, MaxDispWeight: 9}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if opt.Workers != 3 || opt.Delta0Rows != 4.5 || opt.MaxDispWeight != 9 {
		t.Errorf("explicit options changed: %+v", opt)
	}
}

func TestStageComposition(t *testing.T) {
	d := bmark.Generate(bmark.Params{Name: "c", Seed: 2, Counts: [4]int{300, 0, 0, 0}, Density: 0.4})

	names := func(opt Options) []string {
		if err := opt.Validate(); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, s := range Stages(d, opt) {
			out = append(out, s.Name())
		}
		return out
	}

	if got := names(Options{}); strings.Join(got, ",") != "mgl,maxdisp,refine" {
		t.Errorf("full pipeline = %v", got)
	}
	if got := names(Options{SkipMaxDisp: true}); strings.Join(got, ",") != "mgl,refine" {
		t.Errorf("skip-maxdisp = %v", got)
	}
	if got := names(Options{SkipRefine: true}); strings.Join(got, ",") != "mgl,maxdisp" {
		t.Errorf("skip-refine = %v", got)
	}
	if got := names(Options{SkipMaxDisp: true, SkipRefine: true}); strings.Join(got, ",") != "mgl" {
		t.Errorf("mgl-only = %v", got)
	}
}

// The composer selects refinement weights from the objective and
// defaults n_0 from the design size (the paper's S_am configuration).
func TestStageComposerWeightSelection(t *testing.T) {
	d := bmark.Generate(bmark.Params{Name: "w", Seed: 3, Counts: [4]int{300, 30, 0, 0}, Density: 0.4})

	refineOf := func(opt Options) *stage.RefineStage {
		if err := opt.Validate(); err != nil {
			t.Fatal(err)
		}
		list := Stages(d, opt)
		rs, ok := list[len(list)-1].(*stage.RefineStage)
		if !ok {
			t.Fatalf("last stage is %T", list[len(list)-1])
		}
		return rs
	}

	// Contest objective: height-averaged weights plus a size-derived n_0.
	rs := refineOf(Options{})
	if rs.Opt.Weights != refine.WeightHeightAverage {
		t.Errorf("default weights = %v", rs.Opt.Weights)
	}
	wantN0 := 1 + 4*int64(d.MovableCount())/100
	if rs.Opt.MaxDispWeight != wantN0 {
		t.Errorf("default n0 = %d, want %d", rs.Opt.MaxDispWeight, wantN0)
	}
	if !rs.UseRanges {
		// UseRanges tracks Routability.
		rs2 := refineOf(Options{Routability: true})
		if !rs2.UseRanges {
			t.Error("routability did not enable refine ranges")
		}
	}

	// Total-displacement objective: uniform weights, n_0 stays 0.
	rs = refineOf(Options{TotalDisplacement: true})
	if rs.Opt.Weights != refine.WeightUniform {
		t.Errorf("total-displacement weights = %v", rs.Opt.Weights)
	}
	if rs.Opt.MaxDispWeight != 0 {
		t.Errorf("total-displacement n0 = %d, want 0", rs.Opt.MaxDispWeight)
	}

	// An explicit n_0 wins over the default.
	rs = refineOf(Options{MaxDispWeight: 77})
	if rs.Opt.MaxDispWeight != 77 {
		t.Errorf("explicit n0 = %d", rs.Opt.MaxDispWeight)
	}

	// The matching stage inherits the validated δ0.
	if err := (&Options{}).Validate(); err != nil {
		t.Fatal(err)
	}
	opt := Options{Delta0Rows: 3}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	ms, ok := Stages(d, opt)[1].(*stage.MaxDispStage)
	if !ok || ms.Opt.Delta0Rows != 3 {
		t.Errorf("matching δ0 = %+v", ms)
	}
}
