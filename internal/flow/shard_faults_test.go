package flow

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mclegal/internal/bmark"
	"mclegal/internal/faults"
	"mclegal/internal/model"
	"mclegal/internal/shard"
	"mclegal/internal/stage"
)

// shardFaultBench builds a multi-fence design whose shard plan has
// several regions, so per-shard injector forks are actually exercised
// across more than one pipeline.
func shardFaultBench() *model.Design {
	return bmark.Generate(bmark.Params{
		Name: "shard-faults", Seed: 4218, Counts: [4]int{700, 70, 16, 6},
		Density: 0.6, NumFences: 2, FenceFrac: 0.5, NetFrac: 0.3,
	})
}

var shardFaultPlan = shard.Options{SlabTargetCells: 180, MaxSlabUtil: 0.95}

// Every injection point of the pipeline must behave under sharded
// execution exactly as the monolithic recovery suite proves for the
// single pipeline: strict runs fail with a typed GateError naming the
// stage, fallback runs end legal and recovered, best-effort runs never
// error. Each shard consults its own fork of the injector, so every
// shard experiences the armed fault — the sharded run's behavior is
// therefore shard-scheduling independent.
func TestShardedFaultInjectionEveryPointEveryPolicy(t *testing.T) {
	for _, ip := range injectionPoints {
		for _, policy := range []stage.RecoveryPolicy{
			stage.RecoverStrict, stage.RecoverFallback, stage.RecoverBestEffort,
		} {
			t.Run(ip.name+"/"+policy.String(), func(t *testing.T) {
				d := shardFaultBench()
				inj := faults.New().Arm(ip.point)
				res, err := Run(d, Options{
					Workers: 1, Shards: 2, Verify: true,
					Recovery:  policy,
					Faults:    inj,
					ShardPlan: shardFaultPlan,
				})
				switch policy {
				case stage.RecoverStrict:
					var ge *stage.GateError
					if !errors.As(err, &ge) {
						t.Fatalf("err = %T %v, want *stage.GateError", err, err)
					}
					// Sharded gate reports are namespaced shard/stage; the
					// error's own report keeps the bare stage name.
					if ge.Report.Stage != ip.stage {
						t.Errorf("gate names stage %q, want %q", ge.Report.Stage, ip.stage)
					}
					if !strings.Contains(err.Error(), "shard ") {
						t.Errorf("sharded strict error %q lacks the shard name", err)
					}
				case stage.RecoverFallback:
					if err != nil {
						t.Fatalf("fallback run failed: %v", err)
					}
					if res.Status != stage.StatusRecovered {
						t.Errorf("status = %v, want recovered", res.Status)
					}
					var hit bool
					for _, g := range res.Gates {
						if strings.HasSuffix(g.Stage, "/"+ip.stage) {
							hit = true
						}
					}
					if !hit {
						t.Errorf("no shard-prefixed gate names %q: %+v", ip.stage, res.Gates)
					}
					auditClean(t, d)
				case stage.RecoverBestEffort:
					if err != nil {
						t.Fatalf("best-effort returned error: %v", err)
					}
				}
			})
		}
	}
}

// A fault armed on the parent injector fires once per shard (each fork
// has independent counters), and the per-shard fired counts are
// observable on the memoized forks after the run.
func TestShardedForkFiresPerShard(t *testing.T) {
	d := shardFaultBench()
	inj := faults.New().Arm(faults.StageError(stage.NameMGL))
	res, err := Run(d, Options{
		Workers: 1, Shards: 2, Verify: true,
		Recovery:  stage.RecoverFallback,
		Faults:    inj,
		ShardPlan: shardFaultPlan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) < 2 {
		t.Fatalf("plan has %d regions, want >= 2", len(res.Shards))
	}
	for i := range res.Shards {
		f := inj.Fork(i)
		if got := f.Fired(faults.StageError(stage.NameMGL)); got != 1 {
			t.Errorf("shard %d fork fired %d times, want 1", i, got)
		}
		if res.Shards[i].Status != stage.StatusRecovered {
			t.Errorf("shard %d status = %v, want recovered", i, res.Shards[i].Status)
		}
	}
	if inj.Hits(faults.StageError(stage.NameMGL)) != 0 {
		t.Error("shard hits leaked into the parent injector")
	}
	auditClean(t, d)
}

// Injected faults keep the sharded byte-identity guarantee: forks are
// keyed by plan index, so a faulted fallback run at shard concurrency
// 1 and 4 must produce byte-identical placements. Runs under -race via
// `make check`.
func TestShardedFaultDeterministicAcrossShardCounts(t *testing.T) {
	run := func(shards int) []byte {
		d := shardFaultBench()
		res, err := Run(d, Options{
			Workers: 1, Shards: shards, Verify: true,
			Recovery:  stage.RecoverFallback,
			Faults:    faults.New().Arm(faults.MGLWorkerPanic).Arm(faults.RefineInfeasible),
			ShardPlan: shardFaultPlan,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Status != stage.StatusRecovered {
			t.Fatalf("shards=%d: status = %v, want recovered", shards, res.Status)
		}
		var buf bytes.Buffer
		if err := bmark.Write(&buf, d); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(1), run(4)) {
		t.Fatal("faulted Shards=1 and Shards=4 placements are not byte-identical")
	}
}
