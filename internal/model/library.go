package model

import (
	"fmt"

	"mclegal/internal/geom"
)

// CellTypeID indexes Design.Types.
type CellTypeID int32

// PinShape is one rectangle of a signal pin, in DBU relative to the
// cell's lower-left corner when placed unflipped.
type PinShape struct {
	Name  string
	Layer int
	Box   geom.Rect
}

// CellType is one master in the standard-cell library.
type CellType struct {
	Name string
	// Width in sites and Height in rows.
	Width, Height int
	// Pins are the signal-pin shapes used by the routability checks.
	Pins []PinShape
	// EdgeL and EdgeR are the left/right edge types for the
	// edge-spacing rules; 0 is the default "no rule" type.
	EdgeL, EdgeR uint8
}

// Validate reports the first structural problem with the cell type.
func (ct *CellType) Validate(t *Tech) error {
	if ct.Width <= 0 || ct.Height <= 0 {
		return fmt.Errorf("cell type %q: non-positive size %dx%d", ct.Name, ct.Width, ct.Height)
	}
	bound := geom.Rect{XLo: 0, YLo: 0, XHi: ct.Width * t.SiteW, YHi: ct.Height * t.RowH}
	for _, p := range ct.Pins {
		if p.Box.Empty() {
			return fmt.Errorf("cell type %q: empty pin %q", ct.Name, p.Name)
		}
		if !bound.Contains(p.Box) {
			return fmt.Errorf("cell type %q: pin %q %v outside cell %v", ct.Name, p.Name, p.Box, bound)
		}
		if p.Layer < LayerM1 || p.Layer > LayerM3 {
			return fmt.Errorf("cell type %q: pin %q on bad layer %d", ct.Name, p.Name, p.Layer)
		}
	}
	return nil
}
