package model

import (
	"fmt"

	"mclegal/internal/geom"
)

// CellID indexes Design.Cells.
type CellID int32

// FenceID identifies the fence region a cell is assigned to.
// DefaultFence is the implicit region outside all drawn fences; drawn
// fences are numbered 1..len(Design.Fences).
type FenceID int32

// DefaultFence is the fence ID of cells not assigned to any drawn fence.
const DefaultFence FenceID = 0

// Cell is one movable (or fixed) instance.
type Cell struct {
	Name  string
	Type  CellTypeID
	Fence FenceID
	// GX, GY is the global-placement position (site,row), the
	// reference every displacement is measured from.
	GX, GY int
	// X, Y is the current position (site,row).
	X, Y int
	// Fixed cells are pre-placed obstacles (macros); the legalizer
	// never moves them and they belong to no fence.
	Fixed bool
}

// NetPin is one connection of a net: a cell plus the DBU offset of the
// pin from the cell origin (used for HPWL only).
type NetPin struct {
	Cell   CellID
	DX, DY int
}

// Net is a signal net; only its HPWL matters to the legalizer.
type Net struct {
	Name string
	Pins []NetPin
}

// Fence is a named fence region made of one or more rectangles in
// site/row coordinates. Cells assigned to the fence must be fully inside
// its rectangles; all other cells must stay outside (ISPD 2015
// semantics, paper reference [17]).
type Fence struct {
	Name  string
	Rects []geom.Rect
}

// IOPin is a fixed terminal shape in absolute DBU used by the pin
// access/short checks.
type IOPin struct {
	Name  string
	Layer int
	Box   geom.Rect
}

// Design is a complete legalization instance.
type Design struct {
	Name  string
	Tech  Tech
	Types []CellType
	Cells []Cell
	Nets  []Net
	// Fences[k] has FenceID k+1.
	Fences    []Fence
	IOPins    []IOPin
	Blockages []geom.Rect // site/row units; rows under a blockage are unusable
}

// Type returns the master of cell i.
func (d *Design) Type(i CellID) *CellType { return &d.Types[d.Cells[i].Type] }

// CellRect returns the current occupied area of cell i in site/row
// coordinates.
func (d *Design) CellRect(i CellID) geom.Rect {
	c := &d.Cells[i]
	ct := &d.Types[c.Type]
	return geom.RectWH(c.X, c.Y, ct.Width, ct.Height)
}

// GPRect returns the global-placement footprint of cell i.
func (d *Design) GPRect(i CellID) geom.Rect {
	c := &d.Cells[i]
	ct := &d.Types[c.Type]
	return geom.RectWH(c.GX, c.GY, ct.Width, ct.Height)
}

// DispDBU returns the displacement of cell i from its GP position in
// DBU (|dx|*SiteW + |dy|*RowH).
func (d *Design) DispDBU(i CellID) int64 {
	c := &d.Cells[i]
	return int64(geom.Abs(c.X-c.GX))*int64(d.Tech.SiteW) +
		int64(geom.Abs(c.Y-c.GY))*int64(d.Tech.RowH)
}

// DispRows returns the displacement of cell i in row-height units, the
// unit of the contest metric.
func (d *Design) DispRows(i CellID) float64 {
	return float64(d.DispDBU(i)) / float64(d.Tech.RowH)
}

// FenceRects returns the rectangles of fence f, or nil for the default
// fence (whose region is the core minus all drawn fences).
func (d *Design) FenceRects(f FenceID) []geom.Rect {
	if f == DefaultFence {
		return nil
	}
	return d.Fences[f-1].Rects
}

// MaxHeight returns the tallest cell height (in rows) present in the
// library, the paper's H.
func (d *Design) MaxHeight() int {
	h := 0
	for i := range d.Types {
		if d.Types[i].Height > h {
			h = d.Types[i].Height
		}
	}
	return h
}

// MovableCount returns the number of non-fixed cells.
func (d *Design) MovableCount() int {
	n := 0
	for i := range d.Cells {
		if !d.Cells[i].Fixed {
			n++
		}
	}
	return n
}

// ResetToGP moves every movable cell back to its GP position.
func (d *Design) ResetToGP() {
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			continue
		}
		d.Cells[i].X = d.Cells[i].GX
		d.Cells[i].Y = d.Cells[i].GY
	}
}

// SnapshotXY returns a copy of the current positions of all cells, to be
// restored with RestoreXY. Used by before/after experiments.
func (d *Design) SnapshotXY() []geom.Pt {
	out := make([]geom.Pt, len(d.Cells))
	for i := range d.Cells {
		out[i] = geom.Pt{X: d.Cells[i].X, Y: d.Cells[i].Y}
	}
	return out
}

// RestoreXY restores positions captured by SnapshotXY.
func (d *Design) RestoreXY(xy []geom.Pt) {
	if len(xy) != len(d.Cells) {
		panic("model: RestoreXY length mismatch")
	}
	for i := range d.Cells {
		d.Cells[i].X = xy[i].X
		d.Cells[i].Y = xy[i].Y
	}
}

// Validate reports the first structural inconsistency in the design
// (bad references, malformed fences, out-of-core fixed cells). It does
// not check placement legality; that is eval.Audit's job.
func (d *Design) Validate() error {
	if err := d.Tech.Validate(); err != nil {
		return err
	}
	if len(d.Types) == 0 {
		return fmt.Errorf("design %q: empty library", d.Name)
	}
	for i := range d.Types {
		if err := d.Types[i].Validate(&d.Tech); err != nil {
			return err
		}
	}
	core := d.Tech.CoreRect()
	for k := range d.Fences {
		f := &d.Fences[k]
		if len(f.Rects) == 0 {
			return fmt.Errorf("design %q: fence %q has no rectangles", d.Name, f.Name)
		}
		for _, r := range f.Rects {
			if r.Empty() {
				return fmt.Errorf("design %q: fence %q has an empty rect", d.Name, f.Name)
			}
			if !core.Contains(r) {
				return fmt.Errorf("design %q: fence %q rect %v outside core %v", d.Name, f.Name, r, core)
			}
		}
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		if int(c.Type) < 0 || int(c.Type) >= len(d.Types) {
			return fmt.Errorf("design %q: cell %d bad type %d", d.Name, i, c.Type)
		}
		if int(c.Fence) < 0 || int(c.Fence) > len(d.Fences) {
			return fmt.Errorf("design %q: cell %d bad fence %d", d.Name, i, c.Fence)
		}
		if c.Fixed && c.Fence != DefaultFence {
			return fmt.Errorf("design %q: fixed cell %d assigned to fence %d", d.Name, i, c.Fence)
		}
	}
	for n := range d.Nets {
		for _, p := range d.Nets[n].Pins {
			if int(p.Cell) < 0 || int(p.Cell) >= len(d.Cells) {
				return fmt.Errorf("design %q: net %d references cell %d", d.Name, n, p.Cell)
			}
		}
	}
	for _, b := range d.Blockages {
		if b.Empty() {
			return fmt.Errorf("design %q: empty blockage", d.Name)
		}
	}
	for _, io := range d.IOPins {
		if io.Box.Empty() {
			return fmt.Errorf("design %q: IO pin %q empty", d.Name, io.Name)
		}
	}
	return nil
}

// Clone returns a deep copy of the design. Experiments use clones so
// that several legalizers can run on the same instance. The copy is
// faithful down to slice nil-ness, so a clone is deep-equal to its
// original (the gate rollback tests compare against one).
func (d *Design) Clone() *Design {
	nd := &Design{
		Name:      d.Name,
		Tech:      d.Tech,
		Cells:     append([]Cell(nil), d.Cells...),
		IOPins:    append([]IOPin(nil), d.IOPins...),
		Blockages: append([]geom.Rect(nil), d.Blockages...),
	}
	if d.Types != nil {
		nd.Types = make([]CellType, len(d.Types))
		for i := range d.Types {
			ct := d.Types[i]
			ct.Pins = append([]PinShape(nil), d.Types[i].Pins...)
			nd.Types[i] = ct
		}
	}
	if d.Nets != nil {
		nd.Nets = make([]Net, len(d.Nets))
		for i := range d.Nets {
			nd.Nets[i] = Net{Name: d.Nets[i].Name, Pins: append([]NetPin(nil), d.Nets[i].Pins...)}
		}
	}
	if d.Fences != nil {
		nd.Fences = make([]Fence, len(d.Fences))
		for i := range d.Fences {
			nd.Fences[i] = Fence{Name: d.Fences[i].Name, Rects: append([]geom.Rect(nil), d.Fences[i].Rects...)}
		}
	}
	return nd
}
