package model

import "testing"

func TestHotCellsMirrorsDesign(t *testing.T) {
	d := testDesign()
	d.Cells[1].Fence = 0
	h := NewHotCells(d)
	for i := range d.Cells {
		c := &d.Cells[i]
		ct := &d.Types[c.Type]
		if int(h.X[i]) != c.X || int(h.Y[i]) != c.Y {
			t.Errorf("cell %d: hot pos (%d,%d) != (%d,%d)", i, h.X[i], h.Y[i], c.X, c.Y)
		}
		if int(h.GX[i]) != c.GX || int(h.GY[i]) != c.GY {
			t.Errorf("cell %d: hot GP pos mismatch", i)
		}
		if int(h.W[i]) != ct.Width || int(h.H[i]) != ct.Height {
			t.Errorf("cell %d: hot footprint (%d,%d) != (%d,%d)", i, h.W[i], h.H[i], ct.Width, ct.Height)
		}
		if h.Fence[i] != c.Fence || h.Type[i] != c.Type {
			t.Errorf("cell %d: hot fence/type mismatch", i)
		}
	}
}

func TestHotCellsSetXYWritesBoth(t *testing.T) {
	d := testDesign()
	h := NewHotCells(d)
	h.SetXY(d, 1, 42, 7)
	if d.Cells[1].X != 42 || d.Cells[1].Y != 7 {
		t.Errorf("SetXY did not reach the design: (%d,%d)", d.Cells[1].X, d.Cells[1].Y)
	}
	if h.X[1] != 42 || h.Y[1] != 7 {
		t.Errorf("SetXY did not reach the view: (%d,%d)", h.X[1], h.Y[1])
	}
	h.SetX(d, 0, 33)
	if d.Cells[0].X != 33 || h.X[0] != 33 {
		t.Errorf("SetX out of sync: design %d view %d", d.Cells[0].X, h.X[0])
	}
	if d.Cells[0].Y != 3 || h.Y[0] != 3 {
		t.Errorf("SetX touched Y")
	}
}

func TestHotCellsReload(t *testing.T) {
	d := testDesign()
	h := NewHotCells(d)
	d.Cells[2].X, d.Cells[2].Y = 1, 2 // mutate behind the view's back
	h.Reload(d)
	if h.X[2] != 1 || h.Y[2] != 2 {
		t.Errorf("Reload missed position update: (%d,%d)", h.X[2], h.Y[2])
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Reload with mismatched cell count should panic")
		}
	}()
	d.Cells = d.Cells[:1]
	h.Reload(d)
}
