package model

import (
	"fmt"

	"mclegal/internal/geom"
)

// Subdesign is a view of a parent design restricted to a subset of its
// movable cells: the shard layer legalizes each fence region (and each
// die partition of the default region) as an independent subproblem,
// exactly as the paper's fence-aware flow prescribes. The embedded
// Design is a self-contained instance in the parent's coordinate
// system — same Tech, shared library, all fixed obstacles — whose
// movable cells are the selected subset with densely remapped CellIDs;
// ToGlobal inverts the remapping so results merge back.
//
// Nets are deliberately dropped: no pipeline stage consumes them, and
// keeping them would require remapping every pin. HPWL and scoring are
// computed on the parent design after MergeBack.
type Subdesign struct {
	Design *Design
	// ToGlobal[i] is the parent CellID of subdesign cell i. Movable
	// cells come first (in the order given to NewSubdesign), fixed
	// cells after.
	ToGlobal []CellID
	// Movables is the number of selected movable cells; subdesign IDs
	// 0..Movables-1 are movable, the rest fixed.
	Movables int
}

// NewSubdesign builds the shard instance for the given movable cells of
// parent. The cells slice must name distinct movable cells; their order
// fixes the subdesign's CellID assignment (callers pass a deterministic
// order so shard runs are reproducible). extraBlockages are appended to
// the parent's blockages — the shard planner uses them to confine a die
// partition's cells to its slab (a blockage outranks fence paint in
// segment labeling, so the complement of the slab becomes unusable).
//
// The parent's Types, Fences and IOPins slices are shared, not copied:
// subdesigns are read-only with respect to everything except cell
// positions.
func NewSubdesign(parent *Design, name string, cells []CellID, extraBlockages []geom.Rect) (*Subdesign, error) {
	fixed := 0
	for i := range parent.Cells {
		if parent.Cells[i].Fixed {
			fixed++
		}
	}
	sd := &Subdesign{
		Design: &Design{
			Name:   name,
			Tech:   parent.Tech,
			Types:  parent.Types,
			Cells:  make([]Cell, 0, len(cells)+fixed),
			Fences: parent.Fences,
			IOPins: parent.IOPins,
		},
		ToGlobal: make([]CellID, 0, len(cells)+fixed),
		Movables: len(cells),
	}
	for _, id := range cells {
		if int(id) < 0 || int(id) >= len(parent.Cells) {
			return nil, fmt.Errorf("subdesign %q: cell %d out of range", name, id)
		}
		c := parent.Cells[id]
		if c.Fixed {
			return nil, fmt.Errorf("subdesign %q: cell %d (%s) is fixed", name, id, c.Name)
		}
		sd.Design.Cells = append(sd.Design.Cells, c)
		sd.ToGlobal = append(sd.ToGlobal, id)
	}
	for i := range parent.Cells {
		if parent.Cells[i].Fixed {
			sd.Design.Cells = append(sd.Design.Cells, parent.Cells[i])
			sd.ToGlobal = append(sd.ToGlobal, CellID(i))
		}
	}
	nb := len(parent.Blockages) + len(extraBlockages)
	if nb > 0 {
		sd.Design.Blockages = make([]geom.Rect, 0, nb)
		sd.Design.Blockages = append(sd.Design.Blockages, parent.Blockages...)
		sd.Design.Blockages = append(sd.Design.Blockages, extraBlockages...)
	}
	return sd, nil
}

// MergeBack writes the subdesign's movable-cell positions into parent.
// Shards built from disjoint cell subsets write disjoint entries, so
// merging every shard in a fixed order is deterministic regardless of
// how the shards themselves were scheduled.
func (sd *Subdesign) MergeBack(parent *Design) {
	for i := 0; i < sd.Movables; i++ {
		g := sd.ToGlobal[i]
		parent.Cells[g].X = sd.Design.Cells[i].X
		parent.Cells[g].Y = sd.Design.Cells[i].Y
	}
}
