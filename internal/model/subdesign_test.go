package model

import (
	"strings"
	"testing"

	"mclegal/internal/geom"
)

func shardParent() *Design {
	d := testDesign()
	d.Fences = []Fence{{Name: "f1", Rects: []geom.Rect{geom.RectWH(0, 0, 40, 10)}}}
	d.Cells = append(d.Cells, Cell{Name: "m", Type: 2, GX: 50, GY: 2, X: 50, Y: 2, Fixed: true})
	d.Cells[0].Fence = 1
	d.Blockages = []geom.Rect{geom.RectWH(90, 0, 10, 20)}
	return d
}

func TestNewSubdesignRemapsAndKeepsFixed(t *testing.T) {
	d := shardParent()
	extra := []geom.Rect{geom.RectWH(0, 0, 10, 20)}
	sd, err := NewSubdesign(d, "t/s0", []CellID{2, 1}, extra)
	if err != nil {
		t.Fatalf("NewSubdesign: %v", err)
	}
	if sd.Design.Name != "t/s0" {
		t.Errorf("name = %q", sd.Design.Name)
	}
	if sd.Movables != 2 || len(sd.Design.Cells) != 3 {
		t.Fatalf("movables=%d cells=%d, want 2 movables + 1 fixed", sd.Movables, len(sd.Design.Cells))
	}
	// Order given to NewSubdesign fixes the new IDs; fixed cells follow.
	wantGlobal := []CellID{2, 1, 3}
	for i, g := range wantGlobal {
		if sd.ToGlobal[i] != g {
			t.Errorf("ToGlobal[%d] = %d, want %d", i, sd.ToGlobal[i], g)
		}
		if sd.Design.Cells[i].Name != d.Cells[g].Name {
			t.Errorf("cell %d is %q, want %q", i, sd.Design.Cells[i].Name, d.Cells[g].Name)
		}
	}
	if !sd.Design.Cells[2].Fixed {
		t.Errorf("trailing cell should be the fixed macro")
	}
	// Blockages: parent's plus the extras, in order.
	if len(sd.Design.Blockages) != 2 ||
		sd.Design.Blockages[0] != d.Blockages[0] || sd.Design.Blockages[1] != extra[0] {
		t.Errorf("blockages = %v", sd.Design.Blockages)
	}
	// Nets are dropped, shared slices are shared.
	if sd.Design.Nets != nil {
		t.Errorf("subdesign should carry no nets")
	}
	if &sd.Design.Types[0] != &d.Types[0] || &sd.Design.Fences[0] != &d.Fences[0] {
		t.Errorf("library/fences should be shared, not copied")
	}
	if err := sd.Design.Validate(); err != nil {
		t.Errorf("subdesign fails validation: %v", err)
	}
}

func TestNewSubdesignRejectsBadCells(t *testing.T) {
	d := shardParent()
	if _, err := NewSubdesign(d, "s", []CellID{99}, nil); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range cell accepted: %v", err)
	}
	if _, err := NewSubdesign(d, "s", []CellID{3}, nil); err == nil || !strings.Contains(err.Error(), "fixed") {
		t.Errorf("fixed cell accepted as movable: %v", err)
	}
}

func TestMergeBackWritesOnlySelectedMovables(t *testing.T) {
	d := shardParent()
	sd, err := NewSubdesign(d, "s", []CellID{1, 2}, nil)
	if err != nil {
		t.Fatalf("NewSubdesign: %v", err)
	}
	sd.Design.Cells[0].X, sd.Design.Cells[0].Y = 70, 8 // parent cell 1
	sd.Design.Cells[1].X = 60                          // parent cell 2
	sd.Design.Cells[2].X = 99                          // fixed macro: must not merge
	before0 := d.Cells[0]
	sd.MergeBack(d)
	if d.Cells[1].X != 70 || d.Cells[1].Y != 8 || d.Cells[2].X != 60 {
		t.Errorf("merge missed movables: %+v %+v", d.Cells[1], d.Cells[2])
	}
	if d.Cells[0] != before0 {
		t.Errorf("merge touched an unselected cell")
	}
	if d.Cells[3].X != 50 {
		t.Errorf("merge moved a fixed cell to %d", d.Cells[3].X)
	}
}

// A subdesign over zero movable cells is legal to build (an empty
// fence region or slab produces one) and its MergeBack is a strict
// no-op on the parent, fixed obstacles included.
func TestMergeBackZeroMovables(t *testing.T) {
	d := shardParent()
	sd, err := NewSubdesign(d, "empty", nil, nil)
	if err != nil {
		t.Fatalf("NewSubdesign with no movables: %v", err)
	}
	if sd.Movables != 0 {
		t.Fatalf("Movables = %d, want 0", sd.Movables)
	}
	// The shard instance still carries every fixed obstacle so a
	// pipeline run over it sees the true occupancy.
	if len(sd.Design.Cells) != 1 || !sd.Design.Cells[0].Fixed {
		t.Fatalf("cells = %+v, want exactly the fixed macro", sd.Design.Cells)
	}
	// Even if a stage scribbles on the shard's fixed copy, MergeBack
	// must write nothing back.
	sd.Design.Cells[0].X = 1
	before := d.Clone()
	sd.MergeBack(d)
	for i := range d.Cells {
		if d.Cells[i] != before.Cells[i] {
			t.Fatalf("zero-movable merge changed cell %d: %+v vs %+v", i, d.Cells[i], before.Cells[i])
		}
	}
}

func TestDisjointMergeIsOrderIndependent(t *testing.T) {
	d := shardParent()
	a, err := NewSubdesign(d, "a", []CellID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSubdesign(d, "b", []CellID{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Design.Cells[0].X = 11
	b.Design.Cells[0].X = 22
	b.Design.Cells[1].X = 33

	d1 := d.Clone()
	a.MergeBack(d1)
	b.MergeBack(d1)
	d2 := d.Clone()
	b.MergeBack(d2)
	a.MergeBack(d2)
	for i := range d1.Cells {
		if d1.Cells[i] != d2.Cells[i] {
			t.Fatalf("merge order changed cell %d: %+v vs %+v", i, d1.Cells[i], d2.Cells[i])
		}
	}
}
