// Package model defines the placement database shared by every stage of
// the legalizer: the technology (sites, rows, metal layers, power/ground
// rails, IO pins), the standard-cell library (mixed-height cell types
// with pin shapes and edge types), and the design (cells, nets, fence
// regions, blockages).
//
// Two coordinate systems are used:
//
//   - placement coordinates: integer site index (x) and row index (y);
//     every legal cell position is a (site,row) pair;
//   - database units (DBU): fine integer units used for pin shapes,
//     P/G rails and HPWL. One site is Tech.SiteW DBU wide and one row is
//     Tech.RowH DBU tall.
//
// Displacement is reported in row-height units, the convention of the
// ICCAD 2017 contest metric (paper Eq. 2).
package model

import (
	"fmt"

	"mclegal/internal/geom"
)

// Layer numbers for the simple metal stack used by the routability
// model. Signal pins live on M1 and M2; horizontal P/G rails on M2 and
// vertical P/G stripes on M3 (rails in alternate directions on
// alternate layers, as described in the paper's Section 2).
const (
	LayerM1 = 1
	LayerM2 = 2
	LayerM3 = 3
)

// Tech describes the placement grid and the power-delivery geometry.
type Tech struct {
	// SiteW and RowH are the dimensions of one placement site in DBU.
	SiteW, RowH int
	// NumSites and NumRows give the extent of the placement area;
	// site indices run in [0,NumSites) and row indices in [0,NumRows).
	NumSites, NumRows int

	// EvenBottomParity is the row-index parity (0 or 1) on which cells
	// of even height must place their bottom row so that their power
	// and ground rails align. Odd-height cells may be flipped and are
	// free of the restriction (paper Section 2).
	EvenBottomParity int
	// FlipOddRows models the flipping that lets odd-height cells sit on
	// either row parity: when true, an odd-height cell whose bottom row
	// parity differs from EvenBottomParity is treated as vertically
	// mirrored, and its pin shapes mirror with it for all routability
	// checks. Off by default (pins are then checked unmirrored on every
	// row, a conservative simplification).
	FlipOddRows bool

	// HRailLayer is the layer of the horizontal P/G rails;
	// HRailHalfW is their half-width in DBU. Rails run along every
	// HRailPeriod-th row boundary: a rail at boundary j covers y in
	// [j*HRailPeriod*RowH - HRailHalfW, j*HRailPeriod*RowH +
	// HRailHalfW). HRailPeriod 0 disables horizontal rails.
	HRailLayer  int
	HRailHalfW  int
	HRailPeriod int
	// Vertical P/G stripes run on VRailLayer with a pitch of
	// VRailPitch sites, a width of VRailW DBU, starting at site
	// VRailOffset (stripe k spans x in [ (VRailOffset+k*VRailPitch)*
	// SiteW, ...+VRailW )).
	VRailLayer  int
	VRailPitch  int
	VRailW      int
	VRailOffset int

	// EdgeSpacing[a][b] is the minimum number of empty sites required
	// between a cell whose right edge type is a and a following cell
	// whose left edge type is b in the same row. A nil table means no
	// edge-spacing rules.
	EdgeSpacing [][]int
}

// Validate reports the first structural problem with the technology.
func (t *Tech) Validate() error {
	switch {
	case t.SiteW <= 0 || t.RowH <= 0:
		return fmt.Errorf("tech: non-positive site dimensions %dx%d", t.SiteW, t.RowH)
	case t.NumSites <= 0 || t.NumRows <= 0:
		return fmt.Errorf("tech: empty placement area %dx%d", t.NumSites, t.NumRows)
	case t.EvenBottomParity != 0 && t.EvenBottomParity != 1:
		return fmt.Errorf("tech: bad parity %d", t.EvenBottomParity)
	case t.VRailPitch < 0 || t.VRailW < 0 || t.HRailHalfW < 0 || t.HRailPeriod < 0:
		return fmt.Errorf("tech: negative rail geometry")
	}
	for i, row := range t.EdgeSpacing {
		if len(row) != len(t.EdgeSpacing) {
			return fmt.Errorf("tech: edge spacing table row %d not square", i)
		}
		for j, s := range row {
			if s < 0 {
				return fmt.Errorf("tech: negative edge spacing [%d][%d]", i, j)
			}
		}
	}
	return nil
}

// CoreRect returns the placement area in site/row coordinates.
func (t *Tech) CoreRect() geom.Rect {
	return geom.Rect{XLo: 0, YLo: 0, XHi: t.NumSites, YHi: t.NumRows}
}

// CoreDBU returns the placement area in DBU.
func (t *Tech) CoreDBU() geom.Rect {
	return geom.Rect{XLo: 0, YLo: 0, XHi: t.NumSites * t.SiteW, YHi: t.NumRows * t.RowH}
}

// SiteToDBU converts a (site,row) position to the DBU of its lower-left
// corner.
func (t *Tech) SiteToDBU(p geom.Pt) geom.Pt {
	return geom.Pt{X: p.X * t.SiteW, Y: p.Y * t.RowH}
}

// RowAllowed reports whether a cell of the given height may have its
// bottom row at row index y under the P/G alignment rule.
func (t *Tech) RowAllowed(height, y int) bool {
	if height%2 == 1 {
		return true
	}
	return y%2 == t.EvenBottomParity
}

// Spacing returns the required gap in sites between a left cell with
// right edge type a and a right cell with left edge type b.
func (t *Tech) Spacing(a, b uint8) int {
	if int(a) >= len(t.EdgeSpacing) {
		return 0
	}
	row := t.EdgeSpacing[a]
	if int(b) >= len(row) {
		return 0
	}
	return row[b]
}

// MaxEdgeSpacing returns the largest entry of the edge-spacing table.
func (t *Tech) MaxEdgeSpacing() int {
	m := 0
	for _, row := range t.EdgeSpacing {
		for _, s := range row {
			if s > m {
				m = s
			}
		}
	}
	return m
}

// VRailXs returns the DBU x-intervals of all vertical P/G stripes that
// intersect the core area. The result is sorted by Lo.
func (t *Tech) VRailXs() []geom.Interval {
	if t.VRailPitch <= 0 || t.VRailW <= 0 {
		return nil
	}
	var out []geom.Interval
	coreW := t.NumSites * t.SiteW
	for s := t.VRailOffset; s*t.SiteW < coreW; s += t.VRailPitch {
		lo := s * t.SiteW
		out = append(out, geom.Interval{Lo: lo, Hi: lo + t.VRailW})
	}
	return out
}
