package model

import (
	"strings"
	"testing"

	"mclegal/internal/geom"
)

func testTech() Tech {
	return Tech{
		SiteW: 10, RowH: 80,
		NumSites: 100, NumRows: 20,
		EvenBottomParity: 0,
		HRailLayer:       LayerM2, HRailHalfW: 4,
		VRailLayer: LayerM3, VRailPitch: 25, VRailW: 12, VRailOffset: 10,
	}
}

func testDesign() *Design {
	t := testTech()
	return &Design{
		Name: "t",
		Tech: t,
		Types: []CellType{
			{Name: "INV", Width: 2, Height: 1},
			{Name: "FF2", Width: 4, Height: 2},
			{Name: "MUX3", Width: 6, Height: 3},
		},
		Cells: []Cell{
			{Name: "a", Type: 0, GX: 5, GY: 3, X: 5, Y: 3},
			{Name: "b", Type: 1, GX: 10, GY: 4, X: 12, Y: 6},
			{Name: "c", Type: 2, GX: 20, GY: 10, X: 20, Y: 10},
		},
		Nets: []Net{{Name: "n1", Pins: []NetPin{{Cell: 0}, {Cell: 1, DX: 5, DY: 5}}}},
	}
}

func TestTechValidate(t *testing.T) {
	tech := testTech()
	if err := tech.Validate(); err != nil {
		t.Fatalf("valid tech rejected: %v", err)
	}
	bad := tech
	bad.SiteW = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("zero site width accepted")
	}
	bad = tech
	bad.EvenBottomParity = 2
	if err := bad.Validate(); err == nil {
		t.Errorf("bad parity accepted")
	}
	bad = tech
	bad.EdgeSpacing = [][]int{{0, 1}, {1}}
	if err := bad.Validate(); err == nil {
		t.Errorf("ragged edge-spacing table accepted")
	}
	bad = tech
	bad.EdgeSpacing = [][]int{{-1}}
	if err := bad.Validate(); err == nil {
		t.Errorf("negative edge spacing accepted")
	}
}

func TestRowAllowed(t *testing.T) {
	tech := testTech()
	// Odd heights anywhere.
	for y := 0; y < 6; y++ {
		if !tech.RowAllowed(1, y) || !tech.RowAllowed(3, y) {
			t.Errorf("odd height disallowed at row %d", y)
		}
	}
	// Even heights only on parity-0 rows.
	if !tech.RowAllowed(2, 0) || !tech.RowAllowed(2, 4) {
		t.Errorf("even height rejected on even row")
	}
	if tech.RowAllowed(2, 1) || tech.RowAllowed(4, 3) {
		t.Errorf("even height allowed on odd row")
	}
	tech.EvenBottomParity = 1
	if tech.RowAllowed(2, 0) || !tech.RowAllowed(2, 1) {
		t.Errorf("parity 1 not honored")
	}
}

func TestSpacingLookup(t *testing.T) {
	tech := testTech()
	if tech.Spacing(0, 0) != 0 {
		t.Errorf("nil table should give 0")
	}
	tech.EdgeSpacing = [][]int{{0, 1}, {2, 3}}
	if tech.Spacing(1, 0) != 2 || tech.Spacing(0, 1) != 1 {
		t.Errorf("spacing lookup wrong")
	}
	if tech.Spacing(5, 0) != 0 || tech.Spacing(0, 5) != 0 {
		t.Errorf("out-of-table edge types should give 0")
	}
	if tech.MaxEdgeSpacing() != 3 {
		t.Errorf("MaxEdgeSpacing = %d", tech.MaxEdgeSpacing())
	}
}

func TestVRailXs(t *testing.T) {
	tech := testTech()
	rails := tech.VRailXs()
	if len(rails) == 0 {
		t.Fatalf("no vertical rails generated")
	}
	if rails[0] != (geom.Interval{Lo: 100, Hi: 112}) {
		t.Errorf("first rail = %v", rails[0])
	}
	for i := 1; i < len(rails); i++ {
		if rails[i].Lo-rails[i-1].Lo != tech.VRailPitch*tech.SiteW {
			t.Errorf("rail pitch broken at %d", i)
		}
	}
	tech.VRailPitch = 0
	if tech.VRailXs() != nil {
		t.Errorf("no pitch should mean no rails")
	}
}

func TestCellRectAndDisp(t *testing.T) {
	d := testDesign()
	if got := d.CellRect(1); got != geom.RectWH(12, 6, 4, 2) {
		t.Errorf("CellRect = %v", got)
	}
	if got := d.GPRect(1); got != geom.RectWH(10, 4, 4, 2) {
		t.Errorf("GPRect = %v", got)
	}
	// dx=2 sites * 10 + dy=2 rows * 80 = 180 DBU = 2.25 rows.
	if got := d.DispDBU(1); got != 180 {
		t.Errorf("DispDBU = %d", got)
	}
	if got := d.DispRows(1); got != 2.25 {
		t.Errorf("DispRows = %v", got)
	}
	if d.DispDBU(0) != 0 {
		t.Errorf("in-place cell has displacement")
	}
}

func TestMaxHeightAndCounts(t *testing.T) {
	d := testDesign()
	if d.MaxHeight() != 3 {
		t.Errorf("MaxHeight = %d", d.MaxHeight())
	}
	if d.MovableCount() != 3 {
		t.Errorf("MovableCount = %d", d.MovableCount())
	}
	d.Cells[0].Fixed = true
	if d.MovableCount() != 2 {
		t.Errorf("MovableCount with fixed = %d", d.MovableCount())
	}
}

func TestResetSnapshotRestore(t *testing.T) {
	d := testDesign()
	snap := d.SnapshotXY()
	d.ResetToGP()
	if d.Cells[1].X != 10 || d.Cells[1].Y != 4 {
		t.Errorf("ResetToGP did not move cell")
	}
	d.RestoreXY(snap)
	if d.Cells[1].X != 12 || d.Cells[1].Y != 6 {
		t.Errorf("RestoreXY did not restore")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("RestoreXY with wrong length should panic")
		}
	}()
	d.RestoreXY(snap[:1])
}

func TestResetToGPSkipsFixed(t *testing.T) {
	d := testDesign()
	d.Cells[1].Fixed = true
	d.ResetToGP()
	if d.Cells[1].X != 12 || d.Cells[1].Y != 6 {
		t.Errorf("ResetToGP moved a fixed cell")
	}
}

func TestDesignValidate(t *testing.T) {
	d := testDesign()
	if err := d.Validate(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}

	bad := d.Clone()
	bad.Cells[0].Type = 99
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "bad type") {
		t.Errorf("bad type accepted: %v", err)
	}

	bad = d.Clone()
	bad.Cells[0].Fence = 7
	if err := bad.Validate(); err == nil {
		t.Errorf("bad fence ref accepted")
	}

	bad = d.Clone()
	bad.Fences = []Fence{{Name: "f", Rects: []geom.Rect{geom.RectWH(0, 0, 500, 5)}}}
	if err := bad.Validate(); err == nil {
		t.Errorf("out-of-core fence accepted")
	}

	bad = d.Clone()
	bad.Nets[0].Pins[0].Cell = 42
	if err := bad.Validate(); err == nil {
		t.Errorf("dangling net pin accepted")
	}

	bad = d.Clone()
	bad.Cells[0].Fixed = true
	bad.Cells[0].Fence = 1
	bad.Fences = []Fence{{Name: "f", Rects: []geom.Rect{geom.RectWH(0, 0, 5, 5)}}}
	if err := bad.Validate(); err == nil {
		t.Errorf("fixed cell in fence accepted")
	}
}

func TestCellTypeValidate(t *testing.T) {
	tech := testTech()
	ct := CellType{Name: "X", Width: 2, Height: 1,
		Pins: []PinShape{{Name: "A", Layer: LayerM1, Box: geom.RectWH(2, 2, 4, 4)}}}
	if err := ct.Validate(&tech); err != nil {
		t.Fatalf("valid type rejected: %v", err)
	}
	ct.Pins[0].Box = geom.RectWH(18, 0, 4, 4) // sticks out of 20-dbu-wide cell
	if err := ct.Validate(&tech); err == nil {
		t.Errorf("out-of-cell pin accepted")
	}
	ct.Pins[0].Box = geom.RectWH(2, 2, 4, 4)
	ct.Pins[0].Layer = 9
	if err := ct.Validate(&tech); err == nil {
		t.Errorf("bad layer accepted")
	}
	ct = CellType{Name: "Z", Width: 0, Height: 1}
	if err := ct.Validate(&tech); err == nil {
		t.Errorf("zero width accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := testDesign()
	d.Fences = []Fence{{Name: "f", Rects: []geom.Rect{geom.RectWH(0, 0, 5, 5)}}}
	c := d.Clone()
	c.Cells[0].X = 99
	c.Fences[0].Rects[0] = geom.RectWH(1, 1, 2, 2)
	c.Nets[0].Pins[0].DX = 77
	c.Types[0].Pins = append(c.Types[0].Pins, PinShape{Name: "p", Layer: 1, Box: geom.RectWH(0, 0, 1, 1)})
	if d.Cells[0].X == 99 || d.Fences[0].Rects[0].XHi == 3 || d.Nets[0].Pins[0].DX == 77 {
		t.Errorf("Clone shares memory with original")
	}
	if len(d.Types[0].Pins) != 0 {
		t.Errorf("Clone shares pin slices")
	}
}

func TestFenceRects(t *testing.T) {
	d := testDesign()
	d.Fences = []Fence{{Name: "f", Rects: []geom.Rect{geom.RectWH(0, 0, 5, 5)}}}
	if d.FenceRects(DefaultFence) != nil {
		t.Errorf("default fence should have nil rects")
	}
	if got := d.FenceRects(1); len(got) != 1 || got[0] != geom.RectWH(0, 0, 5, 5) {
		t.Errorf("FenceRects(1) = %v", got)
	}
}
