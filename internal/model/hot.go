package model

// HotCells is a struct-of-arrays view of the per-cell fields the
// legalization hot paths touch on every window evaluation: current and
// global-placement position, footprint, fence and type. The canonical
// Cell struct interleaves these with cold fields (Name, net bookkeeping
// via Design.Nets) and forces a second cache line for the CellType
// lookup on every width/height read; the view packs the hot fields into
// dense parallel arrays so a chain walk over a segment's cells streams
// through memory instead of pointer-chasing Design.Cells and
// Design.Types.
//
// The view is a cache, not a second source of truth: readers that
// mutate positions through the Design must call SetXY (or Reload) to
// keep the arrays coherent. The MGL legalizer owns one view per run and
// writes every commit through both representations.
//
//mclegal:ephemeral the view is rebuilt from the design at the start of every run (model.NewHotCells); restoring the design and rebuilding reproduces it exactly
type HotCells struct {
	// X, Y is the current position (site,row) of each cell; GX, GY the
	// global-placement position displacement is measured from.
	X, Y   []int32
	GX, GY []int32
	// W is the cell width in sites and H the height class in rows,
	// denormalized from the cell's CellType.
	W, H []int32
	// Fence is the fence region of each cell and Type its library
	// master (needed for the edge-spacing table on the hot path).
	Fence []FenceID
	Type  []CellTypeID
}

// NewHotCells builds the view for d. The arrays are indexed by CellID
// and sized to len(d.Cells).
func NewHotCells(d *Design) *HotCells {
	h := &HotCells{
		X:     make([]int32, len(d.Cells)),
		Y:     make([]int32, len(d.Cells)),
		GX:    make([]int32, len(d.Cells)),
		GY:    make([]int32, len(d.Cells)),
		W:     make([]int32, len(d.Cells)),
		H:     make([]int32, len(d.Cells)),
		Fence: make([]FenceID, len(d.Cells)),
		Type:  make([]CellTypeID, len(d.Cells)),
	}
	h.Reload(d)
	return h
}

// Reload refreshes every array from d (which must have the same cell
// count the view was built with).
func (h *HotCells) Reload(d *Design) {
	if len(d.Cells) != len(h.X) {
		panic("model: HotCells.Reload cell count mismatch")
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		ct := &d.Types[c.Type]
		h.X[i] = int32(c.X)
		h.Y[i] = int32(c.Y)
		h.GX[i] = int32(c.GX)
		h.GY[i] = int32(c.GY)
		h.W[i] = int32(ct.Width)
		h.H[i] = int32(ct.Height)
		h.Fence[i] = c.Fence
		h.Type[i] = c.Type
	}
}

// SetXY moves cell id in both the view and the backing design, keeping
// the two representations coherent.
func (h *HotCells) SetXY(d *Design, id CellID, x, y int) {
	h.X[id] = int32(x)
	h.Y[id] = int32(y)
	d.Cells[id].X = x
	d.Cells[id].Y = y
}

// SetX is SetXY for the x coordinate only (the common case: chain
// shifts never change rows).
func (h *HotCells) SetX(d *Design, id CellID, x int) {
	h.X[id] = int32(x)
	d.Cells[id].X = x
}
