package geom

// Eps is the tolerance used by the Approx* helpers: metric values are
// displacements measured in sites or rows, so anything below 1e-9 is
// representation noise, not signal.
const Eps = 1e-9

// ApproxEq reports whether two float64 metric values are equal within
// Eps. It is the approved alternative to == on floats in the
// metric-critical packages (enforced by the floatcmp analyzer).
func ApproxEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= Eps
}

// ApproxZero reports whether a float64 metric value is zero within Eps.
func ApproxZero(a float64) bool {
	return ApproxEq(a, 0)
}
