package geom

import (
	"testing"
	"testing/quick"
)

func TestPtArith(t *testing.T) {
	p := Pt{3, -2}
	q := Pt{-1, 5}
	if got := p.Add(q); got != (Pt{2, 3}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Pt{4, -7}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.L1(q); got != 11 {
		t.Errorf("L1 = %d, want 11", got)
	}
	if p.L1(p) != 0 {
		t.Errorf("L1 self = %d", p.L1(p))
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 7}
	if iv.Len() != 5 || iv.Empty() {
		t.Fatalf("Len/Empty wrong: %v", iv)
	}
	if !iv.Contains(2) || iv.Contains(7) || iv.Contains(1) {
		t.Errorf("Contains half-open semantics broken")
	}
	empty := Interval{5, 5}
	if !empty.Empty() || empty.Len() != 0 {
		t.Errorf("empty interval misbehaves")
	}
	if iv.Overlaps(empty) || empty.Overlaps(iv) {
		t.Errorf("empty interval must not overlap")
	}
	rev := Interval{9, 3}
	if rev.Len() != 0 || !rev.Empty() {
		t.Errorf("reversed interval should be empty")
	}
}

func TestIntervalContainsIv(t *testing.T) {
	iv := Interval{0, 10}
	cases := []struct {
		o    Interval
		want bool
	}{
		{Interval{0, 10}, true},
		{Interval{3, 7}, true},
		{Interval{-1, 5}, false},
		{Interval{5, 11}, false},
		{Interval{4, 4}, true}, // empty contained everywhere
	}
	for _, c := range cases {
		if got := iv.ContainsIv(c.o); got != c.want {
			t.Errorf("ContainsIv(%v) = %v, want %v", c.o, got, c.want)
		}
	}
}

func TestIntervalIntersectClamp(t *testing.T) {
	a := Interval{0, 10}
	b := Interval{5, 15}
	got := a.Intersect(b)
	if got != (Interval{5, 10}) {
		t.Errorf("Intersect = %v", got)
	}
	if a.Intersect(Interval{20, 30}).Len() != 0 {
		t.Errorf("disjoint intersect should be empty")
	}
	if a.Clamp(-3) != 0 || a.Clamp(10) != 9 || a.Clamp(4) != 4 {
		t.Errorf("Clamp wrong")
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(2, 3, 4, 2) // [2,6)x[3,5)
	if r.W() != 4 || r.H() != 2 || r.Area() != 8 {
		t.Fatalf("dims wrong: %v", r)
	}
	if !r.ContainsPt(Pt{2, 3}) || r.ContainsPt(Pt{6, 3}) || r.ContainsPt(Pt{2, 5}) {
		t.Errorf("ContainsPt half-open semantics broken")
	}
	o := RectWH(5, 4, 3, 3)
	if !r.Overlaps(o) {
		t.Errorf("should overlap")
	}
	touch := RectWH(6, 3, 1, 1) // touching edge only
	if r.Overlaps(touch) {
		t.Errorf("touching rects must not overlap")
	}
	if got := r.Intersect(o); got != (Rect{5, 4, 6, 5}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := r.Union(o); got != (Rect{2, 3, 8, 7}) {
		t.Errorf("Union = %v", got)
	}
}

func TestRectEmptyUnion(t *testing.T) {
	r := RectWH(0, 0, 3, 3)
	empty := Rect{5, 5, 5, 9}
	if got := r.Union(empty); got != r {
		t.Errorf("Union with empty = %v", got)
	}
	if got := empty.Union(r); got != r {
		t.Errorf("empty.Union = %v", got)
	}
	if !r.Contains(empty) {
		t.Errorf("empty rect should be contained anywhere")
	}
	if empty.Overlaps(r) {
		t.Errorf("empty rect must not overlap")
	}
}

func TestRectExpand(t *testing.T) {
	r := RectWH(2, 2, 2, 2)
	if got := r.Expand(1); got != (Rect{1, 1, 5, 5}) {
		t.Errorf("Expand = %v", got)
	}
	if got := r.Expand(-1); !got.Empty() {
		t.Errorf("over-shrunk rect should be empty: %v", got)
	}
}

func TestAbs(t *testing.T) {
	if Abs(-4) != 4 || Abs(4) != 4 || Abs(0) != 0 {
		t.Errorf("Abs wrong")
	}
	if Abs64(-1<<40) != 1<<40 {
		t.Errorf("Abs64 wrong")
	}
}

// Property: intersection is commutative and contained in both operands.
func TestQuickIntersect(t *testing.T) {
	f := func(a, b Rect) bool {
		i1 := a.Intersect(b)
		i2 := b.Intersect(a)
		if !i1.Empty() || !i2.Empty() {
			if i1 != i2 {
				return false
			}
			if !a.Contains(i1) || !b.Contains(i1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: overlap is symmetric and equivalent to a non-empty
// intersection.
func TestQuickOverlapIffIntersect(t *testing.T) {
	f := func(a, b Rect) bool {
		ov := a.Overlaps(b)
		if ov != b.Overlaps(a) {
			return false
		}
		return ov == !a.Intersect(b).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: union contains both operands.
func TestQuickUnionContains(t *testing.T) {
	f := func(a, b Rect) bool {
		u := a.Union(b)
		return u.Contains(a) || a.Empty() || u.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: L1 is a metric (symmetry + triangle inequality) on small
// coordinates.
func TestQuickL1Metric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt{int(ax), int(ay)}
		b := Pt{int(bx), int(by)}
		c := Pt{int(cx), int(cy)}
		if a.L1(b) != b.L1(a) {
			return false
		}
		return a.L1(c) <= a.L1(b)+b.L1(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
