package geom

import "testing"

func TestApproxEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1.5, 1.5, true},
		{1.5, 1.5 + 1e-12, true},
		{1.5, 1.5 - 1e-12, true},
		{1.5, 1.5 + 1e-6, false},
		{-2, 2, false},
		{0.1 + 0.2, 0.3, true}, // classic representation noise
	}
	for _, c := range cases {
		if got := ApproxEq(c.a, c.b); got != c.want {
			t.Errorf("ApproxEq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestApproxZero(t *testing.T) {
	if !ApproxZero(0) || !ApproxZero(1e-12) || !ApproxZero(-1e-12) {
		t.Error("ApproxZero should absorb sub-epsilon noise")
	}
	if ApproxZero(1e-6) || ApproxZero(-1) {
		t.Error("ApproxZero must reject real values")
	}
}
