// Package geom provides the small integer geometry vocabulary shared by
// the legalizer: points, half-open intervals and rectangles on the
// site/row grid, and piecewise helpers used throughout the flow.
//
// All coordinates are integers. Horizontal units are placement sites and
// vertical units are placement rows unless a caller documents otherwise;
// the database-unit scaling lives in the model package.
package geom

import "fmt"

// Pt is an integer point (X in sites, Y in rows by convention).
type Pt struct {
	X, Y int
}

// Add returns p translated by q.
func (p Pt) Add(q Pt) Pt { return Pt{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Pt) Sub(q Pt) Pt { return Pt{p.X - q.X, p.Y - q.Y} }

// L1 returns the Manhattan distance between p and q.
func (p Pt) L1(q Pt) int { return Abs(p.X-q.X) + Abs(p.Y-q.Y) }

func (p Pt) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Interval is the half-open integer interval [Lo, Hi).
// An interval with Hi <= Lo is empty.
type Interval struct {
	Lo, Hi int
}

// Len returns the length of the interval, never negative.
func (iv Interval) Len() int {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Empty reports whether the interval contains no integers.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Contains reports whether x lies in [Lo, Hi).
func (iv Interval) Contains(x int) bool { return x >= iv.Lo && x < iv.Hi }

// ContainsIv reports whether o is entirely inside iv. The empty interval
// is contained in everything.
func (iv Interval) ContainsIv(o Interval) bool {
	if o.Empty() {
		return true
	}
	return o.Lo >= iv.Lo && o.Hi <= iv.Hi
}

// Overlaps reports whether the two half-open intervals share any point.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Lo < o.Hi && o.Lo < iv.Hi && !iv.Empty() && !o.Empty()
}

// Intersect returns the common part of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{Lo: max(iv.Lo, o.Lo), Hi: min(iv.Hi, o.Hi)}
}

// Clamp returns x moved to the nearest point of [Lo, Hi-1]; it requires
// a non-empty interval.
func (iv Interval) Clamp(x int) int {
	if x < iv.Lo {
		return iv.Lo
	}
	if x >= iv.Hi {
		return iv.Hi - 1
	}
	return x
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

// Rect is a half-open integer rectangle [XLo,XHi) x [YLo,YHi).
type Rect struct {
	XLo, YLo, XHi, YHi int
}

// RectWH builds a rectangle from an origin and a width/height.
func RectWH(x, y, w, h int) Rect { return Rect{XLo: x, YLo: y, XHi: x + w, YHi: y + h} }

// W returns the rectangle width (never negative).
func (r Rect) W() int {
	if r.XHi <= r.XLo {
		return 0
	}
	return r.XHi - r.XLo
}

// H returns the rectangle height (never negative).
func (r Rect) H() int {
	if r.YHi <= r.YLo {
		return 0
	}
	return r.YHi - r.YLo
}

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.XHi <= r.XLo || r.YHi <= r.YLo }

// Area returns the rectangle area.
func (r Rect) Area() int64 { return int64(r.W()) * int64(r.H()) }

// Overlaps reports whether two rectangles share interior area.
func (r Rect) Overlaps(o Rect) bool {
	return r.XLo < o.XHi && o.XLo < r.XHi && r.YLo < o.YHi && o.YLo < r.YHi &&
		!r.Empty() && !o.Empty()
}

// Contains reports whether o lies entirely inside r. Empty rectangles
// are contained everywhere.
func (r Rect) Contains(o Rect) bool {
	if o.Empty() {
		return true
	}
	return o.XLo >= r.XLo && o.XHi <= r.XHi && o.YLo >= r.YLo && o.YHi <= r.YHi
}

// ContainsPt reports whether the point lies in the half-open rectangle.
func (r Rect) ContainsPt(p Pt) bool {
	return p.X >= r.XLo && p.X < r.XHi && p.Y >= r.YLo && p.Y < r.YHi
}

// Intersect returns the overlap of two rectangles (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		XLo: max(r.XLo, o.XLo), YLo: max(r.YLo, o.YLo),
		XHi: min(r.XHi, o.XHi), YHi: min(r.YHi, o.YHi),
	}
}

// Union returns the bounding box of two rectangles; empty inputs are
// ignored.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{
		XLo: min(r.XLo, o.XLo), YLo: min(r.YLo, o.YLo),
		XHi: max(r.XHi, o.XHi), YHi: max(r.YHi, o.YHi),
	}
}

// Expand grows the rectangle by d on every side (shrinks when d < 0).
func (r Rect) Expand(d int) Rect {
	return Rect{XLo: r.XLo - d, YLo: r.YLo - d, XHi: r.XHi + d, YHi: r.YHi + d}
}

// XIv returns the horizontal extent as an interval.
func (r Rect) XIv() Interval { return Interval{Lo: r.XLo, Hi: r.XHi} }

// YIv returns the vertical extent as an interval.
func (r Rect) YIv() Interval { return Interval{Lo: r.YLo, Hi: r.YHi} }

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.XLo, r.XHi, r.YLo, r.YHi)
}

// Abs returns |x|.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Abs64 returns |x| for int64.
func Abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
